package corpus

import (
	"sort"
	"testing"

	"dpr/internal/rng"
)

func smallConfig(seed uint64) Config {
	return Config{NumDocs: 800, NumTerms: 300, MinDocTerms: 5, MaxDocTerms: 40, Seed: seed}
}

func TestGenerateDefaults(t *testing.T) {
	c, err := Generate(Config{NumDocs: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 500 || c.NumTerms != 1880 {
		t.Fatalf("docs=%d terms=%d", len(c.Docs), c.NumTerms)
	}
	for i, d := range c.Docs {
		if d.ID != uint32(i) {
			t.Fatalf("doc %d has id %d", i, d.ID)
		}
		if len(d.Terms) < 20 || len(d.Terms) > 200 {
			t.Fatalf("doc %d has %d terms, want [20,200]", i, len(d.Terms))
		}
		if !sort.SliceIsSorted(d.Terms, func(a, b int) bool { return d.Terms[a] < d.Terms[b] }) {
			t.Fatalf("doc %d terms unsorted", i)
		}
		for j := 1; j < len(d.Terms); j++ {
			if d.Terms[j] == d.Terms[j-1] {
				t.Fatalf("doc %d has duplicate term %d", i, d.Terms[j])
			}
		}
	}
}

func TestPostingListsConsistent(t *testing.T) {
	c, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Every (doc, term) pair appears in the posting list and vice versa.
	var totalPostings int
	for _, d := range c.Docs {
		for _, term := range d.Terms {
			list := c.DocsWithTerm(term)
			i := sort.Search(len(list), func(i int) bool { return list[i] >= d.ID })
			if i == len(list) || list[i] != d.ID {
				t.Fatalf("doc %d missing from posting list of term %d", d.ID, term)
			}
		}
		totalPostings += len(d.Terms)
	}
	s := c.ComputeStats()
	if s.Postings != int64(totalPostings) {
		t.Fatalf("stats postings %d, want %d", s.Postings, totalPostings)
	}
	if c.DocsWithTerm(-1) != nil || c.DocsWithTerm(TermID(c.NumTerms)) != nil {
		t.Fatal("out-of-range term returned postings")
	}
}

func TestZipfShape(t *testing.T) {
	c, err := Generate(Config{NumDocs: 3000, NumTerms: 500, MinDocTerms: 10, MaxDocTerms: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Term 0 (rank 1) must be far more frequent than term 100.
	if c.DocFreq(0) <= c.DocFreq(100) {
		t.Fatalf("no Zipf head: freq(0)=%d freq(100)=%d", c.DocFreq(0), c.DocFreq(100))
	}
	// The head term appears in a large share of documents.
	if c.DocFreq(0) < len(c.Docs)/10 {
		t.Fatalf("head term only in %d/%d docs", c.DocFreq(0), len(c.Docs))
	}
}

func TestTopTermsOrdered(t *testing.T) {
	c, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	top := c.TopTerms(50)
	if len(top) != 50 {
		t.Fatalf("TopTerms returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if c.DocFreq(top[i-1]) < c.DocFreq(top[i]) {
			t.Fatalf("top terms out of order at %d", i)
		}
	}
	all := c.TopTerms(10000)
	if len(all) != c.NumTerms {
		t.Fatalf("TopTerms clamp: %d", len(all))
	}
}

func TestMakeQueries(t *testing.T) {
	c, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	qs, err := c.MakeQueries(r, 20, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("%d queries", len(qs))
	}
	topSet := map[TermID]bool{}
	for _, term := range c.TopTerms(100) {
		topSet[term] = true
	}
	for qi, q := range qs {
		if len(q) != 3 {
			t.Fatalf("query %d has %d words", qi, len(q))
		}
		seen := map[TermID]bool{}
		for _, term := range q {
			if !topSet[term] {
				t.Fatalf("query %d uses non-top term %d", qi, term)
			}
			if seen[term] {
				t.Fatalf("query %d repeats term %d", qi, term)
			}
			seen[term] = true
		}
	}
}

func TestMakeQueriesErrors(t *testing.T) {
	c, err := Generate(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if _, err := c.MakeQueries(r, 5, 0, 100); err == nil {
		t.Error("accepted zero-word query")
	}
	if _, err := c.MakeQueries(r, 5, 4, 3); err == nil {
		t.Error("accepted words > fromTop")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{NumDocs: -1},
		{NumDocs: 10, NumTerms: 1},
		{NumDocs: 10, NumTerms: 50, MinDocTerms: 10, MaxDocTerms: 5},
		{NumDocs: 10, NumTerms: 50, MinDocTerms: 10, MaxDocTerms: 100},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d accepted %+v", i, cfg)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Docs {
		if len(a.Docs[i].Terms) != len(b.Docs[i].Terms) {
			t.Fatalf("doc %d differs between runs", i)
		}
		for j := range a.Docs[i].Terms {
			if a.Docs[i].Terms[j] != b.Docs[i].Terms[j] {
				t.Fatalf("doc %d term %d differs", i, j)
			}
		}
	}
}

func TestStats(t *testing.T) {
	c, err := Generate(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	s := c.ComputeStats()
	if s.Docs != 800 || s.Terms != 300 {
		t.Fatalf("stats: %+v", s)
	}
	if s.AvgTermsPerDoc < 5 || s.AvgTermsPerDoc > 40 {
		t.Fatalf("avg terms per doc %v", s.AvgTermsPerDoc)
	}
	if s.MaxDocFreq == 0 || s.MedianDocFreq > s.MaxDocFreq {
		t.Fatalf("freq stats: %+v", s)
	}
}
