package wire

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dpr/internal/p2p"
)

// HTTPPeer is the paper's section 8 scenario taken literally: a web
// server whose HTTP interface is augmented with pagerank endpoints.
//
//	POST /pagerank/updates   binary update batch (same codec as TCP)
//	GET  /pagerank/counters  16-byte sent/processed snapshot
//	GET  /pagerank/ranks     binary (doc, rank) pairs
//
// Web servers exchange update batches with plain POSTs; no P2P overlay
// software is required, which is exactly the paper's argument for an
// Internet-scale deployment.
type HTTPPeer struct {
	cfg PeerConfig
	rk  *ranker

	srv    *http.Server
	ln     net.Listener
	client *http.Client
	peers  []string // peer id -> base URL

	senders map[p2p.PeerID]*postQueue
	sendMu  sync.Mutex

	inbox chan []p2p.Update
	quit  chan struct{}
	wg    sync.WaitGroup

	sent      atomic.Uint64
	processed atomic.Uint64
}

// postQueue serializes POSTs to one destination through an unbounded
// queue so the processing loop never blocks on a slow server. Queued
// updates are merged into one request per drain, amortizing HTTP
// round-trip overhead the way the paper's per-pass batching does.
type postQueue struct {
	mu    sync.Mutex
	queue []p2p.Update
	wake  chan struct{}
}

// NewHTTPPeer starts an HTTP server on 127.0.0.1 (ephemeral port).
func NewHTTPPeer(cfg PeerConfig) (*HTTPPeer, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Graph == nil || cfg.DocPeer == nil {
		return nil, fmt.Errorf("wire: nil graph or placement")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &HTTPPeer{
		cfg:     cfg,
		rk:      newRanker(cfg),
		ln:      ln,
		client:  &http.Client{Timeout: 30 * time.Second},
		senders: make(map[p2p.PeerID]*postQueue),
		inbox:   make(chan []p2p.Update, 1024),
		quit:    make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/pagerank/updates", p.handleUpdates)
	mux.HandleFunc("/pagerank/counters", p.handleCounters)
	mux.HandleFunc("/pagerank/ranks", p.handleRanks)
	p.srv = &http.Server{Handler: mux}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.srv.Serve(ln) // returns on Close
	}()
	return p, nil
}

// URL returns the peer's base URL.
func (p *HTTPPeer) URL() string { return "http://" + p.ln.Addr().String() }

// SetPeers installs the peer URL table (indexed by PeerID).
func (p *HTTPPeer) SetPeers(urls []string) { p.peers = urls }

// Counters reports (sent, processed).
func (p *HTTPPeer) Counters() (uint64, uint64) {
	return p.sent.Load(), p.processed.Load()
}

// Start launches processing and performs the initial push.
func (p *HTTPPeer) Start() {
	p.wg.Add(1)
	go p.processLoop()
	if self := p.ship(p.rk.initialOut()); len(self) > 0 {
		select {
		case p.inbox <- self:
		case <-p.quit:
		}
	}
}

// Close shuts the server and workers down.
func (p *HTTPPeer) Close() {
	select {
	case <-p.quit:
	default:
		close(p.quit)
	}
	p.srv.Close()
	p.wg.Wait()
}

func (p *HTTPPeer) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFrameBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	us, err := decodeBatch(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case p.inbox <- us:
		w.WriteHeader(http.StatusAccepted)
	case <-p.quit:
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	}
}

func (p *HTTPPeer) handleCounters(w http.ResponseWriter, r *http.Request) {
	sent, processed := p.Counters()
	w.Write(encodeSnapshot(sent, processed))
}

func (p *HTTPPeer) handleRanks(w http.ResponseWriter, r *http.Request) {
	docs, ranks := p.rk.snapshotRanks()
	w.Write(encodeRanks(docs, ranks))
}

func (p *HTTPPeer) processLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case us := <-p.inbox:
			batch := us
			for drained := false; !drained; {
				select {
				case more := <-p.inbox:
					batch = append(batch, more...)
				default:
					drained = true
				}
			}
			for len(batch) > 0 {
				self := p.ship(p.rk.fold(batch))
				p.processed.Add(uint64(len(batch)))
				batch = self
			}
		}
	}
}

// ship transmits batches, returning the self-directed ones.
func (p *HTTPPeer) ship(out map[p2p.PeerID][]p2p.Update) []p2p.Update {
	var self []p2p.Update
	for dest, us := range out {
		p.sent.Add(uint64(len(us)))
		if dest == p.cfg.ID {
			self = append(self, us...)
			continue
		}
		p.post(dest, us)
	}
	return self
}

// post enqueues one batch for asynchronous POSTing.
func (p *HTTPPeer) post(dest p2p.PeerID, us []p2p.Update) {
	p.sendMu.Lock()
	q, ok := p.senders[dest]
	if !ok {
		q = &postQueue{wake: make(chan struct{}, 1)}
		p.senders[dest] = q
		p.wg.Add(1)
		go p.postLoop(dest, q)
	}
	p.sendMu.Unlock()
	q.mu.Lock()
	q.queue = append(q.queue, us...)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// postLoop drains one destination's queue.
func (p *HTTPPeer) postLoop(dest p2p.PeerID, q *postQueue) {
	defer p.wg.Done()
	url := ""
	if int(dest) < len(p.peers) {
		url = p.peers[dest] + "/pagerank/updates"
	}
	for {
		select {
		case <-p.quit:
			return
		case <-q.wake:
			for {
				q.mu.Lock()
				us := q.queue
				q.queue = nil
				q.mu.Unlock()
				if len(us) == 0 {
					break
				}
				if url == "" {
					// Unknown destination: balance counters so the
					// termination probe still fires.
					p.processed.Add(uint64(len(us)))
					continue
				}
				body := encodeBatch(us)
				resp, err := p.client.Post(url, "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					p.processed.Add(uint64(len(us)))
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
}
