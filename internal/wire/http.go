package wire

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/telemetry"
)

// batchSeqContentType marks a POST body carrying a sequenced batch
// (sender + sequence-number prefix); plain application/octet-stream
// bodies are accepted as legacy unsequenced batches.
const batchSeqContentType = "application/x-dpr-batch-seq"

// HTTPPeer is the paper's section 8 scenario taken literally: a web
// server whose HTTP interface is augmented with pagerank endpoints.
//
//	POST /pagerank/updates   binary update batch (same codec as TCP)
//	GET  /pagerank/counters  16-byte sent/processed snapshot
//	GET  /pagerank/ranks     binary (doc, rank) pairs
//
// Web servers exchange update batches with plain POSTs; no P2P overlay
// software is required, which is exactly the paper's argument for an
// Internet-scale deployment. Transient failures (connection errors,
// 5xx responses) are retried with capped exponential backoff; posts
// carry per-destination sequence numbers so a retried request whose
// first copy actually arrived is folded exactly once.
type HTTPPeer struct {
	cfg   PeerConfig
	retry RetryPolicy
	rk    *ranker

	srv    *http.Server
	ln     net.Listener
	client *http.Client
	peers  []string // peer id -> base URL

	senders map[p2p.PeerID]*postQueue
	sendMu  sync.Mutex
	rqMu    sync.Mutex
	rq      *p2p.RetryQueue

	inbox chan inItem
	quit  chan struct{}
	wg    sync.WaitGroup

	// lastSeq suppresses duplicate posts per sender; owned by
	// processLoop.
	lastSeq map[p2p.PeerID]uint64

	// m holds the peer's registry-backed instruments (the HTTP peer
	// uses the subset that applies: no reconnect/redelivery tracking,
	// since HTTP posts are per-request). reg is their registry, trace
	// the optional convergence-event ring.
	m     peerMetrics
	reg   *telemetry.Registry
	trace *telemetry.Trace
}

// postQueue serializes POSTs to one destination. Pending updates live
// delta-coalesced in the peer's retry queue so sender-side state stays
// bounded no matter how long the destination is unreachable; each
// drained batch becomes one sequenced request, amortizing HTTP
// round-trip overhead the way the paper's per-pass batching does.
type postQueue struct {
	wake    chan struct{}
	rng     *rng.Rand // backoff jitter; used only by its postLoop
	nextSeq uint64
}

// NewHTTPPeer starts an HTTP server on 127.0.0.1 (ephemeral port).
func NewHTTPPeer(cfg PeerConfig) (*HTTPPeer, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Graph == nil || cfg.DocPeer == nil {
		return nil, fmt.Errorf("wire: nil graph or placement")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.InboxCap <= 0 {
		cfg.InboxCap = defaultInboxCap
	}
	m := newPeerMetrics(cfg.Registry)
	p := &HTTPPeer{
		cfg:     cfg,
		retry:   cfg.Retry.withDefaults(),
		rk:      newRanker(cfg, m.rankMass),
		ln:      ln,
		client:  client,
		senders: make(map[p2p.PeerID]*postQueue),
		rq:      p2p.NewRetryQueue(),
		inbox:   make(chan inItem, cfg.InboxCap),
		quit:    make(chan struct{}),
		lastSeq: make(map[p2p.PeerID]uint64),
		m:       m,
		reg:     cfg.Registry,
		trace:   cfg.Trace,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/pagerank/updates", p.handleUpdates)
	mux.HandleFunc("/pagerank/counters", p.handleCounters)
	mux.HandleFunc("/pagerank/ranks", p.handleRanks)
	p.srv = &http.Server{Handler: mux}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.srv.Serve(ln) // returns on Close
	}()
	return p, nil
}

// URL returns the peer's base URL.
func (p *HTTPPeer) URL() string { return "http://" + p.ln.Addr().String() }

// SetPeers installs the peer URL table (indexed by PeerID).
func (p *HTTPPeer) SetPeers(urls []string) { p.peers = urls }

// Counters reports (sent, processed).
func (p *HTTPPeer) Counters() (uint64, uint64) {
	return p.m.sent.Load(), p.m.processed.Load()
}

// Stats reports the peer's fault-tolerance counters, read from the
// telemetry registry. Reconnects and redeliveries stay zero: HTTP
// posts are per-request, so there is no connection to re-establish.
func (p *HTTPPeer) Stats() PeerStats { return p.m.stats() }

// Registry exposes the registry holding this peer's instruments.
func (p *HTTPPeer) Registry() *telemetry.Registry { return p.reg }

// event records a convergence-trace event when a trace is attached.
//
//dpr:hotpath
func (p *HTTPPeer) event(typ telemetry.EventType, value float64, aux int64) {
	if p.trace != nil {
		p.trace.Record(typ, int32(p.cfg.ID), -1, value, aux)
	}
}

// Start launches processing and performs the initial push.
func (p *HTTPPeer) Start() {
	p.wg.Add(1)
	go p.processLoop()
	if self := p.ship(p.rk.initialOut()); len(self) > 0 {
		select {
		case p.inbox <- inItem{from: p.cfg.ID, us: self}:
		case <-p.quit:
		}
	}
}

// Close shuts the server and workers down.
func (p *HTTPPeer) Close() {
	select {
	case <-p.quit:
	default:
		close(p.quit)
	}
	p.srv.Close()
	p.wg.Wait()
}

func (p *HTTPPeer) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFrameBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var it inItem
	if r.Header.Get("Content-Type") == batchSeqContentType {
		from, seq, us, err := decodeBatchSeq(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		it = inItem{from: from, seq: seq, seqed: true, us: us}
	} else {
		us, err := decodeBatch(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		it = inItem{us: us}
	}
	select {
	case p.inbox <- it:
		w.WriteHeader(http.StatusAccepted)
	case <-p.quit:
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	}
}

func (p *HTTPPeer) handleCounters(w http.ResponseWriter, r *http.Request) {
	sent, processed := p.Counters()
	w.Write(encodeSnapshot(sent, processed))
}

func (p *HTTPPeer) handleRanks(w http.ResponseWriter, r *http.Request) {
	docs, ranks := p.rk.snapshotRanks()
	w.Write(encodeRanks(docs, ranks))
}

func (p *HTTPPeer) processLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case it := <-p.inbox:
			items := []inItem{it}
			for drained := false; !drained; {
				select {
				case more := <-p.inbox:
					items = append(items, more)
				default:
					drained = true
				}
			}
			var batch []p2p.Update
			for _, it := range items {
				if it.seqed {
					if it.seq <= p.lastSeq[it.from] {
						p.m.dupDropped.Add(1)
						continue // retried post whose first copy arrived
					}
					p.lastSeq[it.from] = it.seq
				}
				batch = append(batch, it.us...)
			}
			for len(batch) > 0 {
				out, fwd := p.rk.fold(batch)
				self := p.ship(out)
				if len(fwd) > 0 {
					self = append(self, p.forward(fwd)...)
				}
				folded := 0.0
				for _, u := range batch {
					folded += u.Delta
				}
				for _, u := range fwd {
					folded -= u.Delta
				}
				p.m.deltaFolded.Add(folded)
				p.m.processed.Add(uint64(len(batch)))
				p.event(telemetry.EvFold, folded, int64(len(batch)))
				batch = self
			}
		}
	}
}

// ship transmits batches, returning the self-directed ones.
func (p *HTTPPeer) ship(out map[p2p.PeerID][]p2p.Update) []p2p.Update {
	var self []p2p.Update
	shipped, n := 0.0, 0
	for dest, us := range out {
		p.m.sent.Add(uint64(len(us)))
		for _, u := range us {
			shipped += u.Delta
		}
		n += len(us)
		if dest == p.cfg.ID {
			self = append(self, us...)
			continue
		}
		p.post(dest, us)
	}
	if n > 0 {
		p.m.deltaShipped.Add(shipped)
		p.event(telemetry.EvShip, shipped, int64(n))
	}
	return self
}

// forward re-ships updates that arrived for documents this peer does
// not own (HTTP clusters have static membership, so this only fires on
// a misconfigured placement table). Forwarded mass was counted shipped
// at its origin, so only the send counter moves here.
func (p *HTTPPeer) forward(fwd []p2p.Update) []p2p.Update {
	var self []p2p.Update
	for _, u := range fwd {
		owner := p.rk.ownerOf(u.Doc)
		switch {
		case owner == p.cfg.ID && p.rk.owns(u.Doc):
			self = append(self, u)
			p.m.sent.Add(1)
		case owner == p.cfg.ID || owner == p2p.NoPeer:
			p.m.misdropped.Add(1)
		default:
			p.m.sent.Add(1)
			p.post(owner, []p2p.Update{u})
		}
	}
	p.m.forwarded.Add(uint64(len(fwd)))
	return self
}

// post coalesces one batch into the destination's pending queue and
// wakes its poster. Updates absorbed by coalescing count as processed
// on the spot (their delta survives inside the merged entry).
func (p *HTTPPeer) post(dest p2p.PeerID, us []p2p.Update) {
	merged := 0
	p.rqMu.Lock()
	for _, u := range us {
		if p.rq.DeferMerge(dest, u) {
			merged++
		}
	}
	p.rqMu.Unlock()
	if merged > 0 {
		p.m.coalesced.Add(uint64(merged))
		p.m.processed.Add(uint64(merged))
	}
	p.sendMu.Lock()
	q, ok := p.senders[dest]
	if !ok {
		q = &postQueue{
			wake:    make(chan struct{}, 1),
			rng:     rng.New(uint64(p.cfg.ID)<<32 ^ uint64(uint32(dest)) ^ 0x7f4a7c15),
			nextSeq: 1,
		}
		p.senders[dest] = q
		p.wg.Add(1)
		go p.postLoop(dest, q)
	}
	p.sendMu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// postLoop drains one destination's queue, retrying each sequenced
// request with capped backoff until the server accepts it. A retried
// request whose first copy actually arrived is suppressed server-side
// by its sequence number, so transient failures can neither lose nor
// double-fold updates.
func (p *HTTPPeer) postLoop(dest p2p.PeerID, q *postQueue) {
	defer p.wg.Done()
	url := ""
	if int(dest) < len(p.peers) {
		url = p.peers[dest] + "/pagerank/updates"
	}
	for {
		select {
		case <-p.quit:
			return
		case <-q.wake:
			for {
				p.rqMu.Lock()
				us := p.rq.Drain(dest)
				p.rqMu.Unlock()
				if len(us) == 0 {
					break
				}
				if url == "" {
					// Unknown destination: account the updates as
					// consumed so the termination probe still fires.
					p.m.processed.Add(uint64(len(us)))
					continue
				}
				seq := q.nextSeq
				q.nextSeq++
				body := encodeBatchSeq(p.cfg.ID, seq, us)
				delivered, shutdown := p.postWithRetry(q, url, body)
				if shutdown {
					return
				}
				if !delivered {
					// Permanent rejection: account the updates as
					// consumed so the termination probe still fires.
					p.m.processed.Add(uint64(len(us)))
				}
			}
		}
	}
}

// postWithRetry delivers one sequenced request, retrying transient
// failures (connection errors and 5xx responses) with capped
// exponential backoff until the server answers below 500. delivered
// reports whether the request was accepted (2xx); shutdown reports the
// peer quit while retrying.
func (p *HTTPPeer) postWithRetry(q *postQueue, url string, body []byte) (delivered, shutdown bool) {
	for fails := 0; ; {
		resp, err := p.client.Post(url, batchSeqContentType, bytes.NewReader(body))
		if err == nil {
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code < 300 {
				return true, false
			}
			if code < 500 {
				return false, false // permanent rejection
			}
		}
		fails++
		p.m.retries.Add(1)
		select {
		case <-p.quit:
			return false, true
		case <-time.After(p.retry.delay(q.rng, fails)):
		}
	}
}
