package wire

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dpr/internal/graph"
)

// TestDebugListenerServesCluster boots a TCP cluster with the debug
// listener enabled and exercises all three endpoint families. The
// listener is live from NewCluster until Run's final Close, so the
// scrapes happen before and during the computation.
func TestDebugListenerServesCluster(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 31))
	c, err := NewCluster(g, ClusterConfig{Peers: 4, Epsilon: 1e-6, Seed: 31, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := "http://" + c.DebugAddr()
	if c.DebugAddr() == "" {
		t.Fatal("DebugAddr empty with DebugAddr configured")
	}

	// Before the run: every instrument is already registered, so the
	// exposition page shows the full (all-zero) name set.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"wire_sent", "wire_delta_shipped", "cluster_probes", "# TYPE"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}

	type runOut struct {
		res ClusterResult
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := c.Run(60 * time.Second)
		resCh <- runOut{res, err}
	}()

	// During the run: the trace fills with ship/fold events. Poll
	// until some arrive or the run finishes (the quiescent trace must
	// then still be readable through Trace directly).
	sawEvents := 0
	for done := false; !done && sawEvents == 0; {
		select {
		case out := <-resCh:
			if out.err != nil {
				t.Fatal(out.err)
			}
			done = true
			resCh <- out
		default:
			resp, err := http.Get(base + "/trace?n=5")
			if err != nil {
				continue // listener already closed by Run's teardown
			}
			var doc struct {
				Len    int   `json:"len"`
				Events []any `json:"events"`
			}
			err = json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("/trace JSON: %v", err)
			}
			sawEvents = len(doc.Events)
		}
	}

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if sawEvents == 0 && c.Trace().Len() == 0 {
		t.Fatal("no convergence events recorded by a full run")
	}
	assertRanksMatch(t, g, out.res.Ranks, 1e-3)
}

// TestDebugListenerSurvivesKillRestart hammers /metrics and /trace
// from several goroutines while peers crash and restart underneath —
// the scrape path reads the same registries Kill checkpoints and
// Restart restores, so this doubles as race coverage for the snapshot
// merge (run under -race in ci). Close must then reap the listener
// goroutine (the leak check recognises telemetry.(*DebugServer)).
func TestDebugListenerSurvivesKillRestart(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 77))
	c, err := NewCluster(g, ClusterConfig{Peers: 5, Epsilon: 1e-6, Seed: 77, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := "http://" + c.DebugAddr()

	type runOut struct {
		res ClusterResult
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := c.Run(120 * time.Second)
		resCh <- runOut{res, err}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/trace?n=32"} {
					resp, err := http.Get(base + path)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}

	for _, victim := range []int{1, 3} {
		time.Sleep(10 * time.Millisecond)
		if err := c.Kill(victim); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		if err := c.Restart(victim); err != nil {
			t.Fatal(err)
		}
	}

	out := <-resCh
	close(stop)
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	assertRanksMatch(t, g, out.res.Ranks, 1e-3)
	assertRegistryConservation(t, c.TelemetrySnapshot(), out.res.Ranks)

	// Closing the cluster takes the listener with it.
	c.Close()
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("debug listener still serving after Close")
	}
	// TelemetryText stays valid after Close — the post-hoc dump path.
	if txt := c.TelemetryText(); !strings.Contains(txt, "wire_delta_folded") {
		t.Fatalf("TelemetryText after Close missing instruments:\n%s", txt)
	}
}
