package wire

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// assertNoGoroutineLeaks is a hand-rolled goleak: it snapshots the
// goroutine count when called and returns a cleanup that fails the
// test if, after a grace period for asynchronous teardown, more
// goroutines are running than before. Call it first thing and defer
// the result:
//
//	defer assertNoGoroutineLeaks(t)()
//
// Cluster.Close/Kill are supposed to reap every acceptor, server,
// sender, ack-reader, processing-loop and failure-detector goroutine;
// this catches any that escape.
func assertNoGoroutineLeaks(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			runtime.Gosched()
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			// Only fail on goroutines parked inside this package's
			// worker types; the runtime, the test framework and other
			// packages' helpers own the rest.
			var leaked []string
			for _, g := range strings.Split(string(buf[:n]), "\n\n") {
				for _, worker := range []string{
					"wire.(*Peer)", "wire.(*sender)", "wire.(*HTTPPeer)", "wire.(*Cluster)",
					"wire.(*detector)", "telemetry.(*DebugServer)",
				} {
					if strings.Contains(g, worker) {
						leaked = append(leaked, g)
						break
					}
				}
			}
			if len(leaked) > 0 {
				t.Errorf("goroutine leak: %d before, %d after, %d wire workers still running\n%s",
					before, after, len(leaked), strings.Join(leaked, "\n\n"))
			}
		}
	}
}
