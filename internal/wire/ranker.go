package wire

import (
	"sync"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// ranker is the transport-independent per-peer computation: the
// chaotic-iteration state for the documents one peer owns, shared by
// the TCP and HTTP peers. All methods are safe for concurrent use.
type ranker struct {
	id      p2p.PeerID
	g       *graph.Graph
	docPeer []p2p.PeerID
	damping float64
	epsilon float64

	mu    sync.Mutex
	docs  []graph.NodeID
	index map[graph.NodeID]int32
	rank  []float64
	acc   []float64
	last  []float64
}

func newRanker(cfg PeerConfig) *ranker {
	r := &ranker{
		id:      cfg.ID,
		g:       cfg.Graph,
		docPeer: cfg.DocPeer,
		damping: cfg.Damping,
		epsilon: cfg.Epsilon,
		docs:    cfg.Docs,
		index:   make(map[graph.NodeID]int32, len(cfg.Docs)),
		rank:    make([]float64, len(cfg.Docs)),
		acc:     make([]float64, len(cfg.Docs)),
		last:    make([]float64, len(cfg.Docs)),
	}
	for i, d := range cfg.Docs {
		r.index[d] = int32(i)
		r.rank[i] = 1 - cfg.Damping
	}
	return r
}

// initialOut builds the initial-push batches, keyed by destination.
func (r *ranker) initialOut() map[p2p.PeerID][]p2p.Update {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[p2p.PeerID][]p2p.Update)
	for i := range r.docs {
		r.collectLocked(int32(i), r.docs[i], out)
	}
	return out
}

// fold applies a batch of updates and returns the consequent batches.
func (r *ranker) fold(batch []p2p.Update) map[p2p.PeerID][]p2p.Update {
	r.mu.Lock()
	defer r.mu.Unlock()
	touched := make(map[int32]graph.NodeID)
	for _, u := range batch {
		i, mine := r.index[u.Doc]
		if !mine {
			continue // misrouted; drop
		}
		r.acc[i] += u.Delta
		touched[i] = u.Doc
	}
	out := make(map[p2p.PeerID][]p2p.Update)
	for i, d := range touched {
		old := r.rank[i]
		fresh := (1 - r.damping) + r.acc[i]
		r.rank[i] = fresh
		denom := fresh
		if denom < 0 {
			denom = -denom
		}
		if denom == 0 {
			denom = 1
		}
		diff := fresh - old
		if diff < 0 {
			diff = -diff
		}
		if diff/denom > r.epsilon {
			r.collectLocked(i, d, out)
		}
	}
	return out
}

// collectLocked batches document d's pending delta per destination.
// Caller holds mu.
func (r *ranker) collectLocked(i int32, d graph.NodeID, out map[p2p.PeerID][]p2p.Update) {
	links := r.g.OutLinks(d)
	if len(links) == 0 {
		r.last[i] = r.rank[i]
		return
	}
	share := r.damping * (r.rank[i] - r.last[i]) / float64(len(links))
	if share == 0 {
		r.last[i] = r.rank[i]
		return
	}
	for _, t := range links {
		dest := r.docPeer[t]
		out[dest] = append(out[dest], p2p.Update{Doc: t, Delta: share})
	}
	r.last[i] = r.rank[i]
}

// snapshotRanks returns (docs, ranks) for collection.
func (r *ranker) snapshotRanks() ([]graph.NodeID, []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ranks := make([]float64, len(r.rank))
	copy(ranks, r.rank)
	return r.docs, ranks
}
