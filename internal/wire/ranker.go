package wire

import (
	"fmt"
	"sync"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/telemetry"
)

// ranker is the transport-independent per-peer computation: the
// chaotic-iteration state for the documents one peer owns, shared by
// the TCP and HTTP peers. All methods are safe for concurrent use.
//
// Under dynamic membership the document set is mutable: adopt appends
// a departed peer's rows, shed extracts rows for a joining peer, and
// setOwner rewrites the routing table. Each ranker owns a private copy
// of the doc->peer table so a membership change pushed to one peer can
// never race another peer's routing reads.
type ranker struct {
	id      p2p.PeerID
	g       *graph.Graph
	damping float64
	epsilon float64

	// mass mirrors sum(rank) into the telemetry registry: Set on
	// (re)initialisation, Add on every fold/adopt/shed. Per-peer
	// gauges merge into the cluster's total rank mass.
	mass *telemetry.Gauge

	mu      sync.Mutex
	docPeer []p2p.PeerID // private copy; mutated by setOwner/adopt/shed
	docs    []graph.NodeID
	index   map[graph.NodeID]int32
	rank    []float64
	acc     []float64
	last    []float64
}

func newRanker(cfg PeerConfig, mass *telemetry.Gauge) *ranker {
	r := &ranker{
		id:      cfg.ID,
		g:       cfg.Graph,
		docPeer: append([]p2p.PeerID(nil), cfg.DocPeer...),
		damping: cfg.Damping,
		epsilon: cfg.Epsilon,
		mass:    mass,
		docs:    append([]graph.NodeID(nil), cfg.Docs...),
		index:   make(map[graph.NodeID]int32, len(cfg.Docs)),
		rank:    make([]float64, len(cfg.Docs)),
		acc:     make([]float64, len(cfg.Docs)),
		last:    make([]float64, len(cfg.Docs)),
	}
	for i, d := range cfg.Docs {
		r.index[d] = int32(i)
		r.rank[i] = 1 - cfg.Damping
	}
	r.mass.Set(float64(len(cfg.Docs)) * (1 - cfg.Damping))
	return r
}

// resetMass recomputes the mass gauge from the current rows; used
// after a checkpoint restore overwrites the ranker arrays wholesale.
func (r *ranker) resetMass() {
	r.mu.Lock()
	total := 0.0
	for _, v := range r.rank {
		total += v
	}
	r.mu.Unlock()
	r.mass.Set(total)
}

// initialOut builds the initial-push batches, keyed by destination.
func (r *ranker) initialOut() map[p2p.PeerID][]p2p.Update {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[p2p.PeerID][]p2p.Update)
	for i := range r.docs {
		r.collectLocked(int32(i), r.docs[i], out)
	}
	return out
}

// fold applies a batch of updates and returns the consequent batches
// plus the updates for documents this peer does not own. Misrouted
// updates are NOT dropped — under dynamic membership they are updates
// that raced an ownership migration, and the caller must forward them
// to the current owner so no rank mass is ever lost.
func (r *ranker) fold(batch []p2p.Update) (out map[p2p.PeerID][]p2p.Update, fwd []p2p.Update) {
	r.mu.Lock()
	defer r.mu.Unlock()
	touched := make(map[int32]graph.NodeID)
	for _, u := range batch {
		i, mine := r.index[u.Doc]
		if !mine {
			fwd = append(fwd, u)
			continue
		}
		r.acc[i] += u.Delta
		touched[i] = u.Doc
	}
	out = make(map[p2p.PeerID][]p2p.Update)
	massDelta := 0.0
	for i, d := range touched {
		old := r.rank[i]
		fresh := (1 - r.damping) + r.acc[i]
		r.rank[i] = fresh
		massDelta += fresh - old
		denom := fresh
		if denom < 0 {
			denom = -denom
		}
		if denom == 0 {
			denom = 1
		}
		diff := fresh - old
		if diff < 0 {
			diff = -diff
		}
		if diff/denom > r.epsilon {
			r.collectLocked(i, d, out)
		}
	}
	if massDelta != 0 {
		r.mass.Add(massDelta)
	}
	return out, fwd
}

// collectLocked batches document d's pending delta per destination.
// Caller holds mu.
func (r *ranker) collectLocked(i int32, d graph.NodeID, out map[p2p.PeerID][]p2p.Update) {
	links := r.g.OutLinks(d)
	if len(links) == 0 {
		r.last[i] = r.rank[i]
		return
	}
	share := r.damping * (r.rank[i] - r.last[i]) / float64(len(links))
	if share == 0 {
		r.last[i] = r.rank[i]
		return
	}
	for _, t := range links {
		dest := r.docPeer[t]
		out[dest] = append(out[dest], p2p.Update{Doc: t, Delta: share})
	}
	r.last[i] = r.rank[i]
}

// ownerOf resolves a document's current owner from the private table.
func (r *ranker) ownerOf(d graph.NodeID) p2p.PeerID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(d) >= len(r.docPeer) {
		return p2p.NoPeer
	}
	return r.docPeer[d]
}

// owns reports whether this ranker currently holds document d.
func (r *ranker) owns(d graph.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.index[d]
	return ok
}

// ownerTable returns a snapshot copy of the routing table.
func (r *ranker) ownerTable() []p2p.PeerID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]p2p.PeerID(nil), r.docPeer...)
}

// rerouteOwner repoints every routing entry held by from at to,
// except documents this ranker itself holds. Used when a merged view
// reveals that a slot's range moved (departed peer with a forwarding
// successor, or a fenced slot reconciled to a higher-epoch owner).
func (r *ranker) rerouteOwner(from, to p2p.PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for d, owner := range r.docPeer {
		if owner != from {
			continue
		}
		if _, mine := r.index[graph.NodeID(d)]; mine {
			continue
		}
		r.docPeer[d] = to
	}
}

// setOwner points the routing table entries for docs at owner. New
// outbound updates for those documents route to the new owner from
// the next fold on.
func (r *ranker) setOwner(docs []graph.NodeID, owner p2p.PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range docs {
		if int(d) < len(r.docPeer) {
			r.docPeer[d] = owner
		}
	}
}

// adopt appends a migrated document range: the rows arrive mid-flight
// from a handoff snapshot and continue exactly where the previous
// owner's last fold left them (rank/acc committed, last marking what
// has already been pushed downstream). Adopted docs are immediately
// marked self-owned in the routing table.
func (r *ranker) adopt(docs []graph.NodeID, rank, acc, last []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	adopted := 0.0
	for i, d := range docs {
		if _, dup := r.index[d]; dup {
			continue // already ours (e.g. replayed handoff); keep our state
		}
		r.index[d] = int32(len(r.docs))
		r.docs = append(r.docs, d)
		r.rank = append(r.rank, rank[i])
		r.acc = append(r.acc, acc[i])
		r.last = append(r.last, last[i])
		adopted += rank[i]
		if int(d) < len(r.docPeer) {
			r.docPeer[d] = r.id
		}
	}
	if adopted != 0 {
		r.mass.Add(adopted)
	}
}

// shed extracts the rows for docs (handing them to a joining peer) and
// atomically repoints the routing table at newOwner, so an update for
// a shed document arriving in the very next fold is forwarded rather
// than folded into state that already left.
func (r *ranker) shed(docs []graph.NodeID, newOwner p2p.PeerID) (rank, acc, last []float64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	shedSet := make(map[graph.NodeID]struct{}, len(docs))
	rank = make([]float64, len(docs))
	acc = make([]float64, len(docs))
	last = make([]float64, len(docs))
	for i, d := range docs {
		j, mine := r.index[d]
		if !mine {
			return nil, nil, nil, fmt.Errorf("wire: peer %d cannot shed doc %d it does not own", r.id, d)
		}
		rank[i], acc[i], last[i] = r.rank[j], r.acc[j], r.last[j]
		shedSet[d] = struct{}{}
	}
	keepDocs := r.docs[:0]
	keepRank, keepAcc, keepLast := r.rank[:0], r.acc[:0], r.last[:0]
	for j, d := range r.docs {
		if _, gone := shedSet[d]; gone {
			continue
		}
		keepDocs = append(keepDocs, d)
		keepRank = append(keepRank, r.rank[j])
		keepAcc = append(keepAcc, r.acc[j])
		keepLast = append(keepLast, r.last[j])
	}
	r.docs, r.rank, r.acc, r.last = keepDocs, keepRank, keepAcc, keepLast
	r.index = make(map[graph.NodeID]int32, len(r.docs))
	for j, d := range r.docs {
		r.index[d] = int32(j)
	}
	for _, d := range docs {
		if int(d) < len(r.docPeer) {
			r.docPeer[d] = newOwner
		}
	}
	extracted := 0.0
	for _, v := range rank {
		extracted += v
	}
	if extracted != 0 {
		r.mass.Add(-extracted)
	}
	return rank, acc, last, nil
}

// snapshotRanks returns (docs, ranks) for collection.
func (r *ranker) snapshotRanks() ([]graph.NodeID, []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	docs := append([]graph.NodeID(nil), r.docs...)
	ranks := append([]float64(nil), r.rank...)
	return docs, ranks
}
