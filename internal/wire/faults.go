package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// FaultConfig sets the probabilistic failure schedule of a
// FaultTransport. All probabilities are per write (per frame for the
// peer senders, which write one frame per call). The dice are drawn
// from a single seeded stream, so a given config produces a
// reproducible fault sequence.
type FaultConfig struct {
	Seed uint64

	// DropProb discards the written bytes and resets the connection.
	// The loss is detectable — the writer gets an error — which models
	// TCP's promise that undelivered data eventually surfaces as a
	// broken connection rather than a silent gap.
	DropProb float64

	// ResetProb delivers the written bytes and then resets the
	// connection anyway. The sender cannot tell this from DropProb, so
	// it must redeliver — exercising the receiver's duplicate
	// suppression.
	ResetProb float64

	// DupProb transmits the written bytes twice.
	DupProb float64

	// DelayProb sleeps a uniform [0, MaxDelay) before the write.
	DelayProb float64
	MaxDelay  time.Duration

	// DialFailProb fails connection establishment.
	DialFailProb float64
}

// FaultStats counts the faults a FaultTransport has injected.
type FaultStats struct {
	Drops, Resets, Dups, Delays, DialFails, PartitionRefusals uint64
}

// FaultTransport wraps another Transport with deterministic
// (seeded) fault injection: probabilistic drops, delivered-then-reset
// connections, duplicated frames, delays, dial failures, and scripted
// partitions of peer pairs. The config can be swapped at runtime with
// SetConfig and partitions toggled with Partition/Heal, so tests can
// script failure schedules. Observer connections (termination probes,
// rank collection) pass through untouched.
type FaultTransport struct {
	inner Transport

	mu    sync.Mutex
	rng   *rng.Rand
	cfg   FaultConfig
	cut   map[dirKey]bool
	conns map[dirKey]map[*faultConn]struct{}

	// Straggler injection, per link direction: linkDelay adds a
	// constant latency to every write, trickle throttles writes to
	// chunkBytes per chunkEvery sleep. Both model a slow-but-alive
	// destination — nothing is lost or reset, delivery just crawls.
	linkDelay map[dirKey]time.Duration
	trickle   map[dirKey]trickleSpec

	drops, resets, dups, delays, dialFails, refusals atomic.Uint64
}

// dirKey identifies one direction of a peer pair: cuts are kept per
// direction so a one-way partition (a can no longer reach b, while b
// still reaches a) is expressible — the asymmetric link failure that
// makes a's detector suspect b while nobody else concurs.
type dirKey struct{ from, to p2p.PeerID }

// NewFaultTransport wraps inner with the given fault schedule.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	if inner == nil {
		inner = TCPDialer()
	}
	return &FaultTransport{
		inner:     inner,
		rng:       rng.New(cfg.Seed),
		cfg:       cfg,
		cut:       make(map[dirKey]bool),
		conns:     make(map[dirKey]map[*faultConn]struct{}),
		linkDelay: make(map[dirKey]time.Duration),
		trickle:   make(map[dirKey]trickleSpec),
	}
}

// trickleSpec throttles one link direction: at most ChunkBytes are
// written per chunk, with an Every sleep between chunks, so a frame of
// n bytes takes about (n/ChunkBytes)*Every to deliver.
type trickleSpec struct {
	ChunkBytes int
	Every      time.Duration
}

// SetLinkDelay adds a constant latency to every write in the from->to
// direction (0 removes it). Unlike DelayProb this is deterministic and
// per link, which is what a straggler-degradation test needs: one slow
// destination among fast ones.
func (t *FaultTransport) SetLinkDelay(from, to p2p.PeerID, d time.Duration) {
	t.mu.Lock()
	if d <= 0 {
		delete(t.linkDelay, dirKey{from, to})
	} else {
		t.linkDelay[dirKey{from, to}] = d
	}
	t.mu.Unlock()
}

// SetLinkTrickle throttles the from->to direction to chunkBytes per
// every sleep, modelling a stalled-but-alive connection that drains a
// few bytes at a time. chunkBytes <= 0 or every <= 0 removes the
// trickle.
func (t *FaultTransport) SetLinkTrickle(from, to p2p.PeerID, chunkBytes int, every time.Duration) {
	t.mu.Lock()
	if chunkBytes <= 0 || every <= 0 {
		delete(t.trickle, dirKey{from, to})
	} else {
		t.trickle[dirKey{from, to}] = trickleSpec{ChunkBytes: chunkBytes, Every: every}
	}
	t.mu.Unlock()
}

// SetConfig replaces the fault schedule at runtime.
func (t *FaultTransport) SetConfig(cfg FaultConfig) {
	t.mu.Lock()
	t.cfg = cfg
	t.mu.Unlock()
}

// Partition cuts the pair (a, b) in both directions: established
// connections are reset and new dials refused until Heal.
func (t *FaultTransport) Partition(a, b p2p.PeerID) {
	t.cutDirs(dirKey{a, b}, dirKey{b, a})
}

// PartitionOneWay cuts only the a -> b direction: a's dials to b are
// refused and a's established connections to b are reset, while b
// keeps dialing (and pinging) a normally. Because the fault injector
// wraps only the dialing side's connection, the asymmetry is exact:
// a suspects b, b does not suspect a.
func (t *FaultTransport) PartitionOneWay(a, b p2p.PeerID) {
	t.cutDirs(dirKey{a, b})
}

// Split partitions two peer groups from each other: every cross-group
// direction is cut (intra-group traffic is untouched). It is the
// majority/minority scenario in one call.
func (t *FaultTransport) Split(a, b []p2p.PeerID) {
	keys := make([]dirKey, 0, 2*len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			keys = append(keys, dirKey{x, y}, dirKey{y, x})
		}
	}
	t.cutDirs(keys...)
}

// cutDirs installs directional cuts and resets the affected
// connections.
func (t *FaultTransport) cutDirs(keys ...dirKey) {
	t.mu.Lock()
	var victims []*faultConn
	for _, key := range keys {
		t.cut[key] = true
		for c := range t.conns[key] {
			victims = append(victims, c)
		}
	}
	t.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Heal removes the partition between a and b (both directions).
func (t *FaultTransport) Heal(a, b p2p.PeerID) {
	t.mu.Lock()
	delete(t.cut, dirKey{a, b})
	delete(t.cut, dirKey{b, a})
	t.mu.Unlock()
}

// HealAll removes every scripted cut (pair partitions, one-way cuts
// and group splits alike).
func (t *FaultTransport) HealAll() {
	t.mu.Lock()
	clear(t.cut)
	t.mu.Unlock()
}

// Stats reports how many faults have been injected so far.
func (t *FaultTransport) Stats() FaultStats {
	return FaultStats{
		Drops: t.drops.Load(), Resets: t.resets.Load(), Dups: t.dups.Load(),
		Delays: t.delays.Load(), DialFails: t.dialFails.Load(),
		PartitionRefusals: t.refusals.Load(),
	}
}

// Dial implements Transport.
func (t *FaultTransport) Dial(from, to p2p.PeerID, addr string) (net.Conn, error) {
	if from == Observer || to == Observer {
		return t.inner.Dial(from, to, addr)
	}
	key := dirKey{from, to}
	t.mu.Lock()
	if t.cut[key] {
		t.mu.Unlock()
		t.refusals.Add(1)
		return nil, fmt.Errorf("wire: peers %d and %d are partitioned", from, to)
	}
	fail := t.rng.Bool(t.cfg.DialFailProb)
	t.mu.Unlock()
	if fail {
		t.dialFails.Add(1)
		return nil, fmt.Errorf("wire: injected dial failure %d -> %d", from, to)
	}
	conn, err := t.inner.Dial(from, to, addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: conn, t: t, key: key}
	t.mu.Lock()
	set := t.conns[key]
	if set == nil {
		set = make(map[*faultConn]struct{})
		t.conns[key] = set
	}
	set[fc] = struct{}{}
	t.mu.Unlock()
	return fc, nil
}

// faultConn applies the write-side faults of its FaultTransport. The
// key is the dialing direction: a directional cut installed after the
// dial still resets this connection, but only from the cut side —
// frames the server side writes back (acks, pongs) are not wrapped,
// which is exactly the asymmetry a one-way partition models.
type faultConn struct {
	net.Conn
	t    *FaultTransport
	key  dirKey
	dead atomic.Bool
}

// roll draws this write's fault decisions in one critical section so
// the dice stream stays a deterministic function of the seed.
func (c *faultConn) roll() (cut bool, delay time.Duration, drop, dup, reset bool, tr trickleSpec) {
	t := c.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cut[c.key] {
		return true, 0, false, false, false, trickleSpec{}
	}
	cfg := t.cfg
	if cfg.DelayProb > 0 && t.rng.Bool(cfg.DelayProb) && cfg.MaxDelay > 0 {
		delay = time.Duration(t.rng.Float64() * float64(cfg.MaxDelay))
	}
	delay += t.linkDelay[c.key]
	tr = t.trickle[c.key]
	drop = t.rng.Bool(cfg.DropProb)
	if !drop {
		dup = t.rng.Bool(cfg.DupProb)
		reset = t.rng.Bool(cfg.ResetProb)
	}
	return
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.dead.Load() {
		return 0, fmt.Errorf("wire: connection reset by fault injector")
	}
	cut, delay, drop, dup, reset, tr := c.roll()
	if cut {
		c.t.refusals.Add(1)
		c.Close()
		return 0, fmt.Errorf("wire: connection cut by partition")
	}
	if delay > 0 {
		c.t.delays.Add(1)
		time.Sleep(delay)
	}
	if drop {
		c.t.drops.Add(1)
		c.Close()
		return 0, fmt.Errorf("wire: injected drop (frame lost, connection reset)")
	}
	n, err := c.write(b, tr)
	if err != nil {
		return n, err
	}
	if dup {
		c.t.dups.Add(1)
		c.write(b, tr)
	}
	if reset {
		c.t.resets.Add(1)
		c.Close()
		return n, fmt.Errorf("wire: injected reset (frame delivered, connection reset)")
	}
	return n, nil
}

// write delivers b, trickled into chunks when the link is throttled.
func (c *faultConn) write(b []byte, tr trickleSpec) (int, error) {
	if tr.ChunkBytes <= 0 {
		return c.Conn.Write(b) //dpr:nodeadline passthrough wrapper: the caller's deadline is set on the wrapped conn and applies here
	}
	written := 0
	for written < len(b) {
		end := written + tr.ChunkBytes
		if end > len(b) {
			end = len(b)
		}
		n, err := c.Conn.Write(b[written:end]) //dpr:nodeadline passthrough wrapper: the caller's deadline is set on the wrapped conn and applies here
		written += n
		if err != nil {
			return written, err
		}
		if written < len(b) {
			time.Sleep(tr.Every)
		}
	}
	return written, nil
}

func (c *faultConn) Close() error {
	if c.dead.Swap(true) {
		return nil
	}
	c.t.mu.Lock()
	if set := c.t.conns[c.key]; set != nil {
		delete(set, c)
	}
	c.t.mu.Unlock()
	return c.Conn.Close()
}
