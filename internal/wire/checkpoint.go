package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// Peer crash/restart follows internal/core's checkpoint design: the
// durable state is the per-document ranker triple (rank, accumulator,
// last-pushed value), serialized in the same magic/version/records
// layout, extended with the wire layer's recovery state — the
// duplicate-suppression table and the store-and-retry outbound queues
// (unacknowledged frames verbatim plus coalesced pending updates).
// Restoring a snapshot into a fresh Peer resumes the computation
// exactly where the crash left it: senders redeliver everything
// unacknowledged, receivers suppress what was already folded, and the
// termination counters carry over so the cluster-wide probe stays
// exact across the crash.
//
// Version 2 keys both the duplicate-suppression table and the
// outbound queues by delivery stream (source, original destination)
// instead of by single peer, which is what lets a departed peer's
// state migrate: its ring successor adopts the dedup entries and the
// unacknowledged frames under their original stream identity, so
// redirected retransmissions are recognized wherever they land. The
// same framing doubles as the handoff wire format (Handoff).
//
// Version 3 adds the ownership-epoch vector (one fencing epoch per
// ring slot) and the epoch-rejected counter, so a restored peer
// re-frames its unacknowledged batches under epochs at least as fresh
// as the ones it crashed with — a receiver that moved on can nack the
// stale retransmissions instead of silently double-folding them.
//
// Version 4 adds the epoch-rejected sequence list: seqs this peer
// nacked at the epoch fence whose updates therefore never folded.
// lastSeq can legitimately pass such a seq (a later refreshed-epoch
// frame folds first), so whoever inherits the dedup table — the ring
// successor, or the peer itself after a restart — must also inherit
// this exemption list, or a retransmission of the rejected frame
// would be swallowed as a duplicate and its updates lost. Version 3
// snapshots (no such list) still decode.
//
// Version 5 persists the overload-protection state: the three flow-
// control counters (credit stalls, shed-coalesced updates, slow-peer
// transitions) in the header, and per outbound stream the last credit
// window the destination advertised, so a restarted sender resumes
// under the receiver's pre-crash budget instead of bursting at the
// configured maximum. Version 4 and 3 snapshots still decode; their
// streams restart at the configured window.

const (
	peerSnapMagic   = "DPRW"
	peerSnapVersion = 5
	// peerSnapMinVersion is the compatibility floor: the oldest
	// snapshot version the decoder still accepts. Raising it is a
	// breaking change for any peer restoring an older checkpoint and
	// must be called out in the release notes.
	peerSnapMinVersion = 3
)

// PeerSnapshot is a crashed peer's durable state.
type PeerSnapshot struct {
	ID   p2p.PeerID
	Docs []graph.NodeID

	// Ranker state, indexed like Docs.
	Rank, Acc, Last []float64

	// LastSeq is the highest folded sequence number per delivery
	// stream (source peer, original destination).
	LastSeq []SeqEntry

	// Rejected lists epoch-rejected sequence numbers: never folded,
	// exempt from duplicate suppression even when below the stream's
	// LastSeq entry.
	Rejected []SeqEntry

	// Outbound is the store-and-retry state per delivery stream.
	Outbound []OutboundState

	// Epochs is the ownership-epoch vector, indexed by ring slot: the
	// highest fencing epoch this peer had observed per key range.
	Epochs []uint64

	// Counters, carried across the restart.
	Sent, Processed                   uint64
	Retries, Reconnects, Redeliveries uint64
	Coalesced, DupDropped             uint64
	Forwarded, Misdropped             uint64
	EpochRejected                     uint64
	CreditStalls, ShedCoalesced       uint64
	SlowPeer                          uint64
	DeltaShipped, DeltaFolded         float64
}

// SeqEntry is one duplicate-suppression record: the highest folded
// sequence number of the (Src, Dest) delivery stream. Dest is the
// peer the stream's frames were originally framed for, which after a
// migration can differ from the peer holding the entry.
type SeqEntry struct {
	Src, Dest p2p.PeerID
	Seq       uint64
}

// OutboundState is one delivery stream's sender state. Src is the
// peer that framed the stream's batches — normally the snapshotted
// peer itself, but after adopting a departed peer's outbound queues a
// snapshot can carry streams framed by earlier owners.
type OutboundState struct {
	Src     p2p.PeerID
	Dest    p2p.PeerID
	NextSeq uint64
	Window  uint64         // last advertised credit window (0: use configured default)
	Unacked []UnackedFrame // framed, possibly transmitted, not acknowledged
	Pending []p2p.Update   // coalesced, not yet framed (Src == snapshot owner only)
}

// UnackedFrame is a framed batch that must be redelivered verbatim
// (same sequence number) so the receiver can suppress it if the
// original copy was folded before the crash.
type UnackedFrame struct {
	Seq     uint64
	Updates []p2p.Update
}

// Handoff is the state transferred when a departed peer's document
// range moves to its ring successor: the ranker rows for the migrated
// documents, the per-stream duplicate-suppression table, and the
// departed peer's outbound queues (unacknowledged frames under their
// original stream identity, plus parked never-framed updates). It is
// the in-memory form of the same state a PeerSnapshot serializes.
type Handoff struct {
	Docs            []graph.NodeID
	Rank, Acc, Last []float64
	LastSeq         map[stream]uint64
	Rejected        []SeqEntry // epoch-rejected seqs, exempt from dedup
	Outbound        []OutboundState
	Epochs          []uint64 // departed peer's ownership-epoch vector

	done chan struct{} // closed by the adopting peer's processing loop
}

// HandoffFromSnapshot builds the handoff a departed peer's snapshot
// implies: everything except its counters, which the cluster folds
// into its departed-peer accumulators instead.
func HandoffFromSnapshot(s *PeerSnapshot) *Handoff {
	h := &Handoff{
		Docs:    append([]graph.NodeID(nil), s.Docs...),
		Rank:    append([]float64(nil), s.Rank...),
		Acc:     append([]float64(nil), s.Acc...),
		Last:    append([]float64(nil), s.Last...),
		LastSeq: make(map[stream]uint64, len(s.LastSeq)),
		Epochs:  append([]uint64(nil), s.Epochs...),
	}
	for _, e := range s.LastSeq {
		h.LastSeq[stream{src: e.Src, dest: e.Dest}] = e.Seq
	}
	h.Rejected = append([]SeqEntry(nil), s.Rejected...)
	for _, ob := range s.Outbound {
		h.Outbound = append(h.Outbound, OutboundState{
			Src: ob.Src, Dest: ob.Dest, NextSeq: ob.NextSeq, Window: ob.Window,
			Unacked: ob.Unacked, Pending: ob.Pending,
		})
	}
	return h
}

// snapshot assembles the peer's durable state. Callers must have
// stopped the peer's goroutines first (stop), so every field is
// quiescent.
func (p *Peer) snapshot() *PeerSnapshot {
	docs, _ := p.rk.snapshotRanks()
	s := &PeerSnapshot{
		ID:            p.cfg.ID,
		Docs:          docs,
		Rank:          append([]float64(nil), p.rk.rank...),
		Acc:           append([]float64(nil), p.rk.acc...),
		Last:          append([]float64(nil), p.rk.last...),
		Epochs:        p.view().Epochs,
		EpochRejected: p.m.epochRejected.Load(),
		CreditStalls:  p.m.creditStalls.Load(),
		ShedCoalesced: p.m.shedCoalesced.Load(),
		SlowPeer:      p.m.slowPeer.Load(),
		Sent:          p.m.sent.Load(),
		Processed:     p.m.processed.Load(),
		Retries:       p.m.retries.Load(),
		Reconnects:    p.m.reconnects.Load(),
		Redeliveries:  p.m.redeliveries.Load(),
		Coalesced:     p.m.coalesced.Load(),
		DupDropped:    p.m.dupDropped.Load(),
		Forwarded:     p.m.forwarded.Load(),
		Misdropped:    p.m.misdropped.Load(),
		DeltaShipped:  p.m.deltaShipped.Load(),
		DeltaFolded:   p.m.deltaFolded.Load(),
	}
	for st, seq := range p.lastSeq {
		s.LastSeq = append(s.LastSeq, SeqEntry{Src: st.src, Dest: st.dest, Seq: seq})
	}
	slices.SortFunc(s.LastSeq, func(a, b SeqEntry) int {
		if a.Src != b.Src {
			return int(a.Src - b.Src)
		}
		return int(a.Dest - b.Dest)
	})
	for st, seqs := range p.rejected {
		for seq := range seqs {
			s.Rejected = append(s.Rejected, SeqEntry{Src: st.src, Dest: st.dest, Seq: seq})
		}
	}
	slices.SortFunc(s.Rejected, func(a, b SeqEntry) int {
		if a.Src != b.Src {
			return int(a.Src - b.Src)
		}
		if a.Dest != b.Dest {
			return int(a.Dest - b.Dest)
		}
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		}
		return 0
	})
	strms := make([]stream, 0, len(p.senders))
	for st := range p.senders {
		strms = append(strms, st)
	}
	slices.SortFunc(strms, func(a, b stream) int {
		if a.src != b.src {
			return int(a.src - b.src)
		}
		return int(a.dest - b.dest)
	})
	for _, st := range strms {
		snd := p.senders[st]
		ob := OutboundState{Src: st.src, Dest: st.dest, NextSeq: snd.nextSeq, Window: snd.window}
		for _, fr := range snd.unacked {
			// Decode the frame back into updates; the restore re-frames
			// them with the same stream identity and sequence number.
			_, _, seq, us, err := decodeFrameBytes(fr.bytes)
			if err != nil {
				continue // cannot happen: we encoded it
			}
			ob.Unacked = append(ob.Unacked, UnackedFrame{Seq: seq, Updates: us})
		}
		if st.src == p.cfg.ID {
			ob.Pending = p.rq.Drain(st.dest)
		}
		if len(ob.Unacked) > 0 || len(ob.Pending) > 0 || ob.NextSeq > 1 {
			s.Outbound = append(s.Outbound, ob)
		}
	}
	// Queued destinations that never got a sender (possible when an
	// ownership reroute parked updates during shutdown).
	for _, dest := range p.rq.Dests() {
		s.Outbound = append(s.Outbound, OutboundState{
			Src: p.cfg.ID, Dest: dest, NextSeq: 1, Pending: p.rq.Drain(dest),
		})
	}
	return s
}

// decodeFrameBytes parses a full stream-batch frame as built by
// nextFrame or installAdoptedSender. Both the epoch-stamped frame and
// the legacy stream frame decode; the epoch itself is dropped — the
// restorer re-stamps with its own current epoch.
func decodeFrameBytes(b []byte) (src, dest p2p.PeerID, seq uint64, us []p2p.Update, err error) {
	typ, payload, err := readFrameBytes(b)
	if err != nil {
		return 0, 0, 0, nil, fmt.Errorf("wire: not a stream batch frame")
	}
	switch typ {
	case frameBatchStrm:
		return decodeBatchStrm(payload)
	case frameBatchEpoch:
		src, dest, seq, _, us, err = decodeBatchEpoch(payload)
		return src, dest, seq, us, err
	}
	return 0, 0, 0, nil, fmt.Errorf("wire: not a stream batch frame")
}

func readFrameBytes(b []byte) (byte, []byte, error) {
	if len(b) < 5 {
		return 0, nil, fmt.Errorf("wire: frame too short")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint32(len(b)-5) != n {
		return 0, nil, fmt.Errorf("wire: frame length mismatch")
	}
	return b[4], b[5:], nil
}

// RestorePeer rejoins a crashed peer: a fresh listener (new address),
// the snapshot's ranker and recovery state, and senders primed to
// redeliver everything unacknowledged. Call SetPeers (on every peer,
// since the address changed) and then Start; the restored peer skips
// the initial push.
func RestorePeer(cfg PeerConfig, snap *PeerSnapshot) (*Peer, error) {
	if snap == nil {
		return nil, fmt.Errorf("wire: nil snapshot")
	}
	if cfg.ID != snap.ID {
		return nil, fmt.Errorf("wire: snapshot is for peer %d, config says %d", snap.ID, cfg.ID)
	}
	if !slices.Equal(cfg.Docs, snap.Docs) {
		return nil, fmt.Errorf("wire: snapshot document set does not match config")
	}
	if len(snap.Rank) != len(snap.Docs) || len(snap.Acc) != len(snap.Docs) || len(snap.Last) != len(snap.Docs) {
		return nil, fmt.Errorf("wire: snapshot ranker state does not match its document set")
	}
	p, err := NewPeer(cfg)
	if err != nil {
		return nil, err
	}
	p.restored = true
	copy(p.rk.rank, snap.Rank)
	copy(p.rk.acc, snap.Acc)
	copy(p.rk.last, snap.Last)
	for _, e := range snap.LastSeq {
		p.lastSeq[stream{src: e.Src, dest: e.Dest}] = e.Seq
	}
	for _, e := range snap.Rejected {
		st := stream{src: e.Src, dest: e.Dest}
		if p.rejected[st] == nil {
			p.rejected[st] = make(map[uint64]struct{})
		}
		p.rejected[st][e.Seq] = struct{}{}
	}
	// Elementwise-max merge: the config's epoch vector (the cluster's
	// current view) and the snapshot's (what the peer saw before the
	// crash) can each be ahead on different slots.
	for i, e := range snap.Epochs {
		p.adoptEpoch(p2p.PeerID(i), e)
	}
	p.m.restore(snap)
	p.rk.resetMass()
	for _, ob := range snap.Outbound {
		st := stream{src: ob.Src, dest: ob.Dest}
		if _, dup := p.senders[st]; dup {
			continue
		}
		s := p.newSender(st)
		s.nextSeq = ob.NextSeq
		if ob.Window > 0 {
			// Resume under the receiver's pre-crash credit budget; the
			// first credit ack refreshes it either way.
			s.window = ob.Window
		}
		for _, uf := range ob.Unacked {
			fr := &frameRec{seq: uf.Seq, updates: len(uf.Updates)}
			// Same stream identity and seq (dedup survives the crash),
			// re-stamped with the restorer's freshest epoch for the range.
			fr.bytes = frameBytes(frameBatchEpoch, encodeBatchEpoch(st.src, st.dest, uf.Seq, p.epochOf(st.dest), uf.Updates))
			s.unacked = append(s.unacked, fr)
		}
		if len(s.unacked) > 0 {
			s.sendSeq = s.unacked[0].seq
			p.m.unackedFrames.Add(float64(len(s.unacked)))
		} else {
			s.sendSeq = s.nextSeq
		}
		for _, u := range ob.Pending {
			// Two merged checkpoints can queue the same document for
			// the same destination; an absorbed update is consumed
			// here, exactly like live coalescing, or the termination
			// probe could never balance.
			if p.rq.DeferMerge(ob.Dest, u) {
				p.m.coalesced.Add(1)
				p.m.processed.Add(1)
			}
		}
		p.senders[st] = s
		p.wg.Add(1)
		go s.loop()
	}
	// Pending updates only ever leave through a self-stream sender
	// (adopted streams retransmit their inherited frames but never
	// frame new ones), so every queued destination needs one — a
	// merged checkpoint can carry a departed peer's pending updates
	// for a destination this peer never dialed itself.
	for _, dest := range p.rq.Dests() {
		p.sender(stream{src: p.cfg.ID, dest: dest})
	}
	return p, nil
}

// MergeSnapshot folds a departed peer's snapshot into the (also
// crashed) successor's snapshot: ranker rows for documents the
// successor does not already hold, the per-stream dedup table (keeping
// the higher sequence number), and the departed peer's outbound
// streams. Counters are NOT merged — the cluster accounts a departed
// peer's counters separately, exactly as in the live-adoption path.
func MergeSnapshot(dst, src *PeerSnapshot) {
	have := make(map[graph.NodeID]struct{}, len(dst.Docs))
	for _, d := range dst.Docs {
		have[d] = struct{}{}
	}
	for i, d := range src.Docs {
		if _, dup := have[d]; dup {
			continue
		}
		dst.Docs = append(dst.Docs, d)
		dst.Rank = append(dst.Rank, src.Rank[i])
		dst.Acc = append(dst.Acc, src.Acc[i])
		dst.Last = append(dst.Last, src.Last[i])
	}
	seq := make(map[stream]int, len(dst.LastSeq))
	for i, e := range dst.LastSeq {
		seq[stream{src: e.Src, dest: e.Dest}] = i
	}
	for _, e := range src.LastSeq {
		if i, ok := seq[stream{src: e.Src, dest: e.Dest}]; ok {
			if e.Seq > dst.LastSeq[i].Seq {
				dst.LastSeq[i].Seq = e.Seq
			}
			continue
		}
		dst.LastSeq = append(dst.LastSeq, e)
	}
	rej := make(map[SeqEntry]struct{}, len(dst.Rejected))
	for _, e := range dst.Rejected {
		rej[e] = struct{}{}
	}
	for _, e := range src.Rejected {
		if _, dup := rej[e]; !dup {
			dst.Rejected = append(dst.Rejected, e)
		}
	}
	streams := make(map[stream]struct{}, len(dst.Outbound))
	for _, ob := range dst.Outbound {
		streams[stream{src: ob.Src, dest: ob.Dest}] = struct{}{}
	}
	for _, ob := range src.Outbound {
		if _, dup := streams[stream{src: ob.Src, dest: ob.Dest}]; dup {
			continue // cannot happen: streams migrate to exactly one successor
		}
		dst.Outbound = append(dst.Outbound, ob)
	}
	// Ownership epochs merge elementwise-max: fencing only ever raises
	// an epoch, so the higher observation is the fresher one.
	if len(src.Epochs) > len(dst.Epochs) {
		dst.Epochs = append(dst.Epochs, make([]uint64, len(src.Epochs)-len(dst.Epochs))...)
	}
	for i, e := range src.Epochs {
		if e > dst.Epochs[i] {
			dst.Epochs[i] = e
		}
	}
}

// ShedFromSnapshot extracts the ranker rows for docs from a crashed
// peer's snapshot (for handing the range to a joining peer), removing
// them from the snapshot in place. The snapshot's streams and queues
// stay put: pending updates for shed documents are re-routed when the
// peer is restored and the cluster pushes the new ownership table.
func ShedFromSnapshot(s *PeerSnapshot, docs []graph.NodeID) (rank, acc, last []float64, err error) {
	index := make(map[graph.NodeID]int, len(s.Docs))
	for i, d := range s.Docs {
		index[d] = i
	}
	rank = make([]float64, len(docs))
	acc = make([]float64, len(docs))
	last = make([]float64, len(docs))
	shedSet := make(map[graph.NodeID]struct{}, len(docs))
	for i, d := range docs {
		j, ok := index[d]
		if !ok {
			return nil, nil, nil, fmt.Errorf("wire: snapshot of peer %d does not hold doc %d", s.ID, d)
		}
		rank[i], acc[i], last[i] = s.Rank[j], s.Acc[j], s.Last[j]
		shedSet[d] = struct{}{}
	}
	keepDocs := s.Docs[:0]
	keepRank, keepAcc, keepLast := s.Rank[:0], s.Acc[:0], s.Last[:0]
	for j, d := range s.Docs {
		if _, gone := shedSet[d]; gone {
			continue
		}
		keepDocs = append(keepDocs, d)
		keepRank = append(keepRank, s.Rank[j])
		keepAcc = append(keepAcc, s.Acc[j])
		keepLast = append(keepLast, s.Last[j])
	}
	s.Docs, s.Rank, s.Acc, s.Last = keepDocs, keepRank, keepAcc, keepLast
	return rank, acc, last, nil
}

// frameBytes renders one frame to a byte slice.
func frameBytes(typ byte, payload []byte) []byte {
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	return buf
}

// EncodeSnapshot serializes a snapshot in the checkpoint layout:
// magic, version, header, then fixed-size records.
func EncodeSnapshot(s *PeerSnapshot, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(peerSnapMagic); err != nil {
		return err
	}
	hdr := []uint64{
		peerSnapVersion, uint64(uint32(s.ID)), uint64(len(s.Docs)),
		uint64(len(s.LastSeq)), uint64(len(s.Outbound)), uint64(len(s.Epochs)),
		s.Sent, s.Processed, s.Retries, s.Reconnects, s.Redeliveries,
		s.Coalesced, s.DupDropped, s.Forwarded, s.Misdropped, s.EpochRejected,
		math.Float64bits(s.DeltaShipped), math.Float64bits(s.DeltaFolded),
		uint64(len(s.Rejected)),                     // v4: epoch-rejected seq records follow the outbound section
		s.CreditStalls, s.ShedCoalesced, s.SlowPeer, // v5: overload-protection counters
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, e := range s.Epochs {
		if err := binary.Write(bw, binary.LittleEndian, e); err != nil {
			return err
		}
	}
	for i, d := range s.Docs {
		rec := []uint64{
			uint64(uint32(d)),
			math.Float64bits(s.Rank[i]), math.Float64bits(s.Acc[i]), math.Float64bits(s.Last[i]),
		}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	for _, e := range s.LastSeq {
		rec := []uint64{uint64(uint32(e.Src)), uint64(uint32(e.Dest)), e.Seq}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	for _, ob := range s.Outbound {
		head := []uint64{
			uint64(uint32(ob.Src)), uint64(uint32(ob.Dest)), ob.NextSeq,
			uint64(len(ob.Unacked)), uint64(len(ob.Pending)),
			ob.Window, // v5: last advertised credit window
		}
		for _, v := range head {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		for _, uf := range ob.Unacked {
			if err := binary.Write(bw, binary.LittleEndian, uf.Seq); err != nil {
				return err
			}
			if err := writeUpdates(bw, uf.Updates); err != nil {
				return err
			}
		}
		if err := writeUpdates(bw, ob.Pending); err != nil {
			return err
		}
	}
	for _, e := range s.Rejected {
		rec := []uint64{uint64(uint32(e.Src)), uint64(uint32(e.Dest)), e.Seq}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeUpdates(w io.Writer, us []p2p.Update) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(us))); err != nil {
		return err
	}
	for _, u := range us {
		if err := binary.Write(w, binary.LittleEndian, uint64(uint32(u.Doc))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(u.Delta)); err != nil {
			return err
		}
	}
	return nil
}

func readU64(r io.Reader, vs ...*uint64) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// snapAllocCap bounds the initial capacity of any decoded slice so a
// corrupted count field costs at most a few kilobytes up front; the
// slices grow incrementally and a lying count dies on a short read
// long before it can exhaust memory.
const snapAllocCap = 4096

func capAlloc(n uint64) int {
	if n > snapAllocCap {
		return snapAllocCap
	}
	return int(n)
}

func readUpdates(r io.Reader) ([]p2p.Update, error) {
	var n uint64
	if err := readU64(r, &n); err != nil {
		return nil, err
	}
	if n > uint64(maxFrameBytes) {
		return nil, fmt.Errorf("wire: snapshot update list of %d entries exceeds limit", n)
	}
	us := make([]p2p.Update, 0, capAlloc(n))
	for i := uint64(0); i < n; i++ {
		var doc, bits uint64
		if err := readU64(r, &doc, &bits); err != nil {
			return nil, fmt.Errorf("wire: truncated snapshot update list: %w", err)
		}
		if doc > uint64(^uint32(0)) {
			return nil, fmt.Errorf("wire: snapshot update doc %d out of range", doc)
		}
		us = append(us, p2p.Update{Doc: graph.NodeID(uint32(doc)), Delta: math.Float64frombits(bits)})
	}
	return us, nil
}

// DecodeSnapshot parses a snapshot written by EncodeSnapshot. It is
// hardened against truncated and corrupted input: every count field is
// bounded, allocation grows incrementally rather than trusting counts,
// and any structural inconsistency (including trailing garbage) is an
// error rather than a silently misparsed snapshot.
func DecodeSnapshot(r io.Reader) (*PeerSnapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("wire: reading snapshot magic: %w", err)
	}
	if string(magic) != peerSnapMagic {
		return nil, fmt.Errorf("wire: bad snapshot magic %q", magic)
	}
	var version, id, ndocs, nseq, nout, nepochs uint64
	var sent, processed, retries, reconnects, redeliveries, coalesced, dup uint64
	var fwd, misd, epochRej uint64
	var shippedBits, foldedBits uint64
	if err := readU64(br, &version, &id, &ndocs, &nseq, &nout, &nepochs,
		&sent, &processed, &retries, &reconnects, &redeliveries,
		&coalesced, &dup, &fwd, &misd, &epochRej, &shippedBits, &foldedBits); err != nil {
		return nil, fmt.Errorf("wire: reading snapshot header: %w", err)
	}
	if version < peerSnapMinVersion || version > peerSnapVersion {
		return nil, fmt.Errorf("wire: unsupported snapshot version %d (supported %d..%d)",
			version, peerSnapMinVersion, peerSnapVersion)
	}
	var nrej uint64
	if version >= 4 {
		if err := readU64(br, &nrej); err != nil {
			return nil, fmt.Errorf("wire: reading snapshot header: %w", err)
		}
		if nrej > uint64(maxFrameBytes) {
			return nil, fmt.Errorf("wire: snapshot header sizes out of range")
		}
	}
	var creditStalls, shedCoalesced, slowPeer uint64
	if version >= 5 {
		if err := readU64(br, &creditStalls, &shedCoalesced, &slowPeer); err != nil {
			return nil, fmt.Errorf("wire: reading snapshot header: %w", err)
		}
	}
	if id > uint64(^uint32(0)>>1) {
		return nil, fmt.Errorf("wire: snapshot peer id %d out of range", id)
	}
	if ndocs > uint64(maxFrameBytes) || nseq > uint64(maxFrameBytes) || nout > uint64(maxFrameBytes) {
		return nil, fmt.Errorf("wire: snapshot header sizes out of range")
	}
	if nepochs > maxViewSlots {
		return nil, fmt.Errorf("wire: snapshot epoch vector of %d slots exceeds limit", nepochs)
	}
	s := &PeerSnapshot{
		ID:            p2p.PeerID(uint32(id)),
		Docs:          make([]graph.NodeID, 0, capAlloc(ndocs)),
		Rank:          make([]float64, 0, capAlloc(ndocs)),
		Acc:           make([]float64, 0, capAlloc(ndocs)),
		Last:          make([]float64, 0, capAlloc(ndocs)),
		LastSeq:       make([]SeqEntry, 0, capAlloc(nseq)),
		Sent:          sent,
		Processed:     processed,
		Retries:       retries,
		Reconnects:    reconnects,
		Redeliveries:  redeliveries,
		Coalesced:     coalesced,
		DupDropped:    dup,
		Forwarded:     fwd,
		Misdropped:    misd,
		EpochRejected: epochRej,
		CreditStalls:  creditStalls,
		ShedCoalesced: shedCoalesced,
		SlowPeer:      slowPeer,
		DeltaShipped:  math.Float64frombits(shippedBits),
		DeltaFolded:   math.Float64frombits(foldedBits),
	}
	if nepochs > 0 {
		s.Epochs = make([]uint64, 0, capAlloc(nepochs))
		for i := uint64(0); i < nepochs; i++ {
			var e uint64
			if err := readU64(br, &e); err != nil {
				return nil, fmt.Errorf("wire: reading snapshot epoch %d: %w", i, err)
			}
			s.Epochs = append(s.Epochs, e)
		}
	}
	for i := uint64(0); i < ndocs; i++ {
		var doc, rank, acc, last uint64
		if err := readU64(br, &doc, &rank, &acc, &last); err != nil {
			return nil, fmt.Errorf("wire: reading snapshot document %d: %w", i, err)
		}
		if doc > uint64(^uint32(0)) {
			return nil, fmt.Errorf("wire: snapshot document id %d out of range", doc)
		}
		s.Docs = append(s.Docs, graph.NodeID(uint32(doc)))
		s.Rank = append(s.Rank, math.Float64frombits(rank))
		s.Acc = append(s.Acc, math.Float64frombits(acc))
		s.Last = append(s.Last, math.Float64frombits(last))
	}
	for i := uint64(0); i < nseq; i++ {
		var src, dest, seq uint64
		if err := readU64(br, &src, &dest, &seq); err != nil {
			return nil, fmt.Errorf("wire: reading snapshot seq entry %d: %w", i, err)
		}
		if src > uint64(^uint32(0)>>1) || dest > uint64(^uint32(0)>>1) {
			return nil, fmt.Errorf("wire: snapshot seq entry peer id out of range")
		}
		s.LastSeq = append(s.LastSeq, SeqEntry{
			Src: p2p.PeerID(uint32(src)), Dest: p2p.PeerID(uint32(dest)), Seq: seq,
		})
	}
	for i := uint64(0); i < nout; i++ {
		var src, dest, nextSeq, nun, npend uint64
		if err := readU64(br, &src, &dest, &nextSeq, &nun, &npend); err != nil {
			return nil, fmt.Errorf("wire: reading snapshot outbound %d: %w", i, err)
		}
		var window uint64
		if version >= 5 {
			if err := readU64(br, &window); err != nil {
				return nil, fmt.Errorf("wire: reading snapshot outbound %d: %w", i, err)
			}
			if window > uint64(maxFrameBytes) {
				return nil, fmt.Errorf("wire: snapshot outbound window out of range")
			}
		}
		if src > uint64(^uint32(0)>>1) || dest > uint64(^uint32(0)>>1) {
			return nil, fmt.Errorf("wire: snapshot outbound peer id out of range")
		}
		if nun > uint64(maxFrameBytes) {
			return nil, fmt.Errorf("wire: snapshot outbound sizes out of range")
		}
		ob := OutboundState{
			Src: p2p.PeerID(uint32(src)), Dest: p2p.PeerID(uint32(dest)), NextSeq: nextSeq,
			Window: window,
		}
		for j := uint64(0); j < nun; j++ {
			var seq uint64
			if err := readU64(br, &seq); err != nil {
				return nil, fmt.Errorf("wire: reading snapshot frame seq: %w", err)
			}
			us, err := readUpdates(br)
			if err != nil {
				return nil, err
			}
			ob.Unacked = append(ob.Unacked, UnackedFrame{Seq: seq, Updates: us})
		}
		pend, err := readUpdates(br)
		if err != nil {
			return nil, err
		}
		if uint64(len(pend)) != npend {
			return nil, fmt.Errorf("wire: snapshot pending count mismatch")
		}
		ob.Pending = pend
		s.Outbound = append(s.Outbound, ob)
	}
	for i := uint64(0); i < nrej; i++ {
		var src, dest, seq uint64
		if err := readU64(br, &src, &dest, &seq); err != nil {
			return nil, fmt.Errorf("wire: reading snapshot rejected entry %d: %w", i, err)
		}
		if src > uint64(^uint32(0)>>1) || dest > uint64(^uint32(0)>>1) {
			return nil, fmt.Errorf("wire: snapshot rejected entry peer id out of range")
		}
		s.Rejected = append(s.Rejected, SeqEntry{
			Src: p2p.PeerID(uint32(src)), Dest: p2p.PeerID(uint32(dest)), Seq: seq,
		})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("wire: trailing bytes after snapshot")
	}
	return s, nil
}
