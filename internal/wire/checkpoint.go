package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// Peer crash/restart follows internal/core's checkpoint design: the
// durable state is the per-document ranker triple (rank, accumulator,
// last-pushed value), serialized in the same magic/version/records
// layout, extended with the wire layer's recovery state — the
// duplicate-suppression table and the store-and-retry outbound queues
// (unacknowledged frames verbatim plus coalesced pending updates).
// Restoring a snapshot into a fresh Peer resumes the computation
// exactly where the crash left it: senders redeliver everything
// unacknowledged, receivers suppress what was already folded, and the
// termination counters carry over so the cluster-wide probe stays
// exact across the crash.

const (
	peerSnapMagic   = "DPRW"
	peerSnapVersion = 1
)

// PeerSnapshot is a crashed peer's durable state.
type PeerSnapshot struct {
	ID   p2p.PeerID
	Docs []graph.NodeID

	// Ranker state, indexed like Docs.
	Rank, Acc, Last []float64

	// LastSeq is the highest folded sequence number per sender.
	LastSeq map[p2p.PeerID]uint64

	// Outbound is the store-and-retry state per destination.
	Outbound []OutboundState

	// Counters, carried across the restart.
	Sent, Processed                   uint64
	Retries, Reconnects, Redeliveries uint64
	Coalesced, DupDropped             uint64
	DeltaShipped, DeltaFolded         float64
}

// OutboundState is one destination's sender state.
type OutboundState struct {
	Dest    p2p.PeerID
	NextSeq uint64
	Unacked []UnackedFrame // framed, possibly transmitted, not acknowledged
	Pending []p2p.Update   // coalesced, not yet framed
}

// UnackedFrame is a framed batch that must be redelivered verbatim
// (same sequence number) so the receiver can suppress it if the
// original copy was folded before the crash.
type UnackedFrame struct {
	Seq     uint64
	Updates []p2p.Update
}

// snapshot assembles the peer's durable state. Callers must have
// stopped the peer's goroutines first (stop), so every field is
// quiescent.
func (p *Peer) snapshot() *PeerSnapshot {
	s := &PeerSnapshot{
		ID:           p.cfg.ID,
		Docs:         append([]graph.NodeID(nil), p.rk.docs...),
		Rank:         append([]float64(nil), p.rk.rank...),
		Acc:          append([]float64(nil), p.rk.acc...),
		Last:         append([]float64(nil), p.rk.last...),
		LastSeq:      make(map[p2p.PeerID]uint64, len(p.lastSeq)),
		Sent:         p.sent.Load(),
		Processed:    p.processed.Load(),
		Retries:      p.retries.Load(),
		Reconnects:   p.reconnects.Load(),
		Redeliveries: p.redeliveries.Load(),
		Coalesced:    p.coalesced.Load(),
		DupDropped:   p.dupDropped.Load(),
		DeltaShipped: math.Float64frombits(p.deltaOutBits.Load()),
		DeltaFolded:  math.Float64frombits(p.deltaInBits.Load()),
	}
	for from, seq := range p.lastSeq {
		s.LastSeq[from] = seq
	}
	dests := make([]p2p.PeerID, 0, len(p.senders))
	for dest := range p.senders {
		dests = append(dests, dest)
	}
	slices.Sort(dests)
	for _, dest := range dests {
		snd := p.senders[dest]
		ob := OutboundState{Dest: dest, NextSeq: snd.nextSeq}
		for _, fr := range snd.unacked {
			// Decode the frame back into updates; the restore re-frames
			// them with the same sequence number.
			_, seq, us, err := decodeFrameBytes(fr.bytes)
			if err != nil {
				continue // cannot happen: we encoded it
			}
			ob.Unacked = append(ob.Unacked, UnackedFrame{Seq: seq, Updates: us})
		}
		ob.Pending = p.rq.Drain(dest)
		if len(ob.Unacked) > 0 || len(ob.Pending) > 0 || ob.NextSeq > 1 {
			s.Outbound = append(s.Outbound, ob)
		}
	}
	return s
}

// decodeFrameBytes parses a full batch frame as built by nextFrame.
func decodeFrameBytes(b []byte) (p2p.PeerID, uint64, []p2p.Update, error) {
	typ, payload, err := readFrameBytes(b)
	if err != nil || typ != frameBatchSeq {
		return 0, 0, nil, fmt.Errorf("wire: not a sequenced batch frame")
	}
	return decodeBatchSeq(payload)
}

func readFrameBytes(b []byte) (byte, []byte, error) {
	if len(b) < 5 {
		return 0, nil, fmt.Errorf("wire: frame too short")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint32(len(b)-5) != n {
		return 0, nil, fmt.Errorf("wire: frame length mismatch")
	}
	return b[4], b[5:], nil
}

// RestorePeer rejoins a crashed peer: a fresh listener (new address),
// the snapshot's ranker and recovery state, and senders primed to
// redeliver everything unacknowledged. Call SetPeers (on every peer,
// since the address changed) and then Start; the restored peer skips
// the initial push.
func RestorePeer(cfg PeerConfig, snap *PeerSnapshot) (*Peer, error) {
	if snap == nil {
		return nil, fmt.Errorf("wire: nil snapshot")
	}
	if cfg.ID != snap.ID {
		return nil, fmt.Errorf("wire: snapshot is for peer %d, config says %d", snap.ID, cfg.ID)
	}
	if !slices.Equal(cfg.Docs, snap.Docs) {
		return nil, fmt.Errorf("wire: snapshot document set does not match config")
	}
	p, err := NewPeer(cfg)
	if err != nil {
		return nil, err
	}
	p.restored = true
	copy(p.rk.rank, snap.Rank)
	copy(p.rk.acc, snap.Acc)
	copy(p.rk.last, snap.Last)
	for from, seq := range snap.LastSeq {
		p.lastSeq[from] = seq
	}
	p.sent.Store(snap.Sent)
	p.processed.Store(snap.Processed)
	p.retries.Store(snap.Retries)
	p.reconnects.Store(snap.Reconnects)
	p.redeliveries.Store(snap.Redeliveries)
	p.coalesced.Store(snap.Coalesced)
	p.dupDropped.Store(snap.DupDropped)
	p.deltaOutBits.Store(math.Float64bits(snap.DeltaShipped))
	p.deltaInBits.Store(math.Float64bits(snap.DeltaFolded))
	for _, ob := range snap.Outbound {
		s := p.newSender(ob.Dest)
		s.nextSeq = ob.NextSeq
		for _, uf := range ob.Unacked {
			fr := &frameRec{seq: uf.Seq, updates: len(uf.Updates)}
			fr.bytes = frameBytes(frameBatchSeq, encodeBatchSeq(p.cfg.ID, uf.Seq, uf.Updates))
			s.unacked = append(s.unacked, fr)
		}
		if len(s.unacked) > 0 {
			s.sendSeq = s.unacked[0].seq
		} else {
			s.sendSeq = s.nextSeq
		}
		for _, u := range ob.Pending {
			p.rq.DeferMerge(ob.Dest, u)
		}
		p.senders[ob.Dest] = s
		p.wg.Add(1)
		go s.loop()
	}
	return p, nil
}

// frameBytes renders one frame to a byte slice.
func frameBytes(typ byte, payload []byte) []byte {
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	return buf
}

// EncodeSnapshot serializes a snapshot in the checkpoint layout:
// magic, version, header, then fixed-size records.
func EncodeSnapshot(s *PeerSnapshot, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(peerSnapMagic); err != nil {
		return err
	}
	hdr := []uint64{
		peerSnapVersion, uint64(uint32(s.ID)), uint64(len(s.Docs)),
		uint64(len(s.LastSeq)), uint64(len(s.Outbound)),
		s.Sent, s.Processed, s.Retries, s.Reconnects, s.Redeliveries,
		s.Coalesced, s.DupDropped,
		math.Float64bits(s.DeltaShipped), math.Float64bits(s.DeltaFolded),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i, d := range s.Docs {
		rec := []uint64{
			uint64(uint32(d)),
			math.Float64bits(s.Rank[i]), math.Float64bits(s.Acc[i]), math.Float64bits(s.Last[i]),
		}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	froms := make([]p2p.PeerID, 0, len(s.LastSeq))
	for from := range s.LastSeq {
		froms = append(froms, from)
	}
	slices.Sort(froms)
	for _, from := range froms {
		if err := binary.Write(bw, binary.LittleEndian, uint64(uint32(from))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.LastSeq[from]); err != nil {
			return err
		}
	}
	for _, ob := range s.Outbound {
		head := []uint64{uint64(uint32(ob.Dest)), ob.NextSeq, uint64(len(ob.Unacked)), uint64(len(ob.Pending))}
		for _, v := range head {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		for _, uf := range ob.Unacked {
			if err := binary.Write(bw, binary.LittleEndian, uf.Seq); err != nil {
				return err
			}
			if err := writeUpdates(bw, uf.Updates); err != nil {
				return err
			}
		}
		if err := writeUpdates(bw, ob.Pending); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeUpdates(w io.Writer, us []p2p.Update) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(us))); err != nil {
		return err
	}
	for _, u := range us {
		if err := binary.Write(w, binary.LittleEndian, uint64(uint32(u.Doc))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(u.Delta)); err != nil {
			return err
		}
	}
	return nil
}

func readU64(r io.Reader, vs ...*uint64) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readUpdates(r io.Reader) ([]p2p.Update, error) {
	var n uint64
	if err := readU64(r, &n); err != nil {
		return nil, err
	}
	if n > uint64(maxFrameBytes) {
		return nil, fmt.Errorf("wire: snapshot update list of %d entries exceeds limit", n)
	}
	us := make([]p2p.Update, n)
	for i := range us {
		var doc, bits uint64
		if err := readU64(r, &doc, &bits); err != nil {
			return nil, err
		}
		us[i] = p2p.Update{Doc: graph.NodeID(uint32(doc)), Delta: math.Float64frombits(bits)}
	}
	return us, nil
}

// DecodeSnapshot parses a snapshot written by EncodeSnapshot.
func DecodeSnapshot(r io.Reader) (*PeerSnapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("wire: reading snapshot magic: %w", err)
	}
	if string(magic) != peerSnapMagic {
		return nil, fmt.Errorf("wire: bad snapshot magic %q", magic)
	}
	var version, id, ndocs, nseq, nout uint64
	var sent, processed, retries, reconnects, redeliveries, coalesced, dup uint64
	var shippedBits, foldedBits uint64
	if err := readU64(br, &version, &id, &ndocs, &nseq, &nout,
		&sent, &processed, &retries, &reconnects, &redeliveries,
		&coalesced, &dup, &shippedBits, &foldedBits); err != nil {
		return nil, fmt.Errorf("wire: reading snapshot header: %w", err)
	}
	if version != peerSnapVersion {
		return nil, fmt.Errorf("wire: unsupported snapshot version %d", version)
	}
	if ndocs > uint64(maxFrameBytes) || nseq > uint64(maxFrameBytes) || nout > uint64(maxFrameBytes) {
		return nil, fmt.Errorf("wire: snapshot header sizes out of range")
	}
	s := &PeerSnapshot{
		ID:           p2p.PeerID(uint32(id)),
		Docs:         make([]graph.NodeID, ndocs),
		Rank:         make([]float64, ndocs),
		Acc:          make([]float64, ndocs),
		Last:         make([]float64, ndocs),
		LastSeq:      make(map[p2p.PeerID]uint64, nseq),
		Sent:         sent,
		Processed:    processed,
		Retries:      retries,
		Reconnects:   reconnects,
		Redeliveries: redeliveries,
		Coalesced:    coalesced,
		DupDropped:   dup,
		DeltaShipped: math.Float64frombits(shippedBits),
		DeltaFolded:  math.Float64frombits(foldedBits),
	}
	for i := uint64(0); i < ndocs; i++ {
		var doc, rank, acc, last uint64
		if err := readU64(br, &doc, &rank, &acc, &last); err != nil {
			return nil, fmt.Errorf("wire: reading snapshot document %d: %w", i, err)
		}
		s.Docs[i] = graph.NodeID(uint32(doc))
		s.Rank[i] = math.Float64frombits(rank)
		s.Acc[i] = math.Float64frombits(acc)
		s.Last[i] = math.Float64frombits(last)
	}
	for i := uint64(0); i < nseq; i++ {
		var from, seq uint64
		if err := readU64(br, &from, &seq); err != nil {
			return nil, err
		}
		s.LastSeq[p2p.PeerID(uint32(from))] = seq
	}
	for i := uint64(0); i < nout; i++ {
		var dest, nextSeq, nun, npend uint64
		if err := readU64(br, &dest, &nextSeq, &nun, &npend); err != nil {
			return nil, err
		}
		if nun > uint64(maxFrameBytes) {
			return nil, fmt.Errorf("wire: snapshot outbound sizes out of range")
		}
		ob := OutboundState{Dest: p2p.PeerID(uint32(dest)), NextSeq: nextSeq}
		for j := uint64(0); j < nun; j++ {
			var seq uint64
			if err := readU64(br, &seq); err != nil {
				return nil, err
			}
			us, err := readUpdates(br)
			if err != nil {
				return nil, err
			}
			ob.Unacked = append(ob.Unacked, UnackedFrame{Seq: seq, Updates: us})
		}
		pend, err := readUpdates(br)
		if err != nil {
			return nil, err
		}
		if uint64(len(pend)) != npend {
			return nil, fmt.Errorf("wire: snapshot pending count mismatch")
		}
		ob.Pending = pend
		s.Outbound = append(s.Outbound, ob)
	}
	return s, nil
}
