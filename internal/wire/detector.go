package wire

import (
	"fmt"
	"sync"
	"time"

	"dpr/internal/p2p"
	"dpr/internal/telemetry"
)

// Per-slot failure detection with quorum-confirmed eviction.
//
// The classic detector was a single cluster goroutine pinging every
// slot from an observer vantage: fault injection did not apply to its
// probes, and one vantage point alone decided eviction — a partition
// looked exactly like a crash. Here every live slot runs its own
// detector goroutine, pings the other slots through the cluster
// transport under its own peer identity (so scripted partitions cut
// its probes too), and gossips its suspicion set on the ping/pong
// exchange. A slot is only evicted once a majority of the live,
// unfenced population — the suspect included — concurs; a minority
// partition suspects everybody on the other side, never reaches
// quorum, and refuses (wire_evictions_refused) instead of
// split-brain-evicting the majority.

// detView is one remote vantage's last gossiped suspicion set.
type detView struct {
	suspects map[int]bool
	at       time.Time
}

// detector is one slot's failure-detection vantage.
type detector struct {
	c    *Cluster
	slot int

	mu    sync.Mutex
	miss  map[int]int     // consecutive ping misses per target slot
	views map[int]detView // latest gossiped suspicion set per vantage
}

// loop runs one detection round per heartbeat until the cluster stops.
func (d *detector) loop() {
	defer d.c.fdWg.Done()
	ticker := time.NewTicker(d.c.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-d.c.fdQuit:
			return
		case <-ticker.C:
		}
		d.round()
	}
}

// round pings every other live slot, exchanges suspicion gossip,
// tallies votes for this vantage's suspects, and either executes a
// quorum-confirmed eviction or records a refusal. A vantage that
// reaches a fenced slot while itself talking to a quorum triggers the
// anti-entropy reconciliation that completes the fenced slot's
// departure.
func (d *detector) round() {
	c := d.c
	type target struct {
		slot   int
		addr   string
		fenced bool
	}
	c.mu.Lock()
	if c.left[d.slot] || c.peers[d.slot] == nil {
		c.mu.Unlock()
		return // departed or crashed vantage: nothing to observe from
	}
	selfFenced := c.fenced[d.slot]
	leftNow := append([]bool(nil), c.left...)
	fencedNow := append([]bool(nil), c.fenced...)
	var targets []target
	n := 0 // voting population: live, unfenced slots (suspects included)
	for j := range c.peers {
		if c.left[j] {
			continue
		}
		if !c.fenced[j] {
			n++
		}
		if j != d.slot {
			targets = append(targets, target{slot: j, addr: c.addrs[j], fenced: c.fenced[j]})
		}
	}
	c.mu.Unlock()
	threshold := c.cfg.SuspectAfter
	interval := c.cfg.Heartbeat
	quorum := n/2 + 1

	reached := 0
	var healable []int // fenced slots this vantage reached this round
	for _, t := range targets {
		err := d.ping(t.slot, t.addr, interval)
		d.mu.Lock()
		switch {
		case err == nil:
			delete(d.miss, t.slot)
		case !t.fenced:
			d.miss[t.slot]++
			if d.miss[t.slot] == threshold {
				c.trace.Record(telemetry.EvSuspect, int32(d.slot), -1, 0, int64(t.slot))
			}
		}
		d.mu.Unlock()
		if err == nil {
			reached++
			if t.fenced {
				healable = append(healable, t.slot)
			}
		}
	}

	// Tally: one vote from this vantage plus one per other vantage
	// whose freshly gossiped suspicion set concurs. Slots already
	// fenced or departed are being handled; they are not re-proposed.
	fresh := 2 * interval * time.Duration(threshold)
	if fresh < 200*time.Millisecond {
		fresh = 200 * time.Millisecond
	}
	now := time.Now()
	votes := make(map[int]int)
	d.mu.Lock()
	for s, miss := range d.miss {
		if s < len(leftNow) && leftNow[s] {
			delete(d.miss, s)
			continue
		}
		if miss < threshold || (s < len(fencedNow) && fencedNow[s]) {
			continue
		}
		v := 1
		for j, view := range d.views {
			if j != d.slot && j != s && now.Sub(view.at) <= fresh && view.suspects[s] {
				v++
			}
		}
		votes[s] = v
	}
	d.mu.Unlock()
	for s, v := range votes {
		if !selfFenced && v >= quorum {
			if c.evictByQuorum(s, d.slot, v, quorum) {
				continue
			}
		}
		// Sub-quorum suspicion (or a vantage with no authority): park
		// the proposal and keep the suspect's state untouched.
		c.mEvictRefused.Add(1)
		c.trace.Record(telemetry.EvEvictRefused, int32(d.slot), -1, float64(v), int64(s))
	}

	// Heal: only a vantage that itself talks to a quorum may pull a
	// fenced slot back through reconciliation — a minority vantage
	// reaching another minority slot proves nothing.
	if !selfFenced && reached+1 >= quorum {
		for _, s := range healable {
			c.reconcileFenced(s, d.slot)
		}
	}
}

// ping performs one heartbeat round-trip to a target slot under this
// detector's peer identity, carrying the vantage's suspicion set and
// folding the target's gossiped set into views.
func (d *detector) ping(target int, addr string, interval time.Duration) error {
	timeout := interval
	if timeout < 50*time.Millisecond {
		timeout = 50 * time.Millisecond
	}
	tr := d.c.cfg.Transport
	if tr == nil {
		tr = TCPDialer()
	}
	conn, err := tr.Dial(p2p.PeerID(d.slot), p2p.PeerID(target), addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := writeFrame(conn, framePing, encodeGossip(p2p.PeerID(d.slot), d.suspects())); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != framePong {
		return fmt.Errorf("wire: unexpected frame %c to ping", typ)
	}
	if len(payload) > 0 {
		if from, sus, err := decodeGossip(payload); err == nil {
			d.recordView(int(from), sus)
		}
	}
	return nil
}

// suspects snapshots this vantage's current suspicion set.
func (d *detector) suspects() []p2p.PeerID {
	threshold := d.c.cfg.SuspectAfter
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []p2p.PeerID
	for s, miss := range d.miss {
		if miss >= threshold {
			out = append(out, p2p.PeerID(s))
		}
	}
	return out
}

// recordView stores a remote vantage's gossiped suspicion set.
func (d *detector) recordView(from int, sus []p2p.PeerID) {
	set := make(map[int]bool, len(sus))
	for _, s := range sus {
		set[int(s)] = true
	}
	d.mu.Lock()
	d.views[from] = detView{suspects: set, at: time.Now()}
	d.mu.Unlock()
}
