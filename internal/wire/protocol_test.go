package wire

import (
	"bytes"
	"math"
	"testing"

	"dpr/internal/p2p"
)

func TestBatchSeqCodec(t *testing.T) {
	us := []p2p.Update{{Doc: 3, Delta: 0.25}, {Doc: 9, Delta: -1.5}}
	sender, seq, out, err := decodeBatchSeq(encodeBatchSeq(5, 77, us))
	if err != nil {
		t.Fatal(err)
	}
	if sender != 5 || seq != 77 || len(out) != 2 || out[0] != us[0] || out[1] != us[1] {
		t.Fatalf("round trip: sender=%d seq=%d %v", sender, seq, out)
	}
	// Empty batch is legal.
	sender, seq, out, err = decodeBatchSeq(encodeBatchSeq(0, 1, nil))
	if err != nil || sender != 0 || seq != 1 || len(out) != 0 {
		t.Fatalf("empty: sender=%d seq=%d %v %v", sender, seq, out, err)
	}
}

func TestBatchSeqCodecRejectsMalformed(t *testing.T) {
	good := encodeBatchSeq(2, 9, []p2p.Update{{Doc: 1, Delta: 1}})
	cases := map[string][]byte{
		"empty":           nil,
		"short header":    good[:batchSeqHeader-1],
		"missing count":   good[:batchSeqHeader],
		"truncated entry": good[:len(good)-5],
		"trailing bytes":  append(append([]byte(nil), good...), 0xff),
	}
	for name, b := range cases {
		if _, _, _, err := decodeBatchSeq(b); err == nil {
			t.Errorf("%s: accepted %d bytes", name, len(b))
		}
	}
}

func TestAckCodec(t *testing.T) {
	seq, err := decodeAck(encodeAck(1 << 40))
	if err != nil || seq != 1<<40 {
		t.Fatalf("ack round trip: %d %v", seq, err)
	}
	for _, n := range []int{0, 7, 9} {
		if _, err := decodeAck(make([]byte, n)); err == nil {
			t.Errorf("accepted %d-byte ack", n)
		}
	}
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2})
	f.Add(encodeBatch(nil))
	f.Add(encodeBatch([]p2p.Update{{Doc: 7, Delta: 0.5}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		us, err := decodeBatch(b)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the same bytes.
		if !bytes.Equal(encodeBatch(us), b) {
			t.Fatalf("decode/encode not idempotent for %x", b)
		}
	})
}

func FuzzDecodeBatchSeq(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeBatchSeq(0, 0, nil))
	f.Add(encodeBatchSeq(3, 1<<33, []p2p.Update{{Doc: 1, Delta: math.Inf(1)}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		sender, seq, us, err := decodeBatchSeq(b)
		if err != nil {
			return
		}
		if sender < 0 {
			t.Fatalf("decoded negative sender %d", sender)
		}
		if !bytes.Equal(encodeBatchSeq(sender, seq, us), b) {
			t.Fatalf("decode/encode not idempotent for %x", b)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	writeFrame(&buf, frameBatch, encodeBatch([]p2p.Update{{Doc: 1, Delta: 2}}))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'B'})
	f.Add([]byte{5, 0, 0, 0, 'U', 1, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, err := readFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		// A successful read must reproduce the consumed prefix.
		var out bytes.Buffer
		if err := writeFrame(&out, typ, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), b[:out.Len()]) {
			t.Fatalf("read/write not idempotent for %x", b)
		}
	})
}
