package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// TestOverloadFirehoseLosslessShedding is the acceptance scenario for
// overload protection: both links into peer 2 are trickled to ~1.5MB/s
// (localhost TCP otherwise moves hundreds of MB/s, so the senders
// outpace the receiver's drain rate by far more than 10x) while the
// failure detector runs. The overload must be sustained across
// multiple suspect windows, and the protocol must respond by stalling
// on credit and coalescing the backlog in the retry queues — never by
// unbounded queueing, dropped deltas, or a false eviction of the
// slow-but-alive peer. After the throttle lifts, the run converges to
// the same fixed point as an unloaded run of the same placement.
func TestOverloadFirehoseLosslessShedding(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 77))

	// Unloaded reference run: same graph, same placement seed, no
	// throttling, no detector.
	ref, err := NewCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(120 * time.Second)
	ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	ft := NewFaultTransport(nil, FaultConfig{Seed: 7})
	const (
		heartbeat = 40 * time.Millisecond
		suspects  = 2
		window    = 2
	)
	c, err := NewCluster(g, ClusterConfig{
		Peers: 3, Epsilon: 1e-9, Seed: 5, Transport: ft,
		Heartbeat: heartbeat, SuspectAfter: suspects,
		InboxCap: 16, CreditWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Throttle every link into the victim before the firehose opens.
	// Heartbeat pings are smaller than one chunk, so the victim stays
	// responsive to the detector while its bulk intake crawls.
	const slow = p2p.PeerID(2)
	ft.SetLinkTrickle(0, slow, 1500, time.Millisecond)
	ft.SetLinkTrickle(1, slow, 1500, time.Millisecond)
	resCh := runAsync(c, 120*time.Second)

	// Queued-frame memory must stay bounded by the configured constant:
	// at most CreditWindow unacknowledged frames per stream, over the 6
	// ordered peer pairs. Track the gauge's peak while overloaded.
	const unackedBound = 6 * window
	peak := 0.0
	sample := func() {
		if v := c.TelemetrySnapshot().GaugeValue("wire_unacked_frames"); v > peak {
			peak = v
		}
	}
	waitCounter(t, 60*time.Second, "credit stalls under firehose", func() bool {
		sample()
		return c.stats().CreditStalls >= 3
	})
	// Hold the overload across at least two full suspect windows, so a
	// wrongly starving detector would have had every chance to evict.
	hold := time.Now().Add(2 * suspects * heartbeat)
	for time.Now().Before(hold) {
		sample()
		time.Sleep(2 * time.Millisecond)
	}
	ft.SetLinkTrickle(0, slow, 0, 0)
	ft.SetLinkTrickle(1, slow, 0, 0)

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res

	if res.CreditStalls == 0 {
		t.Fatal("firehose produced no credit stalls")
	}
	if res.ShedCoalesced == 0 {
		t.Fatal("no deltas recorded as shed into coalesced entries while stalled")
	}
	if res.EvictionsQuorum != 0 {
		t.Fatalf("slow-but-alive peer evicted %d times, want 0", res.EvictionsQuorum)
	}
	if peak > unackedBound {
		t.Fatalf("peak unacked frames %v exceeds configured bound %d", peak, unackedBound)
	}
	assertNoMassLost(t, res)
	assertRegistryConservation(t, c.TelemetrySnapshot(), res.Ranks)
	for i := range res.Ranks {
		rel := res.Ranks[i] - refRes.Ranks[i]
		if rel < 0 {
			rel = -rel
		}
		if rel/refRes.Ranks[i] > 1e-6 {
			t.Fatalf("doc %d: overloaded run %v vs unloaded run %v exceeds 1e-6 relative",
				i, res.Ranks[i], refRes.Ranks[i])
		}
	}
	t.Logf("firehose: %d msgs, stalls %d, shed %d, slow flags %d, peak unacked %v",
		res.Messages, res.CreditStalls, res.ShedCoalesced, res.SlowPeer, peak)
}

// TestOverloadMembershipLeaveUnderFirehose checks the control lane:
// with the bulk path of peer 3 jammed solid by trickled links and
// stalled senders, a Leave — whose shed/adopt traffic rides the
// priority lane — must still complete promptly instead of queueing
// behind the firehose.
func TestOverloadMembershipLeaveUnderFirehose(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 83))
	ft := NewFaultTransport(nil, FaultConfig{Seed: 11})
	c, err := NewCluster(g, ClusterConfig{
		Peers: 4, Epsilon: 1e-6, Seed: 13, Transport: ft,
		InboxCap: 16, CreditWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const slow = p2p.PeerID(3)
	for _, from := range []p2p.PeerID{0, 1, 2} {
		ft.SetLinkTrickle(from, slow, 1500, time.Millisecond)
	}
	resCh := runAsync(c, 120*time.Second)
	waitCounter(t, 60*time.Second, "credit stalls under firehose", func() bool {
		return c.stats().CreditStalls >= 1
	})

	done := make(chan error, 1)
	go func() { done <- c.Leave(1) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Leave wedged for 20s behind bulk traffic; control lane not prioritized")
	}

	for _, from := range []p2p.PeerID{0, 1, 2} {
		ft.SetLinkTrickle(from, slow, 0, 0)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.Leaves != 1 {
		t.Fatalf("leaves = %d, want 1", res.Leaves)
	}
	if res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", res.Misdropped)
	}
	assertSingleOwnership(t, c)
	assertNoMassLost(t, res)
	assertRegistryConservation(t, c.TelemetrySnapshot(), res.Ranks)
	assertRanksMatch(t, g, res.Ranks, 1e-3)
}

// TestOverloadStragglerDegradation gives every write into peer 2 a
// constant latency well past the configured SlowThreshold: the
// senders' send-to-ack EWMAs must cross the threshold, flag the
// destination slow (shrinking batches and stretching cadence toward
// it), and the run must still converge losslessly once the link
// recovers.
func TestOverloadStragglerDegradation(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 91))
	ft := NewFaultTransport(nil, FaultConfig{Seed: 17})
	c, err := NewCluster(g, ClusterConfig{
		Peers: 3, Epsilon: 1e-6, Seed: 19, Transport: ft,
		CreditWindow: 4, SlowThreshold: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const slow = p2p.PeerID(2)
	ft.SetLinkDelay(0, slow, 12*time.Millisecond)
	ft.SetLinkDelay(1, slow, 12*time.Millisecond)
	resCh := runAsync(c, 120*time.Second)
	waitCounter(t, 60*time.Second, "straggler detection", func() bool {
		return c.stats().SlowPeer >= 1
	})
	// Let the degraded mode actually run against the slow link for a
	// while before it heals.
	time.Sleep(100 * time.Millisecond)
	ft.SetLinkDelay(0, slow, 0)
	ft.SetLinkDelay(1, slow, 0)

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.SlowPeer == 0 {
		t.Fatal("no straggler detections recorded")
	}
	assertNoMassLost(t, res)
	assertRegistryConservation(t, c.TelemetrySnapshot(), res.Ranks)
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	t.Logf("straggler: %d msgs, slow flags %d, stalls %d", res.Messages, res.SlowPeer, res.CreditStalls)
}

// TestOverloadCreditWindowEnforced drives the credit protocol over a
// raw connection: a fake receiver that withholds acknowledgements must
// cap the sender at CreditWindow in-flight frames, a credit frame
// advertising a smaller window must shrink it, and a larger one must
// release the coalesced backlog — with every queued delta eventually
// delivered exactly once.
func TestOverloadCreditWindowEnforced(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	// Docs 1..8 live on peer 1, which the test impersonates with a raw
	// listener. Link structure is irrelevant: updates are injected
	// straight into the sender's retry queue.
	adj := make([][]graph.NodeID, 9)
	for i := 1; i < 9; i++ {
		adj[0] = append(adj[0], graph.NodeID(i))
	}
	g := graph.FromAdjacency(adj)
	docPeer := make([]p2p.PeerID, 9)
	for i := 1; i < 9; i++ {
		docPeer[i] = 1
	}
	p, err := NewPeer(PeerConfig{
		ID: 0, Graph: g, DocPeer: docPeer, Docs: []graph.NodeID{0},
		CreditWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	p.SetPeers([]string{p.Addr(), ln.Addr().String()})

	var mu sync.Mutex
	seqs := map[uint64]int{} // seq -> updates in that frame, first delivery only
	connCh := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		connCh <- conn
		for {
			typ, payload, err := readFrame(conn)
			if err != nil {
				return
			}
			if typ != frameBatchEpoch {
				continue
			}
			_, _, seq, _, us, err := decodeBatchEpoch(payload)
			if err != nil {
				continue
			}
			mu.Lock()
			if _, dup := seqs[seq]; !dup {
				seqs[seq] = len(us)
			}
			mu.Unlock()
		}
	}()

	distinct := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs)
	}
	waitFrames := func(want int) {
		t.Helper()
		waitCounter(t, 10*time.Second, "frames to arrive", func() bool {
			return distinct() >= want
		})
	}

	// Six updates for six distinct documents, spaced so each would be
	// framed individually if credit allowed. The receiver acknowledges
	// nothing, so exactly CreditWindow frames may leave; the other four
	// updates must park (and stay coalescible) in the retry queue.
	for i := 1; i <= 6; i++ {
		p.queueRemote(1, []p2p.Update{{Doc: graph.NodeID(i), Delta: 0.1}})
		time.Sleep(20 * time.Millisecond)
	}
	waitFrames(2)
	time.Sleep(300 * time.Millisecond) // any third frame would arrive well within this
	if n := distinct(); n != 2 {
		t.Fatalf("receiver saw %d distinct frames with no credit granted, want exactly 2", n)
	}
	if st := p.Stats(); st.CreditStalls == 0 {
		t.Fatal("sender recorded no credit stall while gated")
	}

	conn := <-connCh
	defer conn.Close()

	// Acknowledge both frames but shrink the window to 1: the four
	// parked updates drain into one frame, and nothing may follow it —
	// not even for updates queued afterwards.
	if err := writeFrame(conn, frameCredit, encodeCredit(2, 1)); err != nil {
		t.Fatal(err)
	}
	waitFrames(3)
	p.queueRemote(1, []p2p.Update{{Doc: 7, Delta: 0.1}})
	p.queueRemote(1, []p2p.Update{{Doc: 8, Delta: 0.1}})
	time.Sleep(300 * time.Millisecond)
	if n := distinct(); n != 3 {
		t.Fatalf("receiver saw %d distinct frames under a window of 1, want exactly 3", n)
	}

	// Reopen the window: the rest of the backlog ships.
	if err := writeFrame(conn, frameCredit, encodeCredit(3, 4)); err != nil {
		t.Fatal(err)
	}
	waitFrames(4)
	waitCounter(t, 10*time.Second, "all queued updates to deliver", func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, n := range seqs {
			total += n
		}
		return total == 8
	})
	mu.Lock()
	total := 0
	for _, n := range seqs {
		total += n
	}
	mu.Unlock()
	if total != 8 {
		t.Fatalf("delivered %d updates across frames, want all 8 exactly once", total)
	}
}
