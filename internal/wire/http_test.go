package wire

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/solver"
)

func TestHTTPClusterComputesPagerank(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(600, 131))
	c, err := NewHTTPCluster(g, ClusterConfig{Peers: 4, Epsilon: 1e-6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("no messages")
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Ranks {
		if math.Abs(res.Ranks[i]-ref.Ranks[i])/ref.Ranks[i] > 1e-3 {
			t.Fatalf("rank[%d]: http %v vs solver %v", i, res.Ranks[i], ref.Ranks[i])
		}
	}
}

func TestHTTPClusterMatchesTCPCluster(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 132))
	hc, err := NewHTTPCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := hc.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := tc.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hres.Ranks {
		denom := math.Max(1, math.Abs(tres.Ranks[i]))
		if math.Abs(hres.Ranks[i]-tres.Ranks[i])/denom > 1e-5 {
			t.Fatalf("rank[%d]: http %v vs tcp %v", i, hres.Ranks[i], tres.Ranks[i])
		}
	}
}

func TestHTTPEndpointsValidation(t *testing.T) {
	g := graph.Cycle(4)
	p, err := NewHTTPPeer(PeerConfig{
		Graph:   g,
		DocPeer: make([]p2p.PeerID, 4),
		Docs:    []graph.NodeID{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// GET on the updates endpoint is rejected.
	resp, err := http.Get(p.URL() + "/pagerank/updates")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET updates: %d", resp.StatusCode)
	}
	// Garbage body is rejected.
	resp, err = http.Post(p.URL()+"/pagerank/updates", "application/octet-stream",
		strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST: %d", resp.StatusCode)
	}
	// Counters endpoint answers.
	resp, err = http.Get(p.URL() + "/pagerank/counters")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, _, err := decodeSnapshot(body); err != nil {
		t.Fatalf("counters payload: %v", err)
	}
}

// flakyTransport fails a deterministic subset of requests: some are
// lost before reaching the server (pure transient failure), some are
// delivered but their response is lost (so the sender must re-post a
// request the receiver already folded — exercising duplicate
// suppression).
type flakyTransport struct {
	inner http.RoundTripper

	mu       sync.Mutex
	n        int
	lost     int // never reached the server
	respLost int // reached the server, response discarded
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	switch {
	case n%5 == 0:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		f.mu.Lock()
		f.lost++
		f.mu.Unlock()
		return nil, fmt.Errorf("flaky: connection refused")
	case n%7 == 0:
		resp, err := f.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		f.mu.Lock()
		f.respLost++
		f.mu.Unlock()
		return nil, fmt.Errorf("flaky: response lost")
	}
	return f.inner.RoundTrip(req)
}

func TestHTTPClusterRetriesTransientPostFailures(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 133))
	ft := &flakyTransport{inner: http.DefaultTransport}
	c, err := NewHTTPCluster(g, ClusterConfig{
		Peers: 3, Epsilon: 1e-6, Seed: 6,
		Client: &http.Client{Transport: ft, Timeout: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(120 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Ranks {
		if math.Abs(res.Ranks[i]-ref.Ranks[i])/ref.Ranks[i] > 1e-3 {
			t.Fatalf("rank[%d]: http %v vs solver %v", i, res.Ranks[i], ref.Ranks[i])
		}
	}
	ft.mu.Lock()
	lost, respLost := ft.lost, ft.respLost
	ft.mu.Unlock()
	if lost == 0 || respLost == 0 {
		t.Fatalf("flaky transport idle: lost=%d respLost=%d", lost, respLost)
	}
	if res.Retries == 0 {
		t.Fatalf("transient failures should force retries: %+v", res)
	}
	if res.DupDropped == 0 {
		t.Fatalf("re-posted delivered requests should be suppressed: %+v", res)
	}
	diff := math.Abs(res.DeltaShipped - res.DeltaFolded)
	if diff > 1e-6*math.Max(1, math.Abs(res.DeltaShipped)) {
		t.Fatalf("delta mass not conserved: shipped %v folded %v", res.DeltaShipped, res.DeltaFolded)
	}
}

func TestHTTPClusterValidation(t *testing.T) {
	g := graph.Cycle(3)
	if _, err := NewHTTPCluster(g, ClusterConfig{Peers: 0}); err == nil {
		t.Fatal("accepted zero peers")
	}
	if _, err := NewHTTPPeer(PeerConfig{}); err == nil {
		t.Fatal("accepted nil graph")
	}
}
