package wire

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/solver"
)

func TestHTTPClusterComputesPagerank(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(600, 131))
	c, err := NewHTTPCluster(g, ClusterConfig{Peers: 4, Epsilon: 1e-6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("no messages")
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Ranks {
		if math.Abs(res.Ranks[i]-ref.Ranks[i])/ref.Ranks[i] > 1e-3 {
			t.Fatalf("rank[%d]: http %v vs solver %v", i, res.Ranks[i], ref.Ranks[i])
		}
	}
}

func TestHTTPClusterMatchesTCPCluster(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 132))
	hc, err := NewHTTPCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := hc.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := tc.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hres.Ranks {
		denom := math.Max(1, math.Abs(tres.Ranks[i]))
		if math.Abs(hres.Ranks[i]-tres.Ranks[i])/denom > 1e-5 {
			t.Fatalf("rank[%d]: http %v vs tcp %v", i, hres.Ranks[i], tres.Ranks[i])
		}
	}
}

func TestHTTPEndpointsValidation(t *testing.T) {
	g := graph.Cycle(4)
	p, err := NewHTTPPeer(PeerConfig{
		Graph:   g,
		DocPeer: make([]p2p.PeerID, 4),
		Docs:    []graph.NodeID{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// GET on the updates endpoint is rejected.
	resp, err := http.Get(p.URL() + "/pagerank/updates")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET updates: %d", resp.StatusCode)
	}
	// Garbage body is rejected.
	resp, err = http.Post(p.URL()+"/pagerank/updates", "application/octet-stream",
		strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST: %d", resp.StatusCode)
	}
	// Counters endpoint answers.
	resp, err = http.Get(p.URL() + "/pagerank/counters")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, _, err := decodeSnapshot(body); err != nil {
		t.Fatalf("counters payload: %v", err)
	}
}

func TestHTTPClusterValidation(t *testing.T) {
	g := graph.Cycle(3)
	if _, err := NewHTTPCluster(g, ClusterConfig{Peers: 0}); err == nil {
		t.Fatal("accepted zero peers")
	}
	if _, err := NewHTTPPeer(PeerConfig{}); err == nil {
		t.Fatal("accepted nil graph")
	}
}
