package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

// assertRanksMatch compares distributed ranks against the centralized
// baseline at the same tolerance as the fault-free cluster tests.
func assertRanksMatch(t *testing.T, g *graph.Graph, ranks []float64, tol float64) {
	t.Helper()
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range ref.Ranks {
		rel := math.Abs(ranks[i]-ref.Ranks[i]) / ref.Ranks[i]
		if rel > worst {
			worst = rel
		}
	}
	if worst > tol {
		t.Fatalf("max relative rank error %v exceeds %v", worst, tol)
	}
}

// assertNoMassLost checks the update-conservation invariant: every
// delta that was shipped was eventually folded (modulo floating-point
// association order in the two accumulators).
func assertNoMassLost(t *testing.T, res ClusterResult) {
	t.Helper()
	diff := math.Abs(res.DeltaShipped - res.DeltaFolded)
	scale := math.Max(1, math.Abs(res.DeltaShipped))
	if diff > 1e-6*scale {
		t.Fatalf("delta mass not conserved: shipped %v folded %v (diff %v)",
			res.DeltaShipped, res.DeltaFolded, diff)
	}
}

// TestChaosResetsPartitionAndCrashes is the acceptance scenario: 10%%
// connection resets (plus duplicates and delays), one scripted
// partition, and two peer crash/restart cycles, all while the
// computation runs — and the final ranks must still match the
// centralized baseline at the fault-free tolerance with zero updates
// lost.
func TestChaosResetsPartitionAndCrashes(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 121))
	ft := NewFaultTransport(nil, FaultConfig{
		Seed:      99,
		ResetProb: 0.10,
		DupProb:   0.05,
		DelayProb: 0.05,
		MaxDelay:  2 * time.Millisecond,
	})
	c, err := NewCluster(g, ClusterConfig{Peers: 6, Epsilon: 1e-6, Seed: 1, Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type runOut struct {
		res ClusterResult
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := c.Run(120 * time.Second)
		resCh <- runOut{res, err}
	}()

	// Chaos script, concurrent with the run. Each event is harmless if
	// the run has already quiesced (Kill/Restart of a stopped peer work
	// on its final state), so the script needs no synchronization with
	// the probe loop.
	script := []func() error{
		func() error { ft.Partition(1, 2); return nil },
		func() error { ft.Heal(1, 2); return nil },
		func() error { return c.Kill(2) },
		func() error { return c.Restart(2) },
		func() error { return c.Kill(4) },
		func() error { return c.Restart(4) },
	}
	for i, event := range script {
		time.Sleep(15 * time.Millisecond)
		if err := event(); err != nil {
			t.Fatalf("chaos event %d: %v", i, err)
		}
	}

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	assertNoMassLost(t, res)
	st := ft.Stats()
	if st.Resets == 0 {
		t.Fatal("fault injector never reset a connection")
	}
	if res.Retries == 0 || res.Reconnects == 0 {
		t.Fatalf("chaos run shows no retry activity: %+v", res)
	}
	if res.Redeliveries == 0 {
		t.Fatalf("resets should force redeliveries: %+v", res)
	}
	if res.DupDropped == 0 {
		t.Fatalf("redelivered or duplicated frames should be suppressed: %+v", res)
	}
	t.Logf("chaos: %d msgs, %d retries, %d reconnects, %d redeliveries, %d dup-dropped, faults %+v",
		res.Messages, res.Retries, res.Reconnects, res.Redeliveries, res.DupDropped, st)
}

// TestChaosDropsAndDialFailures exercises detectable frame loss and
// failed connection establishment: every dropped frame must be
// redelivered from the sender's unacked window.
func TestChaosDropsAndDialFailures(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 55))
	ft := NewFaultTransport(nil, FaultConfig{
		Seed:         7,
		DropProb:     0.08,
		DialFailProb: 0.15,
	})
	c, err := NewCluster(g, ClusterConfig{Peers: 5, Epsilon: 1e-6, Seed: 3, Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Run(120 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	assertNoMassLost(t, res)
	st := ft.Stats()
	if st.Drops == 0 || st.DialFails == 0 {
		t.Fatalf("fault injector idle: %+v", st)
	}
	if res.Retries == 0 {
		t.Fatalf("drops should force retries: %+v", res)
	}
}

// TestKillRestartRecovery runs crash/restart cycles with no
// probabilistic faults at all, so any rank error is attributable to
// the checkpoint/restore path itself.
func TestKillRestartRecovery(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 77))
	c, err := NewCluster(g, ClusterConfig{Peers: 4, Epsilon: 1e-6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type runOut struct {
		res ClusterResult
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := c.Run(120 * time.Second)
		resCh <- runOut{res, err}
	}()
	for _, i := range []int{1, 3} {
		time.Sleep(10 * time.Millisecond)
		if err := c.Kill(i); err != nil {
			t.Fatalf("kill %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
		if err := c.Restart(i); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	assertRanksMatch(t, g, out.res.Ranks, 1e-3)
	assertNoMassLost(t, out.res)
}

// TestKillWhileIdleThenRestart kills a peer after quiescence-ish idle
// and restarts it before the run is observed complete; the restored
// peer must not re-push its initial ranks (that would double-count
// mass).
func TestKillWhileIdleThenRestart(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.Cycle(40)
	c, err := NewCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type runOut struct {
		res ClusterResult
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := c.Run(60 * time.Second)
		resCh <- runOut{res, err}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	for i, r := range out.res.Ranks {
		if math.Abs(r-1) > 1e-5 {
			t.Fatalf("rank[%d] = %v, want 1", i, r)
		}
	}
	assertNoMassLost(t, out.res)
}

// TestPartitionParksUpdatesUntilHealed verifies churn-safe
// termination: while a pair is partitioned, updates for the far side
// sit in the retry queue and the probe must keep counting them as
// outstanding (sent > processed), so quiescence cannot be declared
// early.
func TestPartitionParksUpdatesUntilHealed(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(300, 31))
	ft := NewFaultTransport(nil, FaultConfig{Seed: 5})
	// Partition peers 0 and 1 before the computation even starts.
	ft.Partition(0, 1)
	c, err := NewCluster(g, ClusterConfig{Peers: 2, Epsilon: 1e-6, Seed: 11, Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type runOut struct {
		res ClusterResult
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		res, err := c.Run(120 * time.Second)
		resCh <- runOut{res, err}
	}()
	// With the only inter-peer pair cut, the run must not quiesce:
	// cross-peer updates are parked, keeping sent > processed.
	deadline := time.Now().Add(5 * time.Second)
	sawImbalance := false
	for time.Now().Before(deadline) {
		select {
		case out := <-resCh:
			t.Fatalf("run quiesced under a full partition: %+v err=%v", out.res, out.err)
		default:
		}
		sent, processed := c.DebugCounters()
		if sent > processed {
			sawImbalance = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawImbalance {
		t.Fatal("probe never saw parked updates as outstanding")
	}
	ft.Heal(0, 1)
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	assertRanksMatch(t, g, out.res.Ranks, 1e-3)
	assertNoMassLost(t, out.res)
	if ft.Stats().PartitionRefusals == 0 {
		t.Fatal("partition never refused a dial or write")
	}
}

// TestSnapshotCodecRoundTrip checks that every PeerSnapshot field
// survives EncodeSnapshot/DecodeSnapshot.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	snap := &PeerSnapshot{
		ID:   3,
		Docs: []graph.NodeID{1, 4, 9},
		Rank: []float64{0.5, 1.25, 2.75},
		Acc:  []float64{0.01, -0.02, 0.03},
		Last: []float64{0.49, 1.24, 2.74},
		LastSeq: []SeqEntry{
			{Src: 0, Dest: 3, Seq: 17},
			{Src: 2, Dest: 3, Seq: 4},
			{Src: 2, Dest: 5, Seq: 9}, // adopted stream of a departed peer
		},
		Outbound: []OutboundState{
			{
				Src:     3,
				Dest:    0,
				NextSeq: 9,
				Unacked: []UnackedFrame{
					{Seq: 7, Updates: []p2p.Update{{Doc: 1, Delta: 0.5}}},
					{Seq: 8, Updates: []p2p.Update{{Doc: 4, Delta: -0.25}, {Doc: 9, Delta: 1}}},
				},
				Pending: []p2p.Update{{Doc: 2, Delta: 0.125}},
			},
			{Src: 3, Dest: 2, NextSeq: 3, Pending: []p2p.Update{}},
			{
				// Stream framed by departed peer 5, adopted by this one.
				Src:     5,
				Dest:    2,
				NextSeq: 4,
				Unacked: []UnackedFrame{
					{Seq: 3, Updates: []p2p.Update{{Doc: 7, Delta: 0.75}}},
				},
				Pending: []p2p.Update{},
			},
		},
		Epochs:        []uint64{0, 2, 1, 0, 0, 3}, // ownership-epoch vector, one per ring slot
		Sent:          100,
		Processed:     90,
		Retries:       5,
		Reconnects:    2,
		Redeliveries:  3,
		Coalesced:     7,
		DupDropped:    1,
		Forwarded:     4,
		Misdropped:    0,
		EpochRejected: 2,
		DeltaShipped:  12.5,
		DeltaFolded:   11.25,
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(snap, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", snap, got)
	}
	// Truncations must be rejected, never crash.
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := DecodeSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("accepted snapshot truncated to %d bytes", cut)
		}
	}
}

// TestRetryPolicyDelay pins the backoff shape: exponential from Base,
// capped at Max, jittered within ±Jitter/2.
func TestRetryPolicyDelay(t *testing.T) {
	pol := RetryPolicy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}.withDefaults()
	r := rng.New(42)
	prevCap := time.Duration(0)
	for fails := 1; fails <= 8; fails++ {
		want := 10 * time.Millisecond << (fails - 1)
		if want > 80*time.Millisecond {
			want = 80 * time.Millisecond
		}
		d := pol.delay(r, fails)
		lo := time.Duration(float64(want) * (1 - pol.Jitter/2))
		hi := time.Duration(float64(want) * (1 + pol.Jitter/2))
		if d < lo || d > hi {
			t.Fatalf("fails=%d: delay %v outside [%v, %v]", fails, d, lo, hi)
		}
		if want > prevCap {
			prevCap = want
		}
	}
}
