package wire

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/telemetry"
)

// HTTPCluster orchestrates a full computation over HTTP peers, the
// web-server deployment of the paper's section 8.
type HTTPCluster struct {
	peers  []*HTTPPeer
	g      *graph.Graph
	client *http.Client

	// Telemetry: one registry per peer, a shared convergence trace,
	// and the opt-in debug listener (ClusterConfig.DebugAddr).
	regs  []*telemetry.Registry
	trace *telemetry.Trace
	dbg   *telemetry.DebugServer
}

// httpObserverRetries bounds the retry loop around the cluster's own
// probe and collection GETs, so a transiently unreachable peer does
// not fail the whole run.
const httpObserverRetries = 5

// NewHTTPCluster starts cfg.Peers HTTP servers on localhost and
// distributes g's documents among them.
func NewHTTPCluster(g *graph.Graph, cfg ClusterConfig) (*HTTPCluster, error) {
	if cfg.Peers < 1 {
		return nil, fmt.Errorf("wire: need at least one peer")
	}
	r := rng.New(cfg.Seed)
	docPeer := make([]p2p.PeerID, g.NumNodes())
	docs := make([][]graph.NodeID, cfg.Peers)
	for d := 0; d < g.NumNodes(); d++ {
		pid := p2p.PeerID(r.Intn(cfg.Peers))
		docPeer[d] = pid
		docs[pid] = append(docs[pid], graph.NodeID(d))
	}
	c := &HTTPCluster{g: g, client: &http.Client{Timeout: 10 * time.Second}}
	c.trace = telemetry.NewTrace(cfg.TraceCap)
	c.trace.SetClock(func() int64 { return time.Now().UnixNano() })
	urls := make([]string, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		reg := telemetry.NewRegistry()
		c.regs = append(c.regs, reg)
		peer, err := NewHTTPPeer(PeerConfig{
			ID:       p2p.PeerID(i),
			Graph:    g,
			DocPeer:  docPeer,
			Docs:     docs[i],
			Damping:  cfg.Damping,
			Epsilon:  cfg.Epsilon,
			Retry:    cfg.Retry,
			Client:   cfg.Client,
			Registry: reg,
			Trace:    c.trace,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, peer)
		urls[i] = peer.URL()
	}
	for _, p := range c.peers {
		p.SetPeers(urls)
	}
	if cfg.DebugAddr != "" {
		dbg, err := telemetry.ServeDebug(cfg.DebugAddr, c.TelemetrySnapshot, c.trace)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.dbg = dbg
	}
	return c, nil
}

// TelemetrySnapshot merges every peer's registry into one snapshot.
func (c *HTTPCluster) TelemetrySnapshot() telemetry.Snapshot {
	var snap telemetry.Snapshot
	for _, r := range c.regs {
		snap = snap.Merge(r.Snapshot())
	}
	return snap
}

// DebugAddr reports the debug listener's bound address ("" when
// disabled).
func (c *HTTPCluster) DebugAddr() string {
	if c.dbg == nil {
		return ""
	}
	return c.dbg.Addr()
}

// Run starts the peers, waits for quiescence (two stable equal
// probes), collects the ranks over HTTP and shuts down.
func (c *HTTPCluster) Run(timeout time.Duration) (ClusterResult, error) {
	start := time.Now()
	for _, p := range c.peers {
		p.Start()
	}
	res := ClusterResult{}
	var prevSent, prevProcessed uint64 = ^uint64(0), ^uint64(0)
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("wire: no quiescence within %v", timeout)
		}
		sent, processed, err := c.probe()
		if err != nil {
			return res, err
		}
		res.Probes++
		if sent == processed && sent == prevSent && processed == prevProcessed {
			res.Messages = sent
			break
		}
		prevSent, prevProcessed = sent, processed
		time.Sleep(5 * time.Millisecond)
	}
	ranks := make([]float64, c.g.NumNodes())
	for _, p := range c.peers {
		if err := c.collect(p.URL(), ranks); err != nil {
			return res, err
		}
	}
	res.Ranks = ranks
	for _, p := range c.peers {
		st := p.Stats()
		res.Retries += st.Retries
		res.Coalesced += st.Coalesced
		res.DupDropped += st.DupDropped
		res.Forwarded += st.Forwarded
		res.Misdropped += st.Misdropped
		res.DeltaShipped += st.DeltaShipped
		res.DeltaFolded += st.DeltaFolded
	}
	res.Elapsed = time.Since(start)
	c.Close()
	return res, nil
}

// getWithRetry performs one observer GET, retrying transient failures
// (connection errors, 5xx) a few times with short backoff instead of
// failing the run on the first hiccup.
func (c *HTTPCluster) getWithRetry(url string, limit int64) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < httpObserverRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		resp, err := c.client.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
		code := resp.StatusCode
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if code >= 500 {
			lastErr = fmt.Errorf("wire: %s answered %d", url, code)
			continue
		}
		return body, nil
	}
	return nil, lastErr
}

func (c *HTTPCluster) probe() (sent, processed uint64, err error) {
	for _, p := range c.peers {
		body, err := c.getWithRetry(p.URL()+"/pagerank/counters", 64)
		if err != nil {
			// Transient unavailability: fall back to a direct read so a
			// hiccup cannot fail the run.
			s, pr := p.Counters()
			sent += s
			processed += pr
			continue
		}
		s, pr, err := decodeSnapshot(body)
		if err != nil {
			return 0, 0, err
		}
		sent += s
		processed += pr
	}
	return sent, processed, nil
}

func (c *HTTPCluster) collect(url string, out []float64) error {
	body, err := c.getWithRetry(url+"/pagerank/ranks", maxFrameBytes)
	if err != nil {
		return err
	}
	_, err = decodeRanks(body, out)
	return err
}

// Close stops the debug listener (if any) and every peer.
func (c *HTTPCluster) Close() {
	if c.dbg != nil {
		c.dbg.Close()
		c.dbg = nil
	}
	for _, p := range c.peers {
		if p != nil {
			p.Close()
		}
	}
}

// NumPeers returns the cluster size.
func (c *HTTPCluster) NumPeers() int { return len(c.peers) }
