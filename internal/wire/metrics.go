package wire

import "dpr/internal/telemetry"

// peerMetrics bundles one peer's registry-backed instruments. They
// replace the hand-rolled atomic tallies the peers used to carry: the
// public PeerStats shape is unchanged, but every read now goes through
// the telemetry registry, so /metrics, the conservation tests, and the
// end-of-run result structs all see the same numbers.
type peerMetrics struct {
	sent          *telemetry.Counter // update messages shipped to other peers
	processed     *telemetry.Counter // update messages consumed (folded or coalesced)
	retries       *telemetry.Counter // frame transmissions past a frame's first attempt
	reconnects    *telemetry.Counter // successful re-dials after a connection loss
	redeliveries  *telemetry.Counter // frames acknowledged after more than one attempt
	coalesced     *telemetry.Counter // updates absorbed by sender-side delta coalescing
	dupDropped    *telemetry.Counter // duplicate frames suppressed by seq dedup
	forwarded     *telemetry.Counter // misrouted updates re-shipped to the current owner
	misdropped    *telemetry.Counter // updates with no resolvable owner (must stay 0)
	epochRejected *telemetry.Counter // frames nacked for carrying a stale ownership epoch

	// Overload protection: creditStalls counts stall episodes (a stream
	// transitioning from framing to credit-blocked), shedCoalesced the
	// updates losslessly absorbed by delta coalescing while their
	// destination was credit-blocked, and slowPeer the transitions of a
	// destination into straggler mode.
	creditStalls  *telemetry.Counter
	shedCoalesced *telemetry.Counter
	slowPeer      *telemetry.Counter

	// Occupancy instruments: inboxOccupancy is the bulk-lane depth
	// observed at each processing batch, unackedFrames the in-flight
	// (sent or framed, not yet acked) frames across this peer's
	// senders, sendLatencyEwma the most recent send-to-ack EWMA any
	// sender computed, and sendLatency the distribution of raw
	// send-to-ack latencies.
	inboxOccupancy  *telemetry.Gauge
	unackedFrames   *telemetry.Gauge
	sendLatencyEwma *telemetry.Gauge
	sendLatency     *telemetry.Histogram

	// The conservation pair: delta mass originated versus delta mass
	// folded. At quiescence the two must be equal (dprlint's
	// counterflow rule keeps every mutation two-sided).
	deltaShipped *telemetry.FloatCounter
	deltaFolded  *telemetry.FloatCounter

	// rankMass tracks the total rank currently held by this peer's
	// ranker rows; merged across peers it is the cluster's total mass.
	rankMass *telemetry.Gauge
}

func newPeerMetrics(reg *telemetry.Registry) peerMetrics {
	return peerMetrics{
		sent:          reg.Counter("wire_sent"),
		processed:     reg.Counter("wire_processed"),
		retries:       reg.Counter("wire_retries"),
		reconnects:    reg.Counter("wire_reconnects"),
		redeliveries:  reg.Counter("wire_redeliveries"),
		coalesced:     reg.Counter("wire_coalesced"),
		dupDropped:    reg.Counter("wire_dup_dropped"),
		forwarded:     reg.Counter("wire_forwarded"),
		misdropped:    reg.Counter("wire_misdropped"),
		epochRejected: reg.Counter("wire_epoch_rejected"),
		creditStalls:  reg.Counter("wire_credit_stalls"),
		shedCoalesced: reg.Counter("wire_shed_coalesced"),
		slowPeer:      reg.Counter("wire_slow_peer"),

		inboxOccupancy:  reg.Gauge("wire_inbox_occupancy"),
		unackedFrames:   reg.Gauge("wire_unacked_frames"),
		sendLatencyEwma: reg.Gauge("wire_send_latency_ewma_seconds"),
		sendLatency: reg.Histogram("wire_send_latency_seconds",
			telemetry.ExpBuckets(100e-6, 4, 8)),

		deltaShipped: reg.FloatCounter("wire_delta_shipped"),
		deltaFolded:  reg.FloatCounter("wire_delta_folded"),
		rankMass:     reg.Gauge("wire_rank_mass"),
	}
}

// stats reads the full counter set.
func (m *peerMetrics) stats() PeerStats {
	return PeerStats{
		Sent:          m.sent.Load(),
		Processed:     m.processed.Load(),
		Retries:       m.retries.Load(),
		Reconnects:    m.reconnects.Load(),
		Redeliveries:  m.redeliveries.Load(),
		Coalesced:     m.coalesced.Load(),
		DupDropped:    m.dupDropped.Load(),
		Forwarded:     m.forwarded.Load(),
		Misdropped:    m.misdropped.Load(),
		EpochRejected: m.epochRejected.Load(),
		CreditStalls:  m.creditStalls.Load(),
		ShedCoalesced: m.shedCoalesced.Load(),
		SlowPeer:      m.slowPeer.Load(),
		DeltaShipped:  m.deltaShipped.Load(),
		DeltaFolded:   m.deltaFolded.Load(),
	}
}

// restore overwrites every counter from a checkpoint snapshot. Used
// only on the quiescent restore path; the Stores are idempotent, so
// restoring into a registry retained across a crash is safe.
func (m *peerMetrics) restore(s *PeerSnapshot) {
	m.sent.Store(s.Sent)
	m.processed.Store(s.Processed)
	m.retries.Store(s.Retries)
	m.reconnects.Store(s.Reconnects)
	m.redeliveries.Store(s.Redeliveries)
	m.coalesced.Store(s.Coalesced)
	m.dupDropped.Store(s.DupDropped)
	m.forwarded.Store(s.Forwarded)
	m.misdropped.Store(s.Misdropped)
	m.epochRejected.Store(s.EpochRejected)
	m.creditStalls.Store(s.CreditStalls)
	m.shedCoalesced.Store(s.ShedCoalesced)
	m.slowPeer.Store(s.SlowPeer)
	m.deltaShipped.Store(s.DeltaShipped)
	m.deltaFolded.Store(s.DeltaFolded)
}
