package wire

import (
	"net"
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// waitCounter polls fn until it returns true or the deadline passes.
func waitCounter(t *testing.T, d time.Duration, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// assertSingleOwnership walks every slot after a run and checks each
// document is held by exactly one place: a live peer's ranker or a
// crashed slot's checkpoint. A doc counted twice means a partition
// forked ownership; zero means a range was dropped on the floor.
func assertSingleOwnership(t *testing.T, c *Cluster) {
	t.Helper()
	owners := make([]int, c.g.NumNodes())
	v := c.slots()
	for i := range v.peers {
		switch {
		case v.peers[i] != nil:
			docs, _ := v.peers[i].rk.snapshotRanks()
			for _, d := range docs {
				owners[d]++
			}
		case v.snaps[i] != nil:
			for _, d := range v.snaps[i].Docs {
				owners[d]++
			}
		}
	}
	for d, n := range owners {
		if n != 1 {
			t.Fatalf("document %d has %d owners after heal, want exactly 1", d, n)
		}
	}
}

// TestChaosPartitionSplitHeal is the acceptance scenario for partition
// tolerance: a 6-peer cluster is split 4/2 mid-computation under
// injected connection faults. Both sides run through multiple
// heartbeat cycles cut off from each other. The majority side must
// fence the two unreachable peers only after a quorum concurs; the
// minority side suspects everyone across the cut, never reaches
// quorum, and must refuse to evict anybody. After the partition heals
// the fenced slots reconcile through the anti-entropy view exchange
// and depart cleanly, and the computation converges.
//
// Rank comparison is against the centralized power-iteration solver
// AND against an actual fault-free cluster run on the same graph, both
// at 1e-3 relative error. Bit-identity between the two cluster runs is
// infeasible by design: the async chaotic schedule folds deltas in a
// nondeterministic association order, and the injected faults plus the
// partition reshuffle that order further — only the fixed point is
// stable, not the float trajectory.
func TestChaosPartitionSplitHeal(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 47))

	// Fault-free reference run: same graph, same placement seed, no
	// detector, no injected faults.
	ref, err := NewCluster(g, ClusterConfig{Peers: 6, Epsilon: 1e-6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(60 * time.Second)
	ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	ft := NewFaultTransport(nil, FaultConfig{
		Seed:      101,
		ResetProb: 0.03,
		DropProb:  0.02,
		DupProb:   0.04,
		DelayProb: 0.04,
		MaxDelay:  2 * time.Millisecond,
	})
	c, err := NewCluster(g, ClusterConfig{
		Peers: 6, Epsilon: 1e-6, Seed: 9, Transport: ft,
		Heartbeat: 25 * time.Millisecond, SuspectAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := runAsync(c, 120*time.Second)

	time.Sleep(15 * time.Millisecond)
	ft.Split([]p2p.PeerID{0, 1, 2, 3}, []p2p.PeerID{4, 5})

	// Both sides must observe the cut across at least two heartbeat
	// cycles: the majority reaching quorum twice (one fence per
	// minority slot) and the minority recording at least one refused
	// eviction guarantees that many rounds happened on each side.
	waitCounter(t, 30*time.Second, "majority to fence the minority", func() bool {
		return c.mEvictQuorum.Load() >= 2 && c.mEvictRefused.Load() >= 1
	})
	time.Sleep(3 * 25 * time.Millisecond) // a few more cut heartbeats on both sides
	ft.HealAll()

	out := <-resCh
	if out.err != nil {
		s, pr := c.DebugCounters()
		t.Fatalf("%v (sent %d processed %d, fenced %v left %v)",
			out.err, s, pr, c.fenced, c.left)
	}
	res := out.res

	if res.EvictionsQuorum < 2 {
		t.Fatalf("evictions_quorum = %d, want >= 2 (both minority slots fenced)", res.EvictionsQuorum)
	}
	if res.EvictionsRefused == 0 {
		t.Fatal("minority partition recorded no refused evictions")
	}
	if res.Leaves < 2 {
		t.Fatalf("leaves = %d, want >= 2 (fenced slots must depart after heal)", res.Leaves)
	}
	if res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", res.Misdropped)
	}
	assertSingleOwnership(t, c)
	assertNoMassLost(t, res)
	assertRegistryConservation(t, c.TelemetrySnapshot(), res.Ranks)
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	for i := range res.Ranks {
		rel := res.Ranks[i] - refRes.Ranks[i]
		if rel < 0 {
			rel = -rel
		}
		if rel/refRes.Ranks[i] > 1e-3 {
			t.Fatalf("doc %d: partitioned run %v vs fault-free run %v exceeds 1e-3 relative",
				i, res.Ranks[i], refRes.Ranks[i])
		}
	}
	t.Logf("partition chaos: %d msgs, quorum evictions %d, refused %d, epoch rejects %d, leaves %d, faults %+v",
		res.Messages, res.EvictionsQuorum, res.EvictionsRefused, res.EpochRejected, res.Leaves, ft.Stats())
}

// TestOneWayPartitionRefusesEviction cuts a single direction: slot 0
// can no longer reach slot 4, but every other vantage still can. Slot
// 0's detector suspects slot 4, gossips the suspicion, and gets no
// concurring vote — the proposal must be refused every round and
// nobody may be evicted. After healing, the parked updates drain and
// the run converges with full membership.
func TestOneWayPartitionRefusesEviction(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 53))
	ft := NewFaultTransport(nil, FaultConfig{Seed: 55})
	c, err := NewCluster(g, ClusterConfig{
		Peers: 5, Epsilon: 1e-6, Seed: 21, Transport: ft,
		Heartbeat: 20 * time.Millisecond, SuspectAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := runAsync(c, 120*time.Second)

	time.Sleep(10 * time.Millisecond)
	ft.PartitionOneWay(0, 4)
	waitCounter(t, 30*time.Second, "lone suspicion to be refused", func() bool {
		return c.mEvictRefused.Load() >= 1
	})
	ft.HealAll()

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.EvictionsQuorum != 0 {
		t.Fatalf("a one-way cut evicted %d peers; a single vantage must never reach quorum", res.EvictionsQuorum)
	}
	if res.EvictionsRefused == 0 {
		t.Fatal("no refused evictions recorded")
	}
	if res.Leaves != 0 {
		t.Fatalf("leaves = %d, want 0", res.Leaves)
	}
	assertNoMassLost(t, res)
	assertRanksMatch(t, g, res.Ranks, 1e-3)
}

// TestEpochRejectStaleFrame drives the receiver's epoch fence over a
// raw connection: a frame stamped with an epoch behind the receiver's
// view of its origDest range must be nacked with the current epoch and
// leave no trace in the dedup table, a frame at the current epoch must
// fold, and a frame from the future must be adopted, after which the
// once-current epoch is itself stale.
func TestEpochRejectStaleFrame(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.Cycle(4)
	docPeer := make([]p2p.PeerID, 4) // everything owned by peer 0
	p, err := NewPeer(PeerConfig{
		ID: 0, Graph: g, DocPeer: docPeer, Docs: []graph.NodeID{0, 1, 2, 3},
		Epochs: []uint64{0, 5}, // this peer adopted range 1 at epoch 5
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	send := func(seq, epoch uint64) (byte, []byte) {
		t.Helper()
		us := []p2p.Update{{Doc: 0, Delta: 0.5}}
		if err := writeFrame(conn, frameBatchEpoch, encodeBatchEpoch(1, 1, seq, epoch, us)); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		return typ, payload
	}

	// Stale epoch: rejected with the receiver's current epoch.
	typ, payload := send(1, 2)
	if typ != frameNackEpoch {
		t.Fatalf("stale frame answered with %c, want %c", typ, frameNackEpoch)
	}
	seq, epoch, err := decodeNackEpoch(payload)
	if err != nil || seq != 1 || epoch != 5 {
		t.Fatalf("nack = (%d, %d, %v), want (1, 5)", seq, epoch, err)
	}
	if got := p.Stats().EpochRejected; got != 1 {
		t.Fatalf("epoch_rejected = %d, want 1", got)
	}

	// Same seq at the current epoch: the rejection must not have
	// advanced the dedup table, so this folds and acks.
	if typ, _ = send(1, 5); typ != frameCredit {
		t.Fatalf("current-epoch frame answered with %c, want credit", typ)
	}

	// Future epoch: adopted, folded...
	if typ, _ = send(2, 7); typ != frameCredit {
		t.Fatalf("future-epoch frame answered with %c, want credit", typ)
	}
	// ...after which the previously current epoch is stale.
	typ, payload = send(3, 5)
	if typ != frameNackEpoch {
		t.Fatalf("frame behind an adopted epoch answered with %c, want %c", typ, frameNackEpoch)
	}
	if _, epoch, _ = decodeNackEpoch(payload); epoch != 7 {
		t.Fatalf("nack epoch = %d, want the adopted 7", epoch)
	}
	if got := p.Stats().EpochRejected; got != 2 {
		t.Fatalf("epoch_rejected = %d, want 2", got)
	}

	// A later frame at the current epoch folds and advances dedup past
	// the rejected seq 3...
	if typ, _ = send(4, 7); typ != frameCredit {
		t.Fatalf("current-epoch frame answered with %c, want credit", typ)
	}
	// ...but a retransmission of the rejected frame (its nack was lost
	// with the connection, say) must face the epoch fence again, not be
	// acknowledged as a duplicate — an ack here would tell the sender to
	// discard updates that never folded anywhere.
	typ, _ = send(3, 5)
	if typ != frameNackEpoch {
		t.Fatalf("retransmitted rejected frame answered with %c, want %c", typ, frameNackEpoch)
	}
	if got := p.Stats().EpochRejected; got != 3 {
		t.Fatalf("epoch_rejected = %d, want 3", got)
	}
	// A re-stamped copy at the current epoch (what a restored or
	// adopting sender emits) finally folds it, exactly once...
	if typ, _ = send(3, 7); typ != frameCredit {
		t.Fatalf("re-stamped rejected frame answered with %c, want credit", typ)
	}
	before := p.Stats().DupDropped
	// ...and only then does plain duplicate suppression take over.
	if typ, _ = send(3, 7); typ != frameCredit {
		t.Fatalf("duplicate of folded frame answered with %c, want credit", typ)
	}
	if got := p.Stats().DupDropped; got != before+1 {
		t.Fatalf("dup_dropped = %d, want %d", got, before+1)
	}
}

// TestEpochNackRequeuesUpdates runs two real peers where the receiver
// starts with a newer epoch for its own range than the sender knows:
// every first frame on that stream is nacked, the sender must adopt
// the epoch, withdraw the frame, requeue its updates through the owner
// table and redeliver — without losing or double-folding any delta
// mass.
func TestEpochNackRequeuesUpdates(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.Cycle(4)
	docPeer := []p2p.PeerID{0, 0, 1, 1}
	a, err := NewPeer(PeerConfig{ID: 0, Graph: g, DocPeer: docPeer,
		Docs: []graph.NodeID{0, 1}, Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewPeer(PeerConfig{ID: 1, Graph: g, DocPeer: docPeer,
		Docs: []graph.NodeID{2, 3}, Epsilon: 1e-10,
		Epochs: []uint64{0, 3}}) // b's own range moved to epoch 3; a starts at 0
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs := []string{a.Addr(), b.Addr()}
	a.SetPeers(addrs)
	b.SetPeers(addrs)
	a.Start()
	b.Start()

	// Quiescence: totals equal and unchanged across two polls.
	var prevSent uint64
	deadline := time.Now().Add(30 * time.Second)
	for {
		as, ap := a.Counters()
		bs, bp := b.Counters()
		if as+bs == ap+bp && as+bs == prevSent && prevSent > 0 {
			break
		}
		prevSent = as + bs
		if time.Now().After(deadline) {
			t.Fatalf("no quiescence: sent %d processed %d", as+bs, ap+bp)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if got := b.Stats().EpochRejected; got == 0 {
		t.Fatal("receiver never rejected the sender's stale epoch")
	}
	st := addStats(a.Stats(), b.Stats())
	if st.Misdropped != 0 {
		t.Fatalf("%d updates misdropped during epoch catch-up", st.Misdropped)
	}
	assertNoMassLost(t, ClusterResult{DeltaShipped: st.DeltaShipped, DeltaFolded: st.DeltaFolded})
	ranks := make([]float64, 4)
	for _, p := range []*Peer{a, b} {
		docs, rs := p.rk.snapshotRanks()
		for i, d := range docs {
			ranks[d] = rs[i]
		}
	}
	assertRanksMatch(t, g, ranks, 1e-3)
}
