package wire

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/telemetry"
)

// RetryPolicy shapes the reconnect/redelivery backoff of the fault-
// tolerant senders: delays grow exponentially from Base to Max, with
// a +/- Jitter/2 multiplicative spread so a burst of failures does
// not resynchronize every peer's retry clock.
type RetryPolicy struct {
	Base   time.Duration // first backoff; 0 means 5ms
	Max    time.Duration // backoff cap; 0 means 250ms
	Jitter float64       // multiplicative spread; 0 means 0.5
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Base <= 0 {
		rp.Base = 5 * time.Millisecond
	}
	if rp.Max <= 0 {
		rp.Max = 250 * time.Millisecond
	}
	if rp.Jitter <= 0 {
		rp.Jitter = 0.5
	}
	return rp
}

// delay returns the backoff for the given consecutive-failure count.
func (rp RetryPolicy) delay(r *rng.Rand, fails int) time.Duration {
	d := rp.Base
	for i := 1; i < fails && d < rp.Max; i++ {
		d *= 2
	}
	if d > rp.Max {
		d = rp.Max
	}
	spread := 1 + rp.Jitter*(r.Float64()-0.5)
	return time.Duration(float64(d) * spread)
}

// writeTimeout bounds every frame write on the wire path, so a hung
// receiver surfaces as a connection error (and a retransmission)
// instead of blocking a sender forever.
const writeTimeout = 10 * time.Second

// ackTimeout bounds how long a sender waits for an acknowledgement
// once frames are outstanding. The deadline is armed after each frame
// write and extended (or cleared, when nothing is owed) on each ack,
// so an idle connection never expires but a peer that accepts frames
// and then hangs is torn down and its frames retransmitted elsewhere.
const ackTimeout = 15 * time.Second

// Overload-protection defaults; PeerConfig overrides each.
const (
	// defaultInboxCap sizes the bulk lane of the two-lane inbox.
	defaultInboxCap = 1024
	// defaultCreditWindow caps in-flight unacknowledged frames per
	// stream. Small enough that a stalled receiver bounds sender memory
	// at a few frames; large enough that a healthy pipeline never
	// notices the window.
	defaultCreditWindow = 32
	// defaultSlowThreshold is the send-to-ack latency EWMA above which
	// a destination is treated as a straggler.
	defaultSlowThreshold = 25 * time.Millisecond

	// ctlLaneCap sizes the control lane: membership operations and
	// other must-not-starve items are rare, so a small buffer suffices.
	ctlLaneCap = 64

	// batchCap bounds the coalesced updates drained into one fresh
	// frame; slowBatchCap is the shrunken bound used toward straggler
	// destinations, trading throughput for shorter per-frame transmit
	// and fold times on the slow path.
	batchCap     = 4096
	slowBatchCap = 256
)

// PeerConfig configures one TCP peer.
type PeerConfig struct {
	ID      p2p.PeerID
	Graph   *graph.Graph // shared, read-only
	DocPeer []p2p.PeerID // doc -> owning peer (copied; mutable per peer)
	Docs    []graph.NodeID
	Damping float64 // 0 means 0.85
	Epsilon float64 // 0 means 1e-3

	// Transport dials outbound connections; nil means the real TCP
	// dialer. Tests inject a FaultTransport here.
	Transport Transport

	// Retry shapes reconnect/redelivery backoff; zero fields get
	// defaults.
	Retry RetryPolicy

	// Client is used by HTTP peers only; nil means a default client.
	Client *http.Client

	// Registry receives the peer's instruments (wire_sent,
	// wire_delta_shipped, ...); nil means a private registry, which
	// Peer.Registry exposes. Cluster frontends pass one registry per
	// peer slot and merge them into a cluster-wide snapshot.
	Registry *telemetry.Registry

	// Trace, when non-nil, receives convergence events (ship, fold,
	// retry, reconnect) from this peer.
	Trace *telemetry.Trace

	// Epochs seeds the peer's per-slot ownership-epoch vector (indexed
	// by PeerID). Nil starts every slot at epoch 0. The cluster passes
	// its current vector so a restarted or joining peer stamps outbound
	// frames with up-to-date epochs from its first frame on.
	Epochs []uint64

	// Gossip, when non-nil, is invoked for every suspicion-gossip ping
	// this peer serves: it receives the pinging slot's suspicion set and
	// returns this slot's own, which rides back on the pong. The cluster
	// wires it to the slot's failure-detector vantage; a nil hook serves
	// legacy empty pongs.
	Gossip func(from p2p.PeerID, suspects []p2p.PeerID) []p2p.PeerID

	// InboxCap sizes the bulk lane of the peer's two-lane inbox — the
	// queue of not-yet-folded inbound update batches. 0 means 1024;
	// negative is rejected by the cluster frontends.
	InboxCap int

	// CreditWindow caps the unacknowledged frames a sender keeps in
	// flight per stream, and the largest window a receiver ever
	// advertises on its credit acks. 0 means 32.
	CreditWindow int

	// SlowThreshold is the send-to-ack latency EWMA above which a
	// destination counts as a straggler: senders shrink batches and
	// stretch ship cadence toward it until the EWMA halves back below
	// the threshold. 0 means 25ms.
	SlowThreshold time.Duration
}

// stream identifies one exactly-once delivery sequence: the sender and
// the peer the frames were originally framed for. Under static
// membership dest is always the receiving peer; after a permanent
// leave, frames framed for the departed peer are redirected to its
// successor and dedup'd against the stream they were sequenced on,
// which the successor adopted with the rest of the departed state.
type stream struct {
	src  p2p.PeerID
	dest p2p.PeerID
}

// Peer is one network node of the computation: a TCP listener, one
// persistent outbound connection per delivery stream, and the chaotic
// iteration state for the documents it owns.
//
// The outbound path implements the paper's store-and-retry protocol:
// updates bound for a remote peer are coalesced into a per-destination
// retry queue, framed with (sender, origDest, seq) headers, and kept
// by the sender until the destination acknowledges folding them.
// Connection loss triggers reconnection with exponential backoff and
// verbatim retransmission of every unacknowledged frame; receivers
// suppress redelivered duplicates per stream, so delivery is
// exactly-once end to end — including across ownership migrations,
// where both the frames and the duplicate-suppression table move to
// the departed peer's successor together.
type Peer struct {
	cfg   PeerConfig
	tr    Transport
	retry RetryPolicy
	rk    *ranker
	ln    net.Listener
	addr  string

	// Membership view: the address table plus, per slot, the ownership
	// epoch of the slot's key range, whether the slot departed, and the
	// slot that adopted a departed slot's state. Mutated when a crashed
	// peer rejoins at a new address, a departed peer's slot is
	// redirected to its successor, or an anti-entropy digest merges a
	// higher-epoch view; reads always go through peerAddr/epochOf/view.
	peersMu sync.Mutex
	peers   []string
	epochs  []uint64
	gone    []bool
	fwd     []p2p.PeerID

	// Outbound senders, created lazily, keyed by delivery stream,
	// plus the shared retry queue holding not-yet-framed updates per
	// destination.
	sendMu  sync.Mutex
	senders map[stream]*sender
	rqMu    sync.Mutex
	rq      *p2p.RetryQueue

	// Inbound connections, tracked so Close can unblock their readers.
	inMu sync.Mutex
	ins  map[net.Conn]struct{}

	// Two-lane inbox. ctl carries membership operations (handoff
	// adoption, document shedding), which must never queue behind bulk
	// updates: an overloaded peer still serves ownership transfers
	// promptly, so a slow peer cannot wedge a cluster-wide Leave or
	// Join. bulk carries update batches; its capacity (InboxCap) is
	// what the receiver's advertised credit window shrinks with.
	ctl  chan inItem
	bulk chan inItem
	quit chan struct{}
	wg   sync.WaitGroup

	// lastSeq is the duplicate-suppression table: the highest folded
	// sequence number per delivery stream. Owned by processLoop; read
	// elsewhere only after the loops have stopped (Kill).
	lastSeq map[stream]uint64

	// rejected remembers epoch-rejected sequence numbers per stream.
	// lastSeq can legitimately advance past a rejected frame (a later
	// frame stamped with the refreshed epoch folds first), so without
	// this memory a retransmission of the rejected frame — sent because
	// the nack was lost with its connection — would be mistaken for a
	// duplicate of a folded frame and acknowledged, silently discarding
	// updates that never folded anywhere. Seqs listed here bypass
	// duplicate suppression and go back through the epoch fence: still
	// stale re-nacks, a re-stamped copy at the current epoch folds.
	// Same ownership discipline as lastSeq.
	rejected map[stream]map[uint64]struct{}

	restored bool // resumed from a snapshot: skip the initial push

	// m holds the peer's registry-backed instruments; reg is the
	// registry they live in and trace the (optional) convergence-event
	// ring. PeerStats and the termination probe read through m, so the
	// registry is the single source of truth for every tally.
	m     peerMetrics
	reg   *telemetry.Registry
	trace *telemetry.Trace
}

// inItem is one inbox entry: a batch of updates plus, for sequenced
// remote frames, the stream metadata the processing loop needs to
// suppress duplicates and acknowledge folding. Membership operations
// (handoff adoption, document shedding) also travel through the inbox
// so they serialize with folding without extra locks.
type inItem struct {
	from     p2p.PeerID
	origDest p2p.PeerID
	seq      uint64
	seqed    bool
	us       []p2p.Update
	ack      func() // transmits the cumulative ack; nil for local items

	// Epoch fencing: hasEpoch marks frames that carry the sender's
	// ownership epoch for origDest; nack transmits the per-frame
	// stale-epoch rejection with this receiver's current epoch.
	epoch    uint64
	hasEpoch bool
	nack     func(cur uint64)

	adopt *Handoff // nil unless this item carries a state handoff
	shed  *shedReq // nil unless this item requests a document shed
}

// shedReq asks the processing loop to extract ranker rows for a
// joining peer; the reply is sent exactly once.
type shedReq struct {
	docs     []graph.NodeID
	newOwner p2p.PeerID
	reply    chan shedState
}

type shedState struct {
	rank, acc, last []float64
	err             error
}

// PeerStats is a point-in-time view of one peer's counters.
type PeerStats struct {
	Sent, Processed                   uint64
	Retries, Reconnects, Redeliveries uint64
	Coalesced, DupDropped             uint64
	Forwarded, Misdropped             uint64
	EpochRejected                     uint64
	CreditStalls, ShedCoalesced       uint64
	SlowPeer                          uint64
	DeltaShipped, DeltaFolded         float64
}

// NewPeer starts listening on 127.0.0.1 (ephemeral port). Call
// Start after SetPeers to begin computing.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Graph == nil || cfg.DocPeer == nil {
		return nil, fmt.Errorf("wire: nil graph or placement")
	}
	if cfg.Transport == nil {
		cfg.Transport = TCPDialer()
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.InboxCap <= 0 {
		cfg.InboxCap = defaultInboxCap
	}
	if cfg.CreditWindow <= 0 {
		cfg.CreditWindow = defaultCreditWindow
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = defaultSlowThreshold
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	m := newPeerMetrics(cfg.Registry)
	p := &Peer{
		cfg:      cfg,
		tr:       cfg.Transport,
		retry:    cfg.Retry.withDefaults(),
		rk:       newRanker(cfg, m.rankMass),
		ln:       ln,
		addr:     ln.Addr().String(),
		senders:  make(map[stream]*sender),
		rq:       p2p.NewRetryQueue(),
		ins:      make(map[net.Conn]struct{}),
		ctl:      make(chan inItem, ctlLaneCap),
		bulk:     make(chan inItem, cfg.InboxCap),
		quit:     make(chan struct{}),
		lastSeq:  make(map[stream]uint64),
		rejected: make(map[stream]map[uint64]struct{}),
		epochs:   append([]uint64(nil), cfg.Epochs...),
		m:        m,
		reg:      cfg.Registry,
		trace:    cfg.Trace,
	}
	p.wg.Add(1)
	go p.acceptLoop()
	// The processing loop runs from birth, not from Start: membership
	// operations (Adopt/Shed) and early inbound frames must be served
	// even on a peer that has not begun computing yet.
	p.wg.Add(1)
	go p.processLoop()
	return p, nil
}

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.addr }

// SetPeers installs the full peer address table (indexed by PeerID).
// It may be called again while running when a crashed peer rejoins at
// a new address, a fresh peer joins (the table grows), or a departed
// peer's slot is redirected to its successor's address.
func (p *Peer) SetPeers(addrs []string) {
	p.peersMu.Lock()
	p.peers = append([]string(nil), addrs...)
	p.peersMu.Unlock()
}

// peerAddr resolves a destination's current address ("" if unknown).
func (p *Peer) peerAddr(dest p2p.PeerID) string {
	p.peersMu.Lock()
	defer p.peersMu.Unlock()
	if dest < 0 || int(dest) >= len(p.peers) {
		return ""
	}
	return p.peers[dest]
}

// SetView installs the full membership view: address table, ownership
// epochs, departed flags and forwarding slots. Pushed by the cluster
// on every membership change; SetPeers remains the address-only legacy
// entry point.
func (p *Peer) SetView(v View) {
	p.peersMu.Lock()
	p.peers = append([]string(nil), v.Addrs...)
	p.epochs = append([]uint64(nil), v.Epochs...)
	p.gone = append([]bool(nil), v.Gone...)
	p.fwd = append([]p2p.PeerID(nil), v.Fwd...)
	p.peersMu.Unlock()
}

// view snapshots the peer's current membership view.
func (p *Peer) view() View {
	p.peersMu.Lock()
	defer p.peersMu.Unlock()
	return View{
		Addrs:  append([]string(nil), p.peers...),
		Epochs: append([]uint64(nil), p.epochs...),
		Gone:   append([]bool(nil), p.gone...),
		Fwd:    append([]p2p.PeerID(nil), p.fwd...),
	}
}

// growViewLocked extends the view slices to cover n slots. Caller
// holds peersMu.
func (p *Peer) growViewLocked(n int) {
	for len(p.peers) < n {
		p.peers = append(p.peers, "")
	}
	for len(p.epochs) < n {
		p.epochs = append(p.epochs, 0)
	}
	for len(p.gone) < n {
		p.gone = append(p.gone, false)
	}
	for len(p.fwd) < n {
		p.fwd = append(p.fwd, p2p.NoPeer)
	}
}

// epochOf reads this peer's epoch for a slot's key range (0 when the
// slot is unknown).
func (p *Peer) epochOf(slot p2p.PeerID) uint64 {
	p.peersMu.Lock()
	defer p.peersMu.Unlock()
	if slot < 0 || int(slot) >= len(p.epochs) {
		return 0
	}
	return p.epochs[slot]
}

// adoptEpoch raises this peer's epoch for a slot's key range. Called
// when a frame or nack proves a higher epoch exists: the ownership
// transfer that minted it strictly precedes the evidence, so adopting
// the number (never lowering it) is always safe.
func (p *Peer) adoptEpoch(slot p2p.PeerID, epoch uint64) {
	if slot < 0 {
		return
	}
	p.peersMu.Lock()
	p.growViewLocked(int(slot) + 1)
	if epoch > p.epochs[slot] {
		p.epochs[slot] = epoch
	}
	p.peersMu.Unlock()
}

// mergeView folds an anti-entropy digest into this peer's view: per
// slot the higher epoch wins, bringing its address, departed flag and
// forwarding slot along. For slots the merge newly marks departed, the
// routing table is rewritten to the forwarding chain's end and queued
// updates are rerouted — this is how a healed minority peer's parked
// updates chase documents that migrated while it was cut off.
func (p *Peer) mergeView(v View) {
	n := v.viewSlots()
	type redirect struct{ from, to p2p.PeerID }
	var redirects []redirect
	p.peersMu.Lock()
	p.growViewLocked(n)
	newlyGone := make([]p2p.PeerID, 0, 2)
	for i := 0; i < n; i++ {
		var e uint64
		if i < len(v.Epochs) {
			e = v.Epochs[i]
		}
		if e <= p.epochs[i] {
			continue
		}
		p.epochs[i] = e
		wasGone := p.gone[i]
		if i < len(v.Addrs) && v.Addrs[i] != "" {
			p.peers[i] = v.Addrs[i]
		}
		if i < len(v.Gone) {
			p.gone[i] = v.Gone[i]
		}
		if i < len(v.Fwd) {
			p.fwd[i] = v.Fwd[i]
		}
		if !wasGone && p.gone[i] {
			newlyGone = append(newlyGone, p2p.PeerID(i))
		}
	}
	for _, slot := range newlyGone {
		// Resolve the forwarding chain inside the merged view: the
		// adopting successor may itself have departed since.
		j := slot
		for hops := 0; int(j) < len(p.gone) && p.gone[j] && p.fwd[j] != p2p.NoPeer && hops <= len(p.gone); hops++ {
			j = p.fwd[j]
		}
		if j != slot {
			redirects = append(redirects, redirect{from: slot, to: j})
		}
	}
	p.peersMu.Unlock()
	for _, r := range redirects {
		p.rk.rerouteOwner(r.from, r.to)
	}
	if len(redirects) > 0 {
		p.rerouteQueued()
	}
	p.wakeSenders()
}

// ExchangeView performs one anti-entropy round trip with dest: both
// sides merge the other's (membership, epoch vector) digest, so after
// a partition heals the two views reconcile to the highest-epoch owner
// of every key range. Called by the cluster when a fenced slot becomes
// reachable again.
func (p *Peer) ExchangeView(dest p2p.PeerID) error {
	addr := p.peerAddr(dest)
	if addr == "" {
		return fmt.Errorf("wire: no address for peer %d", dest)
	}
	conn, err := p.tr.Dial(p.cfg.ID, dest, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(probeTimeout))
	if err := writeFrame(conn, frameViewReq, encodeView(p.view())); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameViewResp {
		return fmt.Errorf("wire: unexpected frame %c to view exchange", typ)
	}
	v, err := decodeView(payload)
	if err != nil {
		return err
	}
	p.mergeView(v)
	return nil
}

// Start begins computing: it wakes the senders and performs the
// initial push (skipped for peers restored from a snapshot or
// constructed from a join handoff, whose ranker state already
// reflects everything pushed before).
func (p *Peer) Start() {
	p.wakeSenders()
	if p.restored {
		return
	}
	// Initial push of every owned document's starting rank. Self-
	// directed updates enter through the bulk lane; the processing
	// loop is already running, so the buffered channel drains.
	if self := p.ship(p.rk.initialOut(), true); len(self) > 0 {
		select {
		case p.bulk <- inItem{from: p.cfg.ID, us: self}:
		case <-p.quit:
		}
	}
}

// wakeSenders nudges every sender loop (e.g. after an address-table
// update redirected a departed peer's slot).
func (p *Peer) wakeSenders() {
	p.sendMu.Lock()
	for _, s := range p.senders {
		s.wakeUp()
	}
	p.sendMu.Unlock()
}

// stop halts every goroutine and closes every connection.
func (p *Peer) stop() {
	select {
	case <-p.quit:
	default:
		close(p.quit)
	}
	p.ln.Close()
	p.sendMu.Lock()
	ss := make([]*sender, 0, len(p.senders))
	for _, s := range p.senders {
		ss = append(ss, s)
	}
	p.sendMu.Unlock()
	for _, s := range ss {
		s.closeConn(nil)
	}
	p.inMu.Lock()
	for conn := range p.ins {
		conn.Close()
	}
	p.inMu.Unlock()
	p.wg.Wait()
}

// Close stops the peer and waits for its goroutines.
func (p *Peer) Close() { p.stop() }

// Kill simulates a crash: every goroutine stops, every connection
// drops, queued-but-unfolded inbound batches are lost, and the peer's
// durable state — ranker state, duplicate-suppression table, and the
// store-and-retry outbound queues — is returned as a snapshot from
// which RestorePeer can rejoin the network. Folded state is treated
// as committed (as if every fold had been synchronously logged), which
// together with fold-before-ack ordering guarantees no acknowledged
// update is ever lost.
func (p *Peer) Kill() *PeerSnapshot {
	p.stop()
	return p.snapshot()
}

// Counters reports (sent, processed) for termination probing.
func (p *Peer) Counters() (uint64, uint64) {
	return p.m.sent.Load(), p.m.processed.Load()
}

// Stats reports the peer's full counter set, read from the telemetry
// registry.
func (p *Peer) Stats() PeerStats { return p.m.stats() }

// Registry exposes the registry holding this peer's instruments.
func (p *Peer) Registry() *telemetry.Registry { return p.reg }

// event records a convergence-trace event when a trace is attached.
//
//dpr:hotpath
func (p *Peer) event(typ telemetry.EventType, value float64, aux int64) {
	if p.trace != nil {
		p.trace.Record(typ, int32(p.cfg.ID), -1, value, aux)
	}
}

// acceptLoop serves inbound connections.
func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.serveConn(conn)
	}
}

// connWriter serializes frame writes on one inbound connection, which
// is shared between the reader's responses and the processing loop's
// acknowledgements.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

// write emits one frame under a write deadline, so a jammed peer can
// never stall the processing loop or a response path: a lost ack is
// recovered by the sender's retransmission, which is re-acknowledged.
func (cw *connWriter) write(typ byte, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	defer cw.conn.SetWriteDeadline(time.Time{})
	//dpr:ignore lockhold: intentional — the write deadline above bounds the hold to writeTimeout
	return writeFrame(cw.conn, typ, payload)
}

// serveConn handles one inbound connection's frames.
func (p *Peer) serveConn(conn net.Conn) {
	defer p.wg.Done()
	p.inMu.Lock()
	p.ins[conn] = struct{}{}
	p.inMu.Unlock()
	defer func() {
		conn.Close()
		p.inMu.Lock()
		delete(p.ins, conn)
		p.inMu.Unlock()
	}()
	cw := &connWriter{conn: conn}
	for {
		//dpr:nodeadline inbound conns idle between sender batches by design; teardown is via Close from the failure detector or peer shutdown
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case frameBatch:
			// Legacy unsequenced batch: folded without dedup or ack.
			us, err := decodeBatch(payload)
			if err != nil {
				return
			}
			select {
			case p.bulk <- inItem{us: us}:
			case <-p.quit:
				return
			}
		case frameBatchSeq:
			// Legacy sequenced batch: stream dest is implicitly us.
			from, seq, us, err := decodeBatchSeq(payload)
			if err != nil {
				return
			}
			it := inItem{from: from, origDest: p.cfg.ID, seq: seq, seqed: true, us: us,
				ack: func() { cw.write(frameAck, encodeAck(seq)) }}
			select {
			case p.bulk <- it:
			case <-p.quit:
				return
			}
		case frameBatchStrm:
			from, origDest, seq, us, err := decodeBatchStrm(payload)
			if err != nil {
				return
			}
			it := inItem{from: from, origDest: origDest, seq: seq, seqed: true, us: us,
				ack: func() { cw.write(frameAck, encodeAck(seq)) }}
			select {
			case p.bulk <- it:
			case <-p.quit:
				return
			}
		case frameBatchEpoch:
			from, origDest, seq, epoch, us, err := decodeBatchEpoch(payload)
			if err != nil {
				return
			}
			// Acks on the epoch path are credit frames: the cumulative ack
			// plus this receiver's advertised window, computed at ack time
			// so it reflects current bulk-lane occupancy.
			it := inItem{from: from, origDest: origDest, seq: seq, seqed: true, us: us,
				epoch: epoch, hasEpoch: true,
				ack:  func() { cw.write(frameCredit, encodeCredit(seq, p.advertiseWindow())) },
				nack: func(cur uint64) { cw.write(frameNackEpoch, encodeNackEpoch(seq, cur)) }}
			select {
			case p.bulk <- it:
			case <-p.quit:
				return
			}
		case framePing:
			// A non-empty ping carries suspicion gossip; the pong answers
			// with this slot's own suspicion set when the hook is wired.
			var reply []byte
			if len(payload) > 0 {
				from, sus, err := decodeGossip(payload)
				if err != nil {
					return
				}
				if p.cfg.Gossip != nil {
					reply = encodeGossip(p.cfg.ID, p.cfg.Gossip(from, sus))
				}
			}
			if err := cw.write(framePong, reply); err != nil {
				return
			}
		case frameViewReq:
			v, err := decodeView(payload)
			if err != nil {
				return
			}
			p.mergeView(v)
			if err := cw.write(frameViewResp, encodeView(p.view())); err != nil {
				return
			}
		case frameSnapReq:
			sent, processed := p.Counters()
			if err := cw.write(frameSnapResp, encodeSnapshot(sent, processed)); err != nil {
				return
			}
		case frameRanksReq:
			docs, ranks := p.rk.snapshotRanks()
			if err := cw.write(frameRanks, encodeRanks(docs, ranks)); err != nil {
				return
			}
		case frameStop:
			select {
			case <-p.quit:
			default:
				close(p.quit)
			}
			return
		default:
			return // protocol violation: drop the connection
		}
	}
}

// advertiseWindow computes the credit window this receiver grants a
// sender right now: the configured ceiling, shrunk toward 1 as the
// bulk lane fills. The window is never zero — a stream always keeps
// the right to one in-flight frame, so flow control throttles senders
// without ever deadlocking them.
func (p *Peer) advertiseWindow() uint32 {
	w := p.cfg.CreditWindow
	if free := cap(p.bulk) - len(p.bulk); free < w {
		w = free
	}
	if w < 1 {
		w = 1
	}
	return uint32(w)
}

// processLoop consumes delivered batches, coalescing whatever is
// already queued before recomputing. The control lane has strict
// priority: membership operations are served before any queued bulk
// update, so an overloaded peer still turns around Adopt/Shed
// promptly. Self-directed consequences are folded in the same loop
// rather than re-queued through the inbox channels, which would
// self-deadlock when the channel is full.
func (p *Peer) processLoop() {
	defer p.wg.Done()
	for {
		var it inItem
		select {
		case <-p.quit:
			return
		case it = <-p.ctl:
		default:
			select {
			case <-p.quit:
				return
			case it = <-p.ctl:
			case it = <-p.bulk:
			}
		}
		items := []inItem{it}
		for drained := false; !drained; {
			select {
			case more := <-p.ctl:
				items = append(items, more)
			default:
				select {
				case more := <-p.bulk:
					items = append(items, more)
				default:
					drained = true
				}
			}
		}
		p.m.inboxOccupancy.Set(float64(len(items) + len(p.bulk)))
		p.consume(items)
	}
}

// consume suppresses duplicates, applies membership operations, folds
// the surviving updates (and the whole chain of self-directed
// consequences), then acknowledges. The dedup table is advanced in the
// same loop iteration as the fold, so a crash can never separate them
// — anything a sender sees acknowledged is part of every later
// snapshot.
func (p *Peer) consume(items []inItem) {
	var batch []p2p.Update
	var acks []inItem
	for _, it := range items {
		if it.adopt != nil {
			p.applyAdopt(it.adopt)
			continue
		}
		if it.shed != nil {
			p.applyShed(it.shed)
			continue
		}
		if it.seqed {
			key := stream{src: it.from, dest: it.origDest}
			// Dedup strictly before the epoch check: a retransmission of a
			// frame that was folded before the range migrated here must be
			// re-acked, never epoch-nacked — a nack would requeue updates
			// whose originals were already folded. Sequence numbers the
			// epoch fence rejected are exempt: lastSeq may have advanced
			// past them when a later refreshed-epoch frame folded, but
			// their updates never folded, so a retransmission (sent
			// because the nack was lost) must face the fence again rather
			// than be acknowledged as a duplicate.
			_, wasRejected := p.rejected[key][it.seq]
			if it.seq <= p.lastSeq[key] && !wasRejected {
				p.m.dupDropped.Add(1)
				if it.ack != nil {
					it.ack() // re-ack so the sender can discard the frame
				}
				continue
			}
			if it.hasEpoch {
				local := p.epochOf(it.origDest)
				if it.epoch < local {
					// The sender missed an ownership transfer of this key
					// range: reject without folding or advancing dedup. The
					// nack carries our epoch so the sender catches up and
					// re-routes the updates by its refreshed owner table.
					p.m.epochRejected.Add(1)
					p.event(telemetry.EvEpochReject, float64(it.epoch), int64(it.origDest))
					if p.rejected[key] == nil {
						p.rejected[key] = make(map[uint64]struct{})
					}
					p.rejected[key][it.seq] = struct{}{}
					if it.nack != nil {
						it.nack(local)
					}
					continue
				}
				if it.epoch > local {
					// We are the ones behind. The frame's epoch proves the
					// transfer that minted it already happened, so adopt the
					// number and fold: an eviction always stops the previous
					// owner before its range migrates, so a higher-epoch
					// frame can never race a live older owner.
					p.adoptEpoch(it.origDest, it.epoch)
				}
			}
			if wasRejected {
				delete(p.rejected[key], it.seq)
				if len(p.rejected[key]) == 0 {
					delete(p.rejected, key)
				}
			}
			if it.seq > p.lastSeq[key] {
				p.lastSeq[key] = it.seq
			}
			acks = append(acks, it)
		}
		batch = append(batch, it.us...)
	}
	for len(batch) > 0 {
		batch = p.handle(batch)
	}
	for _, it := range acks {
		if it.ack != nil {
			it.ack()
		}
	}
}

// handle folds a batch, ships remote consequences, forwards updates
// for documents that migrated away, and returns the self-directed
// ones for the caller to fold next.
func (p *Peer) handle(batch []p2p.Update) []p2p.Update {
	out, fwd := p.rk.fold(batch)
	self := p.ship(out, true)
	if len(fwd) > 0 {
		self = append(self, p.forward(fwd)...)
	}
	// Conservation accounting: only mass actually folded here counts
	// as folded; forwarded mass stays in flight (its origination was
	// already counted by whoever first shipped it).
	folded := 0.0
	for _, u := range batch {
		folded += u.Delta
	}
	for _, u := range fwd {
		folded -= u.Delta
	}
	p.m.deltaFolded.Add(folded)
	p.m.processed.Add(uint64(len(batch)))
	p.event(telemetry.EvFold, folded, int64(len(batch)))
	return self
}

// ship routes batches toward their destinations and returns the
// self-directed updates for in-loop processing. The sent counter is
// incremented before anything is queued so the termination probe can
// never observe processed > sent. originated marks freshly minted
// deltas, which count toward the shipped-mass conservation total;
// forwarded mass was counted at its origin.
func (p *Peer) ship(out map[p2p.PeerID][]p2p.Update, originated bool) []p2p.Update {
	var self []p2p.Update
	shipped, n := 0.0, 0
	for dest, us := range out {
		p.m.sent.Add(uint64(len(us)))
		if originated {
			for _, u := range us {
				shipped += u.Delta
			}
			n += len(us)
		}
		if dest == p.cfg.ID {
			self = append(self, us...)
			continue
		}
		p.queueRemote(dest, us)
	}
	if originated && n > 0 {
		p.m.deltaShipped.Add(shipped)
		p.event(telemetry.EvShip, shipped, int64(n))
	}
	return self
}

// forward re-ships updates that arrived for documents this peer does
// not own — they raced an ownership migration. Each is routed to the
// document's current owner; updates the routing table says are ours
// but the fold refused (a transiently inconsistent table) are counted
// in misdropped, which the conservation check treats as lost mass.
func (p *Peer) forward(fwd []p2p.Update) []p2p.Update {
	out := make(map[p2p.PeerID][]p2p.Update)
	var self []p2p.Update
	for _, u := range fwd {
		owner := p.rk.ownerOf(u.Doc)
		switch {
		case owner == p.cfg.ID && p.rk.owns(u.Doc):
			self = append(self, u) // adopted between fold and forward
			p.m.sent.Add(1)
		case owner == p.cfg.ID || owner == p2p.NoPeer:
			p.m.misdropped.Add(1) // no resolvable owner; surfaced in stats
		default:
			out[owner] = append(out[owner], u)
		}
	}
	p.m.forwarded.Add(uint64(len(fwd)))
	return append(self, p.ship(out, false)...)
}

// queueRemote coalesces updates into the destination's retry queue
// and wakes its sender. An update absorbed by coalescing counts as
// processed on the spot: its delta mass survives inside the merged
// entry, so exactly one fold will account for both — this is what
// keeps the sender's stored state bounded by the destination's
// distinct documents while the termination probe stays exact.
func (p *Peer) queueRemote(dest p2p.PeerID, us []p2p.Update) {
	merged := 0
	p.rqMu.Lock()
	for _, u := range us {
		if p.rq.DeferMerge(dest, u) {
			merged++
		}
	}
	p.rqMu.Unlock()
	s := p.sender(stream{src: p.cfg.ID, dest: dest})
	if merged > 0 {
		p.m.coalesced.Add(uint64(merged))
		p.m.processed.Add(uint64(merged))
		if s.isStalled() {
			// Lossless load shedding: the destination is out of credit and
			// these updates were absorbed into already-queued entries
			// instead of growing the backlog.
			p.m.shedCoalesced.Add(uint64(merged))
		}
	}
	s.wakeUp()
}

// sender returns (creating on first use) the stream's sender.
func (p *Peer) sender(st stream) *sender {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	s, ok := p.senders[st]
	if !ok {
		s = p.newSender(st)
		p.senders[st] = s
		p.wg.Add(1)
		go s.loop()
	}
	return s
}

func (p *Peer) newSender(st stream) *sender {
	return &sender{
		p:       p,
		strm:    st,
		rng:     rng.New(uint64(uint32(st.src))<<32 ^ uint64(uint32(st.dest)) ^ 0x5bd1e995),
		wake:    make(chan struct{}, 1),
		nextSeq: 1,
		sendSeq: 1,
		window:  uint64(p.cfg.CreditWindow),
	}
}

// UpdateOwnership applies a membership change pushed by the cluster:
// docs now belong to owner, and v is the refreshed membership view
// (departed slots redirected to their successor's address, epochs
// bumped for the ranges the transfer touched). Pending retry-queue
// entries are rerouted to their documents' current owners so updates
// parked for a departed peer chase the documents to wherever they
// migrated.
func (p *Peer) UpdateOwnership(docs []graph.NodeID, owner p2p.PeerID, v View) {
	p.SetView(v)
	p.rk.setOwner(docs, owner)
	p.rerouteQueued()
	p.wakeSenders()
}

// rerouteQueued re-homes every queued-but-unframed update whose
// document's owner changed. Entries that merge into an existing entry
// for the new owner count as coalesced-and-processed, exactly like a
// first-time DeferMerge absorption; entries for documents this peer
// now owns fold locally through the inbox.
func (p *Peer) rerouteQueued() {
	table := p.rk.ownerTable()
	var selfUs []p2p.Update
	merged := 0
	p.rqMu.Lock()
	for _, dest := range p.rq.Dests() {
		for _, u := range p.rq.Drain(dest) {
			owner := dest
			if int(u.Doc) < len(table) {
				owner = table[u.Doc]
			}
			if owner == p.cfg.ID {
				selfUs = append(selfUs, u)
				continue
			}
			if p.rq.DeferMerge(owner, u) {
				merged++
			}
		}
	}
	dests := p.rq.Dests()
	p.rqMu.Unlock()
	if merged > 0 {
		p.m.coalesced.Add(uint64(merged))
		p.m.processed.Add(uint64(merged))
	}
	// Ensure every destination holding rerouted updates has a live
	// sender — the new owner may never have been dialed before.
	for _, dest := range dests {
		p.sender(stream{src: p.cfg.ID, dest: dest}).wakeUp()
	}
	if len(selfUs) > 0 {
		select {
		case p.bulk <- inItem{from: p.cfg.ID, us: selfUs}:
		case <-p.quit:
		}
	}
}

// Adopt hands a departed peer's durable state to this peer: ranker
// rows for the migrated documents, the per-stream dedup table, parked
// (never-framed) updates, and the departed peer's own unacknowledged
// outbound frames, which this peer takes over retransmitting verbatim
// under their original stream identity. The call blocks until the
// processing loop has applied the handoff, so by the time it returns
// any frame redirected here dedups correctly.
func (p *Peer) Adopt(h *Handoff) error {
	if h == nil {
		return fmt.Errorf("wire: nil handoff")
	}
	h.done = make(chan struct{})
	select {
	case p.ctl <- inItem{adopt: h}:
	case <-p.quit:
		return fmt.Errorf("wire: peer %d is shut down", p.cfg.ID)
	}
	select {
	case <-h.done:
		return nil
	case <-p.quit:
		return fmt.Errorf("wire: peer %d shut down during adoption", p.cfg.ID)
	}
}

// applyAdopt runs on the processing loop.
func (p *Peer) applyAdopt(h *Handoff) {
	defer close(h.done)
	p.rk.adopt(h.Docs, h.Rank, h.Acc, h.Last)
	for i, e := range h.Epochs {
		p.adoptEpoch(p2p.PeerID(i), e)
	}
	for st, seq := range h.LastSeq {
		if seq > p.lastSeq[st] {
			p.lastSeq[st] = seq
		}
	}
	for _, e := range h.Rejected {
		st := stream{src: e.Src, dest: e.Dest}
		if p.rejected[st] == nil {
			p.rejected[st] = make(map[uint64]struct{})
		}
		p.rejected[st][e.Seq] = struct{}{}
	}
	for _, ob := range h.Outbound {
		st := stream{src: ob.Src, dest: ob.Dest}
		if len(ob.Unacked) > 0 {
			p.installAdoptedSender(st, ob)
		}
		// Parked updates re-enter as a plain received batch: they were
		// counted sent by the departed peer, and folding or forwarding
		// them here balances that exactly once.
		if len(ob.Pending) > 0 {
			for next := append([]p2p.Update(nil), ob.Pending...); len(next) > 0; {
				next = p.handle(next)
			}
		}
	}
}

// installAdoptedSender primes a sender for a departed peer's stream,
// loaded with its unacknowledged frames for verbatim retransmission.
func (p *Peer) installAdoptedSender(st stream, ob OutboundState) {
	p.sendMu.Lock()
	if _, dup := p.senders[st]; dup {
		p.sendMu.Unlock()
		return // replayed handoff; the live sender already owns the stream
	}
	s := p.newSender(st)
	s.nextSeq = ob.NextSeq
	if ob.Window > 0 {
		s.window = ob.Window
	}
	for _, uf := range ob.Unacked {
		fr := &frameRec{seq: uf.Seq, updates: len(uf.Updates)}
		// Re-encode under the restorer's current epoch for the range:
		// stream and seq identity are preserved (dedup still works),
		// but the frame carries a fence-aware epoch so a reconciled
		// receiver can nack it if ownership moved on.
		fr.bytes = frameBytes(frameBatchEpoch, encodeBatchEpoch(st.src, st.dest, uf.Seq, p.epochOf(st.dest), uf.Updates))
		s.unacked = append(s.unacked, fr)
	}
	if len(s.unacked) > 0 {
		s.sendSeq = s.unacked[0].seq
		p.m.unackedFrames.Add(float64(len(s.unacked)))
	} else {
		s.sendSeq = s.nextSeq
	}
	p.senders[st] = s
	p.wg.Add(1)
	go s.loop()
	p.sendMu.Unlock()
	s.wakeUp()
}

// Shed extracts the ranker rows for docs (for handing to a joining
// peer) and atomically repoints this peer's routing table at newOwner.
// The call blocks until the processing loop has applied it, so no fold
// can touch the extracted rows afterwards.
func (p *Peer) Shed(docs []graph.NodeID, newOwner p2p.PeerID) (rank, acc, last []float64, err error) {
	req := &shedReq{docs: docs, newOwner: newOwner, reply: make(chan shedState, 1)}
	select {
	case p.ctl <- inItem{shed: req}:
	case <-p.quit:
		return nil, nil, nil, fmt.Errorf("wire: peer %d is shut down", p.cfg.ID)
	}
	select {
	case st := <-req.reply:
		return st.rank, st.acc, st.last, st.err
	case <-p.quit:
		return nil, nil, nil, fmt.Errorf("wire: peer %d shut down during shed", p.cfg.ID)
	}
}

// applyShed runs on the processing loop.
func (p *Peer) applyShed(req *shedReq) {
	rank, acc, last, err := p.rk.shed(req.docs, req.newOwner)
	req.reply <- shedState{rank: rank, acc: acc, last: last, err: err}
}

// sender owns the fault-tolerant outbound path of one delivery stream:
// framing pending updates from the retry queue (own streams only),
// transmitting in sequence order, keeping every frame until it is
// acknowledged, and reconnecting with exponential backoff —
// retransmitting all unacked frames verbatim — whenever the connection
// is lost. Adopted streams (src != this peer) only drain their
// inherited frames; once everything is acknowledged they idle.
type sender struct {
	p    *Peer
	strm stream
	rng  *rng.Rand // jitter; used only by the sender's own goroutine
	wake chan struct{}

	mu       sync.Mutex
	conn     net.Conn
	unacked  []*frameRec // FIFO by seq; kept until acknowledged
	nextSeq  uint64      // seq assigned to the next newly built frame
	sendSeq  uint64      // seq of the next frame to (re)transmit
	everConn bool

	// Flow control: window is the receiver's advertised credit (frames
	// in flight allowed); stalled marks a stream currently refusing to
	// frame fresh updates for lack of credit, during which queued
	// deltas coalesce in the retry queue instead of growing unacked.
	window  uint64
	stalled bool

	// Straggler detection: an EWMA of send-to-ack latency per
	// destination, with hysteresis on the slow flag (set above
	// SlowThreshold, cleared below half of it) so the degraded mode
	// does not flap.
	ewma time.Duration
	slow bool
}

// frameRec is one framed batch awaiting acknowledgement.
type frameRec struct {
	seq      uint64
	bytes    []byte
	updates  int
	attempts int
	sentAt   time.Time // last transmission start; feeds the latency EWMA
}

func (s *sender) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop transmits until the peer shuts down.
func (s *sender) loop() {
	defer s.p.wg.Done()
	// The loop is the only goroutine that dials, so closing the current
	// connection on exit guarantees no readAcks goroutine outlives the
	// peer — stop()'s own closeConn can race with a dial in flight.
	defer s.closeConn(nil)
	fails := 0
	for {
		select {
		case <-s.p.quit:
			return
		case <-s.wake:
		}
		for {
			select {
			case <-s.p.quit:
				return
			default:
			}
			fr := s.nextFrame()
			if fr == nil {
				break
			}
			conn := s.ensureConn(&fails)
			if conn == nil {
				return // shutting down
			}
			s.mu.Lock()
			fr.attempts++
			retry := fr.attempts > 1
			seq := fr.seq
			// Latency is measured from transmission start, so a trickling
			// connection (slow writes) raises the EWMA just like a slow
			// folder on the far side.
			fr.sentAt = time.Now()
			s.mu.Unlock()
			if retry {
				s.p.m.retries.Add(1)
				s.p.event(telemetry.EvRetry, float64(seq), int64(s.strm.dest))
			}
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			_, err := conn.Write(fr.bytes)
			conn.SetWriteDeadline(time.Time{})
			if err != nil {
				s.closeConn(conn)
				fails++
				if !s.backoff(fails) {
					return
				}
				continue
			}
			fails = 0
			// Arm the ack deadline: an acknowledgement for this frame is
			// now owed, and SetReadDeadline reaches a Read already blocked
			// in readAcks.
			conn.SetReadDeadline(time.Now().Add(ackTimeout))
			s.mu.Lock()
			if s.sendSeq <= fr.seq {
				s.sendSeq = fr.seq + 1
			}
			slow := s.slow
			s.mu.Unlock()
			if slow {
				// Straggler degradation: stretch the ship cadence so the
				// slow destination drains between frames instead of
				// accumulating an in-flight pile-up.
				select {
				case <-s.p.quit:
					return
				case <-time.After(s.p.cfg.SlowThreshold / 4):
				}
			}
		}
	}
}

// nextFrame returns the next frame to transmit: the first
// unacknowledged frame at or past the send cursor, else — for streams
// this peer originates, when credit allows — a fresh frame built from
// the retry queue's coalesced pending updates.
//
// Credit gating happens here, and only for fresh frames:
// retransmissions of already-built frames never consume new credit
// (the receiver granted it when they were first framed), so a
// reconnect can always drain the pipe. While the stream is out of
// credit, queued updates stay in the retry queue where DeferMerge
// coalesces them per document — sender memory stays bounded by the
// destination's distinct documents, and no delta mass is dropped.
func (s *sender) nextFrame() *frameRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, fr := range s.unacked {
		if fr.seq >= s.sendSeq {
			return fr
		}
	}
	p := s.p
	if s.strm.src != p.cfg.ID {
		return nil // adopted stream: only inherited frames, never fresh ones
	}
	if uint64(len(s.unacked)) >= s.window {
		if !s.stalled {
			s.stalled = true
			p.m.creditStalls.Add(1)
			p.event(telemetry.EvCreditStall, float64(len(s.unacked)), int64(s.strm.dest))
		}
		return nil
	}
	s.stalled = false
	limit := batchCap
	if s.slow {
		limit = slowBatchCap
	}
	p.rqMu.Lock()
	us := p.rq.DrainN(s.strm.dest, limit)
	p.rqMu.Unlock()
	if len(us) == 0 {
		return nil
	}
	fr := &frameRec{seq: s.nextSeq, updates: len(us)}
	s.nextSeq++
	var buf bytes.Buffer
	// Fresh frames are stamped with the sender's current epoch for the
	// destination key range; a receiver that saw a later ownership
	// transfer of that range nacks the frame instead of folding it.
	writeFrame(&buf, frameBatchEpoch, encodeBatchEpoch(s.strm.src, s.strm.dest, fr.seq, p.epochOf(s.strm.dest), us))
	fr.bytes = buf.Bytes()
	s.unacked = append(s.unacked, fr)
	p.m.unackedFrames.Add(1)
	return fr
}

// ensureConn returns the live connection, dialing with backoff until
// one is established. Returns nil only on shutdown. Each attempt
// re-resolves the stream destination's address, so a peer that
// rejoined at a new address — or a departed slot redirected to its
// successor — is found without any extra signalling.
func (s *sender) ensureConn(fails *int) net.Conn {
	s.mu.Lock()
	if s.conn != nil {
		c := s.conn
		s.mu.Unlock()
		return c
	}
	s.mu.Unlock()
	for {
		select {
		case <-s.p.quit:
			return nil
		default:
		}
		addr := s.p.peerAddr(s.strm.dest)
		var c net.Conn
		var err error
		if addr == "" {
			err = fmt.Errorf("wire: no address for peer %d", s.strm.dest)
		} else {
			c, err = s.p.tr.Dial(s.p.cfg.ID, s.strm.dest, addr)
		}
		if err != nil {
			*fails++
			if !s.backoff(*fails) {
				return nil
			}
			continue
		}
		s.mu.Lock()
		recon := s.everConn
		if recon {
			s.p.m.reconnects.Add(1)
		}
		s.everConn = true
		s.conn = c
		// Retransmit everything unacknowledged on the new connection.
		if len(s.unacked) > 0 {
			s.sendSeq = s.unacked[0].seq
		}
		s.mu.Unlock()
		if recon {
			s.p.event(telemetry.EvReconnect, 0, int64(s.strm.dest))
		}
		s.p.wg.Add(1)
		go s.readAcks(c)
		return c
	}
}

// backoff sleeps the policy's delay; false means the peer is shutting
// down.
func (s *sender) backoff(fails int) bool {
	d := s.p.retry.delay(s.rng, fails)
	select {
	case <-s.p.quit:
		return false
	case <-time.After(d):
		return true
	}
}

// closeConn tears down a connection (the current one when c is nil)
// and rewinds the send cursor so unacked frames are retransmitted.
func (s *sender) closeConn(c net.Conn) {
	s.mu.Lock()
	cur := s.conn
	if c == nil || cur == c {
		s.conn = nil
		if len(s.unacked) > 0 {
			s.sendSeq = s.unacked[0].seq
		}
	}
	s.mu.Unlock()
	if c == nil {
		c = cur
	}
	if c != nil {
		c.Close()
	}
}

// readAcks consumes cumulative acknowledgements from one connection
// until it dies, then schedules retransmission.
func (s *sender) readAcks(c net.Conn) {
	defer s.p.wg.Done()
	for {
		typ, payload, err := readFrame(c)
		if err != nil {
			s.closeConn(c)
			s.wakeUp()
			return
		}
		if typ == frameNackEpoch {
			seq, epoch, err := decodeNackEpoch(payload)
			if err != nil {
				s.closeConn(c)
				s.wakeUp()
				return
			}
			s.handleNack(seq, epoch)
			s.mu.Lock()
			owed := len(s.unacked) > 0
			s.mu.Unlock()
			if owed {
				c.SetReadDeadline(time.Now().Add(ackTimeout))
			} else {
				c.SetReadDeadline(time.Time{})
			}
			continue
		}
		var seq uint64
		switch typ {
		case frameAck:
			seq, err = decodeAck(payload)
		case frameCredit:
			// A credit frame is a cumulative ack carrying the receiver's
			// refreshed window; adopt the window before discarding frames
			// so a woken sender sees the new budget.
			var window uint32
			seq, window, err = decodeCredit(payload)
			if err == nil {
				s.setWindow(window)
			}
		default:
			err = fmt.Errorf("wire: unexpected frame %c on ack path", typ)
		}
		if err != nil {
			s.closeConn(c)
			s.wakeUp()
			return
		}
		s.ack(seq)
		// Progress: extend the deadline while more acks are owed, clear
		// it once nothing is outstanding so idle connections never expire.
		s.mu.Lock()
		owed := len(s.unacked) > 0
		s.mu.Unlock()
		if owed {
			c.SetReadDeadline(time.Now().Add(ackTimeout))
		} else {
			c.SetReadDeadline(time.Time{})
		}
	}
}

// ack discards every frame with seq <= the cumulative acknowledgement,
// feeds the send-to-ack latency of the newest discarded frame into the
// destination's straggler EWMA, and wakes the sender loop — a stream
// that stalled on credit regains it exactly here.
func (s *sender) ack(seq uint64) {
	now := time.Now()
	var lat time.Duration
	var slowFlip bool
	var ewma time.Duration
	s.mu.Lock()
	i := 0
	for i < len(s.unacked) && s.unacked[i].seq <= seq {
		if s.unacked[i].attempts > 1 {
			s.p.m.redeliveries.Add(1)
		}
		if !s.unacked[i].sentAt.IsZero() {
			lat = now.Sub(s.unacked[i].sentAt)
		}
		i++
	}
	if i > 0 {
		s.unacked = append([]*frameRec(nil), s.unacked[i:]...)
		s.p.m.unackedFrames.Add(float64(-i))
	}
	if i > 0 && lat > 0 {
		// EWMA with alpha = 1/4: new = old + (sample - old) / 4. The
		// first sample seeds the average directly.
		if s.ewma == 0 {
			s.ewma = lat
		} else {
			s.ewma += (lat - s.ewma) / 4
		}
		ewma = s.ewma
		threshold := s.p.cfg.SlowThreshold
		switch {
		case !s.slow && s.ewma > threshold:
			s.slow, slowFlip = true, true
		case s.slow && s.ewma < threshold/2:
			s.slow = false
		}
	}
	s.mu.Unlock()
	if i > 0 {
		if lat > 0 {
			s.p.m.sendLatency.Observe(lat.Seconds())
			s.p.m.sendLatencyEwma.Set(ewma.Seconds())
		}
		if slowFlip {
			s.p.m.slowPeer.Add(1)
			s.p.event(telemetry.EvSlowPeer, ewma.Seconds(), int64(s.strm.dest))
		}
		s.wakeUp()
	}
}

// setWindow adopts the receiver's advertised credit window. A grown
// window wakes the loop so a credit-stalled stream resumes framing.
func (s *sender) setWindow(w uint32) {
	s.mu.Lock()
	grew := uint64(w) > s.window
	s.window = uint64(w)
	s.mu.Unlock()
	if grew {
		s.wakeUp()
	}
}

// isStalled reports whether the stream is currently credit-blocked.
func (s *sender) isStalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled
}

// handleNack processes a stale-epoch rejection: adopt the receiver's
// epoch for the stream's key range, withdraw exactly the rejected
// frame, and requeue its updates through the current owner table —
// the receiver never folded them, so re-originating them under this
// peer's own streams keeps delivery exactly-once.
func (s *sender) handleNack(seq, epoch uint64) {
	s.p.adoptEpoch(s.strm.dest, epoch)
	var us []p2p.Update
	s.mu.Lock()
	for i, fr := range s.unacked {
		if fr.seq != seq {
			continue
		}
		if _, _, _, decoded, err := decodeFrameBytes(fr.bytes); err == nil {
			us = decoded
		} else {
		}
		s.unacked = append(s.unacked[:i:i], s.unacked[i+1:]...)
		s.p.m.unackedFrames.Add(-1)
		break
	}
	s.mu.Unlock()
	if len(us) > 0 {
		s.p.requeueUpdates(us)
	}
	s.wakeUp()
}

// requeueUpdates re-routes nacked updates by the current owner table.
// Accounting mirrors rerouteQueued: merges into existing queue entries
// count as coalesced-and-processed, locally owned documents fold
// through the inbox, and nothing is re-counted as sent — the updates'
// origination was counted when they first shipped.
func (p *Peer) requeueUpdates(us []p2p.Update) {
	table := p.rk.ownerTable()
	var selfUs []p2p.Update
	merged := 0
	p.rqMu.Lock()
	for _, u := range us {
		owner := p2p.NoPeer
		if int(u.Doc) < len(table) {
			owner = table[u.Doc]
		}
		if owner == p.cfg.ID || owner == p2p.NoPeer {
			selfUs = append(selfUs, u)
			continue
		}
		if p.rq.DeferMerge(owner, u) {
			merged++
		}
	}
	dests := p.rq.Dests()
	p.rqMu.Unlock()
	if merged > 0 {
		p.m.coalesced.Add(uint64(merged))
		p.m.processed.Add(uint64(merged))
	}
	for _, dest := range dests {
		p.sender(stream{src: p.cfg.ID, dest: dest}).wakeUp()
	}
	if len(selfUs) > 0 {
		// Locally owned (or owner-unresolvable) updates fold or get
		// forwarded by handle on the processing loop.
		select {
		case p.bulk <- inItem{from: p.cfg.ID, us: selfUs}:
		case <-p.quit:
		}
	}
}
