package wire

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// PeerConfig configures one TCP peer.
type PeerConfig struct {
	ID      p2p.PeerID
	Graph   *graph.Graph // shared, read-only
	DocPeer []p2p.PeerID // doc -> owning peer (shared, read-only)
	Docs    []graph.NodeID
	Damping float64 // 0 means 0.85
	Epsilon float64 // 0 means 1e-3
}

// Peer is one network node of the computation: a TCP listener, one
// persistent outbound connection per destination peer, and the chaotic
// iteration state for the documents it owns.
type Peer struct {
	cfg  PeerConfig
	rk   *ranker
	ln   net.Listener
	addr string

	// Outbound connections, created lazily.
	outMu sync.Mutex
	outs  map[p2p.PeerID]*outConn
	peers []string // peer id -> address

	// Inbound connections, tracked so Close can unblock their readers.
	inMu sync.Mutex
	ins  map[net.Conn]struct{}

	inbox chan []p2p.Update
	quit  chan struct{}
	wg    sync.WaitGroup

	sent      atomic.Uint64 // update messages shipped to other peers
	processed atomic.Uint64 // update messages consumed
}

// outConn owns one outbound connection. Writes go through an
// unbounded queue drained by a dedicated goroutine, so a peer never
// blocks on a slow or jammed destination (synchronous writes around a
// cycle of peers with full TCP buffers would deadlock the ring).
type outConn struct {
	mu     sync.Mutex
	queue  [][]byte
	wake   chan struct{}
	conn   net.Conn
	closed bool
}

func newOutConn(conn net.Conn) *outConn {
	return &outConn{conn: conn, wake: make(chan struct{}, 1)}
}

// enqueue schedules one frame for transmission.
func (oc *outConn) enqueue(frame []byte) {
	oc.mu.Lock()
	oc.queue = append(oc.queue, frame)
	oc.mu.Unlock()
	select {
	case oc.wake <- struct{}{}:
	default:
	}
}

// writeLoop drains the queue until the connection closes.
func (oc *outConn) writeLoop(quit <-chan struct{}) {
	for {
		select {
		case <-quit:
			return
		case <-oc.wake:
			for {
				oc.mu.Lock()
				if len(oc.queue) == 0 {
					oc.mu.Unlock()
					break
				}
				frame := oc.queue[0]
				oc.queue = oc.queue[1:]
				oc.mu.Unlock()
				if _, err := oc.conn.Write(frame); err != nil {
					return // connection lost; remaining frames dropped
				}
			}
		}
	}
}

// NewPeer starts listening on 127.0.0.1 (ephemeral port). Call
// Start after SetPeers to begin computing.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Graph == nil || cfg.DocPeer == nil {
		return nil, fmt.Errorf("wire: nil graph or placement")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Peer{
		cfg:   cfg,
		rk:    newRanker(cfg),
		ln:    ln,
		addr:  ln.Addr().String(),
		outs:  make(map[p2p.PeerID]*outConn),
		ins:   make(map[net.Conn]struct{}),
		inbox: make(chan []p2p.Update, 1024),
		quit:  make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.addr }

// SetPeers installs the full peer address table (indexed by PeerID).
func (p *Peer) SetPeers(addrs []string) { p.peers = addrs }

// Start launches the processing loop and performs the initial push.
func (p *Peer) Start() {
	p.wg.Add(1)
	go p.processLoop()
	// Initial push of every owned document's starting rank. Self-
	// directed updates enter through the inbox channel; the processing
	// loop is already running, so the buffered channel drains.
	if self := p.ship(p.rk.initialOut()); len(self) > 0 {
		select {
		case p.inbox <- self:
		case <-p.quit:
		}
	}
}

// Close stops the peer and waits for its goroutines.
func (p *Peer) Close() {
	select {
	case <-p.quit:
	default:
		close(p.quit)
	}
	p.ln.Close()
	p.outMu.Lock()
	for _, oc := range p.outs {
		oc.conn.Close()
	}
	p.outMu.Unlock()
	p.inMu.Lock()
	for conn := range p.ins {
		conn.Close()
	}
	p.inMu.Unlock()
	p.wg.Wait()
}

// Counters reports (sent, processed) for termination probing.
func (p *Peer) Counters() (uint64, uint64) {
	return p.sent.Load(), p.processed.Load()
}

// acceptLoop serves inbound connections.
func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.serveConn(conn)
	}
}

// serveConn handles one inbound connection's frames.
func (p *Peer) serveConn(conn net.Conn) {
	defer p.wg.Done()
	p.inMu.Lock()
	p.ins[conn] = struct{}{}
	p.inMu.Unlock()
	defer func() {
		conn.Close()
		p.inMu.Lock()
		delete(p.ins, conn)
		p.inMu.Unlock()
	}()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case frameBatch:
			us, err := decodeBatch(payload)
			if err != nil {
				return
			}
			select {
			case p.inbox <- us:
			case <-p.quit:
				return
			}
		case frameSnapReq:
			sent, processed := p.Counters()
			if err := writeFrame(conn, frameSnapResp, encodeSnapshot(sent, processed)); err != nil {
				return
			}
		case frameRanksReq:
			docs, ranks := p.rk.snapshotRanks()
			if err := writeFrame(conn, frameRanks, encodeRanks(docs, ranks)); err != nil {
				return
			}
		case frameStop:
			select {
			case <-p.quit:
			default:
				close(p.quit)
			}
			return
		default:
			return // protocol violation: drop the connection
		}
	}
}

// processLoop consumes delivered batches, coalescing whatever is
// already queued before recomputing. Self-directed consequences are
// folded in the same loop rather than re-queued through the inbox
// channel, which would self-deadlock when the channel is full.
func (p *Peer) processLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case us := <-p.inbox:
			// Coalesce everything already queued.
			batch := us
			for drained := false; !drained; {
				select {
				case more := <-p.inbox:
					batch = append(batch, more...)
				default:
					drained = true
				}
			}
			for len(batch) > 0 {
				batch = p.handle(batch)
			}
		}
	}
}

// handle folds a batch, ships remote consequences and returns the
// self-directed ones for the caller to fold next.
func (p *Peer) handle(batch []p2p.Update) []p2p.Update {
	self := p.ship(p.rk.fold(batch))
	p.processed.Add(uint64(len(batch)))
	return self
}

// ship transmits batches and returns the self-directed updates for
// in-loop processing. The sent counter is incremented before the bytes
// leave so the termination probe can never observe processed > sent.
func (p *Peer) ship(out map[p2p.PeerID][]p2p.Update) []p2p.Update {
	var self []p2p.Update
	for dest, us := range out {
		p.sent.Add(uint64(len(us)))
		if dest == p.cfg.ID {
			self = append(self, us...)
			continue
		}
		if err := p.send(dest, us); err != nil {
			// Connection loss: in this demo protocol the messages are
			// dropped; balance the counters so termination still fires.
			p.processed.Add(uint64(len(us)))
		}
	}
	return self
}

// send enqueues one batch frame on the destination's writer, dialing
// on first use.
func (p *Peer) send(dest p2p.PeerID, us []p2p.Update) error {
	oc, err := p.conn(dest)
	if err != nil {
		return err
	}
	var frame bytes.Buffer
	if err := writeFrame(&frame, frameBatch, encodeBatch(us)); err != nil {
		return err
	}
	oc.enqueue(frame.Bytes())
	return nil
}

func (p *Peer) conn(dest p2p.PeerID) (*outConn, error) {
	p.outMu.Lock()
	defer p.outMu.Unlock()
	if oc, ok := p.outs[dest]; ok {
		return oc, nil
	}
	if int(dest) >= len(p.peers) {
		return nil, fmt.Errorf("wire: unknown peer %d", dest)
	}
	c, err := net.Dial("tcp", p.peers[dest])
	if err != nil {
		return nil, err
	}
	oc := newOutConn(c)
	p.outs[dest] = oc
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		oc.writeLoop(p.quit)
	}()
	return oc, nil
}
