package wire

import (
	"net"
	"time"

	"dpr/internal/p2p"
)

// Transport sits between peers and the operating system's network
// stack: every outbound connection a peer (or the cluster's
// termination prober) opens goes through Dial. The indirection exists
// so tests can substitute a FaultTransport that drops, delays,
// duplicates and resets connections or partitions peer pairs — the
// failure schedules of the paper's dynamic-network protocol — while
// production code uses the real dialer.
//
// from and to identify the dialing and target peers so fault
// injectors can scope failures to specific pairs; Observer marks
// connections made by non-peer roles (termination probes, rank
// collectors), which fault injectors leave untouched.
type Transport interface {
	Dial(from, to p2p.PeerID, addr string) (net.Conn, error)
}

// Observer is the PeerID used by non-peer dialers.
const Observer p2p.PeerID = -1

// dialTimeout bounds connection establishment for the real dialer.
const dialTimeout = 5 * time.Second

// tcpTransport is the production Transport: a plain TCP dialer.
type tcpTransport struct{}

func (tcpTransport) Dial(_, _ p2p.PeerID, addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, dialTimeout)
}

// TCPDialer returns the production Transport backed by net.Dial.
func TCPDialer() Transport { return tcpTransport{} }
