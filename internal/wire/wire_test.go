package wire

import (
	"bytes"
	"math"
	"net"
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/solver"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameBatch, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameBatch || string(payload) != "hello" {
		t.Fatalf("round trip: %c %q", typ, payload)
	}
	// Empty payload.
	if err := writeFrame(&buf, frameStop, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(&buf)
	if err != nil || typ != frameStop || len(payload) != 0 {
		t.Fatalf("empty frame: %c %v %v", typ, payload, err)
	}
}

func TestFrameRejectsHugeLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 'B'}
	if _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("accepted 4GB frame header")
	}
}

func TestBatchCodec(t *testing.T) {
	in := []p2p.Update{{Doc: 7, Delta: 0.125}, {Doc: 1 << 20, Delta: -3.5}}
	out, err := decodeBatch(encodeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("batch round trip: %v", out)
	}
	if _, err := decodeBatch([]byte{1, 2}); err == nil {
		t.Fatal("accepted short batch")
	}
	if _, err := decodeBatch(append(encodeBatch(in), 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestSnapshotCodec(t *testing.T) {
	s, p, err := decodeSnapshot(encodeSnapshot(42, 41))
	if err != nil || s != 42 || p != 41 {
		t.Fatalf("snapshot: %d %d %v", s, p, err)
	}
	if _, _, err := decodeSnapshot([]byte{1}); err == nil {
		t.Fatal("accepted short snapshot")
	}
}

func TestRanksCodec(t *testing.T) {
	docs := []graph.NodeID{0, 3}
	ranks := []float64{1.5, 2.5}
	out := make([]float64, 4)
	n, err := decodeRanks(encodeRanks(docs, ranks), out)
	if err != nil || n != 2 {
		t.Fatal(err)
	}
	if out[0] != 1.5 || out[3] != 2.5 {
		t.Fatalf("ranks: %v", out)
	}
	// Out-of-range doc rejected.
	if _, err := decodeRanks(encodeRanks([]graph.NodeID{99}, []float64{1}), out); err == nil {
		t.Fatal("accepted unknown doc")
	}
}

func TestClusterComputesPagerankOverTCP(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 121))
	c, err := NewCluster(g, ClusterConfig{Peers: 6, Epsilon: 1e-6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 || res.Probes == 0 {
		t.Fatalf("missing stats: %+v", res)
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range ref.Ranks {
		rel := math.Abs(res.Ranks[i]-ref.Ranks[i]) / ref.Ranks[i]
		if rel > worst {
			worst = rel
		}
	}
	if worst > 1e-3 {
		t.Fatalf("TCP cluster max relative error %v", worst)
	}
}

func TestClusterTightThresholdSmallGraph(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(150, 122))
	c, err := NewCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Ranks {
		if math.Abs(res.Ranks[i]-ref.Ranks[i])/ref.Ranks[i] > 1e-4 {
			t.Fatalf("rank[%d]: %v vs %v", i, res.Ranks[i], ref.Ranks[i])
		}
	}
}

func TestClusterSinglePeer(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.Cycle(20)
	c, err := NewCluster(g, ClusterConfig{Peers: 1, Epsilon: 1e-8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Ranks {
		if math.Abs(r-1) > 1e-5 {
			t.Fatalf("rank[%d] = %v", i, r)
		}
	}
}

func TestClusterEdgelessGraphTerminates(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.NewBuilder(10).Build()
	c, err := NewCluster(g, ClusterConfig{Peers: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Ranks {
		if math.Abs(r-0.15) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want 0.15", i, r)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := NewCluster(g, ClusterConfig{Peers: 0}); err == nil {
		t.Fatal("accepted zero peers")
	}
}

func TestPeerRejectsGarbageConnection(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.Cycle(4)
	docPeer := make([]p2p.PeerID, 4)
	p, err := NewPeer(PeerConfig{Graph: g, DocPeer: docPeer, Docs: []graph.NodeID{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// A client speaking garbage gets dropped without harming the peer.
	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{1, 0, 0, 0, 'Z', 0})
	conn.Close()
	// Peer still answers probes.
	s, pr, err := probePeer(nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	_ = pr
}
