// Package wire runs the distributed pagerank computation over real TCP
// connections — the paper's closing proposal ("by augmenting web
// servers and the HTTP protocol to exchange messages, web servers can
// be collectively responsible for computing the pageranks for
// documents they host"). Each peer is a TCP server owning a share of
// the documents; pagerank update batches travel as length-prefixed
// binary frames; global quiescence is detected with a two-probe
// counter protocol in the style of Mattern's termination detection.
//
// The package is used by the Cluster helper (all peers in one process,
// separate sockets on localhost) for tests and demos, but Peer speaks
// plain TCP and carries no process-local assumptions beyond the shared
// read-only graph.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// Frame types.
const (
	frameBatch     = 'B' // updates: u32 n, then n x (u32 doc, f64 delta)
	frameBatchSeq  = 'U' // u32 sender, u64 seq, then a batch payload
	frameBatchStrm = 'V' // u32 sender, u32 origDest, u64 seq, then a batch payload
	frameAck       = 'A' // u64 seq: every frame with seq <= it has been folded
	frameSnapReq   = 'Q' // termination probe request
	frameSnapResp  = 'S' // u64 sent, u64 processed
	frameRanksReq  = 'R' // rank collection request
	frameRanks     = 'K' // u32 n, then n x (u32 doc, f64 rank)
	framePing      = 'P' // failure-detector heartbeat request
	framePong      = 'O' // heartbeat response
	frameStop      = 'X' // shut down

	// Partition-tolerance frames. frameBatchEpoch supersedes
	// frameBatchStrm on the live path: it carries the sender's epoch for
	// the destination key range, so a receiver can fence out frames from
	// senders that missed an ownership transfer. frameNackEpoch is the
	// receiver's stale-epoch rejection (carrying its current epoch, so
	// the sender can catch up and re-route). frameViewReq/frameViewResp
	// exchange (membership, epoch vector) digests for anti-entropy after
	// a partition heals.
	frameBatchEpoch = 'E' // u32 sender, u32 origDest, u64 seq, u64 epoch, then a batch payload
	frameNackEpoch  = 'N' // u64 seq, u64 epoch: per-frame stale-epoch rejection
	frameViewReq    = 'W' // anti-entropy request: a view-digest payload
	frameViewResp   = 'D' // anti-entropy response: a view-digest payload

	// frameCredit is the flow-controlled acknowledgement that supersedes
	// frameAck on the epoch-batch path: the cumulative ack seq plus the
	// receiver's advertised credit window — the number of frames the
	// sender may keep in flight on this stream. A shrinking window is how
	// an overloaded receiver pushes back without dropping rank mass; the
	// advertised window is never zero, so a stalled stream always retains
	// the right to one in-flight frame and progress is guaranteed.
	frameCredit = 'C' // u64 seq, u32 window
)

// maxFrameBytes bounds a frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrameBytes = 64 << 20

// writeFrame emits one frame: u32 payload length, u8 type, payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// encodeBatch serializes updates.
func encodeBatch(us []p2p.Update) []byte {
	buf := make([]byte, 4+12*len(us))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(us)))
	off := 4
	for _, u := range us {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Doc))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Delta))
		off += 12
	}
	return buf
}

// decodeBatch parses a batch payload.
func decodeBatch(b []byte) ([]p2p.Update, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: batch too short")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint64(len(b)-4) != 12*uint64(n) {
		return nil, fmt.Errorf("wire: batch length mismatch: %d entries, %d bytes", n, len(b)-4)
	}
	us := make([]p2p.Update, n)
	off := 4
	for i := range us {
		us[i].Doc = graph.NodeID(binary.LittleEndian.Uint32(b[off:]))
		us[i].Delta = math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		off += 12
	}
	return us, nil
}

// batchSeqHeader is the length of the (sender, seq) prefix a
// sequenced batch carries in front of the plain batch payload.
const batchSeqHeader = 12

// encodeBatchSeq serializes a sequenced batch: the sender's identity
// and a per-(sender, destination) sequence number prefix the plain
// batch payload so receivers can suppress redelivered duplicates.
func encodeBatchSeq(sender p2p.PeerID, seq uint64, us []p2p.Update) []byte {
	buf := make([]byte, batchSeqHeader+4+12*len(us))
	binary.LittleEndian.PutUint32(buf[:4], uint32(sender))
	binary.LittleEndian.PutUint64(buf[4:12], seq)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(us)))
	off := 16
	for _, u := range us {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Doc))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Delta))
		off += 12
	}
	return buf
}

// decodeBatchSeq parses a sequenced batch payload.
func decodeBatchSeq(b []byte) (sender p2p.PeerID, seq uint64, us []p2p.Update, err error) {
	if len(b) < batchSeqHeader {
		return 0, 0, nil, fmt.Errorf("wire: sequenced batch too short")
	}
	sender = p2p.PeerID(binary.LittleEndian.Uint32(b[:4]))
	if sender < 0 {
		return 0, 0, nil, fmt.Errorf("wire: sequenced batch from negative sender %d", sender)
	}
	seq = binary.LittleEndian.Uint64(b[4:12])
	us, err = decodeBatch(b[batchSeqHeader:])
	if err != nil {
		return 0, 0, nil, err
	}
	return sender, seq, us, nil
}

// batchStrmHeader is the length of the (sender, origDest, seq) prefix
// a stream-identified batch carries in front of the plain batch
// payload.
const batchStrmHeader = 16

// encodeBatchStrm serializes a stream-identified batch. The stream is
// the pair (sender, origDest): origDest is the peer the batch was
// originally framed for, which under dynamic membership may differ
// from the peer that ends up folding it — a departed peer's document
// range, duplicate-suppression tables and unacknowledged inbound
// frames all migrate to its ring successor, and the successor dedups
// each redirected frame against the (sender, origDest) stream it was
// sequenced on. For a static cluster origDest always equals the
// receiving peer and the frame behaves exactly like frameBatchSeq.
func encodeBatchStrm(sender, origDest p2p.PeerID, seq uint64, us []p2p.Update) []byte {
	buf := make([]byte, batchStrmHeader+4+12*len(us))
	binary.LittleEndian.PutUint32(buf[:4], uint32(sender))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(origDest))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(us)))
	off := 20
	for _, u := range us {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Doc))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Delta))
		off += 12
	}
	return buf
}

// decodeBatchStrm parses a stream-identified batch payload.
func decodeBatchStrm(b []byte) (sender, origDest p2p.PeerID, seq uint64, us []p2p.Update, err error) {
	if len(b) < batchStrmHeader {
		return 0, 0, 0, nil, fmt.Errorf("wire: stream batch too short")
	}
	sender = p2p.PeerID(binary.LittleEndian.Uint32(b[:4]))
	origDest = p2p.PeerID(binary.LittleEndian.Uint32(b[4:8]))
	if sender < 0 || origDest < 0 {
		return 0, 0, 0, nil, fmt.Errorf("wire: stream batch with negative peer id")
	}
	seq = binary.LittleEndian.Uint64(b[8:16])
	us, err = decodeBatch(b[batchStrmHeader:])
	if err != nil {
		return 0, 0, 0, nil, err
	}
	return sender, origDest, seq, us, nil
}

// encodeAck serializes a cumulative acknowledgement.
func encodeAck(seq uint64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, seq)
	return buf
}

// decodeAck parses an acknowledgement payload.
func decodeAck(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: ack payload %d bytes", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// encodeCredit serializes a flow-controlled acknowledgement: the
// cumulative ack plus the receiver's advertised credit window.
func encodeCredit(seq uint64, window uint32) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint64(buf[:8], seq)
	binary.LittleEndian.PutUint32(buf[8:], window)
	return buf
}

// decodeCredit parses a flow-controlled acknowledgement payload. A
// zero window is a structural error: the protocol guarantees at least
// one frame of credit so a stream can always make progress.
func decodeCredit(b []byte) (seq uint64, window uint32, err error) {
	if len(b) != 12 {
		return 0, 0, fmt.Errorf("wire: credit payload %d bytes", len(b))
	}
	seq = binary.LittleEndian.Uint64(b[:8])
	window = binary.LittleEndian.Uint32(b[8:])
	if window == 0 {
		return 0, 0, fmt.Errorf("wire: credit frame with zero window")
	}
	return seq, window, nil
}

// encodeSnapshot serializes a termination-probe response.
func encodeSnapshot(sent, processed uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[:8], sent)
	binary.LittleEndian.PutUint64(buf[8:], processed)
	return buf
}

// decodeSnapshot parses a probe response.
func decodeSnapshot(b []byte) (sent, processed uint64, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("wire: snapshot payload %d bytes", len(b))
	}
	return binary.LittleEndian.Uint64(b[:8]), binary.LittleEndian.Uint64(b[8:]), nil
}

// encodeRanks serializes (doc, rank) pairs.
func encodeRanks(docs []graph.NodeID, ranks []float64) []byte {
	buf := make([]byte, 4+12*len(docs))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(docs)))
	off := 4
	for i, d := range docs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(ranks[i]))
		off += 12
	}
	return buf
}

// decodeRanks parses a rank payload into the dense output slice.
func decodeRanks(b []byte, out []float64) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("wire: ranks too short")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint64(len(b)-4) != 12*uint64(n) {
		return 0, fmt.Errorf("wire: ranks length mismatch")
	}
	off := 4
	for i := uint32(0); i < n; i++ {
		doc := binary.LittleEndian.Uint32(b[off:])
		rank := math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		if int(doc) >= len(out) {
			return 0, fmt.Errorf("wire: rank for unknown document %d", doc)
		}
		out[doc] = rank
		off += 12
	}
	return int(n), nil
}

// batchEpochHeader is the length of the (sender, origDest, seq, epoch)
// prefix an epoch-stamped batch carries in front of the plain batch
// payload.
const batchEpochHeader = 24

// encodeBatchEpoch serializes an epoch-stamped stream batch: a
// frameBatchStrm payload extended with the epoch of the origDest key
// range as the sender last learned it. Receivers reject (nack) frames
// whose epoch is behind their own view of the range, which fences a
// healed minority out of ranges that migrated while it was cut off.
func encodeBatchEpoch(sender, origDest p2p.PeerID, seq, epoch uint64, us []p2p.Update) []byte {
	buf := make([]byte, batchEpochHeader+4+12*len(us))
	binary.LittleEndian.PutUint32(buf[:4], uint32(sender))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(origDest))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint64(buf[16:24], epoch)
	binary.LittleEndian.PutUint32(buf[24:28], uint32(len(us)))
	off := 28
	for _, u := range us {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Doc))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Delta))
		off += 12
	}
	return buf
}

// decodeBatchEpoch parses an epoch-stamped stream batch payload.
func decodeBatchEpoch(b []byte) (sender, origDest p2p.PeerID, seq, epoch uint64, us []p2p.Update, err error) {
	if len(b) < batchEpochHeader {
		return 0, 0, 0, 0, nil, fmt.Errorf("wire: epoch batch too short")
	}
	sender = p2p.PeerID(binary.LittleEndian.Uint32(b[:4]))
	origDest = p2p.PeerID(binary.LittleEndian.Uint32(b[4:8]))
	if sender < 0 || origDest < 0 {
		return 0, 0, 0, 0, nil, fmt.Errorf("wire: epoch batch with negative peer id")
	}
	seq = binary.LittleEndian.Uint64(b[8:16])
	epoch = binary.LittleEndian.Uint64(b[16:24])
	us, err = decodeBatch(b[batchEpochHeader:])
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	return sender, origDest, seq, epoch, us, nil
}

// encodeNackEpoch serializes a stale-epoch rejection: the rejected
// frame's sequence number plus the receiver's current epoch for the
// frame's origDest range.
func encodeNackEpoch(seq, epoch uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[:8], seq)
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	return buf
}

// decodeNackEpoch parses a stale-epoch rejection payload.
func decodeNackEpoch(b []byte) (seq, epoch uint64, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("wire: epoch nack payload %d bytes", len(b))
	}
	return binary.LittleEndian.Uint64(b[:8]), binary.LittleEndian.Uint64(b[8:]), nil
}

// maxGossipPeers bounds the suspicion set carried on a ping/pong so a
// corrupted count cannot force a large allocation.
const maxGossipPeers = 1 << 16

// encodeGossip serializes a suspicion-gossip payload for a ping or
// pong frame: the reporting slot plus the slots it currently suspects.
// An empty payload remains a valid (legacy) ping/pong.
func encodeGossip(from p2p.PeerID, suspects []p2p.PeerID) []byte {
	buf := make([]byte, 8+4*len(suspects))
	binary.LittleEndian.PutUint32(buf[:4], uint32(from))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(suspects)))
	off := 8
	for _, s := range suspects {
		binary.LittleEndian.PutUint32(buf[off:], uint32(s))
		off += 4
	}
	return buf
}

// decodeGossip parses a suspicion-gossip payload.
func decodeGossip(b []byte) (from p2p.PeerID, suspects []p2p.PeerID, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wire: gossip payload too short")
	}
	from = p2p.PeerID(binary.LittleEndian.Uint32(b[:4]))
	if from < 0 {
		return 0, nil, fmt.Errorf("wire: gossip from negative peer %d", from)
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	if n > maxGossipPeers {
		return 0, nil, fmt.Errorf("wire: gossip suspicion set of %d exceeds limit", n)
	}
	if uint64(len(b)-8) != 4*uint64(n) {
		return 0, nil, fmt.Errorf("wire: gossip length mismatch")
	}
	suspects = make([]p2p.PeerID, n)
	off := 8
	for i := range suspects {
		id := p2p.PeerID(binary.LittleEndian.Uint32(b[off:]))
		if id < 0 {
			return 0, nil, fmt.Errorf("wire: gossip suspect with negative peer id")
		}
		suspects[i] = id
		off += 4
	}
	return from, suspects, nil
}

// View is one peer's picture of cluster membership: per slot the
// current address, the ownership epoch of the slot's key range, whether
// the slot departed permanently, and (for departed slots) the slot that
// adopted its state. It is what the cluster pushes on every membership
// change and what peers exchange as an anti-entropy digest after a
// partition heals: the higher epoch wins per slot, so both sides
// reconcile to the owner that the eviction quorum installed.
type View struct {
	Addrs  []string
	Epochs []uint64
	Gone   []bool
	Fwd    []p2p.PeerID // adopting successor of a gone slot; NoPeer otherwise
}

// viewSlots normalizes a view's ragged slices to one slot count.
func (v View) viewSlots() int {
	n := len(v.Addrs)
	if len(v.Epochs) > n {
		n = len(v.Epochs)
	}
	if len(v.Gone) > n {
		n = len(v.Gone)
	}
	if len(v.Fwd) > n {
		n = len(v.Fwd)
	}
	return n
}

// maxViewSlots and maxViewAddr bound a decoded view digest.
const (
	maxViewSlots = 1 << 16
	maxViewAddr  = 256
)

// noFwdWire marks "no forwarding slot" in the view digest encoding.
const noFwdWire = ^uint32(0)

// encodeView serializes a membership view digest: u32 slot count, then
// per slot u8 gone flag, u32 forward slot (noFwdWire when none), u64
// epoch, u16 address length, address bytes.
func encodeView(v View) []byte {
	n := v.viewSlots()
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		var gone byte
		if i < len(v.Gone) && v.Gone[i] {
			gone = 1
		}
		fwd := noFwdWire
		if i < len(v.Fwd) && v.Fwd[i] != p2p.NoPeer {
			fwd = uint32(v.Fwd[i])
		}
		var epoch uint64
		if i < len(v.Epochs) {
			epoch = v.Epochs[i]
		}
		var addr string
		if i < len(v.Addrs) {
			addr = v.Addrs[i]
		}
		if len(addr) > maxViewAddr {
			addr = addr[:maxViewAddr]
		}
		buf = append(buf, gone)
		buf = binary.LittleEndian.AppendUint32(buf, fwd)
		buf = binary.LittleEndian.AppendUint64(buf, epoch)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(addr)))
		buf = append(buf, addr...)
	}
	return buf
}

// decodeView parses a view digest. Every count is bounded and every
// structural inconsistency is an error, never a misparse.
func decodeView(b []byte) (View, error) {
	if len(b) < 4 {
		return View{}, fmt.Errorf("wire: view digest too short")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n > maxViewSlots {
		return View{}, fmt.Errorf("wire: view digest of %d slots exceeds limit", n)
	}
	v := View{
		Addrs:  make([]string, 0, capAlloc(uint64(n))),
		Epochs: make([]uint64, 0, capAlloc(uint64(n))),
		Gone:   make([]bool, 0, capAlloc(uint64(n))),
		Fwd:    make([]p2p.PeerID, 0, capAlloc(uint64(n))),
	}
	off := 4
	for i := uint32(0); i < n; i++ {
		if len(b)-off < 15 {
			return View{}, fmt.Errorf("wire: truncated view digest slot %d", i)
		}
		gone := b[off]
		if gone > 1 {
			return View{}, fmt.Errorf("wire: view digest slot %d has bad gone flag %d", i, gone)
		}
		fwdWire := binary.LittleEndian.Uint32(b[off+1:])
		epoch := binary.LittleEndian.Uint64(b[off+5:])
		alen := int(binary.LittleEndian.Uint16(b[off+13:]))
		off += 15
		if alen > maxViewAddr {
			return View{}, fmt.Errorf("wire: view digest address of %d bytes exceeds limit", alen)
		}
		if len(b)-off < alen {
			return View{}, fmt.Errorf("wire: truncated view digest address in slot %d", i)
		}
		fwd := p2p.NoPeer
		if fwdWire != noFwdWire {
			if fwdWire >= maxViewSlots {
				return View{}, fmt.Errorf("wire: view digest forward slot %d out of range", fwdWire)
			}
			fwd = p2p.PeerID(fwdWire)
		}
		v.Addrs = append(v.Addrs, string(b[off:off+alen]))
		v.Epochs = append(v.Epochs, epoch)
		v.Gone = append(v.Gone, gone == 1)
		v.Fwd = append(v.Fwd, fwd)
		off += alen
	}
	if off != len(b) {
		return View{}, fmt.Errorf("wire: trailing bytes after view digest")
	}
	return v, nil
}
