// Package wire runs the distributed pagerank computation over real TCP
// connections — the paper's closing proposal ("by augmenting web
// servers and the HTTP protocol to exchange messages, web servers can
// be collectively responsible for computing the pageranks for
// documents they host"). Each peer is a TCP server owning a share of
// the documents; pagerank update batches travel as length-prefixed
// binary frames; global quiescence is detected with a two-probe
// counter protocol in the style of Mattern's termination detection.
//
// The package is used by the Cluster helper (all peers in one process,
// separate sockets on localhost) for tests and demos, but Peer speaks
// plain TCP and carries no process-local assumptions beyond the shared
// read-only graph.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// Frame types.
const (
	frameBatch     = 'B' // updates: u32 n, then n x (u32 doc, f64 delta)
	frameBatchSeq  = 'U' // u32 sender, u64 seq, then a batch payload
	frameBatchStrm = 'V' // u32 sender, u32 origDest, u64 seq, then a batch payload
	frameAck       = 'A' // u64 seq: every frame with seq <= it has been folded
	frameSnapReq   = 'Q' // termination probe request
	frameSnapResp  = 'S' // u64 sent, u64 processed
	frameRanksReq  = 'R' // rank collection request
	frameRanks     = 'K' // u32 n, then n x (u32 doc, f64 rank)
	framePing      = 'P' // failure-detector heartbeat request
	framePong      = 'O' // heartbeat response
	frameStop      = 'X' // shut down
)

// maxFrameBytes bounds a frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrameBytes = 64 << 20

// writeFrame emits one frame: u32 payload length, u8 type, payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// encodeBatch serializes updates.
func encodeBatch(us []p2p.Update) []byte {
	buf := make([]byte, 4+12*len(us))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(us)))
	off := 4
	for _, u := range us {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Doc))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Delta))
		off += 12
	}
	return buf
}

// decodeBatch parses a batch payload.
func decodeBatch(b []byte) ([]p2p.Update, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: batch too short")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint32(len(b)-4) != 12*n {
		return nil, fmt.Errorf("wire: batch length mismatch: %d entries, %d bytes", n, len(b)-4)
	}
	us := make([]p2p.Update, n)
	off := 4
	for i := range us {
		us[i].Doc = graph.NodeID(binary.LittleEndian.Uint32(b[off:]))
		us[i].Delta = math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		off += 12
	}
	return us, nil
}

// batchSeqHeader is the length of the (sender, seq) prefix a
// sequenced batch carries in front of the plain batch payload.
const batchSeqHeader = 12

// encodeBatchSeq serializes a sequenced batch: the sender's identity
// and a per-(sender, destination) sequence number prefix the plain
// batch payload so receivers can suppress redelivered duplicates.
func encodeBatchSeq(sender p2p.PeerID, seq uint64, us []p2p.Update) []byte {
	buf := make([]byte, batchSeqHeader+4+12*len(us))
	binary.LittleEndian.PutUint32(buf[:4], uint32(sender))
	binary.LittleEndian.PutUint64(buf[4:12], seq)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(us)))
	off := 16
	for _, u := range us {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Doc))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Delta))
		off += 12
	}
	return buf
}

// decodeBatchSeq parses a sequenced batch payload.
func decodeBatchSeq(b []byte) (sender p2p.PeerID, seq uint64, us []p2p.Update, err error) {
	if len(b) < batchSeqHeader {
		return 0, 0, nil, fmt.Errorf("wire: sequenced batch too short")
	}
	sender = p2p.PeerID(binary.LittleEndian.Uint32(b[:4]))
	if sender < 0 {
		return 0, 0, nil, fmt.Errorf("wire: sequenced batch from negative sender %d", sender)
	}
	seq = binary.LittleEndian.Uint64(b[4:12])
	us, err = decodeBatch(b[batchSeqHeader:])
	if err != nil {
		return 0, 0, nil, err
	}
	return sender, seq, us, nil
}

// batchStrmHeader is the length of the (sender, origDest, seq) prefix
// a stream-identified batch carries in front of the plain batch
// payload.
const batchStrmHeader = 16

// encodeBatchStrm serializes a stream-identified batch. The stream is
// the pair (sender, origDest): origDest is the peer the batch was
// originally framed for, which under dynamic membership may differ
// from the peer that ends up folding it — a departed peer's document
// range, duplicate-suppression tables and unacknowledged inbound
// frames all migrate to its ring successor, and the successor dedups
// each redirected frame against the (sender, origDest) stream it was
// sequenced on. For a static cluster origDest always equals the
// receiving peer and the frame behaves exactly like frameBatchSeq.
func encodeBatchStrm(sender, origDest p2p.PeerID, seq uint64, us []p2p.Update) []byte {
	buf := make([]byte, batchStrmHeader+4+12*len(us))
	binary.LittleEndian.PutUint32(buf[:4], uint32(sender))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(origDest))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(us)))
	off := 20
	for _, u := range us {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Doc))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Delta))
		off += 12
	}
	return buf
}

// decodeBatchStrm parses a stream-identified batch payload.
func decodeBatchStrm(b []byte) (sender, origDest p2p.PeerID, seq uint64, us []p2p.Update, err error) {
	if len(b) < batchStrmHeader {
		return 0, 0, 0, nil, fmt.Errorf("wire: stream batch too short")
	}
	sender = p2p.PeerID(binary.LittleEndian.Uint32(b[:4]))
	origDest = p2p.PeerID(binary.LittleEndian.Uint32(b[4:8]))
	if sender < 0 || origDest < 0 {
		return 0, 0, 0, nil, fmt.Errorf("wire: stream batch with negative peer id")
	}
	seq = binary.LittleEndian.Uint64(b[8:16])
	us, err = decodeBatch(b[batchStrmHeader:])
	if err != nil {
		return 0, 0, 0, nil, err
	}
	return sender, origDest, seq, us, nil
}

// encodeAck serializes a cumulative acknowledgement.
func encodeAck(seq uint64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, seq)
	return buf
}

// decodeAck parses an acknowledgement payload.
func decodeAck(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: ack payload %d bytes", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// encodeSnapshot serializes a termination-probe response.
func encodeSnapshot(sent, processed uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[:8], sent)
	binary.LittleEndian.PutUint64(buf[8:], processed)
	return buf
}

// decodeSnapshot parses a probe response.
func decodeSnapshot(b []byte) (sent, processed uint64, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("wire: snapshot payload %d bytes", len(b))
	}
	return binary.LittleEndian.Uint64(b[:8]), binary.LittleEndian.Uint64(b[8:]), nil
}

// encodeRanks serializes (doc, rank) pairs.
func encodeRanks(docs []graph.NodeID, ranks []float64) []byte {
	buf := make([]byte, 4+12*len(docs))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(docs)))
	off := 4
	for i, d := range docs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(ranks[i]))
		off += 12
	}
	return buf
}

// decodeRanks parses a rank payload into the dense output slice.
func decodeRanks(b []byte, out []float64) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("wire: ranks too short")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint32(len(b)-4) != 12*n {
		return 0, fmt.Errorf("wire: ranks length mismatch")
	}
	off := 4
	for i := uint32(0); i < n; i++ {
		doc := binary.LittleEndian.Uint32(b[off:])
		rank := math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		if int(doc) >= len(out) {
			return 0, fmt.Errorf("wire: rank for unknown document %d", doc)
		}
		out[doc] = rank
		off += 12
	}
	return int(n), nil
}
