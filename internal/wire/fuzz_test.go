package wire

import (
	"bytes"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// fuzzSeedSnapshot is a representative v2 snapshot exercising every
// record kind: documents, stream-keyed dedup entries, own and adopted
// outbound streams, unacked frames and pending updates.
func fuzzSeedSnapshot() *PeerSnapshot {
	return &PeerSnapshot{
		ID:   1,
		Docs: []graph.NodeID{0, 2, 5},
		Rank: []float64{0.15, 1.5, 0.3},
		Acc:  []float64{0, 0.25, -0.125},
		Last: []float64{0.15, 1.25, 0.3},
		LastSeq: []SeqEntry{
			{Src: 0, Dest: 1, Seq: 12},
			{Src: 2, Dest: 4, Seq: 3},
		},
		Outbound: []OutboundState{
			{
				Src: 1, Dest: 0, NextSeq: 4,
				Unacked: []UnackedFrame{{Seq: 3, Updates: []p2p.Update{{Doc: 9, Delta: 0.5}}}},
				Pending: []p2p.Update{{Doc: 7, Delta: -0.25}},
			},
			{Src: 4, Dest: 2, NextSeq: 2,
				Unacked: []UnackedFrame{{Seq: 1, Updates: []p2p.Update{{Doc: 3, Delta: 1}}}}},
		},
		Sent: 42, Processed: 40, Forwarded: 2,
		DeltaShipped: 3.5, DeltaFolded: 3.25,
	}
}

// FuzzDecodeCheckpoint hammers the snapshot decoder with corrupted,
// truncated and adversarial input. The decoder must never panic, never
// allocate unboundedly, and — when it does accept input — re-encoding
// its result must round-trip (decode∘encode is the identity on the
// accepted set), which catches fields silently dropped or misparsed.
func FuzzDecodeCheckpoint(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeSnapshot(fuzzSeedSnapshot(), &seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	raw := seed.Bytes()
	for _, cut := range []int{0, 3, 4, 11, len(raw) / 2, len(raw) - 1} {
		if cut <= len(raw) {
			f.Add(append([]byte(nil), raw[:cut]...))
		}
	}
	// A header that lies about its record counts.
	lying := append([]byte(nil), raw...)
	for i := 20; i < 44 && i < len(lying); i++ {
		lying[i] = 0xff
	}
	f.Add(lying)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(snap.Rank) != len(snap.Docs) || len(snap.Acc) != len(snap.Docs) || len(snap.Last) != len(snap.Docs) {
			t.Fatalf("accepted snapshot with inconsistent ranker state: %d docs, %d/%d/%d values",
				len(snap.Docs), len(snap.Rank), len(snap.Acc), len(snap.Last))
		}
		var out bytes.Buffer
		if err := EncodeSnapshot(snap, &out); err != nil {
			t.Fatalf("re-encoding accepted snapshot: %v", err)
		}
		again, err := DecodeSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded snapshot: %v", err)
		}
		var final bytes.Buffer
		if err := EncodeSnapshot(again, &final); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), final.Bytes()) {
			t.Fatal("encode/decode/encode is not a fixed point")
		}
	})
}
