package wire

import (
	"bytes"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// fuzzSeedSnapshot is a representative current-version snapshot
// exercising every record kind: documents, stream-keyed dedup entries,
// own and adopted outbound streams, unacked frames, pending updates,
// the ownership-epoch vector, and the v5 overload-protection fields
// (per-stream credit windows plus the stall/shed/straggler counters).
func fuzzSeedSnapshot() *PeerSnapshot {
	return &PeerSnapshot{
		ID:   1,
		Docs: []graph.NodeID{0, 2, 5},
		Rank: []float64{0.15, 1.5, 0.3},
		Acc:  []float64{0, 0.25, -0.125},
		Last: []float64{0.15, 1.25, 0.3},
		LastSeq: []SeqEntry{
			{Src: 0, Dest: 1, Seq: 12},
			{Src: 2, Dest: 4, Seq: 3},
		},
		Rejected: []SeqEntry{
			{Src: 0, Dest: 1, Seq: 9},
			{Src: 2, Dest: 4, Seq: 2},
		},
		Outbound: []OutboundState{
			{
				Src: 1, Dest: 0, NextSeq: 4, Window: 2,
				Unacked: []UnackedFrame{{Seq: 3, Updates: []p2p.Update{{Doc: 9, Delta: 0.5}}}},
				Pending: []p2p.Update{{Doc: 7, Delta: -0.25}},
			},
			{Src: 4, Dest: 2, NextSeq: 2, Window: 16,
				Unacked: []UnackedFrame{{Seq: 1, Updates: []p2p.Update{{Doc: 3, Delta: 1}}}}},
		},
		Epochs: []uint64{1, 0, 4, 0, 2},
		Sent:   42, Processed: 40, Forwarded: 2, EpochRejected: 1,
		CreditStalls: 5, ShedCoalesced: 17, SlowPeer: 1,
		DeltaShipped: 3.5, DeltaFolded: 3.25,
	}
}

// FuzzDecodeFrames hammers every byte-slice frame codec — epoch- and
// stream-identified batches, suspicion gossip, membership views,
// stale-epoch nacks, plain and credit acknowledgements, termination
// probes and rank transfers — with corrupted and adversarial payloads.
// None may panic or over-allocate, and accepted input must round-trip
// through its encoder.
func FuzzDecodeFrames(f *testing.F) {
	batch := encodeBatchEpoch(1, 2, 7, 3, []p2p.Update{{Doc: 4, Delta: 0.5}, {Doc: 9, Delta: -1}})
	strm := encodeBatchStrm(2, 4, 9, []p2p.Update{{Doc: 1, Delta: 0.25}})
	gossip := encodeGossip(3, []p2p.PeerID{0, 5})
	view := encodeView(View{
		Addrs:  []string{"a:1", "", "c:3"},
		Epochs: []uint64{2, 0, 9},
		Gone:   []bool{false, true, false},
		Fwd:    []p2p.PeerID{p2p.NoPeer, 2, p2p.NoPeer},
	})
	nack := encodeNackEpoch(12, 5)
	credit := encodeCredit(1<<33, 32)
	ack := encodeAck(991)
	probe := encodeSnapshot(17, 12)
	ranks := encodeRanks([]graph.NodeID{0, 3}, []float64{0.5, 1.25})
	for _, seed := range [][]byte{batch, strm, gossip, view, nack, credit, ack, probe, ranks, nil, {0xff}} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if sender, origDest, seq, epoch, us, err := decodeBatchEpoch(data); err == nil {
			again := encodeBatchEpoch(sender, origDest, seq, epoch, us)
			if !bytes.Equal(data, again) {
				t.Fatalf("batch-epoch round trip mismatch: %x != %x", data, again)
			}
		}
		if from, sus, err := decodeGossip(data); err == nil {
			again := encodeGossip(from, sus)
			if !bytes.Equal(data, again) {
				t.Fatalf("gossip round trip mismatch: %x != %x", data, again)
			}
		}
		if v, err := decodeView(data); err == nil {
			again := encodeView(v)
			if !bytes.Equal(data, again) {
				t.Fatalf("view round trip mismatch: %x != %x", data, again)
			}
		}
		if seq, epoch, err := decodeNackEpoch(data); err == nil {
			again := encodeNackEpoch(seq, epoch)
			if !bytes.Equal(data, again) {
				t.Fatalf("nack round trip mismatch: %x != %x", data, again)
			}
		}
		if seq, window, err := decodeCredit(data); err == nil {
			if window == 0 {
				t.Fatal("decoder accepted a zero credit window")
			}
			again := encodeCredit(seq, window)
			if !bytes.Equal(data, again) {
				t.Fatalf("credit round trip mismatch: %x != %x", data, again)
			}
		}
		if sender, origDest, seq, us, err := decodeBatchStrm(data); err == nil {
			again := encodeBatchStrm(sender, origDest, seq, us)
			if !bytes.Equal(data, again) {
				t.Fatalf("stream batch round trip mismatch: %x != %x", data, again)
			}
		}
		if seq, err := decodeAck(data); err == nil {
			again := encodeAck(seq)
			if !bytes.Equal(data, again) {
				t.Fatalf("ack round trip mismatch: %x != %x", data, again)
			}
		}
		if sent, processed, err := decodeSnapshot(data); err == nil {
			again := encodeSnapshot(sent, processed)
			if !bytes.Equal(data, again) {
				t.Fatalf("probe round trip mismatch: %x != %x", data, again)
			}
		}
		// decodeRanks scatters into a dense vector, so the doc order of
		// the original encoding is not recoverable; the obligations here
		// are no-panic and strict length/id validation.
		out := make([]float64, 16)
		if n, err := decodeRanks(data, out); err == nil {
			if want := (len(data) - 4) / 12; n != want {
				t.Fatalf("decodeRanks accepted %d bytes but reported %d entries (want %d)", len(data), n, want)
			}
		}
	})
}

// FuzzDecodeCheckpoint hammers the snapshot decoder with corrupted,
// truncated and adversarial input. The decoder must never panic, never
// allocate unboundedly, and — when it does accept input — re-encoding
// its result must round-trip (decode∘encode is the identity on the
// accepted set), which catches fields silently dropped or misparsed.
func FuzzDecodeCheckpoint(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeSnapshot(fuzzSeedSnapshot(), &seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	raw := seed.Bytes()
	for _, cut := range []int{0, 3, 4, 11, len(raw) / 2, len(raw) - 1} {
		if cut <= len(raw) {
			f.Add(append([]byte(nil), raw[:cut]...))
		}
	}
	// A header that lies about its record counts.
	lying := append([]byte(nil), raw...)
	for i := 20; i < 44 && i < len(lying); i++ {
		lying[i] = 0xff
	}
	f.Add(lying)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(snap.Rank) != len(snap.Docs) || len(snap.Acc) != len(snap.Docs) || len(snap.Last) != len(snap.Docs) {
			t.Fatalf("accepted snapshot with inconsistent ranker state: %d docs, %d/%d/%d values",
				len(snap.Docs), len(snap.Rank), len(snap.Acc), len(snap.Last))
		}
		var out bytes.Buffer
		if err := EncodeSnapshot(snap, &out); err != nil {
			t.Fatalf("re-encoding accepted snapshot: %v", err)
		}
		again, err := DecodeSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded snapshot: %v", err)
		}
		var final bytes.Buffer
		if err := EncodeSnapshot(again, &final); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), final.Bytes()) {
			t.Fatal("encode/decode/encode is not a fixed point")
		}
	})
}
