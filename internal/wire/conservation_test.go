package wire

import (
	"math"
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/telemetry"
)

// assertRegistryConservation audits the quiescent cluster's merged
// telemetry registry against the two conservation laws the system
// promises:
//
//  1. update conservation — every delta shipped between peers was
//     folded exactly once (wire_delta_shipped == wire_delta_folded),
//  2. mass conservation — the per-peer rank-mass gauges sum to the
//     total rank actually held in the final ranks, so no mass
//     evaporated across crashes, migrations, or reroutes.
//
// Both comparisons allow for floating-point association order: the
// registry accumulates in arrival order, the ranks sum in index order.
// It is the reusable form of the invariant: any test that ends with a
// quiescent cluster can call it with the cluster's TelemetrySnapshot.
func assertRegistryConservation(t *testing.T, snap telemetry.Snapshot, ranks []float64) {
	t.Helper()
	shipped := snap.FloatValue("wire_delta_shipped")
	folded := snap.FloatValue("wire_delta_folded")
	if diff := math.Abs(shipped - folded); diff > 1e-6*math.Max(1, math.Abs(shipped)) {
		t.Fatalf("registry delta mass not conserved: shipped %v folded %v (diff %v)",
			shipped, folded, diff)
	}
	if shipped <= 0 {
		t.Fatalf("registry shows no shipped mass (%v): instruments not wired through", shipped)
	}
	total := 0.0
	for _, r := range ranks {
		total += r
	}
	mass := snap.GaugeValue("wire_rank_mass")
	if diff := math.Abs(mass - total); diff > 1e-6*math.Max(1, total) {
		t.Fatalf("registry rank mass %v != sum of final ranks %v (diff %v)", mass, total, diff)
	}
}

// TestTelemetryConservationUnderFaults is the observability answer to
// the chaos suite: random power-law graphs run through the full
// p2p+wire stack with lossy transport faults and one crash/restart
// cycle, and the conservation invariants are asserted from the
// telemetry registry alone — the same numbers an operator would scrape
// from /metrics, not the internal result struct.
func TestTelemetryConservationUnderFaults(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	for _, seed := range []uint64{17, 303} {
		g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, seed))
		ft := NewFaultTransport(nil, FaultConfig{
			Seed:      seed,
			DropProb:  0.04,
			ResetProb: 0.04,
			DelayProb: 0.05,
			MaxDelay:  time.Millisecond,
		})
		c, err := NewCluster(g, ClusterConfig{Peers: 5, Epsilon: 1e-6, Seed: seed, Transport: ft})
		if err != nil {
			t.Fatal(err)
		}

		type runOut struct {
			res ClusterResult
			err error
		}
		resCh := make(chan runOut, 1)
		go func() {
			res, err := c.Run(120 * time.Second)
			resCh <- runOut{res, err}
		}()

		// One kill/restart cycle mid-flight: the victim's registry is
		// retained across the crash and its counters restore from the
		// checkpoint, so the merged snapshot must still balance.
		time.Sleep(10 * time.Millisecond)
		if err := c.Kill(2); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		if err := c.Restart(2); err != nil {
			t.Fatal(err)
		}

		out := <-resCh
		if out.err != nil {
			t.Fatal(out.err)
		}
		assertRanksMatch(t, g, out.res.Ranks, 1e-3)
		assertRegistryConservation(t, c.TelemetrySnapshot(), out.res.Ranks)

		// The registry and the public result struct are two views of
		// the same instruments now; they must agree exactly.
		snap := c.TelemetrySnapshot()
		if got := snap.FloatValue("wire_delta_shipped"); got != out.res.DeltaShipped {
			t.Fatalf("registry shipped %v != result shipped %v", got, out.res.DeltaShipped)
		}
		if got := snap.CounterValue("wire_retries"); got != out.res.Retries {
			t.Fatalf("registry retries %d != result retries %d", got, out.res.Retries)
		}
		c.Close()
	}
}

// TestTelemetryConservationHTTP runs the same registry audit over the
// HTTP transport's cluster, whose snapshot merges per-peer registries
// the same way.
func TestTelemetryConservationHTTP(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(300, 9))
	c, err := NewHTTPCluster(g, ClusterConfig{Peers: 3, Epsilon: 1e-6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	assertRegistryConservation(t, c.TelemetrySnapshot(), res.Ranks)
}
