package wire

import (
	"testing"
	"time"

	"dpr/internal/graph"
)

// runAsync starts a cluster run in the background.
func runAsync(c *Cluster, timeout time.Duration) chan struct {
	res ClusterResult
	err error
} {
	resCh := make(chan struct {
		res ClusterResult
		err error
	}, 1)
	go func() {
		res, err := c.Run(timeout)
		resCh <- struct {
			res ClusterResult
			err error
		}{res, err}
	}()
	return resCh
}

// TestLeaveMigratesLivePeer removes a live peer mid-computation: its
// documents, dedup tables and queues move to its ring successor, and
// the run must converge to the centralized baseline with zero mass
// lost and no operator restart.
func TestLeaveMigratesLivePeer(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 31))
	c, err := NewCluster(g, ClusterConfig{Peers: 5, Epsilon: 1e-6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := runAsync(c, 60*time.Second)
	time.Sleep(10 * time.Millisecond)
	if err := c.Leave(1); err != nil {
		t.Fatalf("leave: %v", err)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	assertNoMassLost(t, res)
	if res.Leaves != 1 {
		t.Fatalf("leaves = %d, want 1", res.Leaves)
	}
	if res.Migrated == 0 {
		t.Fatal("leave migrated no documents")
	}
	if res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", res.Misdropped)
	}
}

// TestLeaveCrashedPeerHandsOffCheckpoint crashes a peer, then removes
// it permanently: the handoff must come from its checkpoint, including
// the updates parked in its outbound queues.
func TestLeaveCrashedPeerHandsOffCheckpoint(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 33))
	c, err := NewCluster(g, ClusterConfig{Peers: 5, Epsilon: 1e-6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := runAsync(c, 60*time.Second)
	time.Sleep(10 * time.Millisecond)
	if err := c.Kill(2); err != nil {
		t.Fatalf("kill: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.Leave(2); err != nil {
		t.Fatalf("leave of crashed peer: %v", err)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	assertRanksMatch(t, g, out.res.Ranks, 1e-3)
	assertNoMassLost(t, out.res)
	if out.res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", out.res.Misdropped)
	}
}

// TestLeaveIntoCrashedSuccessorMergesCheckpoints covers the nastiest
// handoff: the departing peer's ring successor is itself crashed, so
// the handoff must be merged into the successor's checkpoint and only
// materialize when the successor restarts.
func TestLeaveIntoCrashedSuccessorMergesCheckpoints(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(400, 35))
	c, err := NewCluster(g, ClusterConfig{Peers: 5, Epsilon: 1e-6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Find a leaver whose ring successor we can crash first.
	leaver := 1
	succ := c.slotOf(c.nodes[leaver].Successor())
	if succ < 0 {
		t.Fatal("no successor slot")
	}
	resCh := runAsync(c, 60*time.Second)
	time.Sleep(10 * time.Millisecond)
	if err := c.Kill(succ); err != nil {
		t.Fatalf("kill successor: %v", err)
	}
	if err := c.Leave(leaver); err != nil {
		t.Fatalf("leave into crashed successor: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.Restart(succ); err != nil {
		t.Fatalf("restart successor: %v", err)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	assertRanksMatch(t, g, out.res.Ranks, 1e-3)
	assertNoMassLost(t, out.res)
	if out.res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", out.res.Misdropped)
	}
}

// TestJoinTakesOverKeyRange adds a fresh peer mid-computation: it
// takes its canonical key range from its ring successor and the run
// still converges exactly.
func TestJoinTakesOverKeyRange(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 37))
	c, err := NewCluster(g, ClusterConfig{Peers: 4, Epsilon: 1e-6, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := runAsync(c, 60*time.Second)
	time.Sleep(10 * time.Millisecond)
	slot, err := c.Join()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if slot != 4 {
		t.Fatalf("join slot = %d, want 4", slot)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	assertNoMassLost(t, res)
	if res.Joins != 1 {
		t.Fatalf("joins = %d, want 1", res.Joins)
	}
	if res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", res.Misdropped)
	}
	t.Logf("join migrated %d docs; %d forwarded updates", res.Migrated, res.Forwarded)
}

// TestFailureDetectorAutoLeave kills a peer and never restarts it: the
// heartbeat detector must suspect it, remove it permanently, and the
// computation must converge without any operator intervention.
func TestFailureDetectorAutoLeave(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 39))
	c, err := NewCluster(g, ClusterConfig{
		Peers: 5, Epsilon: 1e-6, Seed: 19,
		Heartbeat: 20 * time.Millisecond, SuspectAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := runAsync(c, 60*time.Second)
	time.Sleep(10 * time.Millisecond)
	if err := c.Kill(3); err != nil {
		t.Fatalf("kill: %v", err)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	assertNoMassLost(t, res)
	if res.Leaves == 0 {
		t.Fatal("failure detector never removed the dead peer")
	}
	if res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", res.Misdropped)
	}
	if c.NumLive() != 4 {
		t.Fatalf("live peers = %d, want 4", c.NumLive())
	}
}

// TestMembershipValidation pins the refusal paths: the last live peer
// cannot leave, a departed slot cannot leave again or restart, and a
// departed slot's counters stay in the totals.
func TestMembershipValidation(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(60, 41))
	c, err := NewCluster(g, ClusterConfig{Peers: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Leave(0); err != nil {
		t.Fatalf("first leave: %v", err)
	}
	if err := c.Leave(0); err == nil {
		t.Fatal("double leave succeeded")
	}
	if err := c.Leave(1); err == nil {
		t.Fatal("last live peer left")
	}
	if err := c.Restart(0); err == nil {
		t.Fatal("restart of departed slot succeeded")
	}
	if err := c.Kill(0); err == nil {
		t.Fatal("kill of departed slot succeeded")
	}
	if got := c.NumLive(); got != 1 {
		t.Fatalf("NumLive = %d, want 1", got)
	}
	if got := c.NumPeers(); got != 2 {
		t.Fatalf("NumPeers = %d, want 2 (slots are never reused)", got)
	}
}

// TestChaosMembershipJoinLeave is the acceptance scenario for dynamic
// membership: under injected connection faults, one peer is killed
// permanently mid-computation (the failure detector must notice and
// hand its range to its successor — no operator restart) and a fresh
// peer joins mid-computation. The cluster must converge to the
// centralized baseline with zero rank mass lost across the handoffs.
func TestChaosMembershipJoinLeave(t *testing.T) {
	defer assertNoGoroutineLeaks(t)()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 43))
	ft := NewFaultTransport(nil, FaultConfig{
		Seed:      77,
		ResetProb: 0.05,
		DropProb:  0.03,
		DupProb:   0.05,
		DelayProb: 0.05,
		MaxDelay:  2 * time.Millisecond,
	})
	c, err := NewCluster(g, ClusterConfig{
		Peers: 6, Epsilon: 1e-6, Seed: 3, Transport: ft,
		Heartbeat: 25 * time.Millisecond, SuspectAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := runAsync(c, 120*time.Second)

	time.Sleep(20 * time.Millisecond)
	if err := c.Kill(2); err != nil { // permanent: never restarted
		t.Fatalf("kill: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := c.Join(); err != nil {
		t.Fatalf("join: %v", err)
	}

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	assertRanksMatch(t, g, res.Ranks, 1e-3)
	assertNoMassLost(t, res)
	if res.Leaves == 0 {
		t.Fatal("failure detector never removed the killed peer")
	}
	if res.Joins != 1 {
		t.Fatalf("joins = %d, want 1", res.Joins)
	}
	if res.Migrated == 0 {
		t.Fatal("membership churn migrated no documents")
	}
	if res.Misdropped != 0 {
		t.Fatalf("%d updates lost to unresolved ownership", res.Misdropped)
	}
	t.Logf("membership chaos: %d msgs, %d migrated docs, %d forwarded, %d leaves, %d joins, faults %+v",
		res.Messages, res.Migrated, res.Forwarded, res.Leaves, res.Joins, ft.Stats())
}
