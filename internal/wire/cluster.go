package wire

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// Cluster runs a whole computation over real TCP sockets on localhost:
// N peers, random document placement, termination detection and rank
// collection. It is the in-process stand-in for the paper's vision of
// web servers cooperating across the Internet, and it survives the
// paper's dynamic-network conditions: connections may drop, peer pairs
// may partition, and individual peers may crash (Kill) and rejoin
// from their checkpoint at a new address (Restart) without losing a
// single update.
type Cluster struct {
	g   *graph.Graph
	cfg ClusterConfig

	docPeer []p2p.PeerID
	docs    [][]graph.NodeID

	mu      sync.Mutex
	peers   []*Peer         // nil while a slot is crashed
	snaps   []*PeerSnapshot // decoded snapshot of a crashed slot
	blobs   [][]byte        // serialized snapshot (exercises the codec)
	addrs   []string
	started bool
}

// ClusterConfig parameterizes NewCluster.
type ClusterConfig struct {
	Peers   int
	Damping float64 // 0 means 0.85
	Epsilon float64 // 0 means 1e-3
	Seed    uint64

	// Transport dials every peer-to-peer connection; nil means the
	// real TCP dialer. Tests inject a FaultTransport to script
	// failures.
	Transport Transport

	// Retry shapes reconnect/redelivery backoff (defaults apply).
	Retry RetryPolicy

	// Client overrides the HTTP client (HTTP clusters only).
	Client *http.Client
}

// NewCluster starts cfg.Peers TCP peers and distributes g's documents
// among them uniformly at random.
func NewCluster(g *graph.Graph, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Peers < 1 {
		return nil, fmt.Errorf("wire: need at least one peer")
	}
	r := rng.New(cfg.Seed)
	docPeer := make([]p2p.PeerID, g.NumNodes())
	docs := make([][]graph.NodeID, cfg.Peers)
	for d := 0; d < g.NumNodes(); d++ {
		pid := p2p.PeerID(r.Intn(cfg.Peers))
		docPeer[d] = pid
		docs[pid] = append(docs[pid], graph.NodeID(d))
	}
	c := &Cluster{
		g: g, cfg: cfg, docPeer: docPeer, docs: docs,
		snaps: make([]*PeerSnapshot, cfg.Peers),
		blobs: make([][]byte, cfg.Peers),
	}
	addrs := make([]string, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		peer, err := NewPeer(c.peerConfig(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, peer)
		addrs[i] = peer.Addr()
	}
	c.addrs = addrs
	for _, p := range c.peers {
		p.SetPeers(addrs)
	}
	return c, nil
}

func (c *Cluster) peerConfig(i int) PeerConfig {
	return PeerConfig{
		ID:        p2p.PeerID(i),
		Graph:     c.g,
		DocPeer:   c.docPeer,
		Docs:      c.docs[i],
		Damping:   c.cfg.Damping,
		Epsilon:   c.cfg.Epsilon,
		Transport: c.cfg.Transport,
		Retry:     c.cfg.Retry,
	}
}

// ClusterResult reports a finished TCP computation.
type ClusterResult struct {
	Ranks    []float64
	Messages uint64 // updates shipped between peers (and self-loops)
	Probes   int    // termination-detector rounds
	Elapsed  time.Duration

	// Fault-tolerance accounting.
	Retries      uint64  // frame transmissions past a frame's first attempt
	Reconnects   uint64  // successful re-dials after a connection loss
	Redeliveries uint64  // frames acknowledged after more than one attempt
	Coalesced    uint64  // updates absorbed by sender-side delta coalescing
	DupDropped   uint64  // duplicate frames suppressed by receivers
	DeltaShipped float64 // total delta mass shipped
	DeltaFolded  float64 // total delta mass folded (== shipped when none lost)
}

// Kill crashes peer i: its goroutines stop, its connections reset,
// unfolded in-flight batches are lost (senders still hold them), and
// its durable state is checkpointed inside the cluster for a later
// Restart. The termination probe keeps counting the crashed peer's
// outstanding messages, so quiescence cannot be declared over updates
// parked in its store-and-retry queues.
func (c *Cluster) Kill(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.peers) {
		return fmt.Errorf("wire: no peer %d", i)
	}
	p := c.peers[i]
	if p == nil {
		return fmt.Errorf("wire: peer %d is already down", i)
	}
	c.peers[i] = nil
	snap := p.Kill()
	var buf bytes.Buffer
	if err := EncodeSnapshot(snap, &buf); err != nil {
		return err
	}
	c.snaps[i] = snap
	c.blobs[i] = buf.Bytes()
	return nil
}

// Restart rejoins crashed peer i from its checkpoint: a fresh
// listener at a new address, redelivery of everything it had stored,
// and an address-table update pushed to every live peer so their
// reconnect loops re-resolve it.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.peers) {
		return fmt.Errorf("wire: no peer %d", i)
	}
	if c.peers[i] != nil {
		return fmt.Errorf("wire: peer %d is not down", i)
	}
	if c.blobs[i] == nil {
		return fmt.Errorf("wire: no checkpoint for peer %d", i)
	}
	snap, err := DecodeSnapshot(bytes.NewReader(c.blobs[i]))
	if err != nil {
		return err
	}
	p, err := RestorePeer(c.peerConfig(i), snap)
	if err != nil {
		return err
	}
	c.peers[i] = p
	c.snaps[i] = nil
	c.blobs[i] = nil
	c.addrs[i] = p.Addr()
	addrs := append([]string(nil), c.addrs...)
	for _, q := range c.peers {
		if q != nil {
			q.SetPeers(addrs)
		}
	}
	if c.started {
		p.Start()
	}
	return nil
}

// Run starts every peer, waits for global quiescence (two consecutive
// probes with equal and unchanged sent/processed totals), collects the
// ranks, and shuts the cluster down. Peers may be killed and restarted
// concurrently; quiescence is only declared once every update —
// including those parked in retry queues — has been folded.
func (c *Cluster) Run(timeout time.Duration) (ClusterResult, error) {
	start := time.Now()
	c.mu.Lock()
	c.started = true
	for _, p := range c.peers {
		if p != nil {
			p.Start()
		}
	}
	c.mu.Unlock()
	res := ClusterResult{}
	var prevSent, prevProcessed uint64 = ^uint64(0), ^uint64(0)
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("wire: no quiescence within %v", timeout)
		}
		sent, processed := c.counters()
		res.Probes++
		if sent == processed && sent == prevSent && processed == prevProcessed {
			res.Messages = sent
			break
		}
		prevSent, prevProcessed = sent, processed
		time.Sleep(5 * time.Millisecond)
	}

	res.Ranks = c.collectAll()
	st := c.stats()
	res.Retries = st.Retries
	res.Reconnects = st.Reconnects
	res.Redeliveries = st.Redeliveries
	res.Coalesced = st.Coalesced
	res.DupDropped = st.DupDropped
	res.DeltaShipped = st.DeltaShipped
	res.DeltaFolded = st.DeltaFolded
	res.Elapsed = time.Since(start)
	c.Close()
	return res, nil
}

// slots returns a consistent copy of the cluster's peer table.
func (c *Cluster) slots() ([]*Peer, []*PeerSnapshot, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Peer(nil), c.peers...),
		append([]*PeerSnapshot(nil), c.snaps...),
		append([]string(nil), c.addrs...)
}

// counters sums every slot's (sent, processed): live peers over TCP
// (falling back to a direct read when the probe connection fails
// transiently), crashed peers from their frozen checkpoint.
func (c *Cluster) counters() (sent, processed uint64) {
	peers, snaps, addrs := c.slots()
	for i := range peers {
		if peers[i] == nil {
			if snaps[i] != nil {
				sent += snaps[i].Sent
				processed += snaps[i].Processed
			}
			continue
		}
		s, pr, err := probePeer(c.cfg.Transport, addrs[i])
		if err != nil {
			s, pr = peers[i].Counters()
		}
		sent += s
		processed += pr
	}
	return
}

// collectAll gathers every document's rank: live peers over TCP,
// crashed peers from their checkpoint.
func (c *Cluster) collectAll() []float64 {
	ranks := make([]float64, c.g.NumNodes())
	peers, snaps, addrs := c.slots()
	for i := range peers {
		if peers[i] == nil {
			if snaps[i] != nil {
				for j, d := range snaps[i].Docs {
					ranks[d] = snaps[i].Rank[j]
				}
			}
			continue
		}
		if err := collectRanks(c.cfg.Transport, addrs[i], ranks); err != nil {
			docs, rs := peers[i].rk.snapshotRanks()
			for j, d := range docs {
				ranks[d] = rs[j]
			}
		}
	}
	return ranks
}

// stats sums every slot's counters.
func (c *Cluster) stats() (st PeerStats) {
	peers, snaps, _ := c.slots()
	for i := range peers {
		var ps PeerStats
		switch {
		case peers[i] != nil:
			ps = peers[i].Stats()
		case snaps[i] != nil:
			ps = PeerStats{
				Sent: snaps[i].Sent, Processed: snaps[i].Processed,
				Retries: snaps[i].Retries, Reconnects: snaps[i].Reconnects,
				Redeliveries: snaps[i].Redeliveries, Coalesced: snaps[i].Coalesced,
				DupDropped:   snaps[i].DupDropped,
				DeltaShipped: snaps[i].DeltaShipped, DeltaFolded: snaps[i].DeltaFolded,
			}
		default:
			continue
		}
		st.Sent += ps.Sent
		st.Processed += ps.Processed
		st.Retries += ps.Retries
		st.Reconnects += ps.Reconnects
		st.Redeliveries += ps.Redeliveries
		st.Coalesced += ps.Coalesced
		st.DupDropped += ps.DupDropped
		st.DeltaShipped += ps.DeltaShipped
		st.DeltaFolded += ps.DeltaFolded
	}
	return
}

// observerDial opens a short-lived observer connection (probes, rank
// collection) through the cluster's transport so nothing reaches
// around it, while fault injectors leave observer traffic clean.
func observerDial(tr Transport, addr string) (net.Conn, error) {
	if tr == nil {
		tr = TCPDialer()
	}
	return tr.Dial(Observer, Observer, addr)
}

func probePeer(tr Transport, addr string) (sent, processed uint64, err error) {
	conn, err := observerDial(tr, addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	if err := writeFrame(conn, frameSnapReq, nil); err != nil {
		return 0, 0, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return 0, 0, err
	}
	if typ != frameSnapResp {
		return 0, 0, fmt.Errorf("wire: unexpected frame %c to probe", typ)
	}
	return decodeSnapshot(payload)
}

func collectRanks(tr Transport, addr string, out []float64) error {
	conn, err := observerDial(tr, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeFrame(conn, frameRanksReq, nil); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameRanks {
		return fmt.Errorf("wire: unexpected frame %c to rank request", typ)
	}
	_, err = decodeRanks(payload, out)
	return err
}

// Close stops every peer.
func (c *Cluster) Close() {
	c.mu.Lock()
	peers := append([]*Peer(nil), c.peers...)
	c.mu.Unlock()
	for _, p := range peers {
		if p != nil {
			p.Close()
		}
	}
}

// NumPeers returns the cluster size.
func (c *Cluster) NumPeers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// DebugCounters sums the live counters without probing over TCP.
func (c *Cluster) DebugCounters() (sent, processed uint64) {
	peers, snaps, _ := c.slots()
	for i := range peers {
		if peers[i] == nil {
			if snaps[i] != nil {
				sent += snaps[i].Sent
				processed += snaps[i].Processed
			}
			continue
		}
		s, pr := peers[i].Counters()
		sent += s
		processed += pr
	}
	return
}
