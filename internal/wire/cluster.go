package wire

import (
	"fmt"
	"net"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// Cluster runs a whole computation over real TCP sockets on localhost:
// N peers, random document placement, termination detection and rank
// collection. It is the in-process stand-in for the paper's vision of
// web servers cooperating across the Internet.
type Cluster struct {
	peers []*Peer
	g     *graph.Graph
}

// ClusterConfig parameterizes NewCluster.
type ClusterConfig struct {
	Peers   int
	Damping float64 // 0 means 0.85
	Epsilon float64 // 0 means 1e-3
	Seed    uint64
}

// NewCluster starts cfg.Peers TCP peers and distributes g's documents
// among them uniformly at random.
func NewCluster(g *graph.Graph, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Peers < 1 {
		return nil, fmt.Errorf("wire: need at least one peer")
	}
	r := rng.New(cfg.Seed)
	docPeer := make([]p2p.PeerID, g.NumNodes())
	docs := make([][]graph.NodeID, cfg.Peers)
	for d := 0; d < g.NumNodes(); d++ {
		pid := p2p.PeerID(r.Intn(cfg.Peers))
		docPeer[d] = pid
		docs[pid] = append(docs[pid], graph.NodeID(d))
	}
	c := &Cluster{g: g}
	addrs := make([]string, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		peer, err := NewPeer(PeerConfig{
			ID:      p2p.PeerID(i),
			Graph:   g,
			DocPeer: docPeer,
			Docs:    docs[i],
			Damping: cfg.Damping,
			Epsilon: cfg.Epsilon,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, peer)
		addrs[i] = peer.Addr()
	}
	for _, p := range c.peers {
		p.SetPeers(addrs)
	}
	return c, nil
}

// ClusterResult reports a finished TCP computation.
type ClusterResult struct {
	Ranks    []float64
	Messages uint64 // updates shipped between peers (and self-loops)
	Probes   int    // termination-detector rounds
	Elapsed  time.Duration
}

// Run starts every peer, waits for global quiescence (two consecutive
// probes with equal and unchanged sent/processed totals), collects the
// ranks, and shuts the cluster down.
func (c *Cluster) Run(timeout time.Duration) (ClusterResult, error) {
	start := time.Now()
	for _, p := range c.peers {
		p.Start()
	}
	res := ClusterResult{}
	var prevSent, prevProcessed uint64 = ^uint64(0), ^uint64(0)
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("wire: no quiescence within %v", timeout)
		}
		sent, processed, err := c.probe()
		if err != nil {
			return res, err
		}
		res.Probes++
		if sent == processed && sent == prevSent && processed == prevProcessed {
			res.Messages = sent
			break
		}
		prevSent, prevProcessed = sent, processed
		time.Sleep(5 * time.Millisecond)
	}

	ranks := make([]float64, c.g.NumNodes())
	for _, p := range c.peers {
		if err := collectRanks(p.Addr(), ranks); err != nil {
			return res, err
		}
	}
	res.Ranks = ranks
	res.Elapsed = time.Since(start)
	c.Close()
	return res, nil
}

// probe sums every peer's (sent, processed) counters over fresh
// connections.
func (c *Cluster) probe() (sent, processed uint64, err error) {
	for _, p := range c.peers {
		s, pr, err := probePeer(p.Addr())
		if err != nil {
			return 0, 0, err
		}
		sent += s
		processed += pr
	}
	return sent, processed, nil
}

func probePeer(addr string) (sent, processed uint64, err error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	if err := writeFrame(conn, frameSnapReq, nil); err != nil {
		return 0, 0, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return 0, 0, err
	}
	if typ != frameSnapResp {
		return 0, 0, fmt.Errorf("wire: unexpected frame %c to probe", typ)
	}
	return decodeSnapshot(payload)
}

func collectRanks(addr string, out []float64) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeFrame(conn, frameRanksReq, nil); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameRanks {
		return fmt.Errorf("wire: unexpected frame %c to rank request", typ)
	}
	_, err = decodeRanks(payload, out)
	return err
}

// Close stops every peer.
func (c *Cluster) Close() {
	for _, p := range c.peers {
		if p != nil {
			p.Close()
		}
	}
}

// NumPeers returns the cluster size.
func (c *Cluster) NumPeers() int { return len(c.peers) }

// DebugCounters sums the live counters without probing over TCP.
func (c *Cluster) DebugCounters() (sent, processed uint64) {
	for _, p := range c.peers {
		s, pr := p.Counters()
		sent += s
		processed += pr
	}
	return
}
