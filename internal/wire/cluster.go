package wire

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"dpr/internal/dht"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/telemetry"
)

// Cluster runs a whole computation over real TCP sockets on localhost:
// N peers, random document placement, termination detection and rank
// collection. It is the in-process stand-in for the paper's vision of
// web servers cooperating across the Internet, and it survives the
// paper's dynamic-network conditions: connections may drop, peer pairs
// may partition, and individual peers may crash (Kill) and rejoin
// from their checkpoint at a new address (Restart) without losing a
// single update.
//
// Membership is live (paper section 3.1): a Chord ring (internal/dht)
// is the membership oracle, each document's GUID is a ring key placed
// at its owner, and ownership moves with the ring. Leave permanently
// removes a peer — its document range, duplicate-suppression tables
// and outbound queues migrate to its ring successor, and every live
// peer's routing and address tables are repushed so in-flight and
// parked updates chase the documents to their new owner. Join adds a
// fresh peer that takes over its canonical key range from its
// successor. Failure detection is partition-tolerant: every live slot
// runs its own heartbeat vantage (ClusterConfig.Heartbeat), suspicions
// gossip on the ping/pong exchange, and an unresponsive peer is only
// removed once a majority of live peers concurs — a minority side of a
// network split refuses to evict the majority, parks its updates, and
// reconciles through an anti-entropy view exchange when the partition
// heals. Every ownership transfer bumps a per-range epoch so frames
// stamped under a stale view are rejected instead of folded twice.
type Cluster struct {
	g   *graph.Graph
	cfg ClusterConfig

	docPeer []p2p.PeerID
	docs    [][]graph.NodeID

	ring  *dht.Ring
	nodes []*dht.Node // slot -> ring node

	mu        sync.Mutex
	peers     []*Peer         // nil while a slot is crashed or left
	snaps     []*PeerSnapshot // decoded snapshot of a crashed slot
	blobs     [][]byte        // serialized snapshot (exercises the codec)
	addrs     []string
	left      []bool       // slot departed permanently
	fenced    []bool       // slot quorum-evicted but unreachable: state parked until heal
	forwardTo []p2p.PeerID // left slot -> adopting successor slot
	epochs    []uint64     // per-slot ownership epoch; bumps on every transfer
	departed  PeerStats    // frozen counters of departed peers
	started   bool

	// Telemetry: one registry per slot (retained across Kill/Restart so
	// a slot's counters survive its crashes), a cluster-level registry
	// for membership and probe counters, and a shared convergence-event
	// trace. TelemetrySnapshot merges them all.
	regs  []*telemetry.Registry
	reg   *telemetry.Registry
	trace *telemetry.Trace
	dbg   *telemetry.DebugServer

	mJoins        *telemetry.Counter
	mLeaves       *telemetry.Counter
	mMigrated     *telemetry.Counter
	mProbes       *telemetry.Counter
	mEvictQuorum  *telemetry.Counter
	mEvictRefused *telemetry.Counter

	// Per-slot failure-detector vantages, guarded separately from mu so
	// the gossip callback on the peers' serve path never touches the
	// cluster lock.
	detMu sync.Mutex
	dets  []*detector

	fdQuit chan struct{}
	fdStop sync.Once
	fdWg   sync.WaitGroup
}

// ClusterConfig parameterizes NewCluster.
type ClusterConfig struct {
	Peers   int
	Damping float64 // 0 means 0.85
	Epsilon float64 // 0 means 1e-3
	Seed    uint64

	// Heartbeat enables the failure detectors: every live slot pings
	// the other slots each Heartbeat through the cluster transport
	// (under its own peer identity, so scripted partitions cut probes
	// too) and gossips its suspicion set on the exchange. A suspected
	// slot is evicted only when a majority of live peers concurs; a
	// crashed suspect departs with full state handoff, a live-but-
	// unreachable one is fenced until the partition heals. 0 disables
	// detection.
	Heartbeat time.Duration

	// SuspectAfter is the consecutive-miss threshold before a single
	// vantage SUSPECTS a slot (it no longer triggers eviction by
	// itself — that takes a quorum of concurring vantages); 0 means 3.
	SuspectAfter int

	// InboxCap sizes each peer's bulk inbox lane — the queue of
	// delivered-but-unfolded update batches, and the quantity the
	// receiver's advertised credit window shrinks with. 0 means 1024;
	// negative is rejected.
	InboxCap int

	// CreditWindow caps the unacknowledged frames a sender keeps in
	// flight per stream and the largest window a receiver advertises.
	// Together with InboxCap it bounds queued-frame memory per
	// connection under overload. 0 means 32; negative is rejected.
	CreditWindow int

	// SlowThreshold is the send-to-ack latency EWMA past which a
	// destination is treated as a straggler (smaller batches, stretched
	// ship cadence). 0 means 25ms; negative is rejected.
	SlowThreshold time.Duration

	// Transport dials every peer-to-peer connection; nil means the
	// real TCP dialer. Tests inject a FaultTransport to script
	// failures.
	Transport Transport

	// Retry shapes reconnect/redelivery backoff (defaults apply).
	Retry RetryPolicy

	// Client overrides the HTTP client (HTTP clusters only).
	Client *http.Client

	// DebugAddr, when non-empty, starts the opt-in debug listener on
	// that address (host:port; ":0" picks an ephemeral port) serving
	// /metrics, /trace and /debug/pprof. Cluster.DebugAddr reports the
	// bound address.
	DebugAddr string

	// TraceCap bounds the convergence-event ring; 0 means 4096.
	TraceCap int
}

// NewCluster starts cfg.Peers TCP peers and distributes g's documents
// among them uniformly at random. Each document's GUID is also placed
// on the membership ring at its owner, so ownership can migrate with
// ring membership from then on.
func NewCluster(g *graph.Graph, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Peers < 1 {
		return nil, fmt.Errorf("wire: need at least one peer")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.InboxCap < 0 {
		return nil, fmt.Errorf("wire: negative InboxCap %d", cfg.InboxCap)
	}
	if cfg.CreditWindow < 0 {
		return nil, fmt.Errorf("wire: negative CreditWindow %d", cfg.CreditWindow)
	}
	if cfg.SlowThreshold < 0 {
		return nil, fmt.Errorf("wire: negative SlowThreshold %v", cfg.SlowThreshold)
	}
	r := rng.New(cfg.Seed)
	docPeer := make([]p2p.PeerID, g.NumNodes())
	docs := make([][]graph.NodeID, cfg.Peers)
	for d := 0; d < g.NumNodes(); d++ {
		pid := p2p.PeerID(r.Intn(cfg.Peers))
		docPeer[d] = pid
		docs[pid] = append(docs[pid], graph.NodeID(d))
	}
	c := &Cluster{
		g: g, cfg: cfg, docPeer: docPeer, docs: docs,
		ring:      dht.NewRing(),
		snaps:     make([]*PeerSnapshot, cfg.Peers),
		blobs:     make([][]byte, cfg.Peers),
		left:      make([]bool, cfg.Peers),
		fenced:    make([]bool, cfg.Peers),
		forwardTo: make([]p2p.PeerID, cfg.Peers),
		epochs:    make([]uint64, cfg.Peers),
		reg:       telemetry.NewRegistry(),
		trace:     telemetry.NewTrace(cfg.TraceCap),
		fdQuit:    make(chan struct{}),
	}
	c.trace.SetClock(func() int64 { return time.Now().UnixNano() })
	c.mJoins = c.reg.Counter("cluster_joins")
	c.mLeaves = c.reg.Counter("cluster_leaves")
	c.mMigrated = c.reg.Counter("cluster_docs_migrated")
	c.mProbes = c.reg.Counter("cluster_probes")
	c.mEvictQuorum = c.reg.Counter("wire_evictions_quorum")
	c.mEvictRefused = c.reg.Counter("wire_evictions_refused")
	for i := 0; i < cfg.Peers; i++ {
		c.regs = append(c.regs, telemetry.NewRegistry())
	}
	for i := 0; i < cfg.Peers; i++ {
		c.forwardTo[i] = p2p.NoPeer
		node, err := c.ring.AddPeer(fmt.Sprintf("peer-%d", i))
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	for d := 0; d < g.NumNodes(); d++ {
		node := c.nodes[docPeer[d]]
		if err := c.ring.PlaceKey(node, docKey(graph.NodeID(d)), graph.NodeID(d)); err != nil {
			return nil, err
		}
	}
	addrs := make([]string, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		peer, err := NewPeer(c.peerConfig(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, peer)
		addrs[i] = peer.Addr()
	}
	c.addrs = addrs
	for _, p := range c.peers {
		p.SetPeers(addrs)
	}
	if cfg.DebugAddr != "" {
		dbg, err := telemetry.ServeDebug(cfg.DebugAddr, c.TelemetrySnapshot, c.trace)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.dbg = dbg
	}
	return c, nil
}

// docKey maps a document id to its ring position.
func docKey(d graph.NodeID) dht.ID {
	return dht.GUIDFromUint64(uint64(d)).ID()
}

func (c *Cluster) peerConfig(i int) PeerConfig {
	return PeerConfig{
		ID:        p2p.PeerID(i),
		Graph:     c.g,
		DocPeer:   c.docPeer,
		Docs:      c.docs[i],
		Damping:   c.cfg.Damping,
		Epsilon:   c.cfg.Epsilon,
		Transport: c.cfg.Transport,
		Retry:     c.cfg.Retry,
		Registry:  c.regs[i],
		Trace:     c.trace,
		Epochs:    append([]uint64(nil), c.epochs...),

		InboxCap:      c.cfg.InboxCap,
		CreditWindow:  c.cfg.CreditWindow,
		SlowThreshold: c.cfg.SlowThreshold,
		Gossip:        c.gossipFor(i),
	}
}

// gossipFor wires a peer slot's ping/pong gossip exchange to the
// slot's detector vantage (a no-op hook until the detector starts).
func (c *Cluster) gossipFor(slot int) func(p2p.PeerID, []p2p.PeerID) []p2p.PeerID {
	return func(from p2p.PeerID, sus []p2p.PeerID) []p2p.PeerID {
		c.detMu.Lock()
		var d *detector
		if slot < len(c.dets) {
			d = c.dets[slot]
		}
		c.detMu.Unlock()
		if d == nil {
			return nil
		}
		if from >= 0 {
			d.recordView(int(from), sus)
		}
		return d.suspects()
	}
}

// startDetectorLocked launches slot i's failure-detector vantage.
// Callers hold c.mu; no-op when the heartbeat is disabled.
func (c *Cluster) startDetectorLocked(i int) {
	if c.cfg.Heartbeat <= 0 {
		return
	}
	d := &detector{c: c, slot: i, miss: make(map[int]int), views: make(map[int]detView)}
	c.detMu.Lock()
	for len(c.dets) <= i {
		c.dets = append(c.dets, nil)
	}
	c.dets[i] = d
	c.detMu.Unlock()
	c.fdWg.Add(1)
	go d.loop()
}

// ClusterResult reports a finished TCP computation.
type ClusterResult struct {
	Ranks    []float64
	Messages uint64 // updates shipped between peers (and self-loops)
	Probes   int    // termination-detector rounds
	Elapsed  time.Duration

	// Fault-tolerance accounting.
	Retries      uint64  // frame transmissions past a frame's first attempt
	Reconnects   uint64  // successful re-dials after a connection loss
	Redeliveries uint64  // frames acknowledged after more than one attempt
	Coalesced    uint64  // updates absorbed by sender-side delta coalescing
	DupDropped   uint64  // duplicate frames suppressed by receivers
	DeltaShipped float64 // total delta mass shipped
	DeltaFolded  float64 // total delta mass folded (== shipped when none lost)

	// Membership accounting.
	Joins      uint64 // peers added while running
	Leaves     uint64 // peers permanently removed (manual or detected)
	Migrated   uint64 // documents whose ownership moved between peers
	Forwarded  uint64 // updates re-shipped after racing a migration
	Misdropped uint64 // updates dropped with no resolvable owner (0 = none)

	// Partition-tolerance accounting.
	EvictionsQuorum  uint64 // evictions confirmed by a live-peer majority
	EvictionsRefused uint64 // suspicions parked for lack of a quorum
	EpochRejected    uint64 // frames nacked for carrying a stale ownership epoch

	// Overload-protection accounting.
	CreditStalls  uint64 // sender streams transitioning to credit-blocked
	ShedCoalesced uint64 // updates losslessly coalesced while their stream was stalled
	SlowPeer      uint64 // destinations transitioning into straggler mode
}

// Kill crashes peer i: its goroutines stop, its connections reset,
// unfolded in-flight batches are lost (senders still hold them), and
// its durable state is checkpointed inside the cluster for a later
// Restart. The termination probe keeps counting the crashed peer's
// outstanding messages, so quiescence cannot be declared over updates
// parked in its store-and-retry queues. The cluster takes no
// membership action: with the failure detector enabled the slot will
// be suspected and permanently removed unless restarted first.
func (c *Cluster) Kill(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.peers) {
		return fmt.Errorf("wire: no peer %d", i)
	}
	if c.left[i] {
		return fmt.Errorf("wire: peer %d has left", i)
	}
	p := c.peers[i]
	if p == nil {
		return fmt.Errorf("wire: peer %d is already down", i)
	}
	c.peers[i] = nil
	snap := p.Kill()
	var buf bytes.Buffer
	if err := EncodeSnapshot(snap, &buf); err != nil {
		return err
	}
	c.snaps[i] = snap
	c.blobs[i] = buf.Bytes()
	c.trace.Record(telemetry.EvKill, int32(i), -1, 0, int64(len(snap.Docs)))
	if c.fenced[i] {
		// The quorum already evicted this slot; it was only being kept
		// around for a reconciling heal. Now that it crashed there is
		// nothing to wait for — complete the departure from the
		// checkpoint.
		return c.leaveLocked(i)
	}
	return nil
}

// Restart rejoins crashed peer i from its checkpoint: a fresh
// listener at a new address, redelivery of everything it had stored,
// and an address-table update pushed to every live peer so their
// reconnect loops re-resolve it.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.peers) {
		return fmt.Errorf("wire: no peer %d", i)
	}
	if c.left[i] {
		return fmt.Errorf("wire: peer %d has left permanently", i)
	}
	if c.peers[i] != nil {
		return fmt.Errorf("wire: peer %d is not down", i)
	}
	if c.blobs[i] == nil {
		return fmt.Errorf("wire: no checkpoint for peer %d", i)
	}
	snap, err := DecodeSnapshot(bytes.NewReader(c.blobs[i]))
	if err != nil {
		return err
	}
	p, err := RestorePeer(c.peerConfig(i), snap)
	if err != nil {
		return err
	}
	c.peers[i] = p
	c.snaps[i] = nil
	c.blobs[i] = nil
	c.addrs[i] = p.Addr()
	c.pushAddrsLocked()
	c.trace.Record(telemetry.EvRestart, int32(i), -1, 0, int64(len(snap.Docs)))
	if c.started {
		p.Start()
	}
	return nil
}

// Leave permanently removes peer i: its ring node departs gracefully,
// its document range, duplicate-suppression tables and outbound queues
// migrate to its ring successor, and every live peer's routing and
// address tables are repushed. The peer may be live (it is killed
// first) or already crashed (its checkpoint is handed off). The last
// live slot cannot leave.
func (c *Cluster) Leave(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaveLocked(i)
}

func (c *Cluster) leaveLocked(i int) error {
	if i < 0 || i >= len(c.peers) {
		return fmt.Errorf("wire: no peer %d", i)
	}
	if c.left[i] {
		return fmt.Errorf("wire: peer %d has already left", i)
	}
	if c.ring.NumAlive() < 2 {
		return fmt.Errorf("wire: cannot remove the last live peer")
	}
	// The successor inherits everything; resolve it before the ring
	// forgets the departing node.
	node := c.nodes[i]
	succ := node.Successor()
	if succ == nil || succ == node {
		return fmt.Errorf("wire: peer %d has no live successor", i)
	}
	j := c.slotOf(succ)
	if j < 0 {
		return fmt.Errorf("wire: ring node %s has no cluster slot", succ.Name())
	}
	var snap *PeerSnapshot
	switch {
	case c.peers[i] != nil:
		snap = c.peers[i].Kill()
		c.peers[i] = nil
	case c.snaps[i] != nil:
		snap = c.snaps[i]
	default:
		return fmt.Errorf("wire: no state for peer %d", i)
	}
	if err := c.ring.LeaveGraceful(node); err != nil {
		return err
	}
	// Handoff ordering matters: the successor must hold the departed
	// peer's dedup tables BEFORE any sender learns the redirected
	// address, or a redirected retransmission could double-fold.
	if c.peers[j] != nil {
		if err := c.peers[j].Adopt(HandoffFromSnapshot(snap)); err != nil {
			return err
		}
	} else if c.snaps[j] != nil {
		// Successor is itself crashed: merge the handoff into its
		// checkpoint so its restart resumes with the adopted range.
		MergeSnapshot(c.snaps[j], snap)
		var buf bytes.Buffer
		if err := EncodeSnapshot(c.snaps[j], &buf); err != nil {
			return err
		}
		c.blobs[j] = buf.Bytes()
	} else {
		return fmt.Errorf("wire: successor %d of peer %d has no state", j, i)
	}
	// The departed peer's counters freeze into the cluster-wide
	// accumulators (the successor does not inherit them; it re-counts
	// the parked updates as it folds or forwards them).
	c.departed = addStats(c.departed, snapStats(snap))
	// The slot holds no rows anymore: zero its rank-mass gauge or the
	// merged cluster gauge would double-count the migrated mass.
	c.regs[i].Gauge("wire_rank_mass").Set(0)
	for _, d := range snap.Docs {
		c.docPeer[d] = p2p.PeerID(j)
	}
	c.docs[j] = append(c.docs[j], snap.Docs...)
	c.docs[i] = nil
	c.snaps[i] = nil
	c.blobs[i] = nil
	c.left[i] = true
	c.fenced[i] = false
	c.forwardTo[i] = p2p.PeerID(j)
	// Ownership epochs fence the transfer: the departed range's epoch
	// and the successor's both bump, so frames stamped under the old
	// view are rejected rather than folded into stale owners.
	c.epochs[i]++
	c.epochs[j]++
	c.mLeaves.Add(1)
	c.mMigrated.Add(uint64(len(snap.Docs)))
	c.trace.Record(telemetry.EvLeave, int32(i), -1, 0, int64(j))
	c.pushOwnershipLocked(snap.Docs, p2p.PeerID(j))
	return nil
}

// Join adds a fresh peer: a new ring node takes over its canonical key
// range from its successor, the matching ranker rows are shed (from
// the live successor, or surgically from its checkpoint if crashed),
// and the new peer starts computing at the handed-over state while
// every live peer's routing and address tables are repushed. Returns
// the new slot index.
func (c *Cluster) Join() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := len(c.peers)
	node, err := c.ring.AddPeer(fmt.Sprintf("peer-%d", i))
	if err != nil {
		return -1, err
	}
	// The ring moved the keys in (pred, node] from the successor; those
	// are exactly the documents the new peer takes over.
	var docs []graph.NodeID
	node.EachKey(func(_ dht.ID, v interface{}) {
		docs = append(docs, v.(graph.NodeID))
	})
	sortDocs(docs)
	// Group by current owner (a single slot in practice — the keys all
	// came from the ring successor — but ownership is re-read from the
	// table so the code has no hidden single-source assumption).
	byOwner := make(map[p2p.PeerID][]graph.NodeID)
	for _, d := range docs {
		byOwner[c.docPeer[d]] = append(byOwner[c.docPeer[d]], d)
	}
	c.peers = append(c.peers, nil)
	c.snaps = append(c.snaps, nil)
	c.blobs = append(c.blobs, nil)
	c.addrs = append(c.addrs, "")
	c.left = append(c.left, false)
	c.fenced = append(c.fenced, false)
	c.forwardTo = append(c.forwardTo, p2p.NoPeer)
	// A joining slot's range is born from a transfer, so its epoch
	// starts at 1; the shedding owners bump below as their ranges
	// shrink.
	c.epochs = append(c.epochs, 1)
	c.nodes = append(c.nodes, node)
	c.docs = append(c.docs, nil)
	c.regs = append(c.regs, telemetry.NewRegistry())
	snap := &PeerSnapshot{ID: p2p.PeerID(i)}
	for owner, od := range byOwner {
		var rank, acc, last []float64
		var err error
		switch {
		case int(owner) < len(c.peers) && c.peers[owner] != nil:
			rank, acc, last, err = c.peers[owner].Shed(od, p2p.PeerID(i))
		case int(owner) < len(c.snaps) && c.snaps[owner] != nil:
			rank, acc, last, err = ShedFromSnapshot(c.snaps[owner], od)
			if err == nil {
				c.docs[owner] = removeDocs(c.docs[owner], od)
				var buf bytes.Buffer
				if err = EncodeSnapshot(c.snaps[owner], &buf); err == nil {
					c.blobs[owner] = buf.Bytes()
				}
			}
		default:
			err = fmt.Errorf("wire: owner %d of joining range has no state", owner)
		}
		if err != nil {
			return -1, err
		}
		snap.Docs = append(snap.Docs, od...)
		snap.Rank = append(snap.Rank, rank...)
		snap.Acc = append(snap.Acc, acc...)
		snap.Last = append(snap.Last, last...)
		if c.peers[owner] != nil {
			c.docs[owner] = removeDocs(c.docs[owner], od)
		}
		c.epochs[owner]++
	}
	for _, d := range snap.Docs {
		c.docPeer[d] = p2p.PeerID(i)
	}
	c.docs[i] = snap.Docs
	p, err := RestorePeer(c.peerConfig(i), snap)
	if err != nil {
		return -1, err
	}
	c.peers[i] = p
	c.addrs[i] = p.Addr()
	c.mJoins.Add(1)
	c.mMigrated.Add(uint64(len(snap.Docs)))
	c.trace.Record(telemetry.EvJoin, int32(i), -1, 0, int64(len(snap.Docs)))
	c.pushOwnershipLocked(snap.Docs, p2p.PeerID(i))
	if c.started {
		p.Start()
		c.startDetectorLocked(i)
	}
	return i, nil
}

// slotOf resolves a ring node back to its cluster slot.
func (c *Cluster) slotOf(n *dht.Node) int {
	for i, m := range c.nodes {
		if m == n {
			return i
		}
	}
	return -1
}

// effectiveAddrsLocked resolves departed slots to their adopting
// successor's address, following redirect chains across multiple
// departures. Senders keep dialing the slot their frames were framed
// for; the redirect delivers them to whoever owns that state now.
func (c *Cluster) effectiveAddrsLocked() []string {
	addrs := make([]string, len(c.addrs))
	for i := range c.addrs {
		j := i
		for hops := 0; c.left[j] && c.forwardTo[j] != p2p.NoPeer && hops <= len(c.addrs); hops++ {
			j = int(c.forwardTo[j])
		}
		addrs[i] = c.addrs[j]
	}
	return addrs
}

// viewLocked assembles the membership view pushed to live peers: the
// effective address table plus the epoch vector and the departed-slot
// redirects, so every peer reroutes and epoch-stamps consistently.
func (c *Cluster) viewLocked() View {
	return View{
		Addrs:  c.effectiveAddrsLocked(),
		Epochs: append([]uint64(nil), c.epochs...),
		Gone:   append([]bool(nil), c.left...),
		Fwd:    append([]p2p.PeerID(nil), c.forwardTo...),
	}
}

// pushAddrsLocked repushes the membership view to every live peer.
// Fenced slots are skipped: they are on the wrong side of a partition,
// and withholding the view is exactly what models that — they catch up
// through the anti-entropy exchange when the partition heals.
func (c *Cluster) pushAddrsLocked() {
	v := c.viewLocked()
	for i, q := range c.peers {
		if q != nil && !c.left[i] && !c.fenced[i] {
			q.SetView(v)
		}
	}
}

// pushOwnershipLocked pushes a migration (docs now belong to owner)
// plus the refreshed membership view to every live peer, which
// reroutes their parked updates.
func (c *Cluster) pushOwnershipLocked(docs []graph.NodeID, owner p2p.PeerID) {
	v := c.viewLocked()
	for i, q := range c.peers {
		if q != nil && !c.left[i] && !c.fenced[i] {
			q.UpdateOwnership(docs, owner, v)
		}
	}
}

// evictByQuorum executes a quorum-confirmed eviction proposed by the
// detector vantage from. A crashed suspect departs immediately — its
// checkpoint migrates exactly as with a manual Leave. A live-but-
// unreachable suspect is fenced instead: its ownership epoch bumps so
// the live side can reject its stale frames, but its state stays
// parked in place until the partition heals and reconcileFenced
// completes the departure — evicting a live peer's state while it can
// still mutate it would fork ownership. Returns false when the
// proposal has no effect (suspect already handled, proposer lost its
// own authority, or the suspect is the last live peer).
func (c *Cluster) evictByQuorum(s, from, votes, quorum int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s < 0 || s >= len(c.peers) || c.left[s] || c.fenced[s] {
		return false
	}
	if from < 0 || from >= len(c.peers) || c.left[from] || c.fenced[from] {
		return false // the proposer itself was evicted meanwhile
	}
	if c.ring.NumAlive() < 2 {
		return false
	}
	c.mEvictQuorum.Add(1)
	c.trace.Record(telemetry.EvEvict, int32(s), -1, float64(votes), int64(quorum))
	if c.peers[s] == nil {
		return c.leaveLocked(s) == nil
	}
	c.fenced[s] = true
	c.epochs[s]++
	c.pushAddrsLocked()
	return true
}

// reconcileFenced completes a fenced slot's departure once a
// quorum-connected vantage reaches it again: an anti-entropy view
// exchange hands the healed peer the current membership view (ring
// state plus epoch vector) so it reroutes its parked updates, then the
// slot leaves normally — its rows, dedup tables and queues migrate to
// its ring successor, which restores the single-owner invariant for
// every document it held.
func (c *Cluster) reconcileFenced(s, from int) {
	c.mu.Lock()
	if s < 0 || s >= len(c.peers) || c.left[s] || !c.fenced[s] || c.peers[s] == nil ||
		from < 0 || from >= len(c.peers) || c.left[from] || c.fenced[from] || c.peers[from] == nil {
		c.mu.Unlock()
		return
	}
	q := c.peers[from]
	c.mu.Unlock()
	// The exchange dials outside the cluster lock; a failure means the
	// heal was premature and the next detector round retries.
	if err := q.ExchangeView(p2p.PeerID(s)); err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left[s] || !c.fenced[s] {
		return // another vantage reconciled first
	}
	c.trace.Record(telemetry.EvHeal, int32(s), -1, 0, int64(from))
	c.fenced[s] = false
	c.leaveLocked(s) // best effort; a failed leave re-fences nothing — the detector retries
}

// sortDocs orders a document slice ascending (insertion sort is fine:
// migration sets are small relative to the graph).
func sortDocs(docs []graph.NodeID) {
	for i := 1; i < len(docs); i++ {
		for j := i; j > 0 && docs[j-1] > docs[j]; j-- {
			docs[j-1], docs[j] = docs[j], docs[j-1]
		}
	}
}

// removeDocs filters the shed documents out of an ownership list.
func removeDocs(docs, shed []graph.NodeID) []graph.NodeID {
	gone := make(map[graph.NodeID]struct{}, len(shed))
	for _, d := range shed {
		gone[d] = struct{}{}
	}
	keep := docs[:0]
	for _, d := range docs {
		if _, ok := gone[d]; !ok {
			keep = append(keep, d)
		}
	}
	return keep
}

// snapStats extracts a snapshot's counters as PeerStats.
func snapStats(s *PeerSnapshot) PeerStats {
	return PeerStats{
		Sent: s.Sent, Processed: s.Processed,
		Retries: s.Retries, Reconnects: s.Reconnects,
		Redeliveries: s.Redeliveries, Coalesced: s.Coalesced,
		DupDropped: s.DupDropped, Forwarded: s.Forwarded,
		Misdropped: s.Misdropped, EpochRejected: s.EpochRejected,
		CreditStalls: s.CreditStalls, ShedCoalesced: s.ShedCoalesced,
		SlowPeer:     s.SlowPeer,
		DeltaShipped: s.DeltaShipped, DeltaFolded: s.DeltaFolded,
	}
}

// addStats sums two counter sets.
func addStats(a, b PeerStats) PeerStats {
	a.Sent += b.Sent
	a.Processed += b.Processed
	a.Retries += b.Retries
	a.Reconnects += b.Reconnects
	a.Redeliveries += b.Redeliveries
	a.Coalesced += b.Coalesced
	a.DupDropped += b.DupDropped
	a.Forwarded += b.Forwarded
	a.Misdropped += b.Misdropped
	a.EpochRejected += b.EpochRejected
	a.CreditStalls += b.CreditStalls
	a.ShedCoalesced += b.ShedCoalesced
	a.SlowPeer += b.SlowPeer
	a.DeltaShipped += b.DeltaShipped
	a.DeltaFolded += b.DeltaFolded
	return a
}

// Run starts every peer, waits for global quiescence (two consecutive
// probes with equal and unchanged sent/processed totals), collects the
// ranks, and shuts the cluster down. Peers may be killed, restarted,
// permanently removed and joined concurrently; quiescence is only
// declared once every update — including those parked in retry queues
// and those migrating between owners — has been folded.
func (c *Cluster) Run(timeout time.Duration) (ClusterResult, error) {
	start := time.Now()
	c.mu.Lock()
	c.started = true
	for _, p := range c.peers {
		if p != nil {
			p.Start()
		}
	}
	if c.cfg.Heartbeat > 0 {
		for i := range c.peers {
			if !c.left[i] {
				c.startDetectorLocked(i)
			}
		}
	}
	c.mu.Unlock()
	res := ClusterResult{}
	var prevSent, prevProcessed uint64 = ^uint64(0), ^uint64(0)
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("wire: no quiescence within %v", timeout)
		}
		sent, processed := c.counters()
		c.mProbes.Add(1)
		res.Probes++
		if sent == processed && sent == prevSent && processed == prevProcessed {
			res.Messages = sent
			break
		}
		prevSent, prevProcessed = sent, processed
		time.Sleep(5 * time.Millisecond)
	}

	res.Ranks = c.collectAll()
	st := c.stats()
	res.Retries = st.Retries
	res.Reconnects = st.Reconnects
	res.Redeliveries = st.Redeliveries
	res.Coalesced = st.Coalesced
	res.DupDropped = st.DupDropped
	res.DeltaShipped = st.DeltaShipped
	res.DeltaFolded = st.DeltaFolded
	res.Forwarded = st.Forwarded
	res.Misdropped = st.Misdropped
	res.Joins = c.mJoins.Load()
	res.Leaves = c.mLeaves.Load()
	res.Migrated = c.mMigrated.Load()
	res.EvictionsQuorum = c.mEvictQuorum.Load()
	res.EvictionsRefused = c.mEvictRefused.Load()
	res.EpochRejected = st.EpochRejected
	res.CreditStalls = st.CreditStalls
	res.ShedCoalesced = st.ShedCoalesced
	res.SlowPeer = st.SlowPeer
	res.Elapsed = time.Since(start)
	c.Close()
	return res, nil
}

// slotView is a consistent copy of the cluster's slot table.
type slotView struct {
	peers    []*Peer
	snaps    []*PeerSnapshot
	addrs    []string
	left     []bool
	departed PeerStats
}

func (c *Cluster) slots() slotView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return slotView{
		peers:    append([]*Peer(nil), c.peers...),
		snaps:    append([]*PeerSnapshot(nil), c.snaps...),
		addrs:    append([]string(nil), c.addrs...),
		left:     append([]bool(nil), c.left...),
		departed: c.departed,
	}
}

// counters sums every slot's (sent, processed): live peers over TCP
// (falling back to a direct read when the probe connection fails
// transiently), crashed peers from their frozen checkpoint, departed
// peers from the cluster accumulators.
func (c *Cluster) counters() (sent, processed uint64) {
	v := c.slots()
	sent, processed = v.departed.Sent, v.departed.Processed
	for i := range v.peers {
		if v.left[i] {
			continue
		}
		if v.peers[i] == nil {
			if v.snaps[i] != nil {
				sent += v.snaps[i].Sent
				processed += v.snaps[i].Processed
			}
			continue
		}
		s, pr, err := probePeer(c.cfg.Transport, v.addrs[i])
		if err != nil {
			s, pr = v.peers[i].Counters()
		}
		sent += s
		processed += pr
	}
	return
}

// collectAll gathers every document's rank: live peers over TCP,
// crashed peers from their checkpoint. Departed slots hold nothing —
// their documents were adopted by live slots.
func (c *Cluster) collectAll() []float64 {
	ranks := make([]float64, c.g.NumNodes())
	v := c.slots()
	for i := range v.peers {
		if v.peers[i] == nil {
			if v.snaps[i] != nil {
				for j, d := range v.snaps[i].Docs {
					ranks[d] = v.snaps[i].Rank[j]
				}
			}
			continue
		}
		if err := collectRanks(c.cfg.Transport, v.addrs[i], ranks); err != nil {
			docs, rs := v.peers[i].rk.snapshotRanks()
			for j, d := range docs {
				ranks[d] = rs[j]
			}
		}
	}
	return ranks
}

// stats sums every slot's counters, departed peers included.
func (c *Cluster) stats() PeerStats {
	v := c.slots()
	st := v.departed
	for i := range v.peers {
		switch {
		case v.peers[i] != nil:
			st = addStats(st, v.peers[i].Stats())
		case v.snaps[i] != nil:
			st = addStats(st, snapStats(v.snaps[i]))
		}
	}
	return st
}

// observerDial opens a short-lived observer connection (probes, rank
// collection, heartbeats) through the cluster's transport so nothing
// reaches around it, while fault injectors leave observer traffic
// clean.
func observerDial(tr Transport, addr string) (net.Conn, error) {
	if tr == nil {
		tr = TCPDialer()
	}
	return tr.Dial(Observer, Observer, addr)
}

// probeTimeout bounds every observer round-trip so a hung peer can
// never stall the termination probe or rank collection.
const probeTimeout = 5 * time.Second

func probePeer(tr Transport, addr string) (sent, processed uint64, err error) {
	conn, err := observerDial(tr, addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(probeTimeout))
	if err := writeFrame(conn, frameSnapReq, nil); err != nil {
		return 0, 0, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return 0, 0, err
	}
	if typ != frameSnapResp {
		return 0, 0, fmt.Errorf("wire: unexpected frame %c to probe", typ)
	}
	return decodeSnapshot(payload)
}

func collectRanks(tr Transport, addr string, out []float64) error {
	conn, err := observerDial(tr, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(probeTimeout))
	if err := writeFrame(conn, frameRanksReq, nil); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameRanks {
		return fmt.Errorf("wire: unexpected frame %c to rank request", typ)
	}
	_, err = decodeRanks(payload, out)
	return err
}

// Close stops the failure detectors, the debug listener (if any) and
// every peer.
func (c *Cluster) Close() {
	c.fdStop.Do(func() { close(c.fdQuit) })
	c.fdWg.Wait()
	c.mu.Lock()
	peers := append([]*Peer(nil), c.peers...)
	dbg := c.dbg
	c.dbg = nil
	c.mu.Unlock()
	if dbg != nil {
		dbg.Close()
	}
	for _, p := range peers {
		if p != nil {
			p.Close()
		}
	}
}

// TelemetrySnapshot merges every slot's registry (live, crashed and
// departed slots alike — a departed slot's registry holds its frozen
// final counters) with the cluster-level registry into one snapshot.
// Valid even after Close: registries are plain memory.
func (c *Cluster) TelemetrySnapshot() telemetry.Snapshot {
	c.mu.Lock()
	regs := append([]*telemetry.Registry(nil), c.regs...)
	c.mu.Unlock()
	snap := c.reg.Snapshot()
	for _, r := range regs {
		snap = snap.Merge(r.Snapshot())
	}
	return snap
}

// TelemetryText renders the merged snapshot in the /metrics exposition
// format.
func (c *Cluster) TelemetryText() string {
	var buf bytes.Buffer
	c.TelemetrySnapshot().RenderText(&buf)
	return buf.String()
}

// Trace exposes the cluster's convergence-event ring.
func (c *Cluster) Trace() *telemetry.Trace { return c.trace }

// DebugAddr reports the debug listener's bound address ("" when the
// listener is disabled or the cluster is closed).
func (c *Cluster) DebugAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dbg == nil {
		return ""
	}
	return c.dbg.Addr()
}

// NumPeers returns the number of slots ever allocated (departed slots
// included; they never come back).
func (c *Cluster) NumPeers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// NumLive returns the number of live (running, non-departed,
// non-fenced) peers.
func (c *Cluster) NumLive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i, p := range c.peers {
		if p != nil && !c.left[i] && !c.fenced[i] {
			n++
		}
	}
	return n
}

// DebugCounters sums the live counters without probing over TCP.
func (c *Cluster) DebugCounters() (sent, processed uint64) {
	v := c.slots()
	sent, processed = v.departed.Sent, v.departed.Processed
	for i := range v.peers {
		if v.left[i] {
			continue
		}
		if v.peers[i] == nil {
			if v.snaps[i] != nil {
				sent += v.snaps[i].Sent
				processed += v.snaps[i].Processed
			}
			continue
		}
		s, pr := v.peers[i].Counters()
		sent += s
		processed += pr
	}
	return
}
