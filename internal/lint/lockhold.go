package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkLockHold flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives
// (except non-blocking selects with a default case), net.Conn I/O,
// time.Sleep, WaitGroup.Wait and Cond.Wait, and dialing. Holding a
// lock across any of these lets one slow peer wedge every goroutine
// that touches the same mutex — the failure mode PR 2's wire layer
// was built to rule out.
//
// The analysis is lexical and per function: a critical section is
// the source range between `x.Lock()` and the first later
// `x.Unlock()` on the same expression in the same function scope
// (through the end of the function for `defer x.Unlock()`). Nested
// function literals are separate scopes — a goroutine body does not
// hold its spawner's lock. Interprocedural holds (a helper called
// with the lock held) are out of scope; the rule exists to keep
// critical sections short and obvious, and a helper that blocks is
// caught when it takes the same lock or does its own I/O.
func (p *pass) checkLockHold() {
	conn := p.netConnType()
	for _, scope := range p.funcScopes() {
		p.checkScopeLocks(scope, conn)
	}
}

// lockRegion is one critical section's source interval.
type lockRegion struct {
	key        string // rendering of the mutex expression ("p.mu")
	start, end token.Pos
	rlock      bool
}

func (p *pass) checkScopeLocks(scope funcScope, conn *types.Interface) {
	type openLock struct {
		key   string
		pos   token.Pos
		rlock bool
	}
	var open []openLock
	var regions []lockRegion
	end := scope.body.End()

	// Pass 1: collect critical sections from Lock/Unlock pairs in
	// source order.
	walkScope(scope.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if key, _, ok := p.mutexCall(n.Call, "Unlock", "RUnlock"); ok {
				for i := len(open) - 1; i >= 0; i-- {
					if open[i].key == key {
						regions = append(regions, lockRegion{key: key, start: open[i].pos, end: end, rlock: open[i].rlock})
						open = append(open[:i], open[i+1:]...)
						break
					}
				}
			}
			return false // a deferred call body runs at return, not here
		case *ast.CallExpr:
			if key, rlock, ok := p.mutexCall(n, "Lock", "RLock"); ok {
				open = append(open, openLock{key: key, pos: n.End(), rlock: rlock})
			} else if key, _, ok := p.mutexCall(n, "Unlock", "RUnlock"); ok {
				for i := len(open) - 1; i >= 0; i-- {
					if open[i].key == key {
						regions = append(regions, lockRegion{key: key, start: open[i].pos, end: n.Pos(), rlock: open[i].rlock})
						open = append(open[:i], open[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
	// Locks never released in this scope hold to the end of it.
	for _, o := range open {
		regions = append(regions, lockRegion{key: o.key, start: o.pos, end: end, rlock: o.rlock})
	}
	if len(regions) == 0 {
		return
	}

	held := func(pos token.Pos) (lockRegion, bool) {
		for _, r := range regions {
			if pos > r.start && pos < r.end {
				return r, true
			}
		}
		return lockRegion{}, false
	}

	// Pass 2: flag blocking operations inside any critical section.
	walkScope(scope.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				return false // non-blocking by construction
			}
		case *ast.SendStmt:
			if r, ok := held(n.Pos()); ok {
				p.report(RuleLockHold, n.Pos(), "channel send while holding %s", r.key)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if r, ok := held(n.Pos()); ok {
					p.report(RuleLockHold, n.Pos(), "channel receive while holding %s", r.key)
				}
			}
		case *ast.CallExpr:
			r, ok := held(n.Pos())
			if !ok {
				return true
			}
			if what := p.blockingCall(n, conn); what != "" {
				p.report(RuleLockHold, n.Pos(), "%s while holding %s", what, r.key)
			}
		}
		return true
	})
}

// mutexCall matches a call `X.name()` where X is a sync.Mutex or
// sync.RWMutex (possibly behind a pointer) and name is one of names.
// It returns the rendered receiver expression as the region key.
func (p *pass) mutexCall(call *ast.CallExpr, names ...string) (key string, rlock bool, ok bool) {
	x, rlock, ok := p.mutexCallX(call, names...)
	if !ok {
		return "", false, false
	}
	return types.ExprString(x), rlock, true
}

// mutexCallX is mutexCall returning the receiver expression itself,
// for callers (lockorder) that key sections by object identity rather
// than source rendering.
func (p *pass) mutexCallX(call *ast.CallExpr, names ...string) (x ast.Expr, rlock bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return nil, false, false
	}
	t := p.typeOf(sel.X)
	if t == nil || !isSyncMutex(t) {
		return nil, false, false
	}
	return sel.X, sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock", true
}

func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// blockingCall describes why a call blocks ("" when it does not).
func (p *pass) blockingCall(call *ast.CallExpr, conn *types.Interface) string {
	if p.isPkgFunc(call, "time", "Sleep") {
		return "time.Sleep"
	}
	pkgPath, name := p.calleePkg(call)
	if pkgPath == "sync" && name == "Wait" {
		return "sync Wait"
	}
	if pkgPath == "net" && (name == "Dial" || name == "DialTimeout" || name == "DialTCP" || name == "DialUDP") {
		return "net dial"
	}
	if pkgPath == "net/http" {
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "HTTP round-trip"
		}
	}
	if conn != nil {
		for _, op := range p.connOps(call, conn) {
			switch op.kind {
			case opRead:
				return "net.Conn read"
			case opWrite:
				return "net.Conn write"
			}
		}
	}
	return ""
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
