package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pass is the per-package analysis context handed to each analyzer.
type pass struct {
	cfg    Config
	loader *Loader
	pkg    *Package

	// suppress maps file -> line -> rules ignored on that line (from
	// //dpr:ignore comments; "*" means every rule). nodeadline maps
	// file -> line -> true for //dpr:nodeadline annotations.
	suppress   map[string]map[int][]string
	nodeadline map[string]map[int]bool

	diags []Diagnostic
}

// Run executes every configured analyzer over pkgs and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(loader *Loader, pkgs []*Package, cfg Config) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		p := &pass{cfg: cfg, loader: loader, pkg: pkg}
		p.collectAnnotations()
		if cfg.ruleEnabled(RuleDeterminism) && cfg.inScope(cfg.DeterministicPkgs, pkg.ImportPath) {
			p.checkDeterminism()
		}
		if cfg.ruleEnabled(RuleWireDeadline) && cfg.inScope(cfg.DeadlinePkgs, pkg.ImportPath) {
			p.checkDeadlines()
		}
		if cfg.ruleEnabled(RuleLockHold) && cfg.inScope(cfg.LockPkgs, pkg.ImportPath) {
			p.checkLockHold()
		}
		if cfg.ruleEnabled(RuleHotPath) {
			p.checkHotPath()
		}
		if cfg.ruleEnabled(RuleCounterFlow) {
			p.checkCounterFlow()
		}
		all = append(all, p.diags...)
	}
	sortDiagnostics(all)
	return all
}

// collectAnnotations scans every comment in the package for
// //dpr:ignore and //dpr:nodeadline markers.
func (p *pass) collectAnnotations() {
	p.suppress = make(map[string]map[int][]string)
	p.nodeadline = make(map[string]map[int]bool)
	for _, f := range p.pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				pos := p.loader.Fset.Position(c.Pos())
				if rest, ok := cutDirective(text, "dpr:ignore"); ok {
					rules := parseIgnoreList(rest)
					if len(rules) == 0 {
						rules = []string{"*"}
					}
					m := p.suppress[pos.Filename]
					if m == nil {
						m = make(map[int][]string)
						p.suppress[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], rules...)
				}
				if _, ok := cutDirective(text, "dpr:nodeadline"); ok {
					m := p.nodeadline[pos.Filename]
					if m == nil {
						m = make(map[int]bool)
						p.nodeadline[pos.Filename] = m
					}
					m[pos.Line] = true
				}
			}
		}
	}
}

// cutDirective matches a "//dpr:xxx" comment and returns what follows.
func cutDirective(comment, directive string) (rest string, ok bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	body = strings.TrimSpace(body)
	rest, ok = strings.CutPrefix(body, directive)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. dpr:ignorexyz
	}
	return strings.TrimSpace(rest), true
}

// suppressed reports whether rule is ignored at pos (same line or the
// line directly above).
func (p *pass) suppressed(rule string, pos token.Position) bool {
	m := p.suppress[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, r := range m[line] {
			if r == rule || r == "*" {
				return true
			}
		}
	}
	return false
}

// hasNoDeadline reports whether a //dpr:nodeadline annotation covers
// pos: same line, the line above, or the doc comment of fn.
func (p *pass) hasNoDeadline(pos token.Position, fn *ast.FuncDecl) bool {
	if m := p.nodeadline[pos.Filename]; m != nil && (m[pos.Line] || m[pos.Line-1]) {
		return true
	}
	if fn != nil && fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if _, ok := cutDirective(c.Text, "dpr:nodeadline"); ok {
				return true
			}
		}
	}
	return false
}

// report records a diagnostic unless an ignore comment covers it.
func (p *pass) report(rule string, pos token.Pos, format string, args ...interface{}) {
	position := p.loader.Fset.Position(pos)
	if p.suppressed(rule, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Rule:    rule,
		Message: sprintf(format, args...),
	})
}

// typeOf resolves an expression's type (nil when unknown).
func (p *pass) typeOf(e ast.Expr) types.Type {
	return p.pkg.Info.TypeOf(e)
}

// objectOf resolves an identifier's object via Uses then Defs.
func (p *pass) objectOf(id *ast.Ident) types.Object {
	if o := p.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.pkg.Info.Defs[id]
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func (p *pass) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.objectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleePkg returns the defining package path and name of a call's
// callee function or method ("", "" when not resolvable).
func (p *pass) calleePkg(call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", ""
	}
	fn, ok := p.objectOf(id).(*types.Func)
	if !ok {
		return "", ""
	}
	if fn.Pkg() == nil {
		return "", fn.Name()
	}
	return fn.Pkg().Path(), fn.Name()
}

// funcScopes yields every function scope in the package: each
// FuncDecl body and each FuncLit body, with nested literals excluded
// from the enclosing scope's statement walk (walkScope).
type funcScope struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func (p *pass) funcScopes() []funcScope {
	var scopes []funcScope
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scopes = append(scopes, funcScope{decl: fd, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					scopes = append(scopes, funcScope{decl: fd, lit: fl, body: fl.Body})
				}
				return true
			})
		}
	}
	return scopes
}

// walkScope visits every node in a scope's body without descending
// into nested function literals.
func walkScope(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

func sprintf(format string, args ...interface{}) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}
