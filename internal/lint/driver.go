package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// program is the module-wide analysis context: every loaded package,
// the annotation index (with per-suppression use tracking, so stale
// ignores can be reported), and — once an interprocedural rule asks
// for it — the static call graph.
type program struct {
	cfg    Config
	loader *Loader
	pkgs   []*Package

	anns  *annotations
	graph *callGraph // nil until buildCallGraph

	lockGraph *GraphDoc // populated by checkLockOrder

	diags []Diagnostic
}

// pass is the per-package analysis context handed to each
// single-package analyzer. It shares the program's annotation index
// and diagnostic sink.
type pass struct {
	prog   *program
	cfg    Config
	loader *Loader
	pkg    *Package
}

// Result is everything one analysis run produced: the findings plus
// the proof artifacts (call graph, lock-acquisition graph) that the
// interprocedural rules reasoned over.
type Result struct {
	Diags     []Diagnostic
	CallGraph *GraphDoc
	LockGraph *GraphDoc
}

// Run executes every configured analyzer over pkgs and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(loader *Loader, pkgs []*Package, cfg Config) []Diagnostic {
	return Analyze(loader, pkgs, cfg).Diags
}

// Analyze is Run plus the graph artifacts.
func Analyze(loader *Loader, pkgs []*Package, cfg Config) Result {
	prog := &program{cfg: cfg, loader: loader, pkgs: pkgs}
	prog.collectAnnotations()

	// Per-package rules.
	for _, pkg := range pkgs {
		p := &pass{prog: prog, cfg: cfg, loader: loader, pkg: pkg}
		if cfg.ruleEnabled(RuleDeterminism) && cfg.inScope(cfg.DeterministicPkgs, pkg.ImportPath) {
			p.checkDeterminism()
		}
		if cfg.ruleEnabled(RuleWireDeadline) && cfg.inScope(cfg.DeadlinePkgs, pkg.ImportPath) {
			p.checkDeadlines()
		}
		if cfg.ruleEnabled(RuleLockHold) && cfg.inScope(cfg.LockPkgs, pkg.ImportPath) {
			p.checkLockHold()
		}
		if cfg.ruleEnabled(RuleHotPath) {
			p.checkHotPath()
		}
		if cfg.ruleEnabled(RuleCounterFlow) {
			p.checkCounterFlow()
		}
		if cfg.ruleEnabled(RuleCodecSym) && cfg.inScope(cfg.CodecPkgs, pkg.ImportPath) {
			p.checkCodecSym()
		}
	}

	// Interprocedural rules share one call graph over every package.
	if cfg.ruleEnabled(RuleGoroutineLife) || cfg.ruleEnabled(RuleLockOrder) ||
		cfg.ruleEnabled(RuleHotPathTrans) {
		prog.buildCallGraph()
		if cfg.ruleEnabled(RuleGoroutineLife) {
			prog.checkGoroutineLife()
		}
		if cfg.ruleEnabled(RuleLockOrder) {
			prog.checkLockOrder()
		}
		if cfg.ruleEnabled(RuleHotPathTrans) {
			prog.checkHotPathTransitive()
		}
	}
	if cfg.ruleEnabled(RuleAtomicMix) {
		prog.checkAtomicMix()
	}
	prog.checkAnnotations()

	diags := append(prog.diags, loader.LoadDiagnostics()...)
	sortDiagnostics(diags)
	res := Result{Diags: diags, LockGraph: prog.lockGraph}
	if prog.graph != nil {
		res.CallGraph = prog.graph.doc(prog)
	}
	return res
}

// ignoreEntry is one //dpr:ignore comment. used flips when the entry
// actually suppresses a diagnostic; entries still false at the end of
// the run (for rules that ran) are themselves reported.
type ignoreEntry struct {
	file   string
	line   int
	pos    token.Pos
	rules  []string
	reason string
	used   bool
}

// annotations indexes every dpr: directive in the program.
type annotations struct {
	ignores    []*ignoreEntry
	byLine     map[string]map[int][]*ignoreEntry
	nodeadline map[string]map[int]bool
	detached   map[string]map[int]string // file -> line -> reason
}

// collectAnnotations scans every comment in every package for
// //dpr:ignore, //dpr:nodeadline and //dpr:detached markers.
func (prog *program) collectAnnotations() {
	a := &annotations{
		byLine:     make(map[string]map[int][]*ignoreEntry),
		nodeadline: make(map[string]map[int]bool),
		detached:   make(map[string]map[int]string),
	}
	prog.anns = a
	for _, pkg := range prog.pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					pos := prog.loader.Fset.Position(c.Pos())
					if rest, ok := cutDirective(text, "dpr:ignore"); ok {
						rules, reason := parseIgnore(rest)
						e := &ignoreEntry{
							file: pos.Filename, line: pos.Line, pos: c.Pos(),
							rules: rules, reason: reason,
						}
						a.ignores = append(a.ignores, e)
						m := a.byLine[pos.Filename]
						if m == nil {
							m = make(map[int][]*ignoreEntry)
							a.byLine[pos.Filename] = m
						}
						m[pos.Line] = append(m[pos.Line], e)
					}
					if _, ok := cutDirective(text, "dpr:nodeadline"); ok {
						m := a.nodeadline[pos.Filename]
						if m == nil {
							m = make(map[int]bool)
							a.nodeadline[pos.Filename] = m
						}
						m[pos.Line] = true
					}
					if rest, ok := cutDirective(text, "dpr:detached"); ok {
						m := a.detached[pos.Filename]
						if m == nil {
							m = make(map[int]string)
							a.detached[pos.Filename] = m
						}
						m[pos.Line] = rest
					}
				}
			}
		}
	}
}

// cutDirective matches a "//dpr:xxx" comment and returns what follows.
func cutDirective(comment, directive string) (rest string, ok bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	body = strings.TrimSpace(body)
	rest, ok = strings.CutPrefix(body, directive)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':' {
		return "", false // e.g. dpr:ignorexyz
	}
	return strings.TrimSpace(rest), true
}

// suppressed reports whether rule is ignored at pos (same line or the
// line directly above), marking any matching entry as used.
func (prog *program) suppressed(rule string, pos token.Position) bool {
	m := prog.anns.byLine[pos.Filename]
	if m == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, e := range m[line] {
			for _, r := range e.rules {
				if r == rule || r == "*" {
					e.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// detachedAt returns the //dpr:detached annotation covering pos (same
// line or the line above): found=false when absent, reason possibly
// empty when malformed.
func (prog *program) detachedAt(pos token.Position) (reason string, found bool) {
	m := prog.anns.detached[pos.Filename]
	if m == nil {
		return "", false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if r, ok := m[line]; ok {
			return r, true
		}
	}
	return "", false
}

// checkAnnotations enforces suppression hygiene (rule "ignore"):
// every //dpr:ignore names known rules and carries a reason, and every
// suppression whose rules all ran this pass must have suppressed
// something — a stale ignore is dead weight that hides future bugs.
func (prog *program) checkAnnotations() {
	if !prog.cfg.ruleEnabled(RuleIgnore) {
		return
	}
	known := func(rule string) bool {
		if rule == "*" {
			return true
		}
		for _, r := range AllRules {
			if r == rule {
				return true
			}
		}
		return false
	}
	for _, e := range prog.anns.ignores {
		bad := false
		for _, r := range e.rules {
			if !known(r) {
				prog.reportAt(RuleIgnore, e.pos,
					"//dpr:ignore names unknown rule %q (known: %s)", r, strings.Join(AllRules, ", "))
				bad = true
			}
		}
		if e.reason == "" {
			prog.reportAt(RuleIgnore, e.pos,
				"//dpr:ignore without a reason; write //dpr:ignore rule[,rule]: <why this finding is acceptable>")
			continue
		}
		if bad || e.used {
			continue
		}
		// Only call a suppression stale when every rule it names ran:
		// under -rules subsets an ignore for an unrun rule proves
		// nothing either way. Wildcards need the full rule set.
		ran := true
		for _, r := range e.rules {
			if r == "*" {
				ran = ran && len(prog.cfg.Rules) == 0
			} else {
				ran = ran && prog.cfg.ruleEnabled(r)
			}
		}
		if ran {
			prog.reportAt(RuleIgnore, e.pos,
				"unused //dpr:ignore suppression (%s): nothing was reported here; delete it",
				strings.Join(e.rules, ","))
		}
	}
}

// report records a diagnostic unless an ignore comment covers it.
func (prog *program) report(rule string, pos token.Pos, format string, args ...interface{}) {
	position := prog.loader.Fset.Position(pos)
	if prog.suppressed(rule, position) {
		return
	}
	prog.diags = append(prog.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Rule:    rule,
		Message: sprintf(format, args...),
	})
}

// reportAt records a diagnostic unconditionally (meta-rules are not
// themselves suppressible).
func (prog *program) reportAt(rule string, pos token.Pos, format string, args ...interface{}) {
	position := prog.loader.Fset.Position(pos)
	prog.diags = append(prog.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Rule:    rule,
		Message: sprintf(format, args...),
	})
}

// hasNoDeadline reports whether a //dpr:nodeadline annotation covers
// pos: same line, the line above, or the doc comment of fn.
func (p *pass) hasNoDeadline(pos token.Position, fn *ast.FuncDecl) bool {
	if m := p.prog.anns.nodeadline[pos.Filename]; m != nil && (m[pos.Line] || m[pos.Line-1]) {
		return true
	}
	if fn != nil && fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if _, ok := cutDirective(c.Text, "dpr:nodeadline"); ok {
				return true
			}
		}
	}
	return false
}

// report records a diagnostic unless an ignore comment covers it.
func (p *pass) report(rule string, pos token.Pos, format string, args ...interface{}) {
	p.prog.report(rule, pos, format, args...)
}

// typeOf resolves an expression's type (nil when unknown).
func (p *pass) typeOf(e ast.Expr) types.Type {
	return p.pkg.Info.TypeOf(e)
}

// objectOf resolves an identifier's object via Uses then Defs.
func (p *pass) objectOf(id *ast.Ident) types.Object {
	if o := p.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.pkg.Info.Defs[id]
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func (p *pass) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.objectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleePkg returns the defining package path and name of a call's
// callee function or method ("", "" when not resolvable).
func (p *pass) calleePkg(call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", ""
	}
	fn, ok := p.objectOf(id).(*types.Func)
	if !ok {
		return "", ""
	}
	if fn.Pkg() == nil {
		return "", fn.Name()
	}
	return fn.Pkg().Path(), fn.Name()
}

// funcScopes yields every function scope in the package: each
// FuncDecl body and each FuncLit body, with nested literals excluded
// from the enclosing scope's statement walk (walkScope).
type funcScope struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func (p *pass) funcScopes() []funcScope {
	var scopes []funcScope
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scopes = append(scopes, funcScope{decl: fd, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					scopes = append(scopes, funcScope{decl: fd, lit: fl, body: fl.Body})
				}
				return true
			})
		}
	}
	return scopes
}

// walkScope visits every node in a scope's body without descending
// into nested function literals.
func walkScope(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

func sprintf(format string, args ...interface{}) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

// sortStrings is sort.Strings, aliased so graph code reads plainly.
func sortStrings(s []string) { sort.Strings(s) }
