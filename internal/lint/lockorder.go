package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockEdgeKey identifies one acquisition-order edge: to is taken
// while from is held.
type lockEdgeKey struct{ from, to types.Object }

// lockEdgeInfo is the first witness recorded for an edge.
type lockEdgeInfo struct {
	pos  token.Pos
	via  *funcNode // callee carrying the acquisition; nil for direct
	kind string    // "direct" or "via-call"
}

// checkLockOrder builds the module-wide mutex-acquisition-order graph
// and fails on cycles. An edge A → B means some goroutine takes B
// while holding A — directly in one critical section, or through a
// synchronous call chain whose callee takes B. Two goroutines taking
// the same pair of locks in opposite orders is the classic inversion
// deadlock; keeping the graph acyclic rules it out by construction,
// which matters here because the wire slot path (Peer.mu → sender.mu)
// and the p2p membership path cross package boundaries where no
// single reviewer sees both orders.
//
// Held regions are collected lexically (the lockhold machinery) from
// functions in the LockPkgs packages; what a callee acquires is the
// transitive closure of its Lock/RLock calls over synchronous call
// edges into any loaded package. Go-spawned callees are excluded (the
// spawner's locks are not held on the new goroutine's stack — it has
// its own ordering obligations), as are nested literals when
// summarizing callees.
//
// The full graph — not just the cycles — is exported as the lockgraph
// artifact so reviewers can audit the order the code has implicitly
// committed to.
func (prog *program) checkLockOrder() {
	g := prog.graph
	acquires := g.propagate(prog.acquireFacts())

	edges := make(map[lockEdgeKey]lockEdgeInfo)
	labels := make(map[types.Object]string)
	var order []types.Object // first-seen order for determinism

	note := func(obj types.Object, label string) {
		if _, ok := labels[obj]; !ok {
			labels[obj] = label
			order = append(order, obj)
		}
	}
	addEdge := func(from, to types.Object, info lockEdgeInfo) {
		k := lockEdgeKey{from, to}
		if _, dup := edges[k]; !dup {
			edges[k] = info
		}
	}

	for _, pkg := range prog.pkgs {
		if !prog.cfg.inScope(prog.cfg.LockPkgs, pkg.ImportPath) {
			continue
		}
		p := &pass{prog: prog, cfg: prog.cfg, loader: prog.loader, pkg: pkg}
		for _, scope := range p.funcScopes() {
			regions := p.lockObjRegions(scope)
			if len(regions) == 0 {
				continue
			}
			for _, r := range regions {
				note(r.obj, r.label)
			}
			held := func(pos token.Pos) []objRegion {
				var hs []objRegion
				for _, r := range regions {
					if pos > r.start && pos < r.end {
						hs = append(hs, r)
					}
				}
				return hs
			}
			goCalls := make(map[*ast.CallExpr]bool)
			walkScope(scope.body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					goCalls[n.Call] = true
				case *ast.CallExpr:
					if x, _, ok := p.mutexCallX(n, "Lock", "RLock"); ok {
						obj := p.fieldOrVarObject(x)
						if obj == nil {
							return true
						}
						note(obj, lockLabel(p, x, obj))
						for _, h := range held(n.Pos()) {
							if h.obj != obj {
								addEdge(h.obj, obj, lockEdgeInfo{pos: n.Pos(), kind: "direct"})
							}
						}
						return true
					}
					if goCalls[n] {
						return true // spawned goroutine does not inherit held locks
					}
					callee := p.resolveCallee(g, n)
					if callee == nil {
						return true
					}
					hs := held(n.Pos())
					if len(hs) == 0 {
						return true
					}
					for key, f := range acquires[callee] {
						lo, ok := key.(types.Object)
						if !ok {
							continue
						}
						note(lo, lockFactLabel(acquires, key, f))
						for _, h := range hs {
							if h.obj != lo {
								addEdge(h.obj, lo, lockEdgeInfo{pos: n.Pos(), via: callee, kind: "via-call"})
							}
						}
					}
				}
				return true
			})
		}
	}

	prog.lockGraph = lockGraphDoc(prog, order, labels, edges)
	prog.reportLockCycles(order, labels, edges)
}

// lockFactLabel digs the label out of a propagated acquisition fact
// (the direct witness carries it in desc; inherited facts point back
// through via).
func lockFactLabel(acquires map[*funcNode]factSet, key any, f fact) string {
	for f.via != nil {
		f = acquires[f.via][key]
	}
	return f.desc
}

// acquireFacts collects, per function, the mutexes its body locks
// (decl scope only — nested literals run on their own schedule). The
// fact key is the mutex's types.Object; desc is its label.
func (prog *program) acquireFacts() map[*funcNode]factSet {
	direct := make(map[*funcNode]factSet)
	for _, n := range prog.graph.nodes {
		p := n.pass
		var set factSet
		walkScope(n.decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, _, ok := p.mutexCallX(call, "Lock", "RLock"); ok {
				if obj := p.fieldOrVarObject(recv); obj != nil {
					if set == nil {
						set = make(factSet)
					}
					if _, dup := set[obj]; !dup {
						set[obj] = fact{pos: call.Pos(), desc: lockLabel(p, recv, obj)}
					}
				}
			}
			return true
		})
		if set != nil {
			direct[n] = set
		}
	}
	return direct
}

// objRegion is a critical section keyed by the mutex object.
type objRegion struct {
	obj        types.Object
	label      string
	start, end token.Pos
}

// lockObjRegions is the object-identity analogue of checkScopeLocks'
// pass 1: the critical sections of one function scope.
func (p *pass) lockObjRegions(scope funcScope) []objRegion {
	type openLock struct {
		obj   types.Object
		label string
		pos   token.Pos
	}
	var open []openLock
	var regions []objRegion
	end := scope.body.End()

	unlockOf := func(call *ast.CallExpr) (types.Object, bool) {
		if x, _, ok := p.mutexCallX(call, "Unlock", "RUnlock"); ok {
			if obj := p.fieldOrVarObject(x); obj != nil {
				return obj, true
			}
		}
		return nil, false
	}
	closeRegion := func(obj types.Object, upto token.Pos) {
		for i := len(open) - 1; i >= 0; i-- {
			if open[i].obj == obj {
				regions = append(regions, objRegion{obj: obj, label: open[i].label, start: open[i].pos, end: upto})
				open = append(open[:i], open[i+1:]...)
				return
			}
		}
	}

	walkScope(scope.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj, ok := unlockOf(n.Call); ok {
				closeRegion(obj, end)
			}
			return false
		case *ast.CallExpr:
			if x, _, ok := p.mutexCallX(n, "Lock", "RLock"); ok {
				if obj := p.fieldOrVarObject(x); obj != nil {
					open = append(open, openLock{obj: obj, label: lockLabel(p, x, obj), pos: n.End()})
				}
			} else if obj, ok := unlockOf(n); ok {
				closeRegion(obj, n.Pos())
			}
		}
		return true
	})
	for _, o := range open {
		regions = append(regions, objRegion{obj: o.obj, label: o.label, start: o.pos, end: end})
	}
	return regions
}

// lockLabel renders a globally unique, stable label for a mutex
// object: "wire.Peer.mu" for fields, "wire.connMu" for package vars.
func lockLabel(p *pass, e ast.Expr, obj types.Object) string {
	base := p.ownerLabel(e, obj)
	if v, ok := obj.(*types.Var); ok && v.IsField() && obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + base
	}
	return base
}

// reportLockCycles finds strongly connected components of the
// acquisition graph and reports one diagnostic per cycle, with a
// concrete lock-by-lock path and the source witness of each hop.
func (prog *program) reportLockCycles(order []types.Object,
	labels map[types.Object]string, edges map[lockEdgeKey]lockEdgeInfo) {

	succ := make(map[types.Object][]types.Object)
	for k := range edges {
		succ[k.from] = append(succ[k.from], k.to)
	}
	for _, ss := range succ {
		sort.Slice(ss, func(i, j int) bool { return labels[ss[i]] < labels[ss[j]] })
	}

	// Tarjan's SCC, iterative. Every SCC with more than one node (or a
	// self-loop) contains at least one cycle.
	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	var sccs [][]types.Object
	next := 0

	type frame struct {
		v  types.Object
		ci int
	}
	var dfs func(root types.Object)
	dfs = func(root types.Object) {
		frames := []frame{{v: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ci == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ci < len(succ[v]) {
				w := succ[v][f.ci]
				f.ci++
				if _, seen := index[w]; !seen {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var scc []types.Object
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			dfs(v)
		}
	}

	for _, scc := range sccs {
		cyclic := len(scc) > 1
		if !cyclic {
			if _, self := edges[lockEdgeKey{scc[0], scc[0]}]; self {
				cyclic = true
			}
		}
		if !cyclic {
			continue
		}
		inSCC := make(map[types.Object]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		// Walk a concrete cycle: from the label-smallest member, always
		// take the label-smallest successor inside the SCC until a node
		// repeats.
		start := scc[0]
		for _, v := range scc {
			if labels[v] < labels[start] {
				start = v
			}
		}
		path := []types.Object{start}
		seen := map[types.Object]int{start: 0}
		for {
			v := path[len(path)-1]
			var nextHop types.Object
			found := false
			for _, w := range succ[v] {
				if inSCC[w] {
					nextHop = w
					found = true
					break
				}
			}
			if !found {
				break // defensive: SCC guarantees a successor
			}
			if at, dup := seen[nextHop]; dup {
				path = append(path[at:], nextHop)
				break
			}
			seen[nextHop] = len(path)
			path = append(path, nextHop)
		}
		if len(path) < 2 {
			continue
		}
		var hops []string
		var witness lockEdgeInfo
		for i := 0; i+1 < len(path); i++ {
			e := edges[lockEdgeKey{path[i], path[i+1]}]
			if i == 0 {
				witness = e
			}
			pos := prog.loader.Fset.Position(e.pos)
			hop := sprintf("%s → %s (%s:%d", labels[path[i]], labels[path[i+1]], shortFile(pos.Filename), pos.Line)
			if e.via != nil {
				hop += " via " + e.via.shortName()
			}
			hop += ")"
			hops = append(hops, hop)
		}
		prog.report(RuleLockOrder, witness.pos,
			"lock acquisition cycle: %s; impose one order (document it on the mutex fields) or split the critical sections",
			strings.Join(hops, ", "))
	}
}
