package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// checkCounterFlow keeps the mass-conservation accounting two-sided:
// any package that mutates a DeltaShipped-family counter (delta mass
// originated) must also mutate a DeltaFolded-family counter (delta
// mass consumed) somewhere in the same package. PR 2's invariant is
// DeltaShipped == DeltaFolded at quiescence; a package that ships
// mass it never folds (or that gained a new shipping path without the
// matching fold-side accounting) breaks the equation silently — the
// conservation check in tests then fails far from the cause.
//
// A "mutation" is an assignment or compound assignment whose
// left-hand side names the counter, an Add/Store call on it, an
// IncDec statement, or its address being taken as a call argument
// (the addFloat(&p.deltaOutBits, v) idiom).
func (p *pass) checkCounterFlow() {
	var shipped []mutation
	folded := 0
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			for _, m := range p.counterMutations(n) {
				switch m.family {
				case familyShipped:
					shipped = append(shipped, m)
				case familyFolded:
					folded++
				}
			}
			return true
		})
	}
	if folded > 0 {
		return
	}
	for _, m := range shipped {
		p.report(RuleCounterFlow, m.pos,
			"%s mutates shipped-mass counter %q but package %s never mutates a folded-mass (DeltaFolded-family) counter; conservation (shipped == folded) cannot hold",
			m.how, m.name, p.pkg.Types.Name())
	}
}

type counterFamily int

const (
	familyNone counterFamily = iota
	familyShipped
	familyFolded
)

type mutation struct {
	family counterFamily
	name   string
	how    string
	pos    token.Pos
}

// familyOf classifies a counter name: the shipped family covers
// DeltaShipped/deltaOut* spellings, the folded family
// DeltaFolded/deltaIn*.
func familyOf(name string) counterFamily {
	lower := strings.ToLower(name)
	if !strings.Contains(lower, "delta") {
		return familyNone
	}
	rest := lower[strings.Index(lower, "delta")+len("delta"):]
	switch {
	case strings.HasPrefix(rest, "shipped"), strings.HasPrefix(rest, "out"):
		return familyShipped
	case strings.HasPrefix(rest, "folded"), strings.HasPrefix(rest, "in"):
		return familyFolded
	}
	return familyNone
}

// counterName extracts the final name of an expression that could
// denote a counter (identifier or field selector).
func counterName(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	}
	return "", false
}

// counterMutations classifies one AST node's counter mutations.
func (p *pass) counterMutations(n ast.Node) []mutation {
	var ms []mutation
	add := func(e ast.Expr, how string, pos token.Pos) {
		name, ok := counterName(e)
		if !ok {
			return
		}
		if fam := familyOf(name); fam != familyNone {
			ms = append(ms, mutation{family: fam, name: name, how: how, pos: pos})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.DEFINE {
			return nil // new variable, not a counter write
		}
		for _, lhs := range n.Lhs {
			add(lhs, "assignment", n.Pos())
		}
	case *ast.IncDecStmt:
		add(n.X, "increment", n.Pos())
	case *ast.CallExpr:
		// counter.Add(v) / counter.Store(v): the receiver is the
		// selector's X, e.g. p.deltaOutBits.Add — X renders as
		// p.deltaOutBits whose Sel is the counter name.
		if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Add" || sel.Sel.Name == "Store" {
				add(sel.X, sel.Sel.Name+" call", n.Pos())
			}
		}
		// f(&counter, ...): address escaping into a mutator.
		for _, arg := range n.Args {
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				add(u.X, "address-taken argument", n.Pos())
			}
		}
	}
	return ms
}
