package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoroutineLife proves that every goroutine spawned in the
// goroutine-scoped packages (wire, p2p) is joined on shutdown. PR 2's
// exactly-once delivery and PR 3's leak checks both depend on
// goroutines actually exiting when their owner shuts down: a sender
// loop that outlives its peer keeps retransmitting into a dead
// cluster, and a leaked acceptLoop holds its listener forever.
//
// The proof obligation for each `go` statement is two-sided:
//
//  1. the spawned body must signal its exit — call Done() on a
//     sync.WaitGroup (directly or through synchronous callees) or
//     close() a channel field;
//  2. that same WaitGroup must be Wait()ed (or that channel received
//     from) in a function reachable from a shutdown root: a method
//     named Close, Stop, Shutdown or Kill (any case) anywhere in the
//     loaded program, following synchronous call edges only — a
//     goroutine spawned *by* Close does not count as Close waiting.
//
// A goroutine that intentionally outlives its spawner carries
// `//dpr:detached <reason>` on the go statement; the reason is
// mandatory.
func (prog *program) checkGoroutineLife() {
	g := prog.graph
	signals := g.propagate(prog.signalFacts())
	waiters, recvers := prog.joinSites()
	reach := g.reachableFrom(prog.shutdownRoots())

	joined := func(key any) (string, bool) {
		switch k := key.(type) {
		case wgKey:
			for _, n := range waiters[k.obj] {
				if reach[n] {
					return "", true
				}
			}
			return "WaitGroup " + k.label + " is never Wait()ed on a shutdown path", false
		case chanKey:
			for _, n := range recvers[k.obj] {
				if reach[n] {
					return "", true
				}
			}
			return "done channel " + k.label + " is never received on a shutdown path", false
		}
		return "", false
	}

	for _, pkg := range prog.pkgs {
		if !prog.cfg.inScope(prog.cfg.GoroutinePkgs, pkg.ImportPath) {
			continue
		}
		p := &pass{prog: prog, cfg: prog.cfg, loader: prog.loader, pkg: pkg}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				prog.checkGoStmt(p, g, gs, signals, joined)
				return true
			})
		}
	}
}

// checkGoStmt audits one go statement against the join obligations.
func (prog *program) checkGoStmt(p *pass, g *callGraph, gs *ast.GoStmt,
	signals map[*funcNode]factSet, joined func(any) (string, bool)) {

	pos := prog.loader.Fset.Position(gs.Pos())
	if reason, found := prog.detachedAt(pos); found {
		if reason == "" {
			prog.report(RuleGoroutineLife, gs.Pos(),
				"//dpr:detached requires a reason: //dpr:detached <why this goroutine may outlive shutdown>")
		}
		return
	}

	// What does the spawned body signal on exit?
	var body factSet
	what := "func literal"
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		body = p.litSignals(g, lit, signals)
	} else if callee := p.resolveCallee(g, gs.Call); callee != nil {
		body = signals[callee]
		what = callee.shortName()
	} else {
		prog.report(RuleGoroutineLife, gs.Pos(),
			"go statement spawns a dynamic callee the analyzer cannot resolve; restructure to a direct call or annotate //dpr:detached <reason>")
		return
	}

	if len(body) == 0 {
		prog.report(RuleGoroutineLife, gs.Pos(),
			"goroutine %s never signals its exit (no WaitGroup.Done or close(done) on any path); join it from the owner's Close/Stop path or annotate //dpr:detached <reason>", what)
		return
	}
	var firstWhy string
	for key := range body {
		why, ok := joined(key)
		if ok {
			return // provably joined through this signal
		}
		if firstWhy == "" || why < firstWhy {
			firstWhy = why
		}
	}
	prog.report(RuleGoroutineLife, gs.Pos(),
		"goroutine %s signals its exit but is never joined: %s (reachable shutdown roots: Close/Stop/Shutdown/Kill); annotate //dpr:detached <reason> if this is intentional", what, firstWhy)
}

// wgKey identifies a WaitGroup field/variable; chanKey a channel.
type wgKey struct {
	obj   types.Object
	label string
}
type chanKey struct {
	obj   types.Object
	label string
}

// signalFacts collects, per function, the WaitGroups it Done()s and
// the channels it close()s — anywhere in the body, nested literals
// included (deferred literals are the classic Done idiom).
func (prog *program) signalFacts() map[*funcNode]factSet {
	direct := make(map[*funcNode]factSet)
	for _, n := range prog.graph.nodes {
		set := make(factSet)
		collectSignals(n.pass, n.decl.Body, set)
		if len(set) > 0 {
			direct[n] = set
		}
	}
	return direct
}

// litSignals computes the signal set of a spawned function literal:
// its own body plus everything its resolved synchronous callees
// signal.
func (p *pass) litSignals(g *callGraph, lit *ast.FuncLit, signals map[*funcNode]factSet) factSet {
	set := make(factSet)
	collectSignals(p, lit.Body, set)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := p.resolveCallee(g, call); callee != nil {
			for k, f := range signals[callee] {
				if _, dup := set[k]; !dup {
					set[k] = fact{pos: call.Pos(), via: callee, desc: f.desc}
				}
			}
		}
		return true
	})
	return set
}

// collectSignals records Done() calls on WaitGroups and close() of
// channel fields/variables found under root.
func collectSignals(p *pass, root ast.Node, set factSet) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if isWaitGroup(p.typeOf(sel.X)) {
				if obj := p.fieldOrVarObject(sel.X); obj != nil {
					label := p.ownerLabel(sel.X, obj)
					set[wgKey{obj, label}] = fact{pos: call.Pos(), desc: label + ".Done()"}
				}
			}
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
			if _, builtin := p.objectOf(id).(*types.Builtin); builtin {
				if obj := p.fieldOrVarObject(call.Args[0]); obj != nil {
					if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
						label := p.ownerLabel(call.Args[0], obj)
						set[chanKey{obj, label}] = fact{pos: call.Pos(), desc: "close(" + label + ")"}
					}
				}
			}
		}
		return true
	})
}

// joinSites indexes, module-wide, which functions Wait() on each
// WaitGroup and which receive from each channel object.
func (prog *program) joinSites() (waiters, recvers map[types.Object][]*funcNode) {
	waiters = make(map[types.Object][]*funcNode)
	recvers = make(map[types.Object][]*funcNode)
	for _, n := range prog.graph.nodes {
		p := n.pass
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroup(p.typeOf(sel.X)) {
					if obj := p.fieldOrVarObject(sel.X); obj != nil {
						waiters[obj] = append(waiters[obj], n)
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if obj := p.fieldOrVarObject(x.X); obj != nil {
						recvers[obj] = append(recvers[obj], n)
					}
				}
			case *ast.RangeStmt:
				if _, isChan := typeUnderlying(p.typeOf(x.X)).(*types.Chan); isChan {
					if obj := p.fieldOrVarObject(x.X); obj != nil {
						recvers[obj] = append(recvers[obj], n)
					}
				}
			}
			return true
		})
	}
	return waiters, recvers
}

// shutdownRoots returns every function whose name marks it as part of
// a teardown path.
func (prog *program) shutdownRoots() []*funcNode {
	var roots []*funcNode
	for _, n := range prog.graph.nodes {
		switch n.obj.Name() {
		case "Close", "close", "Stop", "stop", "Shutdown", "shutdown", "Kill", "kill":
			roots = append(roots, n)
		}
	}
	return roots
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
