package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGoroutineLifeFixture(t *testing.T) {
	checkWants(t, "goroutinelife", loadFixture(t, "goroutinelife", RuleGoroutineLife))
}

func TestLockOrderFixture(t *testing.T) {
	checkWants(t, "lockorder", loadFixture(t, "lockorder", RuleLockOrder))
}

func TestAtomicMixFixture(t *testing.T) {
	checkWants(t, "atomicmix", loadFixture(t, "atomicmix", RuleAtomicMix))
}

func TestCodecSymFixture(t *testing.T) {
	checkWants(t, "codecsym", loadFixture(t, "codecsym", RuleCodecSym))
}

func TestCodecSymVersionWindowFixture(t *testing.T) {
	checkWants(t, "codecsymver", loadFixture(t, "codecsymver", RuleCodecSym))
}

func TestCodecSymFloorFixture(t *testing.T) {
	checkWants(t, "codecsymfloor", loadFixture(t, "codecsymfloor", RuleCodecSym))
}

func TestHotPathTransitiveFixture(t *testing.T) {
	checkWants(t, "hotpathtrans", loadFixture(t, "hotpathtrans", RuleHotPathTrans))
}

// TestIgnoreHygieneFixture runs with every rule enabled (the unused-
// suppression check only fires when the named rules actually ran).
func TestIgnoreHygieneFixture(t *testing.T) {
	ip := "fixture/ignorehygiene"
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "ignorehygiene"), ip)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	cfg := Config{DeterministicPkgs: []string{ip}}
	checkWants(t, "ignorehygiene", Run(loader, []*Package{pkg}, cfg))
}

// TestAnalyzeGraphArtifacts pins the artifact contract: an Analyze
// run with the interprocedural rules enabled returns both graphs,
// deterministically sorted, with the edges the fixtures establish.
func TestAnalyzeGraphArtifacts(t *testing.T) {
	ip := "fixture/lockorder"
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "lockorder"), ip)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	cfg := Config{LockPkgs: []string{ip}, GoroutinePkgs: []string{ip}}
	res := Analyze(loader, []*Package{pkg}, cfg)
	if res.CallGraph == nil || res.LockGraph == nil {
		t.Fatalf("expected both graph artifacts, got call=%v lock=%v", res.CallGraph, res.LockGraph)
	}
	if res.CallGraph.Name != "callgraph" || res.LockGraph.Name != "lockgraph" {
		t.Fatalf("artifact names = %q, %q", res.CallGraph.Name, res.LockGraph.Name)
	}
	if len(res.CallGraph.Nodes) == 0 || len(res.CallGraph.Edges) == 0 {
		t.Fatal("call graph is empty")
	}
	for i := 1; i < len(res.LockGraph.Edges); i++ {
		a, b := res.LockGraph.Edges[i-1], res.LockGraph.Edges[i]
		if a.From > b.From || (a.From == b.From && a.To > b.To) {
			t.Fatalf("lock graph edges not sorted: %v before %v", a, b)
		}
	}
	wantEdge := func(from, to, kind string) {
		t.Helper()
		for _, e := range res.LockGraph.Edges {
			if e.From == from && e.To == to && e.Kind == kind {
				return
			}
		}
		t.Errorf("lock graph missing edge %s -> %s (%s); have %v", from, to, kind, res.LockGraph.Edges)
	}
	wantEdge("lockorder.pair.a", "lockorder.pair.b", "direct")
	wantEdge("lockorder.pair.b", "lockorder.pair.a", "direct")
	wantEdge("lockorder.vc.x", "lockorder.vc.y", "via-call")
	dot := res.LockGraph.Dot()
	if !strings.Contains(dot, "digraph \"lockgraph\"") || !strings.Contains(dot, "lockorder.pair.a") {
		t.Fatalf("dot rendering malformed:\n%s", dot)
	}
}

// writeModule materializes a throwaway module for loader robustness
// tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const testGoMod = "module brokenmod\n\ngo 1.22\n"

// TestLoadSurvivesParseError: a file that does not parse produces a
// "load" diagnostic, and the rest of the module still loads and
// lints.
func TestLoadSurvivesParseError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":           testGoMod,
		"bad/broken.go":    "package bad\n\nfunc oops( {\n",
		"bad/fine.go":      "package bad\n\nfunc ok() int { return 1 }\n",
		"good/good.go":     "package good\n\nfunc fine() {}\n",
	})
	loader := NewLoader()
	pkgs, err := loader.LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule should survive a parse error, got: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	if want := "brokenmod/good"; !containsString(paths, want) {
		t.Fatalf("loaded packages %v, want at least %s", paths, want)
	}
	diags := Run(loader, pkgs, Config{})
	if !hasLoadDiag(diags, "does not parse") {
		t.Fatalf("expected a 'does not parse' load diagnostic, got %v", diags)
	}
}

// TestLoadSurvivesTypeError: a package that fails type-checking is
// dropped with diagnostics; sibling packages still lint.
func TestLoadSurvivesTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":          testGoMod,
		"broken/bad.go":   "package broken\n\nfunc f() int { return undefinedName }\n",
		"good/good.go":    "package good\n\nfunc fine() {}\n",
	})
	loader := NewLoader()
	pkgs, err := loader.LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule should survive a type error, got: %v", err)
	}
	for _, p := range pkgs {
		if p.ImportPath == "brokenmod/broken" {
			t.Fatal("type-broken package should have been dropped")
		}
	}
	diags := Run(loader, pkgs, Config{})
	if !hasLoadDiag(diags, "type error") {
		t.Fatalf("expected a 'type error' load diagnostic, got %v", diags)
	}
}

// TestLoadSurvivesExcludedPackage: a package whose files are all
// excluded by build constraints is diagnosed, not fatal.
func TestLoadSurvivesExcludedPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        testGoMod,
		"skip/skip.go":  "//go:build never_enabled_tag\n\npackage skip\n\nfunc f() {}\n",
		"good/good.go":  "package good\n\nfunc fine() {}\n",
	})
	loader := NewLoader()
	pkgs, err := loader.LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule should survive an excluded package, got: %v", err)
	}
	for _, p := range pkgs {
		if p.ImportPath == "brokenmod/skip" {
			t.Fatal("excluded package should not be in the analysis set")
		}
	}
	diags := Run(loader, pkgs, Config{})
	if !hasLoadDiag(diags, "no files matching the host build configuration") {
		t.Fatalf("expected a build-configuration load diagnostic, got %v", diags)
	}
}

// TestParseIgnore pins the suppression grammar.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		body   string
		rules  []string
		reason string
	}{
		{"lockhold: deadline bounds the hold", []string{"lockhold"}, "deadline bounds the hold"},
		{"lockhold,hotpath: shared scratch", []string{"lockhold", "hotpath"}, "shared scratch"},
		{"*: everything justified", []string{"*"}, "everything justified"},
		{": reason with empty rules", []string{"*"}, "reason with empty rules"},
		{"lockhold", []string{"lockhold"}, ""},
		{"lockhold legacy trailing words", []string{"lockhold"}, ""},
		{"", []string{"*"}, ""},
	}
	for _, c := range cases {
		rules, reason := parseIgnore(c.body)
		if strings.Join(rules, "|") != strings.Join(c.rules, "|") || reason != c.reason {
			t.Errorf("parseIgnore(%q) = %v, %q; want %v, %q", c.body, rules, reason, c.rules, c.reason)
		}
	}
}

func containsString(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func hasLoadDiag(diags []Diagnostic, substr string) bool {
	for _, d := range diags {
		if d.Rule == RuleLoad && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}
