package lint

import (
	"go/ast"
	"go/types"
)

// checkHotPath enforces the allocation-free contract of functions
// annotated //dpr:hotpath — the PR-1 pass pipeline's per-edge code,
// whose whole point is that warm passes allocate nothing.
//
// Flagged constructs:
//
//   - make / new calls
//   - map and slice composite literals
//   - function literals (closures allocate, and capturing loop state
//     by reference forces heap escapes)
//   - append whose base is nil or a fresh literal (growth with no
//     reusable capacity behind it)
//   - fmt.* calls (interface boxing of every operand)
//   - string concatenation and string<->[]byte conversions
//   - go statements (a goroutine per call is not a warm-path move)
//
// Appending into engine-owned, capacity-reused slices (out.held =
// append(out.held, d)) is the pipeline's designed idiom and stays
// legal: the guard targets constructs that allocate on every pass,
// not amortized growth into pooled scratch.
func (p *pass) checkHotPath() {
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.isHotPath(fd) {
				continue
			}
			p.checkHotFunc(fd)
		}
	}
}

// isHotPath reports whether fn's doc comment carries //dpr:hotpath.
func (p *pass) isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if _, ok := cutDirective(c.Text, "dpr:hotpath"); ok {
			return true
		}
	}
	return false
}

func (p *pass) checkHotFunc(fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.report(RuleHotPath, n.Pos(), "closure in hot-path function %s allocates", name)
			return false
		case *ast.GoStmt:
			p.report(RuleHotPath, n.Pos(), "go statement in hot-path function %s spawns per call", name)
		case *ast.CompositeLit:
			t := p.typeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.report(RuleHotPath, n.Pos(), "map literal in hot-path function %s allocates", name)
			case *types.Slice:
				p.report(RuleHotPath, n.Pos(), "slice literal in hot-path function %s allocates", name)
			}
		case *ast.CallExpr:
			p.checkHotCall(fn, n)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(p.typeOf(n)) {
				p.report(RuleHotPath, n.Pos(), "string concatenation in hot-path function %s allocates", name)
			}
		}
		return true
	})
}

func (p *pass) checkHotCall(fn *ast.FuncDecl, call *ast.CallExpr) {
	name := fn.Name.Name
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := p.objectOf(id).(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				p.report(RuleHotPath, call.Pos(), "make in hot-path function %s allocates", name)
			case "new":
				p.report(RuleHotPath, call.Pos(), "new in hot-path function %s allocates", name)
			case "append":
				if len(call.Args) > 0 && isFreshBase(call.Args[0]) {
					p.report(RuleHotPath, call.Pos(),
						"append to a fresh slice in hot-path function %s grows without preallocated capacity", name)
				}
			}
			return
		}
	}
	if pkgPath, _ := p.calleePkg(call); pkgPath == "fmt" {
		p.report(RuleHotPath, call.Pos(), "fmt call in hot-path function %s allocates and boxes", name)
	}
	// string([]byte) / []byte(string) conversions.
	if tv, ok := p.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := p.typeOf(call.Fun), p.typeOf(call.Args[0])
		if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
			p.report(RuleHotPath, call.Pos(), "string/[]byte conversion in hot-path function %s copies", name)
		}
	}
}

// isFreshBase reports append bases with no capacity behind them: nil
// or a composite literal.
func isFreshBase(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// append(T(nil), ...) style conversions
		if len(e.Args) == 1 {
			return isFreshBase(e.Args[0])
		}
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
