// Package lint is dprlint: a from-scratch static-analysis pass that
// enforces this repository's cross-cutting invariants — the ones the
// compiler cannot see and `go vet` does not know about.
//
// The analyzers encode contracts established by earlier PRs:
//
//   - determinism: the deterministic packages (rng, graph, core,
//     chaotic, simnet, experiments) must be bit-reproducible from a
//     seed. Global math/rand, time.Now and map-iteration-ordered
//     writes to ordered outputs are forbidden there.
//   - wiredeadline: every net.Conn read/write in internal/wire must be
//     covered by a Set{Read,Write}Deadline in the same function, so a
//     hung peer surfaces as an error instead of a stuck goroutine.
//   - lockhold: no channel operations, connection I/O or blocking
//     calls while a sync.Mutex/RWMutex is held in the wire and p2p
//     packages.
//   - hotpath: functions annotated //dpr:hotpath (the sharded pass
//     pipeline) may not contain allocating constructs.
//   - counterflow: a package that mutates a DeltaShipped-family
//     counter must also mutate a DeltaFolded-family counter, keeping
//     the mass-conservation accounting two-sided.
//
// On top of those per-package checks sits an interprocedural engine
// (callgraph.go): a static call graph over every loaded package, with
// transitive summaries (which locks a call acquires, which WaitGroups
// it signals, whether it allocates) and shutdown-path reachability.
// Five rules use it:
//
//   - goroutinelife: every `go` statement in the wire/p2p packages
//     must be provably joined — its body signals a WaitGroup (Done)
//     or closes a done channel that some Close/Stop/Shutdown/Kill
//     path waits on — or carry `//dpr:detached <reason>`.
//   - lockorder: the module-wide mutex-acquisition graph (lock A held
//     while lock B is taken, directly or through call edges) must be
//     acyclic, ruling out lock-inversion deadlocks across the wire
//     and p2p slot paths.
//   - atomicmix: a field ever accessed through sync/atomic (or typed
//     atomic.X) must never be read or written plainly.
//   - codecsym: every encodeX has a bounds-checked decodeX, every
//     wire codec is exercised by a fuzz target, and the checkpoint
//     decoder keeps accepting every snapshot version back to the
//     compatibility floor.
//   - hotpath-transitive: a //dpr:hotpath function may not call a
//     callee (transitively) that allocates.
//
// Diagnostics print as "file:line: [rule] message". A diagnostic is
// suppressed by a `//dpr:ignore rule[,rule]: reason` comment on the
// same line or the line directly above; the reason is mandatory, and
// a suppression that no longer suppresses anything is itself an error
// (rule "ignore"), so stale ignores rot visibly. The wiredeadline
// rule alternatively accepts `//dpr:nodeadline <reason>` (same
// placement, or in the enclosing function's doc comment) for
// connections whose lifetime is bounded some other way, and
// goroutinelife accepts `//dpr:detached <reason>` on a go statement
// whose goroutine intentionally outlives its spawner's shutdown path.
//
// Everything here is built on go/parser, go/types and go/ast alone —
// no analysis frameworks, matching the repository's from-scratch
// ethos.
package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Rule names, used in diagnostics and //dpr:ignore comments.
const (
	RuleDeterminism  = "determinism"
	RuleWireDeadline = "wiredeadline"
	RuleLockHold     = "lockhold"
	RuleHotPath      = "hotpath"
	RuleCounterFlow  = "counterflow"

	// Interprocedural rules, built on the call-graph engine.
	RuleGoroutineLife = "goroutinelife"
	RuleLockOrder     = "lockorder"
	RuleAtomicMix     = "atomicmix"
	RuleCodecSym      = "codecsym"
	RuleHotPathTrans  = "hotpath-transitive"

	// Meta rules: annotation hygiene and load-stage failures.
	RuleIgnore = "ignore"
	RuleLoad   = "load"
)

// AllRules lists every rule in reporting order.
var AllRules = []string{
	RuleDeterminism, RuleWireDeadline, RuleLockHold, RuleHotPath, RuleCounterFlow,
	RuleGoroutineLife, RuleLockOrder, RuleAtomicMix, RuleCodecSym, RuleHotPathTrans,
	RuleIgnore,
}

// Diagnostic is one finding.
type Diagnostic struct {
	File    string // path as parsed (absolute or loader-relative)
	Line    int
	Column  int
	Rule    string
	Message string
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// Config scopes the analyzers to the packages whose contracts they
// enforce. Paths are matched exactly against package import paths.
type Config struct {
	// DeterministicPkgs are the packages under the bit-reproducibility
	// contract (rule: determinism).
	DeterministicPkgs []string

	// DeadlinePkgs are the packages under the wire-deadline discipline
	// (rule: wiredeadline).
	DeadlinePkgs []string

	// LockPkgs are the packages under lock hygiene (rules: lockhold,
	// lockorder — the acquisition-order graph is rooted here, but its
	// call edges follow helpers into any loaded package).
	LockPkgs []string

	// GoroutinePkgs are the packages whose go statements must be
	// provably joined on shutdown (rule: goroutinelife).
	GoroutinePkgs []string

	// CodecPkgs are the packages under encoder/decoder symmetry and
	// fuzz-coverage discipline (rule: codecsym).
	CodecPkgs []string

	// Rules optionally restricts which rules run; empty means all.
	Rules []string
}

// DefaultConfig returns the scoping for this repository's module.
func DefaultConfig(module string) Config {
	p := func(s string) string { return module + "/" + s }
	return Config{
		DeterministicPkgs: []string{
			p("internal/rng"), p("internal/graph"), p("internal/core"),
			p("internal/chaotic"), p("internal/simnet"), p("internal/experiments"),
			p("internal/telemetry"), p("internal/csr"),
			p("internal/solver"), p("internal/search"), p("internal/netmodel"),
			p("internal/engine"), p("internal/race"),
		},
		DeadlinePkgs:  []string{p("internal/wire")},
		LockPkgs:      []string{p("internal/wire"), p("internal/p2p")},
		GoroutinePkgs: []string{p("internal/wire"), p("internal/p2p")},
		CodecPkgs:     []string{p("internal/wire")},
	}
}

func (c Config) inScope(list []string, importPath string) bool {
	for _, p := range list {
		if p == importPath {
			return true
		}
	}
	return false
}

func (c Config) ruleEnabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// sortDiagnostics orders findings by file, line, column, rule.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Rule < b.Rule
	})
}

// parseIgnore parses a //dpr:ignore comment body of the form
// "rule1,rule2: reason" ("*" or an empty rule list means every rule).
// The reason is everything after the first colon; reason == "" means
// the annotation is malformed, which the ignore meta-rule reports.
func parseIgnore(body string) (rules []string, reason string) {
	rulePart := strings.TrimSpace(body)
	if i := strings.Index(body, ":"); i >= 0 {
		rulePart = strings.TrimSpace(body[:i])
		reason = strings.TrimSpace(body[i+1:])
	} else {
		// Legacy form without a reason: treat the first space-separated
		// token as the rule list so the suppression still applies (one
		// actionable "missing reason" finding, not a cascade).
		rulePart = strings.SplitN(rulePart, " ", 2)[0]
	}
	for _, f := range strings.Split(rulePart, ",") {
		if f = strings.TrimSpace(f); f != "" {
			rules = append(rules, f)
		}
	}
	if len(rules) == 0 {
		rules = []string{"*"}
	}
	return rules, reason
}
