// Package lint is dprlint: a from-scratch static-analysis pass that
// enforces this repository's cross-cutting invariants — the ones the
// compiler cannot see and `go vet` does not know about.
//
// The analyzers encode contracts established by earlier PRs:
//
//   - determinism: the deterministic packages (rng, graph, core,
//     chaotic, simnet, experiments) must be bit-reproducible from a
//     seed. Global math/rand, time.Now and map-iteration-ordered
//     writes to ordered outputs are forbidden there.
//   - wiredeadline: every net.Conn read/write in internal/wire must be
//     covered by a Set{Read,Write}Deadline in the same function, so a
//     hung peer surfaces as an error instead of a stuck goroutine.
//   - lockhold: no channel operations, connection I/O or blocking
//     calls while a sync.Mutex/RWMutex is held in the wire and p2p
//     packages.
//   - hotpath: functions annotated //dpr:hotpath (the sharded pass
//     pipeline) may not contain allocating constructs.
//   - counterflow: a package that mutates a DeltaShipped-family
//     counter must also mutate a DeltaFolded-family counter, keeping
//     the mass-conservation accounting two-sided.
//
// Diagnostics print as "file:line: [rule] message". A diagnostic is
// suppressed by a `//dpr:ignore rule[,rule]` comment on the same line
// or the line directly above; the wiredeadline rule alternatively
// accepts `//dpr:nodeadline <reason>` (same placement, or in the
// enclosing function's doc comment) for connections whose lifetime is
// bounded some other way.
//
// Everything here is built on go/parser, go/types and go/ast alone —
// no analysis frameworks, matching the repository's from-scratch
// ethos.
package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Rule names, used in diagnostics and //dpr:ignore comments.
const (
	RuleDeterminism  = "determinism"
	RuleWireDeadline = "wiredeadline"
	RuleLockHold     = "lockhold"
	RuleHotPath      = "hotpath"
	RuleCounterFlow  = "counterflow"
)

// AllRules lists every rule in reporting order.
var AllRules = []string{
	RuleDeterminism, RuleWireDeadline, RuleLockHold, RuleHotPath, RuleCounterFlow,
}

// Diagnostic is one finding.
type Diagnostic struct {
	File    string // path as parsed (absolute or loader-relative)
	Line    int
	Column  int
	Rule    string
	Message string
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// Config scopes the analyzers to the packages whose contracts they
// enforce. Paths are matched exactly against package import paths.
type Config struct {
	// DeterministicPkgs are the packages under the bit-reproducibility
	// contract (rule: determinism).
	DeterministicPkgs []string

	// DeadlinePkgs are the packages under the wire-deadline discipline
	// (rule: wiredeadline).
	DeadlinePkgs []string

	// LockPkgs are the packages under lock hygiene (rule: lockhold).
	LockPkgs []string

	// Rules optionally restricts which rules run; empty means all.
	Rules []string
}

// DefaultConfig returns the scoping for this repository's module.
func DefaultConfig(module string) Config {
	p := func(s string) string { return module + "/" + s }
	return Config{
		DeterministicPkgs: []string{
			p("internal/rng"), p("internal/graph"), p("internal/core"),
			p("internal/chaotic"), p("internal/simnet"), p("internal/experiments"),
			p("internal/telemetry"), p("internal/csr"),
		},
		DeadlinePkgs: []string{p("internal/wire")},
		LockPkgs:     []string{p("internal/wire"), p("internal/p2p")},
	}
}

func (c Config) inScope(list []string, importPath string) bool {
	for _, p := range list {
		if p == importPath {
			return true
		}
	}
	return false
}

func (c Config) ruleEnabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// sortDiagnostics orders findings by file, line, column, rule.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Rule < b.Rule
	})
}

// parseIgnoreList parses the rule list of a //dpr:ignore comment body
// ("rule1,rule2 optional reason...").
func parseIgnoreList(body string) []string {
	body = strings.TrimSpace(body)
	if body == "" {
		return nil
	}
	fields := strings.FieldsFunc(strings.SplitN(body, " ", 2)[0], func(r rune) bool {
		return r == ','
	})
	var rules []string
	for _, f := range fields {
		if f = strings.TrimSpace(f); f != "" {
			rules = append(rules, f)
		}
	}
	return rules
}
