package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The call-graph engine. Interprocedural rules (goroutinelife,
// lockorder, hotpath-transitive) need to reason about what happens
// *behind* a call: does this callee acquire a lock, signal a
// WaitGroup, allocate? The engine builds one static call graph over
// every loaded package and computes transitive fact summaries over
// it.
//
// Resolution is intentionally conservative and purely static:
//
//   - direct calls and method calls on concrete types resolve to
//     their declarations (one node per FuncDecl with a body);
//   - calls through interface values, function-typed variables and
//     fields do not resolve — no edge, so facts behind them are
//     invisible. The concurrency rules treat "cannot resolve" as
//     "cannot prove" where that matters (goroutinelife) and as
//     "assume silent" where flagging would drown the signal
//     (lockorder, hotpath-transitive);
//   - a call spawned with `go` is recorded but excluded from
//     same-goroutine fact propagation (the spawner does not hold its
//     locks, pay its allocations, or block on it), and excluded from
//     shutdown-path reachability (Close spawning a goroutine is not
//     Close waiting on one);
//   - calls inside nested function literals are attributed to the
//     enclosing declaration for reachability (the literal usually
//     runs there — sync.Once.Do, defer) but excluded from lock and
//     allocation summaries, where assuming it runs synchronously
//     would manufacture false positives.
type callGraph struct {
	nodes []*funcNode
	byObj map[*types.Func]*funcNode
}

// funcNode is one declared function or method with a body.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	pass *pass // per-package type info helper

	calls []callSite
}

// callSite is one resolved static call edge.
type callSite struct {
	callee *funcNode
	pos    token.Pos
	viaGo  bool // spawned with a go statement
	inLit  bool // occurs inside a nested function literal
}

// name returns the node's fully qualified name for artifacts and
// diagnostics, e.g. "dpr/internal/wire.(*Peer).stop".
func (n *funcNode) name() string { return n.obj.FullName() }

// buildCallGraph constructs the module call graph over prog.pkgs.
func (prog *program) buildCallGraph() {
	if prog.graph != nil {
		return
	}
	g := &callGraph{byObj: make(map[*types.Func]*funcNode)}
	prog.graph = g

	passes := make(map[*Package]*pass)
	for _, pkg := range prog.pkgs {
		passes[pkg] = &pass{prog: prog, cfg: prog.cfg, loader: prog.loader, pkg: pkg}
	}

	// Register every declared function first, so forward and
	// cross-package references resolve regardless of order.
	for _, pkg := range prog.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{obj: obj, decl: fd, pkg: pkg, pass: passes[pkg]}
				g.byObj[obj] = node
				g.nodes = append(g.nodes, node)
			}
		}
	}

	// Resolve call edges.
	for _, n := range g.nodes {
		n.collectCalls(g)
	}
}

// collectCalls walks the node's body resolving every call expression.
func (n *funcNode) collectCalls(g *callGraph) {
	goCalls := make(map[*ast.CallExpr]bool)
	var walk func(node ast.Node, inLit bool)
	walk = func(node ast.Node, inLit bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if node != x {
					walk(x.Body, true)
					return false
				}
			case *ast.GoStmt:
				goCalls[x.Call] = true
			case *ast.CallExpr:
				if callee := n.pass.resolveCallee(g, x); callee != nil {
					n.calls = append(n.calls, callSite{
						callee: callee,
						pos:    x.Pos(),
						viaGo:  goCalls[x],
						inLit:  inLit,
					})
				}
			}
			return true
		})
	}
	walk(n.decl.Body, false)
}

// resolveCallee maps a call expression to its static callee node
// (nil for builtins, stdlib, interface dispatch, func values).
func (p *pass) resolveCallee(g *callGraph, call *ast.CallExpr) *funcNode {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr: // generic instantiation
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	obj, ok := p.objectOf(id).(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[obj]
}

// reachableFrom returns every node reachable from roots through
// synchronous call edges (go-spawns excluded, literal-attributed
// calls included).
func (g *callGraph) reachableFrom(roots []*funcNode) map[*funcNode]bool {
	seen := make(map[*funcNode]bool)
	stack := append([]*funcNode(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.calls {
			if c.viaGo || seen[c.callee] {
				continue
			}
			seen[c.callee] = true
			stack = append(stack, c.callee)
		}
	}
	return seen
}

// fact is one propagated property of a function: either observed
// directly in its body (via == nil; pos/desc locate it) or inherited
// from a callee (via != nil; pos is the call site).
type fact struct {
	pos  token.Pos
	desc string
	via  *funcNode
}

// factSet maps fact keys (rule-chosen: a lock object, a WaitGroup
// object, the allocation marker) to their witness.
type factSet map[any]fact

// propagate computes the transitive closure of per-function facts
// over same-goroutine call edges: a function has every fact of every
// callee it invokes synchronously outside nested literals. direct is
// not mutated; the result maps every node with at least one fact.
func (g *callGraph) propagate(direct map[*funcNode]factSet) map[*funcNode]factSet {
	// callers[m] lists (caller, call site) pairs for propagation.
	type callerEdge struct {
		caller *funcNode
		pos    token.Pos
	}
	callers := make(map[*funcNode][]callerEdge)
	for _, n := range g.nodes {
		for _, c := range n.calls {
			if c.viaGo || c.inLit {
				continue
			}
			callers[c.callee] = append(callers[c.callee], callerEdge{caller: n, pos: c.pos})
		}
	}

	result := make(map[*funcNode]factSet, len(direct))
	var work []*funcNode
	for n, fs := range direct {
		set := make(factSet, len(fs))
		for k, f := range fs {
			set[k] = f
		}
		result[n] = set
		work = append(work, n)
	}
	// Deterministic worklist order keeps witness chains stable.
	sort.Slice(work, func(i, j int) bool { return work[i].name() < work[j].name() })
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, ce := range callers[n] {
			set := result[ce.caller]
			if set == nil {
				set = make(factSet)
				result[ce.caller] = set
			}
			changed := false
			for k := range result[n] {
				if _, ok := set[k]; !ok {
					set[k] = fact{pos: ce.pos, via: n}
					changed = true
				}
			}
			if changed {
				work = append(work, ce.caller)
			}
		}
	}
	return result
}

// witnessChain renders a fact's provenance: "via a.b → c.d: desc at
// file:line". The via links always terminate (a fact is installed at
// most once per node, inherited only from nodes that had it first).
func (prog *program) witnessChain(facts map[*funcNode]factSet, key any, f fact) string {
	var hops []string
	for f.via != nil {
		hops = append(hops, f.via.shortName())
		f = facts[f.via][key]
	}
	pos := prog.loader.Fset.Position(f.pos)
	s := sprintf("%s at %s:%d", f.desc, shortFile(pos.Filename), pos.Line)
	if len(hops) > 0 {
		s = "via " + joinArrow(hops) + ": " + s
	}
	return s
}

// shortName renders pkg-local naming for messages: "(*Peer).stop".
func (n *funcNode) shortName() string {
	if sig, ok := n.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" }) + ")." + n.obj.Name()
	}
	return n.obj.Name()
}

func joinArrow(hops []string) string {
	s := ""
	for i, h := range hops {
		if i > 0 {
			s += " → "
		}
		s += h
	}
	return s
}

// shortFile trims a path to its final two elements for messages.
func shortFile(path string) string {
	slash := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			slash++
			if slash == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}

// fieldOrVarObject resolves an expression denoting a field or
// package/local variable (possibly a chained selector like s.p.wg)
// to its canonical object, or nil.
func (p *pass) fieldOrVarObject(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return p.fieldOrVarObject(e.X)
	case *ast.Ident:
		if v, ok := p.objectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := p.objectOf(e.Sel).(*types.Var); ok {
			return v
		}
	}
	return nil
}

// ownerLabel renders a stable human label for a field or variable
// object: "Type.field" for struct fields (via the selector's receiver
// type), "pkg.var" for package-level variables, "func.var" locals.
func (p *pass) ownerLabel(e ast.Expr, obj types.Object) string {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		t := p.typeOf(sel.X)
		if t != nil {
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + obj.Name()
			}
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
