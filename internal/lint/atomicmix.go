package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkAtomicMix enforces all-or-nothing atomicity per variable,
// module-wide. Mixing sync/atomic operations with plain loads and
// stores on the same word is a data race the race detector only
// catches when the interleaving actually happens; statically, the
// rule is simple — once any access to a field or variable is atomic,
// every access must be:
//
//   - a raw word passed to sync/atomic functions (&x with
//     atomic.AddUint64 etc.) may appear only as such an argument;
//   - a variable of an atomic box type (atomic.Bool, atomic.Int64,
//     atomic.Value, atomic.Pointer[T]) may only be used as a method
//     receiver — copying the box or reaching into it defeats it.
//     Taking its address is allowed (that is how a box is passed),
//     and struct-embedding is not distinguishable from use, so only
//     value-copy contexts (assignment, composite literal value,
//     argument, return, comparison) are flagged.
func (prog *program) checkAtomicMix() {
	// Phase 1: find every object passed raw to a sync/atomic function.
	rawAtomics := make(map[types.Object]bool)
	for _, pkg := range prog.pkgs {
		p := &pass{prog: prog, cfg: prog.cfg, loader: prog.loader, pkg: pkg}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkgPath, _ := p.calleePkg(call); pkgPath != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
						if obj := p.fieldOrVarObject(un.X); obj != nil {
							rawAtomics[obj] = true
						}
					}
				}
				return true
			})
		}
	}

	// Phase 2: audit every mention of a raw-atomic or atomic-typed
	// object against the legal contexts.
	for _, pkg := range prog.pkgs {
		p := &pass{prog: prog, cfg: prog.cfg, loader: prog.loader, pkg: pkg}
		for _, f := range pkg.Files {
			parents := parentMap(f)
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[id] // Uses only: skip declarations
				if obj == nil {
					return true
				}
				// Only variables and fields are tracked: a mention of the
				// atomic *type name* (field declarations, conversions) is
				// not an access.
				if _, isVar := obj.(*types.Var); !isVar {
					return true
				}
				raw := rawAtomics[obj]
				boxed := !raw && isAtomicBoxType(obj.Type())
				if !raw && !boxed {
					return true
				}
				// The mention is the widest selector ending at id.
				var m ast.Expr = id
				if sel, ok := parents[m].(*ast.SelectorExpr); ok && sel.Sel == id {
					m = sel
				}
				ctx := parents[m]
				for {
					if pe, ok := ctx.(*ast.ParenExpr); ok {
						ctx = parents[pe]
						continue
					}
					break
				}
				if raw {
					if !legalRawContext(p, parents, m, ctx) {
						prog.report(RuleAtomicMix, id.Pos(),
							"%s is accessed with sync/atomic elsewhere but read/written plainly here; every access must go through sync/atomic",
							p.ownerLabel(m, obj))
					}
				} else if !legalBoxContext(parents, m, ctx) {
					prog.report(RuleAtomicMix, id.Pos(),
						"atomic-typed %s used as a plain value; call its Load/Store/Add/CompareAndSwap methods instead",
						p.ownerLabel(m, obj))
				}
				return true
			})
		}
	}
}

// legalRawContext reports whether mention m (context ctx) is the
// &m-argument-to-sync/atomic pattern.
func legalRawContext(p *pass, parents map[ast.Node]ast.Node, m ast.Expr, ctx ast.Node) bool {
	un, ok := ctx.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	outer := parents[un]
	for {
		if pe, ok := outer.(*ast.ParenExpr); ok {
			outer = parents[pe]
			continue
		}
		break
	}
	call, ok := outer.(*ast.CallExpr)
	if !ok {
		return false
	}
	pkgPath, _ := p.calleePkg(call)
	return pkgPath == "sync/atomic"
}

// legalBoxContext reports whether mention m (context ctx) of an
// atomic box is a method-call receiver, an address-of, or a selector
// step on the way to one.
func legalBoxContext(parents map[ast.Node]ast.Node, m ast.Expr, ctx ast.Node) bool {
	switch c := ctx.(type) {
	case *ast.SelectorExpr:
		// m.Load(...), or a deeper selector chain step: legal as long as
		// the selector is being called. A selector that merely reads a
		// promoted field through the box would be caught at that field's
		// own mention.
		if c.X == m {
			outer := parents[c]
			for {
				if pe, ok := outer.(*ast.ParenExpr); ok {
					outer = parents[pe]
					continue
				}
				break
			}
			if call, ok := outer.(*ast.CallExpr); ok && call.Fun == c {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return c.Op == token.AND // passing the box by pointer
	}
	return false
}

// isAtomicBoxType reports whether t is (a pointer to) one of the
// sync/atomic box types.
func isAtomicBoxType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// parentMap records each node's syntactic parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
