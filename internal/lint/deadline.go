package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkDeadlines enforces the wire-deadline discipline: every
// net.Conn read or write in a deadline-scoped package must share a
// function with a SetReadDeadline/SetWriteDeadline/SetDeadline call
// (the repo's idiom arms the deadline immediately around the I/O), or
// carry a //dpr:nodeadline annotation explaining why the connection's
// lifetime is bounded some other way.
//
// A "read" is a .Read call on a net.Conn-typed expression or a
// net.Conn passed into a parameter whose interface has a Read method
// (io.Reader — this is how readFrame/writeFrame consume conns); a
// "write" is the mirror image. Reads are satisfied by SetReadDeadline
// or SetDeadline, writes by SetWriteDeadline or SetDeadline. The
// same-function approximation of dominance is deliberate: the wire
// package arms deadlines beside its I/O, and a deadline armed in a
// different function is exactly the hard-to-audit pattern this rule
// exists to surface.
func (p *pass) checkDeadlines() {
	conn := p.netConnType()
	if conn == nil {
		return
	}
	for _, scope := range p.funcScopes() {
		if scope.lit != nil {
			continue // literals are audited as part of their declaring function
		}
		fn := scope.decl
		var reads, writes []connOp
		var armedRead, armedWrite bool
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, op := range p.connOps(call, conn) {
				switch op.kind {
				case opRead:
					reads = append(reads, op)
				case opWrite:
					writes = append(writes, op)
				case opArmRead:
					armedRead = true
				case opArmWrite:
					armedWrite = true
				case opArmBoth:
					armedRead, armedWrite = true, true
				}
			}
			return true
		})
		for _, op := range reads {
			if armedRead {
				continue
			}
			if p.hasNoDeadline(p.loader.Fset.Position(op.pos), fn) {
				continue
			}
			p.report(RuleWireDeadline, op.pos,
				"net.Conn read in %s without SetReadDeadline in the same function (annotate //dpr:nodeadline <reason> if the conn's lifetime is bounded elsewhere)",
				fn.Name.Name)
		}
		for _, op := range writes {
			if armedWrite {
				continue
			}
			if p.hasNoDeadline(p.loader.Fset.Position(op.pos), fn) {
				continue
			}
			p.report(RuleWireDeadline, op.pos,
				"net.Conn write in %s without SetWriteDeadline in the same function (annotate //dpr:nodeadline <reason> if the conn's lifetime is bounded elsewhere)",
				fn.Name.Name)
		}
	}
}

type connOpKind int

const (
	opRead connOpKind = iota
	opWrite
	opArmRead
	opArmWrite
	opArmBoth
)

type connOp struct {
	kind connOpKind
	pos  token.Pos
}

// netConnType resolves the net.Conn interface from the loader's
// standard-library importer (nil if unavailable).
func (p *pass) netConnType() *types.Interface {
	netPkg, err := p.loader.StdImport("net")
	if err != nil {
		return nil
	}
	obj := netPkg.Scope().Lookup("Conn")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsConn reports whether t satisfies net.Conn. The invalid
// type (e.g. a package-name identifier in a qualified call like
// binary.Write) must be rejected explicitly: a pointer to it
// vacuously satisfies every interface.
func implementsConn(t types.Type, conn *types.Interface) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.Invalid {
		return false
	}
	return types.Implements(t, conn) || types.Implements(types.NewPointer(t), conn)
}

// connOps classifies one call expression's connection operations:
// direct Read/Write/deadline methods on a conn-typed receiver, plus
// conn-typed arguments flowing into Reader/Writer parameters.
func (p *pass) connOps(call *ast.CallExpr, conn *types.Interface) []connOp {
	var ops []connOp
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && implementsConn(p.typeOf(sel.X), conn) {
		switch sel.Sel.Name {
		case "Read":
			ops = append(ops, connOp{opRead, call.Pos()})
		case "Write":
			ops = append(ops, connOp{opWrite, call.Pos()})
		case "SetReadDeadline":
			ops = append(ops, connOp{opArmRead, call.Pos()})
		case "SetWriteDeadline":
			ops = append(ops, connOp{opArmWrite, call.Pos()})
		case "SetDeadline":
			ops = append(ops, connOp{opArmBoth, call.Pos()})
		}
	}
	sig, _ := p.typeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return ops
	}
	for i, arg := range call.Args {
		if !implementsConn(p.typeOf(arg), conn) {
			continue
		}
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		iface, ok := param.(*types.Interface)
		if !ok {
			if named, isNamed := param.(*types.Named); isNamed {
				iface, ok = named.Underlying().(*types.Interface)
			}
			if !ok {
				continue
			}
		}
		// A conn-shaped parameter (it can arm its own deadlines) means
		// the conn is being handed over, not read or written here; the
		// callee's own body is subject to this rule instead.
		if ifaceHasMethod(iface, "SetDeadline") || ifaceHasMethod(iface, "SetReadDeadline") {
			continue
		}
		if ifaceHasMethod(iface, "Read") {
			ops = append(ops, connOp{opRead, arg.Pos()})
		}
		if ifaceHasMethod(iface, "Write") {
			ops = append(ops, connOp{opWrite, arg.Pos()})
		}
	}
	return ops
}

func ifaceHasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}
