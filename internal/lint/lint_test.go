package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture packages under testdata/src/<name> declare their expected
// diagnostics inline with backtick-quoted `// want` comments. Each
// want is a regular expression matched (unanchored) against the
// "[rule] message" rendering of a diagnostic reported on that line;
// every diagnostic must match a want and every want must be matched.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// loadFixture type-checks testdata/src/<name> under the import path
// fixture/<name>, scoped into every rule list but restricted to the
// single rule under test, mirroring how DefaultConfig scopes the real
// module.
func loadFixture(t *testing.T, name, rule string) []Diagnostic {
	t.Helper()
	ip := "fixture/" + name
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name), ip)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	cfg := Config{
		DeterministicPkgs: []string{ip},
		DeadlinePkgs:      []string{ip},
		LockPkgs:          []string{ip},
		GoroutinePkgs:     []string{ip},
		CodecPkgs:         []string{ip},
		Rules:             []string{rule},
	}
	return Run(loader, []*Package{pkg}, cfg)
}

func checkWants(t *testing.T, name string, diags []Diagnostic) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*want)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				k := key{path, i + 1}
				wants[k] = append(wants[k], &want{re: re})
			}
		}
	}
	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
		matched := false
		for _, w := range wants[key{d.File, d.Line}] {
			if !w.matched && w.re.MatchString(rendered) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want `%s`", k.file, k.line, w.re)
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkWants(t, "determinism", loadFixture(t, "determinism", RuleDeterminism))
}

func TestWireDeadlineFixture(t *testing.T) {
	checkWants(t, "wiredeadline", loadFixture(t, "wiredeadline", RuleWireDeadline))
}

func TestLockHoldFixture(t *testing.T) {
	checkWants(t, "lockhold", loadFixture(t, "lockhold", RuleLockHold))
}

func TestHotPathFixture(t *testing.T) {
	checkWants(t, "hotpath", loadFixture(t, "hotpath", RuleHotPath))
}

// TestTelemetrySnapFixture pins the determinism rule's coverage of
// snapshot rendering: exposition output or point lists built inside a
// range over a map are flagged, the sorted-keys form is clean. The
// live internal/telemetry package is in DeterministicPkgs, so
// TestRepoLintsClean holds it to exactly this standard.
func TestTelemetrySnapFixture(t *testing.T) {
	checkWants(t, "telemetrysnap", loadFixture(t, "telemetrysnap", RuleDeterminism))
}

func TestCounterFlowFixture(t *testing.T) {
	checkWants(t, "counterflow", loadFixture(t, "counterflow", RuleCounterFlow))
}

func TestCounterFlowBalancedFixture(t *testing.T) {
	if diags := loadFixture(t, "counterflowbalanced", RuleCounterFlow); len(diags) != 0 {
		t.Fatalf("balanced package should report nothing, got %v", diags)
	}
}

// TestRepoLintsClean is the gate's own gate: the repository must
// satisfy every invariant dprlint enforces (modulo the annotated,
// justified exceptions).
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := filepath.Join("..", "..")
	loader := NewLoader()
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	module, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(loader, pkgs, DefaultConfig(module)) {
		t.Errorf("repository violates its own invariants: %s", d)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "x.go", Line: 7, Column: 3, Rule: RuleHotPath, Message: "boom"}
	if got, want := d.String(), "x.go:7: [hotpath] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestCutDirective(t *testing.T) {
	cases := []struct {
		comment, directive, rest string
		ok                       bool
	}{
		{"//dpr:ignore lockhold reason", "dpr:ignore", "lockhold reason", true},
		{"// dpr:nodeadline why", "dpr:nodeadline", "why", true},
		{"//dpr:ignore", "dpr:ignore", "", true},
		{"//dpr:ignorexyz", "dpr:ignore", "", false},
		{"// plain comment", "dpr:ignore", "", false},
	}
	for _, c := range cases {
		rest, ok := cutDirective(c.comment, c.directive)
		if ok != c.ok || rest != c.rest {
			t.Errorf("cutDirective(%q, %q) = %q, %v; want %q, %v",
				c.comment, c.directive, rest, ok, c.rest, c.ok)
		}
	}
}

func TestFamilyOf(t *testing.T) {
	cases := []struct {
		name string
		fam  counterFamily
	}{
		{"DeltaShipped", familyShipped},
		{"deltaOutBits", familyShipped},
		{"DeltaFolded", familyFolded},
		{"deltaInBits", familyFolded},
		{"delta", familyNone},
		{"shipped", familyNone},
		{"totalRank", familyNone},
	}
	for _, c := range cases {
		if got := familyOf(c.name); got != c.fam {
			t.Errorf("familyOf(%q) = %v, want %v", c.name, got, c.fam)
		}
	}
}
