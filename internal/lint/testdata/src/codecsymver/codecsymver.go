// Package codecsymver exercises the snapshot-version window check: a
// decode path must exist for every version between the floor and the
// current constant.
package codecsymver

import "fmt"

const (
	kSnapMinVersion = 1
	kSnapVersion    = 3 // want `no decode path mentions snapshot version 2`
)

func decodeSnap(b []byte) (int, error) {
	if len(b) < 1 {
		return 0, fmt.Errorf("codecsymver: empty snapshot")
	}
	v := int(b[0])
	if v < kSnapMinVersion || v > kSnapVersion {
		return 0, fmt.Errorf("codecsymver: unsupported version %d", v)
	}
	if v >= 3 {
		_ = b[1:]
	}
	// Version 2's extension block is never read: the window check
	// catches the hole.
	return v, nil
}
