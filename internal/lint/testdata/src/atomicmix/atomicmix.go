// Package atomicmix exercises the all-or-nothing atomicity rule: a
// variable accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere.
package atomicmix

import "sync/atomic"

// ctr is raw-atomic: incremented via AddUint64, so the plain ++ in
// mixed is a race.
var ctr uint64

func incr() {
	atomic.AddUint64(&ctr, 1)
}

func mixed() uint64 {
	ctr++ // want `accessed with sync/atomic elsewhere`
	return atomic.LoadUint64(&ctr)
}

// counter's field is raw-atomic through one method and plain through
// another.
type counter struct {
	n uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) read() uint64 {
	return c.n // want `accessed with sync/atomic elsewhere`
}

// box wraps a typed atomic: method calls and address-taking are the
// only legal uses.
type box struct {
	flag atomic.Bool
}

func flip(b *box) bool {
	b.flag.Store(true)
	return b.flag.Load()
}

func ptr(b *box) *atomic.Bool {
	return &b.flag
}

func badCopy(b *box) {
	consume(b.flag) // want `used as a plain value`
}

func consume(atomic.Bool) {}

// plain is never touched atomically, so ordinary access stays legal.
var plain uint64

func bump() uint64 {
	plain++
	return plain
}
