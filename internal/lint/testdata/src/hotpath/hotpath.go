// Package hotpath is a dprlint fixture: every allocating construct
// the //dpr:hotpath guard flags, the reuse idiom it permits, and an
// unannotated function where the same constructs pass.
package hotpath

import "fmt"

type engine struct {
	buf   []int
	names []string
}

func (e *engine) drain() {}

// hot carries the annotation, so everything allocating inside it is a
// violation.
//
//dpr:hotpath
func (e *engine) hot(v int, s string) {
	m := make(map[int]int) // want `make in hot-path function hot allocates`
	m[v] = v
	xs := []int{v} // want `slice literal in hot-path function hot allocates`
	e.buf = append(e.buf, xs...)
	mm := map[int]int{} // want `map literal in hot-path function hot allocates`
	mm[v] = v
	fmt.Println(v)                      // want `fmt call in hot-path function hot allocates`
	tmp := append([]int(nil), e.buf...) // want `append to a fresh slice in hot-path function hot`
	e.buf = tmp
	s2 := s + "!" // want `string concatenation in hot-path function hot allocates`
	b := []byte(s2) // want `conversion in hot-path function hot copies`
	_ = b
	go e.drain()   // want `go statement in hot-path function hot spawns per call`
	f := func() {} // want `closure in hot-path function hot allocates`
	f()
	p := new(engine) // want `new in hot-path function hot allocates`
	_ = p
	// Appending into engine-owned, capacity-reused storage is the
	// pipeline's designed idiom and stays legal.
	e.buf = append(e.buf, v)
	//dpr:ignore hotpath setup path, runs once per topology change
	e.names = append([]string(nil), s)
}

// cold has no annotation: identical constructs pass.
func (e *engine) cold(v int) {
	m := make(map[int]int)
	m[v] = v
	go e.drain()
}
