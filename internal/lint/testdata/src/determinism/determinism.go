// Package determinism is a dprlint fixture: every construct the
// determinism rule forbids in a bit-reproducible package, next to the
// sanctioned spelling of each.
package determinism

import (
	"fmt"
	"math/rand" // want `import of math/rand in deterministic package`
	"sort"
	"time"
)

func draw() int { return rand.Int() }

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func emit(m map[string]int, sink chan<- string) {
	for k := range m {
		sink <- k // want `channel send inside range over map`
	}
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map`
	}
	return keys
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `ordered output written inside range over map`
	}
}

// sortedKeys collects then sorts, so the map's iteration order never
// reaches the caller; the collection append is suppressed explicitly.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		//dpr:ignore determinism keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perIterationScratch appends only to a slice declared inside the
// loop body, which cannot leak iteration order.
func perIterationScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var batch []int
		batch = append(batch, vs...)
		total += len(batch)
	}
	return total
}
