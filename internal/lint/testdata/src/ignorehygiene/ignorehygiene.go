// Package ignorehygiene exercises the suppression meta-rule: every
// //dpr:ignore needs a reason, must name known rules, and must
// actually suppress something.
package ignorehygiene

import "time"

// justified suppresses a real determinism finding with a reason:
// fully legal, nothing reported.
func justified() time.Time {
	//dpr:ignore determinism: fixture exercises a justified suppression
	return time.Now()
}

// noReason suppresses a real finding but never says why.
func noReason() time.Time {
	//dpr:ignore determinism // want `without a reason`
	return time.Now()
}

// stale suppresses nothing at all.
//
//dpr:ignore determinism: stale suppression kept for the fixture // want `unused //dpr:ignore suppression`
func stale() {}

// typo names a rule that does not exist.
//
//dpr:ignore determinsm: misspelled rule name // want `unknown rule`
func typo() {}
