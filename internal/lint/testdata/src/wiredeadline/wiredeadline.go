// Package wiredeadline is a dprlint fixture: conn reads and writes
// with and without deadlines, conn handoffs, and both forms of the
// //dpr:nodeadline annotation.
package wiredeadline

import (
	"io"
	"net"
	"time"
)

func readNoDeadline(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) // want `net.Conn read in readNoDeadline without SetReadDeadline`
}

func readWithDeadline(c net.Conn, buf []byte) (int, error) {
	c.SetReadDeadline(time.Now().Add(time.Second))
	return c.Read(buf)
}

func writeNoDeadline(c net.Conn, buf []byte) (int, error) {
	return c.Write(buf) // want `net.Conn write in writeNoDeadline without SetWriteDeadline`
}

func writeWithBothDeadlines(c net.Conn, buf []byte) (int, error) {
	c.SetDeadline(time.Now().Add(time.Second))
	defer c.SetDeadline(time.Time{})
	return c.Write(buf)
}

type encoder struct{ scratch [8]byte }

func (e *encoder) encodeTo(w io.Writer) error {
	_, err := w.Write(e.scratch[:])
	return err
}

// viaHelper writes through an io.Writer parameter, which is still a
// conn write at the call site and still needs a deadline.
func viaHelper(c net.Conn, e *encoder) error {
	return e.encodeTo(c) // want `net.Conn write in viaHelper without SetWriteDeadline`
}

// handoff passes the conn to another function that can arm its own
// deadlines; that is ownership transfer, not I/O.
func handoff(c net.Conn) {
	go serve(c)
}

// serve reads until its caller closes the connection.
//
//dpr:nodeadline fixture: lifetime bounded by the caller's Close
func serve(c net.Conn) {
	var buf [1]byte
	for {
		if _, err := c.Read(buf[:]); err != nil {
			return
		}
	}
}

func inlineAnnotated(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) //dpr:nodeadline fixture: same-line annotation form
}
