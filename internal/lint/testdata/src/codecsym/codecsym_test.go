package codecsym

import "testing"

func FuzzDecode(f *testing.F) {
	f.Add([]byte{frameGood, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, b []byte) {
		if v, err := decodeGood(b); err == nil {
			_ = encodeGood(v)
		}
		if v, err := decodeNoBounds(b); err == nil {
			_ = encodeNoBounds(v)
		}
		if _, err := decodeOneWay(b); err == nil {
			_ = err // decode-only: round trip deliberately missing
		}
	})
}

func FuzzNoSeed(f *testing.F) { // want `no seed corpus`
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = decodeGood(b)
		_ = encodeGood(0)
	})
}
