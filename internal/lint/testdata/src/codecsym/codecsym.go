// Package codecsym exercises encoder/decoder symmetry: every encoder
// has a bounds-checked decoder, every paired decoder has round-trip
// fuzz coverage, and frame constants must be live.
package codecsym

import "fmt"

const (
	frameGood = 'G'
	frameDead = 'D' // want `frame constant frameDead is never used`
)

func dispatch(t byte, b []byte) error {
	switch t {
	case frameGood:
		_, err := decodeGood(b)
		return err
	}
	return fmt.Errorf("unknown frame %d", t)
}

// encodeGood/decodeGood is the fully compliant pair: bounds-checked
// decode, fuzzed with a round trip, seeded corpus.
func encodeGood(v uint32) []byte {
	return []byte{frameGood, byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func decodeGood(b []byte) (uint32, error) {
	if len(b) < 5 {
		return 0, fmt.Errorf("codecsym: short frame")
	}
	return uint32(b[1]) | uint32(b[2])<<8 | uint32(b[3])<<16 | uint32(b[4])<<24, nil
}

// encodeOrphan has no decoder at all.
func encodeOrphan(v byte) []byte { // want `no matching decoder`
	return []byte{v}
}

// decodeNoBounds indexes its input without ever checking len.
func encodeNoBounds(v byte) []byte {
	return []byte{v}
}

func decodeNoBounds(b []byte) (byte, error) { // want `never checks len`
	return b[0], nil
}

// decodeNoFuzz is well-formed but no fuzz target exercises it.
func encodeNoFuzz(v byte) []byte {
	return []byte{v}
}

func decodeNoFuzz(b []byte) (byte, error) { // want `not exercised by any Fuzz`
	if len(b) < 1 {
		return 0, fmt.Errorf("codecsym: short frame")
	}
	return b[0], nil
}

// decodeOneWay is fuzzed, but the fuzz target never re-encodes.
func encodeOneWay(v byte) []byte {
	return []byte{v}
}

func decodeOneWay(b []byte) (byte, error) { // want `never re-encodes`
	if len(b) < 1 {
		return 0, fmt.Errorf("codecsym: short frame")
	}
	return b[0], nil
}
