// Package codecsymfloor exercises the missing-compatibility-floor
// check: a current-version constant with no xSnapMinVersion companion.
package codecsymfloor

import "fmt"

const mySnapVersion = 2 // want `no compatibility floor`

func decodeState(b []byte) (int, error) {
	if len(b) < 1 {
		return 0, fmt.Errorf("codecsymfloor: empty")
	}
	v := int(b[0])
	if v != mySnapVersion {
		return 0, fmt.Errorf("codecsymfloor: unsupported version %d", v)
	}
	return v, nil
}
