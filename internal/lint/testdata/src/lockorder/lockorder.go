// Package lockorder exercises the lock-acquisition-order rule: the
// graph of "B taken while A held" edges — direct or through call
// chains — must be acyclic.
package lockorder

import "sync"

// ordered takes its locks in the same order everywhere: edges exist
// but no cycle.
type ordered struct {
	a, b sync.Mutex
}

func (o *ordered) one() {
	o.a.Lock()
	o.b.Lock()
	o.b.Unlock()
	o.a.Unlock()
}

func (o *ordered) two() {
	o.a.Lock()
	defer o.a.Unlock()
	o.b.Lock()
	defer o.b.Unlock()
}

// pair inverts its order between ab and ba: a direct two-lock cycle.
type pair struct {
	a, b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `lock acquisition cycle`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// vc hides one direction behind a helper call: xy holds x and calls
// lockY, which takes y; yx takes them directly in the other order.
type vc struct {
	x, y sync.Mutex
}

func (v *vc) lockY() {
	v.y.Lock()
	v.y.Unlock()
}

func (v *vc) xy() {
	v.x.Lock()
	v.lockY() // want `lock acquisition cycle`
	v.x.Unlock()
}

func (v *vc) yx() {
	v.y.Lock()
	v.x.Lock()
	v.x.Unlock()
	v.y.Unlock()
}

// spawn would be a cycle if go-spawned callees counted — they must
// not: the new goroutine does not hold its spawner's locks.
type spawn struct {
	m, n sync.Mutex
}

func (s *spawn) lockN() {
	s.n.Lock()
	s.n.Unlock()
}

func (s *spawn) go1() {
	s.m.Lock()
	go s.lockN()
	s.m.Unlock()
}

func (s *spawn) go2() {
	s.n.Lock()
	s.m.Lock()
	s.m.Unlock()
	s.n.Unlock()
}
