// Package counterflow is a dprlint fixture: it mutates shipped-mass
// counters through every recognized mutation form but never touches a
// folded-mass counter, so conservation cannot hold.
package counterflow

type peer struct {
	deltaShippedBits uint64
	deltaOut         float64
}

func (p *peer) ship(v float64) {
	p.deltaOut += v // want `assignment mutates shipped-mass counter "deltaOut"`
}

func (p *peer) bump() {
	p.deltaShippedBits++ // want `increment mutates shipped-mass counter "deltaShippedBits"`
}

func (p *peer) publish(v uint64) {
	setCounter(&p.deltaShippedBits, v) // want `address-taken argument mutates shipped-mass counter "deltaShippedBits"`
}

func setCounter(dst *uint64, v uint64) { *dst = v }
