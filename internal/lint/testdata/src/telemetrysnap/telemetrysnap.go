// Package telemetrysnap is a dprlint fixture for the determinism
// rule's snapshot-rendering coverage: a miniature metrics registry
// whose exposition output must never depend on map iteration order,
// next to the sanctioned sorted-keys spelling. This is the exact shape
// internal/telemetry's Snapshot/RenderText path is held to.
package telemetrysnap

import (
	"fmt"
	"io"
	"sort"
	"time"
)

type registry struct {
	counters map[string]uint64
	gauges   map[string]float64
}

// renderUnordered writes samples straight out of a map range — the
// scrape output would shuffle between identical states.
func (r *registry) renderUnordered(w io.Writer) {
	for name, v := range r.counters {
		fmt.Fprintf(w, "%s %d\n", name, v) // want `ordered output written inside range over map`
	}
}

// snapshotUnordered builds the point list in map order, so two
// snapshots of one registry can disagree.
func (r *registry) snapshotUnordered() []string {
	var points []string
	for name := range r.gauges {
		points = append(points, name) // want `append to "points" inside range over map`
	}
	return points
}

// stampSnapshot reads wall time inside the deterministic package;
// clocks are injected by the frontends instead.
func stampSnapshot() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

// renderSorted is the sanctioned form: collect the keys, sort them,
// and only then emit — output depends on the registry's contents
// alone. The collection append is suppressed explicitly because the
// keys are sorted before use.
func (r *registry) renderSorted(w io.Writer) {
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		//dpr:ignore determinism names are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, r.counters[name])
	}
}
