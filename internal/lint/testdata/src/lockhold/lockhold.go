// Package lockhold is a dprlint fixture: blocking operations inside
// and outside critical sections, for both Mutex and RWMutex.
package lockhold

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	ch   chan int
	conn net.Conn
}

func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func (s *server) sendAfterUnlock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

func (s *server) sleepUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding s.mu`
}

func (s *server) connWriteUnderLock(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(b) // want `net.Conn write while holding s.mu`
}

// trySend is non-blocking by construction: a select with a default
// case never parks the goroutine.
func (s *server) trySend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

// spawn starts a goroutine under the lock; the goroutine body is a
// separate scope that does not hold its spawner's mutex.
func (s *server) spawn(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

func (s *server) recvUnderRLock(mu *sync.RWMutex) int {
	mu.RLock()
	v := <-s.ch // want `channel receive while holding mu`
	mu.RUnlock()
	return v
}
