// Package counterflowbalanced is a dprlint fixture: it mutates both
// counter families, so the counterflow rule reports nothing.
package counterflowbalanced

type ledger struct {
	deltaShipped float64
	deltaFolded  float64
}

func (l *ledger) transfer(v float64) {
	l.deltaShipped += v
	l.deltaFolded += v
}
