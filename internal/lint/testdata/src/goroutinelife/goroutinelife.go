// Package goroutinelife exercises the goroutine join-proof rule:
// every spawned goroutine must signal its exit (WaitGroup.Done or
// close of a done channel) and be joined from a shutdown root, or
// carry //dpr:detached with a reason.
package goroutinelife

import "sync"

// server is the canonical joined lifecycle: Add before spawn, Done on
// exit, Wait in Close.
type server struct {
	wg sync.WaitGroup
}

func (s *server) start() {
	s.wg.Add(1)
	go s.loop()
}

func (s *server) loop() {
	defer s.wg.Done()
}

func (s *server) Close() {
	s.wg.Wait()
}

// chanServer signals by closing a done channel that Stop receives;
// the spawned body is a literal whose signal is found inside it.
type chanServer struct {
	done chan struct{}
}

func (c *chanServer) start() {
	go func() {
		defer close(c.done)
	}()
}

func (c *chanServer) Stop() {
	<-c.done
}

// helperSignal signals through a synchronous callee: the literal
// calls finish, which Done()s the WaitGroup.
type helperSignal struct {
	wg sync.WaitGroup
}

func (h *helperSignal) start() {
	h.wg.Add(1)
	go func() {
		h.finish()
	}()
}

func (h *helperSignal) finish() {
	h.wg.Done()
}

func (h *helperSignal) Shutdown() {
	h.wg.Wait()
}

// leaky never signals at all.
type leaky struct{}

func (l *leaky) start() {
	go l.run() // want `never signals its exit`
}

func (l *leaky) run() {}

// unjoined signals a WaitGroup nobody ever waits on from a shutdown
// path.
type unjoined struct {
	wg sync.WaitGroup
}

func (u *unjoined) start() {
	u.wg.Add(1)
	go u.run() // want `signals its exit but is never joined`
}

func (u *unjoined) run() {
	defer u.wg.Done()
}

// detachedOK opts out explicitly, with a reason.
func detachedOK() {
	//dpr:detached fixture goroutine that intentionally outlives its spawner
	go func() {}()
}

// detachedBad opts out without saying why.
func detachedBad() {
	//dpr:detached
	go func() {}() // want `requires a reason`
}

// dynamic spawns through a function value the static call graph
// cannot resolve.
func dynamic(fn func()) {
	go fn() // want `cannot resolve`
}
