// Package hotpathtrans exercises the transitive hot-path allocation
// rule: a //dpr:hotpath function may not call a callee that
// allocates, however deep the allocation hides.
package hotpathtrans

import "fmt"

//dpr:hotpath
func hot(dst []int) []int {
	dst = grow(dst) // want `calls grow, which allocates`
	helperOK(dst)
	return dst
}

func grow(dst []int) []int {
	extra := make([]int, 4)
	return append(dst, extra...)
}

func helperOK(dst []int) {
	for i := range dst {
		dst[i]++
	}
}

//dpr:hotpath
func hotDeep(n int) int {
	return outer(n) // want `via outer → inner: make`
}

func outer(n int) int {
	return inner(n)
}

func inner(n int) int {
	s := make([]int, n)
	return len(s)
}

// checked's only allocation feeds a panic — a crash path, not a hot
// path — so hotPanic stays clean.
//
//dpr:hotpath
func hotPanic(n int) int {
	return checked(n)
}

func checked(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("hotpathtrans: negative %d", n))
	}
	return n
}

// hotSpawn's go statement is the base hotpath rule's problem; the
// transitive rule must not charge the spawner for the callee's
// allocations.
//
//dpr:hotpath
func hotSpawn(dst []int) {
	go grow(dst)
}

// hotIgnored shows a justified suppression at the call site.
//
//dpr:hotpath
func hotIgnored(dst []int) []int {
	//dpr:ignore hotpath-transitive: fixture cold path, grown once then reused
	return grow(dst)
}
