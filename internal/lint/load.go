package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages with nothing but the
// standard library: module-local imports resolve to other loaded
// packages, everything else is type-checked from GOROOT source via
// go/importer's source importer. Loading the whole dpr module this
// way takes a few seconds — acceptable for a lint gate, and it keeps
// the tool free of external dependencies.
//
// Malformed input is survivable by design: a file that does not
// parse, a package that does not type-check, or a package whose files
// are all excluded by build constraints each produce a Rule "load"
// diagnostic (collected via LoadDiagnostics) instead of aborting the
// run, and the analyzers proceed over every package that did load.
type Loader struct {
	Fset *token.FileSet

	module string // module path from go.mod ("" until LoadModule)
	root   string // module root directory

	pkgs     map[string]*loadEntry // import path -> entry
	checking map[string]bool       // cycle detection
	std      types.Importer
	diags    []Diagnostic // load-stage findings (parse/type/build-tag)
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader returns an empty loader with a fresh file set.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		pkgs:     make(map[string]*loadEntry),
		checking: make(map[string]bool),
		std:      importer.ForCompiler(fset, "source", nil),
	}
}

// ModulePath reads the module path out of root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// LoadModule parses every package under root (skipping testdata,
// hidden directories and test files) and type-checks them in
// dependency order. It returns the packages sorted by import path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	module, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l.module, l.root = module, abs

	var paths []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(abs, dir)
		if err != nil {
			return err
		}
		ip := module
		if rel != "." {
			ip = module + "/" + filepath.ToSlash(rel)
		}
		if _, seen := l.pkgs[ip]; !seen {
			l.pkgs[ip] = nil // reserve; parsed below in path order
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	for _, ip := range paths {
		dir := abs
		if ip != module {
			dir = filepath.Join(abs, filepath.FromSlash(strings.TrimPrefix(ip, module+"/")))
		}
		entry, err := l.parseDir(dir, ip)
		if err != nil {
			return nil, err
		}
		l.pkgs[ip] = entry
	}

	// Type-check whatever parsed. A package that fails here (or whose
	// imports failed) is reported through LoadDiagnostics and dropped;
	// the rest of the module is still analyzed.
	var out []*Package
	for _, ip := range paths {
		p, err := l.check(ip)
		if err != nil {
			continue // diagnosed inside check
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDiagnostics returns the findings produced while loading:
// unparseable files, packages that fail type-checking, and packages
// whose files are all excluded by build constraints. They carry Rule
// "load" and are not suppressible.
func (l *Loader) LoadDiagnostics() []Diagnostic {
	ds := append([]Diagnostic(nil), l.diags...)
	sortDiagnostics(ds)
	return ds
}

// loadDiag records one load-stage finding.
func (l *Loader) loadDiag(file string, line, col int, format string, args ...interface{}) {
	l.diags = append(l.diags, Diagnostic{
		File: file, Line: line, Column: col,
		Rule: RuleLoad, Message: sprintf(format, args...),
	})
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, without walking a module. Used for fixture
// packages, whose import paths the tests choose to match the scoping
// config. Fixtures may only import the standard library.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entry, err := l.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = entry
	return l.check(importPath)
}

// parseDir parses the non-test .go files of one directory. Files that
// do not parse are diagnosed and skipped; only I/O failures are
// returned as errors.
func (l *Loader) parseDir(dir, importPath string) (*loadEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{Dir: dir, ImportPath: importPath}
	sawGo, sawBroken := false, false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		sawGo = true
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if !buildTagsMatch(name, src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, path, src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			sawBroken = true
			line, col := 1, 1
			if list, ok := err.(scanner.ErrorList); ok && len(list) > 0 {
				line, col = list[0].Pos.Line, list[0].Pos.Column
				err = fmt.Errorf("%s", list[0].Msg)
			}
			l.loadDiag(path, line, col, "file does not parse: %v", err)
			continue
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		switch {
		case sawBroken:
			// Already diagnosed file by file.
		case sawGo:
			l.loadDiag(filepath.Join(dir, "."), 1, 1,
				"package %s has no files matching the host build configuration", importPath)
		default:
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return &loadEntry{err: fmt.Errorf("lint: no loadable Go files in %s", dir)}, nil
	}
	return &loadEntry{pkg: p}, nil
}

// buildTagsMatch reports whether a file is part of the build on the
// host platform, honoring both the GOOS/GOARCH filename convention
// (foo_linux.go) and //go:build constraint lines. Without this filter,
// platform-variant files (mmap_linux.go / mmap_other.go) would both be
// loaded into one package and fail type-checking with redeclarations.
func buildTagsMatch(name string, src []byte) bool {
	base := strings.TrimSuffix(name, ".go")
	if i := strings.LastIndex(base, "_"); i >= 0 {
		if suffix := base[i+1:]; knownPlatformTag(suffix) && !hostTag(suffix) {
			return false
		}
	}
	sc := bufio.NewScanner(bytes.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return true // malformed constraint: let the parser report it
			}
			return expr.Eval(hostTag)
		}
		// Constraints must precede the package clause; stop at the
		// first line that is neither blank nor a comment.
		if line != "" && !strings.HasPrefix(line, "//") && !strings.HasPrefix(line, "/*") {
			break
		}
	}
	return true
}

// hostTag evaluates one build tag for the linting host.
func hostTag(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		tag == "unix" && isUnixGOOS(runtime.GOOS) ||
		strings.HasPrefix(tag, "go1.")
}

// knownPlatformTag reports whether a filename suffix selects a
// platform (only those suffixes imply an implicit constraint).
func knownPlatformTag(s string) bool {
	switch s {
	case "linux", "darwin", "windows", "freebsd", "netbsd", "openbsd", "solaris",
		"aix", "dragonfly", "illumos", "ios", "js", "plan9", "wasip1", "android",
		"amd64", "arm64", "arm", "386", "wasm", "ppc64", "ppc64le", "riscv64",
		"s390x", "mips", "mipsle", "mips64", "mips64le", "loong64":
		return true
	}
	return false
}

func isUnixGOOS(goos string) bool {
	switch goos {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris",
		"aix", "dragonfly", "illumos", "ios", "android":
		return true
	}
	return false
}

// Import implements types.Importer over the loader's package set,
// falling back to the GOROOT source importer for everything else.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.pkgs[path]; ok {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// StdImport exposes standard-library type information to analyzers
// (e.g. the net.Conn interface object).
func (l *Loader) StdImport(path string) (*types.Package, error) {
	return l.std.Import(path)
}

// check type-checks one previously parsed package, memoized.
func (l *Loader) check(importPath string) (*Package, error) {
	entry := l.pkgs[importPath]
	if entry == nil {
		return nil, fmt.Errorf("lint: package %s not loaded", importPath)
	}
	if entry.err != nil {
		return nil, entry.err
	}
	p := entry.pkg
	if p.Types != nil {
		return p, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Collect every type error as a load diagnostic rather than
	// stopping at the first: a broken package is dropped from analysis
	// but reported in full, and the rest of the module still lints.
	var typeErrs int
	conf := types.Config{Importer: l, Error: func(err error) {
		te, ok := err.(types.Error)
		if !ok || typeErrs >= 20 {
			return
		}
		typeErrs++
		pos := te.Fset.Position(te.Pos)
		l.loadDiag(pos.Filename, pos.Line, pos.Column, "type error: %s", te.Msg)
	}}
	tpkg, err := conf.Check(importPath, l.Fset, p.Files, info)
	if err != nil {
		if typeErrs == 0 {
			l.loadDiag(filepath.Join(p.Dir, "."), 1, 1, "package %s does not type-check: %v", importPath, err)
		}
		entry.err = err
		return nil, err
	}
	p.Types, p.Info = tpkg, info
	return p, nil
}
