package lint

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkCodecSym enforces encoder/decoder symmetry in the codec
// packages (internal/wire). A wire format is an implicit contract
// with every deployed peer; the rule makes its obligations explicit:
//
//   - every encodeX/EncodeX function has a matching decodeX/DecodeX
//     in the same package — an encoder without a decoder is a frame
//     nobody can ever parse back;
//   - every decoder whose input is a byte slice checks len() of it —
//     frames arrive from the network, and PR 2's fuzz targets exist
//     precisely because unchecked offsets panic on truncated input;
//   - every paired decoder is exercised by some Fuzz* target in the
//     package's tests, and that target also calls the matching
//     encoder (round-trip evidence, not just crash-freedom), and
//     seeds its corpus with at least one f.Add;
//   - every frameX constant is referenced outside its declaration —
//     a dead frame byte is either an unfinished feature or a decoder
//     that silently drops a frame kind;
//   - the checkpoint version pair (xSnapVersion / xSnapMinVersion)
//     spans a compatibility window, and some decoder mentions every
//     version inside it — dropping the v3 decode path would strand
//     any peer restoring an old snapshot.
func (p *pass) checkCodecSym() {
	encoders := make(map[string]*ast.FuncDecl) // suffix -> decl
	decoders := make(map[string]*ast.FuncDecl)
	var funcs []*ast.FuncDecl
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			funcs = append(funcs, fd)
			name := fd.Name.Name
			if s, ok := codecSuffix(name, "encode", "Encode"); ok {
				encoders[s] = fd
			} else if s, ok := codecSuffix(name, "decode", "Decode"); ok {
				decoders[s] = fd
			}
		}
	}

	fuzzers := p.loadFuzzTargets()

	var suffixes []string
	for s := range encoders {
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)
	for _, s := range suffixes {
		enc := encoders[s]
		dec, ok := decoders[s]
		if !ok {
			p.report(RuleCodecSym, enc.Name.Pos(),
				"encoder %s has no matching decoder (decode%s/Decode%s) in this package", enc.Name.Name, s, s)
			continue
		}
		p.checkDecoderBounds(dec)
		p.checkFuzzCoverage(s, enc, dec, fuzzers)
	}

	// Fuzz targets without seeds give the mutator nothing to start
	// from; every target must plant at least one corpus entry.
	for _, fz := range fuzzers {
		if !fz.hasAdd {
			p.report(RuleCodecSym, fz.decl.Name.Pos(),
				"fuzz target %s has no seed corpus (no f.Add call); seed every frame kind it decodes", fz.decl.Name.Name)
		}
	}

	p.checkFrameConsts()
	p.checkVersionWindow(funcs)
}

// codecSuffix matches name against the given prefixes and returns the
// codec suffix ("Batch" from "encodeBatch").
func codecSuffix(name string, prefixes ...string) (string, bool) {
	for _, pre := range prefixes {
		if rest, ok := strings.CutPrefix(name, pre); ok && rest != "" {
			return rest, true
		}
	}
	return "", false
}

// checkDecoderBounds requires a byte-slice decoder to consult len()
// of its input somewhere.
func (p *pass) checkDecoderBounds(dec *ast.FuncDecl) {
	params := dec.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return
	}
	first := params.List[0].Names[0]
	obj := p.pkg.Info.Defs[first]
	if obj == nil || !isByteSliceType(obj.Type()) {
		return
	}
	found := false
	ast.Inspect(dec.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "len" || len(call.Args) != 1 {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && p.pkg.Info.Uses[arg] == obj {
			found = true
		}
		return !found
	})
	if !found {
		p.report(RuleCodecSym, dec.Name.Pos(),
			"decoder %s never checks len(%s); network input must be bounds-checked before indexing", dec.Name.Name, first.Name)
	}
}

// fuzzTarget is one Fuzz* function found in the package's tests.
type fuzzTarget struct {
	decl   *ast.FuncDecl
	calls  map[string]bool // function names invoked anywhere inside
	hasAdd bool            // at least one f.Add seed
}

// loadFuzzTargets parses the package directory's _test.go files
// (tests are not part of the loaded package) and indexes its fuzz
// functions. Parse failures are ignored here — the tests' own build
// will report them.
func (p *pass) loadFuzzTargets() []*fuzzTarget {
	entries, err := os.ReadDir(p.pkg.Dir)
	if err != nil {
		return nil
	}
	var targets []*fuzzTarget
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.loader.Fset, filepath.Join(p.pkg.Dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			fz := &fuzzTarget{decl: fd, calls: make(map[string]bool)}
			fParam := ""
			if ps := fd.Type.Params; ps != nil && len(ps.List) == 1 && len(ps.List[0].Names) == 1 {
				fParam = ps.List[0].Names[0].Name
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					fz.calls[fun.Name] = true
				case *ast.SelectorExpr:
					fz.calls[fun.Sel.Name] = true
					if x, ok := fun.X.(*ast.Ident); ok && x.Name == fParam && fun.Sel.Name == "Add" {
						fz.hasAdd = true
					}
				}
				return true
			})
			targets = append(targets, fz)
		}
	}
	return targets
}

// checkFuzzCoverage requires some fuzz target to call the decoder,
// and the encoder alongside it for round-trip checking.
func (p *pass) checkFuzzCoverage(suffix string, enc, dec *ast.FuncDecl, fuzzers []*fuzzTarget) {
	covered, roundTrip := false, false
	for _, fz := range fuzzers {
		if fz.calls[dec.Name.Name] {
			covered = true
			if fz.calls[enc.Name.Name] {
				roundTrip = true
			}
		}
	}
	if !covered {
		p.report(RuleCodecSym, dec.Name.Pos(),
			"decoder %s is not exercised by any Fuzz* target in this package's tests; add a seed clause for it", dec.Name.Name)
		return
	}
	if !roundTrip {
		p.report(RuleCodecSym, dec.Name.Pos(),
			"fuzz coverage of %s never re-encodes with %s; decode-only fuzzing proves crash-freedom, not symmetry", dec.Name.Name, enc.Name.Name)
	}
}

// checkFrameConsts flags frame-kind constants never referenced
// outside their declaration.
func (p *pass) checkFrameConsts() {
	type frameConst struct {
		obj  types.Object
		decl *ast.Ident
	}
	var consts []frameConst
	for id, obj := range p.pkg.Info.Defs {
		c, ok := obj.(*types.Const)
		if !ok || !strings.HasPrefix(c.Name(), "frame") {
			continue
		}
		if c.Val().Kind() != constant.Int {
			continue
		}
		consts = append(consts, frameConst{obj: obj, decl: id})
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].decl.Pos() < consts[j].decl.Pos() })
	used := make(map[types.Object]bool)
	for _, obj := range p.pkg.Info.Uses {
		used[obj] = true
	}
	for _, fc := range consts {
		if !used[fc.obj] {
			p.report(RuleCodecSym, fc.decl.Pos(),
				"frame constant %s is never used; either a decoder silently drops this frame kind or the constant is dead", fc.obj.Name())
		}
	}
}

// checkVersionWindow verifies snapshot-version compatibility: the
// current-version constant has a floor companion, and every version
// in [floor, current] appears in some comparison against a version
// variable — i.e. a decode path still exists for it.
func (p *pass) checkVersionWindow(funcs []*ast.FuncDecl) {
	var cur, min *types.Const
	var curIdent *ast.Ident
	for id, obj := range p.pkg.Info.Defs {
		c, ok := obj.(*types.Const)
		if !ok {
			continue
		}
		switch {
		case strings.HasSuffix(c.Name(), "SnapMinVersion"):
			min = c
		case strings.HasSuffix(c.Name(), "SnapVersion"):
			cur = c
			curIdent = id
		}
	}
	if cur == nil {
		return // package has no versioned snapshot format
	}
	if min == nil {
		p.report(RuleCodecSym, curIdent.Pos(),
			"%s has no compatibility floor; declare %sMinVersion and gate acceptance on the [floor, current] window",
			cur.Name(), strings.TrimSuffix(cur.Name(), "Version"))
		return
	}
	curV, okC := constant.Int64Val(constant.ToInt(cur.Val()))
	minV, okM := constant.Int64Val(constant.ToInt(min.Val()))
	if !okC || !okM || minV > curV {
		p.report(RuleCodecSym, curIdent.Pos(),
			"snapshot version window [%s=%v, %s=%v] is empty or malformed", min.Name(), min.Val(), cur.Name(), cur.Val())
		return
	}

	// A "version mention" is a comparison between a version-named
	// non-constant operand and a constant operand; the constant's value
	// marks that version as handled somewhere.
	mentioned := make(map[int64]bool)
	for _, fd := range funcs {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparisonOp(be.Op) {
				return true
			}
			for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				varSide, constSide := pair[0], pair[1]
				if !isVersionNamed(varSide) {
					continue
				}
				tv, ok := p.pkg.Info.Types[constSide]
				if !ok || tv.Value == nil {
					continue
				}
				if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
					mentioned[v] = true
				}
			}
			return true
		})
	}
	for v := minV; v <= curV; v++ {
		if !mentioned[v] {
			p.report(RuleCodecSym, curIdent.Pos(),
				"no decode path mentions snapshot version %d (window [%d, %d]); peers restoring v%d snapshots would be stranded",
				v, minV, curV, v)
		}
	}
}

func isComparisonOp(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// isVersionNamed reports whether an expression is an identifier or
// selector whose name suggests a decoded version value.
func isVersionNamed(e ast.Expr) bool {
	name := ""
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "version") || lower == "ver" || lower == "v"
}

func isByteSliceType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
