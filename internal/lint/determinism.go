package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// checkDeterminism enforces the bit-reproducibility contract of the
// deterministic packages: every random draw must flow from an
// explicit uint64 seed through internal/rng, no clock may leak into
// results, and nothing order-sensitive may be produced by ranging
// over a map.
//
// Three checks:
//
//  1. importing math/rand or math/rand/v2 is forbidden (the global
//     generator is shared mutable state seeded from the clock);
//  2. calling time.Now is forbidden (timing belongs to the driver
//     binaries; deterministic code takes clocks and seeds as inputs);
//  3. a `for ... range m` over a map whose body appends to a slice
//     declared outside the loop, sends on a channel, or writes
//     through a Writer/fmt produces output in map iteration order,
//     which Go randomizes per run.
func (p *pass) checkDeterminism() {
	for _, f := range p.pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.report(RuleDeterminism, imp.Pos(),
					"import of %s in deterministic package %s (use internal/rng with an explicit seed)",
					path, p.pkg.ImportPath)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if p.isPkgFunc(n, "time", "Now") {
					p.report(RuleDeterminism, n.Pos(),
						"time.Now in deterministic package %s (inject clocks/seeds from the caller)",
						p.pkg.ImportPath)
				}
			case *ast.RangeStmt:
				p.checkMapRange(n)
			}
			return true
		})
	}
}

// checkMapRange flags order-sensitive writes inside a map-range body.
func (p *pass) checkMapRange(rng *ast.RangeStmt) {
	t := p.typeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.report(RuleDeterminism, n.Pos(),
				"channel send inside range over map (receiver observes map iteration order)")
		case *ast.AssignStmt:
			p.checkMapRangeAppend(rng, n)
		case *ast.CallExpr:
			if p.isOrderedSink(n) {
				p.report(RuleDeterminism, n.Pos(),
					"ordered output written inside range over map (iterate sorted keys instead)")
			}
		}
		return true
	})
}

// checkMapRangeAppend flags `outer = append(outer, ...)` where outer
// is declared outside the range statement: the slice's element order
// then depends on map iteration order.
func (p *pass) checkMapRangeAppend(rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(as.Lhs) <= i {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, builtin := p.objectOf(id).(*types.Builtin); !builtin {
			continue // shadowed append
		}
		lhs, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.objectOf(lhs)
		if obj == nil {
			continue
		}
		// Declared inside the loop body: per-iteration scratch, fine.
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		p.report(RuleDeterminism, as.Pos(),
			"append to %q inside range over map makes its order depend on map iteration (sort the keys first)",
			lhs.Name)
	}
}

// isOrderedSink reports calls that emit output whose order matters:
// the fmt printing family and Write/WriteString/WriteByte methods.
func (p *pass) isOrderedSink(call *ast.CallExpr) bool {
	pkgPath, name := p.calleePkg(call)
	if pkgPath == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
		return false
	}
	// Writer-shaped calls, whether methods (w.Write, b.WriteString)
	// or package functions (binary.Write): both emit bytes in call
	// order, so calling them per map entry serializes map order.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}
