package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkHotPathTransitive extends the hotpath allocation contract
// through the call graph: a //dpr:hotpath function must not call a
// callee that allocates, however deep the allocation hides. The base
// rule catches `make` written inside the hot function; this one
// catches the helper that was extracted last month and quietly grew a
// fmt.Sprintf three frames down.
//
// A function's allocation summary is the same construct list the base
// rule enforces (make/new, map and slice literals, closures, fresh
// append, fmt calls, string concatenation and conversions, go
// statements), observed in its own declaration scope, propagated to
// callers over synchronous non-literal call edges. Diagnostics carry
// the witness chain — hot fn → helper → helper — down to the
// allocating line, so the fix site is in the message.
func (prog *program) checkHotPathTransitive() {
	g := prog.graph
	allocs := g.propagate(prog.allocFacts())

	for _, n := range g.nodes {
		if !n.pass.isHotPath(n.decl) {
			continue
		}
		reported := make(map[*funcNode]bool)
		for _, c := range n.calls {
			if c.viaGo || c.inLit || reported[c.callee] {
				continue
			}
			f, ok := allocs[c.callee][allocMark{}]
			if !ok {
				continue
			}
			reported[c.callee] = true
			prog.report(RuleHotPathTrans, c.pos,
				"hot-path function %s calls %s, which allocates (%s)",
				n.decl.Name.Name, c.callee.shortName(),
				prog.witnessChain(allocs, allocMark{}, fact{pos: c.pos, via: c.callee, desc: f.desc}))
		}
	}
}

// allocMark is the single fact key for "this function allocates".
type allocMark struct{}

// allocFacts records, per function, the first allocating construct in
// its declaration scope. Nested literals are opaque (they are
// themselves the allocation; what they do inside runs on their own
// schedule), and go statements count as allocations outright.
func (prog *program) allocFacts() map[*funcNode]factSet {
	direct := make(map[*funcNode]factSet)
	for _, n := range prog.graph.nodes {
		if desc, pos, ok := firstAlloc(n.pass, n.decl.Body); ok {
			direct[n] = factSet{allocMark{}: {pos: pos, desc: desc}}
		}
	}
	return direct
}

// firstAlloc finds the first allocating construct in body, mirroring
// checkHotFunc's construct list but stopping at the first hit.
func firstAlloc(p *pass, body *ast.BlockStmt) (desc string, pos token.Pos, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			desc, pos, found = "closure literal", n.Pos(), true
			return false
		case *ast.GoStmt:
			desc, pos, found = "go statement", n.Pos(), true
		case *ast.CompositeLit:
			t := p.typeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				desc, pos, found = "map literal", n.Pos(), true
			case *types.Slice:
				desc, pos, found = "slice literal", n.Pos(), true
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(p.typeOf(n)) {
				desc, pos, found = "string concatenation", n.Pos(), true
			}
		case *ast.CallExpr:
			// Allocations feeding a panic are a crash path, not a hot
			// path; skip the panic's arguments entirely.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := p.objectOf(id).(*types.Builtin); builtin {
					return false
				}
			}
			if d, ok := allocCall(p, n); ok {
				desc, pos, found = d, n.Pos(), true
			}
		}
		return !found
	})
	return desc, pos, found
}

// allocCall classifies a call as allocating, mirroring checkHotCall.
func allocCall(p *pass, call *ast.CallExpr) (string, bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := p.objectOf(id).(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				return "make", true
			case "new":
				return "new", true
			case "append":
				if len(call.Args) > 0 && isFreshBase(call.Args[0]) {
					return "append to fresh slice", true
				}
			}
			return "", false
		}
	}
	if pkgPath, name := p.calleePkg(call); pkgPath == "fmt" {
		return "fmt." + name, true
	}
	if tv, ok := p.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := p.typeOf(call.Fun), p.typeOf(call.Args[0])
		if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
			return "string/[]byte conversion", true
		}
	}
	return "", false
}
