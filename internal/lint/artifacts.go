package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// GraphDoc is a serializable proof artifact: the call graph or the
// lock-acquisition graph the interprocedural rules reasoned over.
// Written as JSON (for tooling) and Graphviz dot (for eyes) under
// results/ by `dprlint -graphs`, so a failing CI run ships the exact
// graph the verdict was computed from.
type GraphDoc struct {
	Name  string      `json:"name"`
	Nodes []GraphNode `json:"nodes"`
	Edges []GraphEdge `json:"edges"`
}

// GraphNode is one vertex: a function (call graph) or a mutex (lock
// graph).
type GraphNode struct {
	ID  string `json:"id"`
	Pkg string `json:"pkg,omitempty"`
	Pos string `json:"pos,omitempty"`
}

// GraphEdge is one directed edge with its source witness.
type GraphEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Kind string `json:"kind"` // call|go|direct|via-call
	Pos  string `json:"pos,omitempty"`
}

// doc exports the call graph. Edge kinds: "call" for synchronous
// calls (nested-literal calls included), "go" for goroutine spawns.
func (g *callGraph) doc(prog *program) *GraphDoc {
	d := &GraphDoc{Name: "callgraph"}
	for _, n := range g.nodes {
		pos := prog.loader.Fset.Position(n.decl.Pos())
		d.Nodes = append(d.Nodes, GraphNode{
			ID:  n.name(),
			Pkg: n.pkg.ImportPath,
			Pos: fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line),
		})
		seen := make(map[GraphEdge]bool)
		for _, c := range n.calls {
			kind := "call"
			if c.viaGo {
				kind = "go"
			}
			pos := prog.loader.Fset.Position(c.pos)
			e := GraphEdge{
				From: n.name(), To: c.callee.name(), Kind: kind,
				Pos: fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line),
			}
			dedup := GraphEdge{From: e.From, To: e.To, Kind: e.Kind}
			if !seen[dedup] {
				seen[dedup] = true
				d.Edges = append(d.Edges, e)
			}
		}
	}
	d.sortStable()
	return d
}

// lockGraphDoc exports the lock-acquisition graph computed by
// checkLockOrder.
func lockGraphDoc(prog *program, order []types.Object,
	labels map[types.Object]string, edges map[lockEdgeKey]lockEdgeInfo) *GraphDoc {

	d := &GraphDoc{Name: "lockgraph"}
	for _, obj := range order {
		pos := prog.loader.Fset.Position(obj.Pos())
		node := GraphNode{ID: labels[obj]}
		if obj.Pkg() != nil {
			node.Pkg = obj.Pkg().Path()
		}
		if pos.IsValid() {
			node.Pos = fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)
		}
		d.Nodes = append(d.Nodes, node)
	}
	for k, info := range edges {
		pos := prog.loader.Fset.Position(info.pos)
		e := GraphEdge{
			From: labels[k.from], To: labels[k.to], Kind: info.kind,
			Pos: fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line),
		}
		d.Edges = append(d.Edges, e)
	}
	d.sortStable()
	return d
}

// sortStable orders nodes and edges deterministically so artifact
// diffs track real graph changes.
func (d *GraphDoc) sortStable() {
	sort.Slice(d.Nodes, func(i, j int) bool { return d.Nodes[i].ID < d.Nodes[j].ID })
	sort.Slice(d.Edges, func(i, j int) bool {
		a, b := d.Edges[i], d.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pos < b.Pos
	})
}

// Dot renders the graph in Graphviz dot syntax. Spawn ("go") and
// via-call edges are dashed; everything else is solid.
func (d *GraphDoc) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for _, n := range d.Nodes {
		attrs := fmt.Sprintf("label=%q", n.ID)
		if n.Pos != "" {
			attrs += fmt.Sprintf(", tooltip=%q", n.Pos)
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.ID, attrs)
	}
	for _, e := range d.Edges {
		style := "solid"
		if e.Kind == "go" || e.Kind == "via-call" {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s, label=%q", e.From, e.To, style, e.Kind)
		if e.Pos != "" {
			fmt.Fprintf(&b, ", tooltip=%q", e.Pos)
		}
		b.WriteString("];\n")
	}
	b.WriteString("}\n")
	return b.String()
}
