// Package netmodel implements the paper's analytic execution-time
// model (section 4.6). The distributed computation's wall-clock time
// is dominated by network transfer of 24-byte update messages
// (128-bit GUID + 64-bit rank). Equation 4 gives the per-pass time at
// peer i as
//
//	T_i = A_i + sum_j L_ij * S / B
//
// where A_i is the compute time of one pass, L_ij the number of
// document links from peer i to peer j, S the message size and B the
// transfer rate, with sends serialized per peer. The paper's Table 3
// totals additionally serialize all peers (a deliberately conservative
// upper bound); EstimateSerial reproduces those columns, while
// EstimatePerPeer evaluates Equation 4 as written.
package netmodel

import (
	"fmt"
	"time"
)

// Standard rates used in the paper.
const (
	MessageBytes         = 24                // 128-bit GUID + 64-bit pagerank
	RateSlowPeer float64 = 32 * 1024         // 32 KB/s "conservative" peer uplink
	RateFastPeer float64 = 200 * 1024        // 200 KB/s "aggressive" peer uplink
	RateT3       float64 = 5.6 * 1000 * 1000 // ~T3 line between web servers (section 4.6.2)
)

// Model configures the estimator.
type Model struct {
	MessageBytes   int64         // 0 means MessageBytes (24)
	Bandwidth      float64       // bytes/second; required
	ComputePerPass time.Duration // A_i, per-peer compute time of one pass
}

func (m Model) withDefaults() (Model, error) {
	if m.MessageBytes == 0 {
		m.MessageBytes = MessageBytes
	}
	if m.MessageBytes < 1 {
		return m, fmt.Errorf("netmodel: message size %d < 1", m.MessageBytes)
	}
	if m.Bandwidth <= 0 {
		return m, fmt.Errorf("netmodel: bandwidth %v must be positive", m.Bandwidth)
	}
	if m.ComputePerPass < 0 {
		return m, fmt.Errorf("netmodel: negative compute time")
	}
	return m, nil
}

// EstimateSerial is the paper's Table 3 upper bound: every update
// message of the whole run transits one serialized link of the given
// bandwidth, plus compute for each pass.
func (m Model) EstimateSerial(totalMsgs int64, passes int) (time.Duration, error) {
	mm, err := m.withDefaults()
	if err != nil {
		return 0, err
	}
	if totalMsgs < 0 || passes < 0 {
		return 0, fmt.Errorf("netmodel: negative message count or passes")
	}
	transfer := float64(totalMsgs*mm.MessageBytes) / mm.Bandwidth
	total := time.Duration(transfer*float64(time.Second)) +
		time.Duration(passes)*mm.ComputePerPass
	return total, nil
}

// EstimatePerPeer evaluates Equation 4: each peer serializes its own
// sends but peers transmit concurrently, so a pass costs the maximum
// over peers of A + L_i*S/B, and the run costs passes times that.
// crossLinksPerPeer[i] is sum_j L_ij, the number of out-links from
// documents on peer i to documents elsewhere.
func (m Model) EstimatePerPeer(crossLinksPerPeer []int64, passes int) (time.Duration, error) {
	mm, err := m.withDefaults()
	if err != nil {
		return 0, err
	}
	if passes < 0 {
		return 0, fmt.Errorf("netmodel: negative passes")
	}
	var worst time.Duration
	for _, l := range crossLinksPerPeer {
		if l < 0 {
			return 0, fmt.Errorf("netmodel: negative link count")
		}
		t := mm.ComputePerPass +
			time.Duration(float64(l*mm.MessageBytes)/mm.Bandwidth*float64(time.Second))
		if t > worst {
			worst = t
		}
	}
	return time.Duration(passes) * worst, nil
}

// WebScale estimates the Internet-deployment scenario of section
// 4.6.2: web servers exchanging pagerank updates over T3-class links
// for a corpus of `docs` documents, given the average number of update
// messages per document measured at the chosen threshold (a graph-size
// independent quantity per section 4.5).
func (m Model) WebScale(docs int64, avgMsgsPerDoc float64) (time.Duration, error) {
	mm, err := m.withDefaults()
	if err != nil {
		return 0, err
	}
	if docs < 0 || avgMsgsPerDoc < 0 {
		return 0, fmt.Errorf("netmodel: negative docs or message rate")
	}
	totalMsgs := int64(float64(docs) * avgMsgsPerDoc)
	return mm.EstimateSerial(totalMsgs, 0)
}

// Days renders a duration in fractional days, the unit of the paper's
// web-scale discussion.
func Days(d time.Duration) float64 { return d.Hours() / 24 }
