package netmodel

import (
	"math"
	"testing"
	"time"
)

func TestEstimateSerialMatchesPaperTable3(t *testing.T) {
	// Paper Table 3, threshold 0.2, 5000k graph: 169.1 million
	// messages; 33.7 hours at 32 KB/s, 5.4 hours at 200 KB/s.
	m := Model{Bandwidth: RateSlowPeer}
	d, err := m.EstimateSerial(169_100_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h := d.Hours(); math.Abs(h-33.7) > 1.5 {
		t.Fatalf("32KB/s estimate %.1f hours, paper says 33.7", h)
	}
	m.Bandwidth = RateFastPeer
	d, err = m.EstimateSerial(169_100_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h := d.Hours(); math.Abs(h-5.4) > 0.3 {
		t.Fatalf("200KB/s estimate %.1f hours, paper says 5.4", h)
	}
}

func TestEstimateSerialIncludesCompute(t *testing.T) {
	m := Model{Bandwidth: RateSlowPeer, ComputePerPass: time.Minute}
	withCompute, err := m.EstimateSerial(1000, 60)
	if err != nil {
		t.Fatal(err)
	}
	m.ComputePerPass = 0
	without, err := m.EstimateSerial(1000, 60)
	if err != nil {
		t.Fatal(err)
	}
	if withCompute-without != time.Hour {
		t.Fatalf("compute contribution = %v, want 1h", withCompute-without)
	}
}

func TestEstimatePerPeerUsesWorstPeer(t *testing.T) {
	m := Model{Bandwidth: 24} // 1 message per second at 24B messages
	links := []int64{10, 50, 20}
	d, err := m.EstimatePerPeer(links, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Worst peer: 50 messages = 50s per pass; 3 passes = 150s.
	if math.Abs(d.Seconds()-150) > 0.1 {
		t.Fatalf("per-peer estimate %v, want 150s", d)
	}
}

func TestEstimatePerPeerEmpty(t *testing.T) {
	m := Model{Bandwidth: 1000}
	d, err := m.EstimatePerPeer(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("empty network cost %v", d)
	}
}

func TestWebScaleOrderOfMagnitude(t *testing.T) {
	// Section 4.6.2: ~3 billion documents on T3 links converge in
	// days-to-weeks, the same order as the centralized crawl cycle.
	m := Model{Bandwidth: RateT3}
	d, err := m.WebScale(3_000_000_000, 88) // avg msgs/doc at 1e-3 (Table 3)
	if err != nil {
		t.Fatal(err)
	}
	days := Days(d)
	if days < 3 || days > 60 {
		t.Fatalf("web-scale estimate %.1f days; paper reports tens of days", days)
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Model{}).EstimateSerial(10, 1); err == nil {
		t.Error("accepted zero bandwidth")
	}
	if _, err := (Model{Bandwidth: 100}).EstimateSerial(-1, 1); err == nil {
		t.Error("accepted negative messages")
	}
	if _, err := (Model{Bandwidth: 100}).EstimateSerial(1, -1); err == nil {
		t.Error("accepted negative passes")
	}
	if _, err := (Model{Bandwidth: 100, MessageBytes: -5}).EstimateSerial(1, 1); err == nil {
		t.Error("accepted negative message size")
	}
	if _, err := (Model{Bandwidth: 100}).EstimatePerPeer([]int64{-1}, 1); err == nil {
		t.Error("accepted negative link count")
	}
	if _, err := (Model{Bandwidth: 100}).WebScale(-1, 10); err == nil {
		t.Error("accepted negative docs")
	}
	if _, err := (Model{Bandwidth: 100, ComputePerPass: -time.Second}).EstimateSerial(1, 1); err == nil {
		t.Error("accepted negative compute time")
	}
}

func TestDays(t *testing.T) {
	if d := Days(48 * time.Hour); d != 2 {
		t.Fatalf("Days = %v", d)
	}
}
