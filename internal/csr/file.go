package csr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"dpr/internal/graph"
)

// File format "DPRZ" version 1, little endian throughout:
//
//	magic      "DPRZ"                      4 bytes
//	version    u32                         currently 1
//	nodes      u64
//	edges      u64
//	blockShift u64                         must match this build's constant
//	bigDegs    u64                         side-table entry count
//	payloadLen u64                         payload bytes
//	deg        nodes x u16
//	bigDeg     bigDegs x (u32 node, u32 deg), ascending node
//	blockOff   (numBlocks+1) x u64         nibble offsets; last = total nibbles
//	payload    payloadLen bytes of nibble varints
//
// The payload is the last section so a memory-mapped open can hand the
// decoder a zero-copy view of the bulk of the file while the small
// metadata sections are copied to the heap.
const (
	fileMagic   = "DPRZ"
	fileVersion = 1
	headerSize  = 4 + 4 + 5*8
)

// WriteFile serializes the graph to path in DPRZ format.
func (g *Graph) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.m))
	binary.LittleEndian.PutUint64(hdr[24:], blockShift)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(g.bigDeg)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(len(g.payload)))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var scratch [8]byte
	for _, d := range g.deg {
		binary.LittleEndian.PutUint16(scratch[:2], d)
		if _, err := bw.Write(scratch[:2]); err != nil {
			f.Close()
			return err
		}
	}
	for _, e := range g.bigDeg {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(e.node))
		binary.LittleEndian.PutUint32(scratch[4:8], uint32(e.deg))
		if _, err := bw.Write(scratch[:8]); err != nil {
			f.Close()
			return err
		}
	}
	for _, off := range g.blockOff {
		binary.LittleEndian.PutUint64(scratch[:8], uint64(off))
		if _, err := bw.Write(scratch[:8]); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := bw.Write(g.payload); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenFile opens a DPRZ file backed by a read-only memory map where
// the platform supports it (linux), falling back to reading the file
// into memory elsewhere. The returned graph's payload aliases the
// mapping: Close it when done, and not before readers finish.
func OpenFile(path string) (*Graph, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	g, err := DecodeBytes(data)
	if err != nil {
		closer()
		return nil, fmt.Errorf("csr: %s: %w", path, err)
	}
	g.closer = closer
	return g, nil
}

// LoadFile reads a DPRZ file fully into memory, never mapping it.
func LoadFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("csr: %s: %w", path, err)
	}
	return g, nil
}

// DecodeBytes parses a DPRZ image. The metadata sections are copied to
// the heap; the payload section aliases data. Every section is
// validated — including a full decode pass over the payload — so the
// cursor hot path can run without bounds anxiety on trusted data, and
// corrupt or adversarial input yields an error, never a panic.
func DecodeBytes(data []byte) (*Graph, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != fileMagic {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != fileVersion {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	m := binary.LittleEndian.Uint64(data[16:])
	shift := binary.LittleEndian.Uint64(data[24:])
	nBig := binary.LittleEndian.Uint64(data[32:])
	payloadLen := binary.LittleEndian.Uint64(data[40:])
	if shift != blockShift {
		return nil, fmt.Errorf("block shift %d, this build expects %d", shift, blockShift)
	}
	const maxNodes = 1 << 31
	if n > maxNodes || m > 64*maxNodes || nBig > n {
		return nil, fmt.Errorf("implausible sizes n=%d m=%d bigDegs=%d", n, m, nBig)
	}
	nb := numBlocks(int(n))
	need := uint64(headerSize) + 2*n + 8*nBig + 8*uint64(nb+1) + payloadLen
	if uint64(len(data)) != need {
		return nil, fmt.Errorf("file is %d bytes, header implies %d", len(data), need)
	}

	g := &Graph{n: int(n), m: int64(m)}
	p := data[headerSize:]
	g.deg = make([]uint16, n)
	for i := range g.deg {
		g.deg[i] = binary.LittleEndian.Uint16(p[2*i:])
	}
	p = p[2*n:]
	g.bigDeg = make([]bigDegEntry, nBig)
	for i := range g.bigDeg {
		node := binary.LittleEndian.Uint32(p[8*i:])
		deg := binary.LittleEndian.Uint32(p[8*i+4:])
		if node >= uint32(n) || deg < degEscape || deg > uint32(n) {
			return nil, fmt.Errorf("big-degree entry %d invalid (node=%d deg=%d)", i, node, deg)
		}
		if i > 0 && node <= uint32(g.bigDeg[i-1].node) {
			return nil, fmt.Errorf("big-degree side table not ascending at entry %d", i)
		}
		g.bigDeg[i] = bigDegEntry{node: int32(node), deg: int32(deg)}
	}
	p = p[8*nBig:]
	nibTotal := 2 * payloadLen
	g.blockOff = make([]int64, nb+1)
	for i := range g.blockOff {
		off := binary.LittleEndian.Uint64(p[8*i:])
		if off > nibTotal {
			return nil, fmt.Errorf("block offset %d = %d nibbles beyond payload %d", i, off, nibTotal)
		}
		if i > 0 && int64(off) < g.blockOff[i-1] {
			return nil, fmt.Errorf("block offsets not monotone at %d", i)
		}
		g.blockOff[i] = int64(off)
	}
	p = p[8*(nb+1):]
	g.payload = p[:payloadLen:payloadLen]

	// The declared nibble count must fill the payload to within the
	// final padding half-byte.
	nibEnd := g.blockOff[nb]
	if (uint64(nibEnd)+1)/2 != payloadLen {
		return nil, fmt.Errorf("payload is %d bytes but nibble end marker says %d nibbles", payloadLen, nibEnd)
	}
	if nibEnd&1 == 1 && g.payload[payloadLen-1]>>4 != 0 {
		return nil, fmt.Errorf("nonzero padding nibble at end of payload")
	}

	// Every degEscape marker must resolve, and only marked nodes may
	// appear in the side table.
	marked := 0
	for v, d := range g.deg {
		if d != degEscape {
			continue
		}
		if marked >= len(g.bigDeg) || int(g.bigDeg[marked].node) != v {
			return nil, fmt.Errorf("node %d marks a big degree with no side-table entry", v)
		}
		marked++
	}
	if marked != len(g.bigDeg) {
		return nil, fmt.Errorf("side table has %d entries beyond the marked nodes", len(g.bigDeg)-marked)
	}

	if err := g.validatePayload(); err != nil {
		return nil, err
	}
	return g, nil
}

// validatePayload decodes the entire nibble stream once, checking that
// every block starts where the skip index says, every varint
// terminates inside the payload, every decoded target is in range
// (ascending output and non-self follow from the split encoding), and
// the total edge count matches the header.
func (g *Graph) validatePayload() error {
	data := g.payload
	end := g.blockOff[numBlocks(g.n)]
	p := int64(0)
	var edges int64
	// readVar is the bounds-checked sibling of the trusting hot-path
	// decoder: it refuses to run past the declared nibble end or to
	// assemble a gap that could overflow the id arithmetic.
	readVar := func() (uint64, error) {
		var x uint64
		var shift uint
		for {
			if p >= end {
				return 0, fmt.Errorf("varint runs past payload end at nibble %d", p)
			}
			nb := data[p>>1] >> (uint(p&1) << 2) & 0xF
			p++
			if shift > 60 {
				return 0, fmt.Errorf("varint wider than 64 bits at nibble %d", p)
			}
			x |= uint64(nb&7) << shift
			if nb < 8 {
				return x, nil
			}
			shift += 3
		}
	}
	for v := 0; v < g.n; v++ {
		if v&blockMask == 0 {
			if want := g.blockOff[v>>blockShift]; p != want {
				return fmt.Errorf("block %d starts at nibble %d, skip index says %d", v>>blockShift, p, want)
			}
		}
		d := g.OutDegree(graph.NodeID(v))
		if d == 0 {
			continue
		}
		k, err := readVar()
		if err != nil {
			return fmt.Errorf("node %d: %w", v, err)
		}
		if k > uint64(d) {
			return fmt.Errorf("node %d: below-source count %d exceeds degree %d", v, k, d)
		}
		t := int64(v)
		for j := uint64(0); j < k; j++ {
			x, err := readVar()
			if err != nil {
				return fmt.Errorf("node %d: %w", v, err)
			}
			if x >= uint64(g.n) {
				return fmt.Errorf("node %d: down distance %d exceeds node count", v, x)
			}
			t -= int64(x) + 1
			if t < 0 {
				return fmt.Errorf("node %d: target below 0", v)
			}
		}
		t = int64(v)
		for j := int(k); j < d; j++ {
			x, err := readVar()
			if err != nil {
				return fmt.Errorf("node %d: %w", v, err)
			}
			if x >= uint64(g.n) {
				return fmt.Errorf("node %d: up distance %d exceeds node count", v, x)
			}
			t += int64(x) + 1
			if t >= int64(g.n) {
				return fmt.Errorf("node %d: target beyond node count", v)
			}
		}
		edges += int64(d)
	}
	if p != end {
		return fmt.Errorf("payload has %d undeclared trailing nibbles", end-p)
	}
	if edges != g.m {
		return fmt.Errorf("payload holds %d edges, header says %d", edges, g.m)
	}
	return nil
}
