//go:build !linux

package csr

import "os"

// mapFile reads path fully into memory on platforms without the mmap
// fast path; the closer is then a no-op.
func mapFile(path string) (data []byte, closer func() error, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
