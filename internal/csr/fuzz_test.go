package csr

import (
	"os"
	"slices"
	"testing"

	"dpr/internal/graph"
)

// FuzzDecodeCSR feeds arbitrary bytes to the DPRZ parser. The
// contract under fuzzing: DecodeBytes either returns an error or a
// graph whose every node decodes cleanly — it never panics, never
// reads out of bounds, and anything it accepts is fully traversable.
func FuzzDecodeCSR(f *testing.F) {
	// Seed with real images so the fuzzer starts past the magic check.
	for _, n := range []int{2, 100, 700} {
		src := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(n, uint64(n)))
		cg, err := FromLinker(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(encodeImage(f, cg))
	}
	f.Add([]byte(fileMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeBytes(data)
		if err != nil {
			return
		}
		// Accepted: the graph must be traversable end to end and
		// internally consistent.
		var edges int64
		cur := g.NewCursor()
		for v := 0; v < g.NumNodes(); v++ {
			id := graph.NodeID(v)
			links := g.OutLinks(id)
			if len(links) != g.OutDegree(id) {
				t.Fatalf("node %d: %d links but degree %d", v, len(links), g.OutDegree(id))
			}
			if !slices.Equal(cur.OutLinks(id), links) {
				t.Fatalf("node %d: cursor and generic decode disagree", v)
			}
			prev := graph.NodeID(-1)
			for _, link := range links {
				if link <= prev || int(link) == v || int(link) >= g.NumNodes() {
					t.Fatalf("node %d: accepted image decodes invalid target %d", v, link)
				}
				prev = link
			}
			edges += int64(len(links))
		}
		if edges != g.NumEdges() {
			t.Fatalf("decoded %d edges, header says %d", edges, g.NumEdges())
		}
	})
}

// encodeImage serializes g to its DPRZ byte image via a temp file.
func encodeImage(f *testing.F, g *Graph) []byte {
	f.Helper()
	path := f.TempDir() + "/seed.dprz"
	if err := g.WriteFile(path); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}
