package csr

import (
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"testing/quick"

	"dpr/internal/graph"
)

// sameAdjacency reports whether two linkers expose identical per-node
// target lists through the generic OutLinks path (nil and empty lists
// compare equal).
func sameAdjacency(a, b graph.Linker) bool {
	if a.NumNodes() != b.NumNodes() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		if !slices.Equal(a.OutLinks(graph.NodeID(v)), b.OutLinks(graph.NodeID(v))) {
			return false
		}
	}
	return true
}

// requireSame asserts two linkers expose identical structure through
// both the generic path and a cursor sweep.
func requireSame(t *testing.T, want graph.Linker, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", got.NumNodes(), want.NumNodes())
	}
	var wantEdges int64
	cur := got.NewCursor()
	for v := 0; v < want.NumNodes(); v++ {
		id := graph.NodeID(v)
		wl := want.OutLinks(id)
		wantEdges += int64(len(wl))
		if d := got.OutDegree(id); d != len(wl) {
			t.Fatalf("node %d: OutDegree = %d, want %d", v, d, len(wl))
		}
		if gl := got.OutLinks(id); !slices.Equal(gl, wl) {
			t.Fatalf("node %d: OutLinks = %v, want %v", v, gl, wl)
		}
		if cl := cur.OutLinks(id); !slices.Equal(cl, wl) {
			t.Fatalf("node %d: cursor OutLinks = %v, want %v", v, cl, wl)
		}
	}
	if got.NumEdges() != wantEdges {
		t.Fatalf("NumEdges = %d, want %d", got.NumEdges(), wantEdges)
	}
}

func TestFromLinkerRoundtrip(t *testing.T) {
	src := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(5000, 42))
	cg, err := FromLinker(src)
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, src, cg)
}

func TestGenerateMatchesUncompressed(t *testing.T) {
	cfg := graph.DefaultPowerLawConfig(20000, 7)
	plain, plainStats, err := graph.GeneratePowerLawStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cg, stats, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats != plainStats {
		t.Fatalf("GenStats diverge: compressed %+v, uncompressed %+v", stats, plainStats)
	}
	requireSame(t, plain, cg)
}

func TestGenStatsBounds(t *testing.T) {
	cfg := graph.DefaultPowerLawConfig(20000, 7)
	g, stats, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != cfg.Nodes {
		t.Fatalf("stats.Nodes = %d, want %d", stats.Nodes, cfg.Nodes)
	}
	if stats.Edges != g.NumEdges() {
		t.Fatalf("stats.Edges = %d, graph has %d", stats.Edges, g.NumEdges())
	}
	if stats.Edges+stats.DroppedEdges != stats.WantEdges {
		t.Fatalf("edge accounting broken: %d emitted + %d dropped != %d wanted",
			stats.Edges, stats.DroppedEdges, stats.WantEdges)
	}
	if stats.MaxOutDegree > 1000 {
		t.Fatalf("MaxOutDegree %d exceeds default cap", stats.MaxOutDegree)
	}
	// At 20k nodes and max degree 1000 the sampler has plenty of head
	// room: saturation should be zero-to-negligible.
	if frac := float64(stats.DroppedEdges) / float64(stats.WantEdges); frac > 0.001 {
		t.Fatalf("dropped %.2f%% of edges, generator saturating", 100*frac)
	}
	if stats.Saturated() != (stats.SaturatedNodes > 0) {
		t.Fatal("Saturated() disagrees with SaturatedNodes")
	}
}

// TestCompressionRatio pins the acceptance target: the 100k power-law
// workload must compress to at most 1.5 payload bytes per edge against
// the uncompressed representation's fixed 4.
func TestCompressionRatio(t *testing.T) {
	g, _, err := Generate(graph.DefaultPowerLawConfig(100000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if bpe := g.BytesPerEdge(); bpe > 1.5 {
		t.Fatalf("payload = %.3f bytes/edge, want <= 1.5", bpe)
	}
	if tbpe := g.TotalBytesPerEdge(); tbpe > 3.0 {
		t.Fatalf("payload+metadata = %.3f bytes/edge, want well under uncompressed 4", tbpe)
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		name    string
		v       graph.NodeID
		targets []graph.NodeID
	}{
		{"out of order node", 1, nil},
		{"unsorted targets", 0, []graph.NodeID{3, 2}},
		{"duplicate targets", 0, []graph.NodeID{2, 2}},
		{"self loop", 0, []graph.NodeID{0}},
		{"out of range target", 0, []graph.NodeID{99}},
	} {
		enc := NewEncoder(4)
		if err := enc.Add(tc.v, tc.targets); err == nil {
			t.Errorf("%s: Add accepted %v for node %d", tc.name, tc.targets, tc.v)
		}
	}
	enc := NewEncoder(4)
	if err := enc.Add(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Finish(); err == nil {
		t.Error("Finish accepted an encoder with missing nodes")
	}
}

func TestBigDegreeEscape(t *testing.T) {
	// Node 0 links to every other node: degree n-1 >= 65535 exercises
	// the uint16 escape and side table.
	const n = degEscape + 2
	enc := NewEncoder(n)
	targets := make([]graph.NodeID, n-1)
	for i := range targets {
		targets[i] = graph.NodeID(i + 1)
	}
	if err := enc.Add(0, targets); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		if err := enc.Add(graph.NodeID(v), []graph.NodeID{0}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := enc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d := g.OutDegree(0); d != n-1 {
		t.Fatalf("OutDegree(0) = %d, want %d", d, n-1)
	}
	if links := g.OutLinks(0); !slices.Equal(links, targets) {
		t.Fatal("OutLinks(0) corrupted through the degree escape")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "big.dprz")
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	requireSame(t, g, loaded)
}

func TestFileRoundtrip(t *testing.T) {
	src := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(3000, 11))
	cg, err := FromLinker(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.dprz")
	if err := cg.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	mapped, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, src, mapped)
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal("second Close not a no-op:", err)
	}

	heap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, src, heap)
}

func TestDecodeBytesRejectsCorruption(t *testing.T) {
	src := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 3))
	cg, err := FromLinker(src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.dprz")
	if err := cg.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBytes(good); err != nil {
		t.Fatal("pristine image rejected:", err)
	}
	if _, err := DecodeBytes(good[:len(good)-1]); err == nil {
		t.Error("truncated image accepted")
	}
	if _, err := DecodeBytes(nil); err == nil {
		t.Error("empty image accepted")
	}
	// Flip every byte one at a time through the header and metadata,
	// and a sample of payload bytes: decode must error or roundtrip,
	// never panic (the fuzz target extends this to arbitrary inputs).
	for i := 0; i < len(good); i += 1 + i/16 {
		mut := slices.Clone(good)
		mut[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeBytes panicked on flipped byte %d: %v", i, r)
				}
			}()
			DecodeBytes(mut)
		}()
	}
}

// TestQuickRoundtrip drives random adjacency structures through
// encode/decode and demands exact reconstruction.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, rawN uint16) bool {
		n := int(rawN)%200 + 2
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for e := 3 * n; e > 0; e-- {
			from := graph.NodeID(r.Intn(n))
			to := graph.NodeID(r.Intn(n))
			if from != to {
				b.AddEdge(from, to)
			}
		}
		src := b.Build()
		cg, err := FromLinker(src)
		if err != nil {
			t.Log(err)
			return false
		}
		if !sameAdjacency(src, cg) {
			return false
		}
		// And through the file image.
		path := filepath.Join(t.TempDir(), "q.dprz")
		if err := cg.WriteFile(path); err != nil {
			t.Log(err)
			return false
		}
		loaded, err := LoadFile(path)
		if err != nil {
			t.Log(err)
			return false
		}
		return sameAdjacency(src, loaded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCursorSeeks exercises out-of-order access: every pattern of
// block-local and cross-block seeks must agree with the generic path.
func TestCursorSeeks(t *testing.T) {
	src := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 5))
	cg, err := FromLinker(src)
	if err != nil {
		t.Fatal(err)
	}
	cur := cg.NewCursor()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := graph.NodeID(r.Intn(1000))
		if !slices.Equal(cur.OutLinks(v), src.OutLinks(v)) {
			t.Fatalf("cursor diverges at node %d after %d seeks", v, i)
		}
	}
}
