// Package csr implements the compressed graph substrate: a
// source-relative, nibble-varint-encoded compressed-sparse-row
// representation of the document-link graph, small enough that
// paper-scale and beyond (10M-100M documents) fits comfortably in —
// or, file-backed, mostly out of — RAM.
//
// Layout. Nodes are grouped into fixed blocks of 64. Per node the
// payload holds its sorted target list split around the node's own id:
// first a count k of targets below the source, then the k distances
// walking down from the source (closest first), then the remaining
// distances walking up. Distances are encoded minus one (consecutive
// targets are distinct) as nibble varints — 3 data bits plus a
// continuation bit per half-byte — so the neighborhood links that
// dominate generated graphs cost one or two nibbles each, while rare
// long-range links spend five or six. Degrees live outside the payload
// in a uint16-per-node array (an escape value spills the rare >= 65535
// degrees to a sorted side table), and a block-skip index stores the
// payload nibble offset of every block's first node. A cursor seek
// therefore costs one index lookup plus at most one 64-node block
// decode, and sequential sweeps — the pass pipeline's shard-major work
// lists — decode each block once.
//
// The representation implements graph.Linker and graph.CursorLinker,
// so every engine runs on it unchanged, and decode emits each target
// list in ascending id order — the package-wide adjacency invariant —
// which keeps ranks bit-identical with the uncompressed
// representation. Hot loops obtain per-worker Cursors that stream
// adjacency blocks through a reused buffer with zero steady-state
// allocations.
//
// The same sections serialize to a file (magic "DPRZ") whose payload
// is memory-mapped on Linux, so a graph bigger than RAM pages in on
// demand instead of residing on the heap.
package csr

import (
	"fmt"
	"slices"

	"dpr/internal/graph"
)

const (
	// blockShift sets the skip-index granularity: 64 nodes per block
	// balances index overhead (one offset per block, ~0.13 bytes/node)
	// against worst-case random-seek decode work.
	blockShift = 6
	blockNodes = 1 << blockShift
	blockMask  = blockNodes - 1

	// degEscape in the uint16 degree array redirects to the bigDeg
	// side table.
	degEscape = 0xFFFF
)

func numBlocks(n int) int { return (n + blockNodes - 1) >> blockShift }

// bigDegEntry records one node whose out-degree overflows uint16.
type bigDegEntry struct {
	node int32
	deg  int32
}

// Graph is an immutable compressed document graph. It satisfies
// graph.Linker (and graph.CursorLinker), so engines accept it wherever
// they accept the uncompressed representation.
type Graph struct {
	n        int
	m        int64
	deg      []uint16      // per-node out-degree, degEscape spills to bigDeg
	bigDeg   []bigDegEntry // sorted by node id
	blockOff []int64       // numBlocks+1 payload nibble offsets
	payload  []byte        // nibble stream, low nibble of each byte first
	closer   func() error  // unmaps a file-backed payload; nil in-memory
}

// NumNodes returns the number of documents.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of links.
func (g *Graph) NumEdges() int64 { return g.m }

// OutDegree returns the number of out-links of v in O(1).
func (g *Graph) OutDegree(v graph.NodeID) int {
	if d := g.deg[v]; d != degEscape {
		return int(d)
	}
	i, ok := slices.BinarySearchFunc(g.bigDeg, int32(v), cmpBigDeg)
	if !ok {
		panic(fmt.Sprintf("csr: degree escape for node %d without side-table entry", v))
	}
	return int(g.bigDeg[i].deg)
}

// cmpBigDeg orders the big-degree side table by node id. Kept a named
// function (not a literal in OutDegree) so the hot decode path stays
// closure-free.
func cmpBigDeg(e bigDegEntry, node int32) int { return int(e.node - node) }

// readNibVar decodes one nibble varint at nibble index p of data,
// returning the value and the advanced index.
func readNibVar(data []byte, p int64) (uint64, int64) {
	var x uint64
	var shift uint
	for {
		nb := data[p>>1] >> (uint(p&1) << 2) & 0xF
		p++
		x |= uint64(nb&7) << shift
		if nb < 8 {
			return x, p
		}
		shift += 3
	}
}

// skipNibVars advances past count varints starting at nibble index p.
func skipNibVars(data []byte, p int64, count int) int64 {
	for ; count > 0; count-- {
		for data[p>>1]>>(uint(p&1)<<2)&0x8 != 0 {
			p++
		}
		p++
	}
	return p
}

// decodeInto decodes node v's target list starting at nibble index p
// into dst (len = OutDegree(v)), returning the advanced index. Output
// is ascending: the below-source distances fill dst backwards from the
// split point, the above-source distances forwards.
func (g *Graph) decodeInto(v graph.NodeID, p int64, dst []graph.NodeID) int64 {
	if len(dst) == 0 {
		return p
	}
	data := g.payload
	k, p := readNibVar(data, p)
	t := v
	for j := k; j > 0; j-- {
		var x uint64
		x, p = readNibVar(data, p)
		t -= graph.NodeID(x) + 1
		dst[j-1] = t
	}
	t = v
	for j := int(k); j < len(dst); j++ {
		var x uint64
		x, p = readNibVar(data, p)
		t += graph.NodeID(x) + 1
		dst[j] = t
	}
	return p
}

// OutLinks returns the out-links of v in ascending id order. This is
// the generic (allocating) Linker path: it decodes node v into a fresh
// slice on every call so it stays safe for concurrent readers. Hot
// loops should use a per-worker Cursor instead.
func (g *Graph) OutLinks(v graph.NodeID) []graph.NodeID {
	d := g.OutDegree(v)
	if d == 0 {
		return nil
	}
	out := make([]graph.NodeID, d)
	b := int(v) >> blockShift
	p := g.blockOff[b]
	for u := b << blockShift; u < int(v); u++ {
		if du := g.OutDegree(graph.NodeID(u)); du > 0 {
			p = skipNibVars(g.payload, p, du+1) // count varint + gaps
		}
	}
	g.decodeInto(v, p, out)
	return out
}

// Close releases a file-backed graph's mapping. It is a no-op for
// in-memory graphs and safe to call more than once.
func (g *Graph) Close() error {
	if g.closer == nil {
		return nil
	}
	c := g.closer
	g.closer = nil
	// Drop the mapped section so a use-after-close faults loudly via a
	// nil slice instead of touching unmapped pages.
	g.payload = nil
	return c()
}

// PayloadBytes returns the size of the nibble-varint adjacency stream
// — the compressed counterpart of the uncompressed representation's
// 4-byte-per-edge outAdj array.
func (g *Graph) PayloadBytes() int64 { return int64(len(g.payload)) }

// IndexBytes returns the size of the per-node metadata: the degree
// array, the big-degree side table and the block-skip index (the
// counterpart of the uncompressed outStart array, which is likewise
// excluded from the classic bytes-per-edge accounting).
func (g *Graph) IndexBytes() int64 {
	return int64(2*len(g.deg) + 8*len(g.bigDeg) + 8*len(g.blockOff))
}

// BytesPerEdge returns adjacency payload bytes per edge.
func (g *Graph) BytesPerEdge() float64 {
	if g.m == 0 {
		return 0
	}
	return float64(g.PayloadBytes()) / float64(g.m)
}

// TotalBytesPerEdge returns (payload + metadata) bytes per edge.
func (g *Graph) TotalBytesPerEdge() float64 {
	if g.m == 0 {
		return 0
	}
	return float64(g.PayloadBytes()+g.IndexBytes()) / float64(g.m)
}

// NewCursor returns a fresh decode cursor. Each concurrent reader
// needs its own.
func (g *Graph) NewCursor() graph.LinkCursor { return &Cursor{g: g, block: -1} }

var (
	_ graph.Linker       = (*Graph)(nil)
	_ graph.CursorLinker = (*Graph)(nil)
)

// Cursor is a sequential decode handle: it caches the most recently
// decoded block, so a sweep in (quasi-)ascending node order — the pass
// pipeline's shard-major work lists — decodes each block exactly once
// and serves the nodes inside it as O(1) slice views. Seeking costs one
// block-skip index lookup plus one 64-node block decode. Not safe for
// concurrent use; the slice returned by OutLinks is valid until the
// next OutLinks call.
type Cursor struct {
	g     *Graph
	block int            // currently decoded block, -1 when empty
	buf   []graph.NodeID // decoded targets of the current block
	ends  [blockNodes + 1]int32
}

// OutLinks returns the out-links of v in ascending id order, decoding
// v's block if it is not the one already cached.
//
//dpr:hotpath
func (c *Cursor) OutLinks(v graph.NodeID) []graph.NodeID {
	b := int(v) >> blockShift
	if b != c.block {
		//dpr:ignore hotpath-transitive: loadBlock's only allocation is the grow cold path, amortized to zero once the buffer fits the heaviest block
		c.loadBlock(b)
	}
	i := int(v) & blockMask
	return c.buf[c.ends[i]:c.ends[i+1]]
}

// loadBlock decodes every node of block b into the cursor's reused
// buffer. Steady-state it allocates nothing: the buffer grows (via the
// cold grow helper) to the heaviest block seen and is reused after.
// The varint loops are manually unrolled into the function — a
// per-nibble call would dominate the decode cost.
//
//dpr:hotpath
func (c *Cursor) loadBlock(b int) {
	g := c.g
	base := b << blockShift
	hi := base + blockNodes
	if hi > g.n {
		hi = g.n
	}
	tot := 0
	for v := base; v < hi; v++ {
		tot += g.OutDegree(graph.NodeID(v))
	}
	if cap(c.buf) < tot {
		//dpr:ignore hotpath-transitive: grow is the explicit cold path — it runs until the buffer fits the heaviest block, then never again
		c.grow(tot)
	}
	buf := c.buf[:tot]
	data := g.payload
	p := g.blockOff[b]
	w := int32(0)
	for i, v := 0, base; v < hi; i, v = i+1, v+1 {
		d := int32(g.OutDegree(graph.NodeID(v)))
		if d == 0 {
			c.ends[i+1] = w
			continue
		}
		segStart := w
		var k uint64
		var shift uint
		for {
			nb := data[p>>1] >> (uint(p&1) << 2) & 0xF
			p++
			k |= uint64(nb&7) << shift
			if nb < 8 {
				break
			}
			shift += 3
		}
		t := graph.NodeID(v)
		for j := int32(k); j > 0; j-- {
			var x uint64
			shift = 0
			for {
				nb := data[p>>1] >> (uint(p&1) << 2) & 0xF
				p++
				x |= uint64(nb&7) << shift
				if nb < 8 {
					break
				}
				shift += 3
			}
			t -= graph.NodeID(x) + 1
			buf[segStart+j-1] = t
		}
		t = graph.NodeID(v)
		for j := int32(k); j < d; j++ {
			var x uint64
			shift = 0
			for {
				nb := data[p>>1] >> (uint(p&1) << 2) & 0xF
				p++
				x |= uint64(nb&7) << shift
				if nb < 8 {
					break
				}
				shift += 3
			}
			t += graph.NodeID(x) + 1
			buf[segStart+j] = t
		}
		w = segStart + d
		c.ends[i+1] = w
	}
	c.buf = buf
	c.block = b
}

// grow is loadBlock's cold path: replace the decode buffer with one
// that fits tot targets.
func (c *Cursor) grow(tot int) {
	c.buf = make([]graph.NodeID, 0, tot)
}
