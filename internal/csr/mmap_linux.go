//go:build linux

package csr

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned closer unmaps; the
// data must not be touched afterwards. Empty files get a heap slice
// because mmap rejects zero length.
func mapFile(path string) (data []byte, closer func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("csr: %s: %d bytes exceeds address space", path, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("csr: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
