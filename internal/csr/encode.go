package csr

import (
	"fmt"
	"slices"
	"sort"

	"dpr/internal/graph"
)

// Encoder assembles a compressed Graph one node at a time, in node id
// order, which is exactly the shape graph.StreamPowerLaw emits — so a
// 10M+ document graph encodes as it generates, without a materialized
// edge list in between.
type Encoder struct {
	n        int
	next     int // id the next Add must supply
	m        int64
	nib      int64 // nibbles written so far
	deg      []uint16
	bigDeg   []bigDegEntry
	blockOff []int64
	payload  []byte
}

// NewEncoder returns an encoder for a graph with n nodes. Call Add for
// each node 0..n-1 in order, then Finish.
func NewEncoder(n int) *Encoder {
	if n < 0 {
		panic("csr: NewEncoder with negative n")
	}
	return &Encoder{
		n:        n,
		deg:      make([]uint16, n),
		blockOff: make([]int64, numBlocks(n)+1),
	}
}

// putVar appends x as a nibble varint: 3 data bits per nibble, low
// group first, high bit of the nibble set while more groups follow.
func (e *Encoder) putVar(x uint64) {
	for {
		nb := byte(x & 7)
		x >>= 3
		if x != 0 {
			nb |= 8
		}
		if e.nib&1 == 0 {
			e.payload = append(e.payload, nb)
		} else {
			e.payload[len(e.payload)-1] |= nb << 4
		}
		e.nib++
		if x == 0 {
			return
		}
	}
}

// Add appends node v's target list. Nodes must arrive in ascending id
// order without gaps (absent nodes have an empty list — pass nil).
// Targets must be strictly ascending, in range, and exclude v itself;
// violations return an error rather than corrupting the stream. The
// targets slice is not retained.
func (e *Encoder) Add(v graph.NodeID, targets []graph.NodeID) error {
	if int(v) != e.next {
		return fmt.Errorf("csr: Add(%d) out of order, want node %d", v, e.next)
	}
	if int(v)&blockMask == 0 {
		e.blockOff[int(v)>>blockShift] = e.nib
	}
	e.next++
	d := len(targets)
	if d >= degEscape {
		e.deg[v] = degEscape
		e.bigDeg = append(e.bigDeg, bigDegEntry{node: int32(v), deg: int32(d)})
	} else {
		e.deg[v] = uint16(d)
	}
	if d == 0 {
		return nil
	}
	e.m += int64(d)
	prev := graph.NodeID(-1)
	for _, t := range targets {
		if t <= prev {
			return fmt.Errorf("csr: node %d targets not strictly ascending (%d after %d)", v, t, prev)
		}
		if t == v {
			return fmt.Errorf("csr: node %d has a self-loop", v)
		}
		if t < 0 || int(t) >= e.n {
			return fmt.Errorf("csr: node %d links to out-of-range %d", v, t)
		}
		prev = t
	}
	// Split at the source id and emit: below-count, distances walking
	// down from v, then distances walking up.
	split := sort.Search(d, func(i int) bool { return targets[i] > v })
	e.putVar(uint64(split))
	p := v
	for j := split - 1; j >= 0; j-- {
		e.putVar(uint64(p-targets[j]) - 1)
		p = targets[j]
	}
	p = v
	for j := split; j < d; j++ {
		e.putVar(uint64(targets[j]-p) - 1)
		p = targets[j]
	}
	return nil
}

// Finish seals the encoder and returns the in-memory compressed graph.
// The encoder must not be reused afterwards.
func (e *Encoder) Finish() (*Graph, error) {
	if e.next != e.n {
		return nil, fmt.Errorf("csr: Finish after %d of %d nodes", e.next, e.n)
	}
	e.blockOff[numBlocks(e.n)] = e.nib
	g := &Graph{
		n:        e.n,
		m:        e.m,
		deg:      e.deg,
		bigDeg:   e.bigDeg,
		blockOff: e.blockOff,
		payload:  e.payload,
	}
	e.deg, e.bigDeg, e.blockOff, e.payload = nil, nil, nil, nil
	return g, nil
}

// Generate synthesizes a power-law graph directly into compressed
// form. The working set during generation is the generator's model
// state plus the growing payload — never an uncompressed edge list —
// which is what makes 10M+ document graphs practical. Same cfg (and
// seed) as graph.GeneratePowerLaw produces the identical graph.
func Generate(cfg graph.PowerLawConfig) (*Graph, graph.GenStats, error) {
	enc := NewEncoder(cfg.Nodes)
	stats, err := graph.StreamPowerLaw(cfg, enc.Add)
	if err != nil {
		return nil, stats, err
	}
	g, err := enc.Finish()
	return g, stats, err
}

// FromLinker compresses an existing graph. Lists arriving unsorted or
// carrying duplicates/self-loops are normalized first, so any Linker
// is accepted; graphs from this repo's constructors already satisfy
// the invariant and round-trip unchanged.
func FromLinker(src graph.Linker) (*Graph, error) {
	n := src.NumNodes()
	enc := NewEncoder(n)
	var scratch []graph.NodeID
	for v := 0; v < n; v++ {
		links := src.OutLinks(graph.NodeID(v))
		scratch = append(scratch[:0], links...)
		slices.Sort(scratch)
		w := 0
		prev := graph.NodeID(-1)
		for _, t := range scratch {
			if t == prev || int(t) == v {
				continue
			}
			prev = t
			scratch[w] = t
			w++
		}
		if err := enc.Add(graph.NodeID(v), scratch[:w]); err != nil {
			return nil, err
		}
	}
	return enc.Finish()
}
