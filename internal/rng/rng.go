// Package rng provides deterministic pseudo-random number generation and
// the discrete samplers (power-law, Zipf, alias-method weighted choice)
// used by the graph generator, the churn model and the corpus synthesizer.
//
// Everything in this repository that involves randomness is seeded through
// this package so that every experiment is reproducible from a single
// uint64 seed.
package rng

import "math"

// splitMix64 advances the SplitMix64 state and returns the next value.
// SplitMix64 (Steele, Lea, Flood 2014) passes BigCrush and is the
// recommended seeder for xoshiro-family generators.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic pseudo-random generator (xoshiro256**).
// It is NOT safe for concurrent use; give each goroutine its own
// generator via Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets r to the state New(seed) produces, without allocating.
// Hot loops that need one independent short-lived stream per item (the
// walk engine derives one stream per walk) reuse a single Rand value
// this way instead of constructing millions of generators.
func (r *Rand) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// Split derives an independent generator from r's current state and a
// stream identifier. Two Splits with different ids produce streams that
// are statistically independent of each other and of r.
func (r *Rand) Split(id uint64) *Rand {
	return New(r.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's nearly
// divisionless bounded-rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero bound")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct uniform values from [0, n) in random order.
// It panics if k > n.
func (r *Rand) Sample(n, k int) []int {
	if k > n {
		panic("rng: Sample k > n")
	}
	if k*4 >= n {
		// Dense: partial Fisher-Yates.
		p := r.Perm(n)
		return p[:k]
	}
	// Sparse: rejection with a set.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}
