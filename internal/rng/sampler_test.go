package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerLawSupport(t *testing.T) {
	p := NewPowerLaw(1, 50, 2.1)
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := p.Draw(r)
		if v < 1 || v > 50 {
			t.Fatalf("draw %d outside [1,50]", v)
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	// With alpha=2, P(1)/P(2) = 4. Check empirical ratio.
	p := NewPowerLaw(1, 100, 2.0)
	r := New(2)
	counts := map[int]int{}
	const n = 400000
	for i := 0; i < n; i++ {
		counts[p.Draw(r)]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-4) > 0.3 {
		t.Fatalf("P(1)/P(2) = %v, want ~4", ratio)
	}
	if counts[1] < counts[2] || counts[2] < counts[4] || counts[4] < counts[16] {
		t.Fatal("power-law counts are not decreasing in k")
	}
}

func TestPowerLawMean(t *testing.T) {
	p := NewPowerLaw(1, 1000, 2.1)
	analytic := p.Mean()
	r := New(3)
	sum := 0.0
	const n = 500000
	for i := 0; i < n; i++ {
		sum += float64(p.Draw(r))
	}
	empirical := sum / n
	if math.Abs(empirical-analytic)/analytic > 0.05 {
		t.Fatalf("empirical mean %v vs analytic %v", empirical, analytic)
	}
}

func TestPowerLawDegenerate(t *testing.T) {
	p := NewPowerLaw(3, 3, 2.4)
	r := New(4)
	for i := 0; i < 100; i++ {
		if v := p.Draw(r); v != 3 {
			t.Fatalf("single-point support drew %d", v)
		}
	}
	if m := p.Mean(); math.Abs(m-3) > 1e-12 {
		t.Fatalf("Mean of point mass = %v", m)
	}
}

func TestPowerLawPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPowerLaw(0, 5, 2) },
		func() { NewPowerLaw(5, 4, 2) },
		func() { NewPowerLaw(1, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfTopRankDominates(t *testing.T) {
	z := NewZipf(1880, 1.0)
	r := New(5)
	counts := make([]int, z.N()+1)
	for i := 0; i < 300000; i++ {
		counts[z.Draw(r)]++
	}
	if counts[1] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf counts not decreasing: c1=%d c10=%d c100=%d",
			counts[1], counts[10], counts[100])
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	a := NewAlias(w)
	r := New(6)
	counts := make([]float64, len(w))
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Draw(r)]++
	}
	for i, wi := range w {
		want := wi / 10 * n
		if math.Abs(counts[i]-want)/want > 0.05 {
			t.Fatalf("weight %d: drawn %v, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 1})
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := a.Draw(r); v == 0 || v == 2 {
			t.Fatalf("drew zero-weight index %d", v)
		}
	}
}

func TestAliasSingleton(t *testing.T) {
	a := NewAlias([]float64{5})
	r := New(8)
	for i := 0; i < 100; i++ {
		if a.Draw(r) != 0 {
			t.Fatal("singleton alias drew non-zero index")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v) did not panic", w)
				}
			}()
			NewAlias(w)
		}()
	}
}

// Property: alias table draws are always valid indices, for any random
// positive weight vector.
func TestAliasProperty(t *testing.T) {
	r := New(9)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		total := 0.0
		for i, b := range raw {
			w[i] = float64(b)
			total += w[i]
		}
		if total == 0 {
			return true
		}
		a := NewAlias(w)
		for i := 0; i < 50; i++ {
			v := a.Draw(r)
			if v < 0 || v >= len(w) || w[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPowerLawDraw(b *testing.B) {
	p := NewPowerLaw(1, 1000, 2.1)
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Draw(r)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	w := make([]float64, 10000)
	for i := range w {
		w[i] = float64(i + 1)
	}
	a := NewAlias(w)
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Draw(r)
	}
}
