package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams started identically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(10) value %d drawn %d times out of 100000 (expect ~10000)", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(31)
	for _, tc := range []struct{ n, k int }{{10, 10}, {10, 3}, {1000, 5}, {1000, 400}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d values", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid or duplicate value %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(41)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(43)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v", mean)
	}
}

// Property: Uint64n never exceeds its bound, for any bound.
func TestUint64nProperty(t *testing.T) {
	r := New(51)
	f := func(bound uint64) bool {
		if bound == 0 {
			return true
		}
		return r.Uint64n(bound) < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
