package rng

import (
	"math"
	"sort"
)

// PowerLaw samples integers k in [min, max] with P(k) proportional to
// k^(-alpha). This is the degree distribution of the Broder et al. web
// graph model the paper adopts in section 4.1 (alpha = 2.1 for
// in-degree, 2.4 for out-degree).
//
// The sampler precomputes the CDF once and draws by binary search, so a
// draw is O(log(max-min)).
type PowerLaw struct {
	min, max int
	cdf      []float64
}

// NewPowerLaw builds a sampler over [min, max] with exponent alpha > 0.
// It panics on an empty or invalid range.
func NewPowerLaw(min, max int, alpha float64) *PowerLaw {
	if min < 1 || max < min {
		panic("rng: NewPowerLaw invalid range")
	}
	if alpha <= 0 {
		panic("rng: NewPowerLaw alpha must be positive")
	}
	n := max - min + 1
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(min+i), -alpha)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &PowerLaw{min: min, max: max, cdf: cdf}
}

// Draw returns one sample.
func (p *PowerLaw) Draw(r *Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(p.cdf, u)
	if i >= len(p.cdf) {
		i = len(p.cdf) - 1
	}
	return p.min + i
}

// Mean returns the expectation of the distribution.
func (p *PowerLaw) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, c := range p.cdf {
		m += float64(p.min+i) * (c - prev)
		prev = c
	}
	return m
}

// Min and Max report the support bounds.
func (p *PowerLaw) Min() int { return p.min }
func (p *PowerLaw) Max() int { return p.max }

// Zipf samples ranks r in [1, n] with P(r) proportional to r^(-s).
// It is used by the corpus generator: term frequencies in natural text
// follow Zipf's law, which is what makes "top 100 most frequent terms"
// a meaningful query vocabulary in the paper's section 4.9.
type Zipf struct{ pl *PowerLaw }

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s.
func NewZipf(n int, s float64) *Zipf {
	return &Zipf{pl: NewPowerLaw(1, n, s)}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw(r *Rand) int { return z.pl.Draw(r) }

// N returns the number of ranks.
func (z *Zipf) N() int { return z.pl.max }

// Alias implements Walker/Vose alias sampling over arbitrary
// non-negative weights: O(n) setup, O(1) per draw. The graph generator
// uses it to pick link targets proportional to target in-degree weight.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given weights. Weights must be
// non-negative with a positive sum; it panics otherwise.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias with no weights")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewAlias negative or NaN weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("rng: NewAlias zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a
}

// Draw returns an index with probability proportional to its weight.
func (a *Alias) Draw(r *Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the number of weights in the table.
func (a *Alias) Len() int { return len(a.prob) }
