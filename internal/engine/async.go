package engine

import (
	"math"

	"dpr/internal/core"
	"dpr/internal/p2p"
)

func init() { Register("async", newAsyncEngine) }

// asyncEngine re-homes core.AsyncEngine — the live one-goroutine-per-
// peer chaotic system — behind the seam. The async engine has no
// internal step structure (that is its point), so its single Step runs
// the whole computation to distributed quiescence; subsequent Steps
// are no-ops.
//
// Residual semantics: +Inf before the run; after quiescence every
// pending per-document change is below the configured relative
// epsilon, so the engine reports that epsilon as its residual bound.
//
// Determinism: the async engine is the one seam member whose exact
// bits depend on goroutine scheduling (fold order is racy by design).
// Runs agree with each other and the reference to within the epsilon
// tolerance, not bit-for-bit; the equivalence suite tests it
// accordingly.
type asyncEngine struct {
	e   *core.AsyncEngine
	eps float64
	ran bool
	res core.Result
}

func newAsyncEngine(cfg Config) (Engine, error) {
	if err := requireStatic("async", cfg); err != nil {
		return nil, err
	}
	e, err := core.NewAsyncEngine(cfg.Graph, cfg.Net, cfg.Opt)
	if err != nil {
		return nil, err
	}
	eps := cfg.Opt.Epsilon
	if eps == 0 {
		eps = core.DefaultEpsilon
	}
	return &asyncEngine{e: e, eps: eps}, nil
}

func (a *asyncEngine) Name() string { return "async" }

func (a *asyncEngine) Step() StepStats {
	if a.ran {
		return StepStats{Step: 1, Residual: a.eps, Done: true}
	}
	a.res = a.e.Run()
	a.ran = true
	return StepStats{
		Step:      1,
		Residual:  a.eps,
		Processed: a.e.ProcessedDocs(),
		Messages:  a.res.Counters.InterPeerMsgs,
		Done:      true,
	}
}

func (a *asyncEngine) Ranks() []float64 { return a.e.Ranks() }

func (a *asyncEngine) Residual() float64 {
	if !a.ran {
		return math.Inf(1)
	}
	return a.eps
}

func (a *asyncEngine) Converged() bool { return a.ran }

func (a *asyncEngine) Counters() p2p.Counters {
	c := a.res.Counters
	if a.ran {
		c.Passes = 1
	}
	return c
}

func (a *asyncEngine) MassBalance() (got, want float64) { return a.e.MassBalance() }

var _ MassAccountant = (*asyncEngine)(nil)
