package engine

import (
	"fmt"

	"dpr/internal/chaotic"
	"dpr/internal/core"
	"dpr/internal/graph"
	"dpr/internal/p2p"
)

func init() { Register("chaotic", newChaoticEngine) }

// chaoticEngine re-homes the generic chaotic-relaxation solver
// (internal/chaotic, the §6 generalization) behind the seam by
// instantiating the pagerank system x = c + Mx with c = (1-d)·1 and
// M[t][v] = d/outdeg(v) per link v→t, then driving a Stepper in
// slices of NumNodes relaxations so one Step is one pass-equivalent
// of work. Message accounting rides the stepper's OnPush hook: every
// individual delta propagation is priced against the peer placement,
// matching the delta-push engines' per-edge accounting.
//
// Residual semantics: the largest absolute un-propagated component
// delta. The configured relative epsilon maps to the stepper's
// absolute cutoff as eps·(1-d) — (1-d) is the minimum possible rank,
// so the absolute cutoff is at least as strict as the relative one.
type chaoticEngine struct {
	st       *chaotic.Stepper
	n        int
	counters p2p.Counters
	sink     sinkRecorder
	step     int
	done     bool
	failed   error
}

func newChaoticEngine(cfg Config) (Engine, error) {
	if err := requireStatic("chaotic", cfg); err != nil {
		return nil, err
	}
	if cfg.Opt.Teleport != nil {
		return nil, fmt.Errorf("engine: chaotic does not support teleport personalization")
	}
	damping := cfg.Opt.Damping
	if damping == 0 {
		damping = core.DefaultDamping
	}
	eps := cfg.Opt.Epsilon
	if eps == 0 {
		eps = core.DefaultEpsilon
	}
	g := cfg.Graph
	n := g.NumNodes()
	c := make([]float64, n)
	for i := range c {
		c[i] = 1 - damping
	}
	entries := make([]chaotic.Entry, 0, graph.CountEdges(g))
	cur := graph.CursorFor(g)
	for v := 0; v < n; v++ {
		links := cur.OutLinks(graph.NodeID(v))
		if len(links) == 0 {
			continue
		}
		coeff := damping / float64(len(links))
		for _, t := range links {
			entries = append(entries, chaotic.Entry{Row: int(t), Col: v, Coeff: coeff})
		}
	}
	sys, err := chaotic.NewSystem(c, entries)
	if err != nil {
		return nil, err
	}
	st, err := sys.NewStepper(chaotic.Options{Eps: eps * (1 - damping)})
	if err != nil {
		return nil, err
	}
	e := &chaoticEngine{st: st, n: n, sink: sinkRecorder{sink: cfg.Sink}}
	net := cfg.Net
	st.OnPush = func(col, row int32) {
		classify(net, col, row, &e.counters)
	}
	return e, nil
}

func (e *chaoticEngine) Name() string { return "chaotic" }

func (e *chaoticEngine) Step() StepStats {
	if e.done {
		return StepStats{Step: e.step, Residual: e.Residual(), Done: true}
	}
	e.step++
	msgs0 := e.counters.InterPeerMsgs
	e.sink.start(e.step, e.n)
	ran, done, err := e.st.StepN(int64(e.n))
	if err != nil {
		// The relaxation step cap only trips on a non-contracting
		// system, which the pagerank instantiation cannot produce;
		// report non-convergence rather than looping forever.
		e.failed = err
		done = true
	}
	e.done = done
	e.counters.Passes = e.step
	res := e.st.MaxPending()
	e.sink.record(e.step, res, int(ran))
	return StepStats{
		Step:      e.step,
		Residual:  res,
		Processed: ran,
		Messages:  e.counters.InterPeerMsgs - msgs0,
		Done:      done,
	}
}

func (e *chaoticEngine) Ranks() []float64  { return e.st.X() }
func (e *chaoticEngine) Residual() float64 { return e.st.MaxPending() }
func (e *chaoticEngine) Converged() bool   { return e.done && e.failed == nil }
func (e *chaoticEngine) Counters() p2p.Counters {
	return e.counters
}

func (e *chaoticEngine) MassBalance() (got, want float64) { return e.st.MassBalance() }

var _ MassAccountant = (*chaoticEngine)(nil)
