package engine

import (
	"math"
	"testing"

	"dpr/internal/core"
)

// Cross-engine equivalence: every engine, run to a tight target on the
// same seeded graph and placement, must land on the centralized
// reference solution. The iterative engines (pass, async, chaotic,
// diffusion) are deterministic fixed-point solvers and get the 1e-6
// bar the issue sets. The walk engine is a Monte Carlo estimator: its
// error shrinks as 1/sqrt(rounds), so it gets a documented statistical
// bound instead (see TestWalkEquivalence10k).

// iterativeEps returns per-engine epsilons that all guarantee better
// than 1e-6 final error. The engines define residuals differently
// (max relative pass change, max pending delta, total remaining
// fluid), so the knobs differ while the bar is shared:
//   - pass/async: relative delta cutoff eps leaves at most
//     eps·d/(1-d) ≈ 5.7·eps relative error; 1e-8 → ~6e-8.
//   - chaotic: absolute pending cutoff eps·(1-d) per component,
//     amplified at most 1/(1-d) on fold-in; 1e-8 is ample.
//   - diffusion: residual is the average remaining mass, so the
//     worst-case per-document bound is N·eps; 1e-11 keeps even the
//     pessimistic bound at 1e-6 for the 100k graph (in practice the
//     fluid is spread and the error lands near eps).
func iterativeEps(name string) float64 {
	if name == "diffusion" {
		return 1e-11
	}
	return 1e-8
}

func runIterative(t *testing.T, name string, docs int, seed uint64) []float64 {
	t.Helper()
	cfg, _ := testCfg(t, docs, 32, seed, core.Options{Epsilon: iterativeEps(name)})
	e, err := New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Drive(e, 0)
	if !res.Converged {
		t.Fatalf("%s did not converge on %d docs", name, docs)
	}
	return res.Ranks
}

func TestIterativeEquivalence10k(t *testing.T) {
	const docs, seed = 10_000, 42
	_, g := testCfg(t, docs, 32, seed, core.Options{})
	ref := reference(t, g)
	for _, name := range []string{"pass", "async", "chaotic", "diffusion"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ranks := runIterative(t, name, docs, seed)
			if err := maxRelErr(ranks, ref); err > 1e-6 {
				t.Fatalf("%s: max rel err vs reference %v > 1e-6", name, err)
			}
		})
	}
}

func TestIterativeEquivalence100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k equivalence sweep skipped in -short")
	}
	const docs, seed = 100_000, 43
	_, g := testCfg(t, docs, 64, seed, core.Options{})
	ref := reference(t, g)
	for _, name := range []string{"pass", "async", "chaotic", "diffusion"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ranks := runIterative(t, name, docs, seed)
			if err := maxRelErr(ranks, ref); err > 1e-6 {
				t.Fatalf("%s: max rel err vs reference %v > 1e-6", name, err)
			}
		})
	}
}

// walkError drives the walk engine for exactly rounds rounds and
// returns its mean absolute rank error against the reference.
func walkError(t *testing.T, docs int, seed uint64, rounds int) float64 {
	t.Helper()
	// Epsilon well below what `rounds` rounds can reach, so the
	// engine's own stopping rule never fires early and the round count
	// is exact.
	cfg, g := testCfg(t, docs, 32, seed, core.Options{Epsilon: 1e-12})
	ref := reference(t, g)
	e, err := New("walk", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		e.Step()
	}
	sum := 0.0
	for i, r := range e.Ranks() {
		sum += math.Abs(r - ref[i])
	}
	return sum / float64(docs)
}

// TestWalkEquivalence10k documents the walk engine's statistical
// bound: with R=400 rounds the per-document standard error is
// (1-d)·sqrt(Var/R) ≈ sqrt(x·(1-d)/R) ≤ ~0.02 for typical ranks, so a
// mean absolute error of 0.05 (ranks average 1.0) has enormous slack
// and a failure indicates an estimator bug, not noise.
func TestWalkEquivalence10k(t *testing.T) {
	const docs, seed, rounds = 10_000, 42, 400
	if err := walkError(t, docs, seed, rounds); err > 0.05 {
		t.Fatalf("walk mean abs err %v > 0.05 after %d rounds", err, rounds)
	}
}

func TestWalkEquivalence100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k walk sweep skipped in -short")
	}
	// Fewer rounds on the big graph: the bound loosens to ~0.15.
	const docs, seed, rounds = 100_000, 43, 48
	if err := walkError(t, docs, seed, rounds); err > 0.15 {
		t.Fatalf("walk mean abs err %v > 0.15 after %d rounds", err, rounds)
	}
}

// TestDeterminismAcrossWorkers pins that the Workers option never
// changes the answer: the pass engine's parallel fold is designed to
// be bit-identical to the serial one, and the single-threaded engines
// must ignore the knob entirely. (async is excluded: its fold order is
// scheduling-dependent by design, see TestAsyncRunToRunTolerance.)
func TestDeterminismAcrossWorkers(t *testing.T) {
	const docs, seed = 3_000, 7
	for _, name := range []string{"pass", "chaotic", "diffusion", "walk"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var runs [2][]float64
			for i, workers := range []int{1, 4} {
				opt := core.Options{Epsilon: 1e-6, Workers: workers}
				cfg, _ := testCfg(t, docs, 16, seed, opt)
				e, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for s := 0; s < 40; s++ {
					if e.Step().Done {
						break
					}
				}
				runs[i] = append([]float64(nil), e.Ranks()...)
			}
			for i := range runs[0] {
				if runs[0][i] != runs[1][i] {
					t.Fatalf("%s: rank[%d] differs across workers: %v vs %v",
						name, i, runs[0][i], runs[1][i])
				}
			}
		})
	}
}

// TestDeterminismAcrossRuns pins bit-identical replay: two engines
// built from the same Config must emit identical ranks, step counts
// and message totals.
func TestDeterminismAcrossRuns(t *testing.T) {
	const docs, seed = 3_000, 11
	for _, name := range []string{"pass", "chaotic", "diffusion", "walk"} {
		name := name
		t.Run(name, func(t *testing.T) {
			type run struct {
				ranks []float64
				steps int
				msgs  int64
			}
			var runs [2]run
			for i := range runs {
				cfg, _ := testCfg(t, docs, 16, seed, core.Options{Epsilon: 1e-7})
				e, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				steps := 0
				for s := 0; s < 200; s++ {
					st := e.Step()
					steps = st.Step
					if st.Done {
						break
					}
				}
				runs[i] = run{
					ranks: append([]float64(nil), e.Ranks()...),
					steps: steps,
					msgs:  e.Counters().InterPeerMsgs,
				}
			}
			if runs[0].steps != runs[1].steps {
				t.Fatalf("%s: step counts differ: %d vs %d", name, runs[0].steps, runs[1].steps)
			}
			if runs[0].msgs != runs[1].msgs {
				t.Fatalf("%s: message counts differ: %d vs %d", name, runs[0].msgs, runs[1].msgs)
			}
			for i := range runs[0].ranks {
				if runs[0].ranks[i] != runs[1].ranks[i] {
					t.Fatalf("%s: rank[%d] differs across runs: %v vs %v",
						name, i, runs[0].ranks[i], runs[1].ranks[i])
				}
			}
		})
	}
}

// TestAsyncRunToRunTolerance is the async engine's determinism
// contract: exact bits depend on goroutine scheduling, so two runs
// agree to within the epsilon-derived tolerance rather than
// bit-for-bit. Each run's distance from the fixed point is bounded by
// roughly eps·d/(1-d) ≈ 5.7·eps, so at eps=1e-8 two runs sit within
// ~1.2e-7 of each other; the 1e-6 bar has an order of magnitude of
// slack.
func TestAsyncRunToRunTolerance(t *testing.T) {
	const docs, seed = 3_000, 11
	var runs [2][]float64
	for i := range runs {
		cfg, _ := testCfg(t, docs, 16, seed, core.Options{Epsilon: 1e-8})
		e, err := New("async", cfg)
		if err != nil {
			t.Fatal(err)
		}
		Drive(e, 0)
		runs[i] = append([]float64(nil), e.Ranks()...)
	}
	if err := maxRelErr(runs[0], runs[1]); err > 1e-6 {
		t.Fatalf("async runs diverge by %v > 1e-6", err)
	}
}
