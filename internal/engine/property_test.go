package engine

import (
	"math"
	"testing"
	"testing/quick"

	"dpr/internal/core"
)

// Property suite (testing/quick): randomized graphs, seeds and step
// budgets drive invariants that must hold at every step, not just at
// convergence — the double-entry bookkeeping that catches lost or
// duplicated mass long before it shows up as a wrong rank.

// quickCfg clamps testing/quick's arbitrary inputs into a valid
// engine configuration.
func quickCfg(t *testing.T, rawDocs, rawPeers uint16, seed uint64) Config {
	t.Helper()
	docs := 50 + int(rawDocs)%400
	peers := 2 + int(rawPeers)%14
	cfg, _ := testCfg(t, docs, peers, seed, core.Options{Epsilon: 1e-6})
	return cfg
}

func quickConf() *quick.Config { return &quick.Config{MaxCount: 6} }

// TestQuickMassConservation: after every step of every accounting
// engine, the folded-side and shipped-side rank-mass ledgers agree to
// float rounding. The async engine is audited only at quiescence (its
// single step), where mailbox mass is guaranteed drained.
func TestQuickMassConservation(t *testing.T) {
	for _, name := range []string{"pass", "async", "chaotic", "diffusion", "walk"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prop := func(rawDocs, rawPeers uint16, seed uint64, rawSteps uint8) bool {
				cfg := quickCfg(t, rawDocs, rawPeers, seed)
				e, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ma := e.(MassAccountant)
				steps := 1 + int(rawSteps)%6
				for s := 0; s < steps; s++ {
					st := e.Step()
					got, want := ma.MassBalance()
					denom := math.Abs(want)
					if denom < 1 {
						denom = 1
					}
					if math.Abs(got-want)/denom > 1e-9 {
						t.Logf("%s step %d: mass got %v want %v", name, s+1, got, want)
						return false
					}
					if st.Done {
						break
					}
				}
				return true
			}
			if err := quick.Check(prop, quickConf()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickWalkMassExact: the walk ledger is integer arithmetic, so
// it gets the stricter exact-equality form of the conservation law:
// total visits == walks started + hops taken, with no tolerance.
func TestQuickWalkMassExact(t *testing.T) {
	prop := func(rawDocs, rawPeers uint16, seed uint64, rawSteps uint8) bool {
		cfg := quickCfg(t, rawDocs, rawPeers, seed)
		e, err := New("walk", cfg)
		if err != nil {
			t.Fatal(err)
		}
		steps := 1 + int(rawSteps)%5
		for s := 0; s < steps; s++ {
			e.Step()
		}
		got, want := e.(MassAccountant).MassBalance()
		return got == want
	}
	if err := quick.Check(prop, quickConf()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiffusionMonotoneResidual: each diffusion sweep removes
// fluid f and injects at most d·f, so the residual (total remaining
// fluid, normalized) never increases — on any graph, from any seed.
func TestQuickDiffusionMonotoneResidual(t *testing.T) {
	prop := func(rawDocs, rawPeers uint16, seed uint64) bool {
		cfg := quickCfg(t, rawDocs, rawPeers, seed)
		e, err := New("diffusion", cfg)
		if err != nil {
			t.Fatal(err)
		}
		prev := e.Residual()
		for s := 0; s < 25; s++ {
			st := e.Step()
			if st.Residual > prev {
				t.Logf("step %d: residual rose %v -> %v", st.Step, prev, st.Residual)
				return false
			}
			prev = st.Residual
			if st.Done {
				break
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConf()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSnapshotRestartEquivalence: for every checkpointing engine,
// interrupting a run at an arbitrary step boundary, snapshotting, and
// restoring into a FRESH engine must land on bit-identical final ranks
// versus the uninterrupted run — the restart-safety contract the
// paper's churn model leans on.
func TestQuickSnapshotRestartEquivalence(t *testing.T) {
	for _, name := range []string{"pass", "diffusion"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prop := func(rawDocs, rawPeers uint16, seed uint64, rawCut uint8) bool {
				docs := 50 + int(rawDocs)%400
				peers := 2 + int(rawPeers)%14
				opt := core.Options{Epsilon: 1e-8}

				// Uninterrupted run.
				cfgA, _ := testCfg(t, docs, peers, seed, opt)
				a, err := New(name, cfgA)
				if err != nil {
					t.Fatal(err)
				}
				cut := 1 + int(rawCut)%5
				for s := 0; s < cut; s++ {
					a.Step()
				}
				snap, err := a.(Checkpointer).Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				resA := Drive(a, 0)

				// Fresh engine over an identically rebuilt world, fast-
				// forwarded from the snapshot.
				cfgB, _ := testCfg(t, docs, peers, seed, opt)
				b, err := New(name, cfgB)
				if err != nil {
					t.Fatal(err)
				}
				if err := b.(Checkpointer).Restore(snap); err != nil {
					t.Fatal(err)
				}
				resB := Drive(b, 0)

				if resA.Converged != resB.Converged {
					t.Logf("%s: converged mismatch %v vs %v", name, resA.Converged, resB.Converged)
					return false
				}
				for i := range resA.Ranks {
					if resA.Ranks[i] != resB.Ranks[i] {
						t.Logf("%s: rank[%d] %v (uninterrupted) vs %v (restored)",
							name, i, resA.Ranks[i], resB.Ranks[i])
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, quickConf()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
