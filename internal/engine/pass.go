package engine

import (
	"bytes"

	"dpr/internal/core"
	"dpr/internal/p2p"
)

func init() { Register("pass", newPassEngine) }

// passEngine re-homes core.PassEngine — the paper's §4.2 synchronized
// pass simulation — behind the seam, with no behavior change: a Step
// is exactly one RunPass, and the existing bit-identity and bench
// gates keep holding on the underlying engine. It is the only engine
// supporting churn (the pass boundary is where the paper's leave/join
// model is defined), and it checkpoints via the core checkpoint
// format.
//
// Residual semantics: the most recent pass's maximum relative rank
// change (PassStats.MaxChange).
type passEngine struct {
	e *core.PassEngine
}

func newPassEngine(cfg Config) (Engine, error) {
	e, err := core.NewPassEngine(cfg.Graph, cfg.Net, cfg.Churn, cfg.Opt)
	if err != nil {
		return nil, err
	}
	e.Sink = cfg.Sink
	return &passEngine{e: e}, nil
}

func (p *passEngine) Name() string { return "pass" }

func (p *passEngine) Step() StepStats {
	if p.e.Converged() {
		return StepStats{Step: p.e.Pass(), Residual: p.e.LastResidual(), Done: true}
	}
	st := p.e.RunPass()
	return StepStats{
		Step:      st.Pass,
		Residual:  st.MaxChange,
		Processed: int64(st.ProcessedDocs),
		Messages:  st.InterMsgs,
		Done:      p.e.Converged(),
	}
}

func (p *passEngine) Ranks() []float64       { return p.e.Ranks() }
func (p *passEngine) Residual() float64      { return p.e.LastResidual() }
func (p *passEngine) Converged() bool        { return p.e.Converged() }
func (p *passEngine) Counters() p2p.Counters { return p.e.Counters() }

func (p *passEngine) MassBalance() (got, want float64) { return p.e.MassBalance() }

func (p *passEngine) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.e.WriteCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (p *passEngine) Restore(snap []byte) error {
	return p.e.RestoreCheckpoint(bytes.NewReader(snap))
}

var (
	_ Checkpointer   = (*passEngine)(nil)
	_ MassAccountant = (*passEngine)(nil)
)
