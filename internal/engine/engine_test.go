package engine

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dpr/internal/core"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

// testCfg builds a seeded power-law graph with random peer placement —
// the same placement derivation the experiments package uses, so
// engine tests and harness runs see identical topologies.
func testCfg(t testing.TB, docs, peers int, seed uint64, opt core.Options) (Config, *graph.Graph) {
	t.Helper()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(docs, seed))
	net := p2p.NewNetwork(peers)
	net.AssignRandom(g, rng.New(seed^0xa5a5))
	return Config{Graph: g, Net: net, Opt: opt, Seed: seed}, g
}

// reference computes tightly converged centralized ranks.
func reference(t testing.TB, g *graph.Graph) []float64 {
	t.Helper()
	res, err := solver.Power(g, solver.Config{Tol: 1e-13, MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ranks
}

func TestNamesSortedAndComplete(t *testing.T) {
	want := []string{"async", "chaotic", "diffusion", "pass", "walk"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestRegistryResolution(t *testing.T) {
	cfg, _ := testCfg(t, 200, 8, 1, core.Options{Epsilon: 1e-4})
	cases := []struct {
		name    string
		wantErr string // substring of the expected error, "" for success
	}{
		{name: "pass"},
		{name: "async"},
		{name: "chaotic"},
		{name: "diffusion"},
		{name: "walk"},
		{name: "", wantErr: `unknown engine ""`},
		{name: "Pass", wantErr: `unknown engine "Pass"`},
		{name: "gauss-seidel", wantErr: "valid: async, chaotic, diffusion, pass, walk"},
	}
	for _, tc := range cases {
		t.Run("name="+tc.name, func(t *testing.T) {
			e, err := New(tc.name, cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New(%q) failed: %v", tc.name, err)
				}
				if e.Name() != tc.name {
					t.Fatalf("Name() = %q, want %q", e.Name(), tc.name)
				}
				return
			}
			if err == nil {
				t.Fatalf("New(%q) succeeded, want error containing %q", tc.name, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New(%q) error = %q, want substring %q", tc.name, err, tc.wantErr)
			}
		})
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("pass", newPassEngine)
}

func TestConfigValidation(t *testing.T) {
	cfg, _ := testCfg(t, 50, 4, 2, core.Options{})
	if _, err := New("pass", Config{Net: cfg.Net}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New("pass", Config{Graph: cfg.Graph}); err == nil {
		t.Fatal("nil network accepted")
	}
}

// TestStaticOnlyEnginesRejectChurn pins the seam contract that churn
// stays a pass-engine capability: the store-and-retry path the other
// engines lack is what makes offline peers survivable.
func TestStaticOnlyEnginesRejectChurn(t *testing.T) {
	for _, name := range []string{"async", "chaotic", "diffusion", "walk"} {
		cfg, _ := testCfg(t, 50, 4, 3, core.Options{})
		churn, err := p2p.NewChurn(cfg.Net, 0.5, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Churn = churn
		if _, err := New(name, cfg); err == nil {
			t.Fatalf("%s accepted churn", name)
		}
	}
}

// TestDriveStopsOnDone pins that Drive returns once the engine's own
// stopping rule fires and that stepping past Done is harmless.
func TestDriveStopsOnDone(t *testing.T) {
	cfg, g := testCfg(t, 500, 8, 4, core.Options{Epsilon: 1e-8})
	e, err := New("diffusion", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Drive(e, 0)
	if !res.Converged {
		t.Fatal("diffusion did not converge")
	}
	if err := maxRelErr(res.Ranks, reference(t, g)); err > 1e-6 {
		t.Fatalf("rel err %v > 1e-6", err)
	}
	st := e.Step()
	if !st.Done {
		t.Fatal("Step after Done not Done")
	}
	if st.Processed != 0 {
		t.Fatalf("Step after Done did %d work", st.Processed)
	}
}

func maxRelErr(got, want []float64) float64 {
	worst := 0.0
	for i := range got {
		denom := math.Abs(want[i])
		if denom < 1 {
			denom = 1
		}
		if e := math.Abs(got[i]-want[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}
