// Package engine is the solver seam: one wire/membership/telemetry
// stack, many solvers. The paper's §2.2 chaotic iteration is a single
// point in a design space that also contains synchronized passes,
// D-Iteration-style residual diffusion (Hong et al.) and random-walk
// rank estimation (Das Sarma et al.); this package puts every solver
// behind one interface so they share graph substrates (plain, CSR,
// mmap via graph.Linker/CursorLinker), peer placement, message
// accounting, deterministic seeding and the telemetry sink — and so
// the convergence race harness (internal/race) can compare them on
// equal footing.
//
// Five engines register at init: "pass" (core.PassEngine, the paper's
// §4.2 simulation), "async" (core.AsyncEngine, the live goroutine
// system), "chaotic" (the generic relaxation solver of
// internal/chaotic on the pagerank system), "diffusion" (per-node
// residual fluid pushed along out-links, work-list ordered by
// remaining fluid) and "walk" (a seeded walk ensemble with
// visit-count rank estimation and an ε-precision stopping rule).
package engine

import (
	"fmt"
	"sort"
	"strings"

	"dpr/internal/core"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/telemetry"
)

// Config is everything an engine needs to start: the graph (any
// Linker; engines mint per-worker cursors via graph.CursorFor so the
// compressed and mmap substrates slot in unchanged), the peer
// placement, the shared solver options, a deterministic seed for
// randomized engines, and an optional telemetry sink.
type Config struct {
	Graph graph.Linker
	Net   *p2p.Network
	Churn *p2p.Churn // pass engine only; others reject non-nil
	Opt   core.Options
	Seed  uint64
	Sink  *telemetry.PassSink
}

func (c Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("engine: nil graph")
	}
	if c.Net == nil {
		return fmt.Errorf("engine: nil network")
	}
	return nil
}

// StepStats reports one engine step. A step is the engine's natural
// unit of scheduling — a pass, a relaxation slice, a diffusion sweep,
// a walk round — so raw step counts are not comparable across
// engines; Processed is (it counts document visits), which is what
// the race harness normalizes into equivalent passes.
type StepStats struct {
	Step      int     // 1-based step number
	Residual  float64 // engine's own residual estimate after the step
	Processed int64   // document visits (or walk origins) this step
	Messages  int64   // cross-peer messages sent this step
	Done      bool    // the engine's own stopping rule fired
}

// Engine is the common seam. Implementations are not safe for
// concurrent use; drive one engine from one goroutine.
type Engine interface {
	// Name returns the registry name the engine was constructed under.
	Name() string
	// Step advances the solver by one unit of work. Calling Step after
	// Done is harmless (it reports Done again without working).
	Step() StepStats
	// Ranks is the current estimate (live view; copy before mutating
	// the engine further).
	Ranks() []float64
	// Residual is the engine's own convergence residual. Semantics are
	// per-engine (documented on each) but all decrease toward the
	// configured epsilon.
	Residual() float64
	// Converged reports the engine's own stopping rule.
	Converged() bool
	// Counters exposes message accounting on the shared p2p ledger.
	Counters() p2p.Counters
}

// Checkpointer is implemented by engines whose full solver state can
// be captured and restored: a restore into a fresh engine over the
// same graph and placement must continue exactly as the original
// would have (the property suite asserts bit-identical final ranks).
type Checkpointer interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// MassAccountant is implemented by engines with an internal rank-mass
// conservation identity: two totals kept by independent bookkeeping
// (folded-side vs shipped-side) that exact accounting keeps equal up
// to float rounding. The property suite audits it after every step.
type MassAccountant interface {
	MassBalance() (got, want float64)
}

// Factory constructs a registered engine.
type Factory func(Config) (Engine, error)

var (
	registry = map[string]Factory{}
	// names is maintained sorted at Register time so listings never
	// depend on map iteration order (determinism contract).
	names []string
)

// Register adds an engine under name. It panics on duplicates —
// registration happens at init and a collision is a programming error.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", name))
	}
	registry[name] = f
	names = append(names, name)
	sort.Strings(names)
}

// Names returns the registered engine names, sorted.
func Names() []string {
	return append([]string(nil), names...)
}

// New constructs the named engine. An unknown name lists the valid
// engines in the error so -engine typos are self-explaining.
func New(name string, cfg Config) (Engine, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return f(cfg)
}

// Drive steps e until its own stopping rule fires or maxSteps steps
// have run, returning the final state in the core result shape.
// maxSteps <= 0 means the engine options' MaxPass.
func Drive(e Engine, maxSteps int) core.Result {
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	steps := 0
	for steps < maxSteps {
		st := e.Step()
		steps = st.Step
		if st.Done {
			break
		}
	}
	c := e.Counters()
	return core.Result{
		Ranks:     e.Ranks(),
		Passes:    c.Passes,
		Converged: e.Converged(),
		Counters:  c,
	}
}

// classify routes one delivered share for message accounting: free
// within a peer, a counted network message across peers. Engines
// without a store-and-retry path (everything but "pass") require a
// fully online network, which their factories enforce.
func classify(net *p2p.Network, from, to graph.NodeID, c *p2p.Counters) {
	if net.SamePeer(from, to) {
		c.IntraPeerMsgs++
	} else {
		c.InterPeerMsgs++
	}
}

// sinkRecorder adapts the optional telemetry PassSink so the new
// engines record residual decay and per-step work through the same
// instruments the pass engine uses, without nil checks at every call
// site. (The pass adapter wires the sink straight into
// core.PassEngine instead.)
type sinkRecorder struct {
	sink *telemetry.PassSink
}

func (s sinkRecorder) start(step, pending int) {
	if s.sink != nil {
		s.sink.PassStart(step, pending)
	}
}

func (s sinkRecorder) record(step int, residual float64, docs int) {
	if s.sink != nil {
		s.sink.RecordPass(step, residual, docs, 0)
	}
}

// requireStatic rejects configurations only the pass engine supports.
func requireStatic(name string, cfg Config) error {
	if cfg.Churn != nil {
		return fmt.Errorf("engine: %s does not support churn (only pass does)", name)
	}
	if cfg.Net.NumOnline() != cfg.Net.NumPeers() {
		return fmt.Errorf("engine: %s requires all peers online", name)
	}
	return nil
}
