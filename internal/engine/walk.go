package engine

import (
	"fmt"
	"math"

	"dpr/internal/core"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

func init() { Register("walk", newWalkEngine) }

// walkEngine estimates pagerank with a seeded random-walk ensemble
// (Das Sarma et al., PAPERS.md): each round starts one walk at every
// document; a walk at v counts a visit, then continues with
// probability d to a uniformly random out-neighbor (walks at dangling
// documents terminate). The expected visit count per round is
// x_v/((1-d)·N)·N = x_v/(1-d) for the scaled ranks this repo uses
// (sum ≈ N), so after R rounds the estimator is
//
//	rank_v = (1-d) · visits_v / R.
//
// Stopping rule: ε-precision on the estimator itself. The engine
// tracks per-document visit variance across rounds and stops when the
// worst-case 3σ confidence halfwidth of rank_v falls below the
// configured epsilon — a statistical bound, not the deterministic
// residual of the iterative engines, and the reason the equivalence
// suite holds this engine to a documented statistical tolerance
// rather than 1e-6.
//
// Determinism: walk (round, origin) reseeds a private generator from
// mix(seed, round, origin), so every walk's trajectory is a pure
// function of the seed — independent of visit order, worker count and
// substrate. Visit counts are exact integers, making cross-run and
// cross-worker comparisons bit-identical.
type walkEngine struct {
	g   graph.Linker
	cur graph.LinkCursor
	net *p2p.Network

	damping float64
	eps     float64
	seed    uint64

	visits  []int64 // cumulative visit counts across all rounds
	sumsq   []float64
	scratch []int64 // per-round visit counts
	rank    []float64

	starts int64 // total walks started (N per round)
	hops   int64 // total walk transitions taken

	counters p2p.Counters
	sink     sinkRecorder
	round    int
	r        rng.Rand
}

func newWalkEngine(cfg Config) (Engine, error) {
	if err := requireStatic("walk", cfg); err != nil {
		return nil, err
	}
	if cfg.Opt.Teleport != nil {
		return nil, fmt.Errorf("engine: walk does not support teleport personalization")
	}
	damping := cfg.Opt.Damping
	if damping == 0 {
		damping = core.DefaultDamping
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("engine: damping %v outside (0,1)", damping)
	}
	eps := cfg.Opt.Epsilon
	if eps == 0 {
		eps = core.DefaultEpsilon
	}
	n := cfg.Graph.NumNodes()
	return &walkEngine{
		g:       cfg.Graph,
		cur:     graph.CursorFor(cfg.Graph),
		net:     cfg.Net,
		damping: damping,
		eps:     eps,
		seed:    cfg.Seed,
		visits:  make([]int64, n),
		sumsq:   make([]float64, n),
		scratch: make([]int64, n),
		rank:    make([]float64, n),
		sink:    sinkRecorder{sink: cfg.Sink},
	}, nil
}

func (e *walkEngine) Name() string { return "walk" }

// walkSeed derives the per-(round, origin) generator seed. SplitMix-
// style multiply-xor mixing keeps nearby (round, origin) pairs
// statistically independent.
func walkSeed(seed uint64, round int, origin graph.NodeID) uint64 {
	z := seed ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ (uint64(uint32(origin)) * 0xbf58476d1ce4e5b9)
	z ^= z >> 30
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (e *walkEngine) Step() StepStats {
	if e.Converged() {
		return StepStats{Step: e.round, Residual: e.Residual(), Done: true}
	}
	e.round++
	n := len(e.visits)
	msgs0 := e.counters.InterPeerMsgs
	e.sink.start(e.round, n)
	for i := range e.scratch {
		e.scratch[i] = 0
	}
	for origin := 0; origin < n; origin++ {
		e.r.Reseed(walkSeed(e.seed, e.round, graph.NodeID(origin)))
		v := graph.NodeID(origin)
		e.starts++
		for {
			e.scratch[v]++
			links := e.cur.OutLinks(v)
			if len(links) == 0 || e.r.Float64() >= e.damping {
				break
			}
			next := links[e.r.Intn(len(links))]
			classify(e.net, v, next, &e.counters)
			e.hops++
			v = next
		}
	}
	for i, c := range e.scratch {
		e.visits[i] += c
		e.sumsq[i] += float64(c) * float64(c)
	}
	e.refreshRanks()
	e.counters.Passes = e.round
	res := e.Residual()
	e.sink.record(e.round, res, n)
	return StepStats{
		Step:      e.round,
		Residual:  res,
		Processed: int64(n),
		Messages:  e.counters.InterPeerMsgs - msgs0,
		Done:      e.Converged(),
	}
}

func (e *walkEngine) refreshRanks() {
	scale := (1 - e.damping) / float64(e.round)
	for i, c := range e.visits {
		e.rank[i] = scale * float64(c)
	}
}

// Residual is the worst-case 3σ confidence halfwidth of the rank
// estimator: 3·(1-d)·sqrt(Var[visits per round]/R)/sqrt(R) where the
// per-round variance is estimated from the sample sum of squares.
// Infinite before the second round (no variance estimate yet).
func (e *walkEngine) Residual() float64 {
	r := float64(e.round)
	if e.round < 2 {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range e.visits {
		mean := float64(e.visits[i]) / r
		variance := e.sumsq[i]/r - mean*mean
		if variance < 0 {
			variance = 0 // float cancellation on near-constant counts
		}
		// Unbiased sample variance, then the sample-mean variance.
		variance *= r / (r - 1)
		if hw := 3 * (1 - e.damping) * math.Sqrt(variance/r); hw > worst {
			worst = hw
		}
	}
	return worst
}

func (e *walkEngine) Ranks() []float64 { return e.rank }

func (e *walkEngine) Converged() bool { return e.round >= 2 && e.Residual() <= e.eps }

func (e *walkEngine) Counters() p2p.Counters { return e.counters }

// MassBalance for the walk ensemble is exact integer accounting:
// every visit is either a walk start or the landing of a hop.
func (e *walkEngine) MassBalance() (got, want float64) {
	var total int64
	for _, c := range e.visits {
		total += c
	}
	return float64(total), float64(e.starts + e.hops)
}

var _ MassAccountant = (*walkEngine)(nil)
