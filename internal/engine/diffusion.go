package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"dpr/internal/core"
	"dpr/internal/graph"
	"dpr/internal/p2p"
)

func init() { Register("diffusion", newDiffusionEngine) }

// diffusionEngine implements the D-Iteration diffusion method (Hong
// et al., PAPERS.md): every document carries un-diffused residual
// "fluid"; diffusing document v absorbs its fluid f into its rank and
// pushes d·f/outdeg(v) of new fluid along each out-link (dangling
// documents absorb without pushing). Any diffusion order reaches the
// same fixed point x = (1-d)·1 + d·AᵀX — the same one the iterative
// engines converge to — but ordering work by remaining fluid
// concentrates effort where the residual actually is, which is why
// this engine reaches a given residual in fewer document visits
// (equivalent passes) than the everything-dirty pass engine.
//
// A Step is one thresholded sweep: starting from half the current
// maximum fluid, the threshold is halved until the documents above it
// carry at least half the total remaining fluid, and every document
// at or above it is diffused in ascending order (absorbing same-sweep
// inflow greedily — the Gauss-Seidel effect). The half-the-mass rule
// is what makes the schedule robust on skewed graphs: a sweep always
// removes at least (1-d)/2 of the remaining fluid — geometric decay
// with factor ≤ 1-(1-d)/2 per sweep — while the work-list stays small
// whenever the fluid is concentrated in a few hubs. The schedule is
// recomputed from live state each sweep, so it is stateless and fully
// deterministic for any substrate.
//
// Residual semantics: sum(fluid) / ((1-d)·N) — an upper bound on the
// average per-document rank mass still to arrive, in the same units
// as the iterative engines' relative epsilon (ranks are ≥ 1-d, and
// the total remaining rank increment is at most sum(fluid)/(1-d)).
// The residual is monotone non-increasing: a diffusion removes f and
// injects at most d·f.
type diffusionEngine struct {
	g   graph.Linker
	cur graph.LinkCursor
	net *p2p.Network

	damping float64
	eps     float64

	rank  []float64 // absorbed fluid; converges to the pagerank
	fluid []float64 // un-diffused residual mass, always >= 0
	base  []float64 // initial injection, kept for the mass audit

	// folded accumulates arrival-side mass (every share added to some
	// document's fluid); the conservation identity in MassBalance
	// checks it against the state arrays.
	folded float64

	counters p2p.Counters
	sink     sinkRecorder
	step     int
	work     []graph.NodeID // sweep scratch, reused
}

func newDiffusionEngine(cfg Config) (Engine, error) {
	if err := requireStatic("diffusion", cfg); err != nil {
		return nil, err
	}
	damping := cfg.Opt.Damping
	if damping == 0 {
		damping = core.DefaultDamping
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("engine: damping %v outside (0,1)", damping)
	}
	eps := cfg.Opt.Epsilon
	if eps == 0 {
		eps = core.DefaultEpsilon
	}
	n := cfg.Graph.NumNodes()
	e := &diffusionEngine{
		g:       cfg.Graph,
		cur:     graph.CursorFor(cfg.Graph),
		net:     cfg.Net,
		damping: damping,
		eps:     eps,
		rank:    make([]float64, n),
		fluid:   make([]float64, n),
		base:    make([]float64, n),
		sink:    sinkRecorder{sink: cfg.Sink},
	}
	if cfg.Opt.Teleport != nil {
		if len(cfg.Opt.Teleport) != n {
			return nil, fmt.Errorf("engine: Teleport has %d weights for %d documents", len(cfg.Opt.Teleport), n)
		}
		sum := 0.0
		for i, w := range cfg.Opt.Teleport {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("engine: Teleport[%d] = %v invalid", i, w)
			}
			sum += w
		}
		if sum <= 0 {
			return nil, fmt.Errorf("engine: Teleport weights sum to %v", sum)
		}
		scale := (1 - damping) * float64(n) / sum
		for i, w := range cfg.Opt.Teleport {
			e.base[i] = scale * w
		}
	} else {
		for i := range e.base {
			e.base[i] = 1 - damping
		}
	}
	copy(e.fluid, e.base)
	return e, nil
}

func (e *diffusionEngine) Name() string { return "diffusion" }

// diffuse absorbs document v's fluid and pushes the damped shares.
func (e *diffusionEngine) diffuse(v graph.NodeID) {
	f := e.fluid[v]
	e.fluid[v] = 0
	e.rank[v] += f
	links := e.cur.OutLinks(v)
	if len(links) == 0 {
		return
	}
	share := e.damping * f / float64(len(links))
	for _, t := range links {
		e.fluid[t] += share
		e.folded += share
		classify(e.net, v, t, &e.counters)
	}
}

func (e *diffusionEngine) Step() StepStats {
	if e.Converged() {
		return StepStats{Step: e.step, Residual: e.Residual(), Done: true}
	}
	e.step++
	msgs0 := e.counters.InterPeerMsgs

	// Threshold for this sweep: half the live maximum fluid, halved
	// further until the band above it holds at least half the total
	// remaining fluid (the geometric-decay guarantee). The selected
	// documents are diffused in ascending order (block-decoding
	// cursors amortize, and the order is substrate- and worker-
	// independent) and greedily — same-sweep inflow is absorbed on
	// visit, not deferred.
	var m, sum float64
	for _, f := range e.fluid {
		sum += f
		if f > m {
			m = f
		}
	}
	thr := m / 2
	for thr > 0 {
		above := 0.0
		for _, f := range e.fluid {
			if f >= thr {
				above += f
			}
		}
		if 2*above >= sum {
			break
		}
		thr /= 2
	}
	work := e.work[:0]
	for v, f := range e.fluid {
		if f >= thr {
			work = append(work, graph.NodeID(v))
		}
	}
	e.work = work
	e.sink.start(e.step, len(work))
	for _, v := range work {
		e.diffuse(v)
	}
	e.counters.Passes = e.step
	res := e.Residual()
	e.sink.record(e.step, res, len(work))
	return StepStats{
		Step:      e.step,
		Residual:  res,
		Processed: int64(len(work)),
		Messages:  e.counters.InterPeerMsgs - msgs0,
		Done:      e.Converged(),
	}
}

func (e *diffusionEngine) Ranks() []float64 { return e.rank }

func (e *diffusionEngine) Residual() float64 {
	total := 0.0
	for _, f := range e.fluid {
		total += f
	}
	return total / ((1 - e.damping) * float64(len(e.fluid)))
}

func (e *diffusionEngine) Converged() bool { return e.Residual() <= e.eps }

func (e *diffusionEngine) Counters() p2p.Counters { return e.counters }

// MassBalance checks the flow ledger against the state arrays:
// everything ever added to fluid (the initial base plus the folded
// arrivals) must equal what is still waiting plus what was absorbed.
func (e *diffusionEngine) MassBalance() (got, want float64) {
	var fluidSum, rankSum, baseSum float64
	for i := range e.fluid {
		fluidSum += e.fluid[i]
		rankSum += e.rank[i]
		baseSum += e.base[i]
	}
	return fluidSum + rankSum, baseSum + e.folded
}

const diffusionSnapMagic = "DPRD"

// Snapshot captures the full solver state; Restore into a fresh
// engine over the same graph and placement continues bit-identically
// (the threshold schedule is stateless, so rank+fluid+ledger is the
// complete state).
func (e *diffusionEngine) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(diffusionSnapMagic)
	n := len(e.rank)
	head := []uint64{uint64(n), math.Float64bits(e.damping), math.Float64bits(e.folded), uint64(e.step)}
	for _, v := range head {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	for _, arr := range [][]float64{e.rank, e.fluid, e.base} {
		for _, f := range arr {
			if err := binary.Write(&buf, binary.LittleEndian, math.Float64bits(f)); err != nil {
				return nil, err
			}
		}
	}
	cnt := []int64{e.counters.InterPeerMsgs, e.counters.IntraPeerMsgs, int64(e.counters.Passes)}
	for _, v := range cnt {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func (e *diffusionEngine) Restore(snap []byte) error {
	r := bytes.NewReader(snap)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != diffusionSnapMagic {
		return fmt.Errorf("engine: bad diffusion snapshot magic %q", magic)
	}
	var head [4]uint64
	for i := range head {
		if err := binary.Read(r, binary.LittleEndian, &head[i]); err != nil {
			return fmt.Errorf("engine: reading diffusion snapshot header: %w", err)
		}
	}
	if int(head[0]) != len(e.rank) {
		return fmt.Errorf("engine: snapshot has %d documents, graph has %d", head[0], len(e.rank))
	}
	if d := math.Float64frombits(head[1]); d != e.damping {
		return fmt.Errorf("engine: snapshot damping %v != engine damping %v", d, e.damping)
	}
	e.folded = math.Float64frombits(head[2])
	e.step = int(head[3])
	for _, arr := range [][]float64{e.rank, e.fluid, e.base} {
		for i := range arr {
			var bits uint64
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("engine: reading diffusion snapshot body: %w", err)
			}
			arr[i] = math.Float64frombits(bits)
		}
	}
	cnt := [3]int64{}
	for i := range cnt {
		if err := binary.Read(r, binary.LittleEndian, &cnt[i]); err != nil {
			return fmt.Errorf("engine: reading diffusion snapshot counters: %w", err)
		}
	}
	e.counters = p2p.Counters{InterPeerMsgs: cnt[0], IntraPeerMsgs: cnt[1], Passes: int(cnt[2])}
	return nil
}

var (
	_ Checkpointer   = (*diffusionEngine)(nil)
	_ MassAccountant = (*diffusionEngine)(nil)
)
