package chaotic

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// SolveParallel runs the chaotic relaxation across `workers`
// goroutines, components partitioned round-robin, exchanging deltas
// through unbounded mailboxes — the same peer structure as the
// pagerank AsyncEngine, demonstrating the paper's claim that the
// machinery extends to other distributed linear systems. Termination
// is credit-counted quiescence.
func (s *System) SolveParallel(workers int, opt Options) (Result, error) {
	opt = opt.withDefaults(s.n)
	if workers < 1 {
		return Result{}, fmt.Errorf("chaotic: workers %d < 1", workers)
	}
	if workers > s.n {
		workers = s.n
	}
	x := append([]float64(nil), s.c...)

	type msg struct {
		comp  int32
		delta float64
	}
	boxes := make([]*pmailbox[msg], workers)
	for i := range boxes {
		boxes[i] = newPMailbox[msg]()
	}
	owner := func(comp int32) int { return int(comp) % workers }

	var inflight atomic.Int64
	var steps atomic.Int64
	done := make(chan struct{})
	var doneOnce sync.Once
	settle := func(n int) {
		if inflight.Add(-int64(n)) == 0 {
			doneOnce.Do(func() { close(done) })
		}
	}

	// push propagates a delta at component j to its dependents,
	// batching messages per destination worker.
	push := func(j int32, delta float64, out map[int][]msg) {
		steps.Add(1)
		for i := s.colStart[j]; i < s.colStart[j+1]; i++ {
			row := s.rows[i]
			out[owner(row)] = append(out[owner(row)], msg{row, s.coeffs[i] * delta})
		}
	}

	inflight.Store(int64(workers))
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			out := make(map[int][]msg)
			pending := make(map[int32]float64)
			flush := func() {
				for dest, ms := range out {
					inflight.Add(int64(len(ms)))
					boxes[dest].put(ms)
					delete(out, dest)
				}
			}
			// Initial push of the constants this worker owns.
			for j := int32(self); int(j) < s.n; j += int32(workers) {
				if math.Abs(x[j]) > opt.Eps {
					push(j, x[j], out)
				}
			}
			flush()
			settle(1)
			for {
				select {
				case <-quit:
					return
				case <-boxes[self].wakeup:
					ms := boxes[self].drain()
					if len(ms) == 0 {
						continue
					}
					clear(pending)
					for _, m := range ms {
						x[m.comp] += m.delta
						pending[m.comp] += m.delta
					}
					for j, d := range pending {
						if math.Abs(d) > opt.Eps {
							push(j, d, out)
						}
					}
					flush()
					settle(len(ms))
				}
			}
		}(w)
	}
	<-done
	close(quit)
	wg.Wait()
	return Result{X: x, Steps: steps.Load(), Converged: true}, nil
}

// pmailbox is the unbounded mailbox from the async pagerank engine,
// generic over message type.
type pmailbox[T any] struct {
	mu     sync.Mutex
	buf    []T
	wakeup chan struct{}
}

func newPMailbox[T any]() *pmailbox[T] {
	return &pmailbox[T]{wakeup: make(chan struct{}, 1)}
}

func (m *pmailbox[T]) put(ms []T) {
	m.mu.Lock()
	m.buf = append(m.buf, ms...)
	m.mu.Unlock()
	select {
	case m.wakeup <- struct{}{}:
	default:
	}
}

func (m *pmailbox[T]) drain() []T {
	m.mu.Lock()
	ms := m.buf
	m.buf = nil
	m.mu.Unlock()
	return ms
}
