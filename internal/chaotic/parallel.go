package chaotic

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// SolveParallel runs the chaotic relaxation across `workers`
// goroutines, components partitioned round-robin, exchanging deltas
// through unbounded mailboxes — the same peer structure as the
// pagerank AsyncEngine, demonstrating the paper's claim that the
// machinery extends to other distributed linear systems. Termination
// is credit-counted quiescence.
//
// It mirrors the pagerank pass pipeline's send-side economics: within
// one processing batch, every worker coalesces same-destination deltas
// (one message per touched component per destination worker instead of
// one per matrix entry — deltas combine additively), and drained
// message batches are recycled back into the mailboxes so steady-state
// batches allocate nothing.
func (s *System) SolveParallel(workers int, opt Options) (Result, error) {
	opt = opt.withDefaults(s.n)
	if workers < 1 {
		return Result{}, fmt.Errorf("chaotic: workers %d < 1", workers)
	}
	if workers > s.n {
		workers = s.n
	}
	x := append([]float64(nil), s.c...)

	type msg struct {
		comp  int32
		delta float64
	}
	boxes := make([]*pmailbox[msg], workers)
	for i := range boxes {
		boxes[i] = newPMailbox[msg]()
	}
	owner := func(comp int32) int { return int(comp) % workers }

	var inflight atomic.Int64
	var steps atomic.Int64
	done := make(chan struct{})
	var doneOnce sync.Once
	settle := func(n int) {
		if inflight.Add(-int64(n)) == 0 {
			doneOnce.Do(func() { close(done) })
		}
	}

	inflight.Store(int64(workers))
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			// acc coalesces this batch's outgoing deltas per
			// destination component; out reuses one slice per
			// destination worker across batches (put copies, so the
			// sender keeps its backing array).
			acc := make(map[int32]float64)
			out := make([][]msg, workers)
			pending := make(map[int32]float64)

			// push accumulates the dependents of a delta at j.
			push := func(j int32, delta float64) {
				steps.Add(1)
				for i := s.colStart[j]; i < s.colStart[j+1]; i++ {
					acc[s.rows[i]] += s.coeffs[i] * delta
				}
			}
			flush := func() {
				if len(acc) == 0 {
					return
				}
				for comp, d := range acc {
					dest := owner(comp)
					out[dest] = append(out[dest], msg{comp, d})
				}
				clear(acc)
				for dest, ms := range out {
					if len(ms) == 0 {
						continue
					}
					inflight.Add(int64(len(ms)))
					boxes[dest].put(ms)
					out[dest] = ms[:0]
				}
			}

			// Initial push of the constants this worker owns.
			for j := int32(self); int(j) < s.n; j += int32(workers) {
				if math.Abs(x[j]) > opt.Eps {
					push(j, x[j])
				}
			}
			flush()
			settle(1)

			var recycle []msg // last drained batch, returned to the box
			for {
				select {
				case <-quit:
					return
				case <-boxes[self].wakeup:
					ms := boxes[self].drain(recycle)
					recycle = ms
					if len(ms) == 0 {
						continue
					}
					clear(pending)
					for _, m := range ms {
						x[m.comp] += m.delta
						pending[m.comp] += m.delta
					}
					for j, d := range pending {
						if math.Abs(d) > opt.Eps {
							push(j, d)
						}
					}
					flush()
					settle(len(ms))
				}
			}
		}(w)
	}
	<-done
	close(quit)
	wg.Wait()
	return Result{X: x, Steps: steps.Load(), Converged: true}, nil
}

// pmailbox is the unbounded mailbox from the async pagerank engine,
// generic over message type. put copies into the box's buffer, so
// senders keep ownership of their slices; drain hands the buffer to
// the receiver, who returns it on the next drain for reuse.
type pmailbox[T any] struct {
	mu     sync.Mutex
	buf    []T
	wakeup chan struct{}
}

func newPMailbox[T any]() *pmailbox[T] {
	return &pmailbox[T]{wakeup: make(chan struct{}, 1)}
}

func (m *pmailbox[T]) put(ms []T) {
	m.mu.Lock()
	m.buf = append(m.buf, ms...)
	m.mu.Unlock()
	select {
	case m.wakeup <- struct{}{}:
	default:
	}
}

// drain returns the queued messages and installs recycle (the caller's
// previously drained, fully processed batch) as the next buffer.
func (m *pmailbox[T]) drain(recycle []T) []T {
	m.mu.Lock()
	ms := m.buf
	if recycle != nil {
		m.buf = recycle[:0]
	} else {
		m.buf = nil
	}
	m.mu.Unlock()
	return ms
}
