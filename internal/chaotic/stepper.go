package chaotic

import (
	"fmt"
	"math"
)

// Stepper runs the sequential chaotic relaxation of Solve in resumable
// slices: callers hand it a relaxation-step budget at a time and
// observe the intermediate state between slices. Solve is implemented
// on top of it, so the two share one worklist discipline and produce
// identical results — the stepper exists so the engine seam
// (internal/engine) can expose the chaotic solver's progress as
// pass-comparable steps instead of one opaque blocking call.
type Stepper struct {
	s       *System
	opt     Options
	x       []float64
	pending []float64 // un-propagated change per component
	inQueue []bool
	queue   []int32
	steps   int64

	// shipped accumulates, at fold time, every delta propagated into a
	// dependent row. The conservation identity sum_i(x_i - c_i) ==
	// shipped holds exactly up to float rounding; a skipped or doubled
	// fold breaks it. (The engine seam's mass audit checks this.)
	shipped float64

	// OnPush, when non-nil, observes every individual delta propagation
	// col -> row. The engine seam uses it to price cross-peer traffic;
	// nil costs one branch per fold.
	OnPush func(col, row int32)
}

// NewStepper prepares a relaxation from x = c with every non-zero
// component queued, exactly as Solve starts.
func (s *System) NewStepper(opt Options) (*Stepper, error) {
	opt = opt.withDefaults(s.n)
	if opt.Eps <= 0 {
		return nil, fmt.Errorf("chaotic: Eps must be positive")
	}
	st := &Stepper{
		s:       s,
		opt:     opt,
		x:       append([]float64(nil), s.c...),
		pending: make([]float64, s.n),
		inQueue: make([]bool, s.n),
		queue:   make([]int32, 0, s.n),
	}
	for j := 0; j < s.n; j++ {
		st.pending[j] = st.x[j]
		if st.pending[j] != 0 {
			st.queue = append(st.queue, int32(j))
			st.inQueue[j] = true
		}
	}
	return st, nil
}

// StepN performs at most budget relaxation steps (component drains
// that actually propagate), returning how many ran and whether the
// worklist emptied. It errors past the MaxSteps cap, like Solve.
func (st *Stepper) StepN(budget int64) (ran int64, done bool, err error) {
	for ran < budget && len(st.queue) > 0 {
		j := st.queue[0]
		st.queue = st.queue[1:]
		st.inQueue[j] = false
		delta := st.pending[j]
		st.pending[j] = 0
		if math.Abs(delta) <= st.opt.Eps {
			continue
		}
		st.steps++
		ran++
		if st.steps > st.opt.MaxSteps {
			return ran, false, fmt.Errorf("chaotic: exceeded %d steps; system may not contract (max column sum %.3f)",
				st.opt.MaxSteps, st.s.MaxColumnSum())
		}
		for i := st.s.colStart[j]; i < st.s.colStart[j+1]; i++ {
			row := st.s.rows[i]
			d := st.s.coeffs[i] * delta
			st.x[row] += d
			st.pending[row] += d
			st.shipped += d
			if st.OnPush != nil {
				st.OnPush(j, row)
			}
			if !st.inQueue[row] && math.Abs(st.pending[row]) > st.opt.Eps {
				st.queue = append(st.queue, row)
				st.inQueue[row] = true
			}
		}
	}
	return ran, len(st.queue) == 0, nil
}

// X returns the current solution estimate (live view).
func (st *Stepper) X() []float64 { return st.x }

// Steps returns the relaxation steps performed so far.
func (st *Stepper) Steps() int64 { return st.steps }

// Done reports whether the worklist has emptied.
func (st *Stepper) Done() bool { return len(st.queue) == 0 }

// MaxPending returns the largest absolute un-propagated delta, the
// stepper's convergence residual.
func (st *Stepper) MaxPending() float64 {
	worst := 0.0
	for _, p := range st.pending {
		if a := math.Abs(p); a > worst {
			worst = a
		}
	}
	return worst
}

// MassBalance returns the fold-side and drain-side mass accounts:
// sum_i(x_i - c_i) recomputed from state, against the shipped
// accumulator. Exact bookkeeping keeps them equal to float rounding.
func (st *Stepper) MassBalance() (folded, shipped float64) {
	for i := range st.x {
		folded += st.x[i] - st.s.c[i]
	}
	return folded, st.shipped
}
