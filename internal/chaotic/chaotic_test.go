package chaotic

import (
	"math"
	"testing"
	"testing/quick"

	"dpr/internal/graph"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

// gauss solves dense Ax=b by Gaussian elimination with partial
// pivoting (test oracle).
func gauss(t *testing.T, a []float64, b []float64) []float64 {
	t.Helper()
	n := len(b)
	m := make([]float64, len(a))
	copy(m, a)
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r*n+col]) > math.Abs(m[piv*n+col]) {
				piv = r
			}
		}
		if m[piv*n+col] == 0 {
			t.Fatal("singular test matrix")
		}
		if piv != col {
			for k := 0; k < n; k++ {
				m[piv*n+k], m[col*n+k] = m[col*n+k], m[piv*n+k]
			}
			x[piv], x[col] = x[col], x[piv]
		}
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] / m[col*n+col]
			for k := col; k < n; k++ {
				m[r*n+k] -= f * m[col*n+k]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		for k := r + 1; k < n; k++ {
			x[r] -= m[r*n+k] * x[k]
		}
		x[r] /= m[r*n+r]
	}
	return x
}

// randomDominant builds a strictly diagonally dominant system.
func randomDominant(r *rng.Rand, n int) ([]float64, []float64) {
	a := make([]float64, n*n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.4 {
				v := r.Float64()*2 - 1
				a[i*n+j] = v
				rowSum += math.Abs(v)
			}
		}
		a[i*n+i] = rowSum + 1 + r.Float64() // strict dominance
		b[i] = r.Float64()*10 - 5
	}
	return a, b
}

func TestSolveSimple2x2(t *testing.T) {
	// x = c + Mx with M = [[0, .5], [.25, 0]], c = [1, 2].
	// Solution: x0 = 1 + .5 x1, x1 = 2 + .25 x0 => x0 = 16/7... solve:
	// x0 = 1 + .5(2 + .25 x0) = 2 + .125 x0 => x0 = 2/.875 = 16/7.
	sys, err := NewSystem([]float64{1, 2}, []Entry{
		{Row: 0, Col: 1, Coeff: 0.5},
		{Row: 1, Col: 0, Coeff: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Solve(Options{Eps: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	want0 := 16.0 / 7.0
	want1 := 2 + 0.25*want0
	if math.Abs(res.X[0]-want0) > 1e-9 || math.Abs(res.X[1]-want1) > 1e-9 {
		t.Fatalf("x = %v, want [%v %v]", res.X, want0, want1)
	}
}

func TestJacobiMatchesGauss(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(20)
		a, b := randomDominant(r, n)
		want := gauss(t, a, b)
		sys, err := FromJacobi(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if cs := sys.MaxColumnSum(); cs >= 1.0 {
			// Row dominance does not bound column sums; skip the
			// occasional non-contracting draw rather than rely on it.
			continue
		}
		res, err := sys.Solve(Options{Eps: 1e-13})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, res.X[i], want[i])
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 5; trial++ {
		n := 10 + r.Intn(40)
		a, b := randomDominant(r, n)
		sys, err := FromJacobi(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if sys.MaxColumnSum() >= 1.0 {
			continue
		}
		seq, err := sys.Solve(Options{Eps: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		par, err := sys.SolveParallel(4, Options{Eps: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq.X {
			if math.Abs(seq.X[i]-par.X[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] seq %v par %v", trial, i, seq.X[i], par.X[i])
			}
		}
	}
}

func TestPagerankAsSpecialCase(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 3))
	d := 0.85
	n := g.NumNodes()
	c := make([]float64, n)
	for i := range c {
		c[i] = 1 - d
	}
	var entries []Entry
	for v := 0; v < n; v++ {
		links := g.OutLinks(graph.NodeID(v))
		if len(links) == 0 {
			continue
		}
		coeff := d / float64(len(links))
		for _, tgt := range links {
			entries = append(entries, Entry{Row: int(tgt), Col: v, Coeff: coeff})
		}
	}
	sys, err := NewSystem(c, entries)
	if err != nil {
		t.Fatal(err)
	}
	if cs := sys.MaxColumnSum(); cs > d+1e-12 {
		t.Fatalf("pagerank column sum %v > d", cs)
	}
	res, err := sys.Solve(Options{Eps: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-ref.Ranks[i]) > 1e-7 {
			t.Fatalf("x[%d] = %v, pagerank %v", i, res.X[i], ref.Ranks[i])
		}
	}
}

func TestSolveDivergentSystemErrors(t *testing.T) {
	// M with spectral radius > 1 must hit the step cap, not spin.
	sys, err := NewSystem([]float64{1, 1}, []Entry{
		{Row: 0, Col: 1, Coeff: 1.2},
		{Row: 1, Col: 0, Coeff: 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(Options{Eps: 1e-9, MaxSteps: 5000}); err == nil {
		t.Fatal("divergent system converged")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, nil); err == nil {
		t.Error("accepted empty system")
	}
	if _, err := NewSystem([]float64{1}, []Entry{{Row: 5, Col: 0, Coeff: 1}}); err == nil {
		t.Error("accepted out-of-range row")
	}
	if _, err := NewSystem([]float64{1}, []Entry{{Row: 0, Col: 0, Coeff: math.NaN()}}); err == nil {
		t.Error("accepted NaN coefficient")
	}
	if _, err := FromJacobi([]float64{0}, []float64{1}); err == nil {
		t.Error("accepted zero diagonal")
	}
	if _, err := FromJacobi([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted non-square matrix")
	}
}

func TestDuplicateEntriesMerged(t *testing.T) {
	sys, err := NewSystem([]float64{1, 0}, []Entry{
		{Row: 1, Col: 0, Coeff: 0.2},
		{Row: 1, Col: 0, Coeff: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Solve(Options{Eps: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	// x1 = 0 + (0.2+0.3)*x0 = 0.5.
	if math.Abs(res.X[1]-0.5) > 1e-12 {
		t.Fatalf("merged coefficient wrong: x1 = %v", res.X[1])
	}
}

func TestSolveParallelValidation(t *testing.T) {
	sys, err := NewSystem([]float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SolveParallel(0, Options{}); err == nil {
		t.Error("accepted zero workers")
	}
	// More workers than components clamps rather than fails.
	res, err := sys.SolveParallel(16, Options{})
	if err != nil || !res.Converged {
		t.Errorf("clamped solve failed: %v", err)
	}
}

// Property: for random contracting diagonal systems the solver matches
// the closed form x_i = c_i / (1 - m_i) when M is diagonal.
func TestDiagonalClosedFormProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		c := make([]float64, n)
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			c[i] = r.Float64()*4 - 2
			entries[i] = Entry{Row: i, Col: i, Coeff: r.Float64() * 0.9}
		}
		sys, err := NewSystem(c, entries)
		if err != nil {
			return false
		}
		res, err := sys.Solve(Options{Eps: 1e-13})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := c[i] / (1 - entries[i].Coeff)
			if math.Abs(res.X[i]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveSequential(b *testing.B) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 1))
	d := 0.85
	n := g.NumNodes()
	c := make([]float64, n)
	for i := range c {
		c[i] = 1 - d
	}
	var entries []Entry
	for v := 0; v < n; v++ {
		links := g.OutLinks(graph.NodeID(v))
		if len(links) == 0 {
			continue
		}
		coeff := d / float64(len(links))
		for _, tgt := range links {
			entries = append(entries, Entry{Row: int(tgt), Col: v, Coeff: coeff})
		}
	}
	sys, err := NewSystem(c, entries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Solve(Options{Eps: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}
