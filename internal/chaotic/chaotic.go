// Package chaotic generalizes the paper's approach beyond pagerank:
// the distributed computation is an instance of chaotic (asynchronous)
// relaxation for linear systems (Chazan & Miranker 1969), and the
// paper's future-work section proposes applying the same machinery to
// other problem domains where matrix elements are distributed across a
// network.
//
// The package solves fixed-point systems
//
//	x = c + M x
//
// by delta pushing: when x_j changes by delta, every dependent row i
// with M[i][j] != 0 receives M[i][j]*delta. Convergence is guaranteed
// when some norm of M is below 1 (e.g. max absolute column or row sum
// — pagerank's M = d*A^T has column sums <= d < 1).
//
// Pagerank is recovered with c = (1-d)*ones and M[i][j] = d/outdeg(j)
// for each link j->i.
package chaotic

import (
	"fmt"
	"math"
)

// Entry is one non-zero coefficient M[Row][Col] = Coeff.
type Entry struct {
	Row, Col int
	Coeff    float64
}

// System is an immutable fixed-point system x = c + M x with M stored
// column-major, the natural orientation for delta pushing ("column j's
// entries are j's out-links").
type System struct {
	n        int
	c        []float64
	colStart []int64
	rows     []int32
	coeffs   []float64
}

// NewSystem builds a system from the constant vector and the non-zero
// entries of M. Duplicate (row, col) entries are summed.
func NewSystem(c []float64, entries []Entry) (*System, error) {
	n := len(c)
	if n == 0 {
		return nil, fmt.Errorf("chaotic: empty system")
	}
	counts := make([]int64, n+1)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("chaotic: entry (%d,%d) outside %dx%d", e.Row, e.Col, n, n)
		}
		if math.IsNaN(e.Coeff) || math.IsInf(e.Coeff, 0) {
			return nil, fmt.Errorf("chaotic: non-finite coefficient at (%d,%d)", e.Row, e.Col)
		}
		counts[e.Col+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	s := &System{
		n:        n,
		c:        append([]float64(nil), c...),
		colStart: counts,
		rows:     make([]int32, len(entries)),
		coeffs:   make([]float64, len(entries)),
	}
	cursor := make([]int64, n)
	copy(cursor, counts[:n])
	for _, e := range entries {
		i := cursor[e.Col]
		s.rows[i] = int32(e.Row)
		s.coeffs[i] = e.Coeff
		cursor[e.Col]++
	}
	s.mergeDuplicates()
	return s, nil
}

// mergeDuplicates combines repeated (row, col) pairs within a column.
func (s *System) mergeDuplicates() {
	newRows := s.rows[:0]
	newCoeffs := s.coeffs[:0]
	newStart := make([]int64, s.n+1)
	for col := 0; col < s.n; col++ {
		seen := map[int32]int{}
		for i := s.colStart[col]; i < s.colStart[col+1]; i++ {
			r := s.rows[i]
			if at, dup := seen[r]; dup {
				newCoeffs[at] += s.coeffs[i]
				continue
			}
			seen[r] = len(newRows)
			newRows = append(newRows, r)
			newCoeffs = append(newCoeffs, s.coeffs[i])
		}
		newStart[col+1] = int64(len(newRows))
	}
	s.rows, s.coeffs, s.colStart = newRows, newCoeffs, newStart
}

// N returns the dimension.
func (s *System) N() int { return s.n }

// MaxColumnSum returns max_j sum_i |M[i][j]|; below 1 it certifies
// convergence of the chaotic iteration (contraction in the 1-norm).
func (s *System) MaxColumnSum() float64 {
	worst := 0.0
	for col := 0; col < s.n; col++ {
		sum := 0.0
		for i := s.colStart[col]; i < s.colStart[col+1]; i++ {
			sum += math.Abs(s.coeffs[i])
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

// Options configures a solve.
type Options struct {
	Eps      float64 // absolute delta below which updates stop; 0 means 1e-10
	MaxSteps int64   // relaxation-step cap; 0 means 100 * n^2 + 10000
}

func (o Options) withDefaults(n int) Options {
	if o.Eps == 0 {
		o.Eps = 1e-10
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = int64(100*n*n + 10000)
	}
	return o
}

// Result reports a solve.
type Result struct {
	X         []float64
	Steps     int64 // delta propagations performed
	Converged bool
}

// Solve runs sequential chaotic relaxation with a worklist: start from
// x = c (every component "pushes" its constant), and propagate deltas
// until all pending deltas fall below Eps. Component processing order
// is deliberately FIFO-arbitrary — the algorithm tolerates any order,
// which is the Chazan-Miranker result the paper builds on.
//
// Solve is a Stepper driven to completion in one call; the two are
// behaviorally identical.
func (s *System) Solve(opt Options) (Result, error) {
	st, err := s.NewStepper(opt)
	if err != nil {
		return Result{}, err
	}
	for {
		_, done, err := st.StepN(1 << 20)
		if err != nil {
			return Result{X: st.x, Steps: st.steps}, err
		}
		if done {
			return Result{X: st.x, Steps: st.steps, Converged: true}, nil
		}
	}
}

// FromJacobi converts a square linear system A x = b with non-zero
// diagonal into the fixed-point form x = c + M x with c = b/diag and
// M = -offdiag/diag (the Jacobi splitting). dense is row-major n*n.
func FromJacobi(dense []float64, b []float64) (*System, error) {
	n := len(b)
	if len(dense) != n*n {
		return nil, fmt.Errorf("chaotic: matrix size %d != %d^2", len(dense), n)
	}
	c := make([]float64, n)
	var entries []Entry
	for i := 0; i < n; i++ {
		diag := dense[i*n+i]
		if diag == 0 {
			return nil, fmt.Errorf("chaotic: zero diagonal at row %d", i)
		}
		c[i] = b[i] / diag
		for j := 0; j < n; j++ {
			if i == j || dense[i*n+j] == 0 {
				continue
			}
			entries = append(entries, Entry{Row: i, Col: j, Coeff: -dense[i*n+j] / diag})
		}
	}
	return NewSystem(c, entries)
}
