package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeSimple(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..1000
	}
	s := Summarize(vals)
	if s.N != 1000 {
		t.Fatalf("N = %d", s.N)
	}
	if s.P50 != 500 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P90 != 900 {
		t.Errorf("P90 = %v", s.P90)
	}
	if s.P99 != 990 {
		t.Errorf("P99 = %v", s.P99)
	}
	if s.P999 != 999 {
		t.Errorf("P999 = %v", s.P999)
	}
	if s.Max != 1000 {
		t.Errorf("Max = %v", s.Max)
	}
	if math.Abs(s.Avg-500.5) > 1e-9 {
		t.Errorf("Avg = %v", s.Avg)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Max != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.P50 != 3.5 || s.Max != 3.5 || s.Avg != 3.5 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	vals := []float64{5, 1, 3}
	Summarize(vals)
	if vals[0] != 5 || vals[1] != 1 || vals[2] != 3 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestQuantileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if Quantile(sorted, 0) != 1 {
		t.Error("q=0 should be min")
	}
	if Quantile(sorted, 1) != 4 {
		t.Error("q=1 should be max")
	}
	if Quantile(sorted, 0.5) != 2 {
		t.Errorf("q=0.5 = %v", Quantile(sorted, 0.5))
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestSummaryMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Abs(v))
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		sorted := make([]float64, len(vals))
		copy(sorted, vals)
		sort.Float64s(sorted)
		return s.P50 <= s.P75 && s.P75 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.P999 && s.P999 <= s.Max &&
			s.Max == sorted[len(sorted)-1] &&
			s.P50 >= sorted[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeErrors(t *testing.T) {
	got := []float64{1.1, 2.0, 0.5}
	want := []float64{1.0, 2.0, 1.0}
	re := RelativeErrors(got, want)
	if math.Abs(re[0]-0.1) > 1e-12 || re[1] != 0 || math.Abs(re[2]-0.5) > 1e-12 {
		t.Fatalf("relative errors: %v", re)
	}
	// Zero denominator falls back to absolute.
	re2 := RelativeErrors([]float64{0.3}, []float64{0})
	if re2[0] != 0.3 {
		t.Fatalf("zero-denominator handling: %v", re2)
	}
}

func TestRelativeErrorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RelativeErrors([]float64{1}, []float64{1, 2})
}

func TestCountAboveAndMean(t *testing.T) {
	vals := []float64{0.1, 0.2, 0.3, 0.4}
	if got := CountAbove(vals, 0.25); got != 2 {
		t.Fatalf("CountAbove = %d", got)
	}
	if got := CountAbove(vals, 1); got != 0 {
		t.Fatalf("CountAbove = %d", got)
	}
	if m := Mean(vals); math.Abs(m-0.25) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 5, 2}, []float64{1, 2, 2}); d != 3 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestRowsOrder(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	rows := s.Rows()
	if len(rows) != 7 || rows[0].Label != "50" || rows[5].Label != "Max." || rows[6].Label != "Avg." {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "a", "b")
	tab.AddRow("1", "22")
	tab.AddRow("333") // short row padded
	out := tab.String()
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"Demo", "a", "b", "333"} {
		if !contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCellFormats(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{1234567, "1234567"},
		{0.25, "0.2500"},
		{0.0001, "1.00e-04"},
		{12.345, "12.35"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := CellEps(0.2); got != "0.2" {
		t.Errorf("CellEps(0.2) = %q", got)
	}
	if got := CellEps(1e-4); got != "1e-04" {
		t.Errorf("CellEps(1e-4) = %q", got)
	}
	if got := CellInt(42); got != "42" {
		t.Errorf("CellInt = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("Ignored title", "a", "b")
	tab.AddRow("1", "x,y")
	tab.AddRow(`say "hi"`, "2")
	got := tab.CSV()
	want := "a,b\n1,\"x,y\"\n\"say \"\"hi\"\"\",2\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}
