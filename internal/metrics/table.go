package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells and renders them with aligned
// columns, the output format of cmd/dprbench. Cells are strings; use
// the Cell helpers for consistent numeric formatting.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row. Short rows are padded with empty cells; long
// rows extend the column count.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first,
// no title), for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeCSVRow(t.header)
	}
	for _, r := range t.rows {
		writeCSVRow(r)
	}
	return b.String()
}

// Cell formats a float64 compactly: integers without decimals, small
// magnitudes in scientific notation, everything else with sensible
// precision.
func Cell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 1e-3 && v > -1e-3 || v >= 1e7 || v <= -1e7):
		return fmt.Sprintf("%.2e", v)
	case v < 1 && v > -1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// CellInt formats an integer cell.
func CellInt(v int64) string { return fmt.Sprintf("%d", v) }

// CellEps formats an error threshold the way the paper prints them:
// "0.2" stays decimal, powers of ten render as 1e-k.
func CellEps(eps float64) string {
	if eps >= 0.01 {
		return fmt.Sprintf("%g", eps)
	}
	return fmt.Sprintf("%.0e", eps)
}
