// Package metrics provides the statistical summaries and table
// rendering used by the experiment harness: the relative-error
// distributions of the paper's Table 2 report, per-percentile maxima,
// and fixed-width text tables matching the paper's layout.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// ErrorSummary captures the distribution of per-document relative
// errors exactly as the paper's Table 2 reports it: "the maximum error
// for that percentage of pages" at 50/75/90/99/99.9 percent, the
// overall maximum, and the average.
type ErrorSummary struct {
	P50, P75, P90, P99, P999 float64
	Max                      float64
	Avg                      float64
	N                        int
}

// Summarize computes an ErrorSummary over values. It does not modify
// its argument. An empty input yields a zero summary.
func Summarize(values []float64) ErrorSummary {
	s := ErrorSummary{N: len(values)}
	if len(values) == 0 {
		return s
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Avg = sum / float64(len(sorted))
	s.Max = sorted[len(sorted)-1]
	s.P50 = Quantile(sorted, 0.50)
	s.P75 = Quantile(sorted, 0.75)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	s.P999 = Quantile(sorted, 0.999)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice using the nearest-rank method, matching the paper's "up to X%
// of the pages had error less than" reading. It panics if sorted is
// empty or q is outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: Quantile q=%v outside [0,1]", q))
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// RelativeErrors returns |got[i]-want[i]| / want[i] for every i.
// Entries where want is zero are reported as the absolute error (the
// paper's graphs never have zero true rank because of the (1-d)
// constant, but defensive handling keeps tooling robust).
func RelativeErrors(got, want []float64) []float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("metrics: RelativeErrors length mismatch %d vs %d", len(got), len(want)))
	}
	out := make([]float64, len(got))
	for i := range got {
		diff := math.Abs(got[i] - want[i])
		if want[i] != 0 {
			out[i] = diff / math.Abs(want[i])
		} else {
			out[i] = diff
		}
	}
	return out
}

// CountAbove returns how many values exceed threshold.
func CountAbove(values []float64, threshold float64) int {
	n := 0
	for _, v := range values {
		if v > threshold {
			n++
		}
	}
	return n
}

// MaxAbsDiff returns the largest |a[i]-b[i]|.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: MaxAbsDiff length mismatch")
	}
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Rows converts the summary into (label, value) pairs in the paper's
// Table 2 row order.
func (s ErrorSummary) Rows() []struct {
	Label string
	Value float64
} {
	return []struct {
		Label string
		Value float64
	}{
		{"50", s.P50}, {"75", s.P75}, {"90", s.P90},
		{"99", s.P99}, {"99.9", s.P999},
		{"Max.", s.Max}, {"Avg.", s.Avg},
	}
}
