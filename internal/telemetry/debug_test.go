package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func startDebug(t *testing.T, reg *Registry, tr *Trace) *DebugServer {
	t.Helper()
	d, err := ServeDebug("127.0.0.1:0", reg.Snapshot, tr)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := goldenRegistry()
	tr := goldenTrace()
	d := startDebug(t, reg, tr)
	defer d.Close()
	base := "http://" + d.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "wire_sent 12") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	// /metrics is live: mutate and re-scrape.
	reg.Counter("wire_sent").Add(1)
	_, body, _ = get(t, base+"/metrics")
	if !strings.Contains(body, "wire_sent 13") {
		t.Fatalf("/metrics not live:\n%s", body)
	}

	code, body, hdr = get(t, base+"/trace")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/trace status %d content type %q", code, hdr.Get("Content-Type"))
	}
	var doc struct {
		Len    int               `json:"len"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace JSON: %v", err)
	}
	if doc.Len != 9 || len(doc.Events) != 9 {
		t.Fatalf("/trace doc = %+v", doc)
	}

	// ?n= limits the event count.
	_, body, _ = get(t, base+"/trace?n=2")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 2 {
		t.Fatalf("/trace?n=2 returned %d events", len(doc.Events))
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index status %d:\n%.200s", code, body)
	}
}

func TestDebugServerNilTrace(t *testing.T) {
	d := startDebug(t, NewRegistry(), nil)
	defer d.Close()
	_, body, _ := get(t, "http://"+d.Addr()+"/trace")
	var doc struct {
		Len    int   `json:"len"`
		Cap    int   `json:"cap"`
		Events []any `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("nil-trace document: %v (%q)", err, body)
	}
	if doc.Len != 0 || doc.Cap != 0 || len(doc.Events) != 0 {
		t.Fatalf("nil-trace document = %+v", doc)
	}
}

func TestDebugServerCloseIdempotent(t *testing.T) {
	d := startDebug(t, NewRegistry(), nil)
	d.Close()
	d.Close() // must not panic or hang
}

// Closing the server must reap its serve goroutine; concurrent scrapes
// while instruments mutate must be race-clean (run under -race in ci).
func TestDebugServerNoLeakUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry()
	c := reg.Counter("n")
	d := startDebug(t, reg, NewTrace(64))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c.Add(1)
				resp, err := http.Get("http://" + d.Addr() + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	d.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	if strings.Contains(string(buf[:n]), "telemetry.(*DebugServer).serve") {
		t.Fatalf("DebugServer.serve leaked after Close:\n%s", buf[:n])
	}
}
