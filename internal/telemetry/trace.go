package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// EventType labels a convergence-trace event.
type EventType int32

// The trace event taxonomy. Pass events come from the engine's pass
// loop, ship/fold and retry/reconnect events from the wire layer's
// senders and receivers, and the membership events from the cluster
// frontends' join/leave/kill/restart transitions.
const (
	EvPassStart EventType = iota
	EvPassEnd
	EvShip
	EvFold
	EvRetry
	EvReconnect
	EvJoin
	EvLeave
	EvKill
	EvRestart
	EvEvict
	EvAdopt
	EvShed
	EvSuspect      // a detector vantage crossed the local suspicion threshold
	EvEvictRefused // a suspicion reached no eviction quorum this round
	EvHeal         // a fenced slot was reached again and reconciled
	EvEpochReject  // a receiver nacked a frame carrying a stale ownership epoch
	EvCreditStall  // a sender stream ran out of credit and stopped framing
	EvSlowPeer     // a destination's send-latency EWMA crossed into straggler mode
)

var eventNames = [...]string{
	EvPassStart:    "pass_start",
	EvPassEnd:      "pass_end",
	EvShip:         "ship",
	EvFold:         "fold",
	EvRetry:        "retry",
	EvReconnect:    "reconnect",
	EvJoin:         "join",
	EvLeave:        "leave",
	EvKill:         "kill",
	EvRestart:      "restart",
	EvEvict:        "evict",
	EvAdopt:        "adopt",
	EvShed:         "shed",
	EvSuspect:      "suspect",
	EvEvictRefused: "evict_refused",
	EvHeal:         "heal",
	EvEpochReject:  "epoch_reject",
	EvCreditStall:  "credit_stall",
	EvSlowPeer:     "slow_peer",
}

// String returns the stable wire name of the event type, used in the
// /trace JSON contract.
func (t EventType) String() string {
	if t < 0 || int(t) >= len(eventNames) {
		return "unknown"
	}
	return eventNames[t]
}

// Event is one convergence event. The numeric fields are
// type-specific: Peer is the reporting peer (or -1), Pass the pass
// number (or -1), Value carries the residual / delta mass / rank mass
// moved, and Aux a secondary count (documents in a batch, pending
// updates, the peer on the other end of a transfer).
type Event struct {
	Seq    uint64
	TimeNS int64
	Type   EventType
	Peer   int32
	Pass   int32
	Value  float64
	Aux    int64
}

// Trace is a bounded ring buffer of Events. Record is cheap and
// allocation-free — a mutex acquire and a struct store into a
// preallocated ring — so the hot layers can call it per batch without
// disturbing the pipeline's zero-alloc contract. When the ring wraps,
// the oldest events fall off.
type Trace struct {
	mu    sync.Mutex
	clock func() int64 // nanosecond timestamps; nil leaves TimeNS zero
	seq   uint64
	buf   []Event
	start int
	n     int
}

// NewTrace returns a trace holding at most capacity events (default
// 4096 when capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Trace{buf: make([]Event, capacity)}
}

// SetClock injects the nanosecond timestamp source. Call before the
// trace is shared; the deterministic layers leave it nil and get zero
// timestamps, the cluster frontends install a wall clock.
func (t *Trace) SetClock(clock func() int64) {
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Record appends one event, stamping Seq and TimeNS.
//
//dpr:hotpath
func (t *Trace) Record(typ EventType, peer, pass int32, value float64, aux int64) {
	t.mu.Lock()
	t.seq++
	e := Event{Seq: t.seq, Type: typ, Peer: peer, Pass: pass, Value: value, Aux: aux}
	if t.clock != nil {
		e.TimeNS = t.clock()
	}
	i := t.start + t.n
	if i >= len(t.buf) {
		i -= len(t.buf)
	}
	t.buf[i] = e
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.start++
		if t.start == len(t.buf) {
			t.start = 0
		}
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Cap returns the ring capacity.
func (t *Trace) Cap() int { return len(t.buf) }

// Recent returns up to n buffered events, oldest first (all of them
// when n <= 0).
func (t *Trace) Recent(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		j := t.start + t.n - n + i
		if j >= len(t.buf) {
			j -= len(t.buf)
		}
		out[i] = t.buf[j]
	}
	return out
}

// traceDoc is the JSON shape of the /trace endpoint.
type traceDoc struct {
	Len    int          `json:"len"`
	Cap    int          `json:"cap"`
	Events []traceEvent `json:"events"`
}

type traceEvent struct {
	Seq    uint64  `json:"seq"`
	TimeNS int64   `json:"t_ns"`
	Type   string  `json:"type"`
	Peer   int32   `json:"peer"`
	Pass   int32   `json:"pass"`
	Value  float64 `json:"value"`
	Aux    int64   `json:"aux"`
}

// WriteTraceJSON writes up to n recent events (all when n <= 0) as the
// stable JSON document served at /trace:
//
//	{"len":N,"cap":C,"events":[{"seq":..,"t_ns":..,"type":"..",
//	 "peer":..,"pass":..,"value":..,"aux":..},...]}
func (t *Trace) WriteTraceJSON(w io.Writer, n int) error {
	evs := t.Recent(n)
	doc := traceDoc{Len: t.Len(), Cap: t.Cap(), Events: make([]traceEvent, len(evs))}
	for i, e := range evs {
		doc.Events[i] = traceEvent{
			Seq: e.Seq, TimeNS: e.TimeNS, Type: e.Type.String(),
			Peer: e.Peer, Pass: e.Pass, Value: e.Value, Aux: e.Aux,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
