package telemetry

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterAndFloatCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	c.Store(42)
	if got := c.Load(); got != 42 {
		t.Fatalf("after Store, counter = %d, want 42", got)
	}

	var f FloatCounter
	f.Add(0.5)
	f.Add(0.25)
	if got := f.Load(); got != 0.75 {
		t.Fatalf("float counter = %v, want 0.75", got)
	}
	f.Store(1.5)
	if got := f.Load(); got != 1.5 {
		t.Fatalf("after Store, float counter = %v, want 1.5", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Load(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
}

// FloatCounter's CAS loop must not lose mass under contention — the
// conservation audit depends on it.
func TestFloatCounterConcurrentAdds(t *testing.T) {
	var f FloatCounter
	const workers, adds = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				f.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(); got != workers*adds {
		t.Fatalf("concurrent adds lost mass: %v, want %d", got, workers*adds)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 50, 1e6} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+50+1e6 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// Bounds are inclusive upper edges: 0.5 and 1 land in le=1,
	// 1.5 in le=10, 50 in le=100, 1e6 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
}

func TestRegistryKinds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	if r.Counter("a") != c {
		t.Fatal("second Counter(a) returned a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a as a gauge did not panic")
		}
	}()
	r.Gauge("a")
}

func TestSnapshotSortedAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(1)
	r.Gauge("alpha").Set(2)
	r.FloatCounter("mid").Add(3)
	r.Histogram("hist", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s.CounterValue("zeta") != 1 || s.GaugeValue("alpha") != 2 || s.FloatValue("mid") != 3 {
		t.Fatalf("snapshot values wrong: %+v", s)
	}
	if s.CounterValue("absent") != 0 || s.FloatValue("absent") != 0 || s.GaugeValue("absent") != 0 {
		t.Fatal("absent instruments must read as zero")
	}
	if len(s.Hists) != 1 || s.Hists[0].Count != 1 {
		t.Fatalf("histogram point wrong: %+v", s.Hists)
	}
}

// randomHist builds a histogram point over one of two bucket layouts
// (so merges exercise both the aligned and the degrade path) with
// small-integer values, keeping float addition exact and the
// associativity property test meaningful.
func randomHist(r *rand.Rand, name string) HistPoint {
	layouts := [][]float64{{1, 10, 100}, {5, 50}}
	b := layouts[r.Intn(len(layouts))]
	h := HistPoint{Name: name, Bounds: append([]float64(nil), b...), Counts: make([]uint64, len(b)+1)}
	for i := range h.Counts {
		h.Counts[i] = uint64(r.Intn(5))
		h.Count += h.Counts[i]
	}
	h.Sum = float64(r.Intn(100))
	return h
}

func randomSnapshot(r *rand.Rand) Snapshot {
	names := []string{"a", "b", "c", "d"}
	var s Snapshot
	for _, n := range names {
		if r.Intn(2) == 0 {
			s.Counters = append(s.Counters, CounterPoint{Name: "c_" + n, Value: uint64(r.Intn(100))})
		}
		if r.Intn(2) == 0 {
			s.Floats = append(s.Floats, FloatPoint{Name: "f_" + n, Value: float64(r.Intn(100))})
		}
		if r.Intn(2) == 0 {
			s.Gauges = append(s.Gauges, GaugePoint{Name: "g_" + n, Value: float64(r.Intn(100) - 50)})
		}
		if r.Intn(2) == 0 {
			s.Hists = append(s.Hists, randomHist(r, "h_"+n))
		}
	}
	return s
}

// Merge must be associative: the cluster folds per-peer registries in
// slot order, but nothing about the result may depend on that order of
// folding.
func TestMergeAssociativeQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	property := func() bool {
		a, b, c := randomSnapshot(r), randomSnapshot(r), randomSnapshot(r)
		left := a.Merge(b).Merge(c)
		right := a.Merge(b.Merge(c))
		return reflect.DeepEqual(left, right)
	}
	cfg := &quick.Config{MaxCount: 500, Values: func(vs []reflect.Value, _ *rand.Rand) {}}
	if err := quick.Check(func() bool { return property() }, cfg); err != nil {
		t.Fatal(err)
	}
}

// Merge with an empty snapshot must be the identity.
func TestMergeIdentityQuick(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cfg := &quick.Config{MaxCount: 200, Values: func(vs []reflect.Value, _ *rand.Rand) {}}
	err := quick.Check(func() bool {
		a := randomSnapshot(r)
		var zero Snapshot
		return reflect.DeepEqual(a.Merge(zero), a) && reflect.DeepEqual(zero.Merge(a), a)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Rendered histogram buckets are cumulative, so they must be
// monotonically non-decreasing and end at the observation count, for
// any sequence of observations.
func TestHistogramMonotonicQuick(t *testing.T) {
	property := func(obs []float64) bool {
		h := NewHistogram(ExpBuckets(1e-6, 10, 12))
		for _, v := range obs {
			h.Observe(v)
		}
		r := NewRegistry()
		r.hists["h"] = h
		r.register("h", kindHist)
		hp := r.Snapshot().Hists[0]
		cum, total := uint64(0), uint64(0)
		for _, c := range hp.Counts {
			total += c
		}
		if total != hp.Count || hp.Count != uint64(len(obs)) {
			return false
		}
		prev := uint64(0)
		for i := range hp.Bounds {
			cum += hp.Counts[i]
			if cum < prev {
				return false
			}
			prev = cum
		}
		return cum <= hp.Count
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRingWraps(t *testing.T) {
	tr := NewTrace(4)
	var ns int64
	tr.SetClock(func() int64 { ns += 10; return ns })
	for i := 0; i < 10; i++ {
		tr.Record(EvShip, int32(i), -1, float64(i), 0)
	}
	if tr.Len() != 4 || tr.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", tr.Len(), tr.Cap())
	}
	evs := tr.Recent(0)
	if len(evs) != 4 {
		t.Fatalf("Recent(0) returned %d events", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
	}
	if evs[0].TimeNS != 70 {
		t.Fatalf("clock not applied: t=%d", evs[0].TimeNS)
	}
	last2 := tr.Recent(2)
	if len(last2) != 2 || last2[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", last2)
	}
}

func TestEventTypeNames(t *testing.T) {
	if EvPassStart.String() != "pass_start" || EvShed.String() != "shed" {
		t.Fatal("event names drifted")
	}
	if EventType(99).String() != "unknown" || EventType(-1).String() != "unknown" {
		t.Fatal("out-of-range event types must render as unknown")
	}
}

func TestPassSinkRecords(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace(16)
	sink := NewPassSink(reg, tr)
	var ns int64
	sink.Clock = func() int64 { ns += 1e9; return ns }
	sink.PassStart(1, 100)
	sink.RecordPass(1, 0.5, 1000, 3)
	s := reg.Snapshot()
	if s.CounterValue("pass_total") != 1 {
		t.Fatalf("pass_total = %d", s.CounterValue("pass_total"))
	}
	evs := tr.Recent(0)
	if len(evs) != 2 || evs[0].Type != EvPassStart || evs[1].Type != EvPassEnd {
		t.Fatalf("trace events = %+v", evs)
	}
	if evs[1].Value != 0.5 || evs[1].Aux != 3 {
		t.Fatalf("pass_end event = %+v", evs[1])
	}
	// 1000 docs in one simulated second.
	var rate HistPoint
	for _, h := range s.Hists {
		if h.Name == "pass_docs_per_sec" {
			rate = h
		}
	}
	if rate.Count != 1 || rate.Sum != 1000 {
		t.Fatalf("rate histogram = %+v", rate)
	}
}
