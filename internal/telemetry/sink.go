package telemetry

// PassSink bundles the per-pass instruments the engine records into:
// a residual histogram (the max |rank change| per pass, the quantity
// whose decay is convergence), a docs-per-pass histogram, a docs/sec
// rate histogram, and a pass counter, plus trace events marking pass
// boundaries. The engine mutates it from a single goroutine; the
// instruments themselves are safe for concurrent readers.
//
// Clock is optional. The deterministic layers must not read wall
// time, so the engine never stamps passes itself — a frontend that
// wants rates installs a nanosecond clock here and on the trace.
type PassSink struct {
	Passes   *Counter
	Residual *Histogram
	PassDocs *Histogram
	Rate     *Histogram
	Trace    *Trace // optional
	Clock    func() int64

	lastNS int64
}

// NewPassSink registers the standard pass instruments on reg and
// attaches the (optional, may be nil) trace.
func NewPassSink(reg *Registry, tr *Trace) *PassSink {
	return &PassSink{
		Passes:   reg.Counter("pass_total"),
		Residual: reg.Histogram("pass_residual", ExpBuckets(1e-9, 10, 10)),
		PassDocs: reg.Histogram("pass_docs", ExpBuckets(10, 10, 7)),
		Rate:     reg.Histogram("pass_docs_per_sec", ExpBuckets(1e3, 10, 7)),
		Trace:    tr,
	}
}

// PassStart marks the beginning of a pass over pending dirty
// documents.
//
//dpr:hotpath
func (s *PassSink) PassStart(pass, pending int) {
	if s.Clock != nil {
		s.lastNS = s.Clock()
	}
	if s.Trace != nil {
		s.Trace.Record(EvPassStart, -1, int32(pass), 0, int64(pending))
	}
}

// RecordPass closes out a pass: residual is the max |rank change|
// observed, docs the number of documents recomputed, deferred the
// updates still parked for unreachable peers.
//
//dpr:hotpath
func (s *PassSink) RecordPass(pass int, residual float64, docs, deferred int) {
	s.Passes.Add(1)
	s.Residual.Observe(residual)
	s.PassDocs.Observe(float64(docs))
	if s.Clock != nil {
		now := s.Clock()
		if dt := now - s.lastNS; dt > 0 && docs > 0 {
			s.Rate.Observe(float64(docs) * 1e9 / float64(dt))
		}
		s.lastNS = now
	}
	if s.Trace != nil {
		s.Trace.Record(EvPassEnd, -1, int32(pass), residual, int64(deferred))
	}
}
