package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenRegistry builds the fixed registry both golden tests render:
// one instrument of every kind with hand-picked values, so the
// exposition format and the JSON schema are pinned byte-for-byte.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("wire_sent").Add(12)
	r.Counter("cluster_probes").Add(3)
	r.Counter("wire_evictions_quorum").Add(1)
	r.Counter("wire_evictions_refused").Add(2)
	r.Counter("wire_epoch_rejected").Add(1)
	r.Counter("wire_credit_stalls").Add(4)
	r.Counter("wire_shed_coalesced").Add(96)
	r.Counter("wire_slow_peer").Add(1)
	r.FloatCounter("wire_delta_shipped").Add(1.25)
	r.Gauge("wire_rank_mass").Set(150.5)
	r.Gauge("wire_inbox_occupancy").Set(12)
	r.Gauge("wire_unacked_frames").Set(3)
	r.Gauge("wire_send_latency_ewma_seconds").Set(0.0125)
	h := r.Histogram("pass_residual", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.05, 0.05, 2} {
		h.Observe(v)
	}
	lat := r.Histogram("wire_send_latency_seconds", ExpBuckets(100e-6, 4, 8))
	for _, v := range []float64{0.0002, 0.004, 0.004, 0.3} {
		lat.Observe(v)
	}
	return r
}

func goldenTrace() *Trace {
	tr := NewTrace(16)
	var ns int64 = 1000
	tr.SetClock(func() int64 { ns += 500; return ns })
	tr.Record(EvPassStart, -1, 1, 0, 42)
	tr.Record(EvShip, 0, -1, 1.25, 3)
	tr.Record(EvFold, 1, -1, 1.25, 3)
	tr.Record(EvSuspect, 2, -1, 0, 4)
	tr.Record(EvEvictRefused, 4, -1, 2, 0)
	tr.Record(EvEpochReject, 1, -1, 7, 3)
	tr.Record(EvCreditStall, 0, -1, 2, 2)
	tr.Record(EvSlowPeer, 0, -1, 0.031, 2)
	tr.Record(EvPassEnd, -1, 1, 0.05, 0)
	return tr
}

// compareGolden checks got against testdata/<name>, rewriting the file
// instead when UPDATE_GOLDEN=1 is set.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (rerun with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestMetricsExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "metrics.golden", buf.Bytes())
}

func TestTraceJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteTraceJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "trace.golden.json", buf.Bytes())
}

// The /trace document's schema is a wire contract: fixed key set,
// stable event-type names, events oldest first.
func TestTraceJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteTraceJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	for _, key := range []string{"len", "cap", "events"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("trace document missing %q: %s", key, buf.String())
		}
	}
	events, ok := doc["events"].([]any)
	if !ok || len(events) != 9 {
		t.Fatalf("events = %v", doc["events"])
	}
	first, ok := events[0].(map[string]any)
	if !ok {
		t.Fatalf("event 0 = %v", events[0])
	}
	for _, key := range []string{"seq", "t_ns", "type", "peer", "pass", "value", "aux"} {
		if _, present := first[key]; !present {
			t.Fatalf("event missing %q: %v", key, first)
		}
	}
	if first["type"] != "pass_start" {
		t.Fatalf("first event type = %v, want pass_start", first["type"])
	}
}

// The rendered exposition must parse line-by-line: every non-comment
// line is "name value", every # line is a TYPE comment, and the
// cumulative bucket counts never decrease.
func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	prevBucket := uint64(0)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE comment: %q", line)
			}
			kind := parts[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("unknown instrument kind in %q", line)
			}
			prevBucket = 0
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		if strings.Contains(fields[0], "_bucket{") {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if v < prevBucket {
				t.Fatalf("cumulative bucket decreased at %q", line)
			}
			prevBucket = v
		}
	}
}
