package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CounterPoint is one counter's value in a snapshot.
type CounterPoint struct {
	Name  string
	Value uint64
}

// FloatPoint is one float counter's value in a snapshot.
type FloatPoint struct {
	Name  string
	Value float64
}

// GaugePoint is one gauge's value in a snapshot.
type GaugePoint struct {
	Name  string
	Value float64
}

// HistPoint is one histogram's state in a snapshot. Counts holds the
// raw (non-cumulative) per-bucket tallies, len(Bounds)+1 with the
// final +Inf overflow bucket last. A point whose Bounds is nil (after
// a merge of incompatible layouts) still carries Count and Sum.
type HistPoint struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot is a point-in-time copy of a registry, with every section
// sorted by instrument name. Snapshots are plain data: mergeable,
// renderable, and safe to hold after the cluster that produced them
// has shut down.
type Snapshot struct {
	Counters []CounterPoint
	Floats   []FloatPoint
	Gauges   []GaugePoint
	Hists    []HistPoint
}

// Merge combines two snapshots name-by-name: counters, float counters,
// and gauges sum; histograms with identical bounds sum bucket-wise.
// Histograms whose bounds differ degrade to a bucketless point (Bounds
// and Counts nil) that still sums Count and Sum — a rule chosen
// because it keeps Merge associative, which the snapshot tests check
// by property. Neither receiver nor argument is modified.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var out Snapshot
	i, j := 0, 0
	for i < len(s.Counters) || j < len(o.Counters) {
		switch {
		case j >= len(o.Counters) || (i < len(s.Counters) && s.Counters[i].Name < o.Counters[j].Name):
			out.Counters = append(out.Counters, s.Counters[i])
			i++
		case i >= len(s.Counters) || o.Counters[j].Name < s.Counters[i].Name:
			out.Counters = append(out.Counters, o.Counters[j])
			j++
		default:
			out.Counters = append(out.Counters, CounterPoint{Name: s.Counters[i].Name, Value: s.Counters[i].Value + o.Counters[j].Value})
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(s.Floats) || j < len(o.Floats) {
		switch {
		case j >= len(o.Floats) || (i < len(s.Floats) && s.Floats[i].Name < o.Floats[j].Name):
			out.Floats = append(out.Floats, s.Floats[i])
			i++
		case i >= len(s.Floats) || o.Floats[j].Name < s.Floats[i].Name:
			out.Floats = append(out.Floats, o.Floats[j])
			j++
		default:
			out.Floats = append(out.Floats, FloatPoint{Name: s.Floats[i].Name, Value: s.Floats[i].Value + o.Floats[j].Value})
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(s.Gauges) || j < len(o.Gauges) {
		switch {
		case j >= len(o.Gauges) || (i < len(s.Gauges) && s.Gauges[i].Name < o.Gauges[j].Name):
			out.Gauges = append(out.Gauges, s.Gauges[i])
			i++
		case i >= len(s.Gauges) || o.Gauges[j].Name < s.Gauges[i].Name:
			out.Gauges = append(out.Gauges, o.Gauges[j])
			j++
		default:
			out.Gauges = append(out.Gauges, GaugePoint{Name: s.Gauges[i].Name, Value: s.Gauges[i].Value + o.Gauges[j].Value})
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(s.Hists) || j < len(o.Hists) {
		switch {
		case j >= len(o.Hists) || (i < len(s.Hists) && s.Hists[i].Name < o.Hists[j].Name):
			out.Hists = append(out.Hists, s.Hists[i])
			i++
		case i >= len(s.Hists) || o.Hists[j].Name < s.Hists[i].Name:
			out.Hists = append(out.Hists, o.Hists[j])
			j++
		default:
			out.Hists = append(out.Hists, mergeHist(s.Hists[i], o.Hists[j]))
			i++
			j++
		}
	}
	return out
}

func mergeHist(a, b HistPoint) HistPoint {
	m := HistPoint{Name: a.Name, Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	if !sameBounds(a.Bounds, b.Bounds) {
		return m // incompatible layouts: keep totals, drop buckets
	}
	m.Bounds = append([]float64(nil), a.Bounds...)
	m.Counts = make([]uint64, len(a.Counts))
	for i := range m.Counts {
		var av, bv uint64
		if i < len(a.Counts) {
			av = a.Counts[i]
		}
		if i < len(b.Counts) {
			bv = b.Counts[i]
		}
		m.Counts[i] = av + bv
	}
	return m
}

func sameBounds(a, b []float64) bool {
	if a == nil || b == nil || len(a) != len(b) {
		return a == nil && b == nil
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterValue returns the named counter's value, or zero when absent.
func (s Snapshot) CounterValue(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// FloatValue returns the named float counter's value, or zero when
// absent.
func (s Snapshot) FloatValue(name string) float64 {
	for _, f := range s.Floats {
		if f.Name == name {
			return f.Value
		}
	}
	return 0
}

// GaugeValue returns the named gauge's value, or zero when absent.
func (s Snapshot) GaugeValue(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// RenderText writes the snapshot in plain-text exposition format, the
// stable contract served at /metrics and checked by golden tests:
//
//	# TYPE <name> counter|gauge|histogram
//	<name> <value>
//
// Histogram buckets render cumulatively with an le label, then _sum
// and _count lines. Lines appear in sorted instrument-name order
// across all kinds, never in map order.
func (s Snapshot) RenderText(w io.Writer) error {
	type entry struct {
		name string
		emit func(io.Writer) error
	}
	var entries []entry
	for _, c := range s.Counters {
		c := c
		entries = append(entries, entry{c.Name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
			return err
		}})
	}
	for _, f := range s.Floats {
		f := f
		entries = append(entries, entry{f.Name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", f.Name, f.Name, ftoa(f.Value))
			return err
		}})
	}
	for _, g := range s.Gauges {
		g := g
		entries = append(entries, entry{g.Name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", g.Name, g.Name, ftoa(g.Value))
			return err
		}})
	}
	for _, h := range s.Hists {
		h := h
		entries = append(entries, entry{h.Name, func(w io.Writer) error {
			return renderHist(w, h)
		}})
	}
	// Each section is already sorted; a stable sort by name interleaves
	// the kinds into one ordered document without ranging any map.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		if err := e.emit(w); err != nil {
			return err
		}
	}
	return nil
}

func renderHist(w io.Writer, h HistPoint) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, ftoa(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.Name, ftoa(h.Sum), h.Name, h.Count)
	return err
}

// ftoa formats floats the way the exposition contract fixes them:
// shortest round-trip representation.
func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
