// Package telemetry is the repo's observability substrate: a
// stdlib-only metrics registry (atomic counters, float counters,
// gauges, fixed-bucket histograms) plus a bounded ring-buffer trace of
// convergence events. The pass engine and the wire layer record into
// it on their hot paths, so every instrument mutation is allocation-
// free (and annotated //dpr:hotpath so dprlint enforces that), and
// every read path renders in sorted-name order so output never depends
// on map iteration (the determinism lint covers this package).
//
// The package deliberately has no dependency on the rest of the repo
// and no clock of its own: components that want timestamps inject a
// nanosecond clock, which keeps the deterministic layers (core,
// chaotic) free of time.Now.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 instrument. The method
// set mirrors atomic.Uint64 (Add/Load/Store) so call sites that used
// raw atomics before port with a receiver rename only. Store exists
// for checkpoint restore, which rebuilds a crashed peer's counters
// from its durable snapshot.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//dpr:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store overwrites the value (checkpoint restore only).
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// FloatCounter is a monotonically increasing float64 instrument,
// maintained as IEEE bits under compare-and-swap so concurrent Adds
// never lose mass — this is what the conservation invariant
// (DeltaShipped == DeltaFolded) is audited against.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add increases the counter by v.
//
//dpr:hotpath
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (f *FloatCounter) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Store overwrites the value (checkpoint restore only).
func (f *FloatCounter) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Gauge is a float64 instrument that can move both ways — rank mass
// held by a peer, queue depths, and the like. Merging snapshots sums
// gauges, so per-peer gauges aggregate into a cluster total.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by v (negative to decrease).
//
//dpr:hotpath
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at
// construction. bounds are inclusive upper edges in increasing order;
// observations above the last bound land in the implicit +Inf bucket.
// Observe is lock-free and allocation-free: a linear scan over at most
// a few dozen bounds plus three atomic adds.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Uint64
	sum    FloatCounter
}

// NewHistogram builds a histogram with the given bucket upper bounds,
// which must be sorted ascending. Prefer Registry.Histogram, which
// also names and registers it.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
//
//dpr:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// instrument kinds, for the registry's ordered index.
type kind int

const (
	kindCounter kind = iota
	kindFloat
	kindGauge
	kindHist
)

// Registry is a named collection of instruments. Lookup-or-create is
// mutex-guarded and intended for setup paths; the instruments
// themselves are lock-free. The registry keeps a sorted name index so
// snapshots and renderings never iterate a map.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]kind
	order    []string // all registered names, sorted
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]kind),
		counters: make(map[string]*Counter),
		floats:   make(map[string]*FloatCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// register claims name for k, keeping the sorted index current. A
// name may only ever hold one instrument kind; reusing it for another
// is a programming error and panics.
func (r *Registry) register(name string, k kind) (existing bool) {
	got, ok := r.kinds[name]
	if ok {
		if got != k {
			panic("telemetry: instrument " + name + " re-registered with a different kind")
		}
		return true
	}
	r.kinds[name] = k
	i := sort.SearchStrings(r.order, name)
	r.order = append(r.order, "")
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = name
	return false
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.register(name, kindCounter) {
		return r.counters[name]
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// FloatCounter returns the float counter registered under name,
// creating it on first use.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.register(name, kindFloat) {
		return r.floats[name]
	}
	f := &FloatCounter{}
	r.floats[name] = f
	return f
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.register(name, kindGauge) {
		return r.gauges[name]
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use. Later calls ignore bounds and
// return the existing instrument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.register(name, kindHist) {
		return r.hists[name]
	}
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot captures every instrument's current value, in sorted name
// order. The capture is not a single atomic cut across instruments —
// concurrent writers may land between reads — but each individual
// value is a consistent atomic load, which is what the conservation
// checks need at quiescence.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, name := range r.order {
		switch r.kinds[name] {
		case kindCounter:
			s.Counters = append(s.Counters, CounterPoint{Name: name, Value: r.counters[name].Load()})
		case kindFloat:
			s.Floats = append(s.Floats, FloatPoint{Name: name, Value: r.floats[name].Load()})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: r.gauges[name].Load()})
		case kindHist:
			h := r.hists[name]
			hp := HistPoint{
				Name:   name,
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]uint64, len(h.counts)),
				Count:  h.count.Load(),
				Sum:    h.sum.Load(),
			}
			for i := range h.counts {
				hp.Counts[i] = h.counts[i].Load()
			}
			s.Hists = append(s.Hists, hp)
		}
	}
	return s
}
