package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// DebugServer is the opt-in observability listener the cluster
// frontends expose: /metrics serves the plain-text exposition of a
// snapshot, /trace the recent convergence events as JSON
// (?n=K limits the event count), and /debug/pprof/* the standard
// runtime profiles. It binds its own mux so enabling it never touches
// http.DefaultServeMux (the HTTP cluster transport shares the
// process).
type DebugServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// ServeDebug starts a debug listener on addr (host:port; use port 0
// for an ephemeral port). snap is called per /metrics request, so the
// page always shows live values; trace may be nil, which turns /trace
// into an empty document.
func ServeDebug(addr string, snap func() Snapshot, trace *Trace) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap().RenderText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		if trace == nil {
			fmt.Fprint(w, `{"len":0,"cap":0,"events":[]}`+"\n")
			return
		}
		_ = trace.WriteTraceJSON(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{
		srv:  &http.Server{Handler: mux},
		ln:   ln,
		done: make(chan struct{}),
	}
	go d.serve()
	return d, nil
}

// serve runs the listener until Close. A named method (not a closure)
// so the goroutine-leak checks can recognise a lingering server by its
// stack frame.
func (d *DebugServer) serve() {
	defer close(d.done)
	_ = d.srv.Serve(d.ln)
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener down and waits for the serve goroutine to
// exit. Safe to call more than once.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
