package solver

import (
	"math"

	"dpr/internal/graph"
)

// ExtrapolationConfig extends Config with the acceleration cadence.
// Every Every-th iteration the solver applies component-wise Aitken
// delta-squared extrapolation using the last three iterates, the
// simplest member of the family of acceleration methods (Kamvar et
// al., WWW 2003) that the paper's related-work section compares the
// chaotic iteration against.
type ExtrapolationConfig struct {
	Config
	Every int // apply extrapolation every Every iterations; 0 means 10
}

// PowerAitken runs power iteration with periodic Aitken delta-squared
// extrapolation. Two safeguards keep the acceleration from hurting:
// component-wise, extrapolated values are kept only when finite and
// non-negative; and the extrapolated vector as a whole is adopted only
// if a trial power pass from it yields a smaller residual than the
// plain iterate's — graphs whose iterates are not yet in the smooth
// geometric regime (a documented failure mode of delta-squared) then
// simply continue un-accelerated. The trial pass is counted in
// Iterations whether or not it is accepted.
func PowerAitken(g *graph.Graph, cfg ExtrapolationConfig) (Result, error) {
	c := cfg.Config.withDefaults()
	if err := c.validate(); err != nil {
		return Result{}, err
	}
	every := cfg.Every
	if every == 0 {
		every = 10
	}
	if every < 3 {
		every = 3
	}
	n := g.NumNodes()
	base, err := c.baseVector(n)
	if err != nil {
		return Result{}, err
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	prev1 := make([]float64, n) // x_{k-1}
	prev2 := make([]float64, n) // x_{k-2}
	extr := make([]float64, n)  // extrapolation candidate
	for i := range cur {
		cur[i] = 1
	}
	res := Result{}
	for iter := 1; iter <= c.MaxIters; iter++ {
		copy(prev2, prev1)
		copy(prev1, cur)
		pushPass(g, c.Damping, base, cur, next)
		res.Residual = maxRelChange(cur, next)
		cur, next = next, cur
		res.Iterations = iter
		if c.TrackHistory {
			res.History = append(res.History, res.Residual)
		}
		if res.Residual < c.Tol {
			res.Converged = true
			break
		}
		if iter >= 3 && iter%every == 0 && iter < c.MaxIters {
			copy(extr, cur)
			aitken(extr, prev1, prev2)
			pushPass(g, c.Damping, base, extr, next)
			iter++
			res.Iterations = iter
			r := maxRelChange(extr, next)
			if r < res.Residual {
				// The accelerated iterate contracts faster: adopt it
				// along with the trial pass, keeping the three-term
				// history consistent.
				res.Residual = r
				copy(prev2, prev1)
				copy(prev1, extr)
				cur, next = next, cur
			}
			if c.TrackHistory {
				res.History = append(res.History, res.Residual)
			}
			if res.Residual < c.Tol {
				res.Converged = true
				break
			}
		}
	}
	res.Ranks = cur
	return res, nil
}

// aitken applies x' = x_k - (x_k - x_{k-1})^2 / (x_k - 2 x_{k-1} + x_{k-2})
// component-wise, in place on xk, with safeguards against tiny
// denominators and non-physical (negative/non-finite) results.
func aitken(xk, xk1, xk2 []float64) {
	for i := range xk {
		num := xk[i] - xk1[i]
		den := xk[i] - 2*xk1[i] + xk2[i]
		if math.Abs(den) < 1e-30 {
			continue
		}
		v := xk[i] - num*num/den
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			continue
		}
		xk[i] = v
	}
}

// IterationsToReach runs power iteration and returns how many passes
// are needed before every component is within relTol of the reference
// vector ref. Used by the quality-vs-pass experiment ("99% of the
// nodes converged to within 1% of R_c in less than 10 passes").
// fraction selects how much of the node population must be within
// relTol (1.0 = all). Returns MaxIters+1 if never reached.
func IterationsToReach(g *graph.Graph, cfg Config, ref []float64, relTol, fraction float64) int {
	c := cfg.withDefaults()
	n := g.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1
	}
	base, err := c.baseVector(n)
	if err != nil {
		return c.MaxIters + 1
	}
	need := int(math.Ceil(fraction * float64(n)))
	for iter := 1; iter <= c.MaxIters; iter++ {
		pushPass(g, c.Damping, base, cur, next)
		cur, next = next, cur
		within := 0
		for i := range cur {
			denom := math.Abs(ref[i])
			if denom == 0 {
				denom = 1
			}
			if math.Abs(cur[i]-ref[i])/denom <= relTol {
				within++
			}
		}
		if within >= need {
			return iter
		}
	}
	return c.MaxIters + 1
}
