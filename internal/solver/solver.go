// Package solver implements centralized pagerank solvers: the
// conventional synchronous power iteration the paper uses as its
// quality baseline R_c (section 4.3), a Gauss-Seidel variant, and
// Aitken/quadratic extrapolation acceleration (the Kamvar-style
// methods the paper's related-work section compares against).
//
// All solvers use the paper's formulation (Equation 1):
//
//	PR(i) = (1-d) + d * sum over in-links j of PR(j)/outdeg(j)
//
// This is the original "pagerank citation" scaling where every rank is
// at least 1-d and the ranks of an N-node graph sum to roughly N.
// Dangling documents (no out-links) simply emit no mass, matching the
// distributed algorithm where such documents send no update messages.
package solver

import (
	"fmt"
	"math"

	"dpr/internal/graph"
)

// DefaultDamping is the damping factor d used throughout the paper and
// by Google's original formulation.
const DefaultDamping = 0.85

// Config parameterizes a solver run.
type Config struct {
	Damping  float64 // 0 < d < 1; 0 means DefaultDamping
	MaxIters int     // hard iteration cap; 0 means 1000
	Tol      float64 // max relative per-component change to declare convergence; 0 means 1e-12

	// TrackHistory, when true, records the max relative change after
	// every iteration in Result.History (used by the quality-vs-pass
	// experiment of section 4.3).
	TrackHistory bool

	// Teleport personalizes the constant term: document i receives
	// (1-d) * N * Teleport[i] / sum(Teleport) instead of the uniform
	// (1-d). Nil means uniform.
	Teleport []float64
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = DefaultDamping
	}
	if c.MaxIters == 0 {
		c.MaxIters = 1000
	}
	if c.Tol == 0 {
		c.Tol = 1e-12
	}
	return c
}

func (c Config) validate() error {
	if c.Damping <= 0 || c.Damping >= 1 {
		return fmt.Errorf("solver: damping %v outside (0,1)", c.Damping)
	}
	if c.MaxIters < 1 {
		return fmt.Errorf("solver: MaxIters %d < 1", c.MaxIters)
	}
	if c.Tol <= 0 {
		return fmt.Errorf("solver: Tol %v <= 0", c.Tol)
	}
	if c.Teleport != nil {
		sum := 0.0
		for i, w := range c.Teleport {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("solver: Teleport[%d] = %v invalid", i, w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("solver: Teleport weights sum to %v", sum)
		}
	}
	return nil
}

// baseVector returns the per-document constant term.
func (c Config) baseVector(n int) ([]float64, error) {
	base := make([]float64, n)
	if c.Teleport == nil {
		for i := range base {
			base[i] = 1 - c.Damping
		}
		return base, nil
	}
	if len(c.Teleport) != n {
		return nil, fmt.Errorf("solver: Teleport has %d weights for %d documents", len(c.Teleport), n)
	}
	sum := 0.0
	for _, w := range c.Teleport {
		sum += w
	}
	scale := (1 - c.Damping) * float64(n) / sum
	for i, w := range c.Teleport {
		base[i] = scale * w
	}
	return base, nil
}

// Result reports a solver run.
type Result struct {
	Ranks      []float64
	Iterations int
	Residual   float64 // final max relative per-component change
	Converged  bool
	History    []float64 // per-iteration residual when TrackHistory
}

// Power runs synchronous (Jacobi) power iteration until the maximum
// relative per-component change falls below Tol. This is the
// "conventional synchronous iterative solver" producing the paper's
// reference ranks R_c.
func Power(g *graph.Graph, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	base, err := cfg.baseVector(n)
	if err != nil {
		return Result{}, err
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1
	}
	res := Result{}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		pushPass(g, cfg.Damping, base, cur, next)
		res.Residual = maxRelChange(cur, next)
		cur, next = next, cur
		res.Iterations = iter
		if cfg.TrackHistory {
			res.History = append(res.History, res.Residual)
		}
		if res.Residual < cfg.Tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = cur
	return res, nil
}

// pushPass computes next = base + d*A^T cur using a push over the
// forward adjacency (cache-friendly, no transpose needed).
func pushPass(g *graph.Graph, d float64, base, cur, next []float64) {
	copy(next, base)
	for v := 0; v < g.NumNodes(); v++ {
		links := g.OutLinks(graph.NodeID(v))
		if len(links) == 0 {
			continue
		}
		share := d * cur[v] / float64(len(links))
		for _, t := range links {
			next[t] += share
		}
	}
}

func maxRelChange(old, new []float64) float64 { return MaxRelDiff(old, new) }

// MaxRelDiff returns the maximum per-component relative difference
// between a candidate rank vector and a reference, |got-ref|/|ref|
// (denominator floored at 1 for zero components). It is the shared
// convergence metric: the solvers' internal residual, the engine
// equivalence suite's agreement bound, and the race harness's
// distance-to-reference all use this one definition, so "reached the
// target" means the same thing for every engine.
func MaxRelDiff(got, ref []float64) float64 {
	max := 0.0
	for i := range got {
		denom := math.Abs(ref[i])
		if denom == 0 {
			denom = 1
		}
		if d := math.Abs(ref[i]-got[i]) / denom; d > max {
			max = d
		}
	}
	return max
}

// GaussSeidel runs in-place (Gauss-Seidel) iteration: updated ranks are
// visible to later documents within the same sweep. It typically needs
// noticeably fewer sweeps than Power on the same graph, which is the
// centralized analogue of why the paper's chaotic iteration converges
// quickly: fresh values propagate immediately.
func GaussSeidel(g *graph.Graph, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	g.Transpose()
	n := g.NumNodes()
	base, err := cfg.baseVector(n)
	if err != nil {
		return Result{}, err
	}
	ranks := make([]float64, n)
	outDeg := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1
		outDeg[i] = float64(g.OutDegree(graph.NodeID(i)))
	}
	res := Result{}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		worst := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, s := range g.InLinks(graph.NodeID(v)) {
				sum += ranks[s] / outDeg[s]
			}
			updated := base[v] + cfg.Damping*sum
			denom := math.Abs(updated)
			if denom == 0 {
				denom = 1
			}
			if d := math.Abs(updated-ranks[v]) / denom; d > worst {
				worst = d
			}
			ranks[v] = updated
		}
		res.Residual = worst
		res.Iterations = iter
		if cfg.TrackHistory {
			res.History = append(res.History, worst)
		}
		if worst < cfg.Tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = ranks
	return res, nil
}
