package solver

import (
	"math"
	"testing"
	"testing/quick"

	"dpr/internal/graph"
	"dpr/internal/rng"
)

const damping = DefaultDamping

// uniformRank is the analytic pagerank of any graph where every node
// has identical in/out structure (cycle, complete graph): the fixed
// point of r = (1-d) + d*r, i.e. exactly 1.
const uniformRank = 1.0

func TestPowerOnCycle(t *testing.T) {
	g := graph.Cycle(10)
	res, err := Power(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i, r := range res.Ranks {
		if math.Abs(r-uniformRank) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want 1", i, r)
		}
	}
}

func TestPowerOnComplete(t *testing.T) {
	g := graph.Complete(6)
	res, err := Power(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Ranks {
		if math.Abs(r-uniformRank) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want 1", i, r)
		}
	}
}

func TestPowerStarHubDominates(t *testing.T) {
	g := graph.Star(11)
	res, err := Power(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hub := res.Ranks[0]
	for i := 1; i < 11; i++ {
		if res.Ranks[i] >= hub {
			t.Fatalf("leaf %d rank %v >= hub %v", i, res.Ranks[i], hub)
		}
	}
	// Analytic solution: leaf = (1-d) + d*hub/10, hub = (1-d) + 10*d*leaf.
	// Solving: hub = (1+10d)/(1+d), leaf = (1+d/10)/(1+d).
	d := damping
	wantHub := (1 + 10*d) / (1 + d)
	wantLeaf := (1 + d/10) / (1 + d)
	if math.Abs(hub-wantHub) > 1e-6 {
		t.Fatalf("hub = %v, want %v", hub, wantHub)
	}
	if math.Abs(res.Ranks[3]-wantLeaf) > 1e-6 {
		t.Fatalf("leaf = %v, want %v", res.Ranks[3], wantLeaf)
	}
}

func TestPowerTwoNodeChain(t *testing.T) {
	// 0 -> 1, nothing else. rank0 = 1-d; rank1 = (1-d) + d*(1-d).
	g := graph.FromAdjacency([][]graph.NodeID{{1}, {}})
	res, err := Power(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := damping
	if math.Abs(res.Ranks[0]-(1-d)) > 1e-9 {
		t.Fatalf("rank0 = %v, want %v", res.Ranks[0], 1-d)
	}
	want1 := (1 - d) + d*(1-d)
	if math.Abs(res.Ranks[1]-want1) > 1e-9 {
		t.Fatalf("rank1 = %v, want %v", res.Ranks[1], want1)
	}
}

func TestPowerRankLowerBound(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 5))
	res, err := Power(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Ranks {
		if r < 1-damping-1e-12 {
			t.Fatalf("rank[%d] = %v below lower bound %v", i, r, 1-damping)
		}
	}
}

func TestPowerHistoryDecreases(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 6))
	res, err := Power(g, Config{TrackHistory: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history length %d != iterations %d", len(res.History), res.Iterations)
	}
	// Residuals should decay overall (geometric with ratio ~d).
	if res.History[len(res.History)-1] > res.History[0] {
		t.Fatal("residuals did not decrease")
	}
}

func TestGaussSeidelMatchesPower(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1500, 7))
	p, err := Power(g, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GaussSeidel(g, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if !gs.Converged {
		t.Fatal("Gauss-Seidel did not converge")
	}
	for i := range p.Ranks {
		if math.Abs(p.Ranks[i]-gs.Ranks[i]) > 1e-6 {
			t.Fatalf("rank[%d]: power %v vs gauss-seidel %v", i, p.Ranks[i], gs.Ranks[i])
		}
	}
	if gs.Iterations > p.Iterations {
		t.Errorf("Gauss-Seidel took %d iterations, power %d; expected GS <= power",
			gs.Iterations, p.Iterations)
	}
}

func TestPowerAitkenMatchesPower(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1500, 8))
	p, err := Power(g, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	a, err := PowerAitken(g, ExtrapolationConfig{Config: Config{Tol: 1e-13}, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatal("Aitken did not converge")
	}
	for i := range p.Ranks {
		if math.Abs(p.Ranks[i]-a.Ranks[i]) > 1e-6 {
			t.Fatalf("rank[%d]: power %v vs aitken %v", i, p.Ranks[i], a.Ranks[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Cycle(3)
	bad := []Config{
		{Damping: 1.5},
		{Damping: -0.1},
		{Damping: 0.85, MaxIters: -1},
		{Damping: 0.85, Tol: -1},
	}
	for i, cfg := range bad {
		if _, err := Power(g, cfg); err == nil {
			t.Errorf("case %d: Power accepted invalid config %+v", i, cfg)
		}
		if _, err := GaussSeidel(g, cfg); err == nil {
			t.Errorf("case %d: GaussSeidel accepted invalid config %+v", i, cfg)
		}
	}
}

func TestPowerMaxItersRespected(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 9))
	res, err := Power(g, Config{MaxIters: 3, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 3 {
		t.Fatalf("converged=%v iterations=%d, want false/3", res.Converged, res.Iterations)
	}
}

func TestIterationsToReach(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 10))
	ref, err := Power(g, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	full := IterationsToReach(g, Config{}, ref.Ranks, 0.01, 1.0)
	most := IterationsToReach(g, Config{}, ref.Ranks, 0.01, 0.99)
	if most > full {
		t.Fatalf("99%% (%d passes) should not need more than 100%% (%d)", most, full)
	}
	// Synchronous Jacobi contracts at rate ~d=0.85 per pass, so 1%
	// needs at most ~log(0.01)/log(0.85) ~= 28 passes; 99% of nodes
	// get there sooner. (The paper's "<10 passes for 99%" claim is
	// about the distributed delta-push scheme, tested in core.)
	if most > 28 {
		t.Fatalf("99%% of nodes took %d passes to reach 1%%", most)
	}
	// Unreachable tolerance returns MaxIters+1.
	if got := IterationsToReach(g, Config{MaxIters: 2}, ref.Ranks, 1e-18, 1.0); got != 3 {
		t.Fatalf("unreachable tolerance: got %d, want MaxIters+1=3", got)
	}
}

// Property: pagerank of a uniform out-degree random graph sums to
// approximately N (mass conservation up to the (1-d) source and d-fold
// recirculation; with no dangling nodes the sum is exactly N at the
// fixed point).
func TestRankSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(100)
		deg := 1 + r.Intn(4)
		if deg >= n {
			deg = n - 1
		}
		g := graph.Random(n, deg, seed)
		res, err := Power(g, Config{Tol: 1e-12})
		if err != nil || !res.Converged {
			return false
		}
		sum := 0.0
		for _, v := range res.Ranks {
			sum += v
		}
		return math.Abs(sum-float64(n)) < 1e-6*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPower10k(b *testing.B) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(10000, 1))
	cfg := Config{Tol: 1e-10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Power(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussSeidel10k(b *testing.B) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(10000, 1))
	g.Transpose()
	cfg := Config{Tol: 1e-10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GaussSeidel(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTeleportValidationAndClosedForm(t *testing.T) {
	g := graph.Cycle(4)
	bad := []Config{
		{Teleport: []float64{1, -1, 1, 1}},
		{Teleport: []float64{0, 0, 0, 0}},
		{Teleport: []float64{math.Inf(1), 1, 1, 1}},
	}
	for i, cfg := range bad {
		if _, err := Power(g, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Wrong-length teleport is rejected at solve time.
	if _, err := Power(g, Config{Teleport: []float64{1, 2}}); err == nil {
		t.Error("accepted short teleport")
	}
	// Closed form: chain 0 -> 1, teleport all on 0:
	// base0 = (1-d)*2, base1 = 0; r0 = base0, r1 = d*r0.
	chain := graph.FromAdjacency([][]graph.NodeID{{1}, {}})
	res, err := Power(chain, Config{Tol: 1e-13, Teleport: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultDamping
	if math.Abs(res.Ranks[0]-2*(1-d)) > 1e-9 {
		t.Fatalf("rank0 = %v, want %v", res.Ranks[0], 2*(1-d))
	}
	if math.Abs(res.Ranks[1]-2*d*(1-d)) > 1e-9 {
		t.Fatalf("rank1 = %v, want %v", res.Ranks[1], 2*d*(1-d))
	}
	// Gauss-Seidel agrees with power under teleport.
	gs, err := GaussSeidel(chain, Config{Tol: 1e-13, Teleport: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs.Ranks {
		if math.Abs(gs.Ranks[i]-res.Ranks[i]) > 1e-9 {
			t.Fatalf("GS teleport mismatch at %d", i)
		}
	}
}
