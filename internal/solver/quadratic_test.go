package solver

import (
	"math"
	"testing"

	"dpr/internal/graph"
)

func TestPowerQuadraticMatchesPower(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1500, 71))
	ref, err := Power(g, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	qe, err := PowerQuadratic(g, ExtrapolationConfig{Config: Config{Tol: 1e-13}, Every: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !qe.Converged {
		t.Fatal("QE did not converge")
	}
	for i := range ref.Ranks {
		if math.Abs(ref.Ranks[i]-qe.Ranks[i]) > 1e-6 {
			t.Fatalf("rank[%d]: power %v vs QE %v", i, ref.Ranks[i], qe.Ranks[i])
		}
	}
}

func TestPowerQuadraticOnCycle(t *testing.T) {
	res, err := PowerQuadratic(graph.Cycle(12), ExtrapolationConfig{Config: Config{Tol: 1e-12}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Ranks {
		if math.Abs(r-1) > 1e-8 {
			t.Fatalf("rank[%d] = %v", i, r)
		}
	}
}

func TestPowerQuadraticValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := PowerQuadratic(g, ExtrapolationConfig{Config: Config{Damping: 2}}); err == nil {
		t.Fatal("accepted bad damping")
	}
	// Teleport flows through.
	tp := make([]float64, 4)
	tp[0] = 1
	res, err := PowerQuadratic(g, ExtrapolationConfig{Config: Config{Tol: 1e-12, Teleport: tp}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0] <= res.Ranks[2] {
		t.Fatal("teleport concentration had no effect")
	}
}

func TestQuadraticExtrapolateSafeguards(t *testing.T) {
	// Collinear history: extrapolation must be a no-op, not a crash.
	xk := []float64{1, 2}
	x0 := []float64{1, 2}
	x1 := []float64{1, 2}
	x2 := []float64{1, 2}
	quadraticExtrapolate(xk, x0, x1, x2)
	if xk[0] != 1 || xk[1] != 2 {
		t.Fatalf("degenerate extrapolation changed the iterate: %v", xk)
	}
}
