package solver

import (
	"math"

	"dpr/internal/graph"
)

// PowerQuadratic runs power iteration with periodic Quadratic
// Extrapolation (Kamvar, Haveliwala, Manning & Golub, WWW 2003 — the
// acceleration family the paper's related-work section contrasts the
// chaotic iteration with). Every Every-th iteration the last four
// iterates x_{k-3..k} estimate the two subdominant eigenvector
// directions and subtract them:
//
//	y_i = x_{k-3+i} - x_{k-3},  i = 1..3
//	solve min || [y1 y2] g + y3 ||  for g = (g1, g2)
//	b0 = g1 + g2 + 1,  b1 = g2 + 1,  b2 = 1
//	x* = b0*x_{k-2} + b1*x_{k-1} + b2*x_k  (then rescaled)
//
// The extrapolated vector is accepted only when finite and
// non-negative; otherwise the plain iterate continues (standard
// safeguard).
func PowerQuadratic(g *graph.Graph, cfg ExtrapolationConfig) (Result, error) {
	c := cfg.Config.withDefaults()
	if err := c.validate(); err != nil {
		return Result{}, err
	}
	every := cfg.Every
	if every == 0 {
		every = 10
	}
	if every < 4 {
		every = 4
	}
	n := g.NumNodes()
	base, err := c.baseVector(n)
	if err != nil {
		return Result{}, err
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	hist := [4][]float64{} // x_{k-3} .. x_k ring
	for i := range hist {
		hist[i] = make([]float64, n)
	}
	for i := range cur {
		cur[i] = 1
	}
	res := Result{}
	for iter := 1; iter <= c.MaxIters; iter++ {
		copy(hist[(iter-1)%4], cur)
		pushPass(g, c.Damping, base, cur, next)
		res.Residual = maxRelChange(cur, next)
		cur, next = next, cur
		res.Iterations = iter
		if c.TrackHistory {
			res.History = append(res.History, res.Residual)
		}
		if res.Residual < c.Tol {
			res.Converged = true
			break
		}
		if iter >= 4 && iter%every == 0 {
			x0 := hist[(iter-4)%4] // x_{k-3}
			x1 := hist[(iter-3)%4]
			x2 := hist[(iter-2)%4]
			quadraticExtrapolate(cur, x0, x1, x2)
		}
	}
	res.Ranks = cur
	return res, nil
}

// quadraticExtrapolate overwrites xk with the QE estimate built from
// x0 = x_{k-3}, x1 = x_{k-2}, x2 = x_{k-1} and xk itself, when the
// estimate is usable.
func quadraticExtrapolate(xk, x0, x1, x2 []float64) {
	// Normal equations for the 2-column least squares.
	var a11, a12, a22, b1, b2 float64
	for i := range xk {
		y1 := x1[i] - x0[i]
		y2 := x2[i] - x0[i]
		y3 := xk[i] - x0[i]
		a11 += y1 * y1
		a12 += y1 * y2
		a22 += y2 * y2
		b1 += y1 * y3
		b2 += y2 * y3
	}
	det := a11*a22 - a12*a12
	if math.Abs(det) < 1e-30 {
		return // directions collinear; skip this round
	}
	g1 := (-b1*a22 + b2*a12) / det
	g2 := (-b2*a11 + b1*a12) / det
	b0c := g1 + g2 + 1
	b1c := g2 + 1
	const b2c = 1.0
	denom := b0c + b1c + b2c
	if math.Abs(denom) < 1e-12 {
		return
	}
	// Trial vector; keep only if physical.
	ok := true
	trial := make([]float64, len(xk))
	for i := range xk {
		v := (b0c*x1[i] + b1c*x2[i] + b2c*xk[i]) / denom
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			ok = false
			break
		}
		trial[i] = v
	}
	if ok {
		copy(xk, trial)
	}
}
