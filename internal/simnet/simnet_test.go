package simnet

import (
	"testing"
	"time"
)

func TestEventsFireInOrder(t *testing.T) {
	var s Sim
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 30*time.Millisecond {
		t.Fatalf("end time %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order: %v", order)
	}
	if s.Events() != 3 {
		t.Fatalf("events: %d", s.Events())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var s Sim
	hits := 0
	var chain func()
	chain = func() {
		hits++
		if hits < 10 {
			s.After(time.Millisecond, chain)
		}
	}
	s.After(0, chain)
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 10 {
		t.Fatalf("hits = %d", hits)
	}
	if end != 9*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Sim
	s.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("past scheduling did not panic")
			}
		}()
		s.At(0, func() {})
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestHaltStopsRun(t *testing.T) {
	var s Sim
	fired := 0
	s.After(time.Millisecond, func() { fired++; s.Halt() })
	s.After(2*time.Millisecond, func() { fired++ })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d events after halt", fired)
	}
	// Resuming runs the rest.
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("resume fired %d", fired)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	var s Sim
	var loop func()
	loop = func() { s.After(time.Nanosecond, loop) }
	s.After(0, loop)
	if _, err := s.Run(100); err == nil {
		t.Fatal("runaway loop not caught")
	}
}

func TestUplinkSerializesTransmissions(t *testing.T) {
	var s Sim
	u := &Uplink{Bandwidth: 1000, Latency: 5 * time.Millisecond} // 1000 B/s
	var arrivals []time.Duration
	// Two 100-byte messages sent back to back at t=0:
	// first transmits 0..100ms, arrives 105ms;
	// second transmits 100..200ms, arrives 205ms.
	s.After(0, func() {
		u.Send(&s, 100, func() { arrivals = append(arrivals, s.Now()) })
		u.Send(&s, 100, func() { arrivals = append(arrivals, s.Now()) })
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals: %v", arrivals)
	}
	if arrivals[0] != 105*time.Millisecond {
		t.Fatalf("first arrival %v, want 105ms", arrivals[0])
	}
	if arrivals[1] != 205*time.Millisecond {
		t.Fatalf("second arrival %v, want 205ms (serialized)", arrivals[1])
	}
	bytes, sends, busy := u.Stats()
	if bytes != 200 || sends != 2 || busy != 200*time.Millisecond {
		t.Fatalf("stats: %d %d %v", bytes, sends, busy)
	}
}

func TestUplinkIdleGapResetsStart(t *testing.T) {
	var s Sim
	u := &Uplink{Bandwidth: 1000}
	var second time.Duration
	s.After(0, func() {
		u.Send(&s, 100, func() {}) // busy until 100ms
	})
	s.After(500*time.Millisecond, func() {
		u.Send(&s, 100, func() { second = s.Now() })
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if second != 600*time.Millisecond {
		t.Fatalf("idle-gap send arrived at %v, want 600ms", second)
	}
}

func TestUplinkValidation(t *testing.T) {
	var s Sim
	u := &Uplink{Bandwidth: 0}
	s.After(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("zero bandwidth did not panic")
			}
		}()
		u.Send(&s, 10, func() {})
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	u2 := &Uplink{Bandwidth: 100}
	s.After(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("negative size did not panic")
			}
		}()
		u2.Send(&s, -1, func() {})
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}
