// Package simnet is a discrete-event network simulator. The paper's
// evaluation deliberately omits network effects ("network latency
// effects, message routing, and other system overheads are not
// modeled in the simulation") and instead estimates execution time
// analytically (Equation 4). This package supplies what is missing: a
// simulated clock, scheduled events, and per-peer uplinks with
// latency, bandwidth and serialized transmission — so the distributed
// pagerank computation can be replayed against a network model and the
// analytic estimate validated against "measured" simulated time.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    time.Duration
	pq     eventHeap
	seq    uint64 // tie-breaker for deterministic ordering
	fired  int64
	halted bool
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Events returns how many events have fired.
func (s *Sim) Events() int64 { return s.fired }

// At schedules fn at an absolute simulated time, which must not be in
// the past.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn delay after the current time.
func (s *Sim) After(delay time.Duration, fn func()) {
	if delay < 0 {
		panic("simnet: negative delay")
	}
	s.At(s.now+delay, fn)
}

// Halt stops the run loop after the current event returns.
func (s *Sim) Halt() { s.halted = true }

// Run fires events in timestamp order until the queue empties (the
// natural quiescence of a message-driven computation), Halt is called,
// or maxEvents fire (0 = unlimited). It returns the final simulated
// time.
func (s *Sim) Run(maxEvents int64) (time.Duration, error) {
	s.halted = false
	for s.pq.Len() > 0 && !s.halted {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		s.fired++
		e.fn()
		if maxEvents > 0 && s.fired >= maxEvents {
			return s.now, fmt.Errorf("simnet: exceeded %d events", maxEvents)
		}
	}
	return s.now, nil
}

// Uplink models one peer's outgoing network interface: transmissions
// are serialized (a new send starts only after the previous finishes
// — the paper's "each peer serializes sending of these messages"
// assumption), take size/bandwidth to put on the wire, and arrive
// after an additional propagation latency.
type Uplink struct {
	Bandwidth float64       // bytes per second; must be positive
	Latency   time.Duration // propagation delay added after transmission

	busyUntil time.Duration
	sentBytes int64
	sends     int64
	busyTime  time.Duration
}

// Send schedules deliver on s after the message has been fully
// transmitted and propagated. It returns the delivery time.
func (u *Uplink) Send(s *Sim, size int64, deliver func()) time.Duration {
	if u.Bandwidth <= 0 || math.IsNaN(u.Bandwidth) {
		panic("simnet: uplink bandwidth must be positive")
	}
	if size < 0 {
		panic("simnet: negative message size")
	}
	start := s.Now()
	if u.busyUntil > start {
		start = u.busyUntil
	}
	tx := time.Duration(float64(size) / u.Bandwidth * float64(time.Second))
	done := start + tx
	u.busyUntil = done
	u.sentBytes += size
	u.sends++
	u.busyTime += tx
	arrival := done + u.Latency
	s.At(arrival, deliver)
	return arrival
}

// Stats reports (total bytes, transmissions, cumulative busy time).
func (u *Uplink) Stats() (bytes int64, sends int64, busy time.Duration) {
	return u.sentBytes, u.sends, u.busyTime
}
