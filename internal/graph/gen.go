package graph

import (
	"fmt"
	"math"
	"slices"

	"dpr/internal/rng"
)

// PowerLawConfig parameterizes the synthetic document-link graphs of
// the paper's section 4.1. Broder et al. measured the web's in-degree
// exponent as 2.1 and out-degree exponent as 2.4; the paper
// hypothesizes P2P document stores look the same and synthesizes
// graphs of 10k, 100k, 500k and 5000k nodes from that model.
//
// The generator models the two robust regularities of measured link
// graphs: power-law degrees (the exponents above) and link locality —
// most links stay within a document's neighborhood, with a minority
// going to globally popular documents. Locality sets the neighborhood
// fraction; 0 recovers the pure global-popularity model.
type PowerLawConfig struct {
	Nodes       int     // number of documents
	OutExponent float64 // out-degree power-law exponent (paper: 2.4)
	InExponent  float64 // in-degree power-law exponent (paper: 2.1)
	MaxDegree   int     // out-degree support cap; 0 means min(Nodes-1, 1000)
	Locality    float64 // fraction of links targeting the near-id neighborhood, in [0,1]
	Seed        uint64  // generator seed; same seed, same graph
}

// defaultLocality is the neighborhood link fraction used by
// DefaultPowerLawConfig. Web crawl measurements (the data behind the
// paper's degree exponents) consistently show the large majority of
// links staying within a page's own host or a short id distance in
// crawl order; 0.8 is in the band reported for host-locality and is
// what makes the link structure compressible in practice.
const defaultLocality = 0.8

// localityExponent shapes the neighborhood offset distribution: link
// distance in id space follows a power law with this exponent, so most
// local links are very close and a heavy tail still reaches across the
// window.
const localityExponent = 1.6

// localityWindow caps the neighborhood radius in id space.
const localityWindow = 1 << 14

// DefaultPowerLawConfig returns the paper's parameters for n nodes.
func DefaultPowerLawConfig(n int, seed uint64) PowerLawConfig {
	return PowerLawConfig{
		Nodes:       n,
		OutExponent: 2.4,
		InExponent:  2.1,
		Locality:    defaultLocality,
		Seed:        seed,
	}
}

// GenStats reports what the power-law generator actually produced.
// The rejection sampler caps its attempts per node, so on small or
// degree-saturated configurations a node can end up with fewer
// out-links than its drawn degree; these counters surface that instead
// of letting it pass silently.
type GenStats struct {
	Nodes          int
	Edges          int64 // edges actually emitted
	WantEdges      int64 // sum of drawn out-degrees
	DroppedEdges   int64 // WantEdges - Edges, lost to sampler saturation
	SaturatedNodes int   // nodes whose attempt budget ran out short
	MaxOutDegree   int   // largest realized out-degree
}

// Saturated reports whether any node under-filled its drawn degree.
func (s GenStats) Saturated() bool { return s.SaturatedNodes > 0 }

// StreamPowerLaw runs the section 4.1 generator in streaming form:
// emit is called once per node, in ascending node order, with that
// node's sorted, deduplicated target list. The slice passed to emit is
// reused between calls and must not be retained.
//
// The working set is bounded by the model state (attractiveness
// weights and their alias table, drawn degrees) plus one max-degree
// scratch list and an n-bit dedup set — no global edge slice — so a
// consumer that encodes as it goes (internal/csr) never materializes
// the adjacency.
//
// Node ids are assigned in decreasing attractiveness order: node 0 is
// the most attractive target. Any labeling of the same attractiveness
// multiset yields the same graph distribution up to isomorphism, and
// this one concentrates popular targets at small ids — which is what
// keeps the sorted lists' deltas small and makes the compressed
// representation's gap-varint encoding effective.
func StreamPowerLaw(cfg PowerLawConfig, emit func(v NodeID, targets []NodeID) error) (GenStats, error) {
	n := cfg.Nodes
	if n < 2 {
		return GenStats{}, fmt.Errorf("graph: power-law generator needs >= 2 nodes, got %d", n)
	}
	if cfg.OutExponent <= 1 || cfg.InExponent <= 1 {
		return GenStats{}, fmt.Errorf("graph: power-law exponents must exceed 1 (got out=%g in=%g)",
			cfg.OutExponent, cfg.InExponent)
	}
	maxDeg := cfg.MaxDegree
	if maxDeg == 0 {
		maxDeg = n - 1
		if maxDeg > 1000 {
			maxDeg = 1000
		}
	}
	if maxDeg < 1 || maxDeg >= n {
		return GenStats{}, fmt.Errorf("graph: MaxDegree %d out of range [1,%d)", maxDeg, n)
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return GenStats{}, fmt.Errorf("graph: Locality %g outside [0,1]", cfg.Locality)
	}

	r := rng.New(cfg.Seed)
	outDist := rng.NewPowerLaw(1, maxDeg, cfg.OutExponent)
	window := n - 1
	if window > localityWindow {
		window = localityWindow
	}
	localDist := rng.NewPowerLaw(1, window, localityExponent)

	// Attractiveness is the deterministic Zipf profile w_i = (i+1)^-s
	// with s = 1/(InExponent-1): node i's in-degree is then Poisson
	// with mean proportional to w_i, and the mixture over i follows a
	// power law with exponent 1 + 1/s = InExponent — the paper's
	// in-degree model, hit exactly rather than through a capped-support
	// weight draw. The profile is decreasing by construction, giving
	// the id assignment described above for free.
	s := 1 / (cfg.InExponent - 1)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
	}
	targets := rng.NewAlias(weights)

	degs := make([]int32, n)
	stats := GenStats{Nodes: n}
	for v := range degs {
		degs[v] = int32(outDist.Draw(r))
		stats.WantEdges += int64(degs[v])
	}

	scratch := make([]NodeID, 0, maxDeg)
	drawn := newBitset(n)
	for v := 0; v < n; v++ {
		want := int(degs[v])
		scratch = scratch[:0]
		// Rejection sampling of distinct non-self targets. With degree
		// << n collisions are rare; cap attempts to avoid pathological
		// spins on tiny graphs.
		attempts := 0
		for len(scratch) < want && attempts < 50*want+100 {
			attempts++
			// Each link is either a neighborhood link (power-law offset
			// in id space, either direction) or a global popularity
			// draw. Neighborhood draws falling outside [0,n) burn an
			// attempt, matching the rejection accounting of duplicates.
			var t NodeID
			if cfg.Locality > 0 && r.Bool(cfg.Locality) {
				off := localDist.Draw(r)
				if r.Bool(0.5) {
					off = -off
				}
				t = NodeID(v + off)
				if t < 0 || int(t) >= n {
					continue
				}
			} else {
				t = NodeID(targets.Draw(r))
			}
			if int(t) == v || drawn.test(t) {
				continue
			}
			drawn.set(t)
			scratch = append(scratch, t)
		}
		if len(scratch) < want {
			stats.SaturatedNodes++
			stats.DroppedEdges += int64(want - len(scratch))
		}
		// Clear only the bits we set: the dedup set resets in O(degree),
		// not O(n), per node.
		for _, t := range scratch {
			drawn.clear(t)
		}
		slices.Sort(scratch)
		stats.Edges += int64(len(scratch))
		if len(scratch) > stats.MaxOutDegree {
			stats.MaxOutDegree = len(scratch)
		}
		if err := emit(NodeID(v), scratch); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// GeneratePowerLaw synthesizes a directed graph whose out-degrees
// follow a power law with exponent OutExponent and whose in-degrees
// follow (in expectation) a power law with exponent InExponent.
//
// Method: each node draws an exact out-degree from the out
// distribution; each link then either stays in the source's id
// neighborhood (probability Locality, power-law offset) or targets a
// document sampled via an alias table with probability proportional to
// a Zipf attractiveness profile whose exponent is derived from
// InExponent. Self-loops and duplicate targets are rejected, so
// out-degrees are exact up to saturation (see GeneratePowerLawStats
// for the saturation accounting).
func GeneratePowerLaw(cfg PowerLawConfig) (*Graph, error) {
	g, _, err := GeneratePowerLawStats(cfg)
	return g, err
}

// GeneratePowerLawStats is GeneratePowerLaw returning the generator's
// saturation statistics alongside the graph.
func GeneratePowerLawStats(cfg PowerLawConfig) (*Graph, GenStats, error) {
	var (
		outStart []int64
		outAdj   []NodeID
	)
	stats, err := StreamPowerLaw(cfg, func(v NodeID, targets []NodeID) error {
		if outStart == nil {
			outStart = make([]int64, cfg.Nodes+1)
		}
		outAdj = append(outAdj, targets...)
		outStart[v+1] = int64(len(outAdj))
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return &Graph{n: cfg.Nodes, outStart: outStart, outAdj: outAdj}, stats, nil
}

// bitset is a fixed-capacity membership set over node ids, the
// generator's per-node dedup scratch (one bit per node instead of a
// per-node map).
type bitset []uint64

func newBitset(n int) bitset        { return make(bitset, (n+63)/64) }
func (b bitset) test(i NodeID) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }
func (b bitset) set(i NodeID)       { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }
func (b bitset) clear(i NodeID)     { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

// MustGeneratePowerLaw is GeneratePowerLaw, panicking on error. For
// examples and benchmarks with known-good configs.
func MustGeneratePowerLaw(cfg PowerLawConfig) *Graph {
	g, err := GeneratePowerLaw(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Cycle returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0. Its
// pagerank is uniform, which makes it a useful analytic fixture.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(NodeID(v), NodeID((v+1)%n))
	}
	return b.Build()
}

// Complete returns the complete directed graph on n nodes (every
// ordered pair except self-loops). Uniform pagerank by symmetry.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for t := 0; t < n; t++ {
			if t != v {
				b.AddEdge(NodeID(v), NodeID(t))
			}
		}
	}
	return b.Build()
}

// Star returns a graph where nodes 1..n-1 all link to node 0 and node 0
// links back to all of them. Node 0's rank dominates.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(NodeID(v), 0)
		b.AddEdge(0, NodeID(v))
	}
	return b.Build()
}

// Random returns a uniform random digraph where each node has exactly
// outDeg distinct out-links.
func Random(n, outDeg int, seed uint64) *Graph {
	if outDeg >= n {
		panic("graph: Random outDeg must be < n")
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, t := range r.Sample(n-1, outDeg) {
			// Map [0,n-1) onto [0,n) \ {v}.
			if NodeID(t) >= NodeID(v) {
				t++
			}
			b.AddEdge(NodeID(v), NodeID(t))
		}
	}
	return b.Build()
}
