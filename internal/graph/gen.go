package graph

import (
	"fmt"

	"dpr/internal/rng"
)

// PowerLawConfig parameterizes the synthetic document-link graphs of
// the paper's section 4.1. Broder et al. measured the web's in-degree
// exponent as 2.1 and out-degree exponent as 2.4; the paper
// hypothesizes P2P document stores look the same and synthesizes
// graphs of 10k, 100k, 500k and 5000k nodes from that model.
type PowerLawConfig struct {
	Nodes       int     // number of documents
	OutExponent float64 // out-degree power-law exponent (paper: 2.4)
	InExponent  float64 // in-degree power-law exponent (paper: 2.1)
	MaxDegree   int     // degree support cap; 0 means min(Nodes-1, 1000)
	Seed        uint64  // generator seed; same seed, same graph
}

// DefaultPowerLawConfig returns the paper's parameters for n nodes.
func DefaultPowerLawConfig(n int, seed uint64) PowerLawConfig {
	return PowerLawConfig{Nodes: n, OutExponent: 2.4, InExponent: 2.1, Seed: seed}
}

// GeneratePowerLaw synthesizes a directed graph whose out-degrees
// follow a power law with exponent OutExponent and whose in-degrees
// follow (in expectation) a power law with exponent InExponent.
//
// Method: each node draws an exact out-degree from the out
// distribution and an in-attractiveness weight from the in
// distribution; link targets are then sampled proportionally to
// attractiveness via an alias table. Self-loops and duplicate targets
// are rejected, so out-degrees are exact up to saturation.
func GeneratePowerLaw(cfg PowerLawConfig) (*Graph, error) {
	n := cfg.Nodes
	if n < 2 {
		return nil, fmt.Errorf("graph: power-law generator needs >= 2 nodes, got %d", n)
	}
	if cfg.OutExponent <= 1 || cfg.InExponent <= 1 {
		return nil, fmt.Errorf("graph: power-law exponents must exceed 1 (got out=%g in=%g)",
			cfg.OutExponent, cfg.InExponent)
	}
	maxDeg := cfg.MaxDegree
	if maxDeg == 0 {
		maxDeg = n - 1
		if maxDeg > 1000 {
			maxDeg = 1000
		}
	}
	if maxDeg < 1 || maxDeg >= n {
		return nil, fmt.Errorf("graph: MaxDegree %d out of range [1,%d)", maxDeg, n)
	}

	r := rng.New(cfg.Seed)
	outDist := rng.NewPowerLaw(1, maxDeg, cfg.OutExponent)
	inDist := rng.NewPowerLaw(1, maxDeg, cfg.InExponent)

	// Draw attractiveness weights, then an alias table for target choice.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(inDist.Draw(r))
	}
	targets := rng.NewAlias(weights)

	outStart := make([]int64, n+1)
	degs := make([]int, n)
	var total int64
	for v := range degs {
		degs[v] = outDist.Draw(r)
		total += int64(degs[v])
	}
	outAdj := make([]NodeID, 0, total)
	seen := make(map[NodeID]struct{})
	for v := 0; v < n; v++ {
		clear(seen)
		want := degs[v]
		// Rejection sampling of distinct non-self targets. With degree
		// << n collisions are rare; cap attempts to avoid pathological
		// spins on tiny graphs.
		attempts := 0
		for len(seen) < want && attempts < 50*want+100 {
			attempts++
			t := NodeID(targets.Draw(r))
			if int(t) == v {
				continue
			}
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			outAdj = append(outAdj, t)
		}
		outStart[v+1] = int64(len(outAdj))
	}
	return &Graph{n: n, outStart: outStart, outAdj: outAdj}, nil
}

// MustGeneratePowerLaw is GeneratePowerLaw, panicking on error. For
// examples and benchmarks with known-good configs.
func MustGeneratePowerLaw(cfg PowerLawConfig) *Graph {
	g, err := GeneratePowerLaw(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Cycle returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0. Its
// pagerank is uniform, which makes it a useful analytic fixture.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(NodeID(v), NodeID((v+1)%n))
	}
	return b.Build()
}

// Complete returns the complete directed graph on n nodes (every
// ordered pair except self-loops). Uniform pagerank by symmetry.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for t := 0; t < n; t++ {
			if t != v {
				b.AddEdge(NodeID(v), NodeID(t))
			}
		}
	}
	return b.Build()
}

// Star returns a graph where nodes 1..n-1 all link to node 0 and node 0
// links back to all of them. Node 0's rank dominates.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(NodeID(v), 0)
		b.AddEdge(0, NodeID(v))
	}
	return b.Build()
}

// Random returns a uniform random digraph where each node has exactly
// outDeg distinct out-links.
func Random(n, outDeg int, seed uint64) *Graph {
	if outDeg >= n {
		panic("graph: Random outDeg must be < n")
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, t := range r.Sample(n-1, outDeg) {
			// Map [0,n-1) onto [0,n) \ {v}.
			if NodeID(t) >= NodeID(v) {
				t++
			}
			b.AddEdge(NodeID(v), NodeID(t))
		}
	}
	return b.Build()
}
