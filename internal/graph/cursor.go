package graph

// LinkCursor is a sequential read handle over a graph's out-links. A
// cursor is NOT safe for concurrent use; engines give each worker its
// own. The slice returned by OutLinks is only valid until the next
// OutLinks call on the same cursor (a decoding representation reuses
// its buffer between calls).
//
// For the plain in-memory Graph a cursor is the graph itself — slices
// alias stable storage and stay valid forever — but callers must code
// against the weaker contract so compressed representations can slot
// in unchanged.
type LinkCursor interface {
	OutLinks(v NodeID) []NodeID
}

// CursorLinker is a Linker that can mint per-worker read cursors.
// Representations whose OutLinks must decode (internal/csr) implement
// it so hot loops stream adjacency without a per-call allocation.
type CursorLinker interface {
	Linker
	NewCursor() LinkCursor
}

// NewCursor returns the graph itself: uncompressed adjacency needs no
// decode state, and the shared receiver is safe because OutLinks only
// reads immutable storage.
func (g *Graph) NewCursor() LinkCursor { return g }

var _ CursorLinker = (*Graph)(nil)

// linkerCursor adapts any Linker to the cursor interface for
// representations without decode state.
type linkerCursor struct{ Linker }

// CursorFor returns a read cursor for g: the representation's own
// cursor when it implements CursorLinker, otherwise a trivial adapter
// over OutLinks.
func CursorFor(g Linker) LinkCursor {
	if cl, ok := g.(CursorLinker); ok {
		return cl.NewCursor()
	}
	return linkerCursor{g}
}
