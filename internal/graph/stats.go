package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes a graph's degree structure.
type Stats struct {
	Nodes         int
	Edges         int64
	AvgOutDegree  float64
	MaxOutDegree  int
	MaxInDegree   int
	Dangling      int     // nodes with no out-links
	Sources       int     // nodes with no in-links
	OutExponent   float64 // fitted power-law exponent of the out-degree tail
	InExponent    float64 // fitted power-law exponent of the in-degree tail
	LargestInHub  NodeID  // node with the most in-links
	LargestOutHub NodeID  // node with the most out-links
}

// ComputeStats scans the graph (building the transpose) and returns its
// degree summary.
func ComputeStats(g *Graph) Stats {
	g.Transpose()
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if s.Nodes == 0 {
		return s
	}
	s.AvgOutDegree = float64(s.Edges) / float64(s.Nodes)
	outDegs := make([]int, s.Nodes)
	inDegs := make([]int, s.Nodes)
	for v := 0; v < s.Nodes; v++ {
		od := g.OutDegree(NodeID(v))
		id := g.InDegree(NodeID(v))
		outDegs[v], inDegs[v] = od, id
		if od == 0 {
			s.Dangling++
		}
		if id == 0 {
			s.Sources++
		}
		if od > s.MaxOutDegree {
			s.MaxOutDegree, s.LargestOutHub = od, NodeID(v)
		}
		if id > s.MaxInDegree {
			s.MaxInDegree, s.LargestInHub = id, NodeID(v)
		}
	}
	s.OutExponent = fitExponent(outDegs)
	s.InExponent = fitExponent(inDegs)
	return s
}

// fitExponent estimates the power-law exponent alpha of a degree
// sample using the discrete Hill / maximum-likelihood estimator
// alpha = 1 + n / sum(ln(x_i / (xmin - 0.5))) with xmin = 1.
// Zero degrees are excluded. Returns NaN when fewer than two positive
// degrees exist.
func fitExponent(degs []int) float64 {
	sum := 0.0
	n := 0
	for _, d := range degs {
		if d >= 1 {
			sum += math.Log(float64(d) / 0.5)
			n++
		}
	}
	if n < 2 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(n)/sum
}

// DegreeHistogram returns counts[k] = number of nodes with out-degree k
// when out is true, or in-degree k otherwise.
func DegreeHistogram(g *Graph, out bool) []int {
	g.Transpose()
	max := 0
	degs := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		var d int
		if out {
			d = g.OutDegree(NodeID(v))
		} else {
			d = g.InDegree(NodeID(v))
		}
		degs[v] = d
		if d > max {
			max = d
		}
	}
	h := make([]int, max+1)
	for _, d := range degs {
		h[d]++
	}
	return h
}

// ReachableFrom returns the number of nodes reachable from start
// (including start itself) following out-links.
func ReachableFrom(g *Graph, start NodeID) int {
	visited := make([]bool, g.NumNodes())
	stack := []NodeID{start}
	visited[start] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, t := range g.OutLinks(v) {
			if !visited[t] {
				visited[t] = true
				stack = append(stack, t)
			}
		}
	}
	return count
}

// TopKByInDegree returns the k nodes with the highest in-degree,
// descending; ties broken by node id ascending.
func TopKByInDegree(g *Graph, k int) []NodeID {
	g.Transpose()
	ids := make([]NodeID, g.NumNodes())
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.InDegree(ids[a]), g.InDegree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d avg_out=%.2f max_out=%d max_in=%d dangling=%d fitted(out=%.2f in=%.2f)",
		s.Nodes, s.Edges, s.AvgOutDegree, s.MaxOutDegree, s.MaxInDegree, s.Dangling,
		s.OutExponent, s.InExponent)
}
