package graph

// EdgeCounter is implemented by representations that track their edge
// count directly (the plain Graph and the compressed CSR both do).
type EdgeCounter interface {
	NumEdges() int64
}

// CountEdges returns the number of edges in any Linker: straight off
// the representation when it keeps a count, otherwise by summing
// out-degrees (O(N), no adjacency decode). Engine-agnostic consumers
// (the convergence race harness's work normalization, reports) use
// this instead of type-asserting concrete graph types.
func CountEdges(g Linker) int64 {
	if ec, ok := g.(EdgeCounter); ok {
		return ec.NumEdges()
	}
	var total int64
	for v := 0; v < g.NumNodes(); v++ {
		total += int64(g.OutDegree(NodeID(v)))
	}
	return total
}
