package graph

import (
	"testing"
	"testing/quick"

	"dpr/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if got := g.OutLinks(0); len(got) != 2 {
		t.Fatalf("OutLinks(0) = %v", got)
	}
	if g.OutDegree(2) != 0 {
		t.Fatalf("OutDegree(2) = %d", g.OutDegree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDropsDuplicatesAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1) // self-loop, ignored
	b.AddEdge(2, 0)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
	if g.OutDegree(1) != 0 {
		t.Fatal("self-loop survived")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	g1 := b.Build()
	g2 := b.Build() // edge list reset, so empty
	if g1.NumEdges() != 1 || g2.NumEdges() != 0 {
		t.Fatalf("reuse broken: %d, %d", g1.NumEdges(), g2.NumEdges())
	}
}

func TestTranspose(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1, 2}, {2}, {0}})
	if g.HasTranspose() {
		t.Fatal("transpose built eagerly")
	}
	if d := g.InDegree(2); d != 2 {
		t.Fatalf("InDegree(2) = %d, want 2", d)
	}
	if !g.HasTranspose() {
		t.Fatal("transpose not cached")
	}
	in := g.InLinks(2)
	seen := map[NodeID]bool{}
	for _, v := range in {
		seen[v] = true
	}
	if !seen[0] || !seen[1] || len(in) != 2 {
		t.Fatalf("InLinks(2) = %v", in)
	}
}

func TestTransposePreservesEdgeCount(t *testing.T) {
	g := Random(200, 5, 1)
	g.Transpose()
	var inTotal int64
	for v := 0; v < g.NumNodes(); v++ {
		inTotal += int64(g.InDegree(NodeID(v)))
	}
	if inTotal != g.NumEdges() {
		t.Fatalf("in-degree sum %d != edges %d", inTotal, g.NumEdges())
	}
}

// Property: for random adjacency lists, every forward edge appears in
// the transpose and vice versa.
func TestTransposeRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		b := NewBuilder(n)
		edges := r.Intn(4 * n)
		for i := 0; i < edges; i++ {
			b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
		}
		g := b.Build()
		g.Transpose()
		// forward -> backward
		for v := 0; v < n; v++ {
			for _, tgt := range g.OutLinks(NodeID(v)) {
				found := false
				for _, src := range g.InLinks(tgt) {
					if src == NodeID(v) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		// edge counts agree
		var inTotal int64
		for v := 0; v < n; v++ {
			inTotal += int64(g.InDegree(NodeID(v)))
		}
		return inTotal == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {0}})
	g.outAdj[0] = 99 // out of range
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range target")
	}
	g2 := FromAdjacency([][]NodeID{{1}, {0}})
	g2.outAdj[0] = 0 // self-loop at node 0
	if err := g2.Validate(); err == nil {
		t.Fatal("Validate accepted self-loop")
	}
}

func TestFixtureGraphs(t *testing.T) {
	c := Cycle(5)
	if c.NumEdges() != 5 {
		t.Fatalf("Cycle(5) edges = %d", c.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if c.OutDegree(NodeID(v)) != 1 {
			t.Fatalf("cycle node %d out-degree != 1", v)
		}
	}
	k := Complete(4)
	if k.NumEdges() != 12 {
		t.Fatalf("Complete(4) edges = %d", k.NumEdges())
	}
	s := Star(6)
	if s.OutDegree(0) != 5 || s.InDegree(0) != 5 {
		t.Fatalf("Star hub degrees: out=%d in=%d", s.OutDegree(0), s.InDegree(0))
	}
	r := Random(50, 3, 7)
	for v := 0; v < 50; v++ {
		if r.OutDegree(NodeID(v)) != 3 {
			t.Fatalf("Random node %d out-degree = %d, want 3", v, r.OutDegree(NodeID(v)))
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReachableFrom(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {2}, {}, {4}, {}})
	if got := ReachableFrom(g, 0); got != 3 {
		t.Fatalf("ReachableFrom(0) = %d, want 3", got)
	}
	if got := ReachableFrom(g, 3); got != 2 {
		t.Fatalf("ReachableFrom(3) = %d, want 2", got)
	}
	if got := ReachableFrom(Cycle(7), 0); got != 7 {
		t.Fatalf("cycle reach = %d", got)
	}
}

func TestTopKByInDegree(t *testing.T) {
	g := Star(10)
	top := TopKByInDegree(g, 3)
	if top[0] != 0 {
		t.Fatalf("hub not first: %v", top)
	}
	if len(top) != 3 {
		t.Fatalf("TopK length %d", len(top))
	}
	all := TopKByInDegree(g, 100)
	if len(all) != 10 {
		t.Fatalf("TopK clamps to n: %d", len(all))
	}
}
