package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
	"strconv"
	"strings"
)

// Binary format: magic "DPRG", version u32, nodes u64, edges u64,
// then outStart (n+1 x u64) and outAdj (m x u32), little endian.
const (
	binaryMagic   = "DPRG"
	binaryVersion = 1
)

// WriteBinary serializes the graph's forward adjacency to w.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{binaryVersion, uint64(g.n), uint64(len(g.outAdj))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range g.outStart {
		if err := binary.Write(bw, binary.LittleEndian, uint64(v)); err != nil {
			return err
		}
	}
	for _, v := range g.outAdj {
		if err := binary.Write(bw, binary.LittleEndian, uint32(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, n, m uint64
	for _, p := range []*uint64{&version, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	const maxNodes = 1 << 31
	if n > maxNodes || m > 64*maxNodes {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	g := &Graph{n: int(n)}
	g.outStart = make([]int64, n+1)
	for i := range g.outStart {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		g.outStart[i] = int64(v)
	}
	g.outAdj = make([]NodeID, m)
	buf := make([]byte, 4)
	for i := range g.outAdj {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: reading adjacency: %w", err)
		}
		g.outAdj[i] = NodeID(binary.LittleEndian.Uint32(buf))
	}
	// Files written before the sorted-adjacency invariant may carry
	// draw-order lists; normalize so every loaded graph upholds it.
	for v := 0; v < g.n; v++ {
		slices.Sort(g.outAdj[g.outStart[v]:g.outStart[v+1]])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteEdgeList writes the graph as "src dst" text lines preceded by a
// "# nodes N" header, the interchange format of cmd/dprgen.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# nodes %d\n", g.n); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		for _, t := range g.OutLinks(NodeID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format written by WriteEdgeList.
// Lines starting with '#' other than the header are comments.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if b == nil {
				var n int
				if _, err := fmt.Sscanf(text, "# nodes %d", &n); err == nil {
					b = NewBuilder(n)
				}
			}
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graph: line %d: edge before '# nodes N' header", line)
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", line, text)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %w", line, err)
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %w", line, err)
		}
		b.AddEdge(NodeID(src), NodeID(dst))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing '# nodes N' header")
	}
	return b.Build(), nil
}

// SaveBinary writes the graph to path.
func (g *Graph) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from path.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
