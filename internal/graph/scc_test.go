package graph

import (
	"testing"
	"testing/quick"

	"dpr/internal/rng"
)

func TestSCCCycleIsOneComponent(t *testing.T) {
	scc := StronglyConnectedComponents(Cycle(10))
	if scc.NumComponents != 1 {
		t.Fatalf("cycle has %d components", scc.NumComponents)
	}
	if scc.Sizes[0] != 10 {
		t.Fatalf("component size %d", scc.Sizes[0])
	}
}

func TestSCCDagIsAllSingletons(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 with a skip edge.
	g := FromAdjacency([][]NodeID{{1, 2}, {2}, {3}, {}})
	scc := StronglyConnectedComponents(g)
	if scc.NumComponents != 4 {
		t.Fatalf("DAG has %d components, want 4", scc.NumComponents)
	}
	for id, s := range scc.Sizes {
		if s != 1 {
			t.Fatalf("component %d size %d", id, s)
		}
	}
	// Distinct components for all nodes.
	seen := map[int32]bool{}
	for _, c := range scc.Component {
		if seen[c] {
			t.Fatal("two DAG nodes share a component")
		}
		seen[c] = true
	}
}

func TestSCCTwoCyclesBridged(t *testing.T) {
	// Cycle {0,1,2} -> bridge -> cycle {3,4}.
	g := FromAdjacency([][]NodeID{
		{1}, {2}, {0, 3}, {4}, {3},
	})
	scc := StronglyConnectedComponents(g)
	if scc.NumComponents != 2 {
		t.Fatalf("%d components, want 2", scc.NumComponents)
	}
	if scc.Component[0] != scc.Component[1] || scc.Component[1] != scc.Component[2] {
		t.Fatal("first cycle split")
	}
	if scc.Component[3] != scc.Component[4] {
		t.Fatal("second cycle split")
	}
	if scc.Component[0] == scc.Component[3] {
		t.Fatal("cycles merged")
	}
}

// Property: component ids partition the nodes, sizes sum to n, and
// mutually-reachable pairs share a component.
func TestSCCPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(60)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
		}
		g := b.Build()
		scc := StronglyConnectedComponents(g)
		total := int32(0)
		for _, s := range scc.Sizes {
			total += s
		}
		if int(total) != n {
			return false
		}
		for _, c := range scc.Component {
			if c < 0 || int(c) >= scc.NumComponents {
				return false
			}
		}
		// Reachability oracle: same component iff mutually reachable.
		reach := func(from, to NodeID) bool {
			seen := make([]bool, n)
			stack := []NodeID{from}
			seen[from] = true
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if v == to {
					return true
				}
				for _, t2 := range g.OutLinks(v) {
					if !seen[t2] {
						seen[t2] = true
						stack = append(stack, t2)
					}
				}
			}
			return false
		}
		// Spot-check a handful of pairs.
		for trial := 0; trial < 10; trial++ {
			a := NodeID(r.Intn(n))
			bb := NodeID(r.Intn(n))
			same := scc.Component[a] == scc.Component[bb]
			mutual := reach(a, bb) && reach(bb, a)
			if same != mutual {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBowTieHandBuilt(t *testing.T) {
	// IN = {0}, CORE = {1,2,3}, OUT = {4}, OTHER = {5}.
	g := FromAdjacency([][]NodeID{
		{1},    // 0 -> core
		{2},    // core cycle
		{3},    //
		{1, 4}, // core -> out
		{},     // out
		{},     // disconnected
	})
	bt := BowTieDecomposition(g)
	if bt.Core != 3 || bt.In != 1 || bt.Out != 1 || bt.Other != 1 {
		t.Fatalf("bow tie: %+v", bt)
	}
}

func TestBowTieCycleAllCore(t *testing.T) {
	bt := BowTieDecomposition(Cycle(8))
	if bt.Core != 8 || bt.In != 0 || bt.Out != 0 || bt.Other != 0 {
		t.Fatalf("cycle bow tie: %+v", bt)
	}
}

func TestBowTieEmptyGraph(t *testing.T) {
	bt := BowTieDecomposition(NewBuilder(0).Build())
	if bt.Core != 0 {
		t.Fatalf("empty bow tie: %+v", bt)
	}
}

func TestBowTiePartitionsPowerLawGraph(t *testing.T) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(5000, 81))
	bt := BowTieDecomposition(g)
	if bt.Core+bt.In+bt.Out+bt.Other != g.NumNodes() {
		t.Fatalf("bow tie does not partition: %+v", bt)
	}
	// Power-law digraphs grow a giant core with nontrivial IN/OUT.
	if bt.Core < g.NumNodes()/100 {
		t.Fatalf("no giant core: %+v", bt)
	}
}

func BenchmarkSCC10k(b *testing.B) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(10000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StronglyConnectedComponents(g)
	}
}
