// Package graph provides the directed document-link graphs underlying
// the distributed pagerank computation: a compact CSR representation, a
// mutable builder, the power-law generator matching the paper's section
// 4.1 methodology (Broder et al. web-graph model), degree statistics
// and (de)serialization.
//
// Nodes are dense int32 identifiers 0..N-1; each node represents one
// document in the P2P system. Edges are document links (out-links).
package graph

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// NodeID identifies a document in a Graph.
type NodeID = int32

// Graph is an immutable directed graph in compressed sparse row form.
// The forward (out-link) adjacency is always present; the transposed
// (in-link) adjacency is built on demand by Transpose and cached.
//
// Every constructor in this package produces per-node target lists in
// ascending id order. The sorted-adjacency invariant is what lets the
// compressed representation (internal/csr) delta-gap encode the same
// lists and still replay them in the identical order, keeping ranks
// bit-identical across representations.
type Graph struct {
	n        int
	outStart []int64 // length n+1; outAdj[outStart[v]:outStart[v+1]] are v's out-links
	outAdj   []NodeID
	inStart  []int64 // nil until Transpose is called
	inAdj    []NodeID

	transposeOnce sync.Once
	transposed    atomic.Bool
}

// NumNodes returns the number of documents.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of links.
func (g *Graph) NumEdges() int64 { return int64(len(g.outAdj)) }

// OutDegree returns the number of out-links of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// OutLinks returns the out-links of v in ascending id order. The
// returned slice aliases the graph's internal storage and must not be
// modified.
func (g *Graph) OutLinks(v NodeID) []NodeID {
	return g.outAdj[g.outStart[v]:g.outStart[v+1]]
}

// HasTranspose reports whether the in-link adjacency has been built.
// Safe to call concurrently with Transpose.
func (g *Graph) HasTranspose() bool { return g.transposed.Load() }

// InDegree returns the number of in-links of v. It builds the transpose
// on first use.
func (g *Graph) InDegree(v NodeID) int {
	g.Transpose()
	return int(g.inStart[v+1] - g.inStart[v])
}

// InLinks returns the in-links of v (the documents linking to v),
// building the transpose on first use. The returned slice aliases
// internal storage.
func (g *Graph) InLinks(v NodeID) []NodeID {
	g.Transpose()
	return g.inAdj[g.inStart[v]:g.inStart[v+1]]
}

// Transpose materializes the in-link adjacency. It is idempotent,
// costs O(N+E) the first time, and is safe for concurrent first use:
// racing callers all block until one of them has built the adjacency.
func (g *Graph) Transpose() {
	g.transposeOnce.Do(func() {
		g.buildTranspose()
		g.transposed.Store(true)
	})
}

func (g *Graph) buildTranspose() {
	inStart := make([]int64, g.n+1)
	for _, t := range g.outAdj {
		inStart[t+1]++
	}
	for i := 0; i < g.n; i++ {
		inStart[i+1] += inStart[i]
	}
	inAdj := make([]NodeID, len(g.outAdj))
	cursor := make([]int64, g.n)
	copy(cursor, inStart[:g.n])
	for v := 0; v < g.n; v++ {
		for _, t := range g.outAdj[g.outStart[v]:g.outStart[v+1]] {
			inAdj[cursor[t]] = NodeID(v)
			cursor[t]++
		}
	}
	g.inStart, g.inAdj = inStart, inAdj
}

// Validate checks structural invariants: monotone offsets, in-range
// targets, and no self-loops. It returns a descriptive error for the
// first violation found.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("graph: negative node count %d", g.n)
	}
	if len(g.outStart) != g.n+1 {
		return fmt.Errorf("graph: outStart length %d, want %d", len(g.outStart), g.n+1)
	}
	if g.outStart[0] != 0 {
		return fmt.Errorf("graph: outStart[0] = %d, want 0", g.outStart[0])
	}
	if g.outStart[g.n] != int64(len(g.outAdj)) {
		return fmt.Errorf("graph: outStart[n] = %d, want %d", g.outStart[g.n], len(g.outAdj))
	}
	for v := 0; v < g.n; v++ {
		if g.outStart[v] > g.outStart[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
		for _, t := range g.outAdj[g.outStart[v]:g.outStart[v+1]] {
			if t < 0 || int(t) >= g.n {
				return fmt.Errorf("graph: node %d links to out-of-range %d", v, t)
			}
			if int(t) == v {
				return fmt.Errorf("graph: node %d has a self-loop", v)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are dropped at Build time.
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ from, to NodeID }

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: NewBuilder with negative n")
	}
	return &Builder{n: n}
}

// AddEdge records a link from -> to. It panics on out-of-range nodes;
// self-loops are silently ignored (documents do not link to themselves
// for ranking purposes).
func (b *Builder) AddEdge(from, to NodeID) {
	if from < 0 || int(from) >= b.n || to < 0 || int(to) >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", from, to, b.n))
	}
	if from == to {
		return
	}
	b.edges = append(b.edges, edge{from, to})
}

// NumPendingEdges reports how many edges have been added so far
// (before dedup).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build finalizes the graph. The builder can be reused afterwards; its
// edge list is reset. Each node's targets come out sorted ascending
// (the package-wide adjacency invariant); duplicates are dropped by
// sorting each node's range and skipping equal neighbours, so building
// never allocates per-node dedup maps.
func (b *Builder) Build() *Graph {
	// Counting sort by source, then sort-dedup targets per source.
	counts := make([]int64, b.n+1)
	for _, e := range b.edges {
		counts[e.from+1]++
	}
	for i := 0; i < b.n; i++ {
		counts[i+1] += counts[i]
	}
	sorted := make([]NodeID, len(b.edges))
	cursor := make([]int64, b.n)
	copy(cursor, counts[:b.n])
	for _, e := range b.edges {
		sorted[cursor[e.from]] = e.to
		cursor[e.from]++
	}
	outStart := make([]int64, b.n+1)
	outAdj := make([]NodeID, 0, len(sorted))
	for v := 0; v < b.n; v++ {
		lo, hi := counts[v], counts[v+1]
		targets := sorted[lo:hi]
		slices.Sort(targets)
		prev := NodeID(-1)
		for _, t := range targets {
			if t == prev {
				continue
			}
			prev = t
			outAdj = append(outAdj, t)
		}
		outStart[v+1] = int64(len(outAdj))
	}
	b.edges = b.edges[:0]
	return &Graph{n: b.n, outStart: outStart, outAdj: outAdj}
}

// FromAdjacency builds a graph directly from an out-link adjacency
// list, for tests and examples. Self-loops and duplicates are dropped.
func FromAdjacency(adj [][]NodeID) *Graph {
	b := NewBuilder(len(adj))
	for v, links := range adj {
		for _, t := range links {
			b.AddEdge(NodeID(v), t)
		}
	}
	return b.Build()
}
