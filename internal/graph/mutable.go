package graph

import "fmt"

// Linker is the read interface engines need from a document graph:
// out-link structure only (the distributed algorithm never needs
// in-links — mass arrives as messages).
type Linker interface {
	NumNodes() int
	OutDegree(v NodeID) int
	OutLinks(v NodeID) []NodeID
}

var _ Linker = (*Graph)(nil)
var _ Linker = (*Mutable)(nil)

// Mutable is a document graph whose topology can change while a
// computation runs: documents appear (section 3.1 inserts — and unlike
// the ghost-insert model, they can later *receive* links), links are
// added when documents are edited, and links disappear. Reads are the
// Linker interface; mutations return enough information for the engine
// to patch the in-flight rank mass.
//
// Not safe for concurrent mutation; the PassEngine mutates only
// between passes.
type Mutable struct {
	adj [][]NodeID
}

// NewMutable copies a static graph into mutable form. A nil graph
// yields an empty mutable graph.
func NewMutable(g *Graph) *Mutable {
	m := &Mutable{}
	if g == nil {
		return m
	}
	m.adj = make([][]NodeID, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		links := g.OutLinks(NodeID(v))
		m.adj[v] = append([]NodeID(nil), links...)
	}
	return m
}

// NumNodes returns the current document count.
func (m *Mutable) NumNodes() int { return len(m.adj) }

// OutDegree returns v's current out-link count.
func (m *Mutable) OutDegree(v NodeID) int { return len(m.adj[v]) }

// OutLinks returns v's out-links. Shared slice; do not modify.
func (m *Mutable) OutLinks(v NodeID) []NodeID { return m.adj[v] }

// AddNode appends a new document with the given out-links and returns
// its id. Out-links must reference existing documents; self-links are
// rejected.
func (m *Mutable) AddNode(outlinks []NodeID) (NodeID, error) {
	id := NodeID(len(m.adj))
	seen := make(map[NodeID]struct{}, len(outlinks))
	links := make([]NodeID, 0, len(outlinks))
	for _, t := range outlinks {
		if t < 0 || int(t) >= len(m.adj) {
			return 0, fmt.Errorf("graph: AddNode out-link %d outside graph", t)
		}
		if t == id {
			return 0, fmt.Errorf("graph: AddNode self-link")
		}
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		links = append(links, t)
	}
	m.adj = append(m.adj, links)
	return id, nil
}

// AddLink inserts the link from -> to. It reports whether the link was
// new (false if it already existed).
func (m *Mutable) AddLink(from, to NodeID) (bool, error) {
	if err := m.check(from); err != nil {
		return false, err
	}
	if err := m.check(to); err != nil {
		return false, err
	}
	if from == to {
		return false, fmt.Errorf("graph: self-link %d", from)
	}
	for _, t := range m.adj[from] {
		if t == to {
			return false, nil
		}
	}
	m.adj[from] = append(m.adj[from], to)
	return true, nil
}

// RemoveLink deletes the link from -> to. It reports whether the link
// existed.
func (m *Mutable) RemoveLink(from, to NodeID) (bool, error) {
	if err := m.check(from); err != nil {
		return false, err
	}
	links := m.adj[from]
	for i, t := range links {
		if t == to {
			m.adj[from] = append(links[:i], links[i+1:]...)
			return true, nil
		}
	}
	return false, nil
}

func (m *Mutable) check(v NodeID) error {
	if v < 0 || int(v) >= len(m.adj) {
		return fmt.Errorf("graph: node %d outside graph", v)
	}
	return nil
}

// ClearOutLinks removes every out-link of v (used when a document is
// deleted: its row and column leave the matrix).
func (m *Mutable) ClearOutLinks(v NodeID) error {
	if err := m.check(v); err != nil {
		return err
	}
	m.adj[v] = nil
	return nil
}

// Snapshot freezes the current topology into an immutable Graph
// (useful for running the centralized solver against the same
// structure).
func (m *Mutable) Snapshot() *Graph {
	b := NewBuilder(len(m.adj))
	for v, links := range m.adj {
		for _, t := range links {
			b.AddEdge(NodeID(v), t)
		}
	}
	return b.Build()
}
