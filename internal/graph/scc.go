package graph

// Strongly-connected-component machinery and the Broder et al.
// "bow-tie" decomposition. The paper adopts Broder's degree
// measurements for its synthetic graphs; Broder's same crawl
// established the web's bow-tie macro-structure (a giant core SCC with
// an IN set flowing into it and an OUT set flowing from it), which is
// also what makes pagerank mass concentrate: documents in OUT collect
// mass from the core. These tools let users inspect that structure on
// generated or loaded graphs.

// SCCResult labels every node with a component id (0..NumComponents-1)
// in reverse topological order of the condensation (a component's id
// is smaller than those of components it can reach... specifically,
// Tarjan emits components in reverse topological order; we preserve
// that emission order as ids).
type SCCResult struct {
	Component     []int32 // node -> component id
	NumComponents int
	Sizes         []int32 // component id -> node count
}

// StronglyConnectedComponents runs an iterative Tarjan over the graph
// (explicit stack, safe for millions of nodes).
func StronglyConnectedComponents(g *Graph) *SCCResult {
	n := g.NumNodes()
	res := &SCCResult{Component: make([]int32, n)}
	for i := range res.Component {
		res.Component[i] = -1
	}
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID // Tarjan's component stack
	var nextIndex int32

	// Explicit DFS frames: node + position within its out-links.
	type frame struct {
		v   NodeID
		pos int
	}
	var dfs []frame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{NodeID(root), 0})
		index[root] = nextIndex
		lowlink[root] = nextIndex
		nextIndex++
		stack = append(stack, NodeID(root))
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			links := g.OutLinks(f.v)
			advanced := false
			for f.pos < len(links) {
				w := links[f.pos]
				f.pos++
				if index[w] == -1 {
					index[w] = nextIndex
					lowlink[w] = nextIndex
					nextIndex++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// Pop one component.
				id := int32(res.NumComponents)
				size := int32(0)
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					res.Component[w] = id
					size++
					if w == v {
						break
					}
				}
				res.Sizes = append(res.Sizes, size)
				res.NumComponents++
			}
		}
	}
	return res
}

// BowTie is the Broder decomposition relative to the largest SCC.
type BowTie struct {
	CoreComponent int32 // id of the largest SCC
	Core          int   // nodes in the largest SCC
	In            int   // nodes that reach the core but are outside it
	Out           int   // nodes reachable from the core, outside it
	Other         int   // tendrils, tubes and disconnected pieces
}

// BowTieDecomposition classifies every node against the graph's
// largest strongly connected component.
func BowTieDecomposition(g *Graph) BowTie {
	scc := StronglyConnectedComponents(g)
	bt := BowTie{}
	if scc.NumComponents == 0 {
		return bt
	}
	for id, size := range scc.Sizes {
		if int(size) > bt.Core {
			bt.Core = int(size)
			bt.CoreComponent = int32(id)
		}
	}
	n := g.NumNodes()
	inCore := func(v NodeID) bool { return scc.Component[v] == bt.CoreComponent }

	// OUT: forward BFS from any core node.
	reachable := make([]bool, n)
	var queue []NodeID
	for v := 0; v < n; v++ {
		if inCore(NodeID(v)) {
			reachable[v] = true
			queue = append(queue, NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, t := range g.OutLinks(v) {
			if !reachable[t] {
				reachable[t] = true
				queue = append(queue, t)
			}
		}
	}
	// IN: backward BFS from the core over the transpose.
	g.Transpose()
	reaching := make([]bool, n)
	queue = queue[:0]
	for v := 0; v < n; v++ {
		if inCore(NodeID(v)) {
			reaching[v] = true
			queue = append(queue, NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, s := range g.InLinks(v) {
			if !reaching[s] {
				reaching[s] = true
				queue = append(queue, s)
			}
		}
	}
	for v := 0; v < n; v++ {
		id := NodeID(v)
		switch {
		case inCore(id):
			// counted in Core
		case reaching[v]:
			bt.In++
		case reachable[v]:
			bt.Out++
		default:
			bt.Other++
		}
	}
	return bt
}
