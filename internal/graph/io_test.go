package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		la, lb := a.OutLinks(NodeID(v)), b.OutLinks(NodeID(v))
		if len(la) != len(lb) {
			return false
		}
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(500, 3))
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Fatal("empty graph round trip mismatch")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	for _, input := range []string{"", "XXXX", "DPRG", "DPRGgarbage"} {
		if _, err := ReadBinary(strings.NewReader(input)); err == nil {
			t.Errorf("ReadBinary accepted %q", input)
		}
	}
}

func TestReadBinaryRejectsTruncated(t *testing.T) {
	g := Cycle(10)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) - 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("accepted truncation at %d", cut)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(200, 4))
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("edge list round trip mismatch")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 1\n",                 // edge before header
		"# nodes 2\n0\n",        // malformed edge
		"# nodes 2\nx 1\n",      // bad source
		"# nodes 2\n0 y\n",      // bad target
		"",                      // no header
		"# some comment only\n", // comment but no header
	}
	for i, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted %q", i, in)
		}
	}
}

func TestReadEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	in := "# nodes 3\n\n# a comment\n0 1\n  \n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(300, 9))
	path := filepath.Join(t.TempDir(), "g.dprg")
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadBinary(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}
