package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeneratePowerLawBasic(t *testing.T) {
	g, err := GeneratePowerLaw(DefaultPowerLawConfig(5000, 42))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 5000 {
		t.Fatalf("suspiciously few edges: %d", g.NumEdges())
	}
}

func TestGeneratePowerLawDeterministic(t *testing.T) {
	cfg := DefaultPowerLawConfig(2000, 7)
	a := MustGeneratePowerLaw(cfg)
	b := MustGeneratePowerLaw(cfg)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		la, lb := a.OutLinks(NodeID(v)), b.OutLinks(NodeID(v))
		if len(la) != len(lb) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("node %d link %d differs", v, i)
			}
		}
	}
	c := MustGeneratePowerLaw(DefaultPowerLawConfig(2000, 8))
	if c.NumEdges() == a.NumEdges() {
		// Equal counts are possible but all-equal adjacency is not.
		same := true
		for v := 0; v < a.NumNodes() && same; v++ {
			la, lc := a.OutLinks(NodeID(v)), c.OutLinks(NodeID(v))
			if len(la) != len(lc) {
				same = false
				break
			}
			for i := range la {
				if la[i] != lc[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGeneratePowerLawExponents(t *testing.T) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(30000, 13))
	s := ComputeStats(g)
	// The ML fit on bounded-support samples is biased, so accept a
	// generous band around the configured exponents (out 2.4, in 2.1).
	if s.OutExponent < 1.8 || s.OutExponent > 3.2 {
		t.Fatalf("fitted out-exponent %.2f implausible for target 2.4", s.OutExponent)
	}
	if math.IsNaN(s.InExponent) {
		t.Fatal("in-exponent fit failed")
	}
	// Out-degree drawn exactly: no dangling nodes when support starts at 1.
	if s.Dangling != 0 {
		t.Fatalf("%d dangling nodes from exact out-degree draws", s.Dangling)
	}
	// Heavier tail in-degree: the max in-degree should comfortably
	// exceed the max out-degree cap consequences aside, the in side is
	// preferential so hubs form.
	if s.MaxInDegree < 20 {
		t.Fatalf("no in-degree hubs formed: max=%d", s.MaxInDegree)
	}
}

func TestGeneratePowerLawErrors(t *testing.T) {
	cases := []PowerLawConfig{
		{Nodes: 1, OutExponent: 2.4, InExponent: 2.1},
		{Nodes: 100, OutExponent: 0.5, InExponent: 2.1},
		{Nodes: 100, OutExponent: 2.4, InExponent: 1.0},
		{Nodes: 100, OutExponent: 2.4, InExponent: 2.1, MaxDegree: 100},
	}
	for i, cfg := range cases {
		if _, err := GeneratePowerLaw(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStatsOnFixtures(t *testing.T) {
	s := ComputeStats(Cycle(10))
	if s.Nodes != 10 || s.Edges != 10 || s.Dangling != 0 || s.Sources != 0 {
		t.Fatalf("cycle stats: %+v", s)
	}
	if s.AvgOutDegree != 1 {
		t.Fatalf("cycle avg out = %v", s.AvgOutDegree)
	}
	star := ComputeStats(Star(11))
	if star.MaxInDegree != 10 || star.LargestInHub != 0 {
		t.Fatalf("star stats: %+v", star)
	}
	if star.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	s := ComputeStats(NewBuilder(0).Build())
	if s.Nodes != 0 || s.Edges != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1, 2}, {2}, {}})
	h := DegreeHistogram(g, true)
	// out-degrees: 2, 1, 0
	if h[0] != 1 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("out histogram: %v", h)
	}
	hin := DegreeHistogram(g, false)
	// in-degrees: 0, 1, 2
	if hin[0] != 1 || hin[1] != 1 || hin[2] != 1 {
		t.Fatalf("in histogram: %v", hin)
	}
}

func BenchmarkGeneratePowerLaw10k(b *testing.B) {
	cfg := DefaultPowerLawConfig(10000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePowerLaw(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranspose10k(b *testing.B) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(10000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gc := &Graph{n: g.n, outStart: g.outStart, outAdj: g.outAdj}
		gc.Transpose()
	}
}

// Property: the generator always produces a structurally valid graph
// with exact out-degrees in range, for any seed and plausible size.
func TestGeneratorValidityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 50 + int(seed%500)
		g, err := GeneratePowerLaw(DefaultPowerLawConfig(n, seed))
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		maxDeg := n - 1
		if maxDeg > 1000 {
			maxDeg = 1000
		}
		for v := 0; v < n; v++ {
			d := g.OutDegree(NodeID(v))
			if d < 0 || d > maxDeg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
