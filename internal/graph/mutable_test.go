package graph

import (
	"testing"
	"testing/quick"

	"dpr/internal/rng"
)

func TestNewMutableCopies(t *testing.T) {
	g := MustGeneratePowerLaw(DefaultPowerLawConfig(300, 141))
	m := NewMutable(g)
	if m.NumNodes() != g.NumNodes() {
		t.Fatalf("nodes: %d vs %d", m.NumNodes(), g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		a, b := g.OutLinks(NodeID(v)), m.OutLinks(NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d link %d differs", v, i)
			}
		}
	}
	// Mutating the copy leaves the original untouched.
	if _, err := m.AddLink(0, NodeID(g.NumNodes()-1)); err != nil {
		t.Fatal(err)
	}
	if NewMutable(nil).NumNodes() != 0 {
		t.Fatal("nil graph should yield empty mutable")
	}
}

func TestMutableAddNode(t *testing.T) {
	m := NewMutable(Cycle(3))
	id, err := m.AddNode([]NodeID{0, 2, 0}) // duplicate deduped
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || m.NumNodes() != 4 {
		t.Fatalf("id=%d nodes=%d", id, m.NumNodes())
	}
	if m.OutDegree(3) != 2 {
		t.Fatalf("degree = %d", m.OutDegree(3))
	}
	if _, err := m.AddNode([]NodeID{99}); err == nil {
		t.Fatal("accepted out-of-range link")
	}
	if _, err := m.AddNode([]NodeID{4}); err == nil {
		t.Fatal("accepted self-link (new node's own id)")
	}
}

func TestMutableAddRemoveLink(t *testing.T) {
	m := NewMutable(Cycle(4))
	added, err := m.AddLink(0, 2)
	if err != nil || !added {
		t.Fatalf("AddLink: %v %v", added, err)
	}
	if again, _ := m.AddLink(0, 2); again {
		t.Fatal("duplicate link reported as new")
	}
	if m.OutDegree(0) != 2 {
		t.Fatalf("degree = %d", m.OutDegree(0))
	}
	removed, err := m.RemoveLink(0, 2)
	if err != nil || !removed {
		t.Fatalf("RemoveLink: %v %v", removed, err)
	}
	if again, _ := m.RemoveLink(0, 2); again {
		t.Fatal("double remove reported as existing")
	}
	if _, err := m.AddLink(0, 0); err == nil {
		t.Fatal("accepted self-link")
	}
	if _, err := m.AddLink(99, 0); err == nil {
		t.Fatal("accepted bad source")
	}
	if _, err := m.RemoveLink(99, 0); err == nil {
		t.Fatal("accepted bad source on remove")
	}
}

func TestMutableSnapshot(t *testing.T) {
	m := NewMutable(Cycle(3))
	if _, err := m.AddNode([]NodeID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLink(1, 0); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.NumNodes() != 4 {
		t.Fatalf("snapshot nodes = %d", snap.NumNodes())
	}
	if snap.NumEdges() != 5 {
		t.Fatalf("snapshot edges = %d", snap.NumEdges())
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: a Mutable built by replaying random operations always
// matches its own Snapshot structurally.
func TestMutableSnapshotProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewMutable(Cycle(3))
		for op := 0; op < 40; op++ {
			n := m.NumNodes()
			switch r.Intn(3) {
			case 0:
				links := []NodeID{NodeID(r.Intn(n))}
				if _, err := m.AddNode(links); err != nil {
					return false
				}
			case 1:
				from, to := NodeID(r.Intn(n)), NodeID(r.Intn(n))
				if from != to {
					if _, err := m.AddLink(from, to); err != nil {
						return false
					}
				}
			case 2:
				from := NodeID(r.Intn(n))
				if m.OutDegree(from) > 0 {
					to := m.OutLinks(from)[r.Intn(m.OutDegree(from))]
					if _, err := m.RemoveLink(from, to); err != nil {
						return false
					}
				}
			}
		}
		snap := m.Snapshot()
		if snap.Validate() != nil || snap.NumNodes() != m.NumNodes() {
			return false
		}
		for v := 0; v < m.NumNodes(); v++ {
			if snap.OutDegree(NodeID(v)) != m.OutDegree(NodeID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
