// Package race is the seeded convergence race harness: every
// registered engine (or a chosen subset) runs on the same generated
// graph, peer placement and seed, across one or more graph substrates
// (in-memory adjacency, compressed CSR, mmap CSR), and the harness
// records each engine's trajectory toward a shared accuracy target —
// error versus a tightly converged centralized reference, measured
// after every step. The report is machine-readable (it serializes to
// results/BENCH_engines.json via dprbench -race-engines) and is the
// evidence base for cross-engine claims: who reaches the target in
// the fewest equivalent passes, at what message cost, in how much
// wall-clock.
//
// Fairness rules: raw steps are not comparable (a pass, a relaxation
// slice, a diffusion sweep and a walk round are different amounts of
// work), so the ranking metric is equivalent passes — cumulative
// document visits divided by graph size. All engines see the same
// placement (seed^0xa5a5, the experiments-package derivation) and the
// same accuracy target; each engine's own epsilon is set a notch
// tighter than the target so its internal stopping rule cannot fire
// before the shared finish line.
package race

import (
	"fmt"
	"math"

	"dpr/internal/core"
	"dpr/internal/csr"
	"dpr/internal/engine"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

// Schema identifies the report layout; bump it when EngineRun or
// Point change shape so downstream parsers fail loudly.
const Schema = "dpr-race/v1"

// Config parameterizes one race.
type Config struct {
	Docs  int    // graph size (power-law, DefaultPowerLawConfig)
	Peers int    // network size
	Seed  uint64 // graph + placement + randomized-engine seed

	// Target is the shared finish line: max relative error versus the
	// centralized reference at which an engine is scored as arrived.
	Target float64

	// Epsilon is each engine's internal stopping epsilon. Zero means
	// Target/50: residual-to-error amplification for the delta-push
	// engines is roughly d/(1-d) plus the unshipped-delta floor, so a
	// 10x margin is not reliably enough for an engine to cross the
	// shared error line before its own stopping rule fires.
	Epsilon float64

	// MaxSteps caps each engine's run (default 400); engines that hit
	// the cap are reported with ReachedTarget=false, not an error.
	MaxSteps int

	// Engines is the subset to race; nil means every registered
	// engine. Unknown names fail fast with the registry's
	// valid-engines error.
	Engines []string

	// Substrates lists graph representations to race on: "plain"
	// (in-memory adjacency), "csr" (compressed in-memory), "csr_mmap"
	// (compressed, memory-mapped from GraphFile). Nil means plain
	// only. All substrates decode identical adjacency, so results
	// differ only in wall-clock.
	Substrates []string

	// GraphFile is where the csr_mmap substrate writes and re-opens
	// the compressed graph. Required when Substrates includes
	// "csr_mmap".
	GraphFile string

	// Clock supplies monotonic nanoseconds for wall-clock attribution.
	// Nil means a deterministic step counter — useful for golden
	// tests; real runs pass time.Now().UnixNano (the harness itself
	// takes no time dependency, keeping it determinism-lint clean).
	Clock func() int64
}

// Point is one step of an engine's trajectory.
type Point struct {
	Step        int     `json:"step"`
	EquivPasses float64 `json:"equiv_passes"` // cumulative docs visited / N
	ErrVsRef    float64 `json:"err_vs_ref"`   // max rel error vs reference
	Residual    float64 `json:"residual"`     // engine's own residual; -1 = not yet defined
	Messages    int64   `json:"messages"`     // cumulative cross-peer messages
	Nanos       int64   `json:"nanos"`        // wall-clock since engine start
}

// EngineRun is one engine's full result on one substrate.
type EngineRun struct {
	Engine    string `json:"engine"`
	Substrate string `json:"substrate"`

	Steps         int   `json:"steps"`
	Converged     bool  `json:"converged"` // engine's own stopping rule fired
	ReachedTarget bool  `json:"reached_target"`
	Messages      int64 `json:"messages"`
	WallNanos     int64 `json:"wall_nanos"`

	// StepsToTarget / EquivPassesToTarget / MessagesToTarget score the
	// shared finish line (zero when ReachedTarget is false).
	StepsToTarget       int     `json:"steps_to_target"`
	EquivPassesToTarget float64 `json:"equiv_passes_to_target"`
	MessagesToTarget    int64   `json:"messages_to_target"`

	FinalErr   float64 `json:"final_err"`
	Trajectory []Point `json:"trajectory"`
}

// Report is the machine-readable race result.
type Report struct {
	Schema string      `json:"schema"`
	Docs   int         `json:"docs"`
	Edges  int64       `json:"edges"`
	Peers  int         `json:"peers"`
	Seed   uint64      `json:"seed"`
	Target float64     `json:"target"`
	Runs   []EngineRun `json:"runs"`
}

func (c *Config) fill() error {
	if c.Docs <= 0 || c.Peers <= 0 {
		return fmt.Errorf("race: need positive Docs and Peers (got %d, %d)", c.Docs, c.Peers)
	}
	if c.Target <= 0 {
		return fmt.Errorf("race: need positive Target (got %v)", c.Target)
	}
	if c.Epsilon == 0 {
		c.Epsilon = c.Target / 50
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 400
	}
	if c.Engines == nil {
		c.Engines = engine.Names()
	}
	if c.Substrates == nil {
		c.Substrates = []string{"plain"}
	}
	for _, s := range c.Substrates {
		switch s {
		case "plain", "csr":
		case "csr_mmap":
			if c.GraphFile == "" {
				return fmt.Errorf("race: substrate csr_mmap needs Config.GraphFile")
			}
		default:
			return fmt.Errorf("race: unknown substrate %q (valid: plain, csr, csr_mmap)", s)
		}
	}
	if c.Clock == nil {
		tick := int64(0)
		c.Clock = func() int64 { tick++; return tick }
	}
	return nil
}

// substrate materializes one graph representation. The returned
// closer is nil when nothing needs releasing.
func substrate(kind string, cfg Config) (graph.Linker, func() error, error) {
	gcfg := graph.DefaultPowerLawConfig(cfg.Docs, cfg.Seed)
	switch kind {
	case "plain":
		g, err := graph.GeneratePowerLaw(gcfg)
		return g, nil, err
	case "csr":
		g, _, err := csr.Generate(gcfg)
		return g, nil, err
	case "csr_mmap":
		g, _, err := csr.Generate(gcfg)
		if err != nil {
			return nil, nil, err
		}
		if err := g.WriteFile(cfg.GraphFile); err != nil {
			return nil, nil, err
		}
		m, err := csr.OpenFile(cfg.GraphFile)
		if err != nil {
			return nil, nil, err
		}
		return m, m.Close, nil
	}
	return nil, nil, fmt.Errorf("race: unknown substrate %q", kind)
}

// Run races the configured engines and returns the report. Engine
// construction errors abort the race (they indicate a bad config);
// engines that run out of steps are reported, not failed.
func Run(cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}

	// Reference ranks come from the plain in-memory graph; every
	// substrate decodes the same seeded adjacency, so one reference
	// serves all. Tol sits well under the target so reference error
	// cannot blur the finish line.
	gref, err := graph.GeneratePowerLaw(graph.DefaultPowerLawConfig(cfg.Docs, cfg.Seed))
	if err != nil {
		return nil, err
	}
	refTol := cfg.Target / 50
	if refTol > 1e-10 {
		refTol = 1e-10
	}
	ref, err := solver.Power(gref, solver.Config{Tol: refTol, MaxIters: 5000})
	if err != nil {
		return nil, err
	}

	report := &Report{
		Schema: Schema,
		Docs:   cfg.Docs,
		Edges:  graph.CountEdges(gref),
		Peers:  cfg.Peers,
		Seed:   cfg.Seed,
		Target: cfg.Target,
	}

	for _, sub := range cfg.Substrates {
		g, closer, err := substrate(sub, cfg)
		if err != nil {
			return nil, fmt.Errorf("race: building substrate %s: %w", sub, err)
		}
		for _, name := range cfg.Engines {
			run, err := raceOne(name, sub, g, ref.Ranks, cfg)
			if err != nil {
				if closer != nil {
					closer()
				}
				return nil, err
			}
			report.Runs = append(report.Runs, run)
		}
		if closer != nil {
			if err := closer(); err != nil {
				return nil, fmt.Errorf("race: closing substrate %s: %w", sub, err)
			}
		}
	}
	return report, nil
}

func raceOne(name, sub string, g graph.Linker, ref []float64, cfg Config) (EngineRun, error) {
	net := p2p.NewNetwork(cfg.Peers)
	net.AssignRandom(g, rng.New(cfg.Seed^0xa5a5))
	e, err := engine.New(name, engine.Config{
		Graph: g,
		Net:   net,
		Opt:   core.Options{Epsilon: cfg.Epsilon},
		Seed:  cfg.Seed,
	})
	if err != nil {
		return EngineRun{}, fmt.Errorf("race: constructing %s on %s: %w", name, sub, err)
	}

	run := EngineRun{Engine: name, Substrate: sub}
	var processed int64
	start := cfg.Clock()
	n := float64(g.NumNodes())
	for step := 0; step < cfg.MaxSteps; step++ {
		st := e.Step()
		processed += st.Processed
		errVsRef := solver.MaxRelDiff(e.Ranks(), ref)
		// JSON has no Inf/NaN; the walk engine reports +Inf until it
		// has a variance estimate, which serializes as -1.
		residual := st.Residual
		if math.IsInf(residual, 0) || math.IsNaN(residual) {
			residual = -1
		}
		pt := Point{
			Step:        st.Step,
			EquivPasses: float64(processed) / n,
			ErrVsRef:    errVsRef,
			Residual:    residual,
			Messages:    e.Counters().InterPeerMsgs,
			Nanos:       cfg.Clock() - start,
		}
		run.Trajectory = append(run.Trajectory, pt)
		run.Steps = st.Step
		run.FinalErr = errVsRef
		if !run.ReachedTarget && errVsRef <= cfg.Target {
			run.ReachedTarget = true
			run.StepsToTarget = st.Step
			run.EquivPassesToTarget = pt.EquivPasses
			run.MessagesToTarget = pt.Messages
		}
		if st.Done {
			break
		}
	}
	run.Converged = e.Converged()
	run.Messages = e.Counters().InterPeerMsgs
	run.WallNanos = cfg.Clock() - start
	return run, nil
}
