package race

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenReport runs a tiny fully deterministic race: the async engine
// is excluded (its message counts are scheduling-dependent), the
// clock is a fake monotonic counter, and everything else — graph,
// placement, walk trajectories, message totals, error trajectory — is
// a pure function of the seed. The serialized report is therefore
// byte-stable and pins the BENCH_engines.json schema.
func goldenReport(t *testing.T) []byte {
	t.Helper()
	ns := int64(0)
	rep, err := Run(Config{
		Docs:       300,
		Peers:      10,
		Seed:       7,
		Target:     1e-2,
		MaxSteps:   25,
		Engines:    []string{"pass", "chaotic", "diffusion", "walk"},
		Substrates: []string{"plain", "csr"},
		Clock:      func() int64 { ns += 1000; return ns },
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// compareGolden checks got against testdata/<name>, rewriting the file
// instead when UPDATE_GOLDEN=1 is set — the same regeneration protocol
// as the /metrics and /trace goldens.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (rerun with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file; if the schema change is intentional, bump race.Schema and rerun with UPDATE_GOLDEN=1.\n--- got ---\n%.2000s\n--- want ---\n%.2000s", name, got, want)
	}
}

func TestRaceReportGolden(t *testing.T) {
	compareGolden(t, "race_report.golden.json", goldenReport(t))
}

// TestRaceReportSchema asserts the key set independently of the
// golden bytes, so a reader knows exactly which fields are contract.
func TestRaceReportSchema(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal(goldenReport(t), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"schema", "docs", "edges", "peers", "seed", "target", "runs"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("report missing top-level %q", key)
		}
	}
	if doc["schema"] != Schema {
		t.Fatalf("schema = %v, want %v", doc["schema"], Schema)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 8 {
		t.Fatalf("runs = %d entries, want 4 engines x 2 substrates", len(runs))
	}
	run, ok := runs[0].(map[string]any)
	if !ok {
		t.Fatalf("run 0 = %v", runs[0])
	}
	for _, key := range []string{
		"engine", "substrate", "steps", "converged", "reached_target",
		"messages", "wall_nanos", "steps_to_target", "equiv_passes_to_target",
		"messages_to_target", "final_err", "trajectory",
	} {
		if _, present := run[key]; !present {
			t.Fatalf("run missing %q: %v", key, run)
		}
	}
	traj, ok := run["trajectory"].([]any)
	if !ok || len(traj) == 0 {
		t.Fatalf("trajectory = %v", run["trajectory"])
	}
	pt, ok := traj[0].(map[string]any)
	if !ok {
		t.Fatalf("point 0 = %v", traj[0])
	}
	for _, key := range []string{"step", "equiv_passes", "err_vs_ref", "residual", "messages", "nanos"} {
		if _, present := pt[key]; !present {
			t.Fatalf("trajectory point missing %q: %v", key, pt)
		}
	}
}
