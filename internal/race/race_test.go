package race

import (
	"path/filepath"
	"testing"
)

// findRun pulls one engine/substrate result out of a report.
func findRun(t *testing.T, rep *Report, eng, sub string) EngineRun {
	t.Helper()
	for _, r := range rep.Runs {
		if r.Engine == eng && r.Substrate == sub {
			return r
		}
	}
	t.Fatalf("report has no run for %s on %s", eng, sub)
	return EngineRun{}
}

// TestRaceEnginesSmoke is the CI gate (make race-engines-smoke): a
// small seeded race across every registered engine, asserting the
// cross-engine equivalence the harness exists to measure — every
// deterministic engine reaches the shared accuracy target, the walk
// estimator makes measurable progress toward it, and the diffusion
// engine's work-ordering advantage over the everything-dirty pass
// engine shows up as fewer equivalent passes to target.
func TestRaceEnginesSmoke(t *testing.T) {
	rep, err := Run(Config{
		Docs:   2000,
		Peers:  16,
		Seed:   9,
		Target: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q, want %q", rep.Schema, Schema)
	}
	if len(rep.Runs) != 5 {
		t.Fatalf("got %d runs, want one per registered engine (5)", len(rep.Runs))
	}
	for _, name := range []string{"pass", "async", "chaotic", "diffusion"} {
		r := findRun(t, rep, name, "plain")
		if !r.ReachedTarget {
			t.Errorf("%s did not reach target %v (final err %v after %d steps)",
				name, rep.Target, r.FinalErr, r.Steps)
		}
		if len(r.Trajectory) == 0 {
			t.Errorf("%s recorded no trajectory", name)
		}
	}

	// The walk estimator cannot hit a 1e-3 max-norm target in any
	// reasonable round budget (Monte Carlo error shrinks as
	// 1/sqrt(rounds)); its contract here is honest progress: final
	// error well below the first-round error.
	walk := findRun(t, rep, "walk", "plain")
	first := walk.Trajectory[0].ErrVsRef
	if walk.FinalErr >= first/2 {
		t.Errorf("walk made no progress: first-step err %v, final err %v", first, walk.FinalErr)
	}

	// The acceptance claim: residual-ordered diffusion beats the pass
	// engine on work to target.
	pass := findRun(t, rep, "pass", "plain")
	diff := findRun(t, rep, "diffusion", "plain")
	if diff.EquivPassesToTarget >= pass.EquivPassesToTarget {
		t.Errorf("diffusion took %.2f equivalent passes to target, pass took %.2f — diffusion must win",
			diff.EquivPassesToTarget, pass.EquivPassesToTarget)
	}
}

// TestRaceSubstratesAgree pins the substrate contract: plain, csr and
// csr_mmap decode identical adjacency, so a deterministic engine's
// trajectory is bit-identical across them (only wall-clock may vary).
func TestRaceSubstratesAgree(t *testing.T) {
	rep, err := Run(Config{
		Docs:       1000,
		Peers:      8,
		Seed:       5,
		Target:     1e-3,
		Engines:    []string{"pass", "diffusion"},
		Substrates: []string{"plain", "csr", "csr_mmap"},
		GraphFile:  filepath.Join(t.TempDir(), "race.csr"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []string{"pass", "diffusion"} {
		base := findRun(t, rep, eng, "plain")
		for _, sub := range []string{"csr", "csr_mmap"} {
			other := findRun(t, rep, eng, sub)
			if other.Steps != base.Steps || other.Messages != base.Messages {
				t.Fatalf("%s on %s: steps/messages %d/%d differ from plain %d/%d",
					eng, sub, other.Steps, other.Messages, base.Steps, base.Messages)
			}
			for i := range base.Trajectory {
				if other.Trajectory[i].ErrVsRef != base.Trajectory[i].ErrVsRef {
					t.Fatalf("%s on %s: step %d err %v differs from plain %v",
						eng, sub, i+1, other.Trajectory[i].ErrVsRef, base.Trajectory[i].ErrVsRef)
				}
			}
		}
	}
}

func TestRaceConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no docs", Config{Peers: 4, Target: 1e-3}},
		{"no target", Config{Docs: 100, Peers: 4}},
		{"unknown engine", Config{Docs: 100, Peers: 4, Target: 1e-3, Engines: []string{"nope"}}},
		{"unknown substrate", Config{Docs: 100, Peers: 4, Target: 1e-3, Substrates: []string{"hdf5"}}},
		{"mmap without file", Config{Docs: 100, Peers: 4, Target: 1e-3, Substrates: []string{"csr_mmap"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); err == nil {
				t.Fatalf("Run accepted bad config %+v", tc.cfg)
			}
		})
	}
}
