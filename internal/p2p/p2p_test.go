package p2p

import (
	"fmt"
	"testing"
	"testing/quick"

	"dpr/internal/dht"
	"dpr/internal/graph"
	"dpr/internal/rng"
)

func testNet(t testing.TB, docs, peers int, seed uint64) (*Network, *graph.Graph) {
	t.Helper()
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(docs, seed))
	n := NewNetwork(peers)
	n.AssignRandom(g, rng.New(seed+1))
	return n, g
}

func TestAssignRandomPlacesEverything(t *testing.T) {
	n, g := testNet(t, 2000, 50, 1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < n.NumPeers(); p++ {
		total += len(n.Docs(PeerID(p)))
	}
	if total != g.NumNodes() {
		t.Fatalf("placed %d docs, want %d", total, g.NumNodes())
	}
	for d := 0; d < g.NumNodes(); d++ {
		if n.PeerOf(graph.NodeID(d)) == NoPeer {
			t.Fatalf("doc %d unplaced", d)
		}
	}
}

func TestAssignRandomRoughlyBalanced(t *testing.T) {
	n, _ := testNet(t, 50000, 50, 2)
	for p := 0; p < 50; p++ {
		c := len(n.Docs(PeerID(p)))
		if c < 600 || c > 1400 {
			t.Fatalf("peer %d holds %d docs; expected ~1000", p, c)
		}
	}
}

func TestPeerOfOutOfRange(t *testing.T) {
	n, _ := testNet(t, 100, 5, 3)
	if n.PeerOf(1000) != NoPeer {
		t.Fatal("out-of-range doc has a peer")
	}
}

func TestPlaceDoc(t *testing.T) {
	n := NewNetwork(3)
	n.PlaceDoc(7, 2)
	if n.PeerOf(7) != 2 {
		t.Fatal("PlaceDoc failed")
	}
	if n.PeerOf(3) != NoPeer {
		t.Fatal("gap doc placed")
	}
	n.PlaceDoc(7, 0) // move it
	if n.PeerOf(7) != 0 {
		t.Fatal("move failed")
	}
	if len(n.Docs(2)) != 0 {
		t.Fatal("old peer still lists moved doc")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSamePeerAndOnline(t *testing.T) {
	n := NewNetwork(2)
	n.PlaceDoc(0, 0)
	n.PlaceDoc(1, 0)
	n.PlaceDoc(2, 1)
	if !n.SamePeer(0, 1) || n.SamePeer(0, 2) {
		t.Fatal("SamePeer wrong")
	}
	if !n.DocOnline(2) {
		t.Fatal("doc on online peer reported offline")
	}
	n.SetOnline(1, false)
	if n.DocOnline(2) {
		t.Fatal("doc on offline peer reported online")
	}
	if n.NumOnline() != 1 {
		t.Fatalf("NumOnline = %d", n.NumOnline())
	}
}

func TestCrossPeerLinks(t *testing.T) {
	// All docs on one peer: zero cross links.
	g := graph.Cycle(10)
	n := NewNetwork(2)
	for d := 0; d < 10; d++ {
		n.PlaceDoc(graph.NodeID(d), 0)
	}
	if c := n.CrossPeerLinks(g); c != 0 {
		t.Fatalf("single-peer cross links = %d", c)
	}
	// Alternate peers around the cycle: every link crosses.
	for d := 0; d < 10; d += 2 {
		n.PlaceDoc(graph.NodeID(d), 1)
	}
	if c := n.CrossPeerLinks(g); c != 10 {
		t.Fatalf("alternating cross links = %d, want 10", c)
	}
}

func TestChurnKeepsFraction(t *testing.T) {
	n, _ := testNet(t, 100, 40, 4)
	ch, err := NewChurn(n, 0.75, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		ch.Step()
		if got := n.NumOnline(); got != 30 {
			t.Fatalf("step %d: %d peers online, want 30", step, got)
		}
	}
	ch.RestoreAll()
	if n.NumOnline() != 40 {
		t.Fatal("RestoreAll incomplete")
	}
	if ch.Availability() != 0.75 {
		t.Fatal("Availability accessor wrong")
	}
}

func TestChurnNeverEmptiesNetwork(t *testing.T) {
	n := NewNetwork(10)
	ch, err := NewChurn(n, 0.01, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ch.Step()
	if n.NumOnline() < 1 {
		t.Fatal("churn emptied the network")
	}
}

func TestChurnValidation(t *testing.T) {
	n := NewNetwork(5)
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := NewChurn(n, a, rng.New(1)); err == nil {
			t.Errorf("availability %v accepted", a)
		}
	}
}

func TestChurnIsRandom(t *testing.T) {
	n := NewNetwork(100)
	ch, _ := NewChurn(n, 0.5, rng.New(7))
	ch.Step()
	first := make([]bool, 100)
	for i := range first {
		first[i] = n.Online(PeerID(i))
	}
	same := true
	for step := 0; step < 5 && same; step++ {
		ch.Step()
		for i := range first {
			if n.Online(PeerID(i)) != first[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("churn selects the same peers every step")
	}
}

func TestRetryQueueDeferDrain(t *testing.T) {
	q := NewRetryQueue()
	q.Defer(3, Update{Doc: 1, Delta: 0.5})
	q.Defer(3, Update{Doc: 2, Delta: -0.25})
	q.Defer(4, Update{Doc: 3, Delta: 1})
	if q.Len() != 3 || q.Destinations() != 2 {
		t.Fatalf("Len=%d Destinations=%d", q.Len(), q.Destinations())
	}
	us := q.Drain(3)
	if len(us) != 2 || us[0].Doc != 1 || us[1].Delta != -0.25 {
		t.Fatalf("Drain(3) = %v", us)
	}
	if q.Len() != 1 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
	if q.Drain(99) != nil {
		t.Fatal("draining empty destination returned non-nil")
	}
	if q.MaxLen() != 3 {
		t.Fatalf("MaxLen = %d", q.MaxLen())
	}
}

func TestRetryQueueDrainOnline(t *testing.T) {
	n := NewNetwork(3)
	n.SetOnline(1, false)
	q := NewRetryQueue()
	q.Defer(0, Update{Doc: 10, Delta: 1})
	q.Defer(1, Update{Doc: 11, Delta: 1})
	q.Defer(2, Update{Doc: 12, Delta: 1})
	var got []PeerID
	delivered := q.DrainOnline(n, func(dest PeerID, u Update) { got = append(got, dest) })
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if q.Len() != 1 {
		t.Fatalf("offline peer's message drained; Len=%d", q.Len())
	}
	n.SetOnline(1, true)
	if d := q.DrainOnline(n, func(PeerID, Update) {}); d != 1 {
		t.Fatalf("second drain delivered %d", d)
	}
}

func TestIPCacheHitsAfterFirstSend(t *testing.T) {
	ring := dht.NewRing()
	for i := 0; i < 32; i++ {
		if _, err := ring.AddPeer(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	start := ring.Nodes()[0]
	c := NewIPCache(true)
	h1 := c.Hops(0, 42, ring, start)
	if h1 < 1 {
		t.Fatalf("first send hops = %d", h1)
	}
	h2 := c.Hops(0, 42, ring, start)
	if h2 != 1 {
		t.Fatalf("cached send hops = %d, want 1", h2)
	}
	// A different sender has its own cache entry.
	if c.Hops(1, 42, ring, start) < 1 {
		t.Fatal("other-sender hops")
	}
	routed, cached, hops := c.Stats()
	if routed != 2 || cached != 1 || hops < 2 {
		t.Fatalf("stats: routed=%d cached=%d hops=%d", routed, cached, hops)
	}
	if c.Entries() != 2 {
		t.Fatalf("entries = %d", c.Entries())
	}
}

func TestIPCacheDisabledAlwaysRoutes(t *testing.T) {
	c := NewIPCache(false)
	c.Hops(0, 1, nil, nil)
	c.Hops(0, 1, nil, nil)
	routed, cached, _ := c.Stats()
	if routed != 2 || cached != 0 {
		t.Fatalf("disabled cache: routed=%d cached=%d", routed, cached)
	}
	if c.Entries() != 0 {
		t.Fatal("disabled cache stored entries")
	}
}

func TestIPCacheInvalidate(t *testing.T) {
	n := NewNetwork(2)
	n.PlaceDoc(5, 1)
	n.PlaceDoc(6, 0)
	c := NewIPCache(true)
	c.Hops(0, 5, nil, nil)
	c.Hops(0, 6, nil, nil)
	c.Invalidate(n, 1) // drops doc 5's entry only
	if c.Entries() != 1 {
		t.Fatalf("entries after invalidate = %d", c.Entries())
	}
	if h := c.Hops(0, 6, nil, nil); h != 1 {
		t.Fatal("surviving entry not used")
	}
}

// TestIPCacheInvalidateUnderChurn replays the membership scenario the
// cache must survive: a sender caches the owner of a document, that
// owner departs and its key range moves to the ring successor, and the
// stale entry — now pointing at a dead peer — is invalidated. The next
// send must pay a fresh DHT route (and be charged for it), re-learn
// the live owner, and then drop back to one-hop direct sends.
func TestIPCacheInvalidateUnderChurn(t *testing.T) {
	ring := dht.NewRing()
	for i := 0; i < 16; i++ {
		if _, err := ring.AddPeer(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	start := ring.Nodes()[0]
	const doc = graph.NodeID(42)
	key := dht.GUIDFromUint64(uint64(doc)).ID()
	victim := ring.Owner(key)
	if victim == start {
		start = ring.Nodes()[1]
	}

	c := NewIPCache(true)
	if h := c.Hops(0, doc, ring, start); h < 1 {
		t.Fatalf("first send hops = %d", h)
	}
	if h := c.Hops(0, doc, ring, start); h != 1 {
		t.Fatalf("cached send hops = %d, want 1", h)
	}
	routedBefore, cachedBefore, hopsBefore := c.Stats()

	// The owner departs; its range now belongs to the successor. The
	// cache entry for doc is stale — it names a dead peer's address.
	if err := ring.LeaveGraceful(victim); err != nil {
		t.Fatal(err)
	}
	if owner := ring.Owner(key); owner == victim {
		t.Fatal("departed peer still owns the key")
	}
	c.InvalidateDocs([]graph.NodeID{doc})
	if c.Entries() != 0 {
		t.Fatalf("stale entry survived invalidation: %d entries", c.Entries())
	}

	// Repair: the next send routes again and is charged DHT hops.
	h := c.Hops(0, doc, ring, start)
	if h < 1 {
		t.Fatalf("re-resolution hops = %d", h)
	}
	routed, cached, hops := c.Stats()
	if routed != routedBefore+1 {
		t.Fatalf("re-resolution not counted as routed: %d -> %d", routedBefore, routed)
	}
	if cached != cachedBefore {
		t.Fatalf("re-resolution wrongly counted as cache hit: %d -> %d", cachedBefore, cached)
	}
	if hops != hopsBefore+int64(h) {
		t.Fatalf("hop accounting off: %d + %d != %d", hopsBefore, h, hops)
	}
	// Repaired: direct sends again.
	if h := c.Hops(0, doc, ring, start); h != 1 {
		t.Fatalf("post-repair send hops = %d, want 1", h)
	}
	if r2, c2, _ := c.Stats(); r2 != routed || c2 != cached+1 {
		t.Fatalf("post-repair stats: routed=%d cached=%d", r2, c2)
	}
}

func TestCounters(t *testing.T) {
	c := &Counters{InterPeerMsgs: 100, IntraPeerMsgs: 50, Passes: 7}
	if c.Total() != 150 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.PerNode(10) != 10 {
		t.Fatalf("PerNode = %v", c.PerNode(10))
	}
	if c.PerNode(0) != 0 {
		t.Fatal("PerNode(0) should be 0")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: placement is total and consistent for any doc/peer counts.
func TestAssignmentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		peers := 1 + r.Intn(20)
		docs := 2 + r.Intn(500)
		g := graph.Random(docs, 1, seed)
		n := NewNetwork(peers)
		n.AssignRandom(g, r)
		if n.Validate() != nil {
			return false
		}
		total := 0
		for p := 0; p < peers; p++ {
			total += len(n.Docs(PeerID(p)))
		}
		return total == docs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
