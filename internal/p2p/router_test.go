package p2p

import (
	"testing"

	"dpr/internal/graph"
)

func TestCachedRouterFirstRouteThenDirect(t *testing.T) {
	r, err := NewCachedRouter(64, true)
	if err != nil {
		t.Fatal(err)
	}
	first := r.Hops(3, 1000)
	if first < 1 {
		t.Fatalf("first hops = %d", first)
	}
	for i := 0; i < 5; i++ {
		if h := r.Hops(3, 1000); h != 1 {
			t.Fatalf("cached send %d cost %d hops", i, h)
		}
	}
	// Distinct sender pays its own first route.
	if r.Cache().Entries() != 1 {
		t.Fatalf("entries = %d", r.Cache().Entries())
	}
	r.Hops(4, 1000)
	if r.Cache().Entries() != 2 {
		t.Fatalf("entries after second sender = %d", r.Cache().Entries())
	}
	if r.Ring().NumAlive() != 64 {
		t.Fatalf("ring has %d peers", r.Ring().NumAlive())
	}
}

func TestCachedRouterDisabledAlwaysRoutes(t *testing.T) {
	enabled, err := NewCachedRouter(64, true)
	if err != nil {
		t.Fatal(err)
	}
	disabled, err := NewCachedRouter(64, false)
	if err != nil {
		t.Fatal(err)
	}
	var hopsOn, hopsOff int
	for i := 0; i < 50; i++ {
		hopsOn += enabled.Hops(0, graph.NodeID(7))
		hopsOff += disabled.Hops(0, graph.NodeID(7))
	}
	if hopsOn >= hopsOff {
		t.Fatalf("caching did not reduce hops: %d vs %d", hopsOn, hopsOff)
	}
}

func TestDirectRouter(t *testing.T) {
	var r DirectRouter
	if r.Hops(0, 5) != 1 {
		t.Fatal("direct router must cost one hop")
	}
}

func TestNewCachedRouterValidation(t *testing.T) {
	if _, err := NewCachedRouter(0, true); err == nil {
		t.Fatal("accepted zero peers")
	}
}

func TestCountersHopsPerMessage(t *testing.T) {
	c := &Counters{InterPeerMsgs: 10, RoutedHops: 35}
	if got := c.HopsPerMessage(); got != 3.5 {
		t.Fatalf("HopsPerMessage = %v", got)
	}
	if (&Counters{}).HopsPerMessage() != 0 {
		t.Fatal("empty counters should report 0 hops/msg")
	}
}
