package p2p

import (
	"math"
	"testing"

	"dpr/internal/graph"
)

func TestRetryQueueDeferMergeCoalesces(t *testing.T) {
	q := NewRetryQueue()
	// Many updates to few documents: the queue must stay bounded by the
	// number of distinct (dest, doc) pairs, with deltas summed.
	for i := 0; i < 100; i++ {
		q.DeferMerge(3, Update{Doc: graph.NodeID(i % 4), Delta: 0.5})
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct docs", q.Len())
	}
	if q.MaxLen() != 4 {
		t.Fatalf("MaxLen = %d, want 4", q.MaxLen())
	}
	if q.Merges() != 96 {
		t.Fatalf("Merges = %d, want 96", q.Merges())
	}
	us := q.Drain(3)
	if len(us) != 4 {
		t.Fatalf("drained %d updates", len(us))
	}
	total := 0.0
	for _, u := range us {
		if math.Abs(u.Delta-12.5) > 1e-12 {
			t.Fatalf("doc %d delta %v, want 12.5", u.Doc, u.Delta)
		}
		total += u.Delta
	}
	if math.Abs(total-50) > 1e-12 {
		t.Fatalf("total drained delta %v, want 50", total)
	}
	if q.Len() != 0 || q.Destinations() != 0 {
		t.Fatalf("queue not empty after drain: len=%d dests=%d", q.Len(), q.Destinations())
	}
}

func TestRetryQueueDeferMergeReportsAbsorption(t *testing.T) {
	q := NewRetryQueue()
	if q.DeferMerge(1, Update{Doc: 7, Delta: 1}) {
		t.Fatal("first update reported as merged")
	}
	if !q.DeferMerge(1, Update{Doc: 7, Delta: 2}) {
		t.Fatal("second update to same doc not merged")
	}
	if q.DeferMerge(2, Update{Doc: 7, Delta: 3}) {
		t.Fatal("same doc, different dest reported as merged")
	}
}

func TestRetryQueueDeferMergeAfterPlainDefer(t *testing.T) {
	// Defer appends without indexing; DeferMerge must still coalesce
	// against those entries after rebuilding its index.
	q := NewRetryQueue()
	q.Defer(5, Update{Doc: 1, Delta: 1})
	q.Defer(5, Update{Doc: 2, Delta: 1})
	if !q.DeferMerge(5, Update{Doc: 1, Delta: 0.5}) {
		t.Fatal("did not merge into plain-deferred entry")
	}
	// And Defer after DeferMerge invalidates the index without losing
	// entries.
	q.Defer(5, Update{Doc: 3, Delta: 1})
	if !q.DeferMerge(5, Update{Doc: 3, Delta: 1}) {
		t.Fatal("did not merge after index invalidation")
	}
	us := q.Drain(5)
	if len(us) != 3 {
		t.Fatalf("drained %d updates, want 3", len(us))
	}
	want := map[graph.NodeID]float64{1: 1.5, 2: 1, 3: 2}
	for _, u := range us {
		if math.Abs(u.Delta-want[u.Doc]) > 1e-12 {
			t.Fatalf("doc %d delta %v, want %v", u.Doc, u.Delta, want[u.Doc])
		}
	}
}

func TestRetryQueueDrainNPartial(t *testing.T) {
	q := NewRetryQueue()
	for i := 0; i < 5; i++ {
		q.DeferMerge(3, Update{Doc: graph.NodeID(i), Delta: float64(i)})
	}
	got := q.DrainN(3, 2)
	if len(got) != 2 || got[0].Doc != 0 || got[1].Doc != 1 {
		t.Fatalf("DrainN(2) = %v, want oldest two docs", got)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d after partial drain, want 3", q.Len())
	}
	// The remainder must still coalesce: the index was invalidated by
	// the shift and has to rebuild against the new positions.
	if !q.DeferMerge(3, Update{Doc: 4, Delta: 1}) {
		t.Fatal("did not merge into a remaining entry after partial drain")
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d after merge, want 3", q.Len())
	}
	// n past the queue length takes the full-drain path.
	rest := q.DrainN(3, 10)
	if len(rest) != 3 {
		t.Fatalf("DrainN(10) drained %d updates, want 3", len(rest))
	}
	want := map[graph.NodeID]float64{2: 2, 3: 3, 4: 5}
	for _, u := range rest {
		if math.Abs(u.Delta-want[u.Doc]) > 1e-12 {
			t.Fatalf("doc %d delta %v, want %v", u.Doc, u.Delta, want[u.Doc])
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full drain, want 0", q.Len())
	}
	if us := q.DrainN(3, 1); us != nil {
		t.Fatalf("DrainN on empty queue = %v, want nil", us)
	}
	q.DeferMerge(3, Update{Doc: 0, Delta: 1})
	if us := q.DrainN(3, 0); us != nil {
		t.Fatalf("DrainN(0) = %v, want nil", us)
	}
}

func TestRetryQueueDrainResetsIndex(t *testing.T) {
	q := NewRetryQueue()
	q.DeferMerge(1, Update{Doc: 4, Delta: 1})
	q.Drain(1)
	// A fresh update after a drain must start a new entry, not merge
	// into a stale index position.
	if q.DeferMerge(1, Update{Doc: 4, Delta: 2}) {
		t.Fatal("merged into drained entry")
	}
	us := q.Drain(1)
	if len(us) != 1 || us[0].Delta != 2 {
		t.Fatalf("post-drain state: %v", us)
	}
}
