package p2p

import (
	"slices"

	"dpr/internal/graph"
)

// Update is one pagerank-update message: "add Delta to document Doc's
// incoming rank mass". Document deletes send negative deltas
// (section 3.1). On the wire a message is a 128-bit GUID plus a 64-bit
// rank value, 24 bytes (section 4.6.1).
type Update struct {
	Doc   graph.NodeID
	Delta float64
}

// UpdateWireBytes is the on-the-wire size of one update message.
const UpdateWireBytes = 24

// RetryQueue implements the paper's store-and-retry protocol: "when a
// peer is detected as unavailable, update messages are stored at the
// sender and periodically resent until delivered successfully". The
// simulation keeps one logical queue per destination peer; state-size
// accounting (the paper notes worst case scales with the sum of
// out-links in a peer) is exposed via Len and MaxLen.
type RetryQueue struct {
	pending map[PeerID][]Update
	index   map[PeerID]map[graph.NodeID]int // doc -> position, built on demand
	size    int
	maxSize int
	merges  int
}

// NewRetryQueue returns an empty queue.
func NewRetryQueue() *RetryQueue {
	return &RetryQueue{pending: make(map[PeerID][]Update)}
}

// Defer stores an update for an absent peer.
func (q *RetryQueue) Defer(dest PeerID, u Update) {
	q.pending[dest] = append(q.pending[dest], u)
	delete(q.index, dest) // appended without indexing; rebuild on next merge
	q.size++
	if q.size > q.maxSize {
		q.maxSize = q.size
	}
}

// DeferMerge stores an update, coalescing it into an already-queued
// update for the same document by summing deltas. This keeps the
// queued state bounded by the number of distinct destination documents
// — the paper's sum-of-out-links argument for sender-side storage —
// no matter how long the destination peer stays unreachable. Reports
// whether the update was absorbed into an existing entry.
func (q *RetryQueue) DeferMerge(dest PeerID, u Update) bool {
	idx := q.index[dest]
	if idx == nil {
		idx = make(map[graph.NodeID]int, len(q.pending[dest]))
		for i, e := range q.pending[dest] {
			idx[e.Doc] = i
		}
		if q.index == nil {
			q.index = make(map[PeerID]map[graph.NodeID]int)
		}
		q.index[dest] = idx
	}
	if i, ok := idx[u.Doc]; ok {
		q.pending[dest][i].Delta += u.Delta
		q.merges++
		return true
	}
	idx[u.Doc] = len(q.pending[dest])
	q.pending[dest] = append(q.pending[dest], u)
	q.size++
	if q.size > q.maxSize {
		q.maxSize = q.size
	}
	return false
}

// Drain removes and returns all queued updates for dest, typically
// called when the peer is observed online again. Returns nil when
// nothing is queued.
func (q *RetryQueue) Drain(dest PeerID) []Update {
	us := q.pending[dest]
	if us == nil {
		return nil
	}
	delete(q.pending, dest)
	delete(q.index, dest)
	q.size -= len(us)
	return us
}

// DrainN removes and returns at most n queued updates for dest, oldest
// first, leaving the remainder queued. Senders throttling toward a slow
// destination use it to frame small batches without giving up the
// coalescing index on what stays behind. n <= 0 drains nothing.
func (q *RetryQueue) DrainN(dest PeerID, n int) []Update {
	us := q.pending[dest]
	if len(us) == 0 || n <= 0 {
		return nil
	}
	if n >= len(us) {
		return q.Drain(dest)
	}
	out := make([]Update, n)
	copy(out, us[:n])
	rest := make([]Update, len(us)-n)
	copy(rest, us[n:])
	q.pending[dest] = rest
	delete(q.index, dest) // positions shifted; rebuild on next merge
	q.size -= n
	return out
}

// DrainOnline drains every destination that is currently online in
// net, invoking deliver for each update in queue order. Destinations
// are visited in ascending peer order — not map order — so redelivery
// is deterministic run to run, which the engines' bit-identical-
// results guarantee depends on. It returns the number of messages
// delivered.
func (q *RetryQueue) DrainOnline(net *Network, deliver func(dest PeerID, u Update)) int {
	if len(q.pending) == 0 {
		return 0
	}
	dests := make([]PeerID, 0, len(q.pending))
	for dest := range q.pending {
		dests = append(dests, dest)
	}
	slices.Sort(dests)
	delivered := 0
	for _, dest := range dests {
		if !net.Online(dest) {
			continue
		}
		for _, u := range q.Drain(dest) {
			deliver(dest, u)
			delivered++
		}
	}
	return delivered
}

// Dests returns the destinations with queued updates in ascending
// order, so callers can re-route queued state deterministically after
// an ownership change.
func (q *RetryQueue) Dests() []PeerID {
	dests := make([]PeerID, 0, len(q.pending))
	for dest := range q.pending {
		dests = append(dests, dest)
	}
	slices.Sort(dests)
	return dests
}

// Len returns the number of updates currently queued.
func (q *RetryQueue) Len() int { return q.size }

// Mass sums the queued rank deltas across every destination: the
// in-flight mass parked at the sender. It is one term of the engine
// seam's rank-mass conservation audit (internal/engine), so updates
// lost or duplicated by the store-and-retry path show up as a balance
// break rather than a silently wrong fixed point. Destinations are
// visited in map order; summing is the only fold so the result is
// order-sensitive only in float rounding.
func (q *RetryQueue) Mass() float64 {
	total := 0.0
	for _, us := range q.pending {
		for _, u := range us {
			total += u.Delta
		}
	}
	return total
}

// MaxLen returns the high-water mark of queued updates, the "amount of
// state saved" the paper bounds by the sum of out-links per peer.
func (q *RetryQueue) MaxLen() int { return q.maxSize }

// Destinations returns the number of peers with queued updates.
func (q *RetryQueue) Destinations() int { return len(q.pending) }

// Merges returns how many updates DeferMerge absorbed into existing
// entries instead of growing the queue.
func (q *RetryQueue) Merges() int { return q.merges }
