package p2p

import "fmt"

// Counters accumulates message-traffic statistics for one computation,
// the raw material of the paper's Table 3.
type Counters struct {
	InterPeerMsgs int64 // update messages crossing peer boundaries
	IntraPeerMsgs int64 // same-peer updates (free, per section 2.3)
	Deferred      int64 // messages queued for absent peers
	Redelivered   int64 // deferred messages eventually delivered
	RoutedHops    int64 // network hops priced by the configured Router
	Passes        int   // iterations until convergence
}

// Total returns all logical updates, networked or not.
func (c *Counters) Total() int64 { return c.InterPeerMsgs + c.IntraPeerMsgs }

// PerNode returns inter-peer messages per document, the paper's
// graph-size-independent traffic metric (Table 3 "Avg." columns).
func (c *Counters) PerNode(numDocs int) float64 {
	if numDocs == 0 {
		return 0
	}
	return float64(c.InterPeerMsgs) / float64(numDocs)
}

// HopsPerMessage returns the average network hops each inter-peer
// message traversed (1.0 when a direct router or no router is used).
func (c *Counters) HopsPerMessage() float64 {
	if c.InterPeerMsgs == 0 {
		return 0
	}
	return float64(c.RoutedHops) / float64(c.InterPeerMsgs)
}

// String renders a compact summary.
func (c *Counters) String() string {
	return fmt.Sprintf("passes=%d inter=%d intra=%d deferred=%d redelivered=%d hops=%d",
		c.Passes, c.InterPeerMsgs, c.IntraPeerMsgs, c.Deferred, c.Redelivered, c.RoutedHops)
}
