package p2p

import (
	"fmt"

	"dpr/internal/rng"
)

// Churn drives peer availability between passes. The paper's dynamic
// experiments (section 4.3, Table 1 columns 3-4) keep a fixed fraction
// of randomly selected peers present at any given time, re-drawing the
// absent set at the end of every iteration.
type Churn struct {
	net          *Network
	availability float64
	r            *rng.Rand
}

// NewChurn creates a churn driver keeping availability (0,1] of peers
// online each pass.
func NewChurn(net *Network, availability float64, r *rng.Rand) (*Churn, error) {
	if availability <= 0 || availability > 1 {
		return nil, fmt.Errorf("p2p: availability %v outside (0,1]", availability)
	}
	return &Churn{net: net, availability: availability, r: r}, nil
}

// Step re-draws the online set: exactly round(availability*P) peers
// stay present, the rest leave until a later step brings them back.
func (c *Churn) Step() {
	p := c.net.NumPeers()
	up := int(c.availability*float64(p) + 0.5)
	if up < 1 {
		up = 1 // the network never empties completely
	}
	for i := 0; i < p; i++ {
		c.net.SetOnline(PeerID(i), false)
	}
	for _, i := range c.r.Sample(p, up) {
		c.net.SetOnline(PeerID(i), true)
	}
}

// RestoreAll brings every peer back online.
func (c *Churn) RestoreAll() {
	for i := 0; i < c.net.NumPeers(); i++ {
		c.net.SetOnline(PeerID(i), true)
	}
}

// Availability returns the configured online fraction.
func (c *Churn) Availability() float64 { return c.availability }
