package p2p

import (
	"dpr/internal/dht"
	"dpr/internal/graph"
)

// IPCache models the section 3.2 optimization: the first update
// message for a document is routed through the DHT (costing O(log P)
// hops); the resolved owner's address is then cached at the sender so
// subsequent messages travel a single direct hop.
//
// Storage scales with the number of distinct (sender peer, target
// document) pairs, i.e. linearly in the sum of out-links per peer,
// matching the paper's accounting.
type IPCache struct {
	enabled bool
	cache   map[cacheKey]struct{}

	routedLookups int64 // messages that needed a DHT route
	cachedSends   int64 // messages served from the cache
	routedHops    int64 // total DHT hops spent on routed lookups
}

type cacheKey struct {
	from PeerID
	doc  graph.NodeID
}

// NewIPCache returns a cache; when enabled is false every message
// routes through the DHT (the Freenet-style behaviour where anonymity
// forbids caching addresses).
func NewIPCache(enabled bool) *IPCache {
	return &IPCache{enabled: enabled, cache: make(map[cacheKey]struct{})}
}

// Hops charges the routing cost of sending one message from peer from
// to document doc, using ring to price the DHT route on a miss. The
// returned value is the number of network hops the message traverses.
func (c *IPCache) Hops(from PeerID, doc graph.NodeID, ring *dht.Ring, start *dht.Node) int {
	key := cacheKey{from, doc}
	if c.enabled {
		if _, hit := c.cache[key]; hit {
			c.cachedSends++
			return 1
		}
	}
	hops := 1
	if ring != nil && start != nil {
		if _, h, err := ring.Lookup(dht.GUIDFromUint64(uint64(doc)).ID(), start); err == nil {
			hops = h
			if hops < 1 {
				hops = 1
			}
		}
	}
	c.routedLookups++
	c.routedHops += int64(hops)
	if c.enabled {
		c.cache[key] = struct{}{}
	}
	return hops
}

// Invalidate drops every cached address for documents held by peer p;
// called when p leaves so stale addresses are re-resolved on rejoin.
func (c *IPCache) Invalidate(net *Network, p PeerID) {
	c.InvalidateDocs(net.Docs(p))
}

// InvalidateDocs drops the cached addresses for the given documents
// across all senders. Membership changes call this with the migrated
// key range so the next send re-routes through the DHT and re-learns
// the new owner instead of delivering to a departed peer.
func (c *IPCache) InvalidateDocs(docs []graph.NodeID) {
	gone := make(map[graph.NodeID]struct{}, len(docs))
	for _, d := range docs {
		gone[d] = struct{}{}
	}
	for key := range c.cache {
		if _, hit := gone[key.doc]; hit {
			delete(c.cache, key)
		}
	}
}

// Entries returns the number of cached addresses.
func (c *IPCache) Entries() int { return len(c.cache) }

// Stats returns (routed lookups, cached sends, total routed hops).
func (c *IPCache) Stats() (routed, cached, hops int64) {
	return c.routedLookups, c.cachedSends, c.routedHops
}
