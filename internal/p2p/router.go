package p2p

import (
	"fmt"

	"dpr/internal/dht"
	"dpr/internal/graph"
)

// Router prices the network path of one inter-peer update message in
// hops. The engines call it once per cross-peer message so the
// section 3.2 routing/caching economics can be measured without
// simulating packet motion.
type Router interface {
	Hops(from PeerID, doc graph.NodeID) int
}

// CachedRouter combines the Chord ring with the IP-address cache: the
// first message from a peer to a document routes through the DHT
// (O(log P) hops, counted by a real finger-table lookup), later
// messages go direct (1 hop). With the cache disabled — the
// Freenet-style anonymity regime — every message pays the routed
// price.
type CachedRouter struct {
	cache  *IPCache
	ring   *dht.Ring
	starts []*dht.Node // per-peer ring entry point
}

// NewCachedRouter builds the router for a network of numPeers peers.
// It creates a dedicated Chord ring with one node per peer. enabled
// selects whether addresses are cached after the first route.
func NewCachedRouter(numPeers int, enabled bool) (*CachedRouter, error) {
	if numPeers < 1 {
		return nil, fmt.Errorf("p2p: NewCachedRouter needs at least one peer")
	}
	ring := dht.NewRing()
	starts := make([]*dht.Node, numPeers)
	for i := 0; i < numPeers; i++ {
		n, err := ring.AddPeer(fmt.Sprintf("router-peer-%d", i))
		if err != nil {
			return nil, err
		}
		starts[i] = n
	}
	return &CachedRouter{
		cache:  NewIPCache(enabled),
		ring:   ring,
		starts: starts,
	}, nil
}

// Hops implements Router.
func (r *CachedRouter) Hops(from PeerID, doc graph.NodeID) int {
	start := r.starts[int(from)%len(r.starts)]
	return r.cache.Hops(from, doc, r.ring, start)
}

// Cache exposes the underlying IP cache for statistics.
func (r *CachedRouter) Cache() *IPCache { return r.cache }

// Ring exposes the underlying Chord ring.
func (r *CachedRouter) Ring() *dht.Ring { return r.ring }

// DirectRouter prices every message at one hop — the idealized model
// the paper's Table 3 uses once IP caching is in effect.
type DirectRouter struct{}

// Hops implements Router.
func (DirectRouter) Hops(PeerID, graph.NodeID) int { return 1 }
