// Package p2p provides the peer-network substrate under the
// distributed pagerank computation: assignment of documents to peers,
// the churn model (peers leaving/rejoining between passes, section
// 4.2/4.3), store-and-retry queues for updates destined to absent
// peers (section 3.1), the IP-address cache (section 3.2) and message
// accounting.
package p2p

import (
	"fmt"

	"dpr/internal/graph"
	"dpr/internal/rng"
)

// PeerID indexes a peer in the network, 0..P-1.
type PeerID int32

// NoPeer marks an unassigned document.
const NoPeer PeerID = -1

// Network tracks peers, document placement and liveness. It is the
// shared state of the pass engine and the experiment harness.
type Network struct {
	numPeers int
	docPeer  []PeerID // document -> owning peer
	online   []bool   // peer -> currently present
	docs     [][]graph.NodeID
}

// NewNetwork creates a network of numPeers peers with every peer
// online and no documents placed.
func NewNetwork(numPeers int) *Network {
	if numPeers < 1 {
		panic("p2p: NewNetwork needs at least one peer")
	}
	n := &Network{
		numPeers: numPeers,
		online:   make([]bool, numPeers),
		docs:     make([][]graph.NodeID, numPeers),
	}
	for i := range n.online {
		n.online[i] = true
	}
	return n
}

// NumPeers returns the number of peers (online or not).
func (n *Network) NumPeers() int { return n.numPeers }

// NumOnline returns the number of peers currently present.
func (n *Network) NumOnline() int {
	c := 0
	for _, up := range n.online {
		if up {
			c++
		}
	}
	return c
}

// AssignRandom places every document of g on a uniformly random peer,
// the paper's placement policy ("each document in the graph is then
// randomly assigned to a peer").
func (n *Network) AssignRandom(g graph.Linker, r *rng.Rand) {
	n.docPeer = make([]PeerID, g.NumNodes())
	n.docs = make([][]graph.NodeID, n.numPeers)
	for d := 0; d < g.NumNodes(); d++ {
		p := PeerID(r.Intn(n.numPeers))
		n.docPeer[d] = p
		n.docs[p] = append(n.docs[p], graph.NodeID(d))
	}
}

// PeerOf returns the peer holding document d, or NoPeer if the
// document has not been placed (e.g. beyond the assigned range).
func (n *Network) PeerOf(d graph.NodeID) PeerID {
	if int(d) >= len(n.docPeer) {
		return NoPeer
	}
	return n.docPeer[d]
}

// Docs returns the documents stored on peer p. Shared slice; do not
// modify.
func (n *Network) Docs(p PeerID) []graph.NodeID { return n.docs[p] }

// PlaceDoc assigns (or reassigns) a single document to a peer,
// growing the placement table as needed; used by document-insert
// experiments.
func (n *Network) PlaceDoc(d graph.NodeID, p PeerID) {
	for int(d) >= len(n.docPeer) {
		n.docPeer = append(n.docPeer, NoPeer)
	}
	if old := n.docPeer[d]; old != NoPeer {
		list := n.docs[old]
		for i, x := range list {
			if x == d {
				n.docs[old] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	n.docPeer[d] = p
	n.docs[p] = append(n.docs[p], d)
}

// Online reports whether peer p is present.
func (n *Network) Online(p PeerID) bool { return n.online[p] }

// SetOnline flips a peer's presence.
func (n *Network) SetOnline(p PeerID, up bool) { n.online[p] = up }

// DocOnline reports whether document d's peer is present.
func (n *Network) DocOnline(d graph.NodeID) bool {
	p := n.PeerOf(d)
	return p != NoPeer && n.online[p]
}

// SamePeer reports whether two documents live on the same peer, in
// which case a rank update between them costs no network message.
func (n *Network) SamePeer(a, b graph.NodeID) bool {
	pa, pb := n.PeerOf(a), n.PeerOf(b)
	return pa != NoPeer && pa == pb
}

// CrossPeerLinks counts document links that cross peer boundaries,
// the L_ij term of the execution-time model (Equation 4).
func (n *Network) CrossPeerLinks(g graph.Linker) int64 {
	var cross int64
	cur := graph.CursorFor(g)
	for d := 0; d < g.NumNodes(); d++ {
		for _, t := range cur.OutLinks(graph.NodeID(d)) {
			if !n.SamePeer(graph.NodeID(d), t) {
				cross++
			}
		}
	}
	return cross
}

// Validate checks placement invariants.
func (n *Network) Validate() error {
	counts := make([]int, n.numPeers)
	for d, p := range n.docPeer {
		if p == NoPeer {
			continue
		}
		if int(p) >= n.numPeers {
			return fmt.Errorf("p2p: doc %d on invalid peer %d", d, p)
		}
		counts[p]++
	}
	for p, list := range n.docs {
		if len(list) != counts[p] {
			return fmt.Errorf("p2p: peer %d doc list has %d entries, placement says %d",
				p, len(list), counts[p])
		}
		for _, d := range list {
			if n.docPeer[d] != PeerID(p) {
				return fmt.Errorf("p2p: doc %d listed on peer %d but placed on %d",
					d, p, n.docPeer[d])
			}
		}
	}
	return nil
}
