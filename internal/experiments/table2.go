package experiments

import (
	"fmt"

	"dpr/internal/metrics"
)

// Table2Block is one graph size's error distributions across the
// threshold sweep.
type Table2Block struct {
	GraphSize int
	Eps       []float64
	Summaries []metrics.ErrorSummary // aligned with Eps
}

// Table2Result is the paper's Table 2: the distribution of relative
// error |R_d - R_c| / R_c across documents, per threshold and graph
// size, reported at the 50/75/90/99/99.9 percentiles plus max and
// average.
type Table2Result struct {
	Blocks []Table2Block
}

// Table2 runs the pagerank-quality experiment.
func Table2(sc Scale) (*Table2Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	out := &Table2Result{}
	for _, n := range sc.GraphSizes {
		g, err := sc.buildGraph(n)
		if err != nil {
			return nil, err
		}
		ref, err := referenceRanks(g)
		if err != nil {
			return nil, err
		}
		block := Table2Block{GraphSize: n, Eps: EpsSweep}
		for _, eps := range EpsSweep {
			res, _, err := sc.runDistributed(g, eps, 1.0)
			if err != nil {
				return nil, err
			}
			errs := metrics.RelativeErrors(res.Ranks, ref)
			block.Summaries = append(block.Summaries, metrics.Summarize(errs))
		}
		out.Blocks = append(out.Blocks, block)
	}
	return out, nil
}

// Render formats one table per graph size, columns per threshold,
// matching the paper's layout (values as relative error, not percent).
func (r *Table2Result) Render() []*metrics.Table {
	var tables []*metrics.Table
	for _, block := range r.Blocks {
		header := []string{"% pages"}
		for _, eps := range block.Eps {
			header = append(header, metrics.CellEps(eps))
		}
		t := metrics.NewTable(
			fmt.Sprintf("Table 2: relative error distribution, %s nodes", sizeLabel(block.GraphSize)),
			header...)
		labels := []string{"50", "75", "90", "99", "99.9", "Max.", "Avg."}
		for li, label := range labels {
			cells := []string{label}
			for _, s := range block.Summaries {
				v := s.Rows()[li].Value
				cells = append(cells, metrics.Cell(v))
			}
			t.AddRow(cells...)
		}
		tables = append(tables, t)
	}
	return tables
}
