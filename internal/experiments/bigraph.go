package experiments

import (
	"fmt"
	"math"

	"dpr/internal/core"
	"dpr/internal/csr"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// BigGraphConfig drives the scaling experiment: generate a power-law
// document graph at a chosen size, place it on peers, and converge the
// distributed computation — through either the plain in-memory
// adjacency or the compressed CSR substrate, optionally served from a
// memory-mapped file. It is the repro path behind the "10M documents
// on one box" claim and the substrate's regression bench.
type BigGraphConfig struct {
	Docs    int     // document count (>= 2)
	Peers   int     // peers to place on; 0 means 500 (the paper's count)
	Workers int     // pass-engine workers; 0 means serial
	Seed    uint64  // generator + placement seed
	Epsilon float64 // convergence threshold; 0 means core.DefaultEpsilon

	// Compressed selects the delta-varint CSR substrate; otherwise the
	// plain 4-bytes-per-edge in-memory graph is used.
	Compressed bool

	// GraphFile, with Compressed, writes the generated graph to this
	// DPRZ file and serves the solve from a read-only mapping of it
	// (out-of-core mode). Empty keeps the payload on the heap.
	GraphFile string

	// Clock returns nanosecond timestamps for throughput measurement.
	// It is injected (cmd/dprbench passes time.Now().UnixNano) because
	// this package is scoped deterministic: drivers themselves never
	// read wall-clock time. Nil disables timing (all rates zero).
	Clock func() int64
}

// BigGraphResult reports one BigGraph run.
type BigGraphResult struct {
	Docs       int    `json:"docs"`
	Edges      int64  `json:"edges"`
	Compressed bool   `json:"compressed"`
	MmapBacked bool   `json:"mmap_backed"`
	Workers    int    `json:"workers"`
	Seed       uint64 `json:"seed"`

	// Space: adjacency payload bytes per edge (4.0 for the plain
	// representation) and the compressed substrate's total including
	// the degree/skip-index metadata.
	BytesPerEdge      float64 `json:"bytes_per_edge"`
	TotalBytesPerEdge float64 `json:"total_bytes_per_edge"`

	// Generation: wall time and realized edge throughput.
	GenNanos       int64   `json:"gen_nanos"`
	GenEdgesPerSec float64 `json:"gen_edges_per_sec"`
	Saturated      bool    `json:"saturated"`

	// Solve: passes to convergence and update (edge-push) throughput.
	Passes             int     `json:"passes"`
	SolveNanos         int64   `json:"solve_nanos"`
	SolveUpdatesPerSec float64 `json:"solve_updates_per_sec"`
	Converged          bool    `json:"converged"`

	// RankHash is the FNV-1a hash of every rank's IEEE-754 bits in
	// document order: two runs agree on this iff their ranks are
	// bit-identical, which is how the substrate swap is checked without
	// shipping full vectors around.
	RankHash uint64 `json:"rank_hash"`
}

// BigGraph generates, places and solves one graph per the config.
func BigGraph(cfg BigGraphConfig) (BigGraphResult, error) {
	if cfg.Docs < 2 {
		return BigGraphResult{}, fmt.Errorf("experiments: BigGraph needs >= 2 docs, got %d", cfg.Docs)
	}
	peers := cfg.Peers
	if peers == 0 {
		peers = 500
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	res := BigGraphResult{
		Docs:       cfg.Docs,
		Compressed: cfg.Compressed,
		Workers:    cfg.Workers,
		Seed:       cfg.Seed,
	}

	gcfg := graph.DefaultPowerLawConfig(cfg.Docs, cfg.Seed)
	var (
		g     graph.Linker
		stats graph.GenStats
		err   error
	)
	t0 := clock()
	if cfg.Compressed {
		var cg *csr.Graph
		cg, stats, err = csr.Generate(gcfg)
		if err != nil {
			return res, err
		}
		if cfg.GraphFile != "" {
			if err := cg.WriteFile(cfg.GraphFile); err != nil {
				return res, err
			}
			cg, err = csr.OpenFile(cfg.GraphFile)
			if err != nil {
				return res, err
			}
			defer cg.Close()
			res.MmapBacked = true
		}
		res.BytesPerEdge = cg.BytesPerEdge()
		res.TotalBytesPerEdge = cg.TotalBytesPerEdge()
		g = cg
	} else {
		if cfg.GraphFile != "" {
			return res, fmt.Errorf("experiments: GraphFile requires Compressed")
		}
		g, stats, err = graph.GeneratePowerLawStats(gcfg)
		if err != nil {
			return res, err
		}
		res.BytesPerEdge = 4.0
		res.TotalBytesPerEdge = 4.0
	}
	genNanos := clock() - t0
	res.Edges = stats.Edges
	res.Saturated = stats.Saturated()
	res.GenNanos = genNanos
	if genNanos > 0 {
		res.GenEdgesPerSec = float64(stats.Edges) / (float64(genNanos) * 1e-9)
	}

	net := p2p.NewNetwork(peers)
	net.AssignRandom(g, rng.New(cfg.Seed^0xa5a5))
	e, err := core.NewPassEngine(g, net, nil, core.Options{
		Epsilon: cfg.Epsilon,
		Workers: cfg.Workers,
		MaxPass: 100000,
	})
	if err != nil {
		return res, err
	}
	t1 := clock()
	run := e.Run()
	solveNanos := clock() - t1
	res.Passes = run.Passes
	res.Converged = run.Converged
	res.SolveNanos = solveNanos
	if updates := run.Counters.IntraPeerMsgs + run.Counters.InterPeerMsgs; solveNanos > 0 {
		res.SolveUpdatesPerSec = float64(updates) / (float64(solveNanos) * 1e-9)
	}
	res.RankHash = RankHash(run.Ranks)
	if !run.Converged {
		return res, fmt.Errorf("experiments: %d-doc BigGraph run did not converge in %d passes",
			cfg.Docs, run.Passes)
	}
	return res, nil
}

// RankHash folds a rank vector's exact IEEE-754 bits into an FNV-1a
// hash. Equal hashes across substrate/worker configurations attest
// bit-identical results.
func RankHash(ranks []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, r := range ranks {
		bits := math.Float64bits(r)
		for i := 0; i < 8; i++ {
			h ^= bits & 0xFF
			h *= prime64
			bits >>= 8
		}
	}
	return h
}
