package experiments

import (
	"fmt"
	"time"

	"dpr/internal/graph"
	"dpr/internal/metrics"
	"dpr/internal/netmodel"
)

// Table3Row is one threshold's message traffic across graph sizes,
// plus execution-time estimates for the largest graph.
type Table3Row struct {
	Eps      float64
	Total    []int64       // inter-peer messages per graph size
	PerNode  []float64     // messages per document per graph size
	ExecSlow time.Duration // largest graph at 32 KB/s
	ExecFast time.Duration // largest graph at 200 KB/s
}

// Table3Result is the paper's Table 3: variation of update-message
// traffic with the error threshold, and estimated execution time for
// the largest graph on 32 KB/s and 200 KB/s networks.
type Table3Result struct {
	GraphSizes []int
	Rows       []Table3Row
}

// Table3 runs the message-traffic experiment.
func Table3(sc Scale) (*Table3Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	out := &Table3Result{GraphSizes: sc.GraphSizes}
	graphs := make([]*graph.Graph, len(sc.GraphSizes))
	for i, n := range sc.GraphSizes {
		g, err := sc.buildGraph(n)
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}
	slow := netmodel.Model{Bandwidth: netmodel.RateSlowPeer, ComputePerPass: time.Minute}
	fast := netmodel.Model{Bandwidth: netmodel.RateFastPeer, ComputePerPass: time.Minute}
	for _, eps := range EpsSweep {
		row := Table3Row{Eps: eps}
		var lastMsgs int64
		var lastPasses int
		for _, g := range graphs {
			res, _, err := sc.runDistributed(g, eps, 1.0)
			if err != nil {
				return nil, err
			}
			row.Total = append(row.Total, res.Counters.InterPeerMsgs)
			row.PerNode = append(row.PerNode, res.Counters.PerNode(g.NumNodes()))
			lastMsgs = res.Counters.InterPeerMsgs
			lastPasses = res.Passes
		}
		var err error
		if row.ExecSlow, err = slow.EstimateSerial(lastMsgs, lastPasses); err != nil {
			return nil, err
		}
		if row.ExecFast, err = fast.EstimateSerial(lastMsgs, lastPasses); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the result in the paper's Table 3 layout: per graph
// size a Total (millions) and Avg (per node) column pair, then the
// execution-time columns for the largest graph.
func (r *Table3Result) Render() *metrics.Table {
	header := []string{"Threshold"}
	for _, n := range r.GraphSizes {
		header = append(header,
			fmt.Sprintf("Total(M) %s", sizeLabel(n)),
			fmt.Sprintf("Avg %s", sizeLabel(n)))
	}
	header = append(header, "32KB/s (h)", "200KB/s (h)")
	t := metrics.NewTable("Table 3: update messages vs error threshold", header...)
	for _, row := range r.Rows {
		cells := []string{metrics.CellEps(row.Eps)}
		for i := range row.Total {
			cells = append(cells,
				fmt.Sprintf("%.2f", float64(row.Total[i])/1e6),
				fmt.Sprintf("%.1f", row.PerNode[i]))
		}
		cells = append(cells,
			fmt.Sprintf("%.1f", row.ExecSlow.Hours()),
			fmt.Sprintf("%.1f", row.ExecFast.Hours()))
		t.AddRow(cells...)
	}
	return t
}
