// Package experiments contains one driver per table and figure of the
// paper's evaluation (section 4), each producing the same rows the
// paper reports. Every driver takes a Scale so the full paper sizes
// (10k-5000k documents on 500 peers) and laptop-fast test sizes share
// one code path.
package experiments

import (
	"fmt"
	"strings"

	"dpr/internal/core"
	"dpr/internal/engine"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
	"dpr/internal/telemetry"
)

// Scale selects experiment sizes.
type Scale struct {
	GraphSizes   []int // document counts to sweep
	Peers        int   // peers in the pagerank experiments (paper: 500)
	SearchPeers  int   // peers in the search experiment (paper: 50)
	InsertTrials int   // random nodes sampled for Table 4 (paper: 1000)
	CorpusDocs   int   // documents in the search corpus (paper: 11000)
	Seed         uint64

	// Engine selects the solver for the distributed runs, resolved
	// through the internal/engine registry ("" means "pass", the
	// paper's engine). Non-pass engines have no store-and-retry path,
	// so availability sweeps (Table 1's churn columns) require the
	// default.
	Engine string

	// Sink, when non-nil, is attached to every pass engine the
	// drivers run, so a frontend (cmd/dprbench -telemetry) can watch
	// residual decay and throughput across a whole experiment.
	Sink *telemetry.PassSink
}

// Small returns a laptop-fast configuration preserving every
// experimental dimension.
func Small() Scale {
	return Scale{
		GraphSizes:   []int{1000, 5000, 20000},
		Peers:        100,
		SearchPeers:  50,
		InsertTrials: 100,
		CorpusDocs:   2000,
		Seed:         42,
	}
}

// Medium is an intermediate configuration for bench runs.
func Medium() Scale {
	return Scale{
		GraphSizes:   []int{10000, 50000, 100000},
		Peers:        500,
		SearchPeers:  50,
		InsertTrials: 300,
		CorpusDocs:   11000,
		Seed:         42,
	}
}

// Paper returns the paper's exact sizes. The 5000k graph needs a few
// GB of memory and minutes per threshold; use cmd/dprbench for these.
func Paper() Scale {
	return Scale{
		GraphSizes:   []int{10000, 100000, 500000, 5000000},
		Peers:        500,
		SearchPeers:  50,
		InsertTrials: 1000,
		CorpusDocs:   11000,
		Seed:         42,
	}
}

func (sc Scale) validate() error {
	if len(sc.GraphSizes) == 0 {
		return fmt.Errorf("experiments: no graph sizes")
	}
	for _, n := range sc.GraphSizes {
		if n < 2 {
			return fmt.Errorf("experiments: graph size %d too small", n)
		}
	}
	if sc.Peers < 1 || sc.SearchPeers < 1 {
		return fmt.Errorf("experiments: peer counts must be positive")
	}
	if sc.InsertTrials < 1 {
		return fmt.Errorf("experiments: InsertTrials must be positive")
	}
	if sc.Engine != "" && sc.Engine != "pass" {
		known := false
		for _, n := range engine.Names() {
			if n == sc.Engine {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("experiments: unknown engine %q (valid: %s)",
				sc.Engine, strings.Join(engine.Names(), ", "))
		}
	}
	return nil
}

// EpsSweep is the paper's threshold sweep for Tables 2 and 3:
// 0.2 and 10^-1 through 10^-6.
var EpsSweep = []float64{0.2, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}

// InsertEpsSweep is Table 4's sweep: 0.2 and 10^-1 through 10^-5.
var InsertEpsSweep = []float64{0.2, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5}

// Availabilities are Table 1's peer-presence columns.
var Availabilities = []float64{1.0, 0.75, 0.50}

// buildGraph generates the standard power-law document graph for a
// size, derived deterministically from the scale seed.
func (sc Scale) buildGraph(n int) (*graph.Graph, error) {
	return graph.GeneratePowerLaw(graph.DefaultPowerLawConfig(n, sc.Seed+uint64(n)))
}

// buildNetwork places a graph's documents on the scale's peers.
func (sc Scale) buildNetwork(g *graph.Graph, peers int) *p2p.Network {
	net := p2p.NewNetwork(peers)
	net.AssignRandom(g, rng.New(sc.Seed^0xa5a5))
	return net
}

// runDistributed runs the scale's selected engine to convergence at
// the given threshold and availability, returning the result and —
// for the pass engine only — the concrete engine (callers that dig
// into pass internals get nil for other engines).
func (sc Scale) runDistributed(g *graph.Graph, eps, availability float64) (core.Result, *core.PassEngine, error) {
	net := sc.buildNetwork(g, sc.Peers)
	var churn *p2p.Churn
	if availability < 1 {
		var err error
		churn, err = p2p.NewChurn(net, availability, rng.New(sc.Seed^0x5a5a))
		if err != nil {
			return core.Result{}, nil, err
		}
	}
	if sc.Engine != "" && sc.Engine != "pass" {
		e, err := engine.New(sc.Engine, engine.Config{
			Graph: g,
			Net:   net,
			Churn: churn,
			Opt:   core.Options{Epsilon: eps, MaxPass: 100000},
			Seed:  sc.Seed,
			Sink:  sc.Sink,
		})
		if err != nil {
			return core.Result{}, nil, err
		}
		res := engine.Drive(e, 100000)
		if !res.Converged {
			return res, nil, fmt.Errorf("experiments: %d-node %s run at eps=%g did not converge",
				g.NumNodes(), sc.Engine, eps)
		}
		return res, nil, nil
	}
	e, err := core.NewPassEngine(g, net, churn, core.Options{Epsilon: eps, MaxPass: 100000})
	if err != nil {
		return core.Result{}, nil, err
	}
	e.Sink = sc.Sink
	res := e.Run()
	if !res.Converged {
		return res, e, fmt.Errorf("experiments: %d-node run at eps=%g did not converge in %d passes",
			g.NumNodes(), eps, res.Passes)
	}
	return res, e, nil
}

// referenceRanks computes the centralized baseline R_c.
func referenceRanks(g *graph.Graph) ([]float64, error) {
	res, err := solver.Power(g, solver.Config{Tol: 1e-13, MaxIters: 2000})
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("experiments: reference solver did not converge")
	}
	return res.Ranks, nil
}

// sizeLabel renders a graph size the way the paper's tables do
// (thousands).
func sizeLabel(n int) string {
	if n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprintf("%d", n)
}
