package experiments

import (
	"fmt"
	"time"

	"dpr/internal/core"
	"dpr/internal/metrics"
	"dpr/internal/netmodel"
	"dpr/internal/solver"
)

// Table5 renders the paper's qualitative summary table verbatim; its
// content is the conclusion the quantitative tables support.
func Table5() *metrics.Table {
	t := metrics.NewTable("Table 5: distributed pagerank computation summary", "Aspect", "Finding")
	t.AddRow("Convergence", "Fast convergence, high tolerance and adaptability to peer leaves and joins, good scalability with graph size.")
	t.AddRow("Pagerank Quality", "Very high, typically < 1% error, good scalability with graph size.")
	t.AddRow("Message Traffic", "Reasonably low, message traffic per node nearly constant, logarithmic growth with accuracy.")
	t.AddRow("Execution Time", "Reasonably low, dominated by network transfer time.")
	t.AddRow("Document Insertion, Deletion", "Handled naturally, no global recomputes required, pageranks continuously updated.")
	return t
}

// QualityVsPassResult reports the section 4.3 text claims: how many
// passes until 99% of documents are within 1% of R_c, and until the
// whole vector is within 0.1%.
type QualityVsPassResult struct {
	GraphSize           int
	PassesTo99Within1   int
	PassesToAllWithin01 int
}

// QualityVsPass measures rank-quality as a function of pass count for
// each graph size, using the distributed engine with a tight threshold
// and a per-pass probe against the centralized reference.
func QualityVsPass(sc Scale) ([]QualityVsPassResult, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	var out []QualityVsPassResult
	for _, n := range sc.GraphSizes {
		g, err := sc.buildGraph(n)
		if err != nil {
			return nil, err
		}
		ref, err := referenceRanks(g)
		if err != nil {
			return nil, err
		}
		net := sc.buildNetwork(g, sc.Peers)
		e, err := core.NewPassEngine(g, net, nil, core.Options{Epsilon: 1e-9})
		if err != nil {
			return nil, err
		}
		e.Sink = sc.Sink
		r := QualityVsPassResult{GraphSize: n}
		e.OnPass = func(s core.PassStats) bool {
			ranks := e.Ranks()
			within1, within01 := 0, 0
			for i := range ranks {
				rel := relErr(ranks[i], ref[i])
				if rel <= 0.01 {
					within1++
				}
				if rel <= 0.001 {
					within01++
				}
			}
			if r.PassesTo99Within1 == 0 && float64(within1) >= 0.99*float64(len(ranks)) {
				r.PassesTo99Within1 = s.Pass
			}
			if r.PassesToAllWithin01 == 0 && within01 == len(ranks) {
				r.PassesToAllWithin01 = s.Pass
				return false // measured everything we need
			}
			return true
		}
		e.Run()
		if r.PassesTo99Within1 == 0 || r.PassesToAllWithin01 == 0 {
			return nil, fmt.Errorf("experiments: quality-vs-pass targets never reached for %d nodes", n)
		}
		out = append(out, r)
	}
	return out, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	if want < 0 {
		want = -want
	}
	return d / want
}

// RenderQualityVsPass formats the section 4.3 measurements.
func RenderQualityVsPass(rs []QualityVsPassResult) *metrics.Table {
	t := metrics.NewTable("Section 4.3: rank quality vs pass count",
		"Graph size", "99% within 1% of R_c", "all within 0.1% of R_c")
	for _, r := range rs {
		t.AddRow(sizeLabel(r.GraphSize),
			metrics.CellInt(int64(r.PassesTo99Within1)),
			metrics.CellInt(int64(r.PassesToAllWithin01)))
	}
	return t
}

// WebScaleRow is one threshold's Internet-scale estimate.
type WebScaleRow struct {
	Eps           float64
	AvgMsgsPerDoc float64
	Estimate      time.Duration
}

// WebScale reproduces section 4.6.2: estimated convergence time for 3
// billion documents on T3-class links, using the measured per-document
// message counts (a graph-size-independent quantity) from a calibration
// run on the largest configured graph.
func WebScale(sc Scale) ([]WebScaleRow, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	g, err := sc.buildGraph(sc.GraphSizes[len(sc.GraphSizes)-1])
	if err != nil {
		return nil, err
	}
	model := netmodel.Model{Bandwidth: netmodel.RateT3}
	var out []WebScaleRow
	for _, eps := range []float64{1e-1, 1e-3} {
		res, _, err := sc.runDistributed(g, eps, 1.0)
		if err != nil {
			return nil, err
		}
		perDoc := res.Counters.PerNode(g.NumNodes())
		est, err := model.WebScale(3_000_000_000, perDoc)
		if err != nil {
			return nil, err
		}
		out = append(out, WebScaleRow{Eps: eps, AvgMsgsPerDoc: perDoc, Estimate: est})
	}
	return out, nil
}

// RenderWebScale formats the web-scale estimates.
func RenderWebScale(rows []WebScaleRow) *metrics.Table {
	t := metrics.NewTable("Section 4.6.2: web-server deployment, 3e9 documents on T3 links",
		"Threshold", "msgs/doc", "days")
	for _, r := range rows {
		t.AddRow(metrics.CellEps(r.Eps),
			fmt.Sprintf("%.1f", r.AvgMsgsPerDoc),
			fmt.Sprintf("%.1f", netmodel.Days(r.Estimate)))
	}
	return t
}

// SolverComparisonRow compares convergence of the centralized solver
// family (the section 7 discussion: chaotic iteration vs acceleration
// methods).
type SolverComparisonRow struct {
	Name       string
	Iterations int
	Converged  bool
}

// SolverComparison runs power iteration, Gauss-Seidel and Aitken
// extrapolation on the largest configured graph at the same tolerance.
func SolverComparison(sc Scale, tol float64) ([]SolverComparisonRow, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	g, err := sc.buildGraph(sc.GraphSizes[len(sc.GraphSizes)-1])
	if err != nil {
		return nil, err
	}
	cfg := solver.Config{Tol: tol}
	var out []SolverComparisonRow
	p, err := solver.Power(g, cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, SolverComparisonRow{"power", p.Iterations, p.Converged})
	gs, err := solver.GaussSeidel(g, cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, SolverComparisonRow{"gauss-seidel", gs.Iterations, gs.Converged})
	ai, err := solver.PowerAitken(g, solver.ExtrapolationConfig{Config: cfg, Every: 10})
	if err != nil {
		return nil, err
	}
	out = append(out, SolverComparisonRow{"power+aitken", ai.Iterations, ai.Converged})
	return out, nil
}

// RenderSolverComparison formats the solver ablation.
func RenderSolverComparison(rows []SolverComparisonRow) *metrics.Table {
	t := metrics.NewTable("Ablation: centralized solver family", "Solver", "Iterations", "Converged")
	for _, r := range rows {
		t.AddRow(r.Name, metrics.CellInt(int64(r.Iterations)), fmt.Sprintf("%v", r.Converged))
	}
	return t
}
