package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps experiment tests fast while exercising the full
// sweep structure.
func tinyScale() Scale {
	return Scale{
		GraphSizes:   []int{500, 2000},
		Peers:        50,
		SearchPeers:  20,
		InsertTrials: 20,
		CorpusDocs:   800,
		Seed:         7,
	}
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	res, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Passes) != len(Availabilities) {
			t.Fatalf("row has %d availability cells", len(row.Passes))
		}
		// Paper shape: churn slows convergence.
		if !(row.Passes[0] <= row.Passes[1] && row.Passes[1] <= row.Passes[2]) {
			t.Fatalf("passes not monotone in churn: %v", row.Passes)
		}
		// Order of magnitude sanity: tens to low hundreds of passes.
		if row.Passes[0] < 3 || row.Passes[2] > 5000 {
			t.Fatalf("implausible pass counts: %v", row.Passes)
		}
	}
	// Paper shape: passes grow slowly with graph size.
	if res.Rows[1].Passes[0] < res.Rows[0].Passes[0]/2 {
		t.Fatalf("larger graph converged drastically faster: %v vs %v",
			res.Rows[1].Passes, res.Rows[0].Passes)
	}
	out := res.Render().String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "100") {
		t.Fatalf("render missing parts:\n%s", out)
	}
}

func TestTable2QualityImprovesWithThreshold(t *testing.T) {
	sc := tinyScale()
	sc.GraphSizes = []int{2000}
	res, err := Table2(sc)
	if err != nil {
		t.Fatal(err)
	}
	block := res.Blocks[0]
	if len(block.Summaries) != len(EpsSweep) {
		t.Fatalf("%d summaries", len(block.Summaries))
	}
	// Average error shrinks (weakly) as the threshold tightens across
	// the sweep's extremes.
	first, last := block.Summaries[0], block.Summaries[len(block.Summaries)-1]
	if last.Avg > first.Avg {
		t.Fatalf("avg error grew as eps shrank: %v -> %v", first.Avg, last.Avg)
	}
	// Paper headline: at 1e-3 the max error is below ~1%.
	for ei, eps := range block.Eps {
		if eps == 1e-3 {
			if block.Summaries[ei].Max > 0.05 {
				t.Fatalf("max error at 1e-3 is %v; paper reports <1%%", block.Summaries[ei].Max)
			}
		}
	}
	tables := res.Render()
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "Table 2") {
		t.Fatal("render wrong")
	}
}

func TestTable3TrafficGrowsWithTightness(t *testing.T) {
	sc := tinyScale()
	res, err := Table3(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(EpsSweep) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		for gi := range sc.GraphSizes {
			if res.Rows[i].Total[gi] < res.Rows[i-1].Total[gi] {
				t.Fatalf("tighter eps sent fewer messages: row %d col %d", i, gi)
			}
		}
	}
	// Paper: per-node traffic is roughly graph-size independent —
	// within a small factor across sizes at the same threshold.
	for _, row := range res.Rows {
		lo, hi := row.PerNode[0], row.PerNode[0]
		for _, v := range row.PerNode {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > 5*lo {
			t.Fatalf("per-node traffic varies %vx across sizes at eps=%v", hi/lo, row.Eps)
		}
	}
	// Paper: traffic grows ~logarithmically — from 1e-1 to 1e-6 the
	// per-node traffic grows by well under 100x (paper sees <3x).
	firstRow, lastRow := res.Rows[1], res.Rows[len(res.Rows)-1]
	growth := lastRow.PerNode[0] / firstRow.PerNode[0]
	if growth > 20 {
		t.Fatalf("traffic grew %vx from 1e-1 to 1e-6; paper reports <3x", growth)
	}
	// Exec time estimates are positive and ordered (slow > fast).
	for _, row := range res.Rows {
		if row.ExecSlow <= row.ExecFast {
			t.Fatalf("32KB/s estimate %v not slower than 200KB/s %v", row.ExecSlow, row.ExecFast)
		}
	}
	if !strings.Contains(res.Render().String(), "Table 3") {
		t.Fatal("render wrong")
	}
}

func TestTable4GrowthShapes(t *testing.T) {
	sc := tinyScale()
	sc.GraphSizes = []int{3000}
	res, err := Table4(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(InsertEpsSweep) {
		t.Fatalf("%d rows", len(res.Cells))
	}
	// Path length and coverage grow (weakly) as eps tightens.
	for i := 1; i < len(res.Cells); i++ {
		if res.Cells[i][0].PathLength < res.Cells[i-1][0].PathLength-1e-9 {
			t.Fatalf("path length shrank when eps tightened at row %d", i)
		}
		if res.Cells[i][0].Coverage < res.Cells[i-1][0].Coverage-1e-9 {
			t.Fatalf("coverage shrank when eps tightened at row %d", i)
		}
	}
	// Magnitude: the deepest possible wave decays via damping alone
	// along out-degree-1 chains, bounding path length by
	// log(eps)/log(d) ~= 71 at eps=1e-5.
	last := res.Cells[len(res.Cells)-1][0]
	if last.PathLength < 1 || last.PathLength > 75 {
		t.Fatalf("path length at 1e-5 = %v", last.PathLength)
	}
	tables := res.Render()
	if len(tables) != 2 {
		t.Fatal("expected two sub-tables")
	}
}

func TestTable5Static(t *testing.T) {
	out := Table5().String()
	for _, want := range []string{"Convergence", "Pagerank Quality", "Message Traffic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q", want)
		}
	}
}

func TestTable6ReductionShape(t *testing.T) {
	res, err := Table6(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []Table6Block{res.TwoTerm, res.ThreeTerm} {
		if block.QueriesEvaluated != 20 {
			t.Fatalf("evaluated %d queries", block.QueriesEvaluated)
		}
		// The headline: order-of-magnitude reduction at top-10%,
		// smaller at top-20%, both well above 1.
		if block.Top10.AvgReduction < 2 {
			t.Fatalf("%d-term top-10%% reduction only %.1f", block.Words, block.Top10.AvgReduction)
		}
		if block.Top20.AvgReduction < 1.5 {
			t.Fatalf("%d-term top-20%% reduction only %.1f", block.Words, block.Top20.AvgReduction)
		}
		// No ordering assertion between top-10% and top-20%: the
		// >=20-hit forwarding floor can make top-10%% ship MORE than
		// top-20%% on mid-sized lists (the simulation artifact the
		// paper itself documents under Table 6).
		// Hits returned are manageable vs the baseline.
		if block.Top10.AvgHits > block.BaselineAvgHits {
			t.Fatalf("incremental returned more hits than baseline")
		}
	}
	if !strings.Contains(res.Render().String(), "Average traffic reduction") {
		t.Fatal("render wrong")
	}
}

func TestQualityVsPass(t *testing.T) {
	sc := tinyScale()
	sc.GraphSizes = []int{2000}
	rs, err := QualityVsPass(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	// The pass engine contracts at ~d per pass, so 1%% accuracy needs
	// at most ~log(0.01)/log(0.85) ~= 28 passes; 99%% of documents get
	// there a little sooner. (The paper reports <10 — see
	// EXPERIMENTS.md for the discrepancy discussion.)
	if r.PassesTo99Within1 > 40 {
		t.Fatalf("99%%-within-1%% took %d passes", r.PassesTo99Within1)
	}
	if r.PassesToAllWithin01 < r.PassesTo99Within1 {
		t.Fatalf("tighter target reached earlier: %d < %d",
			r.PassesToAllWithin01, r.PassesTo99Within1)
	}
	if r.PassesToAllWithin01 > 100 {
		t.Fatalf("all-within-0.1%% took %d passes; paper reports ~30", r.PassesToAllWithin01)
	}
	if !strings.Contains(RenderQualityVsPass(rs).String(), "4.3") {
		t.Fatal("render wrong")
	}
}

func TestWebScaleEstimates(t *testing.T) {
	sc := tinyScale()
	sc.GraphSizes = []int{2000}
	rows, err := WebScale(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Looser threshold converges faster.
	if rows[0].Estimate > rows[1].Estimate {
		t.Fatalf("1e-1 estimate %v exceeds 1e-3 estimate %v", rows[0].Estimate, rows[1].Estimate)
	}
	// Paper: same order of magnitude as the centralized crawl (days to
	// a few weeks).
	for _, r := range rows {
		days := r.Estimate.Hours() / 24
		if days < 0.5 || days > 120 {
			t.Fatalf("eps=%v estimate %.1f days is out of the paper's ballpark", r.Eps, days)
		}
	}
	if !strings.Contains(RenderWebScale(rows).String(), "3e9") {
		t.Fatal("render wrong")
	}
}

func TestSolverComparison(t *testing.T) {
	sc := tinyScale()
	sc.GraphSizes = []int{2000}
	rows, err := SolverComparison(sc, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]SolverComparisonRow{}
	for _, r := range rows {
		if !r.Converged {
			t.Fatalf("%s did not converge", r.Name)
		}
		byName[r.Name] = r
	}
	if byName["gauss-seidel"].Iterations > byName["power"].Iterations {
		t.Fatal("Gauss-Seidel slower than power iteration")
	}
	if !strings.Contains(RenderSolverComparison(rows).String(), "gauss-seidel") {
		t.Fatal("render wrong")
	}
}

func TestScaleValidation(t *testing.T) {
	bad := []Scale{
		{},
		{GraphSizes: []int{1}, Peers: 1, SearchPeers: 1, InsertTrials: 1},
		{GraphSizes: []int{100}, Peers: 0, SearchPeers: 1, InsertTrials: 1},
		{GraphSizes: []int{100}, Peers: 1, SearchPeers: 1, InsertTrials: 0},
	}
	for i, sc := range bad {
		if _, err := Table1(sc); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestExecTimeValidation(t *testing.T) {
	sc := tinyScale()
	rows, err := ExecTimeValidation(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Faster network completes sooner.
	if rows[1].Simulated >= rows[0].Simulated {
		t.Fatalf("200KB/s (%v) not faster than 32KB/s (%v)",
			rows[1].Simulated, rows[0].Simulated)
	}
	for _, r := range rows {
		// The simulated time must land between the optimistic
		// concurrent Eq.4 single-round cost and a generous multiple of
		// the all-serialized bound.
		if r.Simulated <= 0 {
			t.Fatalf("no simulated time at %.0f B/s", r.Bandwidth)
		}
		if r.Messages <= 0 {
			t.Fatal("no messages")
		}
		// Asynchrony inflates messages relative to the pass engine,
		// within reason.
		if r.MsgInflation < 0.5 || r.MsgInflation > 100 {
			t.Fatalf("implausible message inflation %.1fx", r.MsgInflation)
		}
	}
	if RenderExecTime(rows).String() == "" {
		t.Fatal("render empty")
	}
}

func TestInsertCostCrossValidation(t *testing.T) {
	sc := tinyScale()
	sc.GraphSizes = []int{1500}
	sc.InsertTrials = 15
	rows, err := InsertCost(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.EngineMsgs <= 0 {
			t.Fatalf("eps=%v: no engine messages", r.Eps)
		}
		// Tighter thresholds cost more.
		if i > 0 && r.EngineMsgs < rows[i-1].EngineMsgs {
			t.Fatalf("tighter eps cheaper: %v < %v", r.EngineMsgs, rows[i-1].EngineMsgs)
		}
		// Engine messages and the analytic wave coverage are the same
		// order of magnitude (coverage counts distinct docs; messages
		// count per-link updates, so a modest factor apart).
		ratio := r.EngineMsgs / (r.AnalyticCoverage + 1)
		if ratio < 0.2 || ratio > 50 {
			t.Fatalf("eps=%v: engine %.0f vs analytic %.0f (ratio %.1f) diverge",
				r.Eps, r.EngineMsgs, r.AnalyticCoverage, ratio)
		}
	}
	if RenderInsertCost(rows).String() == "" {
		t.Fatal("render empty")
	}
}

// TestScaleEngineSelection covers the -engine plumbing: a named
// engine resolves through the internal/engine registry, an unknown
// name fails fast listing the valid engines, and churn sweeps reject
// engines without a store-and-retry path.
func TestScaleEngineSelection(t *testing.T) {
	sc := tinyScale()
	g, err := sc.buildGraph(500)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := referenceRanks(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "pass", "diffusion", "chaotic"} {
		sc.Engine = name
		res, _, err := sc.runDistributed(g, 1e-6, 1.0)
		if err != nil {
			t.Fatalf("engine %q: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("engine %q did not converge", name)
		}
		worst := 0.0
		for i := range res.Ranks {
			if d := res.Ranks[i] - ref[i]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
		if worst > 1e-3 {
			t.Fatalf("engine %q: worst abs err %v vs reference", name, worst)
		}
	}

	sc.Engine = "gauss-seidel"
	if _, err := Table1(sc); err == nil {
		t.Fatal("unknown engine accepted")
	} else if !strings.Contains(err.Error(), "valid: async, chaotic, diffusion, pass, walk") {
		t.Fatalf("unknown-engine error does not list valid engines: %v", err)
	}

	sc.Engine = "diffusion"
	if _, _, err := sc.runDistributed(g, 1e-6, 0.5); err == nil {
		t.Fatal("diffusion accepted a churn run")
	}
}
