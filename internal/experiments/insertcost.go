package experiments

import (
	"fmt"

	"dpr/internal/core"
	"dpr/internal/graph"
	"dpr/internal/metrics"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// InsertCostRow cross-validates Table 4: the analytic propagation
// measurement (MeasureInsertPropagation) against the *actual* engine
// cost of inserting documents into a converged network.
type InsertCostRow struct {
	Eps              float64
	AnalyticCoverage float64 // Table 4's node coverage (upper bound on messages)
	EngineMsgs       float64 // measured messages per insert in the live engine
	EnginePasses     float64 // measured extra passes per insert
}

// InsertCost runs the cross-validation on the smallest configured
// graph: converge once, then insert InsertTrials documents one at a
// time through the dynamic-topology path, measuring the real message
// cost of each, and compare with the analytic wave measurement on the
// same start nodes.
func InsertCost(sc Scale) ([]InsertCostRow, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	n := sc.GraphSizes[0]
	base, err := sc.buildGraph(n)
	if err != nil {
		return nil, err
	}
	r := rng.New(sc.Seed ^ 0x1c0)
	trials := sc.InsertTrials
	if trials > 50 {
		trials = 50 // each trial converges the whole wave; keep it sane
	}
	var rows []InsertCostRow
	for _, eps := range []float64{1e-1, 1e-2, 1e-3} {
		m := graph.NewMutable(base)
		net := p2p.NewNetwork(sc.Peers)
		net.AssignRandom(base, rng.New(sc.Seed^0xa5a5))
		e, err := core.NewPassEngine(m, net, nil, core.Options{Epsilon: eps, MaxPass: 100000})
		if err != nil {
			return nil, err
		}
		e.Sink = sc.Sink
		if res := e.Run(); !res.Converged {
			return nil, fmt.Errorf("experiments: insert-cost base run did not converge")
		}
		row := InsertCostRow{Eps: eps}
		startMsgs := e.Counters().InterPeerMsgs + e.Counters().IntraPeerMsgs
		startPasses := e.Pass()
		for trial := 0; trial < trials; trial++ {
			target := graph.NodeID(r.Intn(n))
			row.AnalyticCoverage += float64(
				core.MeasureInsertPropagation(m, target, core.InitialRank, core.DefaultDamping, eps).Coverage)
			id, err := m.AddNode([]graph.NodeID{target})
			if err != nil {
				return nil, err
			}
			if err := e.AttachDocument(id, p2p.PeerID(r.Intn(sc.Peers))); err != nil {
				return nil, err
			}
			if res := e.Run(); !res.Converged {
				return nil, fmt.Errorf("experiments: insert %d did not reconverge", trial)
			}
		}
		total := e.Counters().InterPeerMsgs + e.Counters().IntraPeerMsgs
		row.AnalyticCoverage /= float64(trials)
		row.EngineMsgs = float64(total-startMsgs) / float64(trials)
		row.EnginePasses = float64(e.Pass()-startPasses) / float64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderInsertCost formats the cross-validation table.
func RenderInsertCost(rows []InsertCostRow) *metrics.Table {
	t := metrics.NewTable(
		"Insert cost: analytic wave (Table 4) vs live engine, per insert",
		"Threshold", "analytic coverage", "engine msgs", "engine passes")
	for _, r := range rows {
		t.AddRow(metrics.CellEps(r.Eps),
			fmt.Sprintf("%.0f", r.AnalyticCoverage),
			fmt.Sprintf("%.0f", r.EngineMsgs),
			fmt.Sprintf("%.1f", r.EnginePasses))
	}
	return t
}
