package experiments

import (
	"fmt"

	"dpr/internal/metrics"
)

// Table1Row is one graph size's convergence data: passes to converge
// at each peer-availability level.
type Table1Row struct {
	GraphSize int
	Passes    []int // aligned with Availabilities
}

// Table1Result is the paper's Table 1: convergence rate of the
// distributed pagerank for 500 peers at error threshold 1e-3, with
// 100%, 75% and 50% of peers present.
type Table1Result struct {
	Epsilon float64
	Rows    []Table1Row
}

// Table1 runs the convergence experiment.
func Table1(sc Scale) (*Table1Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	const eps = 1e-3
	out := &Table1Result{Epsilon: eps}
	for _, n := range sc.GraphSizes {
		g, err := sc.buildGraph(n)
		if err != nil {
			return nil, err
		}
		row := Table1Row{GraphSize: n}
		for _, avail := range Availabilities {
			res, _, err := sc.runDistributed(g, eps, avail)
			if err != nil {
				return nil, err
			}
			row.Passes = append(row.Passes, res.Passes)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the result in the paper's Table 1 layout.
func (r *Table1Result) Render() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Table 1: convergence passes (error threshold %s), %% of peers present",
			metrics.CellEps(r.Epsilon)),
		"Graph size", "100", "75", "50")
	for _, row := range r.Rows {
		cells := []string{sizeLabel(row.GraphSize)}
		for _, p := range row.Passes {
			cells = append(cells, metrics.CellInt(int64(p)))
		}
		t.AddRow(cells...)
	}
	return t
}
