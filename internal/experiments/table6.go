package experiments

import (
	"fmt"

	"dpr/internal/core"
	"dpr/internal/corpus"
	"dpr/internal/graph"
	"dpr/internal/metrics"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/search"
)

// Table6Variant aggregates one forwarding policy's results over a
// query set.
type Table6Variant struct {
	AvgReduction float64 // baseline traffic / incremental traffic
	AvgHits      float64
}

// Table6Block holds one query length's results.
type Table6Block struct {
	Words            int
	Top10, Top20     Table6Variant
	BaselineAvgHits  float64
	BaselineTraffic  float64
	QueriesEvaluated int
}

// Table6Result is the paper's Table 6: traffic reduction and hits
// returned when incremental search forwards the top 10% or 20% of
// pagerank-sorted hits, for two- and three-word queries.
type Table6Result struct {
	TwoTerm, ThreeTerm Table6Block
}

// Table6 runs the incremental-search experiment end to end: generate
// the corpus, derive a link graph over its documents, compute
// pageranks with the distributed scheme on SearchPeers peers, build
// the distributed index, and evaluate 20 two-word and 20 three-word
// queries (the paper's counts).
func Table6(sc Scale) (*Table6Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	c, err := corpus.Generate(corpus.Config{NumDocs: sc.CorpusDocs, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	// Link structure among the corpus documents (the paper computes
	// real pageranks for its crawled pages; our documents get the
	// standard power-law linkage).
	g, err := graph.GeneratePowerLaw(graph.DefaultPowerLawConfig(sc.CorpusDocs, sc.Seed^0xbeef))
	if err != nil {
		return nil, err
	}
	net := p2p.NewNetwork(sc.SearchPeers)
	net.AssignRandom(g, rng.New(sc.Seed^0xcafe))
	engine, err := core.NewPassEngine(g, net, nil, core.Options{Epsilon: 1e-3})
	if err != nil {
		return nil, err
	}
	engine.Sink = sc.Sink
	res := engine.Run()
	if !res.Converged {
		return nil, fmt.Errorf("experiments: search pagerank did not converge")
	}
	idx, err := search.Build(c, res.Ranks, sc.SearchPeers)
	if err != nil {
		return nil, err
	}
	out := &Table6Result{}
	r := rng.New(sc.Seed ^ 0xd00d)
	for _, words := range []int{2, 3} {
		queries, err := c.MakeQueries(r, 20, words, 100)
		if err != nil {
			return nil, err
		}
		block, err := evaluateQueries(idx, queries)
		if err != nil {
			return nil, err
		}
		block.Words = words
		if words == 2 {
			out.TwoTerm = block
		} else {
			out.ThreeTerm = block
		}
	}
	return out, nil
}

func evaluateQueries(idx *search.Index, queries [][]corpus.TermID) (Table6Block, error) {
	block := Table6Block{QueriesEvaluated: len(queries)}
	var baseTraffic, t10Traffic, t20Traffic float64
	var baseHits, t10Hits, t20Hits float64
	for _, q := range queries {
		base, err := search.Baseline(idx, q)
		if err != nil {
			return block, err
		}
		t10, err := search.Incremental(idx, q, 0.10, search.DefaultForwardFloor)
		if err != nil {
			return block, err
		}
		t20, err := search.Incremental(idx, q, 0.20, search.DefaultForwardFloor)
		if err != nil {
			return block, err
		}
		baseTraffic += float64(base.TrafficIDs)
		t10Traffic += float64(t10.TrafficIDs)
		t20Traffic += float64(t20.TrafficIDs)
		baseHits += float64(len(base.Hits))
		t10Hits += float64(len(t10.Hits))
		t20Hits += float64(len(t20.Hits))
	}
	n := float64(len(queries))
	block.BaselineTraffic = baseTraffic / n
	block.BaselineAvgHits = baseHits / n
	if t10Traffic > 0 {
		block.Top10 = Table6Variant{AvgReduction: baseTraffic / t10Traffic, AvgHits: t10Hits / n}
	}
	if t20Traffic > 0 {
		block.Top20 = Table6Variant{AvgReduction: baseTraffic / t20Traffic, AvgHits: t20Hits / n}
	}
	return block, nil
}

// Render formats the result in the paper's Table 6 layout.
func (r *Table6Result) Render() *metrics.Table {
	t := metrics.NewTable("Table 6: incremental search with pagerank",
		"", "2 Term queries", "3 Term queries")
	t.AddRow("Average traffic reduction")
	t.AddRow("Top 10% forwarded",
		fmt.Sprintf("%.1f", r.TwoTerm.Top10.AvgReduction),
		fmt.Sprintf("%.1f", r.ThreeTerm.Top10.AvgReduction))
	t.AddRow("Top 20% forwarded",
		fmt.Sprintf("%.1f", r.TwoTerm.Top20.AvgReduction),
		fmt.Sprintf("%.1f", r.ThreeTerm.Top20.AvgReduction))
	t.AddRow("Average # hits returned")
	t.AddRow("Top 10% forwarded",
		fmt.Sprintf("%.1f", r.TwoTerm.Top10.AvgHits),
		fmt.Sprintf("%.1f", r.ThreeTerm.Top10.AvgHits))
	t.AddRow("Top 20% forwarded",
		fmt.Sprintf("%.1f", r.TwoTerm.Top20.AvgHits),
		fmt.Sprintf("%.1f", r.ThreeTerm.Top20.AvgHits))
	t.AddRow("Baseline",
		fmt.Sprintf("%.1f", r.TwoTerm.BaselineAvgHits),
		fmt.Sprintf("%.1f", r.ThreeTerm.BaselineAvgHits))
	return t
}
