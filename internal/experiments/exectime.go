package experiments

import (
	"fmt"
	"time"

	"dpr/internal/core"
	"dpr/internal/metrics"
	"dpr/internal/netmodel"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// ExecTimeRow compares the discrete-event-simulated completion time of
// the distributed computation with the paper's Equation 4 analytic
// estimates at one bandwidth.
type ExecTimeRow struct {
	Bandwidth    float64
	Simulated    time.Duration // measured on the event simulator
	EqFourWorst  time.Duration // Eq. 4 with concurrent peers (max over peers)
	SerialBound  time.Duration // the paper's Table 3 all-serialized bound
	Messages     int64
	MsgInflation float64 // timed-engine messages / pass-engine messages
}

// ExecTimeValidation runs the timed engine on the smallest configured
// graph at the paper's two peer bandwidths and sets the measured
// completion time against the analytic model evaluated with the same
// message counts — the validation the paper could not perform because
// its simulation had no network model.
func ExecTimeValidation(sc Scale) ([]ExecTimeRow, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	n := sc.GraphSizes[0]
	g, err := sc.buildGraph(n)
	if err != nil {
		return nil, err
	}
	// Pass-engine message baseline for the inflation metric.
	passRes, _, err := sc.runDistributed(g, 1e-3, 1.0)
	if err != nil {
		return nil, err
	}

	var rows []ExecTimeRow
	for _, bw := range []float64{netmodel.RateSlowPeer, netmodel.RateFastPeer} {
		net := p2p.NewNetwork(sc.Peers)
		net.AssignRandom(g, rng.New(sc.Seed^0xa5a5))
		e, err := core.NewTimedEngine(g, net, core.TimedOptions{
			Options:   core.Options{Epsilon: 1e-3},
			Bandwidth: bw,
			Latency:   50 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		res, err := e.Run()
		if err != nil {
			return nil, err
		}
		// Equation 4 with the timed run's own traffic: distribute the
		// messages over peers as the placement did.
		perPeer := make([]int64, sc.Peers)
		total := res.Counters.InterPeerMsgs
		for i := range perPeer {
			perPeer[i] = total / int64(sc.Peers)
		}
		model := netmodel.Model{Bandwidth: bw}
		// The timed engine has no pass structure; scale Eq. 4 by the
		// effective "rounds" the serial bound implies.
		worst, err := model.EstimatePerPeer(perPeer, 1)
		if err != nil {
			return nil, err
		}
		serial, err := model.EstimateSerial(total, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExecTimeRow{
			Bandwidth:    bw,
			Simulated:    res.SimulatedTime,
			EqFourWorst:  worst,
			SerialBound:  serial,
			Messages:     total,
			MsgInflation: float64(total) / float64(passRes.Counters.InterPeerMsgs),
		})
	}
	return rows, nil
}

// RenderExecTime formats the validation table.
func RenderExecTime(rows []ExecTimeRow) *metrics.Table {
	t := metrics.NewTable(
		"Execution-time validation: event simulation vs Equation 4 (eps=1e-3)",
		"Bandwidth", "simulated", "Eq.4 concurrent", "serial bound", "messages", "msg inflation")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.0f KB/s", r.Bandwidth/1024),
			r.Simulated.Round(time.Millisecond).String(),
			r.EqFourWorst.Round(time.Millisecond).String(),
			r.SerialBound.Round(time.Millisecond).String(),
			metrics.CellInt(r.Messages),
			fmt.Sprintf("%.1fx", r.MsgInflation),
		)
	}
	return t
}
