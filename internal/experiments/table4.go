package experiments

import (
	"fmt"

	"dpr/internal/core"
	"dpr/internal/graph"
	"dpr/internal/metrics"
	"dpr/internal/rng"
)

// Table4Cell is the averaged insert-propagation measurement for one
// (threshold, graph size) pair.
type Table4Cell struct {
	PathLength float64
	Coverage   float64
}

// Table4Result is the paper's Table 4: path length and node coverage
// of the update wave triggered by a single document insert, averaged
// over randomly picked nodes, per threshold and graph size.
type Table4Result struct {
	GraphSizes []int
	Eps        []float64
	Cells      [][]Table4Cell // [eps][graph size]
	Damping    float64
	Trials     int
}

// Table4 runs the insert-propagation experiment: for each graph, pick
// InsertTrials random documents, set each one's pagerank to the
// initial value (1.0), and measure how far the increments travel at
// each threshold (section 4.7).
func Table4(sc Scale) (*Table4Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	out := &Table4Result{
		GraphSizes: sc.GraphSizes,
		Eps:        InsertEpsSweep,
		Damping:    core.DefaultDamping,
		Trials:     sc.InsertTrials,
	}
	graphs := make([]*graph.Graph, len(sc.GraphSizes))
	starts := make([][]graph.NodeID, len(sc.GraphSizes))
	r := rng.New(sc.Seed ^ 0x7477)
	for i, n := range sc.GraphSizes {
		g, err := sc.buildGraph(n)
		if err != nil {
			return nil, err
		}
		graphs[i] = g
		picks := make([]graph.NodeID, sc.InsertTrials)
		for j := range picks {
			picks[j] = graph.NodeID(r.Intn(n))
		}
		starts[i] = picks
	}
	for _, eps := range InsertEpsSweep {
		row := make([]Table4Cell, len(graphs))
		for gi, g := range graphs {
			var path, cov float64
			for _, s := range starts[gi] {
				res := core.MeasureInsertPropagation(g, s, core.InitialRank, out.Damping, eps)
				path += float64(res.PathLength)
				cov += float64(res.Coverage)
			}
			n := float64(len(starts[gi]))
			row[gi] = Table4Cell{PathLength: path / n, Coverage: cov / n}
		}
		out.Cells = append(out.Cells, row)
	}
	return out, nil
}

// Render produces the two stacked sub-tables of the paper's Table 4.
func (r *Table4Result) Render() []*metrics.Table {
	header := []string{"Threshold"}
	for _, n := range r.GraphSizes {
		header = append(header, sizeLabel(n))
	}
	paths := metrics.NewTable("Table 4a: insert propagation path length", header...)
	covs := metrics.NewTable("Table 4b: insert propagation node coverage", header...)
	for ei, eps := range r.Eps {
		pc := []string{metrics.CellEps(eps)}
		cc := []string{metrics.CellEps(eps)}
		for gi := range r.GraphSizes {
			pc = append(pc, fmt.Sprintf("%.1f", r.Cells[ei][gi].PathLength))
			cc = append(cc, fmt.Sprintf("%.0f", r.Cells[ei][gi].Coverage))
		}
		paths.AddRow(pc...)
		covs.AddRow(cc...)
	}
	return []*metrics.Table{paths, covs}
}
