package experiments

import (
	"path/filepath"
	"testing"
)

// TestBigGraphSubstrateBitIdentity runs the scaling driver across all
// three substrate modes — plain, compressed in-heap, compressed from a
// memory-mapped file — and demands the same rank hash and pass count
// from each.
func TestBigGraphSubstrateBitIdentity(t *testing.T) {
	base := BigGraphConfig{Docs: 20000, Peers: 50, Seed: 3}

	plain, err := BigGraph(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.RankHash == 0 || plain.Edges == 0 || !plain.Converged {
		t.Fatalf("implausible plain result: %+v", plain)
	}

	comp := base
	comp.Compressed = true
	compRes, err := BigGraph(comp)
	if err != nil {
		t.Fatal(err)
	}
	mmap := comp
	mmap.Workers = 4
	mmap.GraphFile = filepath.Join(t.TempDir(), "big.dprz")
	mmapRes, err := BigGraph(mmap)
	if err != nil {
		t.Fatal(err)
	}
	if !mmapRes.MmapBacked {
		t.Fatal("GraphFile run did not report mmap backing")
	}

	for _, got := range []BigGraphResult{compRes, mmapRes} {
		if got.RankHash != plain.RankHash {
			t.Fatalf("rank hash diverged: %x vs plain %x (%+v)", got.RankHash, plain.RankHash, got)
		}
		if got.Passes != plain.Passes || got.Edges != plain.Edges {
			t.Fatalf("structure diverged: %+v vs %+v", got, plain)
		}
	}
	if compRes.BytesPerEdge >= 4 || compRes.BytesPerEdge <= 0 {
		t.Fatalf("compressed payload %.3f bytes/edge not under uncompressed 4", compRes.BytesPerEdge)
	}
}

func TestBigGraphValidation(t *testing.T) {
	if _, err := BigGraph(BigGraphConfig{Docs: 1}); err == nil {
		t.Error("accepted 1-doc config")
	}
	if _, err := BigGraph(BigGraphConfig{Docs: 100, GraphFile: "x.dprz"}); err == nil {
		t.Error("accepted GraphFile without Compressed")
	}
}

func TestRankHashSensitivity(t *testing.T) {
	a := RankHash([]float64{1, 2, 3})
	if a != RankHash([]float64{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if a == RankHash([]float64{1, 2, 3.0000000000000004}) {
		t.Fatal("hash ignores a 1-ulp difference")
	}
	if a == RankHash([]float64{3, 2, 1}) {
		t.Fatal("hash ignores order")
	}
}
