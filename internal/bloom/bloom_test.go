package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("item-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains([]byte(fmt.Sprintf("item-%d", i))) {
			t.Fatalf("false negative for item-%d", i)
		}
	}
	if f.Items() != 1000 {
		t.Fatalf("Items = %d", f.Items())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	f, err := New(5000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		f.AddUint32(uint32(i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.ContainsUint32(uint32(1_000_000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, target 0.01", rate)
	}
	// Fill ratio should be around 50% at design load.
	if fill := f.FillRatio(); fill < 0.3 || fill > 0.7 {
		t.Fatalf("fill ratio %.2f at design load", fill)
	}
	if est := f.EstimatedFPRate(); est > 0.05 {
		t.Fatalf("estimated FP rate %.4f", est)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f, err := New(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if f.ContainsUint32(uint32(i)) {
			t.Fatalf("empty filter claims to contain %d", i)
		}
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := New(0, 0.01); err == nil {
		t.Error("accepted zero items")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("accepted zero fp rate")
	}
	if _, err := New(10, 1); err == nil {
		t.Error("accepted fp rate 1")
	}
	if _, err := NewWithParams(100, 0); err == nil {
		t.Error("accepted zero hashes")
	}
	if _, err := NewWithParams(100, 100); err == nil {
		t.Error("accepted 100 hashes")
	}
	// Tiny bit counts are clamped, not rejected.
	f, err := NewWithParams(1, 1)
	if err != nil || f.SizeBits() < 8 {
		t.Errorf("tiny filter: %v, bits=%d", err, f.SizeBits())
	}
}

func TestSizeAccounting(t *testing.T) {
	f, err := NewWithParams(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.SizeBits() != 1024 || f.SizeBytes() != 128 {
		t.Fatalf("size: bits=%d bytes=%d", f.SizeBits(), f.SizeBytes())
	}
}

// Property: anything added is always found (no false negatives), for
// arbitrary byte strings.
func TestNoFalseNegativesProperty(t *testing.T) {
	f, err := New(10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	check := func(data []byte) bool {
		f.Add(data)
		return f.Contains(data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f, _ := New(1_000_000, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.AddUint32(uint32(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f, _ := New(1_000_000, 0.01)
	for i := 0; i < 100000; i++ {
		f.AddUint32(uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ContainsUint32(uint32(i))
	}
}
