// Package bloom implements the Bloom filter (Bloom, CACM 1970) the
// paper cites as the existing remedy for multi-word query traffic on
// DHT systems (section 2.4.2): instead of shipping full document-ID
// lists between the peers owning each term's index partition, a peer
// ships a compact filter and the next peer intersects locally. The
// search package combines this with pagerank-ordered incremental
// forwarding.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a classic Bloom filter with double hashing. The zero value
// is not usable; construct with New or NewWithParams.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	items  int
}

// New sizes a filter for the expected number of items and target
// false-positive rate using the standard optima
// m = -n ln p / (ln 2)^2 and k = m/n ln 2.
func New(expectedItems int, fpRate float64) (*Filter, error) {
	if expectedItems < 1 {
		return nil, fmt.Errorf("bloom: expectedItems %d < 1", expectedItems)
	}
	if fpRate <= 0 || fpRate >= 1 {
		return nil, fmt.Errorf("bloom: fpRate %v outside (0,1)", fpRate)
	}
	ln2 := math.Ln2
	m := uint64(math.Ceil(-float64(expectedItems) * math.Log(fpRate) / (ln2 * ln2)))
	k := int(math.Round(float64(m) / float64(expectedItems) * ln2))
	if k < 1 {
		k = 1
	}
	return NewWithParams(m, k)
}

// NewWithParams builds a filter with an explicit bit count and hash
// count.
func NewWithParams(nbits uint64, hashes int) (*Filter, error) {
	if nbits < 8 {
		nbits = 8
	}
	if hashes < 1 || hashes > 64 {
		return nil, fmt.Errorf("bloom: hash count %d outside [1,64]", hashes)
	}
	return &Filter{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: hashes,
	}, nil
}

// hash2 derives two independent 64-bit hashes of data; probe i uses
// h1 + i*h2 (Kirsch-Mitzenmacher double hashing).
func hash2(data []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(data)
	h1 := h.Sum64()
	h.Write([]byte{0x9e, 0x37}) // extend the stream for a second digest
	h2 := h.Sum64()
	if h2%2 == 0 { // keep the stride odd so probes cycle all bits
		h2++
	}
	return h1, h2
}

func (f *Filter) setBit(i uint64)      { f.bits[i/64] |= 1 << (i % 64) }
func (f *Filter) getBit(i uint64) bool { return f.bits[i/64]&(1<<(i%64)) != 0 }

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	h1, h2 := hash2(data)
	for i := 0; i < f.hashes; i++ {
		f.setBit((h1 + uint64(i)*h2) % f.nbits)
	}
	f.items++
}

// Contains reports whether data may have been added. False positives
// occur at roughly the configured rate; false negatives never.
func (f *Filter) Contains(data []byte) bool {
	h1, h2 := hash2(data)
	for i := 0; i < f.hashes; i++ {
		if !f.getBit((h1 + uint64(i)*h2) % f.nbits) {
			return false
		}
	}
	return true
}

// AddUint32 and ContainsUint32 adapt the filter to document IDs.
func (f *Filter) AddUint32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	f.Add(buf[:])
}

// ContainsUint32 reports whether the document ID may be present.
func (f *Filter) ContainsUint32(v uint32) bool {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return f.Contains(buf[:])
}

// Items returns how many values have been added.
func (f *Filter) Items() int { return f.items }

// SizeBits returns the filter's bit capacity — the number that goes
// over the wire in the Bloom-assisted search protocol.
func (f *Filter) SizeBits() uint64 { return f.nbits }

// SizeBytes returns the wire size in bytes.
func (f *Filter) SizeBytes() int64 { return int64((f.nbits + 7) / 8) }

// FillRatio returns the fraction of set bits (diagnostic; ~50% at the
// design load).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

// EstimatedFPRate returns the expected false-positive probability at
// the current fill: (fill)^k.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.hashes))
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
