package core

import (
	"math"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// figure2Graph builds the exact example of the paper's Figure 2:
// G links to H, I, J; H links to K, L.
// Node ids: G=0 H=1 I=2 J=3 K=4 L=5, plus M=6 (isolated, as drawn).
func figure2Graph() *graph.Graph {
	return graph.FromAdjacency([][]graph.NodeID{
		{1, 2, 3}, // G -> H, I, J
		{4, 5},    // H -> K, L
		{}, {}, {}, {}, {},
	})
}

func TestFigure2Propagation(t *testing.T) {
	g := figure2Graph()
	// The figure traces increments without damping: G's increment to H
	// is 1/3, H's to K and L is 1/6.
	res := MeasureInsertPropagation(g, 0, 1.0, 1.0, 0.2)
	// Hop 1: G sends 1/3 to H, I, J (3 messages).
	// Hop 2: H's 1/3 > 0.2, so H sends 1/6 to K and L (2 messages).
	// Hop 3: K and L hold 1/6 < 0.2 — silence.
	if res.Messages != 5 {
		t.Fatalf("messages = %d, want 5", res.Messages)
	}
	if res.PathLength != 2 {
		t.Fatalf("path length = %d, want 2", res.PathLength)
	}
	if res.Coverage != 5 {
		t.Fatalf("coverage = %d, want 5 (H,I,J,K,L)", res.Coverage)
	}
}

func TestFigure2TighterThresholdGoesDeeper(t *testing.T) {
	g := figure2Graph()
	res := MeasureInsertPropagation(g, 0, 1.0, 1.0, 0.1)
	// Now K and L (1/6 > 0.1) would forward, but they have no
	// out-links, so message count rises only if the graph continues.
	if res.Messages != 5 || res.PathLength != 2 {
		t.Fatalf("unexpected: %+v", res)
	}
	// Extend the chain: K -> M.
	g2 := graph.FromAdjacency([][]graph.NodeID{
		{1, 2, 3}, {4, 5}, {}, {}, {6}, {}, {},
	})
	res2 := MeasureInsertPropagation(g2, 0, 1.0, 1.0, 0.1)
	if res2.PathLength != 3 || res2.Messages != 6 || res2.Coverage != 6 {
		t.Fatalf("extended chain: %+v", res2)
	}
}

func TestPropagationThresholdMonotonicity(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(5000, 31))
	r := rng.New(9)
	starts := make([]graph.NodeID, 30)
	for i := range starts {
		starts[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	prevPath, prevCov := 0.0, 0.0
	for _, eps := range []float64{0.2, 1e-1, 1e-2, 1e-3} {
		var path, cov float64
		for _, s := range starts {
			res := MeasureInsertPropagation(g, s, InitialRank, DefaultDamping, eps)
			path += float64(res.PathLength)
			cov += float64(res.Coverage)
		}
		path /= float64(len(starts))
		cov /= float64(len(starts))
		if path < prevPath {
			t.Fatalf("eps=%v shortened average path: %v < %v", eps, path, prevPath)
		}
		if cov < prevCov {
			t.Fatalf("eps=%v shrank average coverage: %v < %v", eps, cov, prevCov)
		}
		prevPath, prevCov = path, cov
	}
	// Path lengths stay bounded even at tight thresholds. Damping caps
	// any propagation at log(eps)/log(0.85) ~ 43 hops; chains of
	// degree-1 neighborhood links (the generator's locality component)
	// can approach that bound, unlike pure global-popularity graphs
	// where increments quickly reach high-out-degree hubs and split
	// below threshold (the paper reports ~9-15 for its graphs).
	if prevPath > 45 {
		t.Fatalf("average path length %v at eps=1e-3 exceeds the damping-decay bound", prevPath)
	}
}

func TestPropagationTerminatesOnCycle(t *testing.T) {
	// outdeg-1 cycle: increments decay only via damping.
	g := graph.Cycle(5)
	res := MeasureInsertPropagation(g, 0, 1.0, DefaultDamping, 1e-3)
	// 0.85^k < 1e-3 at k=43.
	if res.PathLength < 30 || res.PathLength > 60 {
		t.Fatalf("cycle path length = %d, want ~43", res.PathLength)
	}
	if res.Coverage != 5 {
		t.Fatalf("cycle coverage = %d", res.Coverage)
	}
}

func TestPropagationValidation(t *testing.T) {
	g := graph.Cycle(3)
	for _, f := range []func(){
		func() { MeasureInsertPropagation(g, 0, 1, 0, 0.1) },
		func() { MeasureInsertPropagation(g, 0, 1, 1.5, 0.1) },
		func() { MeasureInsertPropagation(g, 0, 1, 0.85, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInsertDocRaisesTargetRanks(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 32))
	e, _ := setup(t, g, 20, Options{Epsilon: 1e-8}, 13)
	res := e.Run()
	if !res.Converged {
		t.Fatal("initial run did not converge")
	}
	before := make([]float64, len(res.Ranks))
	copy(before, res.Ranks)

	targets := []graph.NodeID{10, 20, 30}
	if err := e.InsertDoc(0, targets); err != nil {
		t.Fatal(err)
	}
	res2 := e.Run()
	if !res2.Converged {
		t.Fatal("did not reconverge after insert")
	}
	for _, d := range targets {
		if res2.Ranks[d] <= before[d] {
			t.Fatalf("target %d rank did not rise: %v -> %v", d, before[d], res2.Ranks[d])
		}
		// Each target gains at least its direct share d*(1-d)/3,
		// ignoring second-order feedback through loops.
		minGain := DefaultDamping * (1 - DefaultDamping) / 3 * 0.9
		if res2.Ranks[d]-before[d] < minGain {
			t.Fatalf("target %d gained %v, want >= %v", d, res2.Ranks[d]-before[d], minGain)
		}
	}
	// Untouched far-away docs move little but never drop below 1-d.
	for i, r := range res2.Ranks {
		if r < (1-DefaultDamping)-1e-9 {
			t.Fatalf("rank[%d] = %v fell below floor after insert", i, r)
		}
	}
}

func TestInsertDocErrors(t *testing.T) {
	g := graph.Cycle(5)
	e, _ := setup(t, g, 2, Options{}, 14)
	if err := e.InsertDoc(0, []graph.NodeID{99}); err == nil {
		t.Fatal("accepted out-of-range out-link")
	}
	if err := e.InsertDoc(0, nil); err != nil {
		t.Fatalf("no-outlink insert should be a no-op, got %v", err)
	}
}

func TestRemoveDocChain(t *testing.T) {
	// Chain 0 -> 1 -> 2. After removing 0:
	// r1 = 1-d, r2 = (1-d) + d(1-d).
	g := graph.FromAdjacency([][]graph.NodeID{{1}, {2}, {}})
	e, _ := setup(t, g, 2, Options{Epsilon: 1e-10}, 15)
	res := e.Run()
	if !res.Converged {
		t.Fatal("initial run did not converge")
	}
	d := DefaultDamping
	if math.Abs(res.Ranks[2]-((1-d)+d*((1-d)+d*(1-d)))) > 1e-6 {
		t.Fatalf("pre-delete rank[2] = %v", res.Ranks[2])
	}
	if err := e.RemoveDoc(0); err != nil {
		t.Fatal(err)
	}
	res2 := e.Run()
	if !res2.Converged {
		t.Fatal("did not reconverge after delete")
	}
	if res2.Ranks[0] != 0 {
		t.Fatalf("removed doc rank = %v", res2.Ranks[0])
	}
	if math.Abs(res2.Ranks[1]-(1-d)) > 1e-6 {
		t.Fatalf("rank[1] after delete = %v, want %v", res2.Ranks[1], 1-d)
	}
	want2 := (1 - d) + d*(1-d)
	if math.Abs(res2.Ranks[2]-want2) > 1e-6 {
		t.Fatalf("rank[2] after delete = %v, want %v", res2.Ranks[2], want2)
	}
}

func TestRemoveDocStopsReceiving(t *testing.T) {
	g := graph.Cycle(6)
	e, _ := setup(t, g, 3, Options{Epsilon: 1e-10}, 16)
	e.Run()
	if err := e.RemoveDoc(3); err != nil {
		t.Fatal(err)
	}
	if !e.Removed(3) {
		t.Fatal("Removed() false after removal")
	}
	if err := e.RemoveDoc(3); err == nil {
		t.Fatal("double removal accepted")
	}
	if err := e.RemoveDoc(99); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	res := e.Run()
	if res.Ranks[3] != 0 {
		t.Fatalf("removed doc regained rank %v", res.Ranks[3])
	}
	// Its successor no longer receives 3's contribution.
	d := DefaultDamping
	if res.Ranks[4] > (1-d)+1e-6 {
		t.Fatalf("rank[4] = %v still includes deleted doc's mass", res.Ranks[4])
	}
}

func TestInsertThenRemoveRestoresRanks(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 33))
	e, _ := setup(t, g, 10, Options{Epsilon: 1e-10}, 17)
	base := e.Run()
	before := make([]float64, len(base.Ranks))
	copy(before, base.Ranks)

	// Insert a doc, converge, then logically retract it by sending the
	// negated contributions (what RemoveDoc would do for a real doc).
	targets := []graph.NodeID{1, 2}
	if err := e.InsertDoc(0, targets); err != nil {
		t.Fatal(err)
	}
	e.Run()
	share := DefaultDamping * (1 - DefaultDamping) / float64(len(targets))
	for _, tgt := range targets {
		e.deliver(0, p2p.Update{Doc: tgt, Delta: -share})
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not reconverge")
	}
	for i := range before {
		if math.Abs(res.Ranks[i]-before[i]) > 1e-6 {
			t.Fatalf("rank[%d] not restored: %v vs %v", i, res.Ranks[i], before[i])
		}
	}
}
