package core

import (
	"fmt"
	"math"
	"slices"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/telemetry"
)

// PassStats describes one pass of the PassEngine.
type PassStats struct {
	Pass          int
	InterMsgs     int64   // network messages this pass
	IntraMsgs     int64   // same-peer updates this pass
	Redelivered   int64   // retry-queue messages delivered this pass
	MaxChange     float64 // largest relative rank change observed
	ProcessedDocs int     // documents visited by this pass's compute phase
	PendingDocs   int     // documents with unprocessed mass after the pass
	DeferredQueue int     // retry-queue depth after the pass
	OnlinePeers   int
}

// Result reports a finished distributed computation.
type Result struct {
	Ranks     []float64
	Passes    int
	Converged bool
	Counters  p2p.Counters
}

// PassEngine runs the distributed pagerank algorithm with the paper's
// simulation semantics (section 4.2): per pass, every online peer
// processes its documents using values from the previous pass,
// messages are delivered instantaneously at the pass boundary, and
// peers may churn between passes. Documents on absent peers neither
// compute nor receive; updates destined to them wait in the sender-side
// retry queue (section 3.1).
type PassEngine struct {
	st    *state
	net   *p2p.Network
	churn *p2p.Churn
	retry *p2p.RetryQueue

	// cur is the serial paths' adjacency read cursor (push, maybeInit,
	// FlushPending). Chunk workers carry their own in chunkScratch; this
	// one is only touched from the engine's calling goroutine.
	cur graph.LinkCursor

	incoming    []float64 // deltas awaiting the next pass
	dirty       []bool
	initialized []bool
	removed     []bool // deleted documents drop incoming messages

	// dirtyShard[s] lists the dirty documents owned by merge shard s
	// (doc >> shardShift), in first-touch order. Sharding lets the merge
	// phase append lock-free; concatenating the shards in order yields
	// the next pass's work list, independent of the worker count.
	dirtyShard [mergeShards][]graph.NodeID

	// shardShift/shardCount define range sharding: shard s owns the
	// contiguous document range [s<<shardShift, (s+1)<<shardShift).
	// Recomputed when the document range grows; fixed within a pass.
	shardShift uint
	shardCount int

	// pipe holds the sharded pass pipeline's reusable scratch.
	pipe pipeline

	counters      p2p.Counters
	pass          int
	uninitialized int

	// OnPass, when non-nil, runs after every pass with that pass's
	// statistics; returning false stops the computation early.
	OnPass func(PassStats) bool

	// Sink, when non-nil, receives per-pass telemetry: the residual
	// (max |rank change|) and throughput histograms plus pass-boundary
	// trace events. The engine calls it from RunPass only, so a
	// single sink must not be shared between concurrently running
	// engines.
	Sink *telemetry.PassSink

	// Router, when non-nil, prices the network path of every
	// inter-peer message (section 3.2: DHT-routed on first contact,
	// direct once the address is cached). Hops accumulate in
	// Counters().RoutedHops.
	Router p2p.Router

	passInter, passIntra, passRedelivered int64
	passMaxChange                         float64
}

// NewPassEngine creates an engine over graph g with documents already
// placed on net. churn may be nil for a fully available network.
func NewPassEngine(g graph.Linker, net *p2p.Network, churn *p2p.Churn, opt Options) (*PassEngine, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.checkTeleport(g.NumNodes()); err != nil {
		return nil, err
	}
	for d := 0; d < g.NumNodes(); d++ {
		if net.PeerOf(graph.NodeID(d)) == p2p.NoPeer {
			return nil, fmt.Errorf("core: document %d is not placed on any peer", d)
		}
	}
	n := g.NumNodes()
	e := &PassEngine{
		st:          newState(g, opt),
		cur:         graph.CursorFor(g),
		net:         net,
		churn:       churn,
		retry:       p2p.NewRetryQueue(),
		incoming:    make([]float64, n),
		dirty:       make([]bool, n),
		initialized: make([]bool, n),
		removed:     make([]bool, n),
	}
	e.uninitialized = n
	e.setShardRange(n)
	// Pre-size the pipeline's first-pass hot buffers: the shard dirty
	// lists together span all documents, and the work list snapshot can
	// hold all of them. This front-loads ~shardCount allocations that
	// append-doubling would otherwise repay on every fresh engine.
	width := 1 << e.shardShift
	for s := 0; s < e.shardCount; s++ {
		c := width
		if rem := n - s*width; rem < c {
			c = rem
		}
		e.dirtyShard[s] = make([]graph.NodeID, 0, c)
	}
	e.pipe.work = make([]graph.NodeID, 0, n)
	return e, nil
}

// setShardRange fits the fixed shard array over n documents: the
// smallest power-of-two range width such that mergeShards shards cover
// everything. Documents appended to a shard list under an older (finer)
// mapping are still drained by the next work-list snapshot, which walks
// every list regardless of the current mapping.
func (e *PassEngine) setShardRange(n int) {
	shift := uint(0)
	for n > mergeShards<<shift {
		shift++
	}
	e.shardShift = shift
	e.shardCount = (n + (1 << shift) - 1) >> shift
	if e.shardCount < 1 {
		e.shardCount = 1
	}
}

// Ranks returns the current rank estimates (live view; copy before
// mutating the engine further).
func (e *PassEngine) Ranks() []float64 { return e.st.rank }

// Pass returns the number of passes executed so far.
func (e *PassEngine) Pass() int { return e.pass }

// Counters exposes the accumulated message statistics.
func (e *PassEngine) Counters() p2p.Counters { return e.counters }

// RetryQueueLen returns the current sender-side deferred-message count.
func (e *PassEngine) RetryQueueLen() int { return e.retry.Len() }

// deliver routes one update from a peer: free within the peer, a
// counted network message across peers, deferred when the destination
// peer is absent.
func (e *PassEngine) deliver(fromPeer p2p.PeerID, u p2p.Update) {
	if e.removed[u.Doc] {
		return
	}
	destPeer := e.net.PeerOf(u.Doc)
	switch {
	case destPeer == fromPeer:
		e.passIntra++
		e.applyIncoming(u)
	case e.net.Online(destPeer):
		e.passInter++
		if e.Router != nil {
			e.counters.RoutedHops += int64(e.Router.Hops(fromPeer, u.Doc))
		}
		e.applyIncoming(u)
	default:
		e.counters.Deferred++
		e.retry.Defer(destPeer, u)
	}
}

func (e *PassEngine) applyIncoming(u p2p.Update) {
	e.incoming[u.Doc] += u.Delta
	if !e.dirty[u.Doc] {
		e.dirty[u.Doc] = true
		s := int(u.Doc) >> e.shardShift
		e.dirtyShard[s] = append(e.dirtyShard[s], u.Doc)
	}
}

// pendingDocs counts documents with unprocessed incoming mass.
func (e *PassEngine) pendingDocs() int {
	n := 0
	for s := range e.dirtyShard {
		n += len(e.dirtyShard[s])
	}
	return n
}

// push propagates document d's unsent rank change to its out-links.
func (e *PassEngine) push(d graph.NodeID) {
	links := e.cur.OutLinks(d)
	if len(links) == 0 {
		e.st.markPushed(d)
		return
	}
	share := e.st.share(d, e.st.pendingDelta(d))
	if share == 0 {
		e.st.markPushed(d)
		return
	}
	fromPeer := e.net.PeerOf(d)
	for _, t := range links {
		e.deliver(fromPeer, p2p.Update{Doc: t, Delta: share})
	}
	e.st.markPushed(d)
}

// RunPass executes one pass and returns its statistics.
func (e *PassEngine) RunPass() PassStats {
	e.pass++
	e.passInter, e.passIntra, e.passRedelivered, e.passMaxChange = 0, 0, 0, 0
	if e.Sink != nil {
		e.Sink.PassStart(e.pass, e.pendingDocs())
	}
	if e.churn != nil {
		e.churn.Step()
	}

	// Absent peers returned: deliver their queued updates first, so
	// this pass's computation sees them (they were sent in an earlier
	// pass).
	e.passRedelivered = int64(e.retry.DrainOnline(e.net, func(dest p2p.PeerID, u p2p.Update) {
		if e.removed[u.Doc] {
			return
		}
		e.passInter++
		e.applyIncoming(u)
	}))

	// Snapshot the work list before any sends this pass: messages
	// generated below (initial pushes and propagation) are delivered
	// at the pass boundary, i.e. processed next pass. Redelivered
	// retry traffic above was sent in an earlier pass, so it is
	// visible now. The list is rebuilt in ascending document order
	// into a pass-reused buffer: chunk workers then sweep adjacency in
	// document order, so block-decoding cursors (internal/csr)
	// amortize one decode across every dirty document in a block
	// instead of re-decoding per seek, and the plain representation
	// gets sequential access too. Dense passes (the common early ones)
	// read the order straight off the dirty flags with one sequential
	// scan; sparse passes sort the per-shard lists, whose shard-major
	// concatenation is the same ascending order. Both are
	// deterministic and worker-count independent, so the determinism
	// contract is unaffected.
	work := e.pipe.work[:0]
	if e.pendingDocs() >= len(e.dirty)/16 {
		for d, isDirty := range e.dirty {
			if isDirty {
				work = append(work, graph.NodeID(d))
			}
		}
		for s := range e.dirtyShard {
			e.dirtyShard[s] = e.dirtyShard[s][:0]
		}
	} else {
		for s := range e.dirtyShard {
			slices.Sort(e.dirtyShard[s])
			work = append(work, e.dirtyShard[s]...)
			e.dirtyShard[s] = e.dirtyShard[s][:0]
		}
	}
	e.pipe.work = work

	// Documents appearing for the first time push their starting
	// rank; docs whose peer was offline initialize when they first
	// show up online.
	// (Bounded by the engine's attached documents, not the topology:
	// a dynamic topology may briefly hold nodes awaiting
	// AttachDocument.)
	if e.uninitialized > 0 {
		for d := 0; d < len(e.initialized); d++ {
			if !e.initialized[d] {
				e.maybeInit(graph.NodeID(d))
			}
		}
	}
	// Process accumulated mass: compute every snapshot document's new
	// rank, collecting the resulting update messages, then deliver
	// them all at the pass boundary — so no document ever consumes a
	// message sent within the same pass (the paper's instantaneous-
	// delivery-between-passes model). The same collect-then-merge path
	// serves one worker or many; results are identical either way.
	e.runPassParallel(work, defaultWorkers(e.st.opt.Workers))

	e.counters.InterPeerMsgs += e.passInter
	e.counters.IntraPeerMsgs += e.passIntra
	e.counters.Redelivered += e.passRedelivered
	e.counters.Passes = e.pass
	if e.Sink != nil {
		e.Sink.RecordPass(e.pass, e.passMaxChange, len(work), e.retry.Len())
	}
	return PassStats{
		Pass:          e.pass,
		InterMsgs:     e.passInter,
		IntraMsgs:     e.passIntra,
		Redelivered:   e.passRedelivered,
		MaxChange:     e.passMaxChange,
		ProcessedDocs: len(work),
		PendingDocs:   e.pendingDocs(),
		DeferredQueue: e.retry.Len(),
		OnlinePeers:   e.net.NumOnline(),
	}
}

// maybeInit performs a document's very first action: pushing its
// starting rank (1-d, the no-in-links fixed point) to its out-links,
// if its peer is present.
func (e *PassEngine) maybeInit(d graph.NodeID) {
	if e.initialized[d] || e.removed[d] || !e.net.DocOnline(d) {
		return
	}
	e.initialized[d] = true
	e.uninitialized--
	e.push(d) // pendingDelta is the full starting rank (1-d)
}

// FlushPending re-evaluates every document's un-propagated rank delta
// against the engine's current threshold and pushes those that exceed
// it. After restoring a checkpoint taken at a looser epsilon, this is
// what resumes refinement: the sub-threshold residuals the loose run
// was allowed to keep become super-threshold under the tighter one.
// It returns the number of documents that pushed.
func (e *PassEngine) FlushPending() int {
	pushed := 0
	for d := 0; d < e.st.g.NumNodes(); d++ {
		id := graph.NodeID(d)
		if e.removed[d] || !e.initialized[d] {
			continue
		}
		if e.st.pendingDelta(id) != 0 && e.st.exceeds(e.st.last[d], e.st.rank[d]) {
			e.push(id)
			pushed++
		}
	}
	e.counters.InterPeerMsgs += e.passInter
	e.counters.IntraPeerMsgs += e.passIntra
	e.passInter, e.passIntra = 0, 0
	return pushed
}

// Converged reports whether the computation has quiesced: every
// live document initialized, no pending mass, and no deferred
// messages. (Removing a document counts it as initialized.)
func (e *PassEngine) Converged() bool {
	return e.pendingDocs() == 0 && e.retry.Len() == 0 && e.uninitialized == 0
}

// Run executes passes until convergence or until MaxPass passes have
// run in this invocation, returning the final ranks and statistics.
// Each Run call gets a fresh pass budget, so a computation resumed
// after churn recovery or incremental document changes is never
// starved by earlier passes.
func (e *PassEngine) Run() Result {
	start := e.pass
	for e.pass-start < e.st.opt.MaxPass {
		stats := e.RunPass()
		if e.OnPass != nil && !e.OnPass(stats) {
			break
		}
		if e.Converged() {
			break
		}
	}
	return Result{
		Ranks:     e.st.rank,
		Passes:    e.pass,
		Converged: e.Converged(),
		Counters:  e.counters,
	}
}

func relChange(old, new float64) float64 {
	denom := math.Abs(new)
	if denom == 0 {
		denom = 1
	}
	return math.Abs(new-old) / denom
}
