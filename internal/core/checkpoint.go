package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dpr/internal/graph"
)

// Checkpointing lets a long-lived network persist its converged state:
// the paper's motivation is *continuously accurate* pageranks, so a
// peer restarting should resume from the last fixed point instead of
// recomputing from scratch. A checkpoint captures every document's
// rank, accumulator, last-pushed value and liveness; restoring into an
// engine over the same graph resumes exactly where the computation
// left off (pending un-pushed deltas included).

const (
	checkpointMagic   = "DPRC"
	checkpointVersion = 1
)

// WriteCheckpoint serializes the engine's document state. The engine
// should be quiescent (between passes); mid-pass incoming mass is
// folded into the accumulators so nothing is lost.
func (e *PassEngine) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	n := e.st.g.NumNodes()
	hdr := []uint64{checkpointVersion, uint64(n), math.Float64bits(e.st.opt.Damping),
		math.Float64bits(e.st.opt.Epsilon)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for d := 0; d < n; d++ {
		// Fold any undelivered incoming mass so the checkpoint is
		// self-contained.
		acc := e.st.acc[d] + e.incoming[d]
		var flags uint8
		if e.initialized[d] {
			flags |= 1
		}
		if e.removed[d] {
			flags |= 2
		}
		if e.dirty[d] {
			flags |= 4
		}
		fields := []uint64{
			math.Float64bits(e.st.rank[d]),
			math.Float64bits(acc),
			math.Float64bits(e.st.last[d]),
		}
		for _, v := range fields {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RestoreCheckpoint loads state written by WriteCheckpoint into this
// engine. The engine must be over a graph with the same node count;
// damping must match (epsilon may differ — tightening the threshold
// on a restored state resumes refinement, which is the expected
// workflow).
func (e *PassEngine) RestoreCheckpoint(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	var version, n, dampingBits, epsBits uint64
	for _, p := range []*uint64{&version, &n, &dampingBits, &epsBits} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return fmt.Errorf("core: reading checkpoint header: %w", err)
		}
	}
	if version != checkpointVersion {
		return fmt.Errorf("core: unsupported checkpoint version %d", version)
	}
	if int(n) != e.st.g.NumNodes() {
		return fmt.Errorf("core: checkpoint has %d documents, graph has %d", n, e.st.g.NumNodes())
	}
	if d := math.Float64frombits(dampingBits); d != e.st.opt.Damping {
		return fmt.Errorf("core: checkpoint damping %v != engine damping %v", d, e.st.opt.Damping)
	}
	for s := range e.dirtyShard {
		e.dirtyShard[s] = e.dirtyShard[s][:0]
	}
	e.uninitialized = 0
	buf := make([]byte, 25)
	for d := 0; d < int(n); d++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("core: reading checkpoint document %d: %w", d, err)
		}
		e.st.rank[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		e.st.acc[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		e.st.last[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
		flags := buf[24]
		e.initialized[d] = flags&1 != 0
		e.removed[d] = flags&2 != 0
		e.incoming[d] = 0
		e.dirty[d] = flags&4 != 0
		if e.dirty[d] {
			s := d >> e.shardShift
			e.dirtyShard[s] = append(e.dirtyShard[s], graph.NodeID(d))
		}
		if !e.initialized[d] {
			e.uninitialized++
		}
		e.st.started[d] = e.initialized[d]
	}
	return nil
}
