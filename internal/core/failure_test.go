package core

import (
	"math"
	"testing"
	"testing/quick"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

func TestPeerThatNeverReturnsBlocksConvergence(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 91))
	net := p2p.NewNetwork(10)
	net.AssignRandom(g, rng.New(1))
	e, err := NewPassEngine(g, net, nil, Options{MaxPass: 50})
	if err != nil {
		t.Fatal(err)
	}
	net.SetOnline(0, false) // down before the computation starts, forever
	res := e.Run()
	if res.Converged {
		t.Fatal("claimed convergence with a permanently absent peer")
	}
	if res.Passes != 50 {
		t.Fatalf("ran %d passes, want MaxPass 50", res.Passes)
	}
	// Every update destined to the dead peer is preserved, not lost.
	if e.RetryQueueLen() == 0 {
		t.Fatal("no messages queued for the dead peer")
	}
	if res.Counters.Deferred == 0 {
		t.Fatal("no deferrals counted")
	}
	// The peer finally returns: the computation completes and the
	// result is exactly the reference.
	net.SetOnline(0, true)
	res2 := e.Run()
	if !res2.Converged {
		t.Fatal("did not converge after peer returned")
	}
	want := reference(t, g)
	// Default epsilon bounds the residual error.
	if err := maxRelErr(res2.Ranks, want); err > 0.05 {
		t.Fatalf("post-recovery error %v", err)
	}
}

func TestInterleavedChangesUnderChurn(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 92))
	net := p2p.NewNetwork(20)
	net.AssignRandom(g, rng.New(2))
	churn, err := p2p.NewChurn(net, 0.7, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewPassEngine(g, net, churn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := e.Run(); !res.Converged {
		t.Fatal("initial convergence failed")
	}
	// Interleave inserts, deletes and passes.
	if err := e.InsertDoc(3, []graph.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	e.RunPass()
	if err := e.RemoveDoc(50); err != nil {
		t.Fatal(err)
	}
	e.RunPass()
	if err := e.InsertDoc(7, []graph.NodeID{100}); err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not reconverge after interleaved changes")
	}
	if res.Ranks[50] != 0 {
		t.Fatal("deleted doc still ranked")
	}
	for i, r := range res.Ranks {
		if i != 50 && r < (1-DefaultDamping)-1e-9 {
			t.Fatalf("rank[%d] = %v below floor", i, r)
		}
	}
}

func TestChurnEveryPassStillMatchesReference(t *testing.T) {
	// Extreme churn (30% availability) with a tight threshold still
	// lands on the solver's fixed point.
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(600, 93))
	net := p2p.NewNetwork(30)
	net.AssignRandom(g, rng.New(4))
	churn, err := p2p.NewChurn(net, 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewPassEngine(g, net, churn, Options{Epsilon: 1e-9, MaxPass: 50000})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not converge at 30% availability")
	}
	want := reference(t, g)
	if err := maxRelErr(res.Ranks, want); err > 1e-5 {
		t.Fatalf("extreme-churn error %v", err)
	}
}

// Property: for random graphs, peer counts and thresholds, the engine
// converges and its worst-case relative error is proportional to the
// threshold.
func TestEngineAccuracyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(300)
		g, err := graph.GeneratePowerLaw(graph.DefaultPowerLawConfig(n, seed))
		if err != nil {
			return false
		}
		peers := 1 + r.Intn(20)
		epsChoices := []float64{1e-2, 1e-4, 1e-6}
		eps := epsChoices[r.Intn(len(epsChoices))]
		net := p2p.NewNetwork(peers)
		net.AssignRandom(g, r)
		e, err := NewPassEngine(g, net, nil, Options{Epsilon: eps})
		if err != nil {
			return false
		}
		res := e.Run()
		if !res.Converged {
			return false
		}
		ref, err := solver.Power(g, solver.Config{Tol: 1e-13})
		if err != nil || !ref.Converged {
			return false
		}
		worst := maxRelErrSlices(res.Ranks, ref.Ranks)
		// Error scales with eps; 100x slack covers mass amplification
		// through 1/(1-d) and accumulation across in-links.
		return worst <= 100*eps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func maxRelErrSlices(got, want []float64) float64 {
	worst := 0.0
	for i := range got {
		denom := math.Abs(want[i])
		if denom == 0 {
			denom = 1
		}
		if e := math.Abs(got[i]-want[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}

// Property: rank mass is conserved under churn — deferred messages are
// eventually delivered, never dropped, for any availability level.
func TestNoMassLossUnderChurnProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(200)
		g := graph.Random(n, 2, seed) // uniform out-degree 2: rank sum == n at fixpoint
		peers := 2 + r.Intn(10)
		avail := 0.4 + 0.6*r.Float64()
		net := p2p.NewNetwork(peers)
		net.AssignRandom(g, r)
		churn, err := p2p.NewChurn(net, avail, r.Split(1))
		if err != nil {
			return false
		}
		e, err := NewPassEngine(g, net, churn, Options{Epsilon: 1e-8, MaxPass: 100000})
		if err != nil {
			return false
		}
		res := e.Run()
		if !res.Converged {
			return false
		}
		if res.Counters.Deferred != res.Counters.Redelivered {
			return false // a message vanished
		}
		sum := 0.0
		for _, v := range res.Ranks {
			sum += v
		}
		return math.Abs(sum-float64(n)) < 1e-3*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
