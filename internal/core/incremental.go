package core

import (
	"fmt"
	"math"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// InsertDoc integrates a freshly inserted document into a running
// computation (section 3.1): the new document immediately sends
// update messages to its out-links. A new document cannot yet have
// in-links (its row in the A matrix is all zeros), so its rank is
// exactly 1-d and that is the value whose contributions enter the
// system; the increments then propagate on subsequent passes. The new
// document itself lives outside the engine's graph.
func (e *PassEngine) InsertDoc(onPeer p2p.PeerID, outlinks []graph.NodeID) error {
	if len(outlinks) == 0 {
		return nil
	}
	for _, t := range outlinks {
		if t < 0 || int(t) >= e.st.g.NumNodes() {
			return fmt.Errorf("core: InsertDoc out-link %d outside graph", t)
		}
	}
	newDocRank := 1 - e.st.opt.Damping
	share := e.st.opt.Damping * newDocRank / float64(len(outlinks))
	for _, t := range outlinks {
		e.deliver(onPeer, p2p.Update{Doc: t, Delta: share})
	}
	e.counters.InterPeerMsgs += e.passInter
	e.counters.IntraPeerMsgs += e.passIntra
	e.passInter, e.passIntra = 0, 0
	return nil
}

// RemoveDoc deletes document d (section 3.1): an update with the
// negated pagerank contribution goes to every out-link, the document
// stops receiving messages, and the system re-converges on later
// passes.
func (e *PassEngine) RemoveDoc(d graph.NodeID) error {
	if d < 0 || int(d) >= e.st.g.NumNodes() {
		return fmt.Errorf("core: RemoveDoc %d outside graph", d)
	}
	if e.removed[d] {
		return fmt.Errorf("core: document %d already removed", d)
	}
	// Retract everything this document has contributed so far.
	retract := -e.st.last[d]
	if retract != 0 {
		share := e.st.share(d, retract)
		fromPeer := e.net.PeerOf(d)
		for _, t := range e.st.g.OutLinks(d) {
			e.deliver(fromPeer, p2p.Update{Doc: t, Delta: share})
		}
	}
	e.removed[d] = true
	if !e.initialized[d] {
		e.initialized[d] = true
		e.uninitialized--
	}
	e.st.rank[d] = 0
	e.st.last[d] = 0
	e.st.acc[d] = 0
	e.incoming[d] = 0
	e.counters.InterPeerMsgs += e.passInter
	e.counters.IntraPeerMsgs += e.passIntra
	e.passInter, e.passIntra = 0, 0
	return nil
}

// Removed reports whether document d has been deleted.
func (e *PassEngine) Removed(d graph.NodeID) bool { return e.removed[d] }

// PropagationResult measures how far a single document insert's rank
// increments travel, the metrics of the paper's Table 4.
type PropagationResult struct {
	PathLength int   // hops traversed by the deepest message sent
	Coverage   int   // distinct documents that received a message
	Messages   int64 // total update messages generated
}

// MeasureInsertPropagation performs the paper's section 4.7
// experiment: a document with pagerank `initial` is inserted with one
// out-link to start's position — equivalently, start's rank is bumped
// by the initial value — and the resulting increments fan out along
// out-links, each hop multiplying by damping/outdeg, until increments
// fall below eps and no more messages are generated.
//
// The wave is level-synchronous: increments arriving at the same node
// in the same hop merge before forwarding, exactly like messages
// landing within one pass. Coverage counts distinct documents that
// received at least one message; path length is the hop index of the
// last message sent.
func MeasureInsertPropagation(g graph.Linker, start graph.NodeID, initial, damping, eps float64) PropagationResult {
	if damping <= 0 || damping > 1 {
		panic(fmt.Sprintf("core: damping %v outside (0,1]", damping))
	}
	if eps <= 0 {
		panic("core: eps must be positive")
	}
	res := PropagationResult{}
	covered := make(map[graph.NodeID]struct{})
	cur := graph.CursorFor(g)
	// current holds per-document increments at this hop depth.
	current := map[graph.NodeID]float64{start: initial}
	depth := 0
	for len(current) > 0 {
		depth++
		next := make(map[graph.NodeID]float64)
		sent := false
		for d, inc := range current {
			if math.Abs(inc) <= eps {
				continue // below threshold: no further messages
			}
			links := cur.OutLinks(d)
			if len(links) == 0 {
				continue
			}
			share := damping * inc / float64(len(links))
			for _, t := range links {
				next[t] += share
				covered[t] = struct{}{}
				res.Messages++
				sent = true
			}
		}
		if sent {
			res.PathLength = depth
		}
		current = next
	}
	res.Coverage = len(covered)
	return res
}
