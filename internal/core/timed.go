package core

import (
	"fmt"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/simnet"
)

// TimedEngine replays the chaotic iteration on a discrete-event
// network simulation with real message timing: per-peer uplinks with
// finite bandwidth and latency, serialized transmission (the paper's
// Equation 4 assumption), per-update compute cost, and per-destination
// batching ("the peers collect together all the pagerank messages for
// each other generated during one pass into a single message"). The
// run ends when the event queue drains — natural quiescence — and the
// simulated clock then reads the computation's execution time, the
// quantity the paper could only estimate analytically.
//
// A reproduction insight: fine-grained asynchrony inflates the message
// count. When a hub document's in-link mass arrives staggered across
// many network deliveries, each sufficiently large piece triggers its
// own recompute-and-push, where the pass-synchronized engine folds
// them into one update per pass. The ProcessInterval coalescing window
// trades latency for message economy — the paper's per-pass batching
// assumption is exactly the limit of a long window, and its absence is
// why a naive per-message implementation would drown; see
// EXPERIMENTS.md.
type TimedEngine struct {
	st  *state
	net *p2p.Network
	opt TimedOptions

	// cur is the adjacency read cursor; the event loop is single-
	// threaded, so one cursor serves every simulated peer.
	cur graph.LinkCursor

	sim     simnet.Sim
	uplinks []*simnet.Uplink
	peers   []timedPeer

	interMsgs, intraMsgs int64
}

// timedPeer is one peer's event-loop state: an inbox coalescing all
// updates that arrive while the peer is between processing ticks.
// Without coalescing, every single update would trigger its own
// recompute-and-push and the fine-grained cascade would blow up
// combinatorially; with it, the timed engine matches the behaviour of
// a real event-loop peer (and of the paper's per-pass batching).
type timedPeer struct {
	inbox     []p2p.Update
	scheduled bool
}

// TimedOptions extends Options with the network/compute cost model.
type TimedOptions struct {
	Options

	// Bandwidth is each peer's uplink rate in bytes/second.
	// 0 means the paper's conservative 32 KB/s.
	Bandwidth float64

	// Latency is the per-message propagation delay. 0 means 50 ms
	// (a wide-area round trip's worth); use a negative value for a
	// true zero-latency network.
	Latency time.Duration

	// ComputePerUpdate is the processing cost of one received update.
	// 0 means 1 microsecond; negative means free.
	ComputePerUpdate time.Duration

	// BatchHeaderBytes is the fixed per-batch wire overhead.
	// 0 means 64 bytes; each update adds p2p.UpdateWireBytes (24).
	BatchHeaderBytes int64

	// ProcessInterval is how often a peer's event loop drains its
	// inbox; arrivals within a tick coalesce into one recompute.
	// 0 means 10 ms; negative means immediate (no coalescing —
	// exponentially more messages; only for tiny graphs).
	ProcessInterval time.Duration

	// MaxEvents aborts runaway simulations. 0 means unlimited.
	MaxEvents int64
}

func (o TimedOptions) withDefaults() TimedOptions {
	if o.Bandwidth == 0 {
		o.Bandwidth = 32 * 1024
	}
	if o.Latency == 0 {
		o.Latency = 50 * time.Millisecond
	}
	if o.Latency < 0 {
		o.Latency = 0
	}
	if o.ComputePerUpdate == 0 {
		o.ComputePerUpdate = time.Microsecond
	}
	if o.ComputePerUpdate < 0 {
		o.ComputePerUpdate = 0
	}
	if o.BatchHeaderBytes == 0 {
		o.BatchHeaderBytes = 64
	}
	if o.ProcessInterval == 0 {
		o.ProcessInterval = 10 * time.Millisecond
	}
	if o.ProcessInterval < 0 {
		o.ProcessInterval = 0
	}
	return o
}

// TimedResult extends Result with the simulation's timing outputs.
type TimedResult struct {
	Result
	SimulatedTime time.Duration // clock at quiescence
	Batches       int64         // peer-to-peer batch transmissions
	BytesSent     int64         // total wire bytes
	Events        int64         // simulator events fired
}

// NewTimedEngine builds a timed engine over placed documents.
func NewTimedEngine(g graph.Linker, net *p2p.Network, opt TimedOptions) (*TimedEngine, error) {
	opt.Options = opt.Options.withDefaults()
	if err := opt.Options.validate(); err != nil {
		return nil, err
	}
	if err := opt.Options.checkTeleport(g.NumNodes()); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if opt.Bandwidth < 0 {
		return nil, fmt.Errorf("core: negative bandwidth")
	}
	for d := 0; d < g.NumNodes(); d++ {
		if net.PeerOf(graph.NodeID(d)) == p2p.NoPeer {
			return nil, fmt.Errorf("core: document %d is not placed on any peer", d)
		}
	}
	e := &TimedEngine{st: newState(g, opt.Options), cur: graph.CursorFor(g), net: net, opt: opt}
	e.uplinks = make([]*simnet.Uplink, net.NumPeers())
	e.peers = make([]timedPeer, net.NumPeers())
	for i := range e.uplinks {
		e.uplinks[i] = &simnet.Uplink{Bandwidth: opt.Bandwidth, Latency: opt.Latency}
	}
	return e, nil
}

// Run executes the simulation to quiescence.
func (e *TimedEngine) Run() (TimedResult, error) {
	// At t=0 every peer pushes its documents' starting ranks.
	for p := 0; p < e.net.NumPeers(); p++ {
		peer := p2p.PeerID(p)
		e.sim.After(0, func() { e.initialPush(peer) })
	}
	end, err := e.sim.Run(e.opt.MaxEvents)
	if err != nil {
		return TimedResult{}, err
	}
	var bytes, batches int64
	for _, u := range e.uplinks {
		b, s, _ := u.Stats()
		bytes += b
		batches += s
	}
	return TimedResult{
		Result: Result{
			Ranks:     e.st.rank,
			Converged: true,
			Counters: p2p.Counters{
				InterPeerMsgs: e.interMsgs,
				IntraPeerMsgs: e.intraMsgs,
			},
		},
		SimulatedTime: end,
		Batches:       batches,
		BytesSent:     bytes,
		Events:        e.sim.Events(),
	}, nil
}

// initialPush emits every local document's starting contribution.
func (e *TimedEngine) initialPush(self p2p.PeerID) {
	out := make(map[p2p.PeerID][]p2p.Update)
	for _, d := range e.net.Docs(self) {
		e.collect(self, d, out)
	}
	e.transmit(self, out)
}

// handleBatch enqueues a delivered batch into the peer's inbox and
// arms the next processing tick if none is pending.
func (e *TimedEngine) handleBatch(self p2p.PeerID, batch []p2p.Update) {
	ps := &e.peers[self]
	ps.inbox = append(ps.inbox, batch...)
	if !ps.scheduled {
		ps.scheduled = true
		e.sim.After(e.opt.ProcessInterval, func() { e.processTick(self) })
	}
}

// processTick drains everything that arrived since the last tick, pays
// the compute cost, folds the coalesced mass, recomputes each touched
// document once, and pushes the results onward.
func (e *TimedEngine) processTick(self p2p.PeerID) {
	ps := &e.peers[self]
	batch := ps.inbox
	ps.inbox = nil
	ps.scheduled = false
	if len(batch) == 0 {
		return
	}
	compute := time.Duration(len(batch)) * e.opt.ComputePerUpdate
	e.sim.After(compute, func() {
		seen := make(map[graph.NodeID]struct{}, len(batch))
		dirty := make([]graph.NodeID, 0, len(batch))
		for _, u := range batch {
			e.st.acc[u.Doc] += u.Delta
			if _, dup := seen[u.Doc]; !dup {
				seen[u.Doc] = struct{}{}
				dirty = append(dirty, u.Doc)
			}
		}
		// Deterministic processing order (arrival order) keeps the
		// whole simulation reproducible bit for bit.
		out := make(map[p2p.PeerID][]p2p.Update)
		for _, d := range dirty {
			old, new := e.st.recompute(d)
			if e.st.exceeds(old, new) {
				e.collect(self, d, out)
			}
		}
		e.transmit(self, out)
	})
}

// collect batches document d's pending delta per destination peer.
func (e *TimedEngine) collect(self p2p.PeerID, d graph.NodeID, out map[p2p.PeerID][]p2p.Update) {
	links := e.cur.OutLinks(d)
	if len(links) == 0 {
		e.st.markPushed(d)
		return
	}
	share := e.st.share(d, e.st.pendingDelta(d))
	if share == 0 {
		e.st.markPushed(d)
		return
	}
	for _, t := range links {
		dest := e.net.PeerOf(t)
		out[dest] = append(out[dest], p2p.Update{Doc: t, Delta: share})
		if dest == self {
			e.intraMsgs++
		} else {
			e.interMsgs++
		}
	}
	e.st.markPushed(d)
}

// transmit ships each destination's batch: local batches cost only
// compute; remote batches serialize through the sender's uplink.
func (e *TimedEngine) transmit(self p2p.PeerID, out map[p2p.PeerID][]p2p.Update) {
	// Deterministic order over map keys.
	for dest := p2p.PeerID(0); int(dest) < e.net.NumPeers(); dest++ {
		batch := out[dest]
		if len(batch) == 0 {
			continue
		}
		if dest == self {
			d, b := dest, batch
			e.sim.After(0, func() { e.handleBatch(d, b) })
			continue
		}
		size := e.opt.BatchHeaderBytes + int64(len(batch))*p2p.UpdateWireBytes
		d, b := dest, batch
		e.uplinks[self].Send(&e.sim, size, func() { e.handleBatch(d, b) })
	}
}
