package core

import (
	"fmt"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

func TestParallelIdenticalToSerial(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(3000, 101))
	run := func(workers int) Result {
		net := p2p.NewNetwork(50)
		net.AssignRandom(g, rng.New(1))
		e, err := NewPassEngine(g, net, nil, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8, -1} {
		par := run(workers)
		if par.Passes != serial.Passes {
			t.Fatalf("workers=%d: %d passes vs serial %d", workers, par.Passes, serial.Passes)
		}
		if par.Counters.InterPeerMsgs != serial.Counters.InterPeerMsgs ||
			par.Counters.IntraPeerMsgs != serial.Counters.IntraPeerMsgs {
			t.Fatalf("workers=%d: counters %+v vs serial %+v",
				workers, par.Counters, serial.Counters)
		}
		for i := range serial.Ranks {
			if par.Ranks[i] != serial.Ranks[i] {
				t.Fatalf("workers=%d: rank[%d] %v vs serial %v",
					workers, i, par.Ranks[i], serial.Ranks[i])
			}
		}
	}
}

// TestDeterminismAcrossWorkers is the pipeline's core safety property:
// with churn re-drawing the online set every pass, a DHT-backed router
// pricing every inter-peer message, and the retry queue active, the
// engine must produce bit-identical ranks and identical counters for
// any worker count.
func TestDeterminismAcrossWorkers(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(10000, 301))
	run := func(workers int) Result {
		net := p2p.NewNetwork(100)
		net.AssignRandom(g, rng.New(7))
		churn, err := p2p.NewChurn(net, 0.7, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewPassEngine(g, net, churn, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		router, err := p2p.NewCachedRouter(100, true)
		if err != nil {
			t.Fatal(err)
		}
		e.Router = router
		return e.Run()
	}
	base := run(1)
	if !base.Converged {
		t.Fatal("serial run did not converge")
	}
	for _, workers := range []int{4, 8} {
		par := run(workers)
		if par.Passes != base.Passes || par.Converged != base.Converged {
			t.Fatalf("workers=%d: passes=%d converged=%v, serial passes=%d converged=%v",
				workers, par.Passes, par.Converged, base.Passes, base.Converged)
		}
		if par.Counters != base.Counters {
			t.Fatalf("workers=%d: counters diverge\n got %+v\nwant %+v",
				workers, par.Counters, base.Counters)
		}
		for i := range base.Ranks {
			if par.Ranks[i] != base.Ranks[i] {
				t.Fatalf("workers=%d: rank[%d] = %v, serial %v (not bit-identical)",
					workers, i, par.Ranks[i], base.Ranks[i])
			}
		}
	}
}

func TestParallelWithChurn(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1500, 102))
	want := reference(t, g)
	net := p2p.NewNetwork(25)
	net.AssignRandom(g, rng.New(2))
	churn, err := p2p.NewChurn(net, 0.6, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewPassEngine(g, net, churn, Options{Epsilon: 1e-8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("parallel engine did not converge under churn")
	}
	if err := maxRelErr(res.Ranks, want); err > 1e-4 {
		t.Fatalf("parallel churn error %v", err)
	}
}

// checkChunks verifies the structural invariants of a split: chunks
// are contiguous, non-empty, and cover the work list exactly.
func checkChunks(t *testing.T, work []graph.NodeID, chunks [][]graph.NodeID, n int) {
	t.Helper()
	if len(chunks) > n && n >= 1 {
		t.Fatalf("n=%d produced %d chunks", n, len(chunks))
	}
	total := 0
	next := 0
	for ci, c := range chunks {
		if len(c) == 0 {
			t.Fatalf("n=%d: chunk %d is empty", n, ci)
		}
		total += len(c)
		for _, v := range c {
			if v != work[next] {
				t.Fatalf("n=%d: chunks not contiguous at %d", n, next)
			}
			next++
		}
	}
	if total != len(work) {
		t.Fatalf("n=%d: covered %d of %d elements", n, total, len(work))
	}
}

func TestSplitChunks(t *testing.T) {
	uniform := func(graph.NodeID) int { return 1 }

	// Empty work: no chunks, regardless of n.
	if got := splitChunks(nil, 4, uniform); got != nil {
		t.Fatalf("empty work produced %d chunks", len(got))
	}
	if got := splitChunks([]graph.NodeID{}, 0, uniform); got != nil {
		t.Fatalf("empty work with n=0 produced %d chunks", len(got))
	}

	work := make([]graph.NodeID, 10)
	for i := range work {
		work[i] = graph.NodeID(i)
	}

	// One worker (and the n<1 degenerate) yields a single chunk.
	for _, n := range []int{1, 0, -3} {
		chunks := splitChunks(work, n, uniform)
		if len(chunks) != 1 || len(chunks[0]) != len(work) {
			t.Fatalf("n=%d: want one full chunk, got %d chunks", n, len(chunks))
		}
	}

	// More workers than documents: at most one chunk per document,
	// never an empty chunk.
	for _, n := range []int{10, 20, 1000} {
		chunks := splitChunks(work, n, uniform)
		checkChunks(t, work, chunks, n)
		if len(chunks) != len(work) {
			t.Fatalf("n=%d over %d docs: got %d chunks, want %d",
				n, len(work), len(chunks), len(work))
		}
	}

	// Uniform weights split near-evenly.
	for _, n := range []int{2, 3, 5} {
		chunks := splitChunks(work, n, uniform)
		checkChunks(t, work, chunks, n)
		for ci, c := range chunks {
			if len(c) > (len(work)+n-1)/n+1 {
				t.Fatalf("n=%d: uniform chunk %d has %d docs", n, ci, len(c))
			}
		}
	}
}

func TestSplitChunksDegreeWeighted(t *testing.T) {
	// A hub with the bulk of the edge weight must not drag other
	// documents into its chunk: degree-aware splitting isolates it.
	work := make([]graph.NodeID, 8)
	for i := range work {
		work[i] = graph.NodeID(i)
	}
	deg := func(d graph.NodeID) int {
		if d == 0 {
			return 1000 // the hub
		}
		return 1
	}
	chunks := splitChunks(work, 4, deg)
	checkChunks(t, work, chunks, 4)
	if len(chunks[0]) != 1 || chunks[0][0] != 0 {
		t.Fatalf("hub not isolated: first chunk %v", chunks[0])
	}

	// The remaining uniform documents still spread over the other
	// chunks instead of collapsing into one.
	if len(chunks) < 3 {
		t.Fatalf("light documents collapsed into %d chunks", len(chunks)-1)
	}

	// Weighted split is deterministic.
	again := splitChunks(work, 4, deg)
	if len(again) != len(chunks) {
		t.Fatalf("nondeterministic chunk count: %d vs %d", len(again), len(chunks))
	}
	for i := range chunks {
		if len(again[i]) != len(chunks[i]) {
			t.Fatalf("nondeterministic chunk %d: %d vs %d docs", i, len(again[i]), len(chunks[i]))
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if defaultWorkers(0) != 1 {
		t.Fatal("0 should mean serial")
	}
	if defaultWorkers(3) != 3 {
		t.Fatal("explicit count ignored")
	}
	if defaultWorkers(-1) < 1 {
		t.Fatal("negative should resolve to GOMAXPROCS")
	}
}

func BenchmarkPassEngineWorkers(b *testing.B) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(50000, 1))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer() // network + engine setup is not the pass pipeline
				net := p2p.NewNetwork(500)
				net.AssignRandom(g, rng.New(1))
				e, err := NewPassEngine(g, net, nil, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				e.Run()
			}
		})
	}
}
