package core

import (
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

func TestParallelIdenticalToSerial(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(3000, 101))
	run := func(workers int) Result {
		net := p2p.NewNetwork(50)
		net.AssignRandom(g, rng.New(1))
		e, err := NewPassEngine(g, net, nil, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8, -1} {
		par := run(workers)
		if par.Passes != serial.Passes {
			t.Fatalf("workers=%d: %d passes vs serial %d", workers, par.Passes, serial.Passes)
		}
		if par.Counters.InterPeerMsgs != serial.Counters.InterPeerMsgs ||
			par.Counters.IntraPeerMsgs != serial.Counters.IntraPeerMsgs {
			t.Fatalf("workers=%d: counters %+v vs serial %+v",
				workers, par.Counters, serial.Counters)
		}
		for i := range serial.Ranks {
			if par.Ranks[i] != serial.Ranks[i] {
				t.Fatalf("workers=%d: rank[%d] %v vs serial %v",
					workers, i, par.Ranks[i], serial.Ranks[i])
			}
		}
	}
}

func TestParallelWithChurn(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1500, 102))
	want := reference(t, g)
	net := p2p.NewNetwork(25)
	net.AssignRandom(g, rng.New(2))
	churn, err := p2p.NewChurn(net, 0.6, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewPassEngine(g, net, churn, Options{Epsilon: 1e-8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("parallel engine did not converge under churn")
	}
	if err := maxRelErr(res.Ranks, want); err > 1e-4 {
		t.Fatalf("parallel churn error %v", err)
	}
}

func TestSplitChunks(t *testing.T) {
	work := make([]graph.NodeID, 10)
	for i := range work {
		work[i] = graph.NodeID(i)
	}
	for _, n := range []int{1, 2, 3, 10, 20} {
		chunks := splitChunks(work, n)
		total := 0
		last := graph.NodeID(-1)
		for _, c := range chunks {
			total += len(c)
			for _, v := range c {
				if v != last+1 {
					t.Fatalf("n=%d: chunks not contiguous", n)
				}
				last = v
			}
		}
		if total != len(work) {
			t.Fatalf("n=%d: lost elements (%d)", n, total)
		}
	}
	if splitChunks(nil, 4) != nil {
		t.Fatal("empty work should produce no chunks")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if defaultWorkers(0) != 1 {
		t.Fatal("0 should mean serial")
	}
	if defaultWorkers(3) != 3 {
		t.Fatal("explicit count ignored")
	}
	if defaultWorkers(-1) < 1 {
		t.Fatal("negative should resolve to GOMAXPROCS")
	}
}

func BenchmarkPassEngineWorkers(b *testing.B) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(50000, 1))
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net := p2p.NewNetwork(500)
				net.AssignRandom(g, rng.New(1))
				e, err := NewPassEngine(g, net, nil, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				e.Run()
			}
		})
	}
}
