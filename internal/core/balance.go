package core

// Rank-mass conservation accounting for the engine seam
// (internal/engine): in the delta-push scheme every unit of mass a
// document j has ever shipped equals d*last[j] (last accumulates from
// 0 to the current rank, and each push ships d*(rank-last) spread over
// the out-links; dangling documents ship nothing). Every unit received
// sits in exactly one of: the folded accumulator, the not-yet-folded
// incoming buffer, or the sender-side retry queue. The two totals
// therefore agree up to float rounding at any pass boundary; a
// lost or duplicated update breaks the balance. This is the in-memory
// analogue of the wire layer's DeltaShipped == DeltaFolded audit.

// MassBalance returns the folded-side and shipped-side rank-mass
// accounts at a pass boundary. Exact bookkeeping keeps them equal up
// to float rounding (the property suite allows a relative 1e-9).
// Document removal intentionally drops in-flight mass, so the
// identity only holds for runs without deletes.
func (e *PassEngine) MassBalance() (folded, shipped float64) {
	for d := range e.incoming {
		folded += e.st.acc[d] + e.incoming[d]
	}
	folded += e.retry.Mass()
	for d := 0; d < e.st.g.NumNodes(); d++ {
		if e.st.g.OutDegree(int32(d)) > 0 {
			shipped += e.st.opt.Damping * e.st.last[d]
		}
	}
	return folded, shipped
}

// LastResidual returns the most recent pass's maximum relative rank
// change — the engine's convergence residual, the same quantity
// PassStats.MaxChange reports and the telemetry sink records.
func (e *PassEngine) LastResidual() float64 { return e.passMaxChange }

// MassBalance is the AsyncEngine's conservation audit. It is only
// meaningful at quiescence (after Run returns): mid-run, mass in
// mailboxes is on neither side of the ledger.
func (e *AsyncEngine) MassBalance() (folded, shipped float64) {
	for d := range e.st.acc {
		folded += e.st.acc[d]
	}
	for d := 0; d < e.st.g.NumNodes(); d++ {
		if e.st.g.OutDegree(int32(d)) > 0 {
			shipped += e.st.opt.Damping * e.st.last[d]
		}
	}
	return folded, shipped
}

// ProcessedDocs returns the cumulative number of document recomputes
// (plus initial pushes) the async run performed — the work unit the
// race harness normalizes into equivalent passes.
func (e *AsyncEngine) ProcessedDocs() int64 { return e.processed.Load() }

// Ranks returns the current rank estimates (live view). Only read it
// while no run is in flight.
func (e *AsyncEngine) Ranks() []float64 { return e.st.rank }
