package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 61))
	e, net := setup(t, g, 20, Options{Epsilon: 1e-8}, 1)
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := NewPassEngine(g, net, nil, Options{Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range res.Ranks {
		if restored.Ranks()[i] != res.Ranks[i] {
			t.Fatalf("rank[%d] differs after restore", i)
		}
	}
	// A restored converged state is quiescent: running produces no new
	// network messages.
	r2 := restored.Run()
	if !r2.Converged {
		t.Fatal("restored engine not converged")
	}
	if r2.Counters.InterPeerMsgs != 0 {
		t.Fatalf("restored converged engine sent %d messages", r2.Counters.InterPeerMsgs)
	}
}

func TestCheckpointResumeRefinement(t *testing.T) {
	// Converge loosely, checkpoint, restore with a tighter threshold:
	// refinement resumes from the stored state and lands on the exact
	// fixed point without recomputing from scratch.
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1500, 62))
	loose, net := setup(t, g, 25, Options{Epsilon: 1e-2}, 2)
	loose.Run()
	var buf bytes.Buffer
	if err := loose.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	tight, err := NewPassEngine(g, net, nil, Options{Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Resume refinement: the residual deltas the loose run was allowed
	// to keep are above the tighter threshold and must propagate.
	if tight.FlushPending() == 0 {
		t.Fatal("nothing to refine; loose checkpoint unexpectedly exact")
	}
	resumed := tight.Run()
	if !resumed.Converged {
		t.Fatal("refinement did not converge")
	}

	want := reference(t, g)
	if err := maxRelErr(resumed.Ranks, want); err > 1e-5 {
		t.Fatalf("refined ranks off by %v", err)
	}

	// And it is cheaper than computing from scratch at the tight
	// threshold.
	scratch, _ := setup(t, g, 25, Options{Epsilon: 1e-9}, 2)
	sres := scratch.Run()
	if resumed.Counters.InterPeerMsgs >= sres.Counters.InterPeerMsgs {
		t.Fatalf("resume (%d msgs) not cheaper than scratch (%d msgs)",
			resumed.Counters.InterPeerMsgs, sres.Counters.InterPeerMsgs)
	}
}

func TestCheckpointPreservesRemovalsAndPending(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 63))
	e, net := setup(t, g, 10, Options{Epsilon: 1e-6}, 3)
	e.Run()
	if err := e.RemoveDoc(7); err != nil {
		t.Fatal(err)
	}
	// Leave the retraction un-propagated: checkpoint mid-change.
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewPassEngine(g, net, nil, Options{Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !restored.Removed(7) {
		t.Fatal("removal flag lost")
	}
	res := restored.Run()
	if !res.Converged {
		t.Fatal("did not converge after restore")
	}
	if res.Ranks[7] != 0 {
		t.Fatal("removed doc regained rank after restore")
	}
	// The retraction that was pending at checkpoint time completes.
	finish := e.Run()
	for i := range finish.Ranks {
		if math.Abs(finish.Ranks[i]-res.Ranks[i]) > 1e-9 {
			t.Fatalf("restored run diverged from original at %d: %v vs %v",
				i, res.Ranks[i], finish.Ranks[i])
		}
	}
}

func TestCheckpointValidation(t *testing.T) {
	g := graph.Cycle(5)
	e, _ := setup(t, g, 2, Options{}, 4)
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Garbage and truncation rejected.
	for _, input := range []string{"", "NOPE", string(full[:10]), string(full[:len(full)-5])} {
		e2, _ := setup(t, g, 2, Options{}, 4)
		if err := e2.RestoreCheckpoint(strings.NewReader(input)); err == nil {
			t.Errorf("accepted corrupt checkpoint of length %d", len(input))
		}
	}
	// Wrong graph size rejected.
	other := graph.Cycle(6)
	net := p2p.NewNetwork(2)
	net.AssignRandom(other, rng.New(1))
	e3, err := NewPassEngine(other, net, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.RestoreCheckpoint(bytes.NewReader(full)); err == nil {
		t.Error("accepted checkpoint for different graph size")
	}
	// Wrong damping rejected.
	net2 := p2p.NewNetwork(2)
	net2.AssignRandom(g, rng.New(1))
	e4, err := NewPassEngine(g, net2, nil, Options{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e4.RestoreCheckpoint(bytes.NewReader(full)); err == nil {
		t.Error("accepted checkpoint with mismatched damping")
	}
}
