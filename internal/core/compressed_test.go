package core

import (
	"testing"

	"dpr/internal/csr"
	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

// runRanks converges a PassEngine over the given representation and
// returns its ranks and counters.
func runRanks(t *testing.T, g graph.Linker, workers int) ([]float64, p2p.Counters) {
	t.Helper()
	net := p2p.NewNetwork(25)
	net.AssignRandom(g, rng.New(77))
	e, err := NewPassEngine(g, net, nil, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	return res.Ranks, res.Counters
}

// TestCompressedRanksBitIdentical pins the substrate swap's core
// guarantee: the engine produces bit-for-bit identical ranks and
// message counters whether adjacency is read from the plain in-memory
// graph or decoded from the compressed CSR, serial or parallel. This
// holds because both representations expose the same sorted target
// lists, so every floating-point operation happens in the same order.
func TestCompressedRanksBitIdentical(t *testing.T) {
	cfg := graph.DefaultPowerLawConfig(20000, 21)
	plain, err := graph.GeneratePowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cg, _, err := csr.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRanks, refCounters := runRanks(t, plain, 1)
	for _, tc := range []struct {
		name    string
		g       graph.Linker
		workers int
	}{
		{"compressed serial", cg, 1},
		{"compressed parallel", cg, 4},
		{"plain parallel", plain, 4},
	} {
		ranks, counters := runRanks(t, tc.g, tc.workers)
		if counters != refCounters {
			t.Fatalf("%s: counters %+v, want %+v", tc.name, counters, refCounters)
		}
		for i := range ranks {
			if ranks[i] != refRanks[i] {
				t.Fatalf("%s: rank[%d] = %x, want %x (not bit-identical)",
					tc.name, i, ranks[i], refRanks[i])
			}
		}
	}
}
