package core

import (
	"testing"
	"time"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

func runTimed(t *testing.T, g *graph.Graph, peers int, topt TimedOptions, seed uint64) TimedResult {
	t.Helper()
	net := p2p.NewNetwork(peers)
	net.AssignRandom(g, rng.New(seed))
	e, err := NewTimedEngine(g, net, topt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimedEngineMatchesSolver(t *testing.T) {
	// The paper's operating point (eps=1e-3). Note that fine-grained
	// asynchrony inflates message counts relative to pass-synchronized
	// runs (staggered arrivals at hub documents trigger many small
	// pushes), so very tight thresholds are exercised on a small graph
	// in TestTimedEngineTightThreshold instead.
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 111))
	want := reference(t, g)
	res := runTimed(t, g, 16, TimedOptions{Options: Options{Epsilon: 1e-3}}, 1)
	if err := maxRelErr(res.Ranks, want); err > 0.05 {
		t.Fatalf("timed engine error %v", err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if res.BytesSent == 0 || res.Batches == 0 || res.Events == 0 {
		t.Fatalf("missing stats: %+v", res)
	}
}

func TestTimedEngineTightThreshold(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(200, 117))
	want := reference(t, g)
	res := runTimed(t, g, 4, TimedOptions{Options: Options{Epsilon: 1e-7}}, 7)
	if err := maxRelErr(res.Ranks, want); err > 1e-4 {
		t.Fatalf("tight-threshold timed error %v", err)
	}
}

func TestTimedEngineDeterministic(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(600, 112))
	a := runTimed(t, g, 8, TimedOptions{}, 2)
	b := runTimed(t, g, 8, TimedOptions{}, 2)
	if a.SimulatedTime != b.SimulatedTime || a.BytesSent != b.BytesSent ||
		a.Events != b.Events {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("rank[%d] differs", i)
		}
	}
}

func TestTimedEngineBandwidthScaling(t *testing.T) {
	// ~6x more bandwidth should shrink the transfer-bound completion
	// time substantially (the Table 3 32 vs 200 KB/s columns).
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 113))
	slow := runTimed(t, g, 50, TimedOptions{Bandwidth: 32 * 1024, Latency: -1}, 3)
	fast := runTimed(t, g, 50, TimedOptions{Bandwidth: 200 * 1024, Latency: -1}, 3)
	if fast.SimulatedTime >= slow.SimulatedTime {
		t.Fatalf("faster network not faster: %v vs %v", fast.SimulatedTime, slow.SimulatedTime)
	}
	ratio := float64(slow.SimulatedTime) / float64(fast.SimulatedTime)
	if ratio < 2 {
		t.Fatalf("bandwidth speedup only %.1fx; computation should be transfer-bound", ratio)
	}
}

func TestTimedEngineLatencyAddsTime(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 114))
	noLat := runTimed(t, g, 16, TimedOptions{Latency: -1}, 4)
	withLat := runTimed(t, g, 16, TimedOptions{Latency: 200 * time.Millisecond}, 4)
	if withLat.SimulatedTime <= noLat.SimulatedTime {
		t.Fatalf("latency did not slow completion: %v vs %v",
			withLat.SimulatedTime, noLat.SimulatedTime)
	}
}

func TestTimedEngineBatchingSavesBytes(t *testing.T) {
	// Batches amortize headers: total bytes must stay well under
	// one-header-per-message.
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1500, 115))
	res := runTimed(t, g, 10, TimedOptions{}, 5)
	perMsgWorstCase := res.Counters.InterPeerMsgs * (64 + p2p.UpdateWireBytes)
	if res.BytesSent >= perMsgWorstCase {
		t.Fatalf("batching saved nothing: %d bytes vs %d unbatched",
			res.BytesSent, perMsgWorstCase)
	}
	if res.Batches >= res.Counters.InterPeerMsgs {
		t.Fatalf("batches %d not fewer than messages %d", res.Batches, res.Counters.InterPeerMsgs)
	}
}

func TestTimedEngineSinglePeerInstantNetwork(t *testing.T) {
	// One peer: everything is local, no uplink traffic at all.
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(300, 116))
	res := runTimed(t, g, 1, TimedOptions{}, 6)
	if res.BytesSent != 0 || res.Counters.InterPeerMsgs != 0 {
		t.Fatalf("single peer used the network: %+v", res)
	}
	want := reference(t, g)
	// Default epsilon: coarse agreement.
	if err := maxRelErr(res.Ranks, want); err > 0.05 {
		t.Fatalf("single-peer error %v", err)
	}
}

func TestTimedEngineValidation(t *testing.T) {
	g := graph.Cycle(4)
	net := p2p.NewNetwork(2)
	net.AssignRandom(g, rng.New(1))
	if _, err := NewTimedEngine(g, net, TimedOptions{Options: Options{Damping: 5}}); err == nil {
		t.Fatal("accepted bad damping")
	}
	if _, err := NewTimedEngine(g, net, TimedOptions{Bandwidth: -3}); err == nil {
		t.Fatal("accepted negative bandwidth")
	}
	empty := p2p.NewNetwork(2)
	if _, err := NewTimedEngine(g, empty, TimedOptions{}); err == nil {
		t.Fatal("accepted unplaced docs")
	}
	// MaxEvents aborts rather than spinning.
	e, err := NewTimedEngine(g, net, TimedOptions{MaxEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("MaxEvents not enforced")
	}
}
