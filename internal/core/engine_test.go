package core

import (
	"math"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

// setup builds a graph, a peer network with random placement, and an
// engine over them.
func setup(t testing.TB, g *graph.Graph, peers int, opt Options, seed uint64) (*PassEngine, *p2p.Network) {
	t.Helper()
	net := p2p.NewNetwork(peers)
	net.AssignRandom(g, rng.New(seed))
	e, err := NewPassEngine(g, net, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e, net
}

// reference computes tightly converged centralized ranks.
func reference(t testing.TB, g *graph.Graph) []float64 {
	t.Helper()
	res, err := solver.Power(g, solver.Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ranks
}

func maxRelErr(got, want []float64) float64 {
	worst := 0.0
	for i := range got {
		denom := math.Abs(want[i])
		if denom == 0 {
			denom = 1
		}
		if e := math.Abs(got[i]-want[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}

func TestPassEngineCycleUniform(t *testing.T) {
	g := graph.Cycle(20)
	e, _ := setup(t, g, 4, Options{Epsilon: 1e-10}, 1)
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i, r := range res.Ranks {
		if math.Abs(r-1) > 1e-6 {
			t.Fatalf("rank[%d] = %v, want 1", i, r)
		}
	}
}

func TestPassEngineMatchesSolver(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(3000, 11))
	want := reference(t, g)
	e, _ := setup(t, g, 100, Options{Epsilon: 1e-9}, 2)
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if err := maxRelErr(res.Ranks, want); err > 1e-5 {
		t.Fatalf("max relative error vs solver = %v", err)
	}
}

func TestPassEngineFirstPassSendsAllLinks(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 3))
	e, _ := setup(t, g, 10, Options{}, 4)
	stats := e.RunPass()
	if stats.InterMsgs+stats.IntraMsgs != g.NumEdges() {
		t.Fatalf("pass 1 sent %d messages, want one per edge (%d)",
			stats.InterMsgs+stats.IntraMsgs, g.NumEdges())
	}
}

func TestPassEngineEpsilonTradeoff(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 12))
	want := reference(t, g)
	var prevMsgs int64 = -1
	var prevErr = -1.0
	for _, eps := range []float64{0.2, 1e-2, 1e-4, 1e-6} {
		e, _ := setup(t, g, 50, Options{Epsilon: eps}, 5)
		res := e.Run()
		if !res.Converged {
			t.Fatalf("eps=%v did not converge", eps)
		}
		msgs := res.Counters.InterPeerMsgs
		err := maxRelErr(res.Ranks, want)
		if prevMsgs >= 0 && msgs < prevMsgs {
			t.Fatalf("smaller eps produced fewer messages: %d < %d", msgs, prevMsgs)
		}
		if prevErr >= 0 && err > prevErr+1e-12 && err > 10*prevErr {
			t.Fatalf("smaller eps much less accurate: %v vs %v", err, prevErr)
		}
		prevMsgs, prevErr = msgs, err
	}
	// At the tightest threshold the answer is essentially exact.
	if prevErr > 1e-4 {
		t.Fatalf("eps=1e-6 error %v too large", prevErr)
	}
}

func TestPassEngineTable2Shape(t *testing.T) {
	// At the paper's recommended eps=1e-3 the bulk of documents are
	// within 1% of the true ranks (section 4.8).
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(5000, 13))
	want := reference(t, g)
	e, _ := setup(t, g, 500, Options{Epsilon: 1e-3}, 6)
	res := e.Run()
	within := 0
	for i := range res.Ranks {
		if math.Abs(res.Ranks[i]-want[i])/want[i] <= 0.01 {
			within++
		}
	}
	if frac := float64(within) / float64(len(want)); frac < 0.95 {
		t.Fatalf("only %.1f%% of docs within 1%% at eps=1e-3", frac*100)
	}
}

func TestPassEngineDeterministic(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 14))
	run := func() Result {
		e, _ := setup(t, g, 20, Options{}, 7)
		return e.Run()
	}
	a, b := run(), run()
	if a.Passes != b.Passes || a.Counters.InterPeerMsgs != b.Counters.InterPeerMsgs {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Counters, b.Counters)
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("rank[%d] differs between identical runs", i)
		}
	}
}

func TestPassEngineOnPassEarlyStop(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 15))
	e, _ := setup(t, g, 20, Options{Epsilon: 1e-8}, 8)
	calls := 0
	e.OnPass = func(s PassStats) bool {
		calls++
		return calls < 3
	}
	res := e.Run()
	if res.Passes != 3 || calls != 3 {
		t.Fatalf("early stop: passes=%d calls=%d", res.Passes, calls)
	}
	if res.Converged {
		t.Fatal("claimed convergence after forced stop")
	}
}

func TestPassEngineMaxPass(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 16))
	e, _ := setup(t, g, 20, Options{Epsilon: 1e-12, MaxPass: 2}, 9)
	res := e.Run()
	if res.Passes != 2 || res.Converged {
		t.Fatalf("MaxPass: passes=%d converged=%v", res.Passes, res.Converged)
	}
}

func TestPassEngineAbsoluteMode(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 17))
	want := reference(t, g)
	e, _ := setup(t, g, 20, Options{Epsilon: 1e-8, Absolute: true}, 10)
	res := e.Run()
	if !res.Converged {
		t.Fatal("absolute mode did not converge")
	}
	if err := maxRelErr(res.Ranks, want); err > 1e-4 {
		t.Fatalf("absolute mode error %v", err)
	}
}

func TestPassEngineOptionsValidation(t *testing.T) {
	g := graph.Cycle(4)
	net := p2p.NewNetwork(2)
	net.AssignRandom(g, rng.New(1))
	bad := []Options{
		{Damping: 2},
		{Damping: -1},
		{Epsilon: -0.5},
		{MaxPass: -2},
	}
	for i, opt := range bad {
		if _, err := NewPassEngine(g, net, nil, opt); err == nil {
			t.Errorf("case %d accepted %+v", i, opt)
		}
	}
	// Unplaced documents are rejected.
	empty := p2p.NewNetwork(2)
	if _, err := NewPassEngine(g, empty, nil, Options{}); err == nil {
		t.Error("accepted network with unplaced documents")
	}
}

func TestPassEngineSinglePeerAllIntra(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 18))
	e, _ := setup(t, g, 1, Options{}, 11)
	res := e.Run()
	if res.Counters.InterPeerMsgs != 0 {
		t.Fatalf("single peer produced %d network messages", res.Counters.InterPeerMsgs)
	}
	if res.Counters.IntraPeerMsgs == 0 {
		t.Fatal("no intra-peer updates at all")
	}
}

func TestPassEngineRanksLowerBounded(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 19))
	e, _ := setup(t, g, 50, Options{}, 12)
	res := e.Run()
	for i, r := range res.Ranks {
		if r < (1-DefaultDamping)-1e-9 {
			t.Fatalf("rank[%d] = %v below 1-d", i, r)
		}
	}
}
