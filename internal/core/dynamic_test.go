package core

import (
	"math"
	"testing"
	"testing/quick"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

// dynSetup builds an engine over a mutable copy of g.
func dynSetup(t testing.TB, g *graph.Graph, peers int, opt Options, seed uint64) (*PassEngine, *graph.Mutable, *p2p.Network) {
	t.Helper()
	m := graph.NewMutable(g)
	net := p2p.NewNetwork(peers)
	net.AssignRandom(g, rng.New(seed))
	e, err := NewPassEngine(m, net, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e, m, net
}

// solveSnapshot runs the centralized solver on the mutable topology's
// current snapshot.
func solveSnapshot(t testing.TB, m *graph.Mutable) []float64 {
	t.Helper()
	res, err := solver.Power(m.Snapshot(), solver.Config{Tol: 1e-13})
	if err != nil || !res.Converged {
		t.Fatalf("snapshot solver: %v", err)
	}
	return res.Ranks
}

func TestAttachDocumentReceivesLinksLater(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 151))
	e, m, _ := dynSetup(t, g, 10, Options{Epsilon: 1e-9}, 1)
	if res := e.Run(); !res.Converged {
		t.Fatal("initial convergence failed")
	}

	// A new document appears, linking to docs 1 and 2.
	id, err := m.AddNode([]graph.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AttachDocument(id, 3); err != nil {
		t.Fatal(err)
	}
	if res := e.Run(); !res.Converged {
		t.Fatal("post-attach convergence failed")
	}
	// The new doc has no in-links yet: rank = 1-d.
	if math.Abs(e.Ranks()[id]-(1-DefaultDamping)) > 1e-9 {
		t.Fatalf("new doc rank %v, want 1-d", e.Ranks()[id])
	}

	// Now an existing document is edited to link TO the new one — the
	// case the ghost-insert model cannot express.
	old := append([]graph.NodeID(nil), m.OutLinks(0)...)
	if _, err := m.AddLink(0, id); err != nil {
		t.Fatal(err)
	}
	if err := e.UpdateOutlinks(0, old); err != nil {
		t.Fatal(err)
	}
	if res := e.Run(); !res.Converged {
		t.Fatal("post-link convergence failed")
	}
	if e.Ranks()[id] <= 1-DefaultDamping {
		t.Fatalf("new doc rank %v did not rise after gaining an in-link", e.Ranks()[id])
	}

	// Full agreement with the centralized solver on the final topology.
	want := solveSnapshot(t, m)
	if err := maxRelErr(e.Ranks(), want); err > 1e-5 {
		t.Fatalf("dynamic ranks off by %v", err)
	}
}

func TestAttachDocumentValidation(t *testing.T) {
	g := graph.Cycle(4)
	e, m, _ := dynSetup(t, g, 2, Options{}, 2)
	e.Run()
	// Attach without topology mutation: rejected.
	if err := e.AttachDocument(4, 0); err == nil {
		t.Fatal("attached a document missing from the topology")
	}
	// Out-of-order attach rejected.
	if _, err := m.AddNode(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddNode(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachDocument(5, 0); err == nil {
		t.Fatal("attached out of order")
	}
	if err := e.AttachDocument(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachDocument(5, 0); err != nil {
		t.Fatal(err)
	}
	// Teleport engines cannot grow.
	tp := make([]float64, 4)
	tp[0] = 1
	g2 := graph.Cycle(4)
	m2 := graph.NewMutable(g2)
	net2 := p2p.NewNetwork(2)
	net2.AssignRandom(g2, rng.New(3))
	e2, err := NewPassEngine(m2, net2, nil, Options{Teleport: tp})
	if err != nil {
		t.Fatal(err)
	}
	e2.Run()
	if _, err := m2.AddNode(nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.AttachDocument(4, 0); err == nil {
		t.Fatal("teleport engine grew")
	}
}

func TestUpdateOutlinksAddAndRemove(t *testing.T) {
	// Chain 0 -> 1 -> 2, then rewire 0 to point at 2 instead of 1.
	g := graph.FromAdjacency([][]graph.NodeID{{1}, {2}, {}})
	e, m, _ := dynSetup(t, g, 2, Options{Epsilon: 1e-10}, 4)
	e.Run()

	old := append([]graph.NodeID(nil), m.OutLinks(0)...)
	if _, err := m.AddLink(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RemoveLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.UpdateOutlinks(0, old); err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not reconverge after rewiring")
	}
	want := solveSnapshot(t, m)
	for i := range want {
		if math.Abs(res.Ranks[i]-want[i]) > 1e-6 {
			t.Fatalf("rank[%d] = %v, want %v", i, res.Ranks[i], want[i])
		}
	}
	// Analytically: 1 now has no in-links (rank 1-d), 2 gains 0's mass.
	d := DefaultDamping
	if math.Abs(res.Ranks[1]-(1-d)) > 1e-6 {
		t.Fatalf("rank[1] = %v, want %v", res.Ranks[1], 1-d)
	}
}

func TestUpdateOutlinksValidation(t *testing.T) {
	g := graph.Cycle(3)
	e, _, _ := dynSetup(t, g, 2, Options{}, 5)
	e.Run()
	if err := e.UpdateOutlinks(99, nil); err == nil {
		t.Fatal("accepted out-of-range doc")
	}
	if err := e.RemoveDoc(1); err != nil {
		t.Fatal(err)
	}
	if err := e.UpdateOutlinks(1, nil); err == nil {
		t.Fatal("accepted removed doc")
	}
}

// Property: a topology built by random dynamic operations always ends
// with ranks matching the centralized solver on its snapshot.
func TestDynamicEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := graph.Random(30, 2, seed)
		m := graph.NewMutable(g)
		net := p2p.NewNetwork(4)
		net.AssignRandom(g, r)
		e, err := NewPassEngine(m, net, nil, Options{Epsilon: 1e-10})
		if err != nil {
			return false
		}
		if !e.Run().Converged {
			return false
		}
		for op := 0; op < 12; op++ {
			n := m.NumNodes()
			switch r.Intn(3) {
			case 0:
				id, err := m.AddNode([]graph.NodeID{graph.NodeID(r.Intn(n))})
				if err != nil {
					return false
				}
				if err := e.AttachDocument(id, p2p.PeerID(r.Intn(4))); err != nil {
					return false
				}
			case 1:
				from, to := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
				if from == to || e.Removed(from) {
					continue
				}
				old := append([]graph.NodeID(nil), m.OutLinks(from)...)
				changed, err := m.AddLink(from, to)
				if err != nil {
					return false
				}
				if changed {
					if err := e.UpdateOutlinks(from, old); err != nil {
						return false
					}
				}
			case 2:
				from := graph.NodeID(r.Intn(n))
				if e.Removed(from) || m.OutDegree(from) == 0 {
					continue
				}
				old := append([]graph.NodeID(nil), m.OutLinks(from)...)
				to := old[r.Intn(len(old))]
				if _, err := m.RemoveLink(from, to); err != nil {
					return false
				}
				if err := e.UpdateOutlinks(from, old); err != nil {
					return false
				}
			}
			if !e.Run().Converged {
				return false
			}
		}
		// Compare against the solver, skipping removed docs (none are
		// removed in this property, but keep it robust).
		ref, err := solver.Power(m.Snapshot(), solver.Config{Tol: 1e-13})
		if err != nil || !ref.Converged {
			return false
		}
		for i := range ref.Ranks {
			if e.Removed(graph.NodeID(i)) {
				continue
			}
			denom := math.Abs(ref.Ranks[i])
			if denom == 0 {
				denom = 1
			}
			if math.Abs(e.Ranks()[i]-ref.Ranks[i])/denom > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
