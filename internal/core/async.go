package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// AsyncEngine is the live chaotic-iteration system the paper
// describes: one goroutine per peer, pagerank update messages flowing
// over channels with no global synchronization of any kind. Peers
// process whatever has arrived, push the resulting rank changes, and
// go idle; the run ends when the whole network quiesces.
//
// Termination uses credit counting (in the style of Dijkstra-Scholten):
// every message increments an in-flight counter before it is enqueued
// and decrements it only after the receiving peer has processed it and
// sent all consequent messages. The counter reaching zero therefore
// proves global quiescence. The engine assumes a fully available
// network; churn experiments use the PassEngine, whose pass boundary
// is where the paper's leave/join model is defined.
type AsyncEngine struct {
	g   graph.Linker
	net *p2p.Network
	opt Options

	st *state

	boxes    []*mailbox
	inflight atomic.Int64
	done     chan struct{}
	doneOnce sync.Once

	interMsgs atomic.Int64
	intraMsgs atomic.Int64
	batches   atomic.Int64
	processed atomic.Int64
}

// mailbox is an unbounded, mutex-guarded message queue with a edge-
// triggered wakeup channel, so senders never block (a blocked sender
// holding messages for a blocked receiver would deadlock the ring).
type mailbox struct {
	mu     sync.Mutex
	buf    []p2p.Update
	wakeup chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{wakeup: make(chan struct{}, 1)}
}

func (m *mailbox) put(us []p2p.Update) {
	m.mu.Lock()
	m.buf = append(m.buf, us...)
	m.mu.Unlock()
	select {
	case m.wakeup <- struct{}{}:
	default:
	}
}

func (m *mailbox) drain() []p2p.Update {
	m.mu.Lock()
	us := m.buf
	m.buf = nil
	m.mu.Unlock()
	return us
}

// NewAsyncEngine creates a live engine over graph g with documents
// already placed on net.
func NewAsyncEngine(g graph.Linker, net *p2p.Network, opt Options) (*AsyncEngine, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.checkTeleport(g.NumNodes()); err != nil {
		return nil, err
	}
	for d := 0; d < g.NumNodes(); d++ {
		if net.PeerOf(graph.NodeID(d)) == p2p.NoPeer {
			return nil, fmt.Errorf("core: document %d is not placed on any peer", d)
		}
	}
	e := &AsyncEngine{
		g:    g,
		net:  net,
		opt:  opt,
		st:   newState(g, opt),
		done: make(chan struct{}),
	}
	e.boxes = make([]*mailbox, net.NumPeers())
	for i := range e.boxes {
		e.boxes[i] = newMailbox()
	}
	return e, nil
}

// Run starts one goroutine per peer, lets the chaotic iteration play
// out, and returns the converged ranks. It blocks until quiescence.
func (e *AsyncEngine) Run() Result {
	numPeers := e.net.NumPeers()
	quit := make(chan struct{})
	var wg sync.WaitGroup

	// Seed credit: each peer owes one unit for its initial push.
	e.inflight.Store(int64(numPeers))

	wg.Add(numPeers)
	for p := 0; p < numPeers; p++ {
		go e.peerLoop(p2p.PeerID(p), quit, &wg)
	}
	<-e.done
	close(quit)
	wg.Wait()

	return Result{
		Ranks:     e.st.rank,
		Passes:    0, // asynchronous: there is no pass structure
		Converged: true,
		Counters: p2p.Counters{
			InterPeerMsgs: e.interMsgs.Load(),
			IntraPeerMsgs: e.intraMsgs.Load(),
		},
	}
}

// Batches returns the number of peer-to-peer batch transmissions, the
// unit the execution-time model's "one network call per peer" transfer
// assumption is based on.
func (e *AsyncEngine) Batches() int64 { return e.batches.Load() }

// credit bookkeeping: add before enqueue, settle after processing.
func (e *AsyncEngine) addCredit(n int) { e.inflight.Add(int64(n)) }
func (e *AsyncEngine) settleCredit(n int) {
	if e.inflight.Add(-int64(n)) == 0 {
		e.doneOnce.Do(func() { close(e.done) })
	}
}

// peerLoop is one peer's behaviour: an initial push of every local
// document's starting rank, then an event loop reacting to arriving
// update messages exactly as Figure 1 prescribes.
func (e *AsyncEngine) peerLoop(self p2p.PeerID, quit <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	out := make(map[p2p.PeerID][]p2p.Update)
	// Each peer goroutine reads adjacency through its own cursor;
	// compressed representations decode into per-cursor buffers, so
	// sharing one across goroutines would race.
	cur := graph.CursorFor(e.g)

	// Initial push (the "At time = 0" block of Figure 1).
	for _, d := range e.net.Docs(self) {
		e.pushAsync(self, cur, d, out)
		e.processed.Add(1)
	}
	e.flush(self, out)
	e.settleCredit(1) // the seed unit for this peer's initial work

	box := e.boxes[self]
	dirtyDocs := make(map[graph.NodeID]struct{})
	for {
		select {
		case <-quit:
			return
		case <-box.wakeup:
			us := box.drain()
			if len(us) == 0 {
				continue
			}
			clear(dirtyDocs)
			for _, u := range us {
				e.st.acc[u.Doc] += u.Delta
				dirtyDocs[u.Doc] = struct{}{}
			}
			for d := range dirtyDocs {
				old, new := e.st.recompute(d)
				e.processed.Add(1)
				if e.st.exceeds(old, new) {
					e.pushAsync(self, cur, d, out)
				}
			}
			e.flush(self, out)
			e.settleCredit(len(us))
		}
	}
}

// pushAsync batches document d's pending rank change into per-peer
// outboxes. Same-peer updates loop back through the peer's own mailbox
// so all processing shares one path; they are counted as intra-peer
// (free) messages.
func (e *AsyncEngine) pushAsync(self p2p.PeerID, cur graph.LinkCursor, d graph.NodeID, out map[p2p.PeerID][]p2p.Update) {
	links := cur.OutLinks(d)
	if len(links) == 0 {
		e.st.markPushed(d)
		return
	}
	share := e.st.share(d, e.st.pendingDelta(d))
	if share == 0 {
		e.st.markPushed(d)
		return
	}
	for _, t := range links {
		dest := e.net.PeerOf(t)
		out[dest] = append(out[dest], p2p.Update{Doc: t, Delta: share})
		if dest == self {
			e.intraMsgs.Add(1)
		} else {
			e.interMsgs.Add(1)
		}
	}
	e.st.markPushed(d)
}

// flush transmits and clears the per-peer outboxes.
func (e *AsyncEngine) flush(self p2p.PeerID, out map[p2p.PeerID][]p2p.Update) {
	for dest, us := range out {
		if len(us) == 0 {
			continue
		}
		e.addCredit(len(us))
		e.boxes[dest].put(us)
		if dest != self {
			e.batches.Add(1)
		}
		delete(out, dest)
	}
}
