package core

import (
	"math"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
)

func runAsync(t *testing.T, g *graph.Graph, peers int, opt Options, seed uint64) Result {
	t.Helper()
	net := p2p.NewNetwork(peers)
	net.AssignRandom(g, rng.New(seed))
	e, err := NewAsyncEngine(g, net, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run()
}

func TestAsyncCycleUniform(t *testing.T) {
	res := runAsync(t, graph.Cycle(12), 4, Options{Epsilon: 1e-10}, 1)
	for i, r := range res.Ranks {
		if math.Abs(r-1) > 1e-6 {
			t.Fatalf("rank[%d] = %v", i, r)
		}
	}
}

func TestAsyncMatchesSolver(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 41))
	want := reference(t, g)
	res := runAsync(t, g, 16, Options{Epsilon: 1e-9}, 2)
	if err := maxRelErr(res.Ranks, want); err > 1e-5 {
		t.Fatalf("async max rel error %v", err)
	}
}

func TestAsyncMatchesPassEngine(t *testing.T) {
	// Both engines approximate the same fixed point; at tight epsilon
	// their answers agree even though message schedules differ wildly.
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 42))
	pass, _ := setup(t, g, 8, Options{Epsilon: 1e-9}, 3)
	a := pass.Run()
	b := runAsync(t, g, 8, Options{Epsilon: 1e-9}, 3)
	for i := range a.Ranks {
		if math.Abs(a.Ranks[i]-b.Ranks[i]) > 1e-5 {
			t.Fatalf("rank[%d]: pass=%v async=%v", i, a.Ranks[i], b.Ranks[i])
		}
	}
}

func TestAsyncSinglePeer(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(300, 43))
	res := runAsync(t, g, 1, Options{Epsilon: 1e-8}, 4)
	if res.Counters.InterPeerMsgs != 0 {
		t.Fatalf("single peer sent %d network messages", res.Counters.InterPeerMsgs)
	}
	want := reference(t, g)
	if err := maxRelErr(res.Ranks, want); err > 1e-4 {
		t.Fatalf("single-peer async error %v", err)
	}
}

func TestAsyncManyPeersFewDocs(t *testing.T) {
	// More peers than documents: some peers idle, termination must
	// still fire.
	g := graph.Cycle(5)
	res := runAsync(t, g, 32, Options{Epsilon: 1e-8}, 5)
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i, r := range res.Ranks {
		if math.Abs(r-1) > 1e-4 {
			t.Fatalf("rank[%d] = %v", i, r)
		}
	}
}

func TestAsyncEmptyEdgeGraph(t *testing.T) {
	// No links at all: quiescence without any messages.
	g := graph.NewBuilder(10).Build()
	res := runAsync(t, g, 4, Options{}, 6)
	if res.Counters.Total() != 0 {
		t.Fatalf("edgeless graph produced %d messages", res.Counters.Total())
	}
	for i, r := range res.Ranks {
		if math.Abs(r-(1-DefaultDamping)) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want the no-in-links fixed point 1-d", i, r)
		}
	}
}

func TestAsyncBatchesCounted(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(500, 44))
	net := p2p.NewNetwork(8)
	net.AssignRandom(g, rng.New(7))
	e, err := NewAsyncEngine(g, net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if e.Batches() == 0 {
		t.Fatal("no batches recorded")
	}
	// Batching can only reduce transmissions relative to messages.
	if e.Batches() > res.Counters.InterPeerMsgs {
		t.Fatalf("batches %d exceed messages %d", e.Batches(), res.Counters.InterPeerMsgs)
	}
}

func TestAsyncValidation(t *testing.T) {
	g := graph.Cycle(4)
	net := p2p.NewNetwork(2)
	net.AssignRandom(g, rng.New(1))
	if _, err := NewAsyncEngine(g, net, Options{Damping: 3}); err == nil {
		t.Fatal("accepted bad damping")
	}
	empty := p2p.NewNetwork(2)
	if _, err := NewAsyncEngine(g, empty, Options{}); err == nil {
		t.Fatal("accepted unplaced documents")
	}
}

func TestAsyncRepeatedRunsConsistent(t *testing.T) {
	// Schedules differ across runs, but every run must land within the
	// epsilon neighbourhood of the fixed point.
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 45))
	want := reference(t, g)
	for trial := 0; trial < 3; trial++ {
		res := runAsync(t, g, 12, Options{Epsilon: 1e-8}, uint64(trial))
		if err := maxRelErr(res.Ranks, want); err > 1e-4 {
			t.Fatalf("trial %d error %v", trial, err)
		}
	}
}

func BenchmarkAsyncEngine2k(b *testing.B) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(2000, 1))
	for i := 0; i < b.N; i++ {
		net := p2p.NewNetwork(16)
		net.AssignRandom(g, rng.New(1))
		e, err := NewAsyncEngine(g, net, Options{})
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
	}
}

func BenchmarkPassEngine10k(b *testing.B) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(10000, 1))
	for i := 0; i < b.N; i++ {
		net := p2p.NewNetwork(500)
		net.AssignRandom(g, rng.New(1))
		e, err := NewPassEngine(g, net, nil, Options{})
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
	}
}
