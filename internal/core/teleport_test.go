package core

import (
	"math"
	"testing"

	"dpr/internal/graph"
	"dpr/internal/p2p"
	"dpr/internal/rng"
	"dpr/internal/solver"
)

func TestTeleportUniformEqualsDefault(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(800, 51))
	uniform := make([]float64, g.NumNodes())
	for i := range uniform {
		uniform[i] = 1
	}
	plain, _ := setup(t, g, 10, Options{Epsilon: 1e-10}, 1)
	pres := plain.Run()
	pers, _ := setup(t, g, 10, Options{Epsilon: 1e-10, Teleport: uniform}, 1)
	tres := pers.Run()
	for i := range pres.Ranks {
		if math.Abs(pres.Ranks[i]-tres.Ranks[i]) > 1e-9 {
			t.Fatalf("uniform teleport diverged at %d: %v vs %v", i, pres.Ranks[i], tres.Ranks[i])
		}
	}
}

func TestTeleportMatchesSolver(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1200, 52))
	r := rng.New(3)
	tp := make([]float64, g.NumNodes())
	for i := range tp {
		tp[i] = r.Float64() + 0.1
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13, Teleport: tp})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := setup(t, g, 25, Options{Epsilon: 1e-9, Teleport: tp}, 2)
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if err := maxRelErr(res.Ranks, ref.Ranks); err > 1e-5 {
		t.Fatalf("teleport engine vs solver: %v", err)
	}
}

func TestTeleportConcentratedBoostsTopic(t *testing.T) {
	// Chain 0 -> 1 -> 2 with all teleport mass on 0: node 0 dominates.
	g := graph.FromAdjacency([][]graph.NodeID{{1}, {2}, {}})
	tp := []float64{1, 0, 0}
	e, _ := setup(t, g, 2, Options{Epsilon: 1e-10, Teleport: tp}, 3)
	res := e.Run()
	d := DefaultDamping
	// base0 = (1-d)*3, base1 = base2 = 0.
	want0 := (1 - d) * 3
	want1 := d * want0
	want2 := d * want1
	for i, want := range []float64{want0, want1, want2} {
		if math.Abs(res.Ranks[i]-want) > 1e-8 {
			t.Fatalf("rank[%d] = %v, want %v", i, res.Ranks[i], want)
		}
	}
}

func TestTeleportAsyncEngine(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(600, 53))
	tp := make([]float64, g.NumNodes())
	for i := range tp {
		tp[i] = float64(i%5) + 1
	}
	ref, err := solver.Power(g, solver.Config{Tol: 1e-13, Teleport: tp})
	if err != nil {
		t.Fatal(err)
	}
	net := p2p.NewNetwork(8)
	net.AssignRandom(g, rng.New(4))
	e, err := NewAsyncEngine(g, net, Options{Epsilon: 1e-9, Teleport: tp})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if err := maxRelErr(res.Ranks, ref.Ranks); err > 1e-5 {
		t.Fatalf("async teleport vs solver: %v", err)
	}
}

func TestTeleportValidation(t *testing.T) {
	g := graph.Cycle(4)
	net := p2p.NewNetwork(2)
	net.AssignRandom(g, rng.New(1))
	cases := []Options{
		{Teleport: []float64{1, 2}},                // wrong length
		{Teleport: []float64{0, 0, 0, 0}},          // zero sum
		{Teleport: []float64{1, -1, 1, 1}},         // negative
		{Teleport: []float64{1, math.NaN(), 1, 1}}, // NaN
	}
	for i, opt := range cases {
		if _, err := NewPassEngine(g, net, nil, opt); err == nil {
			t.Errorf("case %d accepted %+v", i, opt)
		}
		if _, err := NewAsyncEngine(g, net, opt); err == nil {
			t.Errorf("case %d (async) accepted %+v", i, opt)
		}
	}
}

func TestEngineWithRouterCountsHops(t *testing.T) {
	g := graph.MustGeneratePowerLaw(graph.DefaultPowerLawConfig(1000, 54))
	run := func(cached bool) p2p.Counters {
		net := p2p.NewNetwork(64)
		net.AssignRandom(g, rng.New(5))
		e, err := NewPassEngine(g, net, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		router, err := p2p.NewCachedRouter(64, cached)
		if err != nil {
			t.Fatal(err)
		}
		e.Router = router
		e.Run()
		return e.Counters()
	}
	withCache := run(true)
	without := run(false)
	if withCache.RoutedHops == 0 || without.RoutedHops == 0 {
		t.Fatal("no hops recorded")
	}
	// Same message counts (routing is orthogonal to the algorithm)...
	if withCache.InterPeerMsgs != without.InterPeerMsgs {
		t.Fatalf("message counts differ: %d vs %d",
			withCache.InterPeerMsgs, without.InterPeerMsgs)
	}
	// ...but caching cuts total hops substantially (section 3.2).
	if float64(withCache.RoutedHops) > 0.8*float64(without.RoutedHops) {
		t.Fatalf("IP caching saved too little: %d vs %d hops",
			withCache.RoutedHops, without.RoutedHops)
	}
	if withCache.HopsPerMessage() >= without.HopsPerMessage() {
		t.Fatal("hops per message not reduced by caching")
	}
}
