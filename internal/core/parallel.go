package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dpr/internal/graph"
	"dpr/internal/p2p"
)

// Sharded pass execution. Figure 1's "concurrently on all peers"
// computes every peer's documents independently within a pass; the
// engine does it with real workers as a three-stage pipeline:
//
//   - compute phase (parallel): the pass's work list is split into
//     degree-weighted chunks; workers pull chunks and fold each
//     document's accumulated mass, recompute ranks, and *coalesce* the
//     resulting update messages in a per-chunk outbox keyed by
//     destination document — one accumulated delta per (chunk,
//     destination) instead of one update per edge. Coalescing is sound
//     because the fluid-style deltas combine additively (the same
//     associativity D-Iteration and asynchronous pagerank rely on).
//     Outbox entries are pre-bucketed by destination shard
//     (doc >> shardShift) so the merge phase never scans foreign work.
//   - merge phase (parallel, destination-sharded): each merge worker
//     owns a disjoint set of shards and applies every chunk's bucket
//     for its shards to `incoming`/`dirty` lock-free, walking chunks
//     in index order so each document's delta sequence is fixed.
//   - reduce phase (serial, tiny): per-chunk counters, router pricing
//     and retry-queue deferrals are folded in chunk order, preserving
//     the serial engine's exact counter and retry-queue behaviour.
//
// Determinism contract: results (ranks, counters, retry queues) are
// bit-identical for ANY worker count. Floating-point addition is not
// associative, so this only holds because nothing observable depends
// on how chunks are assigned to workers: chunk boundaries are derived
// from the work list alone (never from Workers), every per-chunk
// output is a pure function of its chunk, and all cross-chunk folds
// happen in chunk order. The work list itself is rebuilt shard-major
// each pass, which is likewise worker-count independent.
//
// All scratch (work list, chunk slices, outboxes, coalescing stamps)
// is owned by the engine and reused across passes, so steady-state
// passes allocate nothing beyond the goroutines themselves.

const (
	// mergeShards is the maximum destination-shard count. A shard owns
	// a contiguous power-of-two range of document ids (doc >>
	// shardShift) rather than doc%S: range ownership keeps each merge
	// worker's incoming/dirty accesses inside one region — and the
	// shard-major work list quasi-sorted — where modulo striding would
	// touch one float per cache line. The count is independent of the
	// worker count so per-document merge order never changes.
	mergeShards = 64

	// chunkGrain is the minimum edge weight per compute chunk; work
	// lists smaller than maxChunks*chunkGrain get fewer chunks so tiny
	// passes do not pay per-chunk overhead.
	chunkGrain = 2048
	// maxChunks caps the chunk count (and thus outbox memory). It is a
	// constant, not a function of Workers — see the determinism
	// contract above.
	maxChunks = 64
)

// routeEvent records one inter-peer message for router pricing.
type routeEvent struct {
	from p2p.PeerID
	doc  graph.NodeID
}

// deferredUpdate is one per-edge update destined to an absent peer.
// Deferrals stay per-edge (not coalesced) so the retry queue and its
// Redelivered accounting behave exactly like the serial deliver path.
type deferredUpdate struct {
	dest p2p.PeerID
	u    p2p.Update
}

// chunkOutbox collects one compute chunk's results. Its content is a
// pure function of the chunk, never of the worker that ran it.
type chunkOutbox struct {
	// buckets[s] holds the coalesced (destination, delta) pairs for
	// merge shard s, in first-touch order within the chunk. The bucket
	// slices are carved out of one slab on first use (see outboxes), so
	// warming an outbox costs one allocation, not mergeShards.
	buckets  [mergeShards][]p2p.Update
	held     []graph.NodeID // docs whose peer is offline this pass
	routes   []routeEvent   // inter-peer sends awaiting router pricing
	deferred []deferredUpdate
	intra    int64
	inter    int64
	maxChange float64
}

func (o *chunkOutbox) reset() {
	for s := range o.buckets {
		o.buckets[s] = o.buckets[s][:0]
	}
	o.held = o.held[:0]
	o.routes = o.routes[:0]
	o.deferred = o.deferred[:0]
	o.intra, o.inter = 0, 0
	o.maxChange = 0
}

// chunkScratch is one worker's coalescing index: mark[d] packs
// (epoch<<32 | slot), where slot is d's entry index in the current
// chunk's bucket, valid while the stamped epoch matches. One packed
// word means one random cache touch per edge instead of two, and
// bumping epoch resets the whole index in O(1) between chunks.
//
// cur is the worker's private adjacency read cursor: compressed
// representations (internal/csr) decode blocks into a per-cursor
// buffer, so each chunk worker streams its own decode-ahead state
// instead of allocating a fresh slice per OutLinks call.
type chunkScratch struct {
	mark  []uint64
	epoch uint32
	cur   graph.LinkCursor
}

func (sc *chunkScratch) nextEpoch() {
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: invalidate everything the slow way
		clear(sc.mark)
		sc.epoch = 1
	}
}

// pipeline is the engine-owned, pass-reusable scratch of the sharded
// pass pipeline.
type pipeline struct {
	work    []graph.NodeID
	chunks  [][]graph.NodeID
	outs    []chunkOutbox
	scratch []*chunkScratch
	deg     func(graph.NodeID) int // cached g.OutDegree method value
}

// runPassParallel is RunPass's compute+merge core. The caller has
// already handled churn, retry drain and initialization. One worker
// runs the identical pipeline inline; results are bit-identical for
// any worker count.
func (e *PassEngine) runPassParallel(work []graph.NodeID, workers int) {
	chunks, weight := e.chunkWork(work)
	if len(chunks) == 0 {
		return
	}
	// Expected coalesced entries per (chunk, shard), used to size fresh
	// outbox slabs. A shard cannot hold more distinct destinations than
	// its document range is wide.
	perBucket := weight/(len(chunks)*e.shardCount) + 8
	if w := 1 << e.shardShift; perBucket > w {
		perBucket = w
	}
	outs := e.outboxes(len(chunks), perBucket)

	// Stage 1: compute + coalesce, chunks pulled off a shared cursor.
	if workers <= 1 || len(chunks) == 1 {
		sc := e.scratchFor(0)
		for ci := range chunks {
			e.computeChunk(chunks[ci], &outs[ci], sc)
		}
	} else {
		n := workers
		if n > len(chunks) {
			n = len(chunks)
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(n)
		for w := 0; w < n; w++ {
			sc := e.scratchFor(w)
			go func(sc *chunkScratch) {
				defer wg.Done()
				for {
					ci := int(cursor.Add(1)) - 1
					if ci >= len(chunks) {
						return
					}
					e.computeChunk(chunks[ci], &outs[ci], sc)
				}
			}(sc)
		}
		wg.Wait()
	}

	// Stage 2: destination-sharded merge; shard s owns the contiguous
	// document range [s<<shardShift, (s+1)<<shardShift), so
	// incoming/dirty writes never collide and stay cache-local.
	if workers <= 1 {
		for s := 0; s < e.shardCount; s++ {
			e.mergeShard(s, outs)
		}
	} else {
		n := workers
		if n > e.shardCount {
			n = e.shardCount
		}
		var wg sync.WaitGroup
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func(w int) {
				defer wg.Done()
				for s := w; s < e.shardCount; s += n {
					e.mergeShard(s, outs)
				}
			}(w)
		}
		wg.Wait()
	}

	// Stage 3: deterministic reduction in chunk order. Router pricing
	// and retry deferrals see edges in exactly the order the serial
	// deliver path would have, so stateful routers (IP caches) and
	// queue contents match it bit for bit.
	for ci := range outs {
		out := &outs[ci]
		e.passIntra += out.intra
		e.passInter += out.inter
		if out.maxChange > e.passMaxChange {
			e.passMaxChange = out.maxChange
		}
		if e.Router != nil {
			for _, ev := range out.routes {
				e.counters.RoutedHops += int64(e.Router.Hops(ev.from, ev.doc))
			}
		}
		for _, du := range out.deferred {
			e.counters.Deferred++
			e.retry.Defer(du.dest, du.u)
		}
	}
}

// computeChunk folds one chunk's documents and coalesces their pushes
// into the chunk's outbox. Per-document state is touched only through
// the chunk owning the document, so no locks are needed.
//
//dpr:hotpath
func (e *PassEngine) computeChunk(chunk []graph.NodeID, out *chunkOutbox, sc *chunkScratch) {
	sc.nextEpoch()
	for _, d := range chunk {
		if e.removed[d] {
			e.dirty[d] = false
			e.incoming[d] = 0
			continue
		}
		if !e.net.DocOnline(d) {
			out.held = append(out.held, d)
			continue
		}
		e.dirty[d] = false
		delta := e.incoming[d]
		e.incoming[d] = 0
		e.st.acc[d] += delta
		old, new := e.st.recompute(d)
		if rel := relChange(old, new); rel > out.maxChange {
			out.maxChange = rel
		}
		if e.st.exceeds(old, new) {
			e.coalescePush(d, out, sc)
		}
	}
}

// coalescePush is push() with delivery deferred into the outbox and
// same-destination deltas accumulated into a single entry. Message
// accounting stays per-edge (classified here; peer liveness is frozen
// within a pass) so counters match the serial deliver path exactly.
//
//dpr:hotpath
func (e *PassEngine) coalescePush(d graph.NodeID, out *chunkOutbox, sc *chunkScratch) {
	links := sc.cur.OutLinks(d)
	if len(links) == 0 {
		e.st.markPushed(d)
		return
	}
	share := e.st.share(d, e.st.pendingDelta(d))
	if share == 0 {
		e.st.markPushed(d)
		return
	}
	fromPeer := e.net.PeerOf(d)
	for _, t := range links {
		if e.removed[t] {
			continue
		}
		destPeer := e.net.PeerOf(t)
		switch {
		case destPeer == fromPeer:
			out.intra++
		case e.net.Online(destPeer):
			out.inter++
			if e.Router != nil {
				out.routes = append(out.routes, routeEvent{fromPeer, t})
			}
		default:
			out.deferred = append(out.deferred, deferredUpdate{destPeer, p2p.Update{Doc: t, Delta: share}})
			continue // deferred mass waits in the retry queue
		}
		b := &out.buckets[int(t)>>e.shardShift]
		if m := sc.mark[t]; uint32(m>>32) == sc.epoch {
			(*b)[uint32(m)].Delta += share
		} else {
			sc.mark[t] = uint64(sc.epoch)<<32 | uint64(len(*b))
			*b = append(*b, p2p.Update{Doc: t, Delta: share})
		}
	}
	e.st.markPushed(d)
}

// mergeShard applies every chunk's bucket for shard s, walking chunks
// in index order so each document's delta sequence — and the dirty
// list append order — is independent of worker count. Held documents
// (offline peer) re-enter their shard's dirty list after the chunk
// that held them, mirroring the serial merge.
//
//dpr:hotpath
func (e *PassEngine) mergeShard(s int, outs []chunkOutbox) {
	list := e.dirtyShard[s]
	for ci := range outs {
		for _, u := range outs[ci].buckets[s] {
			e.incoming[u.Doc] += u.Delta
			if !e.dirty[u.Doc] {
				e.dirty[u.Doc] = true
				list = append(list, u.Doc)
			}
		}
		for _, d := range outs[ci].held {
			if int(d)>>e.shardShift == s {
				list = append(list, d) // dirty[d] stayed true while held
			}
		}
	}
	e.dirtyShard[s] = list
}

// chunkWork splits the pass's work list into degree-weighted chunks,
// returning them with the list's total edge weight. The chunk count
// scales with that weight but never with the worker count (see the
// determinism contract at the top of the file).
func (e *PassEngine) chunkWork(work []graph.NodeID) ([][]graph.NodeID, int) {
	if e.pipe.deg == nil {
		e.pipe.deg = e.st.g.OutDegree
	}
	deg := e.pipe.deg
	total := len(work)
	for _, d := range work {
		total += deg(d)
	}
	n := (total + chunkGrain - 1) / chunkGrain
	if n > maxChunks {
		n = maxChunks
	}
	e.pipe.chunks = splitChunksInto(e.pipe.chunks[:0], work, n, deg)
	return e.pipe.chunks, total
}

// outboxes returns n reset chunk outboxes, reusing capacity across
// passes. A fresh outbox gets all its buckets carved out of one slab
// sized perBucket entries each — three-index slices, so a bucket that
// outgrows its carve reallocates alone without touching neighbours.
func (e *PassEngine) outboxes(n, perBucket int) []chunkOutbox {
	for len(e.pipe.outs) < n {
		e.pipe.outs = append(e.pipe.outs, chunkOutbox{})
	}
	outs := e.pipe.outs[:n]
	for i := range outs {
		out := &outs[i]
		if out.buckets[0] == nil {
			slab := make([]p2p.Update, e.shardCount*perBucket)
			for s := 0; s < e.shardCount; s++ {
				o := s * perBucket
				out.buckets[s] = slab[o:o : o+perBucket]
			}
		}
		out.reset()
	}
	return outs
}

// scratchFor returns worker w's coalescing scratch, sized to the
// engine's destination range (which can grow under dynamic topologies).
func (e *PassEngine) scratchFor(w int) *chunkScratch {
	for len(e.pipe.scratch) <= w {
		e.pipe.scratch = append(e.pipe.scratch, &chunkScratch{})
	}
	sc := e.pipe.scratch[w]
	if sc.cur == nil {
		sc.cur = graph.CursorFor(e.st.g)
	}
	if n := len(e.incoming); len(sc.mark) < n {
		sc.mark = make([]uint64, n)
		sc.epoch = 0
	}
	return sc
}

// splitChunks divides work into at most n contiguous chunks of nearly
// equal total weight, where document d weighs 1+outDegree(d) — the
// cost of recomputing it plus pushing to its out-links. Count-based
// splitting let one hub document serialize its whole chunk on
// power-law graphs; weighting gives a heavy hub a chunk of its own.
// The split is deterministic for a given (work, n) and every chunk is
// non-empty, so n > len(work) yields at most len(work) chunks.
func splitChunks(work []graph.NodeID, n int, outDegree func(graph.NodeID) int) [][]graph.NodeID {
	return splitChunksInto(nil, work, n, outDegree)
}

// splitChunksInto is splitChunks appending into a reusable buffer.
func splitChunksInto(dst [][]graph.NodeID, work []graph.NodeID, n int, outDegree func(graph.NodeID) int) [][]graph.NodeID {
	if len(work) == 0 {
		return dst
	}
	if n > len(work) {
		n = len(work)
	}
	if n <= 1 {
		return append(dst, work)
	}
	total := len(work)
	for _, d := range work {
		total += outDegree(d)
	}
	// Greedy fair-share split: close a chunk once it carries at least
	// remaining/chunksLeft weight, keeping one document for each chunk
	// still to come.
	start, acc, made := 0, 0, 0
	for i, d := range work {
		acc += 1 + outDegree(d)
		if made < n-1 && acc*(n-made) >= total && len(work)-(i+1) >= n-1-made {
			dst = append(dst, work[start:i+1])
			start = i + 1
			total -= acc
			acc = 0
			made++
		}
	}
	if start < len(work) {
		dst = append(dst, work[start:])
	}
	return dst
}

// defaultWorkers resolves the Options.Workers setting.
func defaultWorkers(w int) int {
	if w == 0 {
		return 1 // serial unless explicitly requested
	}
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}
